#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass (catches benchmarks that stopped
# compiling or panic without paying for a full measurement run).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run XXX -bench . -benchtime 1x .
go test -run XXX -bench . -benchtime 1x ./internal/qp ./internal/core

echo "== BENCH_2.json guard =="
# The perf record must exist and its experiment metrics must agree with
# the BENCH_1 baseline: a faster solver that changes mean_iters_cap100 or
# best_horizon changed the experiments' answers, not just their speed.
[ -f BENCH_2.json ] || { echo "BENCH_2.json missing (run scripts/bench.sh)"; exit 1; }
for metric in mean_iters_cap100 best_horizon; do
	v1=$(grep -o "\"$metric\": [0-9.]*" BENCH_1.json | tail -1 | sed 's/.*: //')
	v2=$(grep -o "\"$metric\": [0-9.]*" BENCH_2.json | tail -1 | sed 's/.*: //')
	[ -n "$v1" ] && [ -n "$v2" ] || { echo "metric $metric missing from a BENCH json"; exit 1; }
	awk "BEGIN { exit !($v1 == $v2) }" || {
		echo "metric $metric drifted: BENCH_1=$v1 BENCH_2=$v2"; exit 1; }
done
echo "BENCH_2.json present, experiment metrics match BENCH_1"

echo "== fault-injection smoke (robust-outage under -race) =="
# Drives the outage/recovery experiment end to end — the controller must
# degrade through the ladder while the DC is down and re-converge after
# restore — and prints the degradation summary for eyeballing.
go run -race ./cmd/experiments -fig robust-outage

echo "All checks passed."

#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass (catches benchmarks that stopped
# compiling or panic without paying for a full measurement run).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run XXX -bench . -benchtime 1x .

echo "== fault-injection smoke (robust-outage under -race) =="
# Drives the outage/recovery experiment end to end — the controller must
# degrade through the ladder while the DC is down and re-converge after
# restore — and prints the degradation summary for eyeballing.
go run -race ./cmd/experiments -fig robust-outage

echo "All checks passed."

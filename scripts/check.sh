#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass (catches benchmarks that stopped
# compiling or panic without paying for a full measurement run).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run XXX -bench . -benchtime 1x .

echo "All checks passed."

#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# one-iteration benchmark smoke pass (catches benchmarks that stopped
# compiling or panic without paying for a full measurement run).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (1 iteration each) =="
go test -run XXX -bench . -benchtime 1x .
go test -run XXX -bench . -benchtime 1x ./internal/qp ./internal/core ./internal/linalg ./internal/game

echo "== BENCH_2.json guard =="
# The perf record must exist and its experiment metrics must agree with
# the BENCH_1 baseline: a faster solver that changes mean_iters_cap100 or
# best_horizon changed the experiments' answers, not just their speed.
[ -f BENCH_2.json ] || { echo "BENCH_2.json missing (run scripts/bench.sh)"; exit 1; }
for metric in mean_iters_cap100 best_horizon; do
	v1=$(grep -o "\"$metric\": [0-9.]*" BENCH_1.json | tail -1 | sed 's/.*: //')
	v2=$(grep -o "\"$metric\": [0-9.]*" BENCH_2.json | tail -1 | sed 's/.*: //')
	[ -n "$v1" ] && [ -n "$v2" ] || { echo "metric $metric missing from a BENCH json"; exit 1; }
	awk "BEGIN { exit !($v1 == $v2) }" || {
		echo "metric $metric drifted: BENCH_1=$v1 BENCH_2=$v2"; exit 1; }
done
echo "BENCH_2.json present, experiment metrics match BENCH_1"

echo "== BENCH_3.json guard =="
# Same contract for the batched-solving record: sessions, factorization
# reuse, and the small-band kernels must leave the experiment answers
# exactly where BENCH_1 put them, and the session-resolve record must
# show the reuse tiers actually firing.
[ -f BENCH_3.json ] || { echo "BENCH_3.json missing (run scripts/bench.sh)"; exit 1; }
for metric in mean_iters_cap100 best_horizon; do
	v1=$(grep -o "\"$metric\": [0-9.]*" BENCH_1.json | tail -1 | sed 's/.*: //')
	v3=$(grep -o "\"$metric\": [0-9.]*" BENCH_3.json | tail -1 | sed 's/.*: //')
	[ -n "$v1" ] && [ -n "$v3" ] || { echo "metric $metric missing from a BENCH json"; exit 1; }
	awk "BEGIN { exit !($v1 == $v3) }" || {
		echo "metric $metric drifted: BENCH_1=$v1 BENCH_3=$v3"; exit 1; }
done
a3=$(grep -o '"allocs_per_op": [0-9.]*' BENCH_3.json | tail -1 | sed 's/.*: //')
[ "$a3" = "2" ] || { echo "BENCH_3 warm solve allocs_per_op=$a3, want 2 (symbolic registry on, telemetry off)"; exit 1; }
rr=$(grep -o '"reuse_rate": [0-9.]*' BENCH_3.json | tail -1 | sed 's/.*: //')
awk "BEGIN { exit !($rr > 0) }" || { echo "BENCH_3 reuse_rate=$rr: reuse tiers never fired"; exit 1; }
echo "BENCH_3.json present, experiment metrics match BENCH_1, reuse tiers live"

echo "== telemetry overhead guard =="
# The disabled-telemetry path must stay free: BenchmarkSolveWarm holds
# the warm-solve contract at exactly 2 allocs/op with hooks off, so any
# instrumentation leaking into the hot path fails here. The telemetry
# package itself must also stay vet-clean.
go vet ./internal/telemetry
bench_out=$(go test -run XXX -bench BenchmarkSolveWarm -benchtime 10x ./internal/qp)
echo "$bench_out"
echo "$bench_out" | awk '
	/BenchmarkSolveWarm/ {
		seen++
		for (i = 1; i <= NF; i++) if ($i == "allocs/op" && $(i-1) != 2) bad = 1
	}
	END {
		if (!seen) { print "BenchmarkSolveWarm missing from bench output"; exit 1 }
		if (bad)   { print "warm solve no longer 2 allocs/op with telemetry disabled"; exit 1 }
		print "warm solve holds 2 allocs/op with telemetry disabled"
	}'

echo "== BENCH_4.json guard =="
# The decomposition scaling record must exist, every measured point must
# sit within 1% of the monolithic optimum (and never below it beyond
# solver tolerance — that would mean an infeasible capacity split), and
# the n=1000 8-shard point must hold the headline speedup.
[ -f BENCH_4.json ] || { echo "BENCH_4.json missing (run scripts/bench.sh)"; exit 1; }
grep -o '"cost_gap": [-0-9.e+]*' BENCH_4.json | sed 's/.*: //' | awk '
	{ if ($1 != -1 && ($1 > 0.01 || $1 < -1e-4)) { bad = 1; print "cost_gap " $1 " out of [-1e-4, 0.01]" } }
	END { exit bad }' || { echo "BENCH_4 cost gap guard failed"; exit 1; }
sp=$(awk '/"name": "n1000-shards8"/ { f = 1 } f && /"speedup":/ { gsub(/[^0-9.]/, ""); print; exit }' BENCH_4.json)
[ -n "$sp" ] || { echo "BENCH_4 n1000-shards8 record missing"; exit 1; }
awk "BEGIN { exit !($sp >= 3) }" || {
	echo "BENCH_4 n1000-shards8 speedup $sp < 3x vs monolithic"; exit 1; }
echo "BENCH_4.json present, cost gaps within 1%, n1000-shards8 speedup ${sp}x"

echo "== BENCH_5.json guard =="
# The incremental-coordination record must exist; every point with a
# monolithic reference must stay inside the optimality window (gap in
# [-1e-4, 1%]) and must not be slower than the monolithic solve; the
# n=1000 8-shard point must beat BENCH_4's from-scratch coordination at
# least 2x. (-1 cost gaps / 0 speedups mark sizes measured without a
# monolithic reference.)
[ -f BENCH_5.json ] || { echo "BENCH_5.json missing (run scripts/bench.sh)"; exit 1; }
grep -o '"cost_gap": [-0-9.e+]*' BENCH_5.json | sed 's/.*: //' | awk '
	{ if ($1 != -1 && ($1 > 0.01 || $1 < -1e-4)) { bad = 1; print "cost_gap " $1 " out of [-1e-4, 0.01]" } }
	END { exit bad }' || { echo "BENCH_5 cost gap guard failed"; exit 1; }
awk '
	/"name":/    { name = $2; gsub(/[",]/, "", name) }
	/"speedup":/ { sp = $2; gsub(/[,]/, "", sp)
		if (sp + 0 != 0 && sp + 0 < 1) { bad = 1
			print "BENCH_5 " name " speedup " sp " < 1: slower than monolithic" } }
	END { exit bad }' BENCH_5.json || { echo "BENCH_5 speedup guard failed"; exit 1; }
sp5=$(awk '/"name": "n1000-shards8"/ { f = 1 } f && /"speedup_vs_bench4":/ { sub(/.*: */, ""); gsub(/,/, ""); print; exit }' BENCH_5.json)
[ -n "$sp5" ] || { echo "BENCH_5 n1000-shards8 record missing"; exit 1; }
awk "BEGIN { exit !($sp5 >= 2) }" || {
	echo "BENCH_5 n1000-shards8 speedup ${sp5}x vs BENCH_4 coordination, want >= 2x"; exit 1; }
echo "BENCH_5.json present, cost gaps within 1%, no size slower than monolithic, n1000-shards8 ${sp5}x vs BENCH_4"

echo "== decomposition scaling smoke =="
# End-to-end smoke of the coordinated sharded solve against the
# monolithic reference at CI-friendly sizes; the shape check enforces
# convergence and the 1% gap on every smoke point.
go run ./cmd/experiments -fig decomp-scaling

echo "== incremental coordination smoke =="
# Dirty-shard scheduling, rank-k quota re-solves and cross-period carry
# at CI-friendly sizes; the shape check enforces convergence, the 1% gap,
# speedup >= 1 at every referenced size, skip/fast-tier liveness, and a
# <50% steady-state dirty fraction over the 100-period quiet tails.
go run ./cmd/experiments -fig decomp-incremental

echo "== fault-injection smoke (robust-outage under -race) =="
# Drives the outage/recovery experiment end to end — the controller must
# degrade through the ladder while the DC is down and re-converge after
# restore — and prints the degradation summary for eyeballing.
go run -race ./cmd/experiments -fig robust-outage

echo "== deadline guard (anytime ladder under a stall fault) =="
# The daemon package must be vet-clean, and a budgeted run under an
# injected solver stall must finish every period inside budget+grace
# while actually exercising the anytime rung: zero hard overruns over
# 200 periods AND anytime rungs > 0, or the deadline plumbing regressed.
go vet ./internal/daemon
deadline_out=$(go run ./cmd/dsppsim -periods 200 -horizon 12 -metros 12 \
	-budget 16ms -predictor persistence \
	-fault "stall:start=2,end=400,factor=13" | tail -3)
echo "$deadline_out"
echo "$deadline_out" | awk '
	/^budget / {
		seen = 1
		for (i = 1; i <= NF; i++) {
			if ($(i+1) == "period" && $(i+2) == "overruns")
				{ split($i, o, "/"); overruns = o[1]; periods = o[2] }
			if ($i == "rungs") rungs = $(i+1)
		}
	}
	END {
		if (!seen)          { print "budget summary line missing from dsppsim output"; exit 1 }
		if (periods < 200)  { print "expected >=200 budgeted periods, got " periods; exit 1 }
		if (overruns != 0)  { print overruns " period overruns under the stall schedule, want 0"; exit 1 }
		if (rungs + 0 <= 0) { print "anytime rungs " rungs ": deadline ladder never engaged"; exit 1 }
		print "deadline guard holds: " overruns "/" periods " overruns, " rungs " anytime rungs"
	}'

echo "== attribution guard (provenance identity + free disabled path) =="
# The provenance layer's two contracts. Disabled: no hub means no
# attribution work at all — the 2-allocs/op warm-solve guard above
# already pins the solver hot path, and TestRunNoTelemetryNoAttribution
# pins the engine loop. Enabled: on the fault-injected robust-outage
# scenario every period's resource+bandwidth+reconfig+shed must sum to
# the reported period cost (shed imputed at the soft-relaxation penalty)
# within 1e-9 relative, and /statusz must serve the same numbers from
# the ring; the continental run checks the same identity across 100
# coordinated periods plus the critical-path reconstruction.
go test -run 'TestRunEmitsAttribution|TestRunNoTelemetryNoAttribution' ./internal/sim
go test -run 'TestContinentalAttributionEndToEnd' .
echo "attribution identity holds (outage + continental), disabled path stays free"

echo "All checks passed."

#!/bin/sh
# bench.sh — run the headline experiment benchmarks (Fig 7 game
# convergence, Fig 9 horizon sweep) plus the solver and batched-linalg
# microbenchmarks, print the raw benchstat-compatible lines, and refresh
# BENCH_3.json with the best observed numbers next to the BENCH_2
# baselines. Then run the continental decomposition scaling curve
# (sharded region QPs vs the monolithic horizon QP, n up to 2000) and
# refresh BENCH_4.json with its records, and the incremental-coordination
# curve (dirty-shard scheduling, rank-k quota re-solves, cross-period
# carry) against the BENCH_4 baseline, refreshing BENCH_5.json.
#
# Usage: scripts/bench.sh [count]
#   count — repetitions per benchmark (default 3); the JSON records the
#   fastest run, the printed lines feed benchstat directly. The scaling
#   curve is measured once (its monolithic n=1000 reference dominates
#   the script's runtime).
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== experiment benchmarks (benchtime 5x, count $COUNT) =="
go test -run XXX -bench 'BenchmarkFig7GameConvergence|BenchmarkFig9HorizonVsCost' \
	-benchtime 5x -count "$COUNT" . | tee "$RAW"

echo
echo "== solver microbenchmarks (cold vs warm-started vs session resolve) =="
go test -run XXX -bench 'BenchmarkSolve$|BenchmarkSolveWarm|BenchmarkSessionResolve' \
	-benchtime 100x ./internal/qp | tee -a "$RAW"

echo
echo "== batched linalg microbenchmarks (panel back-solve, rank-k update) =="
go test -run XXX -bench 'BenchmarkBatchSolve|BenchmarkRankKUpdate' \
	-benchtime 200x ./internal/linalg | tee -a "$RAW"

# Best ns/op per benchmark, metric values, and the warm-solve allocs.
awk '
/^BenchmarkFig7GameConvergence/ {
	if (!f7 || $3 < f7) { f7 = $3; f7m = $5 }
}
/^BenchmarkFig9HorizonVsCost/ {
	if (!f9 || $3 < f9) { f9 = $3; f9m = $5 }
}
/^BenchmarkSolveWarm\/n150_m300/ { wns = $3; wit = $5; wallocs = $9 }
/^BenchmarkSessionResolve/ { sns = $3; scold = $5; srate = $7 }
/^BenchmarkBatchSolve\/panel/ { pns = $3 }
/^BenchmarkBatchSolve\/sequential/ { qns = $3 }
/^BenchmarkRankKUpdate\/update/ { uns = $3 }
/^BenchmarkRankKUpdate\/refactorize/ { rns = $3 }
END {
	if (!f7 || !f9 || wns == "" || sns == "" || pns == "" || uns == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"; exit 1
	}
	printf "%s %s %s %s %s %s %s %s %s %s %s %s %s %s\n", \
		f7, f7m, f9, f9m, wns, wit, wallocs, sns, scold, srate, pns, qns, uns, rns
}' "$RAW" > "$RAW.best"
read -r F7NS F7M F9NS F9M WNS WIT WALLOCS SNS SCOLD SRATE PNS QNS UNS RNS < "$RAW.best"
rm -f "$RAW.best"

# BENCH_2 optimized numbers, for the speedup columns.
B2F7=$(grep -A3 '"BenchmarkFig7GameConvergence"' BENCH_2.json | grep '"ns_per_op"' | tail -1 | tr -dc 0-9)
B2F9=$(grep -A3 '"BenchmarkFig9HorizonVsCost"' BENCH_2.json | grep '"ns_per_op"' | tail -1 | tr -dc 0-9)

SP7=$(awk "BEGIN { printf \"%.2f\", $B2F7 / $F7NS }")
SP9=$(awk "BEGIN { printf \"%.2f\", $B2F9 / $F9NS }")
SPS=$(awk "BEGIN { printf \"%.2f\", $SCOLD / $SNS }")
SPP=$(awk "BEGIN { printf \"%.2f\", $QNS / $PNS }")
SPU=$(awk "BEGIN { printf \"%.2f\", $RNS / $UNS }")

cat > BENCH_3.json <<EOF
{
  "description": "Wall-clock numbers after batched multi-tenant solving: per-provider horizon sessions in the best-response loop, shared symbolic factorizations, panel multi-RHS back-solves, rank-k factorization updates, and bit-identical small-band kernels (scripts/bench.sh). baseline_ns_per_op repeats BENCH_2's optimized numbers; speedup_vs_bench2 is against those.",
  "machine": {
    "cpu": "$(grep -m1 'model name' /proc/cpuinfo | sed 's/.*: //')",
    "cpus": $(nproc),
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)"
  },
  "benchmarks": [
    {
      "name": "BenchmarkFig7GameConvergence",
      "ns_per_op": $F7NS,
      "baseline_ns_per_op": $B2F7,
      "speedup_vs_bench2": $SP7,
      "metrics": { "mean_iters_cap100": $F7M }
    },
    {
      "name": "BenchmarkFig9HorizonVsCost",
      "ns_per_op": $F9NS,
      "baseline_ns_per_op": $B2F9,
      "speedup_vs_bench2": $SP9,
      "metrics": { "best_horizon": $F9M }
    },
    {
      "name": "BenchmarkSolveWarm/n150_m300",
      "ns_per_op": $WNS,
      "metrics": { "ipm_iters": $WIT, "allocs_per_op": $WALLOCS },
      "note": "allocs_per_op is the per-solve constant (result object); zero allocations per IPM iteration"
    },
    {
      "name": "BenchmarkSessionResolve",
      "ns_per_op": $SNS,
      "cold_ns_per_op": $SCOLD,
      "marginal_vs_cold_speedup": $SPS,
      "metrics": { "reuse_rate": $SRATE },
      "note": "marginal cost of a checkpointed sensitivity query (restore + rank-k factorization + continuation) vs a from-scratch solve of the same problem; reuse_rate is the fraction of factorizations served by the exact-reuse and rank-k tiers"
    },
    {
      "name": "BenchmarkBatchSolve",
      "panel_ns_per_op": $PNS,
      "sequential_ns_per_op": $QNS,
      "panel_speedup": $SPP,
      "note": "8-RHS panel back-solve vs 8 scalar solves on the same factor"
    },
    {
      "name": "BenchmarkRankKUpdate",
      "update_ns_per_op": $UNS,
      "refactorize_ns_per_op": $RNS,
      "update_speedup": $SPU,
      "note": "k=2 banded factorization update vs bare refactorization at random window starts; the rotation sweeps only undercut refactorization for localized windows or wider bands, which is exactly what the solver's work gate tests before choosing the update over refill+refactorize (the refill, also skipped by the update, is not counted here)"
    }
  ]
}
EOF

echo
echo "wrote BENCH_3.json: Fig7 ${F7NS} ns/op (${SP7}x vs BENCH_2), Fig9 ${F9NS} ns/op (${SP9}x vs BENCH_2)"
echo "  session resolve ${SNS} ns marginal vs ${SCOLD} ns cold (${SPS}x, reuse_rate ${SRATE})"
echo "  panel back-solve ${SPP}x vs sequential, rank-k update ${SPU}x vs refactorize"

echo
echo "== decomposition shard scaling (BENCH_4, full continental sizes) =="
go run ./cmd/experiments -fig decomp-scaling -bench-full -bench-out BENCH_4.json

echo
echo "== incremental coordination (BENCH_5, full continental sizes) =="
# Cold coordinated solves under the incremental options plus quiet MPC
# tails; speedup_vs_bench4 compares each size against BENCH_4's
# from-scratch coordination, so refresh BENCH_4 first (above) when the
# coordination layer itself changed.
go run ./cmd/experiments -fig decomp-incremental -bench-full \
	-bench-out BENCH_5.json -bench-baseline BENCH_4.json

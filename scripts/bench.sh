#!/bin/sh
# bench.sh — run the headline experiment benchmarks (Fig 7 game
# convergence, Fig 9 horizon sweep) plus the interior-point solver
# microbenchmarks, print the raw benchstat-compatible lines, and refresh
# BENCH_2.json with the best observed numbers next to the BENCH_1 baseline.
#
# Usage: scripts/bench.sh [count]
#   count — repetitions per benchmark (default 3); the JSON records the
#   fastest run, the printed lines feed benchstat directly.
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== experiment benchmarks (benchtime 5x, count $COUNT) =="
go test -run XXX -bench 'BenchmarkFig7GameConvergence|BenchmarkFig9HorizonVsCost' \
	-benchtime 5x -count "$COUNT" . | tee "$RAW"

echo
echo "== solver microbenchmarks (cold vs warm-started) =="
go test -run XXX -bench 'BenchmarkSolve$|BenchmarkSolveWarm' \
	-benchtime 100x ./internal/qp | tee -a "$RAW"

# Best ns/op per benchmark, its metric value, and the warm-solve allocs.
awk '
/^BenchmarkFig7GameConvergence/ {
	if (!f7 || $3 < f7) { f7 = $3; f7m = $5 }
}
/^BenchmarkFig9HorizonVsCost/ {
	if (!f9 || $3 < f9) { f9 = $3; f9m = $5 }
}
/^BenchmarkSolveWarm\/n150_m300/ { wns = $3; wit = $5; wallocs = $9 }
END {
	if (!f7 || !f9 || wns == "") { print "bench.sh: missing benchmark output" > "/dev/stderr"; exit 1 }
	printf "%s %s %s %s %s %s %s\n", f7, f7m, f9, f9m, wns, wit, wallocs
}' "$RAW" > "$RAW.best"
read -r F7NS F7M F9NS F9M WNS WIT WALLOCS < "$RAW.best"
rm -f "$RAW.best"

# BENCH_1 optimized numbers, for the speedup columns.
B1F7=$(grep -A3 '"BenchmarkFig7GameConvergence"' BENCH_1.json | grep '"ns_per_op"' | tail -1 | tr -dc 0-9)
B1F9=$(grep -A3 '"BenchmarkFig9HorizonVsCost"' BENCH_1.json | grep '"ns_per_op"' | tail -1 | tr -dc 0-9)

SP7=$(awk "BEGIN { printf \"%.2f\", $B1F7 / $F7NS }")
SP9=$(awk "BEGIN { printf \"%.2f\", $B1F9 / $F9NS }")

cat > BENCH_2.json <<EOF
{
  "description": "Wall-clock numbers after the Mehrotra predictor-corrector IPM, symbolic/numeric band-factorization split, and SLA-sparsity pruning (scripts/bench.sh). baseline_ns_per_op repeats BENCH_1's optimized numbers; speedup_vs_bench1 is against those.",
  "machine": {
    "cpu": "$(grep -m1 'model name' /proc/cpuinfo | sed 's/.*: //')",
    "cpus": $(nproc),
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)"
  },
  "benchmarks": [
    {
      "name": "BenchmarkFig7GameConvergence",
      "ns_per_op": $F7NS,
      "baseline_ns_per_op": $B1F7,
      "speedup_vs_bench1": $SP7,
      "metrics": { "mean_iters_cap100": $F7M }
    },
    {
      "name": "BenchmarkFig9HorizonVsCost",
      "ns_per_op": $F9NS,
      "baseline_ns_per_op": $B1F9,
      "speedup_vs_bench1": $SP9,
      "metrics": { "best_horizon": $F9M }
    },
    {
      "name": "BenchmarkSolveWarm/n150_m300",
      "ns_per_op": $WNS,
      "metrics": { "ipm_iters": $WIT, "allocs_per_op": $WALLOCS },
      "note": "allocs_per_op is the per-solve constant (result object); it is identical for cold multi-iteration solves — zero allocations per IPM iteration (TestAllocsIndependentOfIterationCount)"
    }
  ]
}
EOF

echo
echo "wrote BENCH_2.json: Fig7 ${F7NS} ns/op (${SP7}x vs BENCH_1), Fig9 ${F9NS} ns/op (${SP9}x vs BENCH_1)"

package dspp

import (
	"math/rand"

	"dspp/internal/pricing"
	"dspp/internal/topology"
	"dspp/internal/workload"
)

// Environment types: the substrates that generate the controller's
// inputs — topologies and latencies, demand models, and price models.
type (
	// City is a metro area from the built-in US database.
	City = topology.City
	// Network is the bipartite DC/access-network placement graph with
	// its latency matrix.
	Network = topology.Network
	// TopologyConfig parameterizes the transit-stub generator.
	TopologyConfig = topology.GeneratorConfig
	// TransitStub is a generated router-level topology.
	TransitStub = topology.TransitStub

	// DemandModel produces a mean arrival rate per period.
	DemandModel = workload.Model
	// ConstantDemand is a fixed-rate demand model.
	ConstantDemand = workload.Constant
	// DiurnalDemand is the paper's on-off working-hours profile.
	DiurnalDemand = workload.Diurnal
	// FlashCrowd injects a multiplicative demand spike.
	FlashCrowd = workload.FlashCrowd
	// DemandTrace is a precomputed demand series.
	DemandTrace = workload.Trace

	// PriceModel produces a per-server price per period.
	PriceModel = pricing.Model
	// ConstantPrice is a fixed price model.
	ConstantPrice = pricing.Constant
	// RegionProfile is a parametric diurnal electricity price curve.
	RegionProfile = pricing.RegionProfile
	// DiurnalServerPrice prices one server from a regional curve.
	DiurnalServerPrice = pricing.DiurnalServer
	// VMClass enumerates the paper's three VM power classes.
	VMClass = pricing.VMClass
	// PriceTrace is a precomputed price series.
	PriceTrace = pricing.Trace
	// SpotMarket is an EC2-spot-style dynamic price process (the paper's
	// §I cites spot instances as the public-cloud dynamic-pricing
	// mechanism).
	SpotMarket = pricing.SpotMarket
	// SpotConfig parameterizes NewSpotMarket.
	SpotConfig = pricing.SpotConfig
	// BidPolicy pays spot below a bid fraction and falls back to
	// on-demand above it.
	BidPolicy = pricing.BidPolicy
)

// VM classes with the paper's power draws (30/70/140 W).
const (
	SmallVM  = pricing.SmallVM
	MediumVM = pricing.MediumVM
	LargeVM  = pricing.LargeVM
)

// USCities returns the built-in US metro database (paper DC sites plus
// the major demand metros).
func USCities() []City { return topology.USCities() }

// CityByName looks up a built-in city.
func CityByName(name string) (City, bool) { return topology.CityByName(name) }

// GenerateTopology builds a seeded transit-stub router topology with the
// paper's per-tier link latencies (20/5/2 ms).
func GenerateTopology(cfg TopologyConfig) (*TransitStub, error) { return topology.Generate(cfg) }

// BuildNetwork places data centers and access networks on a generated
// topology and computes shortest-path latencies.
func BuildNetwork(ts *TransitStub, dcCities, accessCities []City) (*Network, error) {
	return topology.BuildFromTransitStub(ts, dcCities, accessCities)
}

// BuildGeoNetwork derives latencies from great-circle distances plus a
// per-endpoint last-mile delay — the quick path to a realistic network.
func BuildGeoNetwork(dcCities, accessCities []City, lastMileDelay float64) (*Network, error) {
	return topology.BuildGeo(dcCities, accessCities, lastMileDelay)
}

// PaperRegions returns the four Fig. 3 electricity price profiles
// (CA, TX, GA, IL).
func PaperRegions() []RegionProfile { return pricing.PaperRegions() }

// RegionByName looks up one of the paper's regional price profiles.
func RegionByName(name string) (RegionProfile, bool) { return pricing.RegionByName(name) }

// NewDiurnalDemand builds the paper's on-off profile with hourly periods
// (high 8am–5pm at peak, low otherwise).
func NewDiurnalDemand(base, peak float64) (*DiurnalDemand, error) {
	return workload.NewDiurnal(base, peak)
}

// MaterializeDemand evaluates a demand model over [0, periods).
func MaterializeDemand(m DemandModel, periods int) (DemandTrace, error) {
	return workload.Materialize(m, periods)
}

// MaterializePrices evaluates a price model over [0, periods).
func MaterializePrices(m PriceModel, periods int) (PriceTrace, error) {
	return pricing.Materialize(m, periods)
}

// NewSpotMarket wraps an on-demand price model with a spot-auction price
// process (mean-reverting discount with occasional capacity-crunch jumps,
// capped at CapFactor x on-demand).
func NewSpotMarket(onDemand PriceModel, cfg SpotConfig, rng *rand.Rand) (*SpotMarket, error) {
	return pricing.NewSpotMarket(onDemand, cfg, rng)
}

package dspp_test

import (
	"fmt"
	"math/rand"

	"dspp"
)

// ExampleNewController shows the minimal MPC loop: build the SLA matrix,
// the instance and a controller, then run one control period.
func ExampleNewController() {
	// One location, one DC 10 ms away; servers handle 250 req/s; mean
	// total delay must stay below 250 ms.
	sla, err := dspp.SLAMatrix([][]float64{{0.010}},
		dspp.SLAConfig{Mu: 250, MaxDelay: 0.25})
	if err != nil {
		fmt.Println(err)
		return
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{0.001},
		Capacities:      []float64{100},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ctrl, err := dspp.NewController(inst, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := ctrl.Step(
		[][]float64{{1000}, {1000}}, // demand forecast (req/s)
		[][]float64{{0.05}, {0.05}}, // price forecast ($/server/period)
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("servers: %.1f\n", res.NewState[0][0])
	// Output: servers: 4.1
}

// ExampleInstance_Assign demonstrates the paper's proportional routing
// policy (eq. 13): demand splits across DCs in proportion to x/a.
func ExampleInstance_Assign() {
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             [][]float64{{0.01}, {0.01}}, // equal a for both DCs
		ReconfigWeights: []float64{1e-3, 1e-3},
		Capacities:      []float64{100, 100},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	x := inst.NewState()
	x[0][0] = 3 // DC0 holds three times DC1's servers
	x[1][0] = 1
	assign, err := inst.Assign(x, []float64{1000})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("DC0: %.0f req/s, DC1: %.0f req/s\n", assign[0][0], assign[1][0])
	// Output: DC0: 750 req/s, DC1: 250 req/s
}

// ExampleSLAMatrix shows the M/M/1 reduction (eq. 10): pairs whose
// network latency exceeds the SLA budget are excluded with +Inf.
func ExampleSLAMatrix() {
	sla, err := dspp.SLAMatrix([][]float64{
		{0.050}, // within budget
		{0.300}, // beyond the 250 ms SLA on its own
	}, dspp.SLAConfig{Mu: 10, MaxDelay: 0.25})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("a(near) = %.2f servers per req/s\n", sla[0][0])
	fmt.Printf("a(far)  = %v\n", sla[1][0])
	// Output:
	// a(near) = 0.20 servers per req/s
	// a(far)  = +Inf
}

// ExampleNewSpotMarket prices servers under a spot bid strategy layered
// on a regional diurnal curve.
func ExampleNewSpotMarket() {
	region, _ := dspp.RegionByName("TX")
	onDemand := dspp.DiurnalServerPrice{Region: region, Class: dspp.MediumVM}
	market, err := dspp.NewSpotMarket(onDemand, dspp.SpotConfig{}, rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println(err)
		return
	}
	bid := dspp.BidPolicy{Market: market, BidFraction: 0.6}
	var spotTotal, odTotal float64
	for k := 0; k < 24; k++ {
		spotTotal += bid.Price(k)
		odTotal += onDemand.Price(k)
	}
	fmt.Printf("spot strategy cheaper than on-demand: %v\n", spotTotal < odTotal)
	// Output: spot strategy cheaper than on-demand: true
}

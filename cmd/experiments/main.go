// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII, Figs. 3–10) plus the ablations listed in DESIGN.md,
// printing each as an aligned text table together with its qualitative
// shape check.
//
// Usage:
//
//	experiments [-fig name] [-seed n] [-players n]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//	            [-telemetry-addr :8080]
//
// With no -fig, all experiments run in order. -telemetry-addr serves the
// shared ops mux (/metrics, /statusz, /debug/vars, /debug/pprof/*) while
// the suite runs — handy for profiling the long experiments live.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dspp"
	"dspp/internal/decomp"
	"dspp/internal/experiments"
	"dspp/internal/profiling"
)

type experiment struct {
	name string
	run  func(seed int64, players int) (*experiments.Table, error, error)
}

func registry() []experiment {
	return []experiment{
		{"fig3", func(int64, int) (*experiments.Table, error, error) {
			r := experiments.Fig3Prices()
			return r.Table, r.Check(), nil
		}},
		{"fig4", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.Fig4DemandTracking(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"fig5", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.Fig5PriceShifting()
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"fig6", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.Fig6HorizonSmoothing(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"fig7", func(seed int64, players int) (*experiments.Table, error, error) {
			r, err := experiments.Fig7GameConvergence(seed, players)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"fig8", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.Fig8HorizonVsIterations(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"fig9", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.Fig9HorizonVsCost(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.CheckFig9(), nil
		}},
		{"fig10", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.Fig10ConstantHorizon()
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.CheckFig10(), nil
		}},
		{"support", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.SupportPruning()
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"pos", func(seed int64, players int) (*experiments.Table, error, error) {
			r, err := experiments.PriceOfStability(seed, min(players, 6))
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-reconfig", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationReconfigWeight(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-baselines", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationBaselines(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-percentile", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.AblationPercentileSLA()
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-reservation", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationReservationRatio(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-stepsize", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationGameStepSize(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-ffd", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationFFDExactness(seed, 200)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"validate-mm1", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.ValidateMM1Model(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-soft", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationSoftController(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"game-receding", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.GameRecedingHorizon(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"extension-pooling", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.ExtensionPooling()
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"validate-endtoend", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.EndToEndLatency(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"ablation-integer", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.AblationIntegerRounding(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"poa", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.PriceOfAnarchy(seed, 6)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"predictors", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.PredictorShootout(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"extension-spot", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.ExtensionSpotPricing(seed)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"robust-outage", func(seed int64, _ int) (*experiments.Table, error, error) {
			r, err := experiments.OutageRecovery(seed)
			if err != nil {
				return nil, nil, err
			}
			fmt.Println(r.Fault.DegradationSummary())
			return r.Table, r.Check(), nil
		}},
		{"decomp-scaling", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.DecompScaling(context.Background(), false)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
		{"decomp-incremental", func(int64, int) (*experiments.Table, error, error) {
			r, err := experiments.DecompIncremental(context.Background(), false, nil)
			if err != nil {
				return nil, nil, err
			}
			return r.Table, r.Check(), nil
		}},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.String("fig", "", "experiment to run (default: all); one of fig3..fig10, support, pos, ablation-*, validate-mm1")
	seed := fs.Int64("seed", 2012, "random seed")
	players := fs.Int("players", 10, "max players for the game experiments")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	telemetryAddr := fs.String("telemetry-addr", "", "serve /metrics, /statusz, /debug/vars and /debug/pprof on this address while the suite runs")
	benchOut := fs.String("bench-out", "", "decomp-scaling/decomp-incremental: write the measured records as a JSON array to this file")
	benchFull := fs.Bool("bench-full", false, "decomp-scaling/decomp-incremental: run the full continental sizes (n≥1000; the monolithic references take minutes)")
	benchBaseline := fs.String("bench-baseline", "", "decomp-incremental only: BENCH_4-format JSON whose records supply the monolithic references and pre-incremental decomp times")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
		}
	}()
	if *telemetryAddr != "" {
		addr, stopServe, err := dspp.ServeTelemetry(*telemetryAddr, dspp.NewTelemetry())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: telemetry on http://%s/debug/pprof/\n", addr)
		defer func() {
			if serr := stopServe(); serr != nil {
				fmt.Fprintln(os.Stderr, "experiments:", serr)
			}
		}()
	}
	// The scaling benchmarks take their size and output options from the
	// bench flags, so they run outside the fixed registry signature.
	if *benchOut != "" || *benchFull || *benchBaseline != "" {
		var table *experiments.Table
		var shapeErr error
		var records any
		switch {
		case strings.EqualFold(*fig, "decomp-scaling"):
			if *benchBaseline != "" {
				return fmt.Errorf("-bench-baseline requires -fig decomp-incremental")
			}
			r, err := experiments.DecompScaling(context.Background(), *benchFull)
			if err != nil {
				return fmt.Errorf("decomp-scaling: %w", err)
			}
			table, shapeErr, records = r.Table, r.Check(), r.Records
		case strings.EqualFold(*fig, "decomp-incremental"):
			var baseline []decomp.ScalingRecord
			if *benchBaseline != "" {
				data, err := os.ReadFile(*benchBaseline)
				if err != nil {
					return err
				}
				if err := json.Unmarshal(data, &baseline); err != nil {
					return fmt.Errorf("baseline %s: %w", *benchBaseline, err)
				}
			}
			r, err := experiments.DecompIncremental(context.Background(), *benchFull, baseline)
			if err != nil {
				return fmt.Errorf("decomp-incremental: %w", err)
			}
			table, shapeErr, records = r.Table, r.Check(), r.Records
		default:
			return fmt.Errorf("-bench-out/-bench-full require -fig decomp-scaling or decomp-incremental")
		}
		fmt.Println(table.Render())
		if shapeErr != nil {
			fmt.Printf("shape check [%s]: FAIL: %v\n\n", strings.ToLower(*fig), shapeErr)
		} else {
			fmt.Printf("shape check [%s]: PASS\n\n", strings.ToLower(*fig))
		}
		if *benchOut != "" {
			data, err := json.MarshalIndent(records, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		// Unlike the interactive registry loop, the recording path must not
		// exit clean on a failed curve: bench.sh would commit a bad record.
		// The JSON is still written above for post-mortem.
		return shapeErr
	}
	ran := 0
	for _, e := range registry() {
		if *fig != "" && !strings.EqualFold(*fig, e.name) {
			continue
		}
		table, shapeErr, err := e.run(*seed, *players)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(table.Render())
		if shapeErr != nil {
			fmt.Printf("shape check [%s]: FAIL: %v\n\n", e.name, shapeErr)
		} else {
			fmt.Printf("shape check [%s]: PASS\n\n", e.name)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *fig)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

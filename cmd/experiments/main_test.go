package main

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := registry()
	want := map[string]bool{
		"fig3": false, "fig4": false, "fig5": false, "fig6": false,
		"fig7": false, "fig8": false, "fig9": false, "fig10": false,
		"support": false,
		"pos":     false, "ablation-reconfig": false, "ablation-baselines": false,
		"ablation-percentile": false, "ablation-reservation": false,
		"ablation-stepsize": false, "ablation-ffd": false,
		"validate-mm1": false, "ablation-soft": false,
		"game-receding": false, "extension-pooling": false,
		"validate-endtoend": false, "ablation-integer": false, "poa": false,
		"predictors": false, "extension-spot": false, "robust-outage": false,
		"decomp-scaling": false, "decomp-incremental": false,
	}
	for _, e := range reg {
		if _, ok := want[e.name]; !ok {
			t.Errorf("unexpected experiment %q", e.name)
		}
		want[e.name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// fig3 is instantaneous and has no dependencies.
	if err := run([]string{"-fig", "fig3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-fig", "does-not-exist"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestEveryExperimentPassesItsShapeCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	for _, e := range registry() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			table, shapeErr, err := e.run(2012, 6)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if table == nil || len(table.Rows) == 0 {
				t.Error("empty table")
			}
			if shapeErr != nil {
				t.Errorf("shape check failed: %v", shapeErr)
			}
		})
	}
}

// Command dsppgame runs the multi-provider resource-competition game
// (paper §VI): N service providers share data-center capacity, the
// infrastructure provider reallocates per-provider quotas by Algorithm 2,
// and the outcome is compared against the social optimum (Theorem 1
// predicts a price of stability of 1).
//
// Usage:
//
//	dsppgame [-players 4] [-bottleneck 150] [-window 3]
//	         [-alpha 100] [-epsilon 0.05] [-seed 11] [-timeout 30s]
//	         [-telemetry-addr :8080] [-trace-out game.jsonl]
//
// With -timeout, the best-response loop runs under a deadline: on expiry
// it stops within one round and reports the last (non-equilibrium)
// iterate instead of hanging on slow scenarios.
//
// With -telemetry-addr, a live ops endpoint serves /metrics, /statusz,
// /debug/vars and /debug/pprof/* during the run; -trace-out streams the
// best_response/round/qp_solve span hierarchy as JSONL (replayable with
// `dsppsim trace-summary`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"dspp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dsppgame:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("dsppgame", flag.ContinueOnError)
	players := fs.Int("players", 4, "number of competing providers")
	bottleneck := fs.Float64("bottleneck", 150, "capacity of the cheap bottleneck DC (capacity units)")
	window := fs.Int("window", 3, "shared prediction window W")
	alpha := fs.Float64("alpha", 100, "quota step size")
	epsilon := fs.Float64("epsilon", 0.01, "relative stability threshold (paper uses 0.05; tighter tracks the optimum closer)")
	seed := fs.Int64("seed", 11, "random seed")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for Algorithm 2 (0 = none)")
	telemetryAddr := fs.String("telemetry-addr", "", "serve /metrics, /statusz, /debug/vars and /debug/pprof on this address during the run")
	traceOut := fs.String("trace-out", "", "stream the span trace as JSONL to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tel *dspp.Telemetry
	if *telemetryAddr != "" || *traceOut != "" {
		var opts []dspp.TelemetryOption
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("create trace: %w", err)
			}
			defer f.Close()
			opts = append(opts, dspp.WithTraceWriter(f))
		}
		tel = dspp.NewTelemetry(opts...)
		if *telemetryAddr != "" {
			addr, stopServe, err := dspp.ServeTelemetry(*telemetryAddr, tel)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "dsppgame: telemetry on http://%s/metrics\n", addr)
			defer func() {
				if serr := stopServe(); serr != nil {
					fmt.Fprintln(os.Stderr, "dsppgame:", serr)
				}
			}()
		}
	}
	if *players < 1 || *players > 64 {
		return fmt.Errorf("players %d out of range 1-64", *players)
	}
	if *window < 1 {
		return fmt.Errorf("window %d", *window)
	}

	rng := rand.New(rand.NewSource(*seed))
	providers := make([]*dspp.Provider, *players)
	for i := range providers {
		providers[i] = randomProvider(rng, fmt.Sprintf("sp%d", i+1), *window)
	}
	scenario := &dspp.GameScenario{
		Capacity:  []float64{*bottleneck, math.Inf(1)},
		Providers: providers,
	}

	swp, err := dspp.SolveSocialWelfare(scenario, dspp.DefaultQPOptions())
	if err != nil {
		return fmt.Errorf("social welfare: %w", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ne, err := dspp.BestResponseCtx(ctx, scenario, dspp.BestResponseConfig{
		Alpha:     *alpha,
		Epsilon:   *epsilon,
		StepDecay: 0.3,
		Telemetry: tel,
	})
	if err != nil {
		// A deadline expiry with a partial iterate is reported, not fatal.
		if ne == nil || !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("best response: %w", err)
		}
		fmt.Fprintf(out, "timeout after %d rounds; reporting the last iterate\n\n", ne.Iterations)
	}
	ratio, err := dspp.EfficiencyRatio(ne, swp)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "dsppgame: %d providers, bottleneck %.0f units, W=%d\n\n",
		*players, *bottleneck, *window)
	fmt.Fprintf(out, "%-8s %10s %12s %12s %14s\n",
		"provider", "size", "NE cost", "SWP cost", "quota@cheap DC")
	for i, p := range scenario.Providers {
		fmt.Fprintf(out, "%-8s %10.0f %12.4f %12.4f %14.2f\n",
			p.Name, p.ServerSize,
			ne.Outcomes[i].Cost, swp.Outcomes[i].Cost, ne.Quotas[i][0])
	}
	fmt.Fprintf(out, "\nAlgorithm 2: %d iterations, converged=%v\n", ne.Iterations, ne.Converged)
	fmt.Fprintf(out, "total cost: NE %.4f vs social optimum %.4f (ratio %.4f)\n",
		ne.Total, swp.Total, ratio)
	fmt.Fprintf(out, "Theorem 1 predicts ratio -> 1 for the best equilibrium\n")
	if tel != nil {
		fmt.Fprintf(out, "\ntelemetry:\n%s", dspp.MetricsTable(tel))
	}
	return nil
}

// randomProvider mirrors the paper's §VII-B randomized per-SP parameters
// (μ, D, s, c, d̄) on a two-DC topology: cheap bottleneck plus expensive
// overflow.
func randomProvider(rng *rand.Rand, name string, window int) *dspp.Provider {
	mu := 150 + rng.Float64()*200
	dbar := 0.15 + rng.Float64()*0.2
	lat0 := 0.02 + rng.Float64()*0.03
	lat1 := 0.02 + rng.Float64()*0.03
	a0 := 1 / (mu - 1/(dbar-lat0))
	a1 := 1 / (mu - 1/(dbar-lat1))
	size := float64(int(1) << rng.Intn(3))
	c := 1e-5 + rng.Float64()*1e-4
	level := 2000 + rng.Float64()*6000
	demand := make([][]float64, window)
	prices := make([][]float64, window)
	for t := 0; t < window; t++ {
		demand[t] = []float64{level * (0.9 + 0.2*rng.Float64())}
		prices[t] = []float64{0.02, 0.12}
	}
	return &dspp.Provider{
		Name:            name,
		SLA:             [][]float64{{a0}, {a1}},
		ReconfigWeights: []float64{c, c},
		ServerSize:      size,
		Demand:          demand,
		Prices:          prices,
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunGameBasic(t *testing.T) {
	out, err := runToString(t, []string{"-players", "2", "-bottleneck", "100"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Algorithm 2", "social optimum", "sp1", "sp2", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunGameTelemetry(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "game.jsonl")
	out, err := runToString(t, []string{
		"-players", "2", "-bottleneck", "100",
		"-telemetry-addr", "127.0.0.1:0", "-trace-out", tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"telemetry:", "dspp_game_rounds_total", "dspp_qp_solves_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{`"span":"best_response"`, `"span":"best_response_round"`, `"span":"qp_solve"`} {
		if !strings.Contains(string(data), span) {
			t.Errorf("trace missing %s", span)
		}
	}
}

func TestRunGameFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-players", "0"},
		{"-players", "100"},
		{"-window", "0"},
	} {
		if _, err := runToString(t, args); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

package main

import (
	"os"
	"strings"
	"testing"
)

func runToString(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunGameBasic(t *testing.T) {
	out, err := runToString(t, []string{"-players", "2", "-bottleneck", "100"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Algorithm 2", "social optimum", "sp1", "sp2", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunGameFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-players", "0"},
		{"-players", "100"},
		{"-window", "0"},
	} {
		if _, err := runToString(t, args); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

// Command dsppd is the long-running placement daemon: it ingests
// streaming demand observations — one JSON object per stdin line, or
// POSTed to /observe — and every observation triggers one control
// period: re-forecast (with online multiplicative corrections for
// forecaster bias and M/M/1 delay-model error), re-solve the horizon QP
// under the per-period wall-clock budget via the deadline-bounded
// anytime ladder, apply the first control, report one JSON line on
// stdout, and checkpoint.
//
// Usage:
//
//	dsppd [-dcs 4] [-metros 8] [-horizon 5] [-budget 50ms] [-watchdog 200ms]
//	      [-predictor persistence|seasonal|ar|holtwinters] [-history 96] [-mu 150]
//	      [-checkpoint dsppd.ckpt] [-addr :8080] [-stall 0]
//	dsppd -continental [-locations 240] [-dcsites 24] [-continental-seed 41]
//	      [-shard-size 60] [-no-incremental] [-rank-k] [-carry-tol 1e-3]
//
// Observations look like
//
//	{"demand":[120,80,60,...],"prices":[0.11,0.09,...],"delay":[0.012,...]}
//
// with one demand (and optional delay) entry per metro and one price per
// data center. The instance is the paper's geo-distributed setup: DCs at
// San Jose/Houston/Atlanta/Chicago, the most populous non-DC metros as
// demand sites, a 30 ms CDN-class SLA.
//
// With -continental the daemon instead serves a generated continental
// topology (same construction as dsppsim -continental) through the
// decomposed controller: sharded region QPs under incremental
// coordination — dirty-shard scheduling, rank-k quota re-solves,
// cross-period plan carry — so a quiet stream of observations settles to
// holding carried plans instead of re-coordinating the full fleet every
// period. Report lines gain the per-period shard-solve economics
// (rounds, shard_solves, skipped_shards, held_shards, fast_resolves).
// Checkpoints are state-only on this path: a resumed run re-coordinates
// from the restored state rather than resuming bit-identically.
//
// SIGTERM or SIGINT shuts down cleanly: the last completed period's
// checkpoint is already on disk, and restarting with the same -checkpoint
// resumes with bit-identical plans. -addr serves POST /observe, /healthz,
// /metrics (Prometheus text format) and /statusz (per-period cost
// attribution with capacity dual prices, as JSON). -stall injects
// artificial solver latency per period — the quickest way to watch the
// anytime ladder and the watchdog work.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dspp"
	"dspp/internal/daemon"
	"dspp/internal/predict"
	"dspp/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dsppd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dsppd", flag.ContinueOnError)
	numDCs := fs.Int("dcs", 4, "number of data centers (1-4: San Jose, Houston, Atlanta, Chicago)")
	numMetros := fs.Int("metros", 8, "number of demand metros")
	horizon := fs.Int("horizon", 5, "MPC prediction horizon W")
	budget := fs.Duration("budget", 50*time.Millisecond, "per-period wall-clock budget (0 = unbudgeted)")
	watchdog := fs.Duration("watchdog", 0, "wedged-solve limit (default 4x budget)")
	predictor := fs.String("predictor", "persistence", "demand predictor: persistence|seasonal|ar|holtwinters")
	history := fs.Int("history", 96, "demand/price history retained for forecasting")
	mu := fs.Float64("mu", 150, "per-server service rate for the M/M/1 delay correction")
	checkpoint := fs.String("checkpoint", "", "checkpoint file (restored on start, written each period)")
	addr := fs.String("addr", "", "serve POST /observe, /healthz and /metrics on this address")
	stall := fs.Duration("stall", 0, "inject artificial solver latency per period (demo/testing)")
	continental := fs.Bool("continental", false, "serve a generated continental topology through the decomposed controller")
	locations := fs.Int("locations", 240, "continental mode: number of access locations")
	dcsites := fs.Int("dcsites", 24, "continental mode: number of data-center sites")
	continentalSeed := fs.Int64("continental-seed", 41, "continental mode: topology seed")
	shardSize := fs.Int("shard-size", 60, "continental mode: max locations per shard (0 = connected components only)")
	noIncremental := fs.Bool("no-incremental", false, "continental mode: disable dirty-shard scheduling (re-solve every shard every round)")
	rankK := fs.Bool("rank-k", true, "continental mode: rank-k capacity fast path for quota re-solves")
	carryTol := fs.Float64("carry-tol", 1e-3, "continental mode: cross-period plan carry tolerance (0 = re-coordinate every period)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		inst      *dspp.Instance
		decompOpt *dspp.DecompOptions
		numLoc    int
	)
	if *continental {
		scn, err := dspp.NewContinentalScenario(dspp.ContinentalScenarioConfig{
			Locations: *locations, DCSites: *dcsites, Seed: *continentalSeed,
		})
		if err != nil {
			return err
		}
		inst = scn.Inst
		numLoc = *locations
		*numDCs = *dcsites
		decompOpt = &dspp.DecompOptions{
			MaxShardSize:   *shardSize,
			NoIncremental:  *noIncremental,
			RankK:          *rankK,
			PeriodCarryTol: *carryTol,
		}
		// The continental scenario's SLA is built at its own service rate;
		// follow it for the delay correction unless -mu was given explicitly.
		muSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "mu" {
				muSet = true
			}
		})
		if !muSet {
			*mu = 1000
		}
	} else {
		var metros []dspp.City
		var err error
		inst, metros, err = buildInstance(*numDCs, *numMetros)
		if err != nil {
			return err
		}
		numLoc = len(metros)
	}
	var pred predict.Predictor
	switch strings.ToLower(*predictor) {
	case "persistence":
		pred = dspp.PersistencePredictor{}
	case "seasonal":
		pred = dspp.SeasonalNaivePredictor{Season: 24}
	case "ar":
		pred = dspp.ARPredictor{P: 2}
	case "holtwinters":
		pred = dspp.HoltWintersPredictor{Season: 24}
	default:
		return fmt.Errorf("unknown predictor %q", *predictor)
	}

	tel := dspp.NewTelemetry()
	d, err := daemon.New(daemon.Config{
		Instance:       inst,
		Horizon:        *horizon,
		Budget:         *budget,
		Watchdog:       *watchdog,
		Predictor:      pred,
		History:        *history,
		Mu:             *mu,
		CheckpointPath: *checkpoint,
		Telemetry:      tel,
		Addr:           *addr,
		Out:            os.Stdout,
		Decomp:         decompOpt,
	})
	if err != nil {
		return err
	}
	if *stall > 0 {
		d.SetStall(*stall)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	resumed := ""
	if d.Restored() {
		resumed = fmt.Sprintf(", resumed at period %d", d.Period())
	}
	if *continental {
		inc := "incremental coordination"
		if *noIncremental {
			inc = "incremental coordination off"
		}
		fmt.Fprintf(os.Stderr, "dsppd: continental, %d DCs, %d locations, W=%d, budget=%v, decomposed (shard size %d, %s)%s\n",
			*numDCs, numLoc, *horizon, *budget, *shardSize, inc, resumed)
	} else {
		fmt.Fprintf(os.Stderr, "dsppd: %d DCs, %d metros, W=%d, budget=%v%s\n",
			*numDCs, numLoc, *horizon, *budget, resumed)
	}
	fmt.Fprintf(os.Stderr, "dsppd: expecting {\"demand\":[%d],\"prices\":[%d],\"delay\":[%d]?} per line\n",
		numLoc, *numDCs, numLoc)
	if *addr != "" {
		// The daemon binds inside Run; report the address once it is up.
		go func() {
			for d.Addr() == "" {
				time.Sleep(10 * time.Millisecond)
			}
			fmt.Fprintf(os.Stderr, "dsppd: serving http://%s/observe /healthz /metrics /statusz\n", d.Addr())
		}()
	}

	err = d.Run(ctx, os.Stdin)
	fmt.Fprintf(os.Stderr, "dsppd: stopped after %d periods (%d watchdog restarts)\n",
		d.Period(), d.WatchdogTrips())
	// Footer: period wall-time and budget-utilization economics, read back
	// from the daemon's own histograms so the numbers match /metrics.
	snap := tel.Registry().Snapshot()
	if n := snap[telemetry.MetricDaemonPeriodSeconds+"_count"]; n > 0 {
		line := fmt.Sprintf("dsppd: period wall mean %.1fms over %.0f periods",
			snap[telemetry.MetricDaemonPeriodSeconds+"_sum"]/n*1e3, n)
		if bn := snap[telemetry.MetricBudgetUtilization+"_count"]; bn > 0 {
			line += fmt.Sprintf(", budget utilization mean %.0f%%",
				snap[telemetry.MetricBudgetUtilization+"_sum"]/bn*100)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	return err
}

// buildInstance assembles the paper's geo-distributed instance: DC sites
// priced by their regional electricity curves and the most populous
// non-DC metros as demand locations (the same construction dsppsim uses).
func buildInstance(numDCs, numMetros int) (*dspp.Instance, []dspp.City, error) {
	if numDCs < 1 || numDCs > 4 {
		return nil, nil, fmt.Errorf("dcs %d out of range 1-4", numDCs)
	}
	if numMetros < 1 || numMetros > 20 {
		return nil, nil, fmt.Errorf("metros %d out of range 1-20", numMetros)
	}
	dcNames := []string{"San Jose", "Houston", "Atlanta", "Chicago"}
	var dcCities []dspp.City
	for i := 0; i < numDCs; i++ {
		city, ok := dspp.CityByName(dcNames[i])
		if !ok {
			return nil, nil, fmt.Errorf("missing city %q", dcNames[i])
		}
		dcCities = append(dcCities, city)
	}
	var metros []dspp.City
	for _, c := range dspp.USCities() {
		hostsDC := false
		for _, d := range dcCities {
			if d.Name == c.Name {
				hostsDC = true
				break
			}
		}
		if !hostsDC {
			metros = append(metros, c)
		}
		if len(metros) == numMetros {
			break
		}
	}
	net, err := dspp.BuildGeoNetwork(dcCities, metros, 0.002)
	if err != nil {
		return nil, nil, err
	}
	sla, err := dspp.SLAMatrix(net.LatencyMatrix(), dspp.SLAConfig{Mu: 150, MaxDelay: 0.03})
	if err != nil {
		return nil, nil, err
	}
	weights := make([]float64, numDCs)
	caps := make([]float64, numDCs)
	for i := range weights {
		weights[i] = 2e-5
		caps[i] = 2000
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: weights,
		Capacities:      caps,
	})
	if err != nil {
		return nil, nil, err
	}
	return inst, metros, nil
}

// Command dsppsim runs a single-provider dynamic service placement
// simulation over a geo-distributed cloud and prints the per-period
// series: realized demand, per-DC allocation and prices, cost components
// and SLA outcome.
//
// The scenario follows the paper's setup: data centers in the four Fig. 3
// regions priced by their regional electricity curves, population-weighted
// diurnal demand from major US metros, an MPC controller with a chosen
// prediction horizon and predictor.
//
// Usage:
//
//	dsppsim [-dcs 4] [-metros 8] [-periods 48] [-horizon 5]
//	        [-predictor perfect|persistence|seasonal|ar] [-seed 7]
//	        [-fault outage:dc=1,start=10,end=20] [-fault noise:start=0,end=47,factor=0.3]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//	        [-telemetry-addr :8080] [-serve-after 30s] [-trace-out run.jsonl]
//	dsppsim -continental [-locations 1000] [-dcsites 100] [-decomp] [-shard-size 125]
//	        [-periods 24] [-horizon 2] [-seed 7] [-diurnal-amp 0.3]
//	        [-no-incremental] [-rank-k] [-carry-tol 1e-3]
//	dsppsim trace-summary run.jsonl
//
// With -continental the paper's four-DC setup is replaced by a generated
// continental-scale topology (see -locations/-dcsites) and the controller
// runs the geographic decomposition: sharded region QPs coordinated by
// dual-price capacity re-division on the DCs shared between regions
// (-decomp=false forces the monolithic QP for comparison; -shard-size
// caps locations per shard). The header reports the partition next to the
// support stats, and the per-period table collapses to totals — hundreds
// of per-DC columns would not be readable. Coordination is incremental by
// default — dirty-shard scheduling, rank-k quota re-solves, cross-period
// plan carry — and the run footer reports the realized shard-solve
// economics; -no-incremental, -rank-k=false and -carry-tol 0 switch the
// individual tiers off. -diurnal-amp scales the demand swing: 0 gives the
// flat steady state where carried plans should hold whole periods.
//
// Each -fault flag adds one event to the run's fault schedule
// (outage | shock | spike | surge | noise); the controller degrades
// gracefully instead of aborting, and the per-period table reports the
// degradation mode and shed demand.
//
// With -telemetry-addr, a live ops endpoint serves /metrics (Prometheus
// text format), /statusz (per-period cost attribution with capacity dual
// prices, as JSON), /debug/vars and /debug/pprof/* while the run executes
// (-serve-after keeps it up afterwards for scraping); -trace-out streams
// the span hierarchy as JSONL, which `dsppsim trace-summary` replays
// into the same aggregates offline — including the coordination
// critical-path table on decomposed traces.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"dspp"
	"dspp/internal/profiling"
	"dspp/internal/workload"
)

// faultSpecs collects repeated -fault flags.
type faultSpecs []string

func (f *faultSpecs) String() string { return strings.Join(*f, "; ") }

func (f *faultSpecs) Set(v string) error {
	if _, err := dspp.ParseFault(v); err != nil {
		return err
	}
	*f = append(*f, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dsppsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	if len(args) > 0 && args[0] == "trace-summary" {
		return traceSummary(args[1:], out)
	}
	fs := flag.NewFlagSet("dsppsim", flag.ContinueOnError)
	numDCs := fs.Int("dcs", 4, "number of data centers (1-4: San Jose, Houston, Atlanta, Chicago)")
	numMetros := fs.Int("metros", 8, "number of demand metros")
	periods := fs.Int("periods", 48, "control periods (hours)")
	horizon := fs.Int("horizon", 5, "MPC prediction horizon W")
	predictor := fs.String("predictor", "perfect", "demand predictor: perfect|persistence|seasonal|ar|holtwinters")
	seed := fs.Int64("seed", 7, "random seed")
	csvOut := fs.String("csv", "", "also write the per-period series to this CSV file")
	var faultFlags faultSpecs
	fs.Var(&faultFlags, "fault", "fault spec (repeatable), e.g. outage:dc=1,start=10,end=20")
	budget := fs.Duration("budget", 0, "per-period wall-clock budget enabling the anytime ladder (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	telemetryAddr := fs.String("telemetry-addr", "", "serve /metrics, /statusz, /debug/vars and /debug/pprof on this address during the run")
	serveAfter := fs.Duration("serve-after", 0, "keep the telemetry endpoint up this long after the run (needs -telemetry-addr)")
	traceOut := fs.String("trace-out", "", "stream the span trace as JSONL to this file (replay with `dsppsim trace-summary`)")
	continental := fs.Bool("continental", false, "run a generated continental-scale topology instead of the paper's four-DC setup")
	locations := fs.Int("locations", 1000, "continental mode: number of access locations")
	dcsites := fs.Int("dcsites", 100, "continental mode: number of data-center sites")
	useDecomp := fs.Bool("decomp", true, "continental mode: solve via geographic decomposition (false = monolithic QP)")
	shardSize := fs.Int("shard-size", 125, "continental mode: max locations per shard (0 = connected components only)")
	diurnalAmp := fs.Float64("diurnal-amp", 0.3, "continental mode: diurnal demand swing amplitude in [0,1] (0 = flat steady-state demand)")
	noIncremental := fs.Bool("no-incremental", false, "continental mode: disable dirty-shard scheduling (re-solve every shard every round)")
	rankK := fs.Bool("rank-k", true, "continental mode: rank-k capacity fast path for quota re-solves")
	carryTol := fs.Float64("carry-tol", 1e-3, "continental mode: cross-period plan carry tolerance (0 = re-coordinate every period)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "dsppsim:", perr)
		}
	}()
	var tel *dspp.Telemetry
	var traceFile *os.File
	if *telemetryAddr != "" || *traceOut != "" {
		var opts []dspp.TelemetryOption
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("create trace: %w", err)
			}
			defer traceFile.Close()
			opts = append(opts, dspp.WithTraceWriter(traceFile))
		}
		tel = dspp.NewTelemetry(opts...)
		if *telemetryAddr != "" {
			addr, stopServe, err := dspp.ServeTelemetry(*telemetryAddr, tel)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "dsppsim: telemetry on http://%s/metrics /statusz\n", addr)
			defer func() {
				if *serveAfter > 0 {
					fmt.Fprintf(os.Stderr, "dsppsim: serving telemetry for another %s\n", *serveAfter)
					time.Sleep(*serveAfter)
				}
				if serr := stopServe(); serr != nil {
					fmt.Fprintln(os.Stderr, "dsppsim:", serr)
				}
			}()
		}
	}
	if *continental {
		if *diurnalAmp < 0 || *diurnalAmp > 1 {
			return fmt.Errorf("diurnal-amp %g out of range [0,1]", *diurnalAmp)
		}
		return runContinental(out, tel, continentalRun{
			locations: *locations, dcsites: *dcsites,
			periods: *periods, horizon: *horizon, seed: *seed,
			decomp: *useDecomp, shardSize: *shardSize,
			diurnalAmp: *diurnalAmp, noIncremental: *noIncremental,
			rankK: *rankK, carryTol: *carryTol,
		})
	}
	if *numDCs < 1 || *numDCs > 4 {
		return fmt.Errorf("dcs %d out of range 1-4", *numDCs)
	}
	if *numMetros < 1 || *numMetros > 20 {
		return fmt.Errorf("metros %d out of range 1-20", *numMetros)
	}

	// Data centers at the paper's sites, priced by their regions.
	dcNames := []string{"San Jose", "Houston", "Atlanta", "Chicago"}
	regionNames := []string{"CA", "TX", "GA", "IL"}
	var dcCities []dspp.City
	var priceModels []dspp.PriceModel
	for i := 0; i < *numDCs; i++ {
		city, ok := dspp.CityByName(dcNames[i])
		if !ok {
			return fmt.Errorf("missing city %q", dcNames[i])
		}
		dcCities = append(dcCities, city)
		region, ok := dspp.RegionByName(regionNames[i])
		if !ok {
			return fmt.Errorf("missing region %q", regionNames[i])
		}
		priceModels = append(priceModels, dspp.DiurnalServerPrice{
			Region: region, Class: dspp.MediumVM,
		})
	}
	// Demand metros: the most populous cities not hosting a DC.
	var metros []dspp.City
	for _, c := range dspp.USCities() {
		hostsDC := false
		for _, d := range dcCities {
			if d.Name == c.Name {
				hostsDC = true
				break
			}
		}
		if !hostsDC {
			metros = append(metros, c)
		}
		if len(metros) == *numMetros {
			break
		}
	}
	net, err := dspp.BuildGeoNetwork(dcCities, metros, 0.002)
	if err != nil {
		return err
	}
	// A CDN-class SLA (30 ms end-to-end) makes locality matter: distant
	// DCs are SLA-infeasible for most metros, so each region is served
	// nearby and the controller trades the remaining latency headroom
	// against regional prices as in Fig. 5. With few DCs (-dcs 1..2) some
	// metros may have no feasible DC at this SLA; the constructor reports
	// that as an infeasible-placement error.
	sla, err := dspp.SLAMatrix(net.LatencyMatrix(), dspp.SLAConfig{Mu: 150, MaxDelay: 0.03})
	if err != nil {
		return err
	}
	weights := make([]float64, *numDCs)
	caps := make([]float64, *numDCs)
	for i := range weights {
		weights[i] = 2e-5
		caps[i] = 2000
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: weights,
		Capacities:      caps,
	})
	if err != nil {
		return err
	}

	// Population-weighted diurnal Poisson demand, phase-shifted per metro
	// longitude (rough time zones).
	total := 0
	for _, m := range metros {
		total += m.Population
	}
	rng := rand.New(rand.NewSource(*seed))
	demandTrace := make([][]float64, *periods+*horizon+1)
	for k := range demandTrace {
		demandTrace[k] = make([]float64, len(metros))
	}
	for v, m := range metros {
		base := 3000 * float64(m.Population) / float64(total)
		model, err := dspp.NewDiurnalDemand(base*0.15, base)
		if err != nil {
			return err
		}
		model.PhaseShift = int(m.Lon/15) + 6 // crude UTC offset alignment
		for k := range demandTrace {
			n, err := workload.SamplePoisson(model.Rate(k), 1, rng)
			if err != nil {
				return err
			}
			demandTrace[k][v] = float64(n)
		}
	}
	priceTrace := make([][]float64, *periods+*horizon+1)
	for k := range priceTrace {
		priceTrace[k] = make([]float64, *numDCs)
		for l, m := range priceModels {
			priceTrace[k][l] = m.Price(k)
		}
	}

	var demandPred dspp.Predictor
	switch strings.ToLower(*predictor) {
	case "perfect":
		demandPred = nil
	case "persistence":
		demandPred = dspp.PersistencePredictor{}
	case "seasonal":
		demandPred = dspp.SeasonalNaivePredictor{Season: 24}
	case "ar":
		demandPred = dspp.ARPredictor{P: 2}
	case "holtwinters":
		demandPred = dspp.HoltWintersPredictor{Season: 24}
	default:
		return fmt.Errorf("unknown predictor %q", *predictor)
	}

	sched, err := dspp.ParseFaultSchedule(faultFlags, *seed)
	if err != nil {
		return err
	}
	ctrlOpts := []dspp.ControllerOption{dspp.WithTelemetry(tel)}
	if *budget > 0 {
		ctrlOpts = append(ctrlOpts, dspp.WithBudget(*budget))
	}
	ctrl, err := dspp.NewController(inst, *horizon, ctrlOpts...)
	if err != nil {
		return err
	}
	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:        inst,
		Policy:          dspp.NewMPCPolicy(ctrl),
		DemandTrace:     demandTrace,
		PriceTrace:      priceTrace,
		Periods:         *periods,
		Horizon:         *horizon,
		DemandPredictor: demandPred,
		Faults:          sched,
		Budget:          *budget,
		Telemetry:       tel,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "dsppsim: %d DCs, %d metros, %d periods, W=%d, predictor=%s\n",
		*numDCs, len(metros), *periods, *horizon, *predictor)
	sup := inst.Support()
	fmt.Fprintf(out, "support: %d/%d (DC, metro) pairs SLA-feasible (%.0f%% pruned), %d–%d DCs per metro\n\n",
		sup.FeasiblePairs, sup.TotalPairs, 100*sup.PrunedFraction,
		sup.MinDCsPerLocation, sup.MaxDCsPerLocation)
	fmt.Fprintf(out, "%-6s %12s", "hour", "demand")
	for i := 0; i < *numDCs; i++ {
		fmt.Fprintf(out, " %14s", dcNames[i])
	}
	withFaults := len(faultFlags) > 0 || *budget > 0
	fmt.Fprintf(out, " %10s %6s", "cost", "SLA")
	if withFaults {
		fmt.Fprintf(out, " %-s", "degradation")
	}
	fmt.Fprintln(out)
	for _, s := range res.Steps {
		var totalDemand float64
		for _, d := range s.Demand {
			totalDemand += d
		}
		fmt.Fprintf(out, "%-6d %12.0f", s.Period, totalDemand)
		for _, x := range s.ServersByDC {
			fmt.Fprintf(out, " %14.1f", x)
		}
		slaMark := "ok"
		if !s.SLAMet {
			slaMark = "MISS"
		}
		fmt.Fprintf(out, " %10.4f %6s", s.Cost.Total(), slaMark)
		if withFaults {
			fmt.Fprintf(out, " %s", s.Degradation)
			if *budget > 0 {
				fmt.Fprintf(out, " [%v]", s.Wall.Round(100*time.Microsecond))
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "\ntotal cost %.4f (resource %.4f, reconfig %.4f), SLA violations %d/%d\n",
		res.TotalCost, res.TotalResource, res.TotalReconfig, res.SLAViolations, len(res.Steps))
	if withFaults {
		fmt.Fprintln(out, res.DegradationSummary())
	}
	if *budget > 0 {
		fmt.Fprintf(out, "budget %v: %d/%d period overruns (max step %v), anytime rungs %d\n",
			*budget, res.BudgetOverruns, len(res.Steps), res.MaxStepWall.Round(10*time.Microsecond), res.AnytimeSteps)
	}

	if tel != nil {
		fmt.Fprintf(out, "\ntelemetry:\n%s", dspp.MetricsTable(tel))
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := dspp.WriteSimResultCSV(f, res, dcNames[:*numDCs]); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", *csvOut)
	}
	return nil
}

// traceSummary replays a JSONL span trace (written by -trace-out) into
// the per-span aggregate table and, when the trace covers a simulation
// run, the same degradation summary line the live run printed.
func traceSummary(args []string, out *os.File) error {
	fs := flag.NewFlagSet("dsppsim trace-summary", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dsppsim trace-summary <trace.jsonl>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := dspp.ReadTrace(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d spans\n\n", len(events))
	fmt.Fprint(out, dspp.SummarizeTrace(events).Table())
	if line, ok := dspp.DegradationFromTrace(events); ok {
		fmt.Fprintf(out, "\n%s\n", line)
	}
	// Decomposed traces carry coordinate→shard_solve spans; reconstruct
	// which shard dominated each round (the coordination critical path).
	if table := dspp.FormatCriticalPaths(dspp.CriticalPathsFromTrace(events), 5); table != "" {
		fmt.Fprintf(out, "\n%s", table)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runToString(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunBasic(t *testing.T) {
	out := runToString(t, []string{"-periods", "3", "-metros", "4", "-horizon", "2"})
	if !strings.Contains(out, "total cost") {
		t.Errorf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "San Jose") {
		t.Errorf("missing DC column:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// banner, blank, header, 3 periods, blank, summary
	if len(lines) < 7 {
		t.Errorf("too few lines (%d):\n%s", len(lines), out)
	}
}

func TestRunPredictors(t *testing.T) {
	for _, p := range []string{"perfect", "persistence", "seasonal", "ar", "holtwinters"} {
		out := runToString(t, []string{"-periods", "3", "-metros", "3", "-horizon", "2", "-predictor", p})
		if !strings.Contains(out, "predictor="+p) {
			t.Errorf("%s: banner missing predictor", p)
		}
	}
}

func TestRunCSVExport(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "run.csv")
	out := runToString(t, []string{"-periods", "3", "-metros", "3", "-csv", csvPath})
	if !strings.Contains(out, "wrote "+csvPath) {
		t.Errorf("missing csv confirmation:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "period,demand_total") {
		t.Errorf("csv header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunTelemetryAndTraceSummary(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	out := runToString(t, []string{
		"-periods", "4", "-metros", "3", "-horizon", "2",
		"-telemetry-addr", "127.0.0.1:0", "-trace-out", tracePath,
		"-fault", "outage:dc=1,start=2,end=3",
	})
	if !strings.Contains(out, "telemetry:") || !strings.Contains(out, "dspp_qp_solves_total") {
		t.Errorf("missing telemetry table:\n%s", out)
	}
	// The replayed trace must reproduce the run's degradation summary
	// line verbatim.
	var wantLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "steps degraded") || strings.Contains(line, "steps clean") {
			wantLine = line
			break
		}
	}
	if wantLine == "" {
		t.Fatalf("run printed no degradation summary:\n%s", out)
	}
	summary := runToString(t, []string{"trace-summary", tracePath})
	if !strings.Contains(summary, wantLine) {
		t.Errorf("trace-summary missing %q:\n%s", wantLine, summary)
	}
	for _, span := range []string{"run", "period", "mpc_step", "qp_solve"} {
		if !strings.Contains(summary, span) {
			t.Errorf("trace-summary missing span %q:\n%s", span, summary)
		}
	}
}

func TestTraceSummaryErrors(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"trace-summary"}, f); err == nil {
		t.Error("trace-summary without a file accepted")
	}
	if err := run([]string{"trace-summary", filepath.Join(t.TempDir(), "absent.jsonl")}, f); err == nil {
		t.Error("trace-summary on a missing file accepted")
	}
}

func TestRunFlagErrors(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cases := [][]string{
		{"-dcs", "0"},
		{"-dcs", "9"},
		{"-metros", "0"},
		{"-metros", "99"},
		{"-predictor", "oracle-of-delphi"},
	}
	for _, args := range cases {
		if err := run(args, f); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

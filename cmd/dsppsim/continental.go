package main

import (
	"fmt"
	"math"
	"os"

	"dspp"
	"dspp/internal/telemetry"
)

// continentalRun bundles the continental-mode parameters.
type continentalRun struct {
	locations, dcsites int
	periods, horizon   int
	seed               int64
	decomp             bool
	shardSize          int
	diurnalAmp         float64
	noIncremental      bool
	rankK              bool
	carryTol           float64
}

// runContinental simulates a generated continental-scale topology. The
// steady scenario demand is modulated by a per-location diurnal factor
// of amplitude cfg.diurnalAmp (phase-shifted by longitude, peak = the
// scenario's sizing point, so the instance stays feasible at every hour;
// amplitude 0 is the flat steady state); prices keep the scenario's
// per-DC draw. The policy is either the decomposed controller or the
// plain monolithic MPC controller.
func runContinental(out *os.File, tel *dspp.Telemetry, cfg continentalRun) error {
	scn, err := dspp.NewContinentalScenario(dspp.ContinentalScenarioConfig{
		Locations: cfg.locations,
		DCSites:   cfg.dcsites,
		Seed:      cfg.seed,
		Horizon:   cfg.horizon,
	})
	if err != nil {
		return err
	}
	inst := scn.Inst

	steps := cfg.periods + cfg.horizon + 1
	demandTrace := make([][]float64, steps)
	priceTrace := make([][]float64, steps)
	amp := cfg.diurnalAmp
	for k := range demandTrace {
		demandTrace[k] = make([]float64, cfg.locations)
		for v := range demandTrace[k] {
			phase := scn.Net.Access[v].City.Lon/15 + 6
			f := (1 - amp) + amp*math.Sin(2*math.Pi*(float64(k)+phase)/24)
			demandTrace[k][v] = scn.Demand[0][v] * f
		}
		priceTrace[k] = append([]float64(nil), scn.Prices[0]...)
	}

	// The incremental footer needs the coordination counters even when no
	// ops endpoint asked for a hub; accounting is cheap, the full metrics
	// table stays gated on the caller's tel.
	acct := tel
	if acct == nil && cfg.decomp {
		acct = dspp.NewTelemetry()
	}

	var policy dspp.Policy
	var part *dspp.Partition
	if cfg.decomp {
		ctrl, err := dspp.NewDecompController(inst, cfg.horizon, dspp.DecompOptions{
			MaxShardSize:   cfg.shardSize,
			Telemetry:      acct,
			NoIncremental:  cfg.noIncremental,
			RankK:          cfg.rankK,
			PeriodCarryTol: cfg.carryTol,
		})
		if err != nil {
			return err
		}
		part = ctrl.Partition()
		policy = ctrl
	} else {
		ctrl, err := dspp.NewController(inst, cfg.horizon, dspp.WithTelemetry(tel))
		if err != nil {
			return err
		}
		policy = dspp.NewMPCPolicy(ctrl)
	}

	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:    inst,
		Policy:      policy,
		DemandTrace: demandTrace,
		PriceTrace:  priceTrace,
		Periods:     cfg.periods,
		Horizon:     cfg.horizon,
		Telemetry:   tel,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "dsppsim: continental, %d DCs, %d locations, %d periods, W=%d, policy=%s\n",
		cfg.dcsites, cfg.locations, cfg.periods, cfg.horizon, policy.Name())
	sup := inst.Support()
	fmt.Fprintf(out, "support: %d/%d (DC, location) pairs SLA-feasible (%.0f%% pruned), %d–%d DCs per location\n",
		sup.FeasiblePairs, sup.TotalPairs, 100*sup.PrunedFraction,
		sup.MinDCsPerLocation, sup.MaxDCsPerLocation)
	switch {
	case part != nil:
		fmt.Fprintf(out, "decomposition: %s\n\n", part.Stats())
	case cfg.decomp:
		fmt.Fprintf(out, "decomposition: bypassed (instance below the decomposition threshold)\n\n")
	default:
		fmt.Fprintf(out, "decomposition: off (monolithic QP)\n\n")
	}

	// Compact per-period table: with hundreds of DCs the per-DC columns of
	// the paper-scale table are unreadable, so report totals.
	fmt.Fprintf(out, "%-6s %14s %14s %8s %10s %6s %s\n",
		"hour", "demand", "servers", "DCs-on", "cost", "SLA", "mode")
	for _, s := range res.Steps {
		var totalDemand float64
		for _, d := range s.Demand {
			totalDemand += d
		}
		var servers float64
		var active int
		for _, x := range s.ServersByDC {
			servers += x
			if x > 1e-9 {
				active++
			}
		}
		slaMark := "ok"
		if !s.SLAMet {
			slaMark = "MISS"
		}
		fmt.Fprintf(out, "%-6d %14.0f %14.1f %8d %10.2f %6s %s\n",
			s.Period, totalDemand, servers, active, s.Cost.Total(), slaMark, s.Degradation.Mode)
	}
	fmt.Fprintf(out, "\ntotal cost %.2f (resource %.2f, reconfig %.2f), SLA violations %d/%d\n",
		res.TotalCost, res.TotalResource, res.TotalReconfig, res.SLAViolations, len(res.Steps))
	fmt.Fprintln(out, res.DegradationSummary())
	if res.MonolithicSteps > 0 {
		fmt.Fprintf(out, "monolithic fallbacks: %d/%d steps\n", res.MonolithicSteps, len(res.Steps))
	}
	if part != nil && acct != nil && len(res.Steps) > 0 {
		reg := acct.Registry()
		rounds := reg.Counter(telemetry.MetricCoordinationRounds).Value()
		solves := reg.Counter(telemetry.MetricShardSolves).Value()
		skipped := reg.Counter(telemetry.MetricShardsSkipped).Value()
		fast := reg.Counter(telemetry.MetricQuotaFastResolves).Value()
		slots := float64(len(part.Shards) * len(res.Steps))
		fmt.Fprintf(out, "incremental: %.0f coordination rounds, %.0f shard solves, %.0f skipped/held, %.0f rank-k fast re-solves — %.2f solves per shard-period\n",
			rounds, solves, skipped, fast, solves/slots)
	}
	if tel != nil {
		fmt.Fprintf(out, "\ntelemetry:\n%s", dspp.MetricsTable(tel))
	}
	return nil
}

// Geoplacement: the paper's headline scenario (Figs. 3–5) end to end.
//
// Three data centers — Mountain View (CA), Houston (TX), Atlanta (GA) —
// serve three customer regions under the Fig. 3 diurnal electricity
// prices. Demand is constant, so every movement in the allocation is
// price-driven: as the California price peaks in the late afternoon the
// controller migrates load from Mountain View toward Houston, exactly the
// behaviour of the paper's Fig. 5.
//
// Run with:
//
//	go run ./examples/geoplacement
package main

import (
	"fmt"
	"log"
	"strings"

	"dspp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Each region has a local DC (20 ms) and two remote DCs (52 ms).
	// With 30 req/s servers and a 100 ms SLA, serving a region remotely
	// takes ~1.9x the servers — the premium the price gap must beat.
	latency := [][]float64{
		{0.020, 0.052, 0.052}, // Mountain View → {west, south, east}
		{0.052, 0.020, 0.052}, // Houston
		{0.052, 0.052, 0.020}, // Atlanta
	}
	sla, err := dspp.SLAMatrix(latency, dspp.SLAConfig{Mu: 30, MaxDelay: 0.1})
	if err != nil {
		return err
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{2e-4, 2e-4, 2e-4},
		Capacities:      []float64{2000, 2000, 2000},
	})
	if err != nil {
		return err
	}

	// Fig. 3 regional price curves, medium (70 W) VMs.
	var prices []dspp.PriceModel
	for _, name := range []string{"CA", "TX", "GA"} {
		region, ok := dspp.RegionByName(name)
		if !ok {
			return fmt.Errorf("region %q missing", name)
		}
		prices = append(prices, dspp.DiurnalServerPrice{Region: region, Class: dspp.MediumVM})
	}

	const periods = 24
	const horizon = 5
	demandTrace := make([][]float64, periods+horizon+1)
	priceTrace := make([][]float64, periods+horizon+1)
	for k := range demandTrace {
		demandTrace[k] = []float64{300, 300, 300} // constant demand
		priceTrace[k] = make([]float64, 3)
		for l, m := range prices {
			priceTrace[k][l] = m.Price(k)
		}
	}

	ctrl, err := dspp.NewController(inst, horizon)
	if err != nil {
		return err
	}
	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:    inst,
		Policy:      dspp.NewMPCPolicy(ctrl),
		DemandTrace: demandTrace,
		PriceTrace:  priceTrace,
		Periods:     periods,
		Horizon:     horizon,
	})
	if err != nil {
		return err
	}

	fmt.Println("Price-chasing under the Fig. 3 electricity curves (constant demand):")
	fmt.Println()
	fmt.Println("hour   MountainView   Houston   Atlanta    CA $/MWh-shape")
	for _, s := range res.Steps {
		bar := strings.Repeat("#", int(s.Prices[0]*300))
		fmt.Printf("%-6d %-14.1f %-9.1f %-10.1f %s\n",
			s.Period-1, s.ServersByDC[0], s.ServersByDC[1], s.ServersByDC[2], bar)
	}
	fmt.Printf("\ntotal cost $%.2f, SLA violations %d/%d\n",
		res.TotalCost, res.SLAViolations, len(res.Steps))
	fmt.Println("note how Mountain View sheds servers into Houston when the CA price peaks")
	return nil
}

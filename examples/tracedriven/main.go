// Tracedriven: feeding external traces through the controller.
//
// Real deployments plan against collected traces — historical demand from
// the monitoring module, day-ahead electricity prices from the market.
// This example shows that round trip with the library's CSV layer: it
// synthesizes a demand trace and a price trace, writes both as CSV (as a
// collector would), reads them back (as an operator's planning job
// would), runs the MPC controller over the recovered traces, and exports
// the per-period result as CSV for plotting.
//
// Run with:
//
//	go run ./examples/tracedriven
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"dspp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	periods = 24
	horizon = 4
)

func run() error {
	// 1. Synthesize and export traces (the "collector" side).
	base, err := dspp.NewDiurnalDemand(800, 6000)
	if err != nil {
		return err
	}
	demandTrace, err := dspp.MaterializeDemand(base, periods+horizon+1)
	if err != nil {
		return err
	}
	tx, _ := dspp.RegionByName("TX")
	priceTrace, err := dspp.MaterializePrices(
		dspp.DiurnalServerPrice{Region: tx, Class: dspp.MediumVM}, periods+horizon+1)
	if err != nil {
		return err
	}
	var demandCSV, priceCSV bytes.Buffer
	demand2D := make([][]float64, len(demandTrace))
	price2D := make([][]float64, len(priceTrace))
	for k := range demandTrace {
		demand2D[k] = []float64{demandTrace[k]}
		price2D[k] = []float64{priceTrace[k]}
	}
	if err := dspp.WriteTraceCSV(&demandCSV, []string{"newyork"}, demand2D); err != nil {
		return err
	}
	if err := dspp.WriteTraceCSV(&priceCSV, []string{"houston"}, price2D); err != nil {
		return err
	}
	fmt.Printf("exported traces: %d demand rows, %d price rows\n",
		len(demand2D), len(price2D))
	fmt.Println("demand csv head:")
	for _, line := range strings.SplitN(demandCSV.String(), "\n", 4)[:3] {
		fmt.Println("  ", line)
	}

	// 2. Import the traces (the "planner" side) and run the controller.
	names, demandIn, err := dspp.ReadTraceCSV(&demandCSV)
	if err != nil {
		return err
	}
	_, priceIn, err := dspp.ReadTraceCSV(&priceCSV)
	if err != nil {
		return err
	}
	fmt.Printf("\nimported series %v covering %d periods\n", names, len(demandIn))

	sla, err := dspp.SLAMatrix([][]float64{{0.03}}, dspp.SLAConfig{Mu: 250, MaxDelay: 0.25})
	if err != nil {
		return err
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{1e-4},
		Capacities:      []float64{500},
	})
	if err != nil {
		return err
	}
	ctrl, err := dspp.NewController(inst, horizon)
	if err != nil {
		return err
	}
	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:    inst,
		Policy:      dspp.NewMPCPolicy(ctrl),
		DemandTrace: demandIn,
		PriceTrace:  priceIn,
		Periods:     periods,
		Horizon:     horizon,
	})
	if err != nil {
		return err
	}

	// 3. Export the run for plotting.
	var out bytes.Buffer
	if err := dspp.WriteSimResultCSV(&out, res, []string{"houston"}); err != nil {
		return err
	}
	fmt.Printf("\nran %d periods: total cost $%.4f, SLA violations %d\n",
		len(res.Steps), res.TotalCost, res.SLAViolations)
	fmt.Println("result csv head:")
	for _, line := range strings.SplitN(out.String(), "\n", 4)[:3] {
		fmt.Println("  ", line)
	}
	return nil
}

// Quickstart: the smallest complete use of the dspp library.
//
// Two data centers serve one customer location. We build the SLA
// coefficient matrix from latencies, create an MPC controller with a
// 3-period horizon, run a handful of control periods against simple
// forecasts, and print the resulting allocation, routing and cost.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dspp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One customer location; DC0 is nearby (10 ms), DC1 distant (40 ms).
	// Servers handle 250 req/s each; the SLA bounds average total delay
	// at 250 ms.
	sla, err := dspp.SLAMatrix([][]float64{
		{0.010}, // DC0 → location 0
		{0.040}, // DC1 → location 0
	}, dspp.SLAConfig{Mu: 250, MaxDelay: 0.25})
	if err != nil {
		return err
	}

	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{0.001, 0.001}, // quadratic penalty on change
		Capacities:      []float64{100, 18},      // the cheap DC is small
	})
	if err != nil {
		return err
	}

	ctrl, err := dspp.NewController(inst, 3) // MPC horizon W = 3
	if err != nil {
		return err
	}

	// Demand ramps up then down; DC1 is always cheaper.
	demand := []float64{2000, 4000, 6000, 4000, 2000}
	fmt.Println("period  demand  DC0-servers  DC1-servers  route->DC0  route->DC1  cost")
	for k, d := range demand {
		// Forecast this and the next 2 periods (perfect foresight of the
		// ramp, clamped at the end of the series). The controller shapes
		// the allocation that serves the forecast's first period.
		demandFC := make([][]float64, 3)
		priceFC := make([][]float64, 3)
		for t := 0; t < 3; t++ {
			idx := k + t
			if idx >= len(demand) {
				idx = len(demand) - 1
			}
			demandFC[t] = []float64{demand[idx]}
			priceFC[t] = []float64{0.10, 0.06} // DC1 cheaper but small
		}
		res, err := ctrl.Step(demandFC, priceFC)
		if err != nil {
			return err
		}
		// Route this period's demand with the paper's proportional policy.
		assign, err := inst.Assign(res.NewState, []float64{d})
		if err != nil {
			return err
		}
		cost, err := inst.PeriodCost(res.NewState, res.Applied, priceFC[0])
		if err != nil {
			return err
		}
		fmt.Printf("%-7d %-7.0f %-12.1f %-12.1f %-11.0f %-11.0f %.3f\n",
			k, d,
			res.NewState[0][0], res.NewState[1][0],
			assign[0][0], assign[1][0],
			cost.Total())
	}
	return nil
}

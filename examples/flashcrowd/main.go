// Flashcrowd: prediction robustness under a demand spike.
//
// The paper's architecture (§III) notes that demand "can behave in an
// unexpected manner, e.g., flash-crowd effect". This example runs the
// same MPC controller against the same workload — a diurnal day with an
// 6x flash crowd at 2pm — under three predictors: a perfect oracle, a
// persistence forecaster, and a seasonal-naive forecaster that knows the
// daily shape but not the spike. It reports cost and SLA violations per
// predictor, and then shows the §IV-B mitigation: a reservation ratio
// (capacity cushion) that buys back SLA compliance for the imperfect
// predictors.
//
// Run with:
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dspp"
	"dspp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	periods = 48
	horizon = 4
)

func buildTraces(seed int64) ([][]float64, [][]float64, error) {
	base, err := dspp.NewDiurnalDemand(1500, 9000)
	if err != nil {
		return nil, nil, err
	}
	spiky := dspp.FlashCrowd{
		Base:       base,
		Start:      38, // 2pm on day 2
		Duration:   3,
		Multiplier: 6,
	}
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]float64, periods+horizon+1)
	for k := range demand {
		n, err := workload.SamplePoisson(spiky.Rate(k), 1, rng)
		if err != nil {
			return nil, nil, err
		}
		demand[k] = []float64{float64(n)}
	}
	prices := make([][]float64, periods+horizon+1)
	for k := range prices {
		prices[k] = []float64{0.05}
	}
	return demand, prices, nil
}

func mkInstance(reservation float64) (*dspp.Instance, error) {
	cfg := dspp.SLAConfig{Mu: 250, MaxDelay: 0.25, ReservationRatio: reservation}
	sla, err := dspp.SLAMatrix([][]float64{{0.02}}, cfg)
	if err != nil {
		return nil, err
	}
	return dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{2e-5},
		Capacities:      []float64{5000},
	})
}

func runOnce(demand, prices [][]float64, pred dspp.Predictor, reservation float64) (*dspp.SimResult, error) {
	inst, err := mkInstance(reservation)
	if err != nil {
		return nil, err
	}
	// Violations are judged against the true (uncushioned) SLA even when
	// the controller plans with a reservation cushion.
	judge, err := mkInstance(0)
	if err != nil {
		return nil, err
	}
	ctrl, err := dspp.NewController(inst, horizon)
	if err != nil {
		return nil, err
	}
	return dspp.Simulate(dspp.SimConfig{
		Instance:        inst,
		Policy:          dspp.NewMPCPolicy(ctrl),
		DemandTrace:     demand,
		PriceTrace:      prices,
		Periods:         periods,
		Horizon:         horizon,
		DemandPredictor: pred,
		SLAJudge:        judge,
	})
}

func run() error {
	demand, prices, err := buildTraces(99)
	if err != nil {
		return err
	}
	predictors := []struct {
		name string
		p    dspp.Predictor
	}{
		{"perfect oracle", nil},
		{"persistence", dspp.PersistencePredictor{}},
		{"seasonal-naive", dspp.SeasonalNaivePredictor{Season: 24}},
	}

	fmt.Println("Flash crowd (6x for 3 hours) under different predictors:")
	fmt.Println()
	fmt.Println("predictor        reservation  total cost  SLA violations")
	for _, pd := range predictors {
		for _, r := range []float64{0, 1.4} {
			res, err := runOnce(demand, prices, pd.p, r)
			if err != nil {
				return err
			}
			label := "none"
			if r > 0 {
				label = fmt.Sprintf("r=%.1f", r)
			}
			fmt.Printf("%-16s %-12s %-11.2f %d/%d\n",
				pd.name, label, res.TotalCost, res.SLAViolations, len(res.Steps))
		}
	}
	fmt.Println()
	fmt.Println("the oracle absorbs the spike; simple forecasters miss it and violate")
	fmt.Println("the SLA unless the §IV-B capacity cushion (reservation ratio) is on")
	return nil
}

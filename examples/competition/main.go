// Competition: the paper's multi-provider game (§VI, Fig. 7, Theorem 1).
//
// Three service providers with different server sizes and demand compete
// for a cheap data center with limited capacity; an expensive
// uncapacitated DC absorbs the overflow. The infrastructure provider runs
// Algorithm 2 — each round every SP solves its own DSPP against its quota
// and reports the capacity duals; quotas then shift toward the providers
// that value capacity most. The example prints the quota trajectory and
// verifies Theorem 1 numerically: the equilibrium total cost approaches
// the social optimum (price of stability 1).
//
// Run with:
//
//	go run ./examples/competition
package main

import (
	"fmt"
	"log"
	"math"

	"dspp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func provider(name string, size, demandLevel, reconfig float64) *dspp.Provider {
	const window = 3
	demand := make([][]float64, window)
	prices := make([][]float64, window)
	for t := 0; t < window; t++ {
		demand[t] = []float64{demandLevel}
		prices[t] = []float64{0.02, 0.12} // cheap bottleneck, pricey overflow
	}
	return &dspp.Provider{
		Name:            name,
		SLA:             [][]float64{{0.01}, {0.012}}, // a^lv per DC
		ReconfigWeights: []float64{reconfig, reconfig},
		ServerSize:      size,
		Demand:          demand,
		Prices:          prices,
	}
}

func run() error {
	scenario := &dspp.GameScenario{
		// DC0: 120 capacity units, six times cheaper — the bottleneck.
		// DC1: unlimited.
		Capacity: []float64{120, math.Inf(1)},
		Providers: []*dspp.Provider{
			provider("video", 4, 6000, 5e-5),  // big servers, heavy demand
			provider("webapp", 2, 4000, 5e-5), // medium
			provider("api", 1, 2500, 5e-5),    // small servers, light demand
		},
	}

	// Social optimum: one joint solve with shared capacity.
	swp, err := dspp.SolveSocialWelfare(scenario, dspp.DefaultQPOptions())
	if err != nil {
		return err
	}

	// Algorithm 2: distributed best response with dual-proportional
	// quota reallocation.
	ne, err := dspp.BestResponse(scenario, dspp.BestResponseConfig{
		Alpha:         100,
		StepDecay:     1,
		Epsilon:       0.02,
		MaxIterations: 2000,
	})
	if err != nil {
		return err
	}

	fmt.Println("Resource competition for the cheap bottleneck DC (120 units):")
	fmt.Println()
	fmt.Println("provider  server-size  demand   quota  NE cost   SWP cost")
	for i, p := range scenario.Providers {
		fmt.Printf("%-9s %-12.0f %-8.0f %-6.1f %-9.4f %.4f\n",
			p.Name, p.ServerSize, p.Demand[0][0],
			ne.Quotas[i][0], ne.Outcomes[i].Cost, swp.Outcomes[i].Cost)
	}

	ratio, err := dspp.EfficiencyRatio(ne, swp)
	if err != nil {
		return err
	}
	fmt.Printf("\nAlgorithm 2 converged in %d rounds (ε-stable per provider)\n", ne.Iterations)
	fmt.Printf("cost trajectory: ")
	for i, c := range ne.CostHistory {
		if i == 8 {
			fmt.Printf("…")
			break
		}
		fmt.Printf("%.3f ", c)
	}
	fmt.Printf("\nNE total %.4f vs social optimum %.4f — efficiency ratio %.4f\n",
		ne.Total, swp.Total, ratio)
	fmt.Println("(Theorem 1: the best Nash equilibrium is socially optimal, PoS = 1)")
	return nil
}

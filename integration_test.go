package dspp_test

// Full-pipeline integration tests: each test walks a realistic story
// through the public API only, crossing every layer the paper's system
// spans — topology → SLA reduction → forecasting → MPC control →
// routing → request-level validation → persistence — and asserts the
// cross-module invariants that no unit test can see.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"dspp"
	"dspp/internal/workload"
)

// TestIntegrationGeoPipeline builds the paper's environment from the city
// database up and runs the controller for two days under an imperfect
// (Holt-Winters) forecaster, then validates the busiest hour at request
// granularity and round-trips the run through CSV.
func TestIntegrationGeoPipeline(t *testing.T) {
	// --- Topology: 3 paper DC sites, 6 demand metros, geo latencies.
	var dcs []dspp.City
	for _, name := range []string{"San Jose", "Houston", "Chicago"} {
		c, ok := dspp.CityByName(name)
		if !ok {
			t.Fatalf("city %q missing", name)
		}
		dcs = append(dcs, c)
	}
	var metros []dspp.City
	for _, name := range []string{"New York", "Los Angeles", "Denver", "Miami", "Seattle", "Boston"} {
		c, ok := dspp.CityByName(name)
		if !ok {
			t.Fatalf("metro %q missing", name)
		}
		metros = append(metros, c)
	}
	net, err := dspp.BuildGeoNetwork(dcs, metros, 0.002)
	if err != nil {
		t.Fatal(err)
	}

	// --- SLA reduction: a 45 ms SLA keeps every metro's nearest DC
	// feasible but makes cross-country serving costly or impossible.
	sla, err := dspp.SLAMatrix(net.LatencyMatrix(), dspp.SLAConfig{Mu: 100, MaxDelay: 0.045})
	if err != nil {
		t.Fatal(err)
	}
	feasiblePairs := 0
	for l := range sla {
		for v := range sla[l] {
			if !math.IsInf(sla[l][v], 1) {
				feasiblePairs++
			}
		}
	}
	if feasiblePairs == len(dcs)*len(metros) {
		t.Fatal("SLA excludes nothing: scenario has no locality structure")
	}
	// The controller plans with a §IV-B reservation cushion (forecasts of
	// Poisson demand always miss by a little); violations are judged
	// against the true, uncushioned SLA.
	cushioned, err := dspp.SLAMatrix(net.LatencyMatrix(),
		dspp.SLAConfig{Mu: 100, MaxDelay: 0.045, ReservationRatio: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             cushioned,
		ReconfigWeights: []float64{1e-4, 1e-4, 1e-4},
		Capacities:      []float64{500, 500, 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	judge, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{1e-4, 1e-4, 1e-4},
		Capacities:      []float64{500, 500, 500},
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Workload: population-weighted diurnal Poisson demand.
	const periods = 48
	const horizon = 4
	rng := rand.New(rand.NewSource(42))
	demand := make([][]float64, periods+horizon+1)
	for k := range demand {
		demand[k] = make([]float64, len(metros))
	}
	totalPop := 0
	for _, m := range metros {
		totalPop += m.Population
	}
	for v, m := range metros {
		model, err := dspp.NewDiurnalDemand(0, 25000*float64(m.Population)/float64(totalPop))
		if err != nil {
			t.Fatal(err)
		}
		model.Base = model.Peak * 0.2
		for k := range demand {
			n, err := workload.SamplePoisson(model.Rate(k), 1, rng)
			if err != nil {
				t.Fatal(err)
			}
			demand[k][v] = float64(n)
		}
	}
	// --- Prices: regional curves with a spot market on the TX site.
	regions := []string{"CA", "TX", "IL"}
	models := make([]dspp.PriceModel, len(regions))
	for i, name := range regions {
		r, ok := dspp.RegionByName(name)
		if !ok {
			t.Fatalf("region %q missing", name)
		}
		models[i] = dspp.DiurnalServerPrice{Region: r, Class: dspp.MediumVM}
	}
	spot, err := dspp.NewSpotMarket(models[1], dspp.SpotConfig{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	models[1] = dspp.BidPolicy{Market: spot, BidFraction: 0.7}
	prices := make([][]float64, periods+horizon+1)
	for k := range prices {
		prices[k] = make([]float64, len(dcs))
		for l, m := range models {
			prices[k][l] = m.Price(k)
		}
	}

	// --- Control loop with an imperfect forecaster.
	ctrl, err := dspp.NewController(inst, horizon)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:        inst,
		Policy:          dspp.NewMPCPolicy(ctrl),
		DemandTrace:     demand,
		PriceTrace:      prices,
		Periods:         periods,
		Horizon:         horizon,
		DemandPredictor: dspp.SeasonalNaivePredictor{Season: 24},
		SLAJudge:        judge,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != periods {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// Cross-module invariants on every executed period.
	for _, s := range res.Steps {
		for l := range dcs {
			if s.ServersByDC[l] > 500+1e-6 {
				t.Fatalf("period %d: DC %d over capacity: %g", s.Period, l, s.ServersByDC[l])
			}
		}
		assign, err := inst.Assign(s.State, s.Demand)
		if err != nil {
			t.Fatalf("period %d: %v", s.Period, err)
		}
		for v := range metros {
			var routed float64
			for l := range dcs {
				routed += assign[l][v]
			}
			if math.Abs(routed-s.Demand[v]) > 1e-6*(1+s.Demand[v]) {
				t.Fatalf("period %d metro %d: routed %g of %g", s.Period, v, routed, s.Demand[v])
			}
		}
	}
	// The forecaster is imperfect on Poisson data: accuracy must be
	// recorded and nonzero. Day 1 runs on the persistence fallback (no
	// full season of history yet) and eats the ramp misses; day 2 runs on
	// seasonal forecasts and the cushion absorbs the Poisson noise.
	if len(res.ForecastAccuracy) != len(metros) {
		t.Fatalf("forecast accuracy entries = %d", len(res.ForecastAccuracy))
	}
	for _, fa := range res.ForecastAccuracy {
		if fa.RMSE <= 0 {
			t.Errorf("metro %d: RMSE %g, want > 0 under Poisson noise", fa.Location, fa.RMSE)
		}
	}
	if res.SLAViolations > periods/3 {
		t.Errorf("violations %d/%d despite the reservation cushion", res.SLAViolations, periods)
	}
	day2Violations := 0
	for _, s := range res.Steps[24:] {
		if !s.SLAMet {
			day2Violations++
		}
	}
	if day2Violations > 4 {
		t.Errorf("day-2 violations %d/24: seasonal forecasts + cushion should hold", day2Violations)
	}

	// --- Request-level validation of the busiest hour.
	busiest := 0
	busiestLoad := 0.0
	for i, s := range res.Steps {
		var load float64
		for _, d := range s.Demand {
			load += d
		}
		if load > busiestLoad && s.SLAMet {
			busiest, busiestLoad = i, load
		}
	}
	peak := res.Steps[busiest]
	rep, err := dspp.Dispatch(judge, peak.State, peak.Demand, dspp.DispatchConfig{
		Latency:  net.LatencyMatrix(),
		Mu:       100,
		SLABound: 0.045,
		Requests: 60000,
		Rng:      rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean > 0.045 {
		t.Errorf("request-level mean latency %g exceeds the 45 ms SLA", rep.Mean)
	}
	if rep.P50 > rep.P95 {
		t.Errorf("percentiles inverted: p50 %g > p95 %g", rep.P50, rep.P95)
	}

	// --- Persistence round trip.
	var buf bytes.Buffer
	dcNames := []string{"SanJose", "Houston", "Chicago"}
	if err := dspp.WriteSimResultCSV(&buf, res, dcNames); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty CSV export")
	}
	var traceBuf bytes.Buffer
	if err := dspp.WriteTraceCSV(&traceBuf, []string{"ny", "la", "den", "mia", "sea", "bos"}, demand); err != nil {
		t.Fatal(err)
	}
	_, back, err := dspp.ReadTraceCSV(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(demand) {
		t.Fatalf("trace round trip lost rows: %d vs %d", len(back), len(demand))
	}
}

// TestIntegrationCompetitionPipeline runs the closed-loop W-MPC game over
// generated transit-stub latencies and checks that the receding-horizon
// equilibrium respects the shared bottleneck while serving every
// provider's demand.
func TestIntegrationCompetitionPipeline(t *testing.T) {
	ts, err := dspp.GenerateTopology(dspp.TopologyConfig{
		TransitNodes: 3, StubsPerTransit: 3, NodesPerStub: 3, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	cities := dspp.USCities()
	net, err := dspp.BuildNetwork(ts, cities[:2], cities[2:4])
	if err != nil {
		t.Fatal(err)
	}

	const periods = 5
	const window = 2
	mkProvider := func(name string, vi int, level float64, size float64) *dspp.DynamicProvider {
		lat := net.LatencyMatrix()
		sla := make([][]float64, 2)
		for l := 0; l < 2; l++ {
			sla[l] = make([]float64, 1)
			a, err := dspp.SLAMatrix([][]float64{{lat[l][vi]}}, dspp.SLAConfig{Mu: 200, MaxDelay: 0.25})
			if err != nil {
				t.Fatal(err)
			}
			sla[l][0] = a[0][0]
		}
		demand := make([][]float64, periods+window)
		prices := make([][]float64, periods+window)
		for k := range demand {
			demand[k] = []float64{level * (1 + 0.2*math.Sin(float64(k)))}
			prices[k] = []float64{0.03, 0.15}
		}
		return &dspp.DynamicProvider{
			Name:            name,
			SLA:             sla,
			ReconfigWeights: []float64{1e-4, 1e-4},
			ServerSize:      size,
			Demand:          demand,
			Prices:          prices,
		}
	}
	providers := []*dspp.DynamicProvider{
		mkProvider("cdn", 0, 2000, 2),
		mkProvider("saas", 1, 1500, 1),
	}
	const bottleneck = 15.0
	res, err := dspp.RunRecedingGame([]float64{bottleneck, math.Inf(1)}, providers, dspp.RecedingConfig{
		Window:  window,
		Periods: periods,
		BestResponse: dspp.BestResponseConfig{
			Alpha: 50, StepDecay: 1, Epsilon: 0.03, MaxIterations: 500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	usage, err := res.CapacityUsage(providers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, u := range usage {
		if u > bottleneck+1e-3 {
			t.Errorf("period %d: bottleneck usage %g > %g", k, u, bottleneck)
		}
	}
	for i, p := range providers {
		for k, x := range res.States[i] {
			var served float64
			for l := 0; l < 2; l++ {
				served += x[l][0] / p.SLA[l][0]
			}
			want := p.Demand[k+1][0]
			if served < want*0.999-1 {
				t.Errorf("provider %s period %d: serves %g of %g", p.Name, k, served, want)
			}
		}
	}
	if res.Total <= 0 {
		t.Errorf("total cost %g", res.Total)
	}
}

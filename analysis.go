package dspp

import (
	"dspp/internal/dispatch"
	"dspp/internal/monitor"
	"dspp/internal/sim"
)

// Analysis and validation types: streaming statistics (the Fig. 2
// monitoring module) and the request-level replay.
type (
	// Welford tracks mean/variance online.
	Welford = monitor.Welford
	// EWMA is an exponentially weighted moving average.
	EWMA = monitor.EWMA
	// P2Quantile is the streaming P² quantile estimator.
	P2Quantile = monitor.P2Quantile
	// ForecastTracker scores a predictor online (bias, MAE, RMSE, p95).
	ForecastTracker = monitor.ForecastTracker
	// ForecastAccuracy is the per-location scorecard a simulation run
	// reports.
	ForecastAccuracy = sim.ForecastAccuracy

	// DispatchConfig parameterizes a request-level replay.
	DispatchConfig = dispatch.Config
	// DispatchReport is the realized per-request latency distribution.
	DispatchReport = dispatch.Report

	// SweepItem pairs a label with a simulation configuration.
	SweepItem = sim.SweepItem
	// SweepResult is one completed sweep entry.
	SweepResult = sim.SweepResult
)

// NewEWMA builds an exponentially weighted moving average with decay
// factor alpha in (0, 1].
func NewEWMA(alpha float64) (*EWMA, error) { return monitor.NewEWMA(alpha) }

// NewP2Quantile builds a streaming estimator for quantile q in (0, 1).
func NewP2Quantile(q float64) (*P2Quantile, error) { return monitor.NewP2Quantile(q) }

// NewForecastTracker builds an online predictor scorecard.
func NewForecastTracker() (*ForecastTracker, error) { return monitor.NewForecastTracker() }

// Dispatch replays one control period at request granularity: the
// allocation's demand is routed by the proportional policy (eq. 13) onto
// per-server M/M/1 queues, returning the realized latency distribution.
func Dispatch(inst *Instance, x State, demand []float64, cfg DispatchConfig) (*DispatchReport, error) {
	return dispatch.Simulate(inst, x, demand, cfg)
}

// RunSweep executes independent simulations concurrently with at most
// parallel workers (≤ 0 = one per item), returning results in input
// order. Each item needs its own Policy instance.
func RunSweep(items []SweepItem, parallel int) ([]SweepResult, error) {
	return sim.RunSweep(items, parallel)
}

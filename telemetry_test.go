package dspp_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"dspp"
)

// telemetrySim runs a short traced simulation through the public API and
// returns the hub, the result, and the JSONL trace stream.
func telemetrySim(t *testing.T) (*dspp.Telemetry, *dspp.SimResult, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	tel := dspp.NewTelemetry(dspp.WithTraceWriter(&buf))
	inst := buildInstance(t)
	ctrl, err := dspp.NewController(inst, 3, dspp.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	trace := func(vals []float64) [][]float64 {
		out := make([][]float64, 10)
		for i := range out {
			out[i] = append([]float64(nil), vals...)
		}
		return out
	}
	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:    inst,
		Policy:      dspp.NewMPCPolicy(ctrl),
		DemandTrace: trace([]float64{1000, 2000}),
		PriceTrace:  trace([]float64{0.05, 0.08}),
		Periods:     6,
		Horizon:     3,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tel, res, &buf
}

// TestServeTelemetryLiveEndpoint is the ops-endpoint acceptance check:
// after a traced run, /metrics serves nonzero pipeline counters in
// Prometheus text format, /debug/vars carries the registry snapshot, and
// the pprof index answers — all on one mux.
func TestServeTelemetryLiveEndpoint(t *testing.T) {
	tel, res, _ := telemetrySim(t)
	addr, stop, err := dspp.ServeTelemetry("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ctype)
	}
	for _, want := range []string{
		"dspp_qp_iterations_total",
		"dspp_qp_solves_total",
		fmt.Sprintf("dspp_periods_total %d", len(res.Steps)),
		`dspp_spans_total{span="qp_solve"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	// The counters must be live, not merely declared.
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "dspp_qp_iterations_total ") {
			var v float64
			if _, err := fmt.Sscanf(line, "dspp_qp_iterations_total %g", &v); err != nil || v <= 0 {
				t.Errorf("qp iterations not live: %q (err %v)", line, err)
			}
		}
	}

	vars, _ := get("/debug/vars")
	var dump struct {
		Metrics map[string]float64 `json:"dspp_metrics"`
	}
	if err := json.Unmarshal([]byte(vars), &dump); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if dump.Metrics["dspp_periods_total"] != float64(len(res.Steps)) {
		t.Errorf("expvar periods = %g, want %d", dump.Metrics["dspp_periods_total"], len(res.Steps))
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("pprof index unexpected:\n%.200s", body)
	}
}

// TestTraceReplayPublicAPI closes the loop through the facade: the JSONL
// stream replays into the exact degradation summary and span aggregates
// of the live run.
func TestTraceReplayPublicAPI(t *testing.T) {
	tel, res, buf := telemetrySim(t)
	events, err := dspp.ReadTrace(buf)
	if err != nil {
		t.Fatal(err)
	}
	if line, ok := dspp.DegradationFromTrace(events); !ok || line != res.DegradationSummary() {
		t.Errorf("replay %q (ok=%v), want %q", line, ok, res.DegradationSummary())
	}
	sum := dspp.SummarizeTrace(events)
	if got := sum.Count("period"); got != len(res.Steps) {
		t.Errorf("period spans = %d, want %d", got, len(res.Steps))
	}
	table := sum.Table()
	if !strings.Contains(table, "qp_solve") || !strings.Contains(table, "run") {
		t.Errorf("summary table missing spans:\n%s", table)
	}
	if mt := dspp.MetricsTable(tel); !strings.Contains(mt, "dspp_qp_solves_total") {
		t.Errorf("metrics table missing counters:\n%s", mt)
	}
}

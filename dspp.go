// Package dspp is the public API of the Dynamic Service Placement
// library, a reproduction of Zhang, Zhu, Zhani and Boutaba, "Dynamic
// Service Placement in Geographically Distributed Clouds" (IEEE ICDCS
// 2012).
//
// The library solves the paper's DSPP: a service provider leases servers
// in geographically distributed data centers under fluctuating demand and
// electricity-driven prices, subject to an M/M/1-based latency SLA and
// per-data-center capacities, minimizing server cost plus a quadratic
// reconfiguration penalty. The online controller is Model Predictive
// Control (Algorithm 1); the multi-provider extension computes the
// resource-competition equilibrium with the dual-proportional quota
// iteration of Algorithm 2.
//
// # Quickstart
//
//	sla, _ := dspp.SLAMatrix(latencies, dspp.SLAConfig{Mu: 250, MaxDelay: 0.25})
//	inst, _ := dspp.NewInstance(dspp.InstanceConfig{
//		SLA:             sla,
//		ReconfigWeights: []float64{1e-4, 1e-4},
//		Capacities:      []float64{2000, 2000},
//	})
//	ctrl, _ := dspp.NewController(inst, 5)
//	res, _ := ctrl.Step(demandForecast, priceForecast) // one MPC period
//
// See examples/ for complete programs and internal/experiments for the
// reproduction of every figure in the paper's evaluation.
package dspp

import (
	"time"

	"dspp/internal/core"
	"dspp/internal/qp"
)

// Core problem types, re-exported from the implementation packages so the
// whole public surface lives under one import path.
type (
	// Instance is an immutable DSPP instance (placement graph, SLA
	// coefficients, reconfiguration weights, capacities).
	Instance = core.Instance
	// InstanceConfig assembles an Instance.
	InstanceConfig = core.Config
	// SLAConfig derives SLA coefficients a^lv from latencies (eq. 10).
	SLAConfig = core.SLAConfig
	// State is a dense L×V server allocation x^lv.
	State = core.State
	// Assignment is the demand-routing decision σ^lv (eq. 13).
	Assignment = core.Assignment
	// CostBreakdown reports per-period resource and reconfiguration cost.
	CostBreakdown = core.CostBreakdown
	// Controller is the MPC resource controller (Algorithm 1).
	Controller = core.Controller
	// ControllerOption customizes controller construction.
	ControllerOption = core.ControllerOption
	// StepResult reports one executed MPC step.
	StepResult = core.StepResult
	// Degradation records how a controller step was produced: which rung
	// of the graceful-degradation ladder ran and how much demand was shed.
	Degradation = core.Degradation
	// DegradationMode identifies a ladder rung.
	DegradationMode = core.DegradationMode
	// HorizonInput is one horizon optimization problem.
	HorizonInput = core.HorizonInput
	// Plan is a solved horizon (controls, states, duals).
	Plan = core.Plan
	// RoundResult is an integer-rounded allocation (§VIII extension).
	RoundResult = core.RoundResult
	// SupportStats summarizes the SLA-sparsity pruning of an instance:
	// how many (location, DC) pairs survive the latency bound and carry
	// QP variables (see Instance.Support).
	SupportStats = core.SupportStats
	// QPOptions tunes the interior-point solver.
	QPOptions = qp.Options
)

// Degradation-ladder rungs (see Controller.StepCtx).
const (
	DegradeNone        = core.DegradeNone
	DegradeColdRestart = core.DegradeColdRestart
	DegradeAnytime     = core.DegradeAnytime
	DegradeSoft        = core.DegradeSoft
	DegradeHold        = core.DegradeHold
	DegradeMonolithic  = core.DegradeMonolithic
)

// Sentinel errors of the core problem, re-exported for errors.Is.
var (
	// ErrBadInstance flags inconsistent instance configuration.
	ErrBadInstance = core.ErrBadInstance
	// ErrInfeasible means demand cannot be placed within the SLA.
	ErrInfeasible = core.ErrInfeasible
	// ErrBadInput flags malformed runtime inputs.
	ErrBadInput = core.ErrBadInput
)

// NewInstance validates and builds a DSPP instance.
func NewInstance(cfg InstanceConfig) (*Instance, error) { return core.NewInstance(cfg) }

// SLAMatrix converts an L×V latency matrix into the SLA coefficient
// matrix a^lv of paper eq. 10 (+Inf marks pairs that can never meet the
// SLA; they are excluded from the placement graph).
func SLAMatrix(latency [][]float64, cfg SLAConfig) ([][]float64, error) {
	return core.SLAMatrix(latency, cfg)
}

// NewController creates an MPC controller with prediction horizon W ≥ 1.
func NewController(inst *Instance, horizon int, opts ...ControllerOption) (*Controller, error) {
	return core.NewController(inst, horizon, opts...)
}

// WithQPOptions overrides the interior-point solver settings of a
// controller.
func WithQPOptions(opts QPOptions) ControllerOption { return core.WithQPOptions(opts) }

// WithInitialState sets a controller's starting allocation.
func WithInitialState(s State) ControllerOption { return core.WithInitialState(s) }

// WithDegradation enables or disables the controller's graceful-
// degradation ladder (enabled by default): on solver failure the step
// retries cold, then solves a soft-constrained relaxation that sheds
// demand, then holds the last allocation projected onto the surviving
// capacity — and reports the rung used on StepResult.Degradation.
func WithDegradation(enabled bool) ControllerOption { return core.WithDegradation(enabled) }

// WithShedPenalty overrides the linear penalty per unit of shed demand in
// the soft-relaxation rung (default core.DefaultShedPenalty).
func WithShedPenalty(penalty float64) ControllerOption { return core.WithShedPenalty(penalty) }

// WithBudget gives every controller step a wall-clock budget: the hard
// solve runs under a deadline and, when it fires, the step degrades to
// the anytime rung — the solver's best iterate so far, projected onto
// the capacity bounds — instead of overrunning the control period.
// Repeated misses back off the deadline exponentially so the ladder
// escalates to cheaper rungs sooner. Zero disables budgeting.
func WithBudget(d time.Duration) ControllerOption { return core.WithBudget(d) }

// DefaultQPOptions returns the recommended interior-point settings.
func DefaultQPOptions() QPOptions { return qp.DefaultOptions() }

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VII, Figs. 3–10 — Table I is notation only) plus the
// ablations listed in DESIGN.md. Each benchmark regenerates its figure's
// data series through internal/experiments, validates the qualitative
// shape against the paper's claim, and reports headline numbers as
// benchmark metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The same series can be printed as tables with `go run ./cmd/experiments`.
package dspp_test

import (
	"testing"

	"dspp/internal/experiments"
)

const benchSeed = 2012

// BenchmarkFig3Prices regenerates the Fig. 3 input: diurnal electricity
// prices for the four DC regions.
func BenchmarkFig3Prices(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3Prices()
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		spread = r.PriceMWh[0][17] - r.PriceMWh[1][17] // CA−TX at 5pm
	}
	b.ReportMetric(spread, "CA-TX@5pm_$/MWh")
}

// BenchmarkFig4DemandTracking regenerates Fig. 4: single-DC allocation
// tracking the diurnal demand curve.
func BenchmarkFig4DemandTracking(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4DemandTracking(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, s := range r.Servers {
			if s > peak {
				peak = s
			}
		}
	}
	b.ReportMetric(peak, "peak_servers")
}

// BenchmarkFig5PriceShifting regenerates Fig. 5: load migrating from
// Mountain View to Houston as the CA price peaks.
func BenchmarkFig5PriceShifting(b *testing.B) {
	var mvDip float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5PriceShifting()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		mvDip = r.Servers[0][2] - r.Servers[0][17] // night minus 5pm
	}
	b.ReportMetric(mvDip, "MV_night-minus-5pm_servers")
}

// BenchmarkFig6HorizonSmoothing regenerates Fig. 6: longer horizons give
// smaller per-period allocation changes.
func BenchmarkFig6HorizonSmoothing(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6HorizonSmoothing(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		ratio = r.MaxStep[0] / r.MaxStep[len(r.MaxStep)-1]
	}
	b.ReportMetric(ratio, "maxstep_K1_over_K30")
}

// BenchmarkFig7GameConvergence regenerates Fig. 7: Algorithm 2 iterations
// versus number of players for bottleneck capacities 100/200/300.
func BenchmarkFig7GameConvergence(b *testing.B) {
	b.ReportAllocs()
	var meanTight float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7GameConvergence(benchSeed, 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		var sum int
		for _, it := range r.Iterations[0] {
			sum += it
		}
		meanTight = float64(sum) / float64(len(r.Iterations[0]))
	}
	b.ReportMetric(meanTight, "mean_iters_cap100")
}

// BenchmarkFig8HorizonVsIterations regenerates Fig. 8: longer prediction
// horizons converge in fewer best-response rounds.
func BenchmarkFig8HorizonVsIterations(b *testing.B) {
	var first, last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8HorizonVsIterations(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		first = float64(r.Iterations[0])
		last = float64(r.Iterations[len(r.Iterations)-1])
	}
	b.ReportMetric(first, "iters_W1")
	b.ReportMetric(last, "iters_W10")
}

// BenchmarkFig9HorizonVsCost regenerates Fig. 9: under volatile demand
// and AR forecasts, cost is U-shaped in the horizon with a short optimum.
func BenchmarkFig9HorizonVsCost(b *testing.B) {
	b.ReportAllocs()
	var bestW float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9HorizonVsCost(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.CheckFig9(); err != nil {
			b.Fatal(err)
		}
		best := r.Cost[0]
		bestW = 1
		for j, c := range r.Cost {
			if c < best {
				best, bestW = c, float64(r.Horizons[j])
			}
		}
	}
	b.ReportMetric(bestW, "best_horizon")
}

// BenchmarkFig10ConstantHorizon regenerates Fig. 10: with constant
// (perfectly predictable) demand and prices, cost improves monotonically
// with the horizon.
func BenchmarkFig10ConstantHorizon(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10ConstantHorizon()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.CheckFig10(); err != nil {
			b.Fatal(err)
		}
		improvement = (r.Cost[0] - r.Cost[len(r.Cost)-1]) / r.Cost[0]
	}
	b.ReportMetric(improvement*100, "W10_vs_W1_improvement_%")
}

// BenchmarkTheorem1PriceOfStability verifies §VI's Theorem 1 numerically:
// the equilibrium computed by Algorithm 2 attains the social optimum.
func BenchmarkTheorem1PriceOfStability(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.PriceOfStability(benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, ratio := range r.Ratio {
			if ratio > worst {
				worst = ratio
			}
		}
	}
	b.ReportMetric(worst, "worst_NE/SWP")
}

// BenchmarkAblationReconfigWeight sweeps the quadratic penalty c (§IV-A):
// movement shrinks, cost grows.
func BenchmarkAblationReconfigWeight(b *testing.B) {
	var damping float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationReconfigWeight(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		damping = r.TotalMove[0] / r.TotalMove[len(r.TotalMove)-1]
	}
	b.ReportMetric(damping, "movement_c1e-6_over_c1e-2")
}

// BenchmarkAblationBaselines compares the MPC controller against
// static/greedy/myopic/lazy policies.
func BenchmarkAblationBaselines(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBaselines(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		var mpc, worstClean float64
		for j, name := range r.Policies {
			if name == "mpc-w5" {
				mpc = r.Cost[j]
			} else if r.Violations[j] == 0 && r.Cost[j] > worstClean {
				worstClean = r.Cost[j]
			}
		}
		advantage = worstClean / mpc
	}
	b.ReportMetric(advantage, "worst_clean_baseline_over_mpc")
}

// BenchmarkAblationPercentileSLA probes the §IV-B φ-percentile factor.
func BenchmarkAblationPercentileSLA(b *testing.B) {
	var premium float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPercentileSLA()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		premium = r.Cost[1] / r.Cost[0]
	}
	b.ReportMetric(premium, "p95_cost_over_mean")
}

// BenchmarkAblationReservationRatio probes the §IV-B capacity cushion
// under imperfect forecasts.
func BenchmarkAblationReservationRatio(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationReservationRatio(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		saved = float64(r.Violations[0] - r.Violations[len(r.Violations)-1])
	}
	b.ReportMetric(saved, "violations_avoided_r1.5")
}

// BenchmarkAblationGameStepSize probes the Algorithm 2 quota step and its
// diminishing schedule.
func BenchmarkAblationGameStepSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGameStepSize(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFFDExactness verifies §VI's exact-capacity packing
// claim for divisible (GoGrid-style) VM sizes.
func BenchmarkAblationFFDExactness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFFDExactness(benchSeed, 100)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateMM1Model cross-checks the closed-form M/M/1 SLA model
// against the discrete-event simulator.
func BenchmarkValidateMM1Model(b *testing.B) {
	var relErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ValidateMM1Model(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		relErr = r.ModelRelError
	}
	b.ReportMetric(relErr*100, "model_rel_err_%")
}

// BenchmarkAblationSoftController compares the hard-QP MPC against the
// Riccati soft-tracking controller (cost, SLA, wall time).
func BenchmarkAblationSoftController(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSoftController(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		speedup = r.StepMicros[0] / r.StepMicros[1]
	}
	b.ReportMetric(speedup, "hard_over_soft_steptime")
}

// BenchmarkGameRecedingHorizon runs the closed-loop W-MPC competition
// (Definition 2): per-period equilibria, shared capacity respected.
func BenchmarkGameRecedingHorizon(b *testing.B) {
	var rounds float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.GameRecedingHorizon(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		rounds = r.MeanRounds
	}
	b.ReportMetric(rounds, "mean_rounds_per_period")
}

// BenchmarkExtensionPooling quantifies the conservatism of the paper's
// split-demand M/M/1 provisioning rule against pooled M/M/c.
func BenchmarkExtensionPooling(b *testing.B) {
	var gapPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionPooling()
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		last := len(r.Demand) - 1
		gapPct = 100 * (r.Split[last] - float64(r.Pooled[last])) / r.Split[last]
	}
	b.ReportMetric(gapPct, "pooling_gain_at_50k_%")
}

// BenchmarkValidateEndToEnd replays the controller's peak-hour plan at
// request granularity through per-server M/M/1 queues.
func BenchmarkValidateEndToEnd(b *testing.B) {
	var within float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.EndToEndLatency(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		within = r.WithinSLA
	}
	b.ReportMetric(within*100, "requests_within_SLA_%")
}

// BenchmarkAblationIntegerRounding measures the integrality gap of the
// round-up integer MPC (the paper's §VIII future-work item).
func BenchmarkAblationIntegerRounding(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationIntegerRounding(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		gap = r.GapPct
	}
	b.ReportMetric(gap, "integrality_gap_%")
}

// BenchmarkPriceOfAnarchy probes the equilibrium set from adversarial
// initial quota splits: best ratio ≈ 1 (Theorem 1), worst bounded.
func BenchmarkPriceOfAnarchy(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.PriceOfAnarchy(benchSeed, 6)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		worst = r.WorstRatio
	}
	b.ReportMetric(worst, "worst_start_NE/SWP")
}

// BenchmarkPredictorShootout compares forecasting schemes (RMSE, bias)
// and their downstream controller cost on the diurnal workload.
func BenchmarkPredictorShootout(b *testing.B) {
	var seasonalGain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.PredictorShootout(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		var persistence, seasonal float64
		for j, n := range r.Names {
			switch n {
			case "persistence":
				persistence = r.RMSE[j]
			case "seasonal-24":
				seasonal = r.RMSE[j]
			}
		}
		seasonalGain = persistence / seasonal
	}
	b.ReportMetric(seasonalGain, "persistence_over_seasonal_RMSE")
}

// BenchmarkExtensionSpotPricing measures the cost saving of dynamic
// (spot) pricing over flat peak on-demand pricing for the same workload —
// the paper's §I motivation for dynamic pricing in public clouds.
func BenchmarkExtensionSpotPricing(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionSpotPricing(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
		saving = r.SavingPct
	}
	b.ReportMetric(saving, "spot_saving_vs_flat_%")
}

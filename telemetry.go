package dspp

import (
	"io"

	"dspp/internal/core"
	"dspp/internal/profiling"
	"dspp/internal/telemetry"
)

// Telemetry types: one hub threads metrics and spans through the whole
// pipeline (controller, simulator, game). See DESIGN.md §8 for the
// metric catalogue and span hierarchy.
type (
	// Telemetry bundles a metrics registry with a span tracer; attach it
	// via SimConfig.Telemetry, BestResponseConfig.Telemetry, and
	// WithTelemetry. A nil *Telemetry disables instrumentation end to end
	// at the cost of one pointer test per site.
	Telemetry = telemetry.Hub
	// TelemetryOption configures NewTelemetry.
	TelemetryOption = telemetry.Option
	// TraceEvent is one decoded JSONL span line.
	TraceEvent = telemetry.TraceEvent
	// TraceSummary is the replayable aggregate of a JSONL trace.
	TraceSummary = telemetry.TraceSummary
	// Attribution is one period's decision-provenance record: realized
	// cost decomposed per component and DC, capacity dual prices, and
	// placement churn. The hub retains the last N in a lock-free ring.
	Attribution = telemetry.Attribution
	// DCAttribution is one data center's share of a period's attribution.
	DCAttribution = telemetry.DCAttribution
	// StatuszPage is the JSON document /statusz serves: rollup plus the
	// most recent per-period records.
	StatuszPage = telemetry.StatuszPage
	// CoordinationPath is one coordination's critical path through its
	// shard solves (the dominating shard per round).
	CoordinationPath = telemetry.CoordinationPath
)

// NewTelemetry returns a telemetry hub with a fresh metrics registry.
func NewTelemetry(opts ...TelemetryOption) *Telemetry { return telemetry.New(opts...) }

// WithTraceWriter streams JSONL span events to w as spans end (one
// object per line; replay with ReadTrace / SummarizeTrace).
func WithTraceWriter(w io.Writer) TelemetryOption { return telemetry.WithTraceWriter(w) }

// WithTelemetry attaches a hub to a controller: each Step emits an
// mpc_step span carrying the degradation outcome, and the underlying QP
// solves report iteration/factorization counters and qp_solve spans.
func WithTelemetry(h *Telemetry) ControllerOption { return core.WithTelemetry(h) }

// ServeTelemetry starts the shared ops endpoint on addr — /metrics
// (Prometheus text format), /statusz (the per-period cost-attribution
// ring as JSON), /debug/vars (expvar), /debug/pprof/* — and returns the
// actual listen address (addr may use port 0) plus a stop function. The
// endpoint serves live while runs execute.
func ServeTelemetry(addr string, h *Telemetry) (listenAddr string, stop func() error, err error) {
	return profiling.Serve(addr, h)
}

// MetricsTable renders the hub's registry as an aligned name/value
// operator table — the end-of-run summary the CLIs print.
func MetricsTable(h *Telemetry) string { return h.Registry().Table() }

// ReadTrace decodes a JSONL span stream written via WithTraceWriter.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return telemetry.ReadTrace(r) }

// SummarizeTrace aggregates a decoded trace per span name: counts, wall
// time, and numeric attribute sums — exactly the numbers the live
// registry accumulated during the run.
func SummarizeTrace(events []TraceEvent) *TraceSummary { return telemetry.Summarize(events) }

// DegradationFromTrace recomputes a run's DegradationSummary line from
// its trace (ok=false when the trace has no run span). It reproduces
// SimResult.DegradationSummary byte for byte.
func DegradationFromTrace(events []TraceEvent) (line string, ok bool) {
	return telemetry.DegradationFromTrace(events)
}

// Statusz builds the /statusz JSON document from the hub's attribution
// ring: lifetime rollup plus the newest n per-period records (n <= 0
// keeps every retained record). Nil-safe.
func Statusz(h *Telemetry, n int) *StatuszPage { return telemetry.Statusz(h, n) }

// CriticalPathsFromTrace reconstructs each coordination round's critical
// path — the dominating shard solve per round — from a decoded trace.
func CriticalPathsFromTrace(events []TraceEvent) []CoordinationPath {
	return telemetry.CriticalPaths(events)
}

// FormatCriticalPaths renders critical paths as the operator table
// `dsppsim trace-summary` prints (slowest max coordinations).
func FormatCriticalPaths(paths []CoordinationPath, max int) string {
	return telemetry.FormatCriticalPaths(paths, max)
}

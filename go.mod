module dspp

go 1.22

package dspp

import (
	"context"
	"io"

	"dspp/internal/baseline"
	"dspp/internal/faults"
	"dspp/internal/predict"
	"dspp/internal/sim"
	"dspp/internal/traceio"
)

// Simulation and prediction types.
type (
	// Policy is the per-period decision interface the simulator drives;
	// MPC controllers (via NewMPCPolicy) and the baselines implement it.
	Policy = sim.Policy
	// MPCPolicy adapts a Controller to the Policy interface.
	MPCPolicy = sim.MPCPolicy
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is a completed run with its full time series.
	SimResult = sim.Result
	// SimStep is one recorded control period.
	SimStep = sim.StepRecord

	// FaultSchedule is a deterministic set of scheduled adverse events
	// (outages, capacity shocks, price spikes, demand surges, forecast
	// noise) the engine injects per period; see SimConfig.Faults.
	FaultSchedule = faults.Schedule
	// Fault is one scheduled event of a FaultSchedule.
	Fault = faults.Fault
	// FaultKind enumerates the fault types.
	FaultKind = faults.Kind

	// Predictor forecasts a series' future from its history.
	Predictor = predict.Predictor
	// PerfectPredictor is an oracle over a known series.
	PerfectPredictor = predict.Perfect
	// PersistencePredictor repeats the last observation.
	PersistencePredictor = predict.Persistence
	// SeasonalNaivePredictor repeats the value one season earlier.
	SeasonalNaivePredictor = predict.SeasonalNaive
	// ARPredictor is an OLS-fit autoregressive model.
	ARPredictor = predict.AR
	// MovingAveragePredictor predicts the recent mean.
	MovingAveragePredictor = predict.MovingAverage
	// HoltWintersPredictor is additive triple exponential smoothing
	// (level + trend + season), the natural fit for diurnal traces.
	HoltWintersPredictor = predict.HoltWinters
)

// Fault kinds for building FaultSchedules programmatically.
const (
	FaultDCOutage      = faults.DCOutage
	FaultCapacityShock = faults.CapacityShock
	FaultPriceSpike    = faults.PriceSpike
	FaultDemandSurge   = faults.DemandSurge
	FaultForecastNoise = faults.ForecastNoise
)

// Simulate executes a run of the discrete-time engine (Fig. 2's
// architecture): forecasts feed the policy, realized traces are billed
// and checked against the SLA, and the full series is recorded.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateCtx is Simulate with cooperative cancellation: the context is
// checked every period and threaded into the policy's QP solves.
func SimulateCtx(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	return sim.RunCtx(ctx, cfg)
}

// ParseFault parses one CLI fault spec, e.g. "outage:dc=1,start=10,end=20"
// or "surge:loc=0,start=5,end=9,factor=2".
func ParseFault(spec string) (Fault, error) { return faults.ParseFault(spec) }

// ParseFaultSchedule parses a list of fault specs into a schedule whose
// stochastic faults (forecast noise) draw deterministically from seed.
func ParseFaultSchedule(specs []string, seed int64) (*FaultSchedule, error) {
	return faults.ParseSchedule(specs, seed)
}

// NewMPCPolicy wraps an MPC controller for Simulate.
func NewMPCPolicy(ctrl *Controller) *MPCPolicy { return &sim.MPCPolicy{Ctrl: ctrl} }

// Baseline policies (ablation comparators; see internal/baseline).

// NewGreedyNearestPolicy routes demand to the lowest-latency feasible DC,
// ignoring prices and reconfiguration cost.
func NewGreedyNearestPolicy(inst *Instance) (Policy, error) {
	return baseline.NewGreedyNearest(inst)
}

// NewStaticAveragePolicy computes one placement for the average demand
// and holds it forever.
func NewStaticAveragePolicy(inst *Instance, demand, prices [][]float64) (Policy, error) {
	return baseline.NewStaticAverage(inst, demand, prices, DefaultQPOptions())
}

// NewMyopicPolicy solves a single-period DSPP each step (MPC with W=1).
func NewMyopicPolicy(inst *Instance) (Policy, error) {
	return baseline.NewMyopic(inst, DefaultQPOptions())
}

// NewLazyThresholdPolicy holds the allocation inside a hysteresis band
// and re-plans to target×minimum when the band is left.
func NewLazyThresholdPolicy(inst *Instance, target, upper float64) (Policy, error) {
	return baseline.NewLazyThreshold(inst, target, upper, DefaultQPOptions())
}

// NewSoftTrackingPolicy is a soft-constraint MPC controller solved by an
// exact Riccati sweep instead of the interior-point QP: demand becomes a
// quadratic tracking target, so it is much faster per step but can
// undershoot the SLA during ramps. trackWeight balances tracking accuracy
// against reconfiguration smoothness.
func NewSoftTrackingPolicy(inst *Instance, trackWeight float64, horizon int) (Policy, error) {
	return baseline.NewSoftTracking(inst, trackWeight, horizon)
}

// WriteTraceCSV writes a [period][series] trace as CSV with named columns.
func WriteTraceCSV(w io.Writer, names []string, trace [][]float64) error {
	return traceio.WriteTrace(w, names, trace)
}

// ReadTraceCSV parses a trace CSV written by WriteTraceCSV (or hand-made
// in the same shape), returning column names and values.
func ReadTraceCSV(r io.Reader) ([]string, [][]float64, error) {
	return traceio.ReadTrace(r)
}

// WriteSimResultCSV exports a simulation run as CSV: per-period demand,
// per-DC allocation, cost components and SLA outcome.
func WriteSimResultCSV(w io.Writer, res *SimResult, dcNames []string) error {
	return traceio.WriteSimResult(w, res, dcNames)
}

package dspp

import (
	"context"

	"dspp/internal/game"
)

// Multi-provider competition types (§VI).
type (
	// Provider describes one competing service provider.
	Provider = game.Provider
	// GameScenario is a complete competition setting: shared DC
	// capacities plus the providers.
	GameScenario = game.Scenario
	// Outcome is one provider's solved trajectory and cost.
	Outcome = game.Outcome
	// SWPResult is the social-welfare optimum (the PoA/PoS benchmark).
	SWPResult = game.SWPResult
	// BestResponseConfig tunes Algorithm 2.
	BestResponseConfig = game.BestResponseConfig
	// BestResponseResult reports the computed equilibrium.
	BestResponseResult = game.BestResponseResult
	// DynamicProvider is a provider with full traces for the closed-loop
	// receding-horizon game.
	DynamicProvider = game.DynamicProvider
	// RecedingConfig drives the closed-loop W-MPC game.
	RecedingConfig = game.RecedingConfig
	// RecedingResult is the closed-loop competition outcome.
	RecedingResult = game.RecedingResult
)

// Game sentinel errors.
var (
	// ErrBadScenario flags inconsistent competition scenarios.
	ErrBadScenario = game.ErrBadScenario
	// ErrNotConverged means Algorithm 2 hit its iteration cap; partial
	// results accompany it.
	ErrNotConverged = game.ErrNotConverged
)

// SolveSocialWelfare solves the joint social welfare problem as a single
// QP: the benchmark the paper's Theorem 1 says the best Nash equilibrium
// attains (price of stability 1).
func SolveSocialWelfare(s *GameScenario, opts QPOptions) (*SWPResult, error) {
	return game.SolveSocialWelfare(s, opts)
}

// BestResponse runs the paper's Algorithm 2: per-provider DSPP solves,
// dual-proportional quota reallocation by the infrastructure provider,
// until every provider's cost is ε-stable.
func BestResponse(s *GameScenario, cfg BestResponseConfig) (*BestResponseResult, error) {
	return game.BestResponse(s, cfg)
}

// BestResponseCtx is BestResponse with cooperative cancellation: the loop
// stops within one round of the context being cancelled, returning the
// partial result when at least one round completed.
func BestResponseCtx(ctx context.Context, s *GameScenario, cfg BestResponseConfig) (*BestResponseResult, error) {
	return game.BestResponseCtx(ctx, s, cfg)
}

// EfficiencyRatio returns equilibrium cost over social-optimum cost.
func EfficiencyRatio(ne *BestResponseResult, swp *SWPResult) (float64, error) {
	return game.EfficiencyRatio(ne, swp)
}

// RunRecedingGame runs the paper's W-MPC equilibrium dynamics
// (Definition 2) in closed loop: per period, Algorithm 2 computes the
// window equilibrium and every provider applies only its first control.
func RunRecedingGame(capacity []float64, providers []*DynamicProvider, cfg RecedingConfig) (*RecedingResult, error) {
	return game.RunReceding(capacity, providers, cfg)
}

// RunRecedingGameCtx is RunRecedingGame with cooperative cancellation.
func RunRecedingGameCtx(ctx context.Context, capacity []float64, providers []*DynamicProvider, cfg RecedingConfig) (*RecedingResult, error) {
	return game.RunRecedingCtx(ctx, capacity, providers, cfg)
}

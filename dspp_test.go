package dspp_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dspp"
)

// buildInstance assembles a 2-DC, 2-location instance through the public
// API only.
func buildInstance(t *testing.T) *dspp.Instance {
	t.Helper()
	sla, err := dspp.SLAMatrix([][]float64{
		{0.02, 0.06},
		{0.06, 0.02},
	}, dspp.SLAConfig{Mu: 250, MaxDelay: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := dspp.NewInstance(dspp.InstanceConfig{
		SLA:             sla,
		ReconfigWeights: []float64{1e-4, 1e-4},
		Capacities:      []float64{2000, 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPublicAPIEndToEnd(t *testing.T) {
	inst := buildInstance(t)
	ctrl, err := dspp.NewController(inst, 3, dspp.WithQPOptions(dspp.DefaultQPOptions()))
	if err != nil {
		t.Fatal(err)
	}
	demand := [][]float64{{1000, 2000}, {1000, 2000}, {1000, 2000}}
	prices := [][]float64{{0.05, 0.08}, {0.05, 0.08}, {0.05, 0.08}}
	res, err := ctrl.Step(demand, prices)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewState.Total() <= 0 {
		t.Error("no servers allocated")
	}
	slack, err := inst.DemandSlack(res.NewState, demand[0])
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range slack {
		if s < -1e-4 {
			t.Errorf("location %d slack %g", v, s)
		}
	}
	// The routing policy conserves demand.
	assign, err := inst.Assign(res.NewState, demand[0])
	if err != nil {
		t.Fatal(err)
	}
	for v := range demand[0] {
		var sum float64
		for l := range assign {
			sum += assign[l][v]
		}
		if math.Abs(sum-demand[0][v]) > 1e-9 {
			t.Errorf("location %d routed %g of %g", v, sum, demand[0][v])
		}
	}
}

func TestPublicErrorsAreMatchable(t *testing.T) {
	_, err := dspp.NewInstance(dspp.InstanceConfig{})
	if !errors.Is(err, dspp.ErrBadInstance) {
		t.Errorf("err = %v", err)
	}
	_, err = dspp.NewInstance(dspp.InstanceConfig{
		SLA:             [][]float64{{math.Inf(1)}},
		ReconfigWeights: []float64{1},
		Capacities:      []float64{1},
	})
	if !errors.Is(err, dspp.ErrInfeasible) {
		t.Errorf("orphan err = %v", err)
	}
}

func TestPublicSimulationWithBaselines(t *testing.T) {
	inst := buildInstance(t)
	demand := make([][]float64, 8)
	prices := make([][]float64, 8)
	for k := range demand {
		demand[k] = []float64{800, 1200}
		prices[k] = []float64{0.05, 0.06}
	}
	ctrl, err := dspp.NewController(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	policies := []dspp.Policy{dspp.NewMPCPolicy(ctrl)}
	greedy, err := dspp.NewGreedyNearestPolicy(inst)
	if err != nil {
		t.Fatal(err)
	}
	static, err := dspp.NewStaticAveragePolicy(inst, demand, prices)
	if err != nil {
		t.Fatal(err)
	}
	myopic, err := dspp.NewMyopicPolicy(inst)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := dspp.NewLazyThresholdPolicy(inst, 1.2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	policies = append(policies, greedy, static, myopic, lazy)
	for _, pol := range policies {
		res, err := dspp.Simulate(dspp.SimConfig{
			Instance:    inst,
			Policy:      pol,
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     6,
			Horizon:     2,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.TotalCost <= 0 {
			t.Errorf("%s: cost %g", pol.Name(), res.TotalCost)
		}
	}
}

func TestPublicEnvironmentHelpers(t *testing.T) {
	cities := dspp.USCities()
	if len(cities) < 24 {
		t.Fatalf("cities = %d", len(cities))
	}
	sj, ok := dspp.CityByName("San Jose")
	if !ok {
		t.Fatal("San Jose missing")
	}
	atl, _ := dspp.CityByName("Atlanta")
	net, err := dspp.BuildGeoNetwork([]dspp.City{sj, atl}, cities[6:12], 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumDataCenters() != 2 || net.NumAccess() != 6 {
		t.Errorf("network %dx%d", net.NumDataCenters(), net.NumAccess())
	}
	ts, err := dspp.GenerateTopology(dspp.TopologyConfig{
		TransitNodes: 3, StubsPerTransit: 4, NodesPerStub: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	net2, err := dspp.BuildNetwork(ts, cities[:2], cities[2:6])
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumAccess() != 4 {
		t.Errorf("generated network access = %d", net2.NumAccess())
	}
	regions := dspp.PaperRegions()
	if len(regions) != 4 {
		t.Errorf("regions = %d", len(regions))
	}
	if _, ok := dspp.RegionByName("CA"); !ok {
		t.Error("CA region missing")
	}
	d, err := dspp.NewDiurnalDemand(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := dspp.MaterializeDemand(d, 24)
	if err != nil || len(trace) != 24 {
		t.Errorf("trace %d, %v", len(trace), err)
	}
	ca, _ := dspp.RegionByName("CA")
	pm := dspp.DiurnalServerPrice{Region: ca, Class: dspp.MediumVM}
	pt, err := dspp.MaterializePrices(pm, 24)
	if err != nil || len(pt) != 24 {
		t.Errorf("price trace %d, %v", len(pt), err)
	}
}

func TestPublicCompetition(t *testing.T) {
	mk := func(name string, level float64) *dspp.Provider {
		demand := make([][]float64, 2)
		prices := make([][]float64, 2)
		for t2 := range demand {
			demand[t2] = []float64{level}
			prices[t2] = []float64{0.02, 0.12}
		}
		return &dspp.Provider{
			Name:            name,
			SLA:             [][]float64{{0.01}, {0.01}},
			ReconfigWeights: []float64{1e-4, 1e-4},
			ServerSize:      1,
			Demand:          demand,
			Prices:          prices,
		}
	}
	scenario := &dspp.GameScenario{
		Capacity:  []float64{10, math.Inf(1)},
		Providers: []*dspp.Provider{mk("a", 1000), mk("b", 1500)},
	}
	swp, err := dspp.SolveSocialWelfare(scenario, dspp.DefaultQPOptions())
	if err != nil {
		t.Fatal(err)
	}
	ne, err := dspp.BestResponse(scenario, dspp.BestResponseConfig{Epsilon: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := dspp.EfficiencyRatio(ne, swp)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1.2 || ratio < 0.95 {
		t.Errorf("efficiency ratio %g", ratio)
	}
	bad := &dspp.GameScenario{}
	if _, err := dspp.BestResponse(bad, dspp.BestResponseConfig{}); !errors.Is(err, dspp.ErrBadScenario) {
		t.Errorf("bad scenario err = %v", err)
	}
}

func TestPublicAnalysisAPI(t *testing.T) {
	// Streaming statistics.
	var w dspp.Welford
	w.Add(1)
	w.Add(3)
	if w.Mean() != 2 {
		t.Errorf("Welford mean = %g", w.Mean())
	}
	e, err := dspp.NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("EWMA = %g", e.Value())
	}
	q, err := dspp.NewP2Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		q.Add(float64(i))
	}
	if v := q.Value(); v < 80 || v > 99 {
		t.Errorf("P2 p90 = %g", v)
	}
	ft, err := dspp.NewForecastTracker()
	if err != nil {
		t.Fatal(err)
	}
	ft.Observe(9, 10)
	if ft.Bias() != -1 {
		t.Errorf("tracker bias = %g", ft.Bias())
	}

	// Request-level dispatch through the public API.
	inst := buildInstance(t)
	ctrl, err := dspp.NewController(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	demand := [][]float64{{2000, 1000}, {2000, 1000}, {2000, 1000}}
	prices := [][]float64{{0.05, 0.05}, {0.05, 0.05}, {0.05, 0.05}}
	step, err := ctrl.Step(demand, prices)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dspp.Dispatch(inst, step.NewState, demand[0], dspp.DispatchConfig{
		Latency:  [][]float64{{0.02, 0.06}, {0.06, 0.02}},
		Mu:       250,
		SLABound: 0.25,
		Requests: 20000,
		Rng:      rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean <= 0 || rep.Mean > 0.25 {
		t.Errorf("dispatch mean latency = %g", rep.Mean)
	}

	// Concurrent sweep through the public API.
	trace := make([][]float64, 8)
	ptrace := make([][]float64, 8)
	for k := range trace {
		trace[k] = []float64{1500, 900}
		ptrace[k] = []float64{0.05, 0.06}
	}
	mk := func(w int) dspp.SweepItem {
		c, err := dspp.NewController(inst, w)
		if err != nil {
			t.Fatal(err)
		}
		return dspp.SweepItem{
			Label: "w",
			Config: dspp.SimConfig{
				Instance:    inst,
				Policy:      dspp.NewMPCPolicy(c),
				DemandTrace: trace,
				PriceTrace:  ptrace,
				Periods:     5,
				Horizon:     w,
			},
		}
	}
	results, err := dspp.RunSweep([]dspp.SweepItem{mk(1), mk(2), mk(3)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("sweep results = %d", len(results))
	}
	for _, r := range results {
		if len(r.Result.ForecastAccuracy) != 2 {
			t.Errorf("forecast accuracy entries = %d", len(r.Result.ForecastAccuracy))
		}
	}
}

package faults

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestParseFault(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"outage:dc=1,start=10,end=20", Fault{Kind: DCOutage, Target: 1, Start: 10, End: 20, Factor: 1}},
		{"shock:dc=0,start=5,end=8,factor=0.5", Fault{Kind: CapacityShock, Target: 0, Start: 5, End: 8, Factor: 0.5}},
		{"spike:dc=2,start=3,end=6,factor=4", Fault{Kind: PriceSpike, Target: 2, Start: 3, End: 6, Factor: 4}},
		{"surge:loc=1,start=10,end=12,factor=2", Fault{Kind: DemandSurge, Target: 1, Start: 10, End: 12, Factor: 2}},
		{"surge:start=10,end=12,factor=2", Fault{Kind: DemandSurge, Target: -1, Start: 10, End: 12, Factor: 2}},
		{"noise:start=0,end=47,factor=0.3", Fault{Kind: ForecastNoise, Start: 0, End: 47, Factor: 0.3}},
		{"stall:start=10,end=30,factor=50", Fault{Kind: SolverStall, Start: 10, End: 30, Factor: 50}},
	}
	for _, c := range cases {
		got, err := ParseFault(c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %+v, want %+v", c.spec, got, c.want)
		}
		// String() must round-trip through ParseFault.
		back, err := ParseFault(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", c.spec, got.String(), back, err)
		}
	}
}

func TestParseFaultErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"outage",
		"meteor:dc=1,start=0,end=1",
		"outage:dc=x,start=0,end=1",
		"outage:dc=1,dc=2,start=0,end=1",
		"shock:dc=1,start=0,end=1,factor=half",
		"outage:dc",
		"outage:wat=1",
	} {
		if _, err := ParseFault(spec); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("%q: err = %v, want ErrBadSchedule", spec, err)
		}
	}
}

func TestValidate(t *testing.T) {
	good := &Schedule{Faults: []Fault{
		{Kind: DCOutage, Target: 1, Start: 2, End: 3},
		{Kind: CapacityShock, Target: 0, Start: 0, End: 9, Factor: 0.5},
		{Kind: PriceSpike, Target: 1, Start: 1, End: 1, Factor: 3},
		{Kind: DemandSurge, Target: -1, Start: 4, End: 6, Factor: 2},
		{Kind: ForecastNoise, Start: 0, End: 9, Factor: 0.2},
		{Kind: SolverStall, Start: 3, End: 5, Factor: 25},
	}}
	if err := good.Validate(2, 3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Faults: []Fault{{Kind: DCOutage, Target: 2, Start: 0, End: 1}}},
		{Faults: []Fault{{Kind: DCOutage, Target: 0, Start: 5, End: 4}}},
		{Faults: []Fault{{Kind: CapacityShock, Target: 0, Start: 0, End: 1, Factor: 0}}},
		{Faults: []Fault{{Kind: CapacityShock, Target: 0, Start: 0, End: 1, Factor: math.Inf(1)}}},
		{Faults: []Fault{{Kind: DemandSurge, Target: 3, Start: 0, End: 1, Factor: 2}}},
		{Faults: []Fault{{Kind: ForecastNoise, Start: 0, End: 1, Factor: -1}}},
		{Faults: []Fault{{Kind: SolverStall, Start: 0, End: 1, Factor: math.Inf(1)}}},
		{Faults: []Fault{{Kind: Kind(99), Start: 0, End: 1}}},
	}
	for i := range bad {
		if err := bad[i].Validate(2, 3); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("bad schedule %d: err = %v, want ErrBadSchedule", i, err)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(2, 3); err != nil {
		t.Errorf("nil schedule: %v", err)
	}
}

func TestCapacities(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: CapacityShock, Target: 0, Start: 2, End: 4, Factor: 0.5},
		{Kind: DCOutage, Target: 0, Start: 3, End: 3},
		{Kind: DCOutage, Target: 1, Start: 4, End: 5},
	}}
	base := []float64{100, 200}

	// No fault active: base returned unchanged, same backing array.
	if got := s.Capacities(1, base); &got[0] != &base[0] {
		t.Error("period 1: expected base slice back")
	}
	// Shock alone.
	if got := s.Capacities(2, base); got[0] != 50 || got[1] != 200 {
		t.Errorf("period 2 = %v", got)
	}
	// Outage dominates the concurrent shock.
	if got := s.Capacities(3, base); got[0] != OutageCapacity || got[1] != 200 {
		t.Errorf("period 3 = %v", got)
	}
	// Shock on 0 plus outage on 1.
	if got := s.Capacities(4, base); got[0] != 50 || got[1] != OutageCapacity {
		t.Errorf("period 4 = %v", got)
	}
	if base[0] != 100 || base[1] != 200 {
		t.Errorf("base mutated: %v", base)
	}
	if s.DCDown(4, 1) != true || s.DCDown(4, 0) != false || s.DCDown(6, 1) != false {
		t.Error("DCDown window wrong")
	}
}

func TestDemandAndPrices(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: DemandSurge, Target: -1, Start: 1, End: 1, Factor: 2},
		{Kind: DemandSurge, Target: 0, Start: 1, End: 2, Factor: 3},
		{Kind: PriceSpike, Target: 1, Start: 2, End: 2, Factor: 10},
	}}
	d := []float64{5, 7}
	if got := s.Demand(1, d); got[0] != 30 || got[1] != 14 {
		t.Errorf("period 1 demand = %v (surges must stack)", got)
	}
	if got := s.Demand(2, d); got[0] != 15 || got[1] != 7 {
		t.Errorf("period 2 demand = %v", got)
	}
	if got := s.Demand(3, d); &got[0] != &d[0] {
		t.Error("period 3: expected base demand back")
	}
	p := []float64{1, 2}
	if got := s.Prices(2, p); got[0] != 1 || got[1] != 20 {
		t.Errorf("period 2 prices = %v", got)
	}
	if d[0] != 5 || p[1] != 2 {
		t.Error("base rows mutated")
	}
}

func TestPerturbForecastDeterministic(t *testing.T) {
	mk := func() [][]float64 {
		return [][]float64{{100, 200}, {300, 400}}
	}
	s := &Schedule{
		Faults: []Fault{{Kind: ForecastNoise, Start: 0, End: 10, Factor: 0.3}},
		Seed:   7,
	}
	a, b := mk(), mk()
	s.PerturbForecast(5, a)
	s.PerturbForecast(5, b)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same (seed, period) diverged: %v vs %v", a, b)
			}
			if a[i][j] < 0 {
				t.Fatalf("negative forecast %g", a[i][j])
			}
		}
	}
	// A different period must draw differently.
	c := mk()
	s.PerturbForecast(6, c)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("periods 5 and 6 perturbed identically")
	}
	// Outside the window: untouched.
	d := mk()
	s.PerturbForecast(11, d)
	if d[0][0] != 100 || d[1][1] != 400 {
		t.Errorf("inactive noise changed forecast: %v", d)
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule([]string{
		"outage:dc=0,start=1,end=2",
		"noise:start=0,end=9,factor=0.1",
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 2 || s.Seed != 42 {
		t.Fatalf("schedule = %+v", s)
	}
	if !s.Empty() == (len(s.Faults) > 0) == false {
		t.Error("Empty() inconsistent")
	}
	if _, err := ParseSchedule([]string{"bogus"}, 0); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("bad spec: err = %v", err)
	}
	if got := s.Active(1); len(got) != 2 {
		t.Errorf("Active(1) = %v", got)
	}
	if got := s.Active(3); len(got) != 1 || got[0].Kind != ForecastNoise {
		t.Errorf("Active(3) = %v", got)
	}
}

func TestStallDelay(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: SolverStall, Start: 2, End: 4, Factor: 50},
		{Kind: SolverStall, Start: 4, End: 6, Factor: 25},
	}}
	cases := []struct {
		k    int
		want time.Duration
	}{
		{1, 0},
		{2, 50 * time.Millisecond},
		{4, 75 * time.Millisecond}, // concurrent stalls add
		{6, 25 * time.Millisecond},
		{7, 0},
	}
	for _, c := range cases {
		if got := s.StallDelay(c.k); got != c.want {
			t.Errorf("StallDelay(%d) = %v, want %v", c.k, got, c.want)
		}
	}
	var nilSched *Schedule
	if nilSched.StallDelay(3) != 0 {
		t.Error("nil schedule stall should be zero")
	}
}

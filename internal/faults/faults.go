// Package faults is the fault-injection layer of the simulator: a
// composable, deterministic schedule of adverse events — data center
// outages and restores, capacity shocks, electricity price spikes, demand
// surges, and forecast-noise amplification — that the simulation engine
// and sweep drivers apply per control period.
//
// The schedule is declarative: each Fault names a kind, a target, an
// active window [Start, End] (inclusive, in control periods), and a
// factor. Faults compose — several may be active in the same period, and
// multiplicative effects stack in schedule order. Forecast noise draws
// from an RNG seeded by (Schedule.Seed, period), so a run is bit-for-bit
// reproducible at any worker count and regardless of how many other
// schedules exist.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// ErrBadSchedule flags an invalid fault schedule or spec string.
var ErrBadSchedule = errors.New("faults: invalid schedule")

// OutageCapacity is the residual capacity of a DC under an outage: not
// exactly zero (instances require positive capacities and a fixed
// capacitated set) but small enough that no meaningful allocation
// survives there.
const OutageCapacity = 1e-6

// Kind enumerates the fault types.
type Kind int

const (
	// DCOutage takes a data center down: its capacity drops to
	// OutageCapacity for the active window and is restored afterwards.
	// Factor is ignored.
	DCOutage Kind = iota
	// CapacityShock multiplies a DC's capacity by Factor (0 < Factor).
	CapacityShock
	// PriceSpike multiplies a DC's electricity price by Factor.
	PriceSpike
	// DemandSurge multiplies a location's demand by Factor (Target −1
	// surges every location).
	DemandSurge
	// ForecastNoise multiplies every forecast entry by 1 + Factor·N(0,1)
	// (clamped at zero): corrupted predictions without touching realized
	// traces. Target is ignored.
	ForecastNoise
	// SolverStall injects Factor milliseconds of artificial solver latency
	// into each active period, consumed from the controller's per-step
	// budget before the hard solve starts — the knob for exercising the
	// anytime/deadline ladder deterministically. Concurrent stalls add.
	// Target is ignored.
	SolverStall
)

// String returns the kind's spec name.
func (k Kind) String() string {
	switch k {
	case DCOutage:
		return "outage"
	case CapacityShock:
		return "shock"
	case PriceSpike:
		return "spike"
	case DemandSurge:
		return "surge"
	case ForecastNoise:
		return "noise"
	case SolverStall:
		return "stall"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled event. It is active for periods
// Start ≤ k ≤ End (End < Start never fires).
type Fault struct {
	Kind   Kind
	Target int // DC index, or location index for DemandSurge (−1 = all)
	Start  int
	End    int
	Factor float64
}

// Active reports whether the fault applies at period k.
func (f Fault) Active(k int) bool { return k >= f.Start && k <= f.End }

// String renders the fault in spec syntax (parsable by ParseFault).
func (f Fault) String() string {
	switch f.Kind {
	case DCOutage:
		return fmt.Sprintf("outage:dc=%d,start=%d,end=%d", f.Target, f.Start, f.End)
	case CapacityShock:
		return fmt.Sprintf("shock:dc=%d,start=%d,end=%d,factor=%g", f.Target, f.Start, f.End, f.Factor)
	case PriceSpike:
		return fmt.Sprintf("spike:dc=%d,start=%d,end=%d,factor=%g", f.Target, f.Start, f.End, f.Factor)
	case DemandSurge:
		return fmt.Sprintf("surge:loc=%d,start=%d,end=%d,factor=%g", f.Target, f.Start, f.End, f.Factor)
	case ForecastNoise:
		return fmt.Sprintf("noise:start=%d,end=%d,factor=%g", f.Start, f.End, f.Factor)
	case SolverStall:
		return fmt.Sprintf("stall:start=%d,end=%d,factor=%g", f.Start, f.End, f.Factor)
	default:
		return fmt.Sprintf("%v:start=%d,end=%d", f.Kind, f.Start, f.End)
	}
}

// Schedule is a set of faults plus the seed for the stochastic ones.
type Schedule struct {
	Faults []Fault
	// Seed drives forecast-noise draws; two schedules with equal faults
	// and seeds perturb identically.
	Seed int64
}

// Empty reports whether the schedule contains no faults.
func (s *Schedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// Validate checks every fault against the scenario dimensions. Capacity
// faults (outage, shock) must target a DC in [0, numDCs); surges a
// location in [0, numLocs) or −1 for all.
func (s *Schedule) Validate(numDCs, numLocs int) error {
	if s == nil {
		return nil
	}
	for i, f := range s.Faults {
		if f.End < f.Start {
			return fmt.Errorf("fault %d (%v): end %d before start %d: %w", i, f.Kind, f.End, f.Start, ErrBadSchedule)
		}
		switch f.Kind {
		case DCOutage:
			if f.Target < 0 || f.Target >= numDCs {
				return fmt.Errorf("fault %d: outage dc %d of %d: %w", i, f.Target, numDCs, ErrBadSchedule)
			}
		case CapacityShock, PriceSpike:
			if f.Target < 0 || f.Target >= numDCs {
				return fmt.Errorf("fault %d (%v): dc %d of %d: %w", i, f.Kind, f.Target, numDCs, ErrBadSchedule)
			}
			if !validFactor(f.Factor) {
				return fmt.Errorf("fault %d (%v): factor %g: %w", i, f.Kind, f.Factor, ErrBadSchedule)
			}
		case DemandSurge:
			if f.Target != -1 && (f.Target < 0 || f.Target >= numLocs) {
				return fmt.Errorf("fault %d: surge location %d of %d: %w", i, f.Target, numLocs, ErrBadSchedule)
			}
			if !validFactor(f.Factor) {
				return fmt.Errorf("fault %d: surge factor %g: %w", i, f.Factor, ErrBadSchedule)
			}
		case ForecastNoise:
			if f.Factor < 0 || math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
				return fmt.Errorf("fault %d: noise factor %g: %w", i, f.Factor, ErrBadSchedule)
			}
		case SolverStall:
			if f.Factor < 0 || math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
				return fmt.Errorf("fault %d: stall factor %g: %w", i, f.Factor, ErrBadSchedule)
			}
		default:
			return fmt.Errorf("fault %d: unknown kind %d: %w", i, int(f.Kind), ErrBadSchedule)
		}
	}
	return nil
}

func validFactor(f float64) bool {
	return f > 0 && !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Active returns the faults applying at period k, in schedule order.
func (s *Schedule) Active(k int) []Fault {
	if s == nil {
		return nil
	}
	var out []Fault
	for _, f := range s.Faults {
		if f.Active(k) {
			out = append(out, f)
		}
	}
	return out
}

// DCDown reports whether DC l is under an outage at period k.
func (s *Schedule) DCDown(k, l int) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind == DCOutage && f.Target == l && f.Active(k) {
			return true
		}
	}
	return false
}

// Capacities returns the effective per-DC capacities at period k. When no
// capacity fault is active it returns base itself (no copy); otherwise a
// modified copy — outages floor the DC at OutageCapacity, shocks multiply,
// and an outage dominates any concurrent shock on the same DC.
func (s *Schedule) Capacities(k int, base []float64) []float64 {
	if s == nil {
		return base
	}
	out := base
	for _, f := range s.Faults {
		if !f.Active(k) {
			continue
		}
		switch f.Kind {
		case CapacityShock:
			out = cow(out, base)
			out[f.Target] *= f.Factor
		case DCOutage:
			out = cow(out, base)
			out[f.Target] = OutageCapacity
		}
	}
	// Apply outages last so they dominate shocks regardless of order.
	for _, f := range s.Faults {
		if f.Kind == DCOutage && f.Active(k) {
			out[f.Target] = OutageCapacity
		}
	}
	return out
}

// Prices returns the effective per-DC prices at period k (base itself when
// no price fault is active, a modified copy otherwise).
func (s *Schedule) Prices(k int, base []float64) []float64 {
	if s == nil {
		return base
	}
	out := base
	for _, f := range s.Faults {
		if f.Kind == PriceSpike && f.Active(k) {
			out = cow(out, base)
			out[f.Target] *= f.Factor
		}
	}
	return out
}

// Demand returns the effective per-location demand at period k (base
// itself when no surge is active, a modified copy otherwise).
func (s *Schedule) Demand(k int, base []float64) []float64 {
	if s == nil {
		return base
	}
	out := base
	for _, f := range s.Faults {
		if f.Kind != DemandSurge || !f.Active(k) {
			continue
		}
		out = cow(out, base)
		if f.Target == -1 {
			for v := range out {
				out[v] *= f.Factor
			}
		} else {
			out[f.Target] *= f.Factor
		}
	}
	return out
}

// StallDelay returns the artificial solver latency scheduled for period k
// (zero when no stall fault is active). Factors are milliseconds;
// concurrent stalls add.
func (s *Schedule) StallDelay(k int) time.Duration {
	if s == nil {
		return 0
	}
	var ms float64
	for _, f := range s.Faults {
		if f.Kind == SolverStall && f.Active(k) {
			ms += f.Factor
		}
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// PerturbForecast applies the active forecast-noise faults to a W×width
// forecast made at period k, in place. Draws come from an RNG seeded by
// (Seed, k) and consumed in fixed row-major order, so the perturbation is
// deterministic per (schedule, period) no matter how runs are parallelized
// or how many other faults fire.
func (s *Schedule) PerturbForecast(k int, fc [][]float64) {
	if s == nil {
		return
	}
	var sigma float64
	for _, f := range s.Faults {
		if f.Kind == ForecastNoise && f.Active(k) {
			sigma += f.Factor
		}
	}
	if sigma == 0 {
		return
	}
	rng := rand.New(rand.NewSource(s.Seed*1000003 + int64(k)))
	for _, row := range fc {
		for i := range row {
			v := row[i] * (1 + sigma*rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			row[i] = v
		}
	}
}

// cow returns out if it is already a private copy, otherwise clones base.
func cow(out, base []float64) []float64 {
	if len(out) > 0 && len(base) > 0 && &out[0] != &base[0] {
		return out
	}
	return append([]float64(nil), base...)
}

// ParseFault parses the CLI spec syntax, e.g.
//
//	outage:dc=1,start=10,end=20
//	shock:dc=0,start=5,end=8,factor=0.5
//	spike:dc=2,start=3,end=6,factor=4
//	surge:loc=1,start=10,end=12,factor=2   (omit loc to surge all)
//	noise:start=0,end=47,factor=0.3
//	stall:start=10,end=30,factor=50        (factor = milliseconds of latency)
func ParseFault(spec string) (Fault, error) {
	kindStr, rest, ok := strings.Cut(strings.TrimSpace(spec), ":")
	if !ok {
		return Fault{}, fmt.Errorf("spec %q: missing ':' after kind: %w", spec, ErrBadSchedule)
	}
	var f Fault
	switch strings.ToLower(kindStr) {
	case "outage":
		f.Kind = DCOutage
	case "shock":
		f.Kind = CapacityShock
	case "spike":
		f.Kind = PriceSpike
	case "surge":
		f.Kind = DemandSurge
		f.Target = -1
	case "noise":
		f.Kind = ForecastNoise
	case "stall":
		f.Kind = SolverStall
	default:
		return Fault{}, fmt.Errorf("spec %q: unknown kind %q: %w", spec, kindStr, ErrBadSchedule)
	}
	f.Factor = 1
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Fault{}, fmt.Errorf("spec %q: bad field %q: %w", spec, kv, ErrBadSchedule)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		if seen[key] {
			return Fault{}, fmt.Errorf("spec %q: duplicate field %q: %w", spec, key, ErrBadSchedule)
		}
		seen[key] = true
		switch key {
		case "dc", "loc":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return Fault{}, fmt.Errorf("spec %q: %s=%q: %w", spec, key, val, ErrBadSchedule)
			}
			f.Target = n
		case "start":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return Fault{}, fmt.Errorf("spec %q: start=%q: %w", spec, val, ErrBadSchedule)
			}
			f.Start = n
		case "end":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return Fault{}, fmt.Errorf("spec %q: end=%q: %w", spec, val, ErrBadSchedule)
			}
			f.End = n
		case "factor":
			x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return Fault{}, fmt.Errorf("spec %q: factor=%q: %w", spec, val, ErrBadSchedule)
			}
			f.Factor = x
		default:
			return Fault{}, fmt.Errorf("spec %q: unknown field %q: %w", spec, key, ErrBadSchedule)
		}
	}
	return f, nil
}

// ParseSchedule parses a list of fault specs into a schedule.
func ParseSchedule(specs []string, seed int64) (*Schedule, error) {
	s := &Schedule{Seed: seed}
	for _, spec := range specs {
		f, err := ParseFault(spec)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

package qp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspp/internal/linalg"
)

func mustMatrix(t *testing.T, rows [][]float64) *linalg.Matrix {
	t.Helper()
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p, DefaultOptions())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestUnconstrainedQP(t *testing.T) {
	// min ½(x₁²+x₂²) − x₁ − 2x₂  →  x = (1, 2).
	p := &Problem{
		Q: linalg.Identity(2),
		C: linalg.VectorOf(-1, -2),
	}
	res := solveOK(t, p)
	if math.Abs(res.X[0]-1) > 1e-8 || math.Abs(res.X[1]-2) > 1e-8 {
		t.Errorf("x = %v, want (1,2)", res.X)
	}
}

func TestEqualityOnlyQP(t *testing.T) {
	// min ½||x||² s.t. x₁+x₂ = 2  →  x = (1,1), dual y = −1.
	p := &Problem{
		Q: linalg.Identity(2),
		C: linalg.NewVector(2),
		A: mustMatrix(t, [][]float64{{1, 1}}),
		B: linalg.VectorOf(2),
	}
	res := solveOK(t, p)
	if math.Abs(res.X[0]-1) > 1e-8 || math.Abs(res.X[1]-1) > 1e-8 {
		t.Errorf("x = %v, want (1,1)", res.X)
	}
	if res.EqDuals == nil || math.Abs(res.EqDuals[0]+1) > 1e-6 {
		t.Errorf("y = %v, want [-1]", res.EqDuals)
	}
}

func TestBoxConstrainedQP(t *testing.T) {
	// min ½(x−3)² s.t. 0 ≤ x ≤ 1  →  x = 1, active upper bound,
	// dual of x ≤ 1 equals 2 (gradient x−3 at 1 is −2 → z = 2).
	p := &Problem{
		Q: linalg.Identity(1),
		C: linalg.VectorOf(-3),
		G: mustMatrix(t, [][]float64{{1}, {-1}}),
		H: linalg.VectorOf(1, 0),
	}
	res := solveOK(t, p)
	if math.Abs(res.X[0]-1) > 1e-6 {
		t.Errorf("x = %v, want 1", res.X)
	}
	if math.Abs(res.IneqDuals[0]-2) > 1e-5 {
		t.Errorf("upper-bound dual = %g, want 2", res.IneqDuals[0])
	}
	if res.IneqDuals[1] > 1e-6 {
		t.Errorf("inactive dual = %g, want ~0", res.IneqDuals[1])
	}
}

func TestProjectionOntoSimplex(t *testing.T) {
	// min ½||x − y||² s.t. 1ᵀx = 1, x ≥ 0, y = (0.9, 0.6, −0.5).
	// Known projection: (0.65, 0.35, 0).
	y := linalg.VectorOf(0.9, 0.6, -0.5)
	c := y.Clone()
	c.Scale(-1)
	p := &Problem{
		Q: linalg.Identity(3),
		C: c,
		G: mustMatrix(t, [][]float64{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}}),
		H: linalg.NewVector(3),
		A: mustMatrix(t, [][]float64{{1, 1, 1}}),
		B: linalg.VectorOf(1),
	}
	res := solveOK(t, p)
	want := []float64{0.65, 0.35, 0}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Errorf("x[%d] = %g, want %g", i, res.X[i], want[i])
		}
	}
}

func TestLPviaQP(t *testing.T) {
	// Pure LP (Q = 0): min −x₁−x₂ s.t. x₁+2x₂ ≤ 4, x ≥ 0, x₁ ≤ 3.
	// Optimum at vertex (3, 0.5) with objective −3.5.
	p := &Problem{
		Q: linalg.NewMatrix(2, 2),
		C: linalg.VectorOf(-1, -1),
		G: mustMatrix(t, [][]float64{
			{1, 2},
			{-1, 0},
			{0, -1},
			{1, 0},
		}),
		H: linalg.VectorOf(4, 0, 0, 3),
	}
	res := solveOK(t, p)
	if math.Abs(res.X[0]-3) > 1e-5 || math.Abs(res.X[1]-0.5) > 1e-5 {
		t.Errorf("x = %v, want (3, 0.5)", res.X)
	}
	if math.Abs(res.Objective+3.5) > 1e-5 {
		t.Errorf("obj = %g, want -3.5", res.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Problem
	}{
		{"nil Q", &Problem{C: linalg.VectorOf(1)}},
		{"non-square Q", &Problem{Q: linalg.NewMatrix(2, 3), C: linalg.VectorOf(1, 2)}},
		{"c wrong len", &Problem{Q: linalg.Identity(2), C: linalg.VectorOf(1)}},
		{"G without h", &Problem{Q: linalg.Identity(1), C: linalg.VectorOf(0), G: linalg.Identity(1)}},
		{"G col mismatch", &Problem{Q: linalg.Identity(1), C: linalg.VectorOf(0),
			G: linalg.NewMatrix(1, 2), H: linalg.VectorOf(1)}},
		{"G row mismatch", &Problem{Q: linalg.Identity(1), C: linalg.VectorOf(0),
			G: linalg.NewMatrix(2, 1), H: linalg.VectorOf(1)}},
		{"A without b", &Problem{Q: linalg.Identity(1), C: linalg.VectorOf(0), A: linalg.Identity(1)}},
		{"A col mismatch", &Problem{Q: linalg.Identity(1), C: linalg.VectorOf(0),
			A: linalg.NewMatrix(1, 2), B: linalg.VectorOf(1)}},
		{"A row mismatch", &Problem{Q: linalg.Identity(1), C: linalg.VectorOf(0),
			A: linalg.NewMatrix(2, 1), B: linalg.VectorOf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(tc.p, DefaultOptions()); !errors.Is(err, ErrBadProblem) {
				t.Errorf("err = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o != d {
		t.Errorf("withDefaults() = %+v, want %+v", o, d)
	}
	custom := Options{MaxIterations: 7, Tolerance: 1e-4, StepScale: 0.5, Regularize: 1e-9}
	if got := custom.withDefaults(); got != custom {
		t.Errorf("custom options altered: %+v", got)
	}
}

// checkKKT verifies the KKT conditions of a solution within tolerance.
func checkKKT(t *testing.T, p *Problem, res *Result, tol float64) {
	t.Helper()
	n := p.NumVars()
	// Stationarity: Qx + c + Gᵀz + Aᵀy ≈ 0.
	grad := linalg.NewVector(n)
	if err := p.Q.MulVec(res.X, grad); err != nil {
		t.Fatal(err)
	}
	for i := range grad {
		grad[i] += p.C[i]
	}
	if p.G != nil {
		gtz := linalg.NewVector(n)
		if err := p.G.MulVecT(res.IneqDuals, gtz); err != nil {
			t.Fatal(err)
		}
		for i := range grad {
			grad[i] += gtz[i]
		}
	}
	if p.A != nil {
		aty := linalg.NewVector(n)
		if err := p.A.MulVecT(res.EqDuals, aty); err != nil {
			t.Fatal(err)
		}
		for i := range grad {
			grad[i] += aty[i]
		}
	}
	if g := grad.NormInf(); g > tol {
		t.Errorf("stationarity violated: %g", g)
	}
	// Primal feasibility + complementary slackness.
	if p.G != nil {
		gx := linalg.NewVector(p.NumIneq())
		if err := p.G.MulVec(res.X, gx); err != nil {
			t.Fatal(err)
		}
		for i := range gx {
			slack := p.H[i] - gx[i]
			if slack < -tol {
				t.Errorf("ineq %d violated by %g", i, -slack)
			}
			if res.IneqDuals[i] < -tol {
				t.Errorf("dual %d negative: %g", i, res.IneqDuals[i])
			}
			if cs := math.Abs(slack * res.IneqDuals[i]); cs > tol*10 {
				t.Errorf("complementarity %d: %g", i, cs)
			}
		}
	}
	if p.A != nil {
		ax := linalg.NewVector(p.NumEq())
		if err := p.A.MulVec(res.X, ax); err != nil {
			t.Fatal(err)
		}
		for i := range ax {
			if math.Abs(ax[i]-p.B[i]) > tol {
				t.Errorf("eq %d violated: %g", i, ax[i]-p.B[i])
			}
		}
	}
}

func TestKKTOnRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(2*n)
		p := randomFeasibleQP(rng, n, m)
		res, err := Solve(p, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkKKT(t, p, res, 1e-5)
	}
}

// randomFeasibleQP builds a strictly convex QP whose feasible set contains
// the origin's neighbourhood (h ≥ 1), so it is always solvable.
func randomFeasibleQP(rng *rand.Rand, n, m int) *Problem {
	q := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 0.5+rng.Float64()*2)
	}
	c := linalg.NewVector(n)
	for i := range c {
		c[i] = rng.NormFloat64() * 2
	}
	g := linalg.NewMatrix(m, n)
	h := linalg.NewVector(m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
		h[i] = 1 + rng.Float64()*3
	}
	return &Problem{Q: q, C: c, G: g, H: h}
}

// bruteForceQP solves a small QP by enumerating active sets. For each
// subset S of inequality constraints, solve the equality-constrained QP
// treating S as tight; keep the best feasible KKT point.
func bruteForceQP(p *Problem) (linalg.Vector, float64, bool) {
	n := p.NumVars()
	m := p.NumIneq()
	best := math.Inf(1)
	var bestX linalg.Vector
	for mask := 0; mask < (1 << m); mask++ {
		var rows [][]float64
		var rhs []float64
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				row := make([]float64, n)
				for j := 0; j < n; j++ {
					row[j] = p.G.At(i, j)
				}
				rows = append(rows, row)
				rhs = append(rhs, p.H[i])
			}
		}
		sub := &Problem{Q: p.Q, C: p.C}
		if len(rows) > 0 {
			a, err := linalg.MatrixFromRows(rows)
			if err != nil {
				continue
			}
			sub.A = a
			sub.B = linalg.VectorOf(rhs...)
			if len(rows) > n {
				continue // overdetermined active set
			}
		}
		res, err := Solve(sub, DefaultOptions())
		if err != nil {
			continue
		}
		// Check feasibility of inactive constraints.
		gx := linalg.NewVector(m)
		if err := p.G.MulVec(res.X, gx); err != nil {
			continue
		}
		feasible := true
		for i := 0; i < m; i++ {
			if gx[i] > p.H[i]+1e-7 {
				feasible = false
				break
			}
		}
		if feasible && res.Objective < best {
			best = res.Objective
			bestX = res.X
		}
	}
	return bestX, best, bestX != nil
}

func TestAgainstActiveSetBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(5)
		p := randomFeasibleQP(rng, n, m)
		res, err := Solve(p, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, bestObj, ok := bruteForceQP(p)
		if !ok {
			continue
		}
		if res.Objective > bestObj+1e-5*(1+math.Abs(bestObj)) {
			t.Errorf("trial %d: IPM obj %g worse than brute force %g",
				trial, res.Objective, bestObj)
		}
		if res.Objective < bestObj-1e-4*(1+math.Abs(bestObj)) {
			t.Errorf("trial %d: IPM obj %g better than brute force %g (brute-force bug?)",
				trial, res.Objective, bestObj)
		}
	}
}

// Property: for random feasible strictly convex QPs, the solver returns a
// feasible point whose KKT residuals are tiny.
func TestQuickSolverFeasibleAndStationary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := randomFeasibleQP(rng, n, m)
		res, err := Solve(p, DefaultOptions())
		if err != nil {
			return false
		}
		gx := linalg.NewVector(m)
		if err := p.G.MulVec(res.X, gx); err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			if gx[i] > p.H[i]+1e-6 {
				return false
			}
			if res.IneqDuals[i] < -1e-9 {
				return false
			}
		}
		return res.Gap < 1e-6
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMaxIterationsSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomFeasibleQP(rng, 5, 10)
	opts := DefaultOptions()
	opts.MaxIterations = 1
	opts.Tolerance = 1e-14
	_, err := Solve(p, opts)
	if err != nil && !errors.Is(err, ErrMaxIterations) {
		t.Errorf("err = %v, want nil or ErrMaxIterations", err)
	}
}

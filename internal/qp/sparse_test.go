package qp

import (
	"math"
	"math/rand"
	"testing"

	"dspp/internal/linalg"
)

// TestSparseDenseEquivalence checks the tentpole contract: solving the
// same QP with a dense G and with its CSR form must land on the same
// primal/dual point to 1e-6 relative.
func TestSparseDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(2*n)
		p := randomFeasibleQP(rng, n, m)
		dense, err := Solve(p, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		sp := &Problem{
			Q: p.Q, C: p.C, A: p.A, B: p.B, H: p.H,
			G: linalg.SparseFromDense(p.G.(*linalg.Matrix)),
		}
		sparse, err := Solve(sp, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d sparse: %v", trial, err)
		}
		relTol := 1e-6
		if math.Abs(dense.Objective-sparse.Objective) > relTol*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objectives %g (dense) vs %g (sparse)", trial, dense.Objective, sparse.Objective)
		}
		for i := range dense.X {
			if math.Abs(dense.X[i]-sparse.X[i]) > relTol*(1+math.Abs(dense.X[i])) {
				t.Fatalf("trial %d: x[%d] %g (dense) vs %g (sparse)", trial, i, dense.X[i], sparse.X[i])
			}
		}
		for i := range dense.IneqDuals {
			if math.Abs(dense.IneqDuals[i]-sparse.IneqDuals[i]) > 1e-5*(1+math.Abs(dense.IneqDuals[i])) {
				t.Fatalf("trial %d: z[%d] %g (dense) vs %g (sparse)", trial, i, dense.IneqDuals[i], sparse.IneqDuals[i])
			}
		}
	}
}

// TestWarmStartReducesIterations re-solves a problem from its own
// solution: the warm solve must land on the same optimum in strictly
// fewer interior-point iterations than the cold solve.
func TestWarmStartReducesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	improved := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(8)
		m := 2 + rng.Intn(2*n)
		p := randomFeasibleQP(rng, n, m)
		cold, err := Solve(p, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		warm, err := SolveWarm(p, DefaultOptions(), &WarmStart{X: cold.X, Z: cold.IneqDuals})
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-5*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm objective %g drifted from cold %g", trial, warm.Objective, cold.Objective)
		}
		if warm.Iterations > cold.Iterations {
			t.Fatalf("trial %d: warm took %d iterations, cold %d", trial, warm.Iterations, cold.Iterations)
		}
		if warm.Iterations < cold.Iterations {
			improved++
		}
	}
	if improved < trials/2 {
		t.Errorf("warm start beat cold on only %d/%d problems", improved, trials)
	}
}

// TestWarmStartDimensionMismatchIgnored checks that a stale warm start
// with wrong dimensions falls back to the cold start instead of failing.
func TestWarmStartDimensionMismatchIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := randomFeasibleQP(rng, 5, 4)
	cold, err := Solve(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveWarm(p, DefaultOptions(), &WarmStart{X: linalg.NewVector(3), Z: linalg.NewVector(2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Errorf("mismatched warm start changed the answer: %g vs %g", warm.Objective, cold.Objective)
	}
}

package qp

import (
	"errors"
	"math"
	"testing"

	"dspp/internal/linalg"
)

// FuzzSolve hammers the solver entry with arbitrary two-variable problems:
// every outcome must be a finite iterate or a wrapped package sentinel —
// never a panic and never a silently non-finite "solution".
func FuzzSolve(f *testing.F) {
	f.Add(1.0, 0.0, 1.0, -1.0, -2.0, 1.0, 0.0, 0.5, 0.0, 1.0, 0.5)
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 0.0)
	f.Add(1.0, 2.0, 1.0, 0.0, 0.0, 1.0, 0.0, -1.0, -1.0, 0.0, -2.0)
	f.Add(math.NaN(), 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0)
	f.Add(1e18, 0.0, 1e-18, 1.0, -1.0, 1.0, 1.0, 1e18, -1.0, 1.0, -1e18)
	f.Fuzz(func(t *testing.T, q00, q01, q11, c0, c1, g00, g01, h0, g10, g11, h1 float64) {
		p := &Problem{
			Q: mustMatrix(t, [][]float64{{q00, q01}, {q01, q11}}),
			C: linalg.VectorOf(c0, c1),
			G: mustMatrix(t, [][]float64{{g00, g01}, {g10, g11}}),
			H: linalg.VectorOf(h0, h1),
		}
		res, err := Solve(p, DefaultOptions())
		if err != nil {
			if !errors.Is(err, ErrBadProblem) && !errors.Is(err, ErrNumerical) &&
				!errors.Is(err, ErrMaxIterations) {
				t.Fatalf("unwrapped error %v", err)
			}
			// ErrMaxIterations documents a best-effort iterate alongside
			// the error; the other sentinels must not fabricate one.
			if res != nil && !errors.Is(err, ErrMaxIterations) {
				t.Fatalf("error %v came with a result", err)
			}
			return
		}
		for i, x := range res.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("x[%d] = %g on a clean return", i, x)
			}
		}
	})
}

package qp

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSolve measures interior-point solve time as the problem grows:
// the per-MPC-step cost that dominates the controller's runtime.
func BenchmarkSolve(b *testing.B) {
	for _, size := range []struct{ n, m int }{
		{10, 20}, {50, 100}, {150, 300}, {300, 600},
	} {
		rng := rand.New(rand.NewSource(42))
		p := randomFeasibleQP(rng, size.n, size.m)
		b.Run(fmt.Sprintf("n%d_m%d", size.n, size.m), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := Solve(p, DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "ipm_iters")
		})
	}
}

// BenchmarkSolveWarm measures the warm-started predictor-corrector solve —
// the shape every MPC step and best-response round after the first takes.
// With the symbolic/numeric factorization split and pooled iteration state,
// allocs/op must stay a small constant independent of the iteration count
// (see TestAllocsIndependentOfIterationCount for the hard assertion); the
// reported ipm_iters shows how few iterations the warm path needs.
func BenchmarkSolveWarm(b *testing.B) {
	for _, size := range []struct{ n, m int }{
		{10, 20}, {50, 100}, {150, 300},
	} {
		rng := rand.New(rand.NewSource(42))
		p := randomFeasibleQP(rng, size.n, size.m)
		cold, err := Solve(p, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		warm := &WarmStart{X: cold.X, Z: cold.IneqDuals}
		b.Run(fmt.Sprintf("n%d_m%d", size.n, size.m), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := SolveWarm(p, DefaultOptions(), warm)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "ipm_iters")
		})
	}
}

// BenchmarkSolveEqualityOnly measures the direct KKT path (no
// inequalities), the fast path used by the LQ cross-checks.
func BenchmarkSolveEqualityOnly(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	p := randomFeasibleQP(rng, n, 1)
	p.G, p.H = nil, nil
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

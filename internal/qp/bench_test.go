package qp

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// BenchmarkSolve measures interior-point solve time as the problem grows:
// the per-MPC-step cost that dominates the controller's runtime.
func BenchmarkSolve(b *testing.B) {
	for _, size := range []struct{ n, m int }{
		{10, 20}, {50, 100}, {150, 300}, {300, 600},
	} {
		rng := rand.New(rand.NewSource(42))
		p := randomFeasibleQP(rng, size.n, size.m)
		b.Run(fmt.Sprintf("n%d_m%d", size.n, size.m), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := Solve(p, DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "ipm_iters")
		})
	}
}

// BenchmarkSolveWarm measures the warm-started predictor-corrector solve —
// the shape every MPC step and best-response round after the first takes.
// With the symbolic/numeric factorization split and pooled iteration state,
// allocs/op must stay a small constant independent of the iteration count
// (see TestAllocsIndependentOfIterationCount for the hard assertion); the
// reported ipm_iters shows how few iterations the warm path needs.
func BenchmarkSolveWarm(b *testing.B) {
	for _, size := range []struct{ n, m int }{
		{10, 20}, {50, 100}, {150, 300},
	} {
		rng := rand.New(rand.NewSource(42))
		p := randomFeasibleQP(rng, size.n, size.m)
		cold, err := Solve(p, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		warm := &WarmStart{X: cold.X, Z: cold.IneqDuals}
		b.Run(fmt.Sprintf("n%d_m%d", size.n, size.m), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := SolveWarm(p, DefaultOptions(), warm)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "ipm_iters")
		})
	}
}

// BenchmarkSolveEqualityOnly measures the direct KKT path (no
// inequalities), the fast path used by the LQ cross-checks.
func BenchmarkSolveEqualityOnly(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	p := randomFeasibleQP(rng, n, 1)
	p.G, p.H = nil, nil
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionResolve measures the marginal cost of a checkpointed
// sensitivity query — restore, sparse bound perturbation, rank-k (or
// exact-reuse) factorization, and the short continuation to convergence —
// against the cold solve the session replaces. cold_ns_per_op carries the
// from-scratch cost of the same problem so BENCH comparisons can quote
// marginal vs cold directly; reuse_rate is the fraction of factorizations
// served by the reuse tiers (exact skip + rank-k update) over the run.
func BenchmarkSessionResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	p := bandedSparseQP(rng, 150, 4)
	// Cold baseline: fresh solves of the same problem, timed by hand
	// (testing.Benchmark cannot be nested inside a running benchmark — it
	// blocks on the testing package's benchmark lock).
	const coldIters = 20
	if _, err := Solve(p, DefaultOptions()); err != nil { // warm caches
		b.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < coldIters; i++ {
		if _, err := Solve(p, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	coldNs := float64(time.Since(t0).Nanoseconds()) / coldIters
	ses, err := NewSessionOpts(p, DefaultOptions(), SessionOptions{RankK: true})
	if err != nil {
		b.Fatal(err)
	}
	base, err := ses.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	// Perturb the most active constraint so every query genuinely
	// iterates (an inactive bound converges on the spot, exercising
	// nothing).
	active := 0
	for i, z := range base.IneqDuals {
		if z > base.IneqDuals[active] {
			active = i
		}
	}
	rows := []int{active}
	deltas := []float64{0}
	b.ReportAllocs()
	b.ResetTimer()
	// Each op is one checkpoint-and-query cycle: Checkpoint re-arms the
	// standing factorization (an exact-reuse hit when the weights are
	// unchanged since convergence), and the query's first factorization
	// is then a rank-k update against it.
	for i := 0; i < b.N; i++ {
		if err := ses.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		deltas[0] = -1e-3 * float64(1+i%5)
		if _, err := ses.ResolvePerturbedCtx(nil, rows, deltas); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := ses.Stats()
	total := st.Factorizations + st.Reused + st.RankKUpdates
	b.ReportMetric(coldNs, "cold_ns_per_op")
	b.ReportMetric(float64(st.Reused+st.RankKUpdates)/float64(total), "reuse_rate")
}

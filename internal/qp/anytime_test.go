package qp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"dspp/internal/linalg"
)

// tripCtx is a deterministic deadline: Err returns nil for the first
// `trip` polls and context.DeadlineExceeded ever after. The solver polls
// the context exactly once per IPM iteration, so trip=k expires the solve
// at the top of iteration k — no wall clocks, no flakiness under -race.
type tripCtx struct {
	context.Context
	calls atomic.Int64
	trip  int64
}

func newTripCtx(trip int) *tripCtx {
	return &tripCtx{Context: context.Background(), trip: int64(trip)}
}

func (c *tripCtx) Err() error {
	if c.calls.Add(1) > c.trip {
		return context.DeadlineExceeded
	}
	return nil
}

// anytimeTestProblem builds a dense inequality-constrained QP that takes a
// healthy number of IPM iterations from a cold start, so the deadline can
// be exercised at many distinct iteration counts.
func anytimeTestProblem(t *testing.T) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n, m := 10, 24
	q := linalg.Identity(n)
	c := linalg.NewVector(n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	rows := make([][]float64, m)
	h := linalg.NewVector(m)
	for i := 0; i < m; i++ {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
		h[i] = 0.5 + rng.Float64()
	}
	g, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{Q: q, C: c, G: g, H: h}
}

// TestAnytimeDeadlineEveryIteration forces the deadline at every possible
// iteration count k = 0..N+1 and asserts the anytime contract at each: a
// non-nil result with ErrDeadline and quality metadata whenever the solve
// was interrupted, snapshot merit non-increasing in k (later deadlines
// never return worse iterates), and — once the trip count exceeds the
// solve's natural length — a clean bit-identical solve with no metadata.
func TestAnytimeDeadlineEveryIteration(t *testing.T) {
	p := anytimeTestProblem(t)
	opts := DefaultOptions()
	opts.Anytime = true

	ref, err := SolveWarmCtx(context.Background(), p, opts, nil)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if ref.Anytime != nil {
		t.Fatalf("uninterrupted solve carries Anytime metadata: %+v", ref.Anytime)
	}
	n := ref.Iterations
	if n < 5 {
		t.Fatalf("reference solve took only %d iterations; problem too easy to exercise the deadline", n)
	}

	prevMerit := math.Inf(1)
	for k := 0; k <= n+1; k++ {
		res, err := SolveWarmCtx(newTripCtx(k), p, opts, nil)
		if k > n {
			// The solve converges after n polls; trip counts past that
			// never fire, so the result must be the untouched normal path.
			if err != nil {
				t.Fatalf("trip=%d: unexpected error %v", k, err)
			}
			for i := range res.X {
				if res.X[i] != ref.X[i] {
					t.Fatalf("trip=%d: X[%d]=%v differs from uninterrupted %v", k, i, res.X[i], ref.X[i])
				}
			}
			if res.Anytime != nil {
				t.Fatalf("trip=%d: clean solve carries Anytime metadata", k)
			}
			continue
		}
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("trip=%d: err=%v, want ErrDeadline", k, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("trip=%d: err=%v does not wrap the context error", k, err)
		}
		if res == nil || res.Anytime == nil {
			t.Fatalf("trip=%d: deadline return without result/metadata (res=%v)", k, res)
		}
		if res.Anytime.Iterations > k {
			t.Errorf("trip=%d: snapshot claims %d iterations, only %d completed", k, res.Anytime.Iterations, k)
		}
		if len(res.X) != p.NumVars() || len(res.IneqDuals) != p.NumIneq() {
			t.Fatalf("trip=%d: result has wrong shape", k)
		}
		for _, v := range res.IneqDuals {
			if v < 0 {
				t.Errorf("trip=%d: negative inequality dual %v", k, v)
			}
		}
		if res.Anytime.Merit > prevMerit {
			t.Errorf("trip=%d: merit %v worse than trip=%d's %v — best-so-far violated",
				k, res.Anytime.Merit, k-1, prevMerit)
		}
		prevMerit = res.Anytime.Merit
	}
}

// TestAnytimeOffKeepsNilResultContract verifies the default path is
// untouched: without Options.Anytime an expired context returns (nil, ctx
// error) exactly as before, and with Anytime on but no deadline the solve
// is bitwise identical to the plain solver.
func TestAnytimeOffKeepsNilResultContract(t *testing.T) {
	p := anytimeTestProblem(t)

	res, err := SolveWarmCtx(newTripCtx(3), p, DefaultOptions(), nil)
	if res != nil || !errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrDeadline) {
		t.Fatalf("anytime off: res=%v err=%v, want nil result with bare context error", res, err)
	}

	plain, err := SolveWarmCtx(context.Background(), p, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Anytime = true
	any, err := SolveWarmCtx(context.Background(), p, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if any.Iterations != plain.Iterations || any.Objective != plain.Objective {
		t.Fatalf("anytime-on clean solve diverged: %d iters obj %v vs %d iters obj %v",
			any.Iterations, any.Objective, plain.Iterations, plain.Objective)
	}
	for i := range plain.X {
		if any.X[i] != plain.X[i] {
			t.Fatalf("X[%d] differs bitwise: %v vs %v", i, any.X[i], plain.X[i])
		}
	}
}

// TestAnytimeWarmStartSnapshot checks the iteration-zero snapshot: a
// deadline that fires before any iteration completes still returns the
// starting point — with a warm start, that is the caller's previous plan.
func TestAnytimeWarmStartSnapshot(t *testing.T) {
	p := anytimeTestProblem(t)
	opts := DefaultOptions()
	opts.Anytime = true
	ref, err := SolveWarmCtx(context.Background(), p, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := &WarmStart{X: ref.X, Z: ref.IneqDuals}
	res, err := SolveWarmCtx(newTripCtx(0), p, opts, warm)
	if !errors.Is(err, ErrDeadline) || res == nil {
		t.Fatalf("res=%v err=%v, want initial-point snapshot with ErrDeadline", res, err)
	}
	if res.Anytime.Iterations != 0 {
		t.Fatalf("snapshot iterations = %d, want 0", res.Anytime.Iterations)
	}
	for i := range res.X {
		if res.X[i] != ref.X[i] {
			t.Fatalf("X[%d] = %v, want warm-start value %v", i, res.X[i], ref.X[i])
		}
	}
}

package qp

import (
	"context"
	"fmt"
	"math"
	"sync"

	"dspp/internal/linalg"
)

// Solve minimizes the given convex QP with a primal–dual interior-point
// method. On ErrMaxIterations the best iterate found so far is returned
// alongside the error so callers may decide whether it is usable.
func Solve(p *Problem, opts Options) (*Result, error) {
	return SolveWarm(p, opts, nil)
}

// SolveWarm is Solve with an optional warm start. A good warm start — the
// previous MPC plan shifted one period, or the previous best-response
// round's solution — typically cuts the iteration count severalfold; a bad
// one only costs the iterations needed to walk back to the central path.
// A warm start whose dimensions don't match the problem is ignored.
func SolveWarm(p *Problem, opts Options, warm *WarmStart) (*Result, error) {
	return SolveWarmCtx(context.Background(), p, opts, warm)
}

// SolveWarmCtx is SolveWarm with cooperative cancellation: the context is
// polled once per interior-point iteration, so a stuck or slow solve
// terminates within one iteration of ctx expiring. The returned error wraps
// ctx.Err() (not ErrNumerical/ErrMaxIterations), letting callers tell an
// abandoned solve from a failed one.
func SolveWarmCtx(ctx context.Context, p *Problem, opts Options, warm *WarmStart) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()

	n := p.NumVars()
	m := p.NumIneq()
	pe := p.NumEq()

	if m == 0 {
		return solveEqualityOnly(p, opts)
	}

	st := newIPMState(p, n, m, pe)
	defer st.release()
	st.initPoint(warm)

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("qp: iteration %d: %w", iter, err)
		}
		st.computeResiduals()
		mu := st.gap()
		if st.converged(opts.Tolerance, mu) {
			return st.result(p, iter, mu)
		}

		if err := st.factorKKT(opts.Regularize); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", iter, err)
		}

		// Affine (predictor) direction: pure Newton on the residuals with
		// rc = s∘z (no centering).
		rcv, sv, zv := st.rc[:m], st.s[:m], st.z[:m]
		for i := range rcv {
			rcv[i] = sv[i] * zv[i]
		}
		if err := st.solveDirection(); err != nil {
			return nil, fmt.Errorf("iteration %d (affine): %w", iter, err)
		}
		alphaAff := st.maxStep()
		muAff := st.gapAfter(alphaAff)

		// Centering parameter (Mehrotra heuristic).
		sigma := 0.0
		if mu > 0 {
			r := muAff / mu
			sigma = r * r * r
		}

		// Corrector direction: rc = s∘z + Δs_aff∘Δz_aff − σμ·1.
		dsv, dzv := st.ds[:m], st.dz[:m]
		for i := range rcv {
			rcv[i] = sv[i]*zv[i] + dsv[i]*dzv[i] - sigma*mu
		}
		if err := st.solveDirection(); err != nil {
			return nil, fmt.Errorf("iteration %d (corrector): %w", iter, err)
		}

		alpha := opts.StepScale * st.maxStep()
		if alpha > 1 {
			alpha = 1
		}
		st.step(alpha)
	}

	st.computeResiduals()
	mu := st.gap()
	res, err := st.result(p, opts.MaxIterations, mu)
	if err != nil {
		return nil, err
	}
	// Accept a slightly looser solution before reporting failure: MPC loops
	// prefer a usable near-optimal control to an error.
	if st.converged(opts.Tolerance*1e4, mu) {
		return res, nil
	}
	return res, fmt.Errorf("gap=%.3g primal=%.3g dual=%.3g: %w",
		mu, res.PrimalRes, res.DualRes, ErrMaxIterations)
}

// ipmState carries the working vectors of the interior-point iteration.
type ipmState struct {
	p       *Problem
	n, m, q int // vars, inequalities, equalities

	x, s, z, y linalg.Vector // primal, slack, ineq dual, eq dual

	rd, rp, re, rc linalg.Vector // residuals
	dx, ds, dz, dy linalg.Vector // search direction

	w    linalg.Vector // z/s weights
	sInv linalg.Vector // 1/s, refreshed by factorKKT for the direction solves
	hMat *linalg.Matrix
	hBW  int // half-bandwidth of H = Q + GᵀDG (n−1 when dense)
	// Constant per problem, hoisted out of the per-iteration convergence
	// test: ‖c‖∞ and ‖h‖∞.
	cNorm, hNorm float64
	// obj is the objective at the current iterate, computed as a by-product
	// of computeResiduals.
	obj  float64
	chol *linalg.Cholesky
	// Schur complement pieces for equality constraints.
	hInvAt *linalg.Matrix
	schur  *linalg.Cholesky

	scratchN  linalg.Vector
	scratchN2 linalg.Vector
	scratchM  linalg.Vector
	scratchQ  linalg.Vector
}

// kktBandwidth bounds the half-bandwidth of H = Q + Gᵀdiag(w)G for any
// diagonal weights: the Gram bandwidth advertised by G widened to cover
// Q's own band. A dense G (no GramBandwidth method) means a dense H.
func kktBandwidth(p *Problem, n int) int {
	g, ok := p.G.(interface{ GramBandwidth() int })
	if !ok {
		return n - 1
	}
	bw := g.GramBandwidth()
	for i := 0; i < n && bw < n-1; i++ {
		for j := 0; j < i-bw; j++ {
			if p.Q.At(i, j) != 0 || p.Q.At(j, i) != 0 {
				bw = i - j
			}
		}
	}
	return bw
}

// statePool recycles ipmStates across solves: MPC and best-response loops
// solve tens of thousands of same-shaped QPs, and the working vectors plus
// the n×n KKT buffer dominate the solver's allocation profile.
var statePool = sync.Pool{New: func() any {
	return &ipmState{chol: &linalg.Cholesky{}, schur: &linalg.Cholesky{}}
}}

func newIPMState(p *Problem, n, m, q int) *ipmState {
	st := statePool.Get().(*ipmState)
	st.p = p
	st.hBW = kktBandwidth(p, n)
	st.cNorm = p.C.NormInf()
	st.hNorm = 0
	if m > 0 {
		st.hNorm = p.H.NormInf()
	}
	if st.n != n {
		st.x = linalg.NewVector(n)
		st.rd = linalg.NewVector(n)
		st.dx = linalg.NewVector(n)
		st.scratchN = linalg.NewVector(n)
		st.scratchN2 = linalg.NewVector(n)
		st.hMat = linalg.NewMatrix(n, n)
	}
	if st.m != m {
		st.s = linalg.NewVector(m)
		st.z = linalg.NewVector(m)
		st.rp = linalg.NewVector(m)
		st.rc = linalg.NewVector(m)
		st.ds = linalg.NewVector(m)
		st.dz = linalg.NewVector(m)
		st.w = linalg.NewVector(m)
		st.sInv = linalg.NewVector(m)
		st.scratchM = linalg.NewVector(m)
	}
	if st.q != q {
		st.y = linalg.NewVector(q)
		st.re = linalg.NewVector(q)
		st.dy = linalg.NewVector(q)
		st.scratchQ = linalg.NewVector(q)
	}
	st.n, st.m, st.q = n, m, q
	return st
}

// release returns the state to the pool. Every iterate the caller keeps is
// cloned by result(), so the buffers are free to be reused. The stale hMat
// content is harmless: factorKKT rewrites the full working band before the
// factorization reads it.
func (st *ipmState) release() {
	st.p = nil
	statePool.Put(st)
}

// initPoint picks a strictly feasible-in-(s,z) starting point: the cold
// default (x = 0, unit slacks and duals), or the warm-start guess with
// slacks recomputed from the primal point and both s and z floored away
// from the boundary so the first iterations stay well centered.
func (st *ipmState) initPoint(warm *WarmStart) {
	if warm == nil || len(warm.X) != st.n || (warm.Z != nil && len(warm.Z) != st.m) {
		st.x.Zero()
		gx := st.scratchM
		_ = st.p.G.MulVec(st.x, gx)
		for i := 0; i < st.m; i++ {
			slack := st.p.H[i] - gx[i]
			if slack < 1 {
				slack = 1
			}
			st.s[i] = slack
			st.z[i] = 1
		}
		st.y.Zero()
		return
	}
	copy(st.x, warm.X)
	gx := st.scratchM
	_ = st.p.G.MulVec(st.x, gx)
	for i := 0; i < st.m; i++ {
		// Keep a modest distance from the boundary: a warm point sitting
		// exactly on an active constraint would start the iteration with a
		// near-singular scaling matrix.
		// The 1e-4 floor balances two failure modes measured on the MPC
		// and best-response workloads: larger floors discard most of the
		// warm point's centering information, smaller ones start so close
		// to the boundary that the first steps collapse.
		floor := 1e-4 * (1 + math.Abs(st.p.H[i]))
		slack := st.p.H[i] - gx[i]
		if slack < floor {
			slack = floor
		}
		st.s[i] = slack
		z := 1.0
		if warm.Z != nil {
			z = warm.Z[i]
			if z < floor {
				z = floor
			}
		}
		st.z[i] = z
	}
	st.y.Zero()
}

func (st *ipmState) computeResiduals() {
	p := st.p
	// rd = Qx + c + Gᵀz + Aᵀy (Q's band is inside the KKT band)
	_ = p.Q.MulVecBand(st.hBW, st.x, st.rd)
	// The product Qx in hand, the objective ½xᵀQx + cᵀx falls out of the
	// same pass; converged() and result() reuse it instead of redoing the
	// banded product. The value matches Problem.Objective exactly: the
	// entries the band skips are exact zeros, which cannot change an IEEE
	// accumulation.
	var obj float64
	rd, c, x := st.rd[:st.n], p.C[:st.n], st.x[:st.n]
	for i := range rd {
		obj += x[i] * (0.5*rd[i] + c[i])
		rd[i] += c[i]
	}
	st.obj = obj
	_ = p.G.MulVecT(st.z, st.scratchN)
	sn := st.scratchN[:st.n]
	for i := range rd {
		rd[i] += sn[i]
	}
	if st.q > 0 {
		_ = p.A.MulVecT(st.y, st.scratchN)
		for i := range rd {
			rd[i] += sn[i]
		}
	}
	// rp = Gx + s − h
	_ = p.G.MulVec(st.x, st.rp)
	rp, s, h := st.rp[:st.m], st.s[:st.m], p.H[:st.m]
	for i := range rp {
		rp[i] += s[i] - h[i]
	}
	// re = Ax − b
	if st.q > 0 {
		_ = p.A.MulVec(st.x, st.re)
		for i := range st.re {
			st.re[i] -= p.B[i]
		}
	}
}

func (st *ipmState) gap() float64 {
	var g float64
	s, z := st.s[:st.m], st.z[:st.m]
	for i := range s {
		g += s[i] * z[i]
	}
	return g / float64(st.m)
}

func (st *ipmState) gapAfter(alpha float64) float64 {
	var g float64
	s, ds := st.s[:st.m], st.ds[:st.m]
	z, dz := st.z[:st.m], st.dz[:st.m]
	for i := range s {
		g += (s[i] + alpha*ds[i]) * (z[i] + alpha*dz[i])
	}
	return g / float64(st.m)
}

func (st *ipmState) converged(tol, mu float64) bool {
	// Relative tests, each against its own natural scale: the duality gap
	// against the objective magnitude, the dual residual against the cost
	// vector, the primal residuals against the constraint data. Scaling
	// everything by ‖h‖ would let one huge (slack) bound mask a bad gap.
	objScale := 1 + math.Abs(st.obj)
	dualScale := 1 + st.cNorm
	priScale := 1 + st.hNorm
	eqScale := 1.0
	if st.q > 0 {
		eqScale += st.p.B.NormInf()
	}
	return mu < tol*objScale &&
		st.rd.NormInf() < tol*dualScale*objScale &&
		st.rp.NormInf() < tol*priScale &&
		st.re.NormInf() < tol*eqScale
}

// factorKKT forms H = Q + Gᵀdiag(z/s)G (+ regularization) and factorizes
// it, plus the Schur complement A H⁻¹ Aᵀ when equalities are present.
func (st *ipmState) factorKKT(reg float64) error {
	sInv, wv := st.sInv[:st.m], st.w[:st.m]
	sv, zv := st.s[:st.m], st.z[:st.m]
	for i := range sv {
		sInv[i] = 1 / sv[i]
		wv[i] = zv[i] * sInv[i]
	}
	// Assemble only the working band |i−j| ≤ hBW: H = Q (+ reg·I) copied in,
	// then Gᵀdiag(w)G accumulated on top. kktBandwidth guarantees both terms
	// live inside the band, and the banded factorization below never reads
	// outside it, so stale out-of-band entries need no clearing.
	n, bw := st.n, st.hBW
	for i := 0; i < n; i++ {
		lo, hi := i-bw, i+bw
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		row := st.hMat.Row(i)
		qrow := st.p.Q.Row(i)
		copy(row[lo:hi+1], qrow[lo:hi+1])
		row[i] += reg
	}
	if err := st.p.G.AtATWeighted(st.w, st.hMat); err != nil {
		return err
	}
	if err := st.chol.FactorizeBand(st.hMat, st.hBW); err != nil {
		// Retry once with heavier regularization, scaled to the matrix
		// magnitude: near-complementary iterates blow the z/s weights up
		// to ~1e14, where an absolute 1e-8 shift is lost in rounding.
		var maxDiag float64
		for i := 0; i < st.n; i++ {
			if d := st.hMat.At(i, i); d > maxDiag {
				maxDiag = d
			}
		}
		bump := 1e-8 * (1 + maxDiag)
		for i := 0; i < st.n; i++ {
			st.hMat.Inc(i, i, bump)
		}
		if err := st.chol.FactorizeBand(st.hMat, st.hBW); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	}

	if st.q > 0 {
		at := st.p.A.T()
		var err error
		st.hInvAt, err = st.chol.SolveMatrix(at)
		if err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		sc, err := linalg.Mul(st.p.A, st.hInvAt)
		if err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		for i := 0; i < st.q; i++ {
			sc.Inc(i, i, reg)
		}
		if err := st.schur.Factorize(sc); err != nil {
			return fmt.Errorf("schur: %v: %w", err, ErrNumerical)
		}
	}
	return nil
}

// solveDirection solves the reduced Newton system for the current
// residuals (rd, rp, re, rc), storing the direction in dx/ds/dz/dy.
// factorKKT must have been called for the current (s, z).
func (st *ipmState) solveDirection() error {
	// r1 = −rd − Gᵀ S⁻¹ (Z·rp − rc)
	scr := st.scratchM[:st.m]
	z, rp, rc, sInv := st.z[:st.m], st.rp[:st.m], st.rc[:st.m], st.sInv[:st.m]
	for i := range scr {
		scr[i] = (z[i]*rp[i] - rc[i]) * sInv[i]
	}
	if err := st.p.G.MulVecT(st.scratchM, st.scratchN); err != nil {
		return err
	}
	r1 := st.dx[:st.n] // reuse storage
	rd, sn := st.rd[:st.n], st.scratchN[:st.n]
	for i := range r1 {
		r1[i] = -rd[i] - sn[i]
	}

	if st.q == 0 {
		if err := st.chol.Solve(r1, st.dx); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	} else {
		// Schur: (A H⁻¹ Aᵀ) dy = A H⁻¹ r1 + re, dx = H⁻¹ (r1 − Aᵀ dy).
		hr := st.scratchN2
		if err := st.chol.Solve(r1, hr); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		rhs := st.scratchQ
		if err := st.p.A.MulVec(hr, rhs); err != nil {
			return err
		}
		for i := 0; i < st.q; i++ {
			rhs[i] += st.re[i]
		}
		if err := st.schur.Solve(rhs, st.dy); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		if err := st.p.A.MulVecT(st.dy, st.scratchN); err != nil {
			return err
		}
		for i := 0; i < st.n; i++ {
			r1[i] -= st.scratchN[i]
		}
		if err := st.chol.Solve(r1, st.dx); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	}

	// ds = −rp − G dx ; dz = S⁻¹(−rc − Z ds).
	if err := st.p.G.MulVec(st.dx, st.scratchM); err != nil {
		return err
	}
	ds, dz := st.ds[:st.m], st.dz[:st.m]
	for i := range ds {
		d := -rp[i] - scr[i]
		ds[i] = d
		dz[i] = (-rc[i] - z[i]*d) * sInv[i]
	}
	return nil
}

// maxStep returns the largest alpha in (0, 1] keeping s and z positive.
// Since s, z > 0, the guard −v > alpha·d can only fire for d < 0, where it
// is exactly −v/d < alpha: the common non-tightening case costs a multiply
// instead of a divide.
func (st *ipmState) maxStep() float64 {
	alpha := 1.0
	s, ds := st.s[:st.m], st.ds[:st.m]
	z, dz := st.z[:st.m], st.dz[:st.m]
	for i := range s {
		if -s[i] > alpha*ds[i] {
			alpha = -s[i] / ds[i]
		}
		if -z[i] > alpha*dz[i] {
			alpha = -z[i] / dz[i]
		}
	}
	return alpha
}

func (st *ipmState) step(alpha float64) {
	_ = st.x.AXPY(alpha, st.dx)
	_ = st.s.AXPY(alpha, st.ds)
	_ = st.z.AXPY(alpha, st.dz)
	_ = st.y.AXPY(alpha, st.dy)
	const floor = 1e-14
	s, z := st.s[:st.m], st.z[:st.m]
	for i := range s {
		if s[i] < floor {
			s[i] = floor
		}
		if z[i] < floor {
			z[i] = floor
		}
	}
}

func (st *ipmState) result(p *Problem, iters int, mu float64) (*Result, error) {
	// The escaping iterates are carved from one backing buffer (the state's
	// own vectors go back to the pool), and the objective reuses the
	// state's scratch instead of allocating.
	buf := linalg.NewVector(st.n + st.m + st.q)
	x := buf[:st.n:st.n]
	copy(x, st.x)
	z := buf[st.n : st.n+st.m : st.n+st.m]
	copy(z, st.z)
	res := &Result{
		X:          x,
		IneqDuals:  z,
		Objective:  st.obj,
		Iterations: iters,
		Gap:        mu,
		PrimalRes:  math.Max(st.rp.NormInf(), st.re.NormInf()),
		DualRes:    st.rd.NormInf(),
	}
	if st.q > 0 {
		y := buf[st.n+st.m:]
		copy(y, st.y)
		res.EqDuals = y
	}
	return res, nil
}

// solveEqualityOnly handles problems with no inequality constraints by
// solving the KKT system directly:
//
//	[Q Aᵀ; A 0] [x; y] = [−c; b]
func solveEqualityOnly(p *Problem, opts Options) (*Result, error) {
	n := p.NumVars()
	q := p.NumEq()
	hm := p.Q.Clone()
	for i := 0; i < n; i++ {
		hm.Inc(i, i, opts.Regularize)
	}
	chol, err := linalg.NewCholesky(hm)
	if err != nil {
		return nil, fmt.Errorf("unconstrained Q: %v: %w", err, ErrNumerical)
	}
	negC := p.C.Clone()
	negC.Scale(-1)
	if q == 0 {
		x := linalg.NewVector(n)
		if err := chol.Solve(negC, x); err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		obj, err := p.Objective(x)
		if err != nil {
			return nil, err
		}
		return &Result{X: x, Objective: obj, Iterations: 1}, nil
	}
	hInvAt, err := chol.SolveMatrix(p.A.T())
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	sc, err := linalg.Mul(p.A, hInvAt)
	if err != nil {
		return nil, err
	}
	schur, err := linalg.NewCholesky(sc)
	if err != nil {
		return nil, fmt.Errorf("schur: %v: %w", err, ErrNumerical)
	}
	hInvC := linalg.NewVector(n)
	if err := chol.Solve(negC, hInvC); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	rhs := linalg.NewVector(q)
	if err := p.A.MulVec(hInvC, rhs); err != nil {
		return nil, err
	}
	for i := 0; i < q; i++ {
		rhs[i] -= p.B[i]
	}
	y := linalg.NewVector(q)
	if err := schur.Solve(rhs, y); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	aty := linalg.NewVector(n)
	if err := p.A.MulVecT(y, aty); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		negC[i] -= aty[i]
	}
	x := linalg.NewVector(n)
	if err := chol.Solve(negC, x); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	obj, err := p.Objective(x)
	if err != nil {
		return nil, err
	}
	return &Result{X: x, EqDuals: y, Objective: obj, Iterations: 1}, nil
}

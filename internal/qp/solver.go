package qp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"dspp/internal/linalg"
	"dspp/internal/telemetry"
)

// Solve minimizes the given convex QP with a primal–dual interior-point
// method. On ErrMaxIterations the best iterate found so far is returned
// alongside the error so callers may decide whether it is usable.
func Solve(p *Problem, opts Options) (*Result, error) {
	return SolveWarm(p, opts, nil)
}

// SolveWarm is Solve with an optional warm start. A good warm start — the
// previous MPC plan shifted one period, or the previous best-response
// round's solution — typically cuts the iteration count severalfold; a bad
// one only costs the iterations needed to walk back to the central path.
// A warm start whose dimensions don't match the problem is ignored.
func SolveWarm(p *Problem, opts Options, warm *WarmStart) (*Result, error) {
	return SolveWarmCtx(context.Background(), p, opts, warm)
}

// SolveWarmCtx is SolveWarm with cooperative cancellation: the context is
// polled once per interior-point iteration, so a stuck or slow solve
// terminates within one iteration of ctx expiring. The returned error wraps
// ctx.Err() (not ErrNumerical/ErrMaxIterations), letting callers tell an
// abandoned solve from a failed one.
//
// Each iteration runs one Mehrotra predictor–corrector round: a single
// numeric refactorization of the KKT matrix (into packed band storage,
// laid out once per shape by the symbolic phase), an affine predictor
// solve, the σ = (μ_aff/μ)³ centering heuristic, and a corrector solve
// against the same factorization. Primal and dual step lengths are chosen
// separately — the standard Mehrotra refinement, worth a few iterations on
// most problems because a short slack step no longer truncates the dual
// step. Between iterations the residuals are updated incrementally from
// the Newton identities (an O(n·bw + m) pass instead of fresh matvecs);
// any convergence verdict reached on incremental residuals is confirmed
// against fully recomputed ones before it is accepted.
func SolveWarmCtx(ctx context.Context, p *Problem, opts Options, warm *WarmStart) (*Result, error) {
	if opts.Hooks == nil {
		// Disabled telemetry takes the direct path: a nil stats pointer,
		// no span, no time reads — the hot loop is bit-identical to the
		// uninstrumented solver.
		return solveWarmCtx(ctx, p, opts, warm, nil)
	}
	hooks := opts.Hooks
	sp := hooks.Tracer.Start(telemetry.SpanQPSolve, telemetry.SpanIDFromContext(ctx))
	var stats solveStats
	res, err := solveWarmCtx(ctx, p, opts, warm, &stats)
	flushQPTelemetry(hooks, sp, warm, res, err, &stats)
	return res, err
}

// solveStats accumulates per-solve counts the instrumented wrapper flushes
// into the telemetry hooks after the solve returns. The iteration loop
// touches it through a nil-guarded pointer, so the disabled path costs a
// predictable branch per site and nothing else.
type solveStats struct {
	correctorSkips int
	factorizations int
	bumps          int
	reused         int
	rankk          int
}

// flushQPTelemetry publishes one finished solve into the hooks' counters
// and closes its qp_solve span with outcome attributes.
func flushQPTelemetry(h *telemetry.QPHooks, sp *telemetry.Span, warm *WarmStart, res *Result, err error, stats *solveStats) {
	h.Solves.Inc()
	wasWarm := 0.0
	if warm != nil {
		wasWarm = 1
		h.WarmStarts.Inc()
	} else {
		h.ColdStarts.Inc()
	}
	iters := 0
	if res != nil {
		iters = res.Iterations
		h.Iterations.Add(float64(iters))
		h.IterationsHist.Observe(float64(iters))
	}
	h.CorrectorSkips.Add(float64(stats.correctorSkips))
	h.Factorizations.Add(float64(stats.factorizations))
	h.FactorBumps.Add(float64(stats.bumps))
	h.FactorReused.Add(float64(stats.reused))
	h.RankKUpdates.Add(float64(stats.rankk))
	outcome := "ok"
	switch {
	case err == nil:
	case errors.Is(err, ErrNumerical):
		h.NumericalFailures.Inc()
		outcome = "numerical"
	case errors.Is(err, ErrMaxIterations):
		h.MaxIter.Inc()
		outcome = "maxiter"
	case errors.Is(err, ErrDeadline):
		h.DeadlineReturns.Inc()
		outcome = "deadline"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "canceled"
	default:
		outcome = "error"
	}
	sp.SetAttr(
		telemetry.Num("iterations", float64(iters)),
		telemetry.Num("factorizations", float64(stats.factorizations)),
		telemetry.Num("corrector_skips", float64(stats.correctorSkips)),
		telemetry.Num("bumps", float64(stats.bumps)),
		telemetry.Num("warm", wasWarm),
		telemetry.Str("outcome", outcome),
	)
	sp.End()
}

func solveWarmCtx(ctx context.Context, p *Problem, opts Options, warm *WarmStart, stats *solveStats) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	n := p.NumVars()
	m := p.NumIneq()
	pe := p.NumEq()

	if m == 0 {
		return solveEqualityOnly(p, opts)
	}

	st := newIPMState(p, n, m, pe)
	defer st.release()
	return runIPM(ctx, st, opts, warm, stats)
}

// runIPM initializes the iterate from the (optional) warm start and runs
// the predictor–corrector loop. It is shared by the pooled one-shot path
// (solveWarmCtx) and the persistent Session path; everything the two do
// differently — state lifetime, factorization reuse, result storage —
// hangs off st.
func runIPM(ctx context.Context, st *ipmState, opts Options, warm *WarmStart, stats *solveStats) (*Result, error) {
	st.initPoint(warm)
	return iterateIPM(ctx, st, opts, stats)
}

// iterateIPM runs the Mehrotra predictor–corrector loop from the iterate
// already in st — either a freshly initialized point (runIPM) or, on the
// Session hot-continuation path, the previous solve's final iterate.
func iterateIPM(ctx context.Context, st *ipmState, opts Options, stats *solveStats) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := st.p
	m := st.m
	st.szDot = linalg.DotProd(st.s[:m], st.z[:m])

	st.computeResiduals()
	st.prepareAnytime(opts.Anytime)
	if st.anytime {
		// The starting point (warm-start plan or the cold origin) is the
		// first anytime candidate: even a deadline that fires before one
		// full iteration completes still has something implementable.
		st.snapshotAnytime(0)
	}
	// The per-iteration deadline check reads the wall clock rather than
	// relying on ctx.Err() alone: ctx.Err() flips only after the context's
	// timer goroutine runs, and on a starved scheduler (GOMAXPROCS=1 with
	// this loop spinning) that can lag the actual deadline by the runtime's
	// forced-preemption interval (~10ms) — far beyond the budgets a
	// deadline-bounded controller works with.
	deadline, hasDeadline := ctx.Deadline()
	for iter := 0; iter < opts.MaxIterations; iter++ {
		err := ctx.Err()
		if err == nil && hasDeadline && !time.Now().Before(deadline) {
			err = context.DeadlineExceeded
		}
		if err != nil {
			if st.anytime && st.snapValid {
				return st.anytimeResult(iter), fmt.Errorf("qp: iteration %d: %w: %w", iter, ErrDeadline, err)
			}
			return nil, fmt.Errorf("qp: iteration %d: %w", iter, err)
		}
		mu := st.gap()
		if st.converged(opts.Tolerance, mu) {
			// Incremental residuals drift by rounding; never declare
			// victory off them without an exact recomputation.
			if st.fresh {
				return st.result(p, iter, mu)
			}
			st.computeResiduals()
			if st.converged(opts.Tolerance, mu) {
				return st.result(p, iter, mu)
			}
		}

		if err := st.factorKKT(opts.Regularize); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", iter, err)
		}
		if stats != nil {
			switch st.factorKind {
			case factorReusedExact:
				stats.reused++
			case factorRankK:
				stats.rankk++
			default:
				stats.factorizations++
			}
			if st.bumped {
				stats.bumps++
			}
		}

		// Affine (predictor) direction: pure Newton on the residuals with
		// rc = s∘z (no centering).
		rcv, sv, zv := st.rc[:m], st.s[:m], st.z[:m]
		for i := range rcv {
			rcv[i] = sv[i] * zv[i]
		}
		affP, affD, err := st.solveDirection()
		if err != nil {
			return nil, fmt.Errorf("iteration %d (affine): %w", iter, err)
		}
		muAff := st.gapAfter(affP, affD)

		// Centering parameter (Mehrotra heuristic).
		sigma := 0.0
		if mu > 0 {
			r := muAff / mu
			sigma = r * r * r
		}

		// Corrector direction: rc = s∘z + Δs_aff∘Δz_aff − σμ·1, solved
		// against the predictor's factorization. When the affine direction
		// already takes the full step and drops the gap below tolerance —
		// the common tail of warm-started MPC and best-response solves —
		// the correction cannot improve an already-accepted step, so the
		// extra back-solve is skipped.
		alphaP, alphaD := affP, affD
		if muAff >= opts.Tolerance || affP < 1 || affD < 1 {
			dsv, dzv := st.ds[:m], st.dz[:m]
			for i := range rcv {
				rcv[i] = sv[i]*zv[i] + dsv[i]*dzv[i] - sigma*mu
			}
			if alphaP, alphaD, err = st.solveDirection(); err != nil {
				return nil, fmt.Errorf("iteration %d (corrector): %w", iter, err)
			}
		} else if stats != nil {
			stats.correctorSkips++
		}
		// Adaptive fraction-to-boundary (Mehrotra): back off by StepScale
		// while far from the solution, but let η → 1 as the relative gap
		// closes — the conservative margin is pure slowdown in the tail,
		// where the affine direction is nearly exact.
		eta := opts.StepScale
		if g := 1 - mu/(1+math.Abs(st.obj)); g > eta {
			eta = g
			if eta > 0.9999 {
				eta = 0.9999
			}
		}
		alphaP *= eta
		alphaD *= eta
		if alphaP > 1 {
			alphaP = 1
		}
		if alphaD > 1 {
			alphaD = 1
		}
		floored := st.step(alphaP, alphaD)
		// The Newton identities give the next residuals in O(n·bw + m):
		//   rd⁺ = (1−αd)·rd + (αp−αd)·Q·dx − αd·reg·dx
		//   rp⁺ = (1−αp)·rp,  re⁺ = (1−αp)·re
		// They only hold for the system actually solved: recompute in full
		// when the boundary floor clipped s or z (a nonlinear update), when
		// the factorization needed a regularization bump (reg no longer the
		// static value), with equalities present (the Schur regularization
		// perturbs the re identity), and periodically to flush rounding.
		if st.q > 0 || floored || st.bumped || iter&0xf == 0xf {
			st.computeResiduals()
		} else {
			st.updateResiduals(alphaP, alphaD, opts.Regularize)
		}
		if st.anytime {
			st.snapshotAnytime(iter + 1)
		}
	}

	st.computeResiduals()
	mu := st.gap()
	res, err := st.result(p, opts.MaxIterations, mu)
	if err != nil {
		return nil, err
	}
	// Accept a slightly looser solution before reporting failure: MPC loops
	// prefer a usable near-optimal control to an error.
	if st.converged(opts.Tolerance*1e4, mu) {
		return res, nil
	}
	return res, fmt.Errorf("gap=%.3g primal=%.3g dual=%.3g: %w",
		mu, res.PrimalRes, res.DualRes, ErrMaxIterations)
}

// ipmState carries the working vectors of the interior-point iteration.
type ipmState struct {
	p       *Problem
	n, m, q int // vars, inequalities, equalities

	x, s, z, y linalg.Vector // primal, slack, ineq dual, eq dual

	rd, rp, re, rc linalg.Vector // residuals
	dx, ds, dz, dy linalg.Vector // search direction

	qx   linalg.Vector // Q·x at the current iterate (objective + rd)
	w    linalg.Vector // z/s weights
	sInv linalg.Vector // 1/s, refreshed by factorKKT for the direction solves
	// hBand is the KKT matrix H = Q + GᵀDG in packed band storage: the
	// symbolic phase (newIPMState) shapes it once per solve, the numeric
	// phase (factorKKT) refills it in place every iteration.
	hBand *linalg.BandMatrix
	// qBand caches Q's band in packed storage, copied from the dense Q
	// once per solve: the per-iteration KKT refill becomes one contiguous
	// copy and the residual products walk packed rows instead of striding
	// across dense ones.
	qBand *linalg.BandMatrix
	hBW   int // half-bandwidth of H (n−1 when dense)
	// Constant per problem, hoisted out of the per-iteration convergence
	// test: ‖c‖∞ and ‖h‖∞.
	cNorm, hNorm float64
	// obj is the objective at the current iterate, maintained alongside the
	// residuals.
	obj float64
	// szDot caches sᵀz, maintained by initPoint and step so gap() costs
	// nothing per iteration.
	szDot float64
	// rdNorm/rpNorm/reNorm cache the ∞-norms of the residuals, tracked in
	// the same passes that write them; converged() and result() read the
	// cached values instead of rescanning.
	rdNorm, rpNorm, reNorm float64
	// fresh marks the residuals as exactly recomputed at the current
	// iterate (vs. incrementally updated).
	fresh bool
	// anytime snapshot state (Options.Anytime only): the best-merit iterate
	// seen so far, copied out each time the merit improves so a deadline
	// return never hands back a worse point than one already visited. The
	// vectors are grown lazily by prepareAnytime, so the default path keeps
	// its exact allocation count.
	anytime   bool
	snapValid bool
	snapIter  int
	snapObj   float64
	snapMu    float64
	snapMerit float64
	snapRdN   float64
	snapRpN   float64
	snapReN   float64
	snapX     linalg.Vector
	snapZ     linalg.Vector
	snapY     linalg.Vector
	// bumped records that the last factorization needed the emergency
	// regularization bump, invalidating the incremental residual identity.
	bumped bool
	// factorKind records how factorKKT satisfied its last call: a full
	// numeric refactorization, an exact reuse of the standing factor
	// (weights bitwise unchanged), or an in-place rank-k update.
	factorKind factorKind
	// reuse, set only by Sessions on inequality-only problems, carries the
	// cross-solve factorization reuse state. Nil on the pooled path.
	reuse *factorReuse
	// arena, set only by Sessions, double-buffers the escaping Result
	// storage so results stop allocating per solve.
	arena *resultArena
	bchol *linalg.BandCholesky
	// Schur complement pieces for equality constraints.
	hInvAt *linalg.Matrix
	schur  *linalg.Cholesky

	scratchN  linalg.Vector
	scratchN2 linalg.Vector
	scratchM  linalg.Vector
	scratchQ  linalg.Vector
	// panelQ is the column-major H⁻¹Aᵀ panel of the Schur path, batched
	// through SolveBatch.
	panelQ linalg.Vector
}

// factorKind enumerates the ways factorKKT can produce a valid factor.
type factorKind uint8

const (
	factorFull        factorKind = iota // refill + numeric factorization
	factorReusedExact                   // weights bitwise unchanged: factor kept as-is
	factorRankK                         // factor advanced by rank-k update
)

// factorReuse is the cross-solve factorization state of a Session: the
// weight vector that produced the standing band factor, scratch for
// diffing, the rank-k policy switch, and cumulative accounting. The exact
// bitwise-reuse tier is always active once the struct is attached; the
// rank-k tier is opt-in (SessionOptions.RankK) because its factor is a
// rounding-level perturbation of the full one, which trades bit-identical
// results for an O((n−start)·bw) update.
type factorReuse struct {
	valid bool
	prevW linalg.Vector
	rankK bool

	diffRows []int
	ups      []linalg.RankUpdate
	vbuf     []float64

	fullTotal   uint64
	reusedTotal uint64
	rankkTotal  uint64
}

// kktBandwidth bounds the half-bandwidth of H = Q + Gᵀdiag(w)G for any
// diagonal weights: the Gram bandwidth advertised by G widened to cover
// Q's own band. A dense G (no GramBandwidth method) means a dense H.
func kktBandwidth(p *Problem, n int) int {
	g, ok := p.G.(interface{ GramBandwidth() int })
	if !ok {
		return n - 1
	}
	bw := g.GramBandwidth()
	for i := 0; i < n && bw < n-1; i++ {
		for j := 0; j < i-bw; j++ {
			if p.Q.At(i, j) != 0 || p.Q.At(j, i) != 0 {
				bw = i - j
			}
		}
	}
	return bw
}

// KKTBandwidth computes the half-bandwidth of the KKT matrix
// H = Q + Gᵀdiag(w)G, the value Problem.KKTBandHint caches (as hint−1).
// The scan costs O(n²) on Q; callers that rebuild the same problem
// structure repeatedly run it once and pass the hint ever after.
func KKTBandwidth(p *Problem) int {
	return kktBandwidth(p, p.NumVars())
}

// statePool recycles ipmStates across solves: MPC and best-response loops
// solve tens of thousands of QPs, and the working vectors plus the packed
// KKT band dominate the solver's allocation profile. Buffers grow to the
// largest shape seen and are resliced for smaller ones, so interleaving
// different problem sizes (the horizon sweep) stops allocating once every
// shape has been visited.
var statePool = sync.Pool{New: func() any {
	return &ipmState{hBand: &linalg.BandMatrix{}, qBand: &linalg.BandMatrix{}, bchol: &linalg.BandCholesky{}, schur: &linalg.Cholesky{}}
}}

// growVec reslices v to length n, reallocating only when the capacity is
// insufficient. Contents are unspecified; every user overwrites before
// reading.
func growVec(v linalg.Vector, n int) linalg.Vector {
	if cap(v) < n {
		return linalg.NewVector(n)
	}
	return v[:n]
}

func newIPMState(p *Problem, n, m, q int) *ipmState {
	st := statePool.Get().(*ipmState)
	st.p = p
	if p.KKTBandHint > 0 {
		st.hBW = p.KKTBandHint - 1
		if st.hBW > n-1 {
			st.hBW = n - 1
		}
	} else {
		st.hBW = kktBandwidth(p, n)
	}
	st.cNorm = p.C.NormInf()
	st.hNorm = 0
	if m > 0 {
		st.hNorm = p.H.NormInf()
	}
	st.x = growVec(st.x, n)
	st.rd = growVec(st.rd, n)
	st.dx = growVec(st.dx, n)
	st.qx = growVec(st.qx, n)
	st.scratchN = growVec(st.scratchN, n)
	st.scratchN2 = growVec(st.scratchN2, n)
	st.s = growVec(st.s, m)
	st.z = growVec(st.z, m)
	st.rp = growVec(st.rp, m)
	st.rc = growVec(st.rc, m)
	st.ds = growVec(st.ds, m)
	st.dz = growVec(st.dz, m)
	st.w = growVec(st.w, m)
	st.sInv = growVec(st.sInv, m)
	st.scratchM = growVec(st.scratchM, m)
	st.y = growVec(st.y, q)
	st.re = growVec(st.re, q)
	st.dy = growVec(st.dy, q)
	st.scratchQ = growVec(st.scratchQ, q)
	st.n, st.m, st.q = n, m, q
	// Symbolic phase: shape the packed band and the factor layout once; the
	// per-iteration numeric phase then refills and refactorizes in place
	// with zero allocations. The layout comes from the process-wide shared
	// symbolic registry, so every solver working the same (n, bw) shape —
	// MPC steps, sweep cells, best-response sessions — resolves to one
	// analysis object.
	st.hBand.Reset(n, st.hBW)
	st.bchol.SymbolicFrom(linalg.SharedSymbolic(n, st.hBW))
	st.qBand.Reset(n, st.hBW)
	_ = st.qBand.CopyLowerBand(p.Q)
	return st
}

// release returns the state to the pool. Every iterate the caller keeps is
// cloned by result(), so the buffers are free to be reused. Stale band
// content is harmless: factorKKT rewrites the full working band before the
// factorization reads it.
func (st *ipmState) release() {
	st.p = nil
	statePool.Put(st)
}

// initPoint picks a strictly feasible-in-(s,z) starting point: the cold
// default (x = 0, unit slacks and duals), or the warm-start guess with
// slacks recomputed from the primal point and both s and z floored away
// from the boundary so the first iterations stay well centered.
func (st *ipmState) initPoint(warm *WarmStart) {
	if warm == nil || len(warm.X) != st.n || (warm.Z != nil && len(warm.Z) != st.m) {
		st.x.Zero()
		gx := st.scratchM
		_ = st.p.G.MulVec(st.x, gx)
		for i := 0; i < st.m; i++ {
			slack := st.p.H[i] - gx[i]
			if slack < 1 {
				slack = 1
			}
			st.s[i] = slack
			st.z[i] = 1
		}
		st.y.Zero()
		return
	}
	copy(st.x, warm.X)
	gx := st.scratchM
	_ = st.p.G.MulVec(st.x, gx)
	for i := 0; i < st.m; i++ {
		// Keep a modest distance from the boundary: a warm point sitting
		// exactly on an active constraint would start the iteration with a
		// near-singular scaling matrix.
		// The 1e-7 floor balances two failure modes measured on the MPC
		// and best-response workloads: larger floors discard most of the
		// warm point's centering information (1e-4 costs ~2 extra
		// iterations per warm solve under the adaptive fraction-to-boundary
		// rule), while smaller ones start so close to the boundary that the
		// first steps collapse on cold or badly shifted warm points.
		floor := 1e-7 * (1 + math.Abs(st.p.H[i]))
		slack := st.p.H[i] - gx[i]
		if slack < floor {
			slack = floor
		}
		st.s[i] = slack
		z := 1.0
		if warm.Z != nil {
			z = warm.Z[i]
			if z < floor {
				z = floor
			}
		}
		st.z[i] = z
	}
	st.y.Zero()
}

// computeResiduals evaluates rd, rp, re, the objective, and Q·x exactly at
// the current iterate.
func (st *ipmState) computeResiduals() {
	p := st.p
	// qx = Qx (Q's band is inside the KKT band); rd = Qx + c + Gᵀz + Aᵀy.
	_ = st.qBand.MulVecSym(st.x, st.qx)
	// The product Qx in hand, the objective ½xᵀQx + cᵀx falls out of the
	// same pass; converged() and result() reuse it instead of redoing the
	// banded product. The value matches Problem.Objective exactly: the
	// entries the band skips are exact zeros, which cannot change an IEEE
	// accumulation.
	var obj float64
	rd, qxv, c, x := st.rd[:st.n], st.qx[:st.n], p.C[:st.n], st.x[:st.n]
	for i := range rd {
		obj += x[i] * (0.5*qxv[i] + c[i])
		rd[i] = qxv[i] + c[i]
	}
	st.obj = obj
	_ = p.G.MulVecT(st.z, st.scratchN)
	sn := st.scratchN[:st.n]
	var rdN float64
	for i := range rd {
		v := rd[i] + sn[i]
		rd[i] = v
		if v < 0 {
			v = -v
		}
		if v > rdN {
			rdN = v
		}
	}
	if st.q > 0 {
		_ = p.A.MulVecT(st.y, st.scratchN)
		rdN = 0
		for i := range rd {
			v := rd[i] + sn[i]
			rd[i] = v
			if v < 0 {
				v = -v
			}
			if v > rdN {
				rdN = v
			}
		}
	}
	st.rdNorm = rdN
	// rp = Gx + s − h
	_ = p.G.MulVec(st.x, st.rp)
	rp, s, h := st.rp[:st.m], st.s[:st.m], p.H[:st.m]
	var rpN float64
	for i := range rp {
		v := rp[i] + (s[i] - h[i])
		rp[i] = v
		if v < 0 {
			v = -v
		}
		if v > rpN {
			rpN = v
		}
	}
	st.rpNorm = rpN
	// re = Ax − b
	st.reNorm = 0
	if st.q > 0 {
		_ = p.A.MulVec(st.x, st.re)
		for i := range st.re {
			st.re[i] -= p.B[i]
		}
		st.reNorm = st.re.NormInf()
	}
	st.fresh = true
}

// updateResiduals advances rd, rp, the objective, and Q·x across the step
// (αp, αd) from the Newton identities of the direction just taken: one
// banded matvec with dx instead of the four matvecs of a full evaluation.
// Only valid when q == 0, the step did not clip at the positivity floor,
// and the factorization used the static regularization (callers check).
func (st *ipmState) updateResiduals(alphaP, alphaD, reg float64) {
	_ = st.qBand.MulVecSym(st.dx, st.scratchN)
	qdx := st.scratchN[:st.n]
	rd, qxv, dx := st.rd[:st.n], st.qx[:st.n], st.dx[:st.n]
	pd := alphaP - alphaD
	omd := 1 - alphaD
	var rdN float64
	for i := range rd {
		v := omd*rd[i] + pd*qdx[i] - alphaD*reg*dx[i]
		rd[i] = v
		qxv[i] += alphaP * qdx[i]
		if v < 0 {
			v = -v
		}
		if v > rdN {
			rdN = v
		}
	}
	st.rdNorm = rdN
	var obj float64
	c, x := st.p.C[:st.n], st.x[:st.n]
	for i := range x {
		obj += x[i] * (0.5*qxv[i] + c[i])
	}
	st.obj = obj
	omp := 1 - alphaP
	rp := st.rp[:st.m]
	for i := range rp {
		rp[i] *= omp
	}
	if omp < 0 {
		omp = -omp
	}
	st.rpNorm *= omp
	st.fresh = false
}

func (st *ipmState) gap() float64 {
	return st.szDot / float64(st.m)
}

func (st *ipmState) gapAfter(alphaP, alphaD float64) float64 {
	var g float64
	s, ds := st.s[:st.m], st.ds[:st.m]
	z, dz := st.z[:st.m], st.dz[:st.m]
	for i := range s {
		g += (s[i] + alphaP*ds[i]) * (z[i] + alphaD*dz[i])
	}
	return g / float64(st.m)
}

func (st *ipmState) converged(tol, mu float64) bool {
	// Relative tests, each against its own natural scale: the duality gap
	// against the objective magnitude, the dual residual against the cost
	// vector, the primal residuals against the constraint data. Scaling
	// everything by ‖h‖ would let one huge (slack) bound mask a bad gap.
	objScale := 1 + math.Abs(st.obj)
	dualScale := 1 + st.cNorm
	priScale := 1 + st.hNorm
	eqScale := 1.0
	if st.q > 0 {
		eqScale += st.p.B.NormInf()
	}
	return mu < tol*objScale &&
		st.rdNorm < tol*dualScale*objScale &&
		st.rpNorm < tol*priScale &&
		st.reNorm < tol*eqScale
}

// factorKKT runs the numeric factorization phase: refill the packed band
// with H = Q + Gᵀdiag(z/s)G (+ regularization) and refactorize in place,
// plus the Schur complement A H⁻¹ Aᵀ when equalities are present. The
// symbolic phase (layout and storage) happened once in newIPMState, so no
// allocation occurs here on the q == 0 path.
func (st *ipmState) factorKKT(reg float64) error {
	st.bumped = false
	st.factorKind = factorFull
	sInv, wv := st.sInv[:st.m], st.w[:st.m]
	sv, zv := st.s[:st.m], st.z[:st.m]
	for i := range sv {
		sInv[i] = 1 / sv[i]
		wv[i] = zv[i] * sInv[i]
	}
	fr := st.reuse
	if fr != nil && st.tryFactorReuse(fr) {
		return nil
	}
	if err := st.factorKKTFull(reg); err != nil {
		if fr != nil {
			fr.valid = false
		}
		return err
	}
	if fr != nil {
		fr.fullTotal++
		if st.bumped {
			// The bump shifted the diagonal beyond what the weights imply;
			// the standing factor no longer corresponds to any weight
			// vector a later solve could diff against.
			fr.valid = false
		} else {
			fr.prevW = growVec(fr.prevW, st.m)
			copy(fr.prevW, wv)
			fr.valid = true
		}
	}
	return nil
}

// maxRankKRows bounds how many changed weights the rank-k tier will even
// consider: past this the work estimate below always rejects, so the diff
// scan stops early instead of collecting rows it cannot use.
const maxRankKRows = 16

// tryFactorReuse serves factorKKT from the standing factorization when the
// session's cross-solve state allows it. Two tiers:
//
// Exact reuse: the z/s weights are bitwise identical to the ones that
// produced the standing factor, so a refill+factorize would reproduce it
// bit for bit — both are skipped and results are unchanged down to the
// last ulp.
//
// Rank-k update (opt-in): when only a few weights moved — the signature of
// a price or capacity perturbation on an otherwise converged iterate —
// the new KKT matrix is H + Σᵢ Δwᵢ·gᵢgᵢᵀ over the changed rows, and the
// factor advances by banded rank-1 updates in O(Σᵢ (n−startᵢ)·bw) instead
// of a full refactorization. Applied only when the summed update sweeps
// undercut the refactorization work, and abandoned (falling back to the
// full path) on any stability rejection.
func (st *ipmState) tryFactorReuse(fr *factorReuse) bool {
	wv := st.w[:st.m]
	if !fr.valid || len(fr.prevW) != st.m {
		return false
	}
	if cap(fr.diffRows) < maxRankKRows {
		fr.diffRows = make([]int, 0, maxRankKRows)
	}
	rows := fr.diffRows[:0]
	for i, w := range wv {
		if w != fr.prevW[i] {
			if len(rows) == maxRankKRows {
				return false
			}
			rows = append(rows, i)
		}
	}
	fr.diffRows = rows
	if len(rows) == 0 {
		st.factorKind = factorReusedExact
		fr.reusedTotal++
		return true
	}
	if !fr.rankK {
		return false
	}
	sp, ok := st.p.G.(*linalg.SparseMatrix)
	if !ok {
		return false
	}
	w1 := st.hBW + 1
	if cap(fr.vbuf) < len(rows)*w1 {
		fr.vbuf = make([]float64, len(rows)*w1)
	}
	ups := fr.ups[:0]
	work := 0
	for k, i := range rows {
		start, vals, ok := sp.RowWindow(i, fr.vbuf[k*w1:(k+1)*w1])
		if !ok {
			fr.ups = ups
			return false
		}
		if len(vals) == 0 {
			// An empty constraint row contributes nothing to H; its weight
			// change is real but invisible to the factorization.
			continue
		}
		work += st.n - start
		ups = append(ups, linalg.RankUpdate{Start: start, V: vals, Sigma: wv[i] - fr.prevW[i]})
	}
	fr.ups = ups
	// Work gate: each rank-1 sweep costs ~4·(n−start)·bw flops against the
	// ~n·bw² of refill+factorize; accept only with a clear margin.
	if 2*work >= st.n*w1 {
		return false
	}
	if err := st.bchol.UpdateRankK(ups); err != nil {
		// Unstable downdate (or a window the band cannot hold): the factor
		// may be half-updated, so invalidate it and refactorize.
		fr.valid = false
		return false
	}
	copy(fr.prevW, wv)
	st.factorKind = factorRankK
	fr.rankkTotal++
	return true
}

// factorKKTFull is the numeric factorization proper: refill the packed
// band and refactorize in place, then the Schur pieces when equalities
// are present.
func (st *ipmState) factorKKTFull(reg float64) error {
	// Refill the working band: Q's packed band (cached once per solve by
	// newIPMState) lands in one contiguous copy, reg goes on the diagonal,
	// then Gᵀdiag(w)G is accumulated on top. kktBandwidth (or the caller's
	// hint) guarantees both terms live inside the band.
	n, bw := st.n, st.hBW
	_ = st.hBand.CopyFrom(st.qBand)
	st.hBand.AddDiag(reg)
	if err := st.p.G.AtATWeightedBand(st.w, st.hBand); err != nil {
		return err
	}
	if err := st.bchol.Factorize(st.hBand); err != nil {
		// Retry once with heavier regularization, scaled to the matrix
		// magnitude: near-complementary iterates blow the z/s weights up
		// to ~1e14, where an absolute 1e-8 shift is lost in rounding.
		var maxDiag float64
		for i := 0; i < n; i++ {
			if d := st.hBand.Row(i)[bw]; d > maxDiag {
				maxDiag = d
			}
		}
		st.bumped = true
		st.hBand.AddDiag(1e-8 * (1 + maxDiag))
		if err := st.bchol.Factorize(st.hBand); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	}

	if st.q > 0 {
		// Equality constraints sit off the experiment hot paths, but the
		// H⁻¹Aᵀ panel is a natural multi-RHS solve: columns of Aᵀ (= rows
		// of A) are gathered into one column-major panel and
		// back-substituted together, each column bit-identical to the
		// sequential solve this replaces.
		st.hInvAt = linalg.NewMatrix(st.n, st.q)
		st.panelQ = growVec(st.panelQ, st.n*st.q)
		panel := st.panelQ
		for j := 0; j < st.q; j++ {
			col := panel[j*st.n : (j+1)*st.n]
			for i := 0; i < st.n; i++ {
				col[i] = st.p.A.At(j, i)
			}
		}
		if err := st.bchol.SolveBatch(panel, panel, st.q); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		for j := 0; j < st.q; j++ {
			col := panel[j*st.n : (j+1)*st.n]
			for i := 0; i < st.n; i++ {
				st.hInvAt.Set(i, j, col[i])
			}
		}
		sc, err := linalg.Mul(st.p.A, st.hInvAt)
		if err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		for i := 0; i < st.q; i++ {
			sc.Inc(i, i, reg)
		}
		if err := st.schur.Factorize(sc); err != nil {
			return fmt.Errorf("schur: %v: %w", err, ErrNumerical)
		}
	}
	return nil
}

// solveDirection solves the reduced Newton system for the current
// residuals (rd, rp, re, rc), storing the direction in dx/ds/dz/dy.
// factorKKT must have been called for the current (s, z).
// solveDirection computes the search direction for the current rc and, in
// the same pass that forms (ds, dz), the largest steps keeping s and z
// positive, each in (0, 1].
func (st *ipmState) solveDirection() (alphaP, alphaD float64, err error) {
	// r1 = −rd − Gᵀ S⁻¹ (Z·rp − rc)
	scr := st.scratchM[:st.m]
	z, rp, rc, sInv := st.z[:st.m], st.rp[:st.m], st.rc[:st.m], st.sInv[:st.m]
	for i := range scr {
		scr[i] = (z[i]*rp[i] - rc[i]) * sInv[i]
	}
	if err := st.p.G.MulVecT(st.scratchM, st.scratchN); err != nil {
		return 0, 0, err
	}
	r1 := st.dx[:st.n] // reuse storage
	rd, sn := st.rd[:st.n], st.scratchN[:st.n]
	for i := range r1 {
		r1[i] = -rd[i] - sn[i]
	}

	if st.q == 0 {
		if err := st.bchol.Solve(r1, st.dx); err != nil {
			return 0, 0, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	} else {
		// Schur: (A H⁻¹ Aᵀ) dy = A H⁻¹ r1 + re, dx = H⁻¹ (r1 − Aᵀ dy).
		hr := st.scratchN2
		if err := st.bchol.Solve(r1, hr); err != nil {
			return 0, 0, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		rhs := st.scratchQ
		if err := st.p.A.MulVec(hr, rhs); err != nil {
			return 0, 0, err
		}
		for i := 0; i < st.q; i++ {
			rhs[i] += st.re[i]
		}
		if err := st.schur.Solve(rhs, st.dy); err != nil {
			return 0, 0, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		if err := st.p.A.MulVecT(st.dy, st.scratchN); err != nil {
			return 0, 0, err
		}
		for i := 0; i < st.n; i++ {
			r1[i] -= st.scratchN[i]
		}
		if err := st.bchol.Solve(r1, st.dx); err != nil {
			return 0, 0, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	}

	// ds = −rp − G dx ; dz = S⁻¹(−rc − Z ds). The boundary step lengths
	// fall out of the same pass: since s, z > 0 the guard −v > alpha·d can
	// only fire for d < 0, where it is exactly −v/d < alpha, so the common
	// non-tightening case costs a multiply instead of a divide. Decoupled
	// primal/dual steps are the standard Mehrotra refinement: a slack
	// pinned at its boundary no longer truncates the dual step (and vice
	// versa), which shortens the tail of the iteration.
	if err := st.p.G.MulVec(st.dx, st.scratchM); err != nil {
		return 0, 0, err
	}
	alphaP, alphaD = 1.0, 1.0
	ds, dz, s := st.ds[:st.m], st.dz[:st.m], st.s[:st.m]
	for i := range ds {
		d := -rp[i] - scr[i]
		ds[i] = d
		dzi := (-rc[i] - z[i]*d) * sInv[i]
		dz[i] = dzi
		if -s[i] > alphaP*d {
			alphaP = -s[i] / d
		}
		if -z[i] > alphaD*dzi {
			alphaD = -z[i] / dzi
		}
	}
	return alphaP, alphaD, nil
}

// step advances the iterate by αp along (dx, ds) and αd along (dz, dy),
// flooring s and z away from zero. It reports whether any floor fired —
// a nonlinear correction that invalidates the incremental residual
// identities.
func (st *ipmState) step(alphaP, alphaD float64) bool {
	linalg.Axpy(alphaP, st.dx[:st.n], st.x[:st.n])
	linalg.Axpy(alphaD, st.dy[:st.q], st.y[:st.q])
	// s and z advance, floor, and accumulate the complementarity product
	// sᵀz in a single pass; gap() reads the cached product instead of
	// rescanning both vectors every iteration.
	const floor = 1e-14
	floored := false
	var dot float64
	s, ds := st.s[:st.m], st.ds[:st.m]
	z, dz := st.z[:st.m], st.dz[:st.m]
	for i := range s {
		si := s[i] + alphaP*ds[i]
		if si < floor {
			si = floor
			floored = true
		}
		s[i] = si
		zi := z[i] + alphaD*dz[i]
		if zi < floor {
			zi = floor
			floored = true
		}
		z[i] = zi
		dot += si * zi
	}
	st.szDot = dot
	return floored
}

// anytimeInfeasWeight converts primal/equality infeasibility into merit
// units: an anytime snapshot is "better" when objective + weight·(‖rp‖∞ +
// ‖re‖∞) is lower. The weight is large enough that no realistic objective
// improvement can buy constraint violation, so the best-so-far rule walks
// toward feasibility first and cost second — exactly the preference of a
// controller that must ship an implementable plan at the deadline.
const anytimeInfeasWeight = 1e6

// prepareAnytime arms (or disarms) the per-iteration snapshot. The three
// snapshot buffers grow only here, so solves without Options.Anytime keep
// the solver's exact allocation count.
func (st *ipmState) prepareAnytime(on bool) {
	st.anytime = on
	st.snapValid = false
	if !on {
		return
	}
	st.snapX = growVec(st.snapX, st.n)
	st.snapZ = growVec(st.snapZ, st.m)
	st.snapY = growVec(st.snapY, st.q)
}

// snapshotAnytime records the current iterate when its merit beats the
// best snapshot so far. Pure copies: the solve's own floating-point
// trajectory is untouched, which is what makes the no-deadline anytime
// path bit-identical to the plain solver.
func (st *ipmState) snapshotAnytime(iter int) {
	merit := st.obj + anytimeInfeasWeight*(st.rpNorm+st.reNorm)
	if st.snapValid && merit >= st.snapMerit {
		return
	}
	st.snapValid = true
	st.snapIter = iter
	st.snapObj = st.obj
	st.snapMu = st.gap()
	st.snapMerit = merit
	st.snapRdN = st.rdNorm
	st.snapRpN = st.rpNorm
	st.snapReN = st.reNorm
	copy(st.snapX[:st.n], st.x[:st.n])
	copy(st.snapZ[:st.m], st.z[:st.m])
	copy(st.snapY[:st.q], st.y[:st.q])
}

// anytimeResult builds an escaping Result from the snapshot. Unlike
// result() it always allocates fresh storage — the deadline path is a
// degraded, rare path, and sharing the session arena would let a partial
// iterate overwrite a still-referenced complete plan.
func (st *ipmState) anytimeResult(iters int) *Result {
	need := st.n + st.m + st.q
	buf := linalg.NewVector(need)
	x := buf[:st.n:st.n]
	copy(x, st.snapX[:st.n])
	z := buf[st.n : st.n+st.m : st.n+st.m]
	copy(z, st.snapZ[:st.m])
	pres := st.snapRpN
	if st.snapReN > pres {
		pres = st.snapReN
	}
	res := &Result{
		X:          x,
		IneqDuals:  z,
		Objective:  st.snapObj,
		Iterations: iters,
		Gap:        st.snapMu,
		PrimalRes:  pres,
		DualRes:    st.snapRdN,
		Anytime: &AnytimeInfo{
			Iterations: st.snapIter,
			Mu:         st.snapMu,
			PrimalRes:  pres,
			DualRes:    st.snapRdN,
			Merit:      st.snapMerit,
		},
	}
	if st.q > 0 {
		y := buf[st.n+st.m:]
		copy(y, st.snapY[:st.q])
		res.EqDuals = y
	}
	return res
}

// resultArena double-buffers the escaping Result storage of a Session.
// Each solve writes the generation the previous solve did not, so a
// result — typically feeding the next solve's warm start — stays valid
// through exactly one more solve without any per-solve allocation.
type resultArena struct {
	gen  int
	bufs [2]linalg.Vector
	ress [2]Result
}

func (st *ipmState) result(p *Problem, iters int, mu float64) (*Result, error) {
	// The escaping iterates are carved from one backing buffer (the state's
	// own vectors go back to the pool), and the objective reuses the
	// state's scratch instead of allocating. Sessions swap in their arena's
	// off generation instead of allocating at all.
	need := st.n + st.m + st.q
	var buf linalg.Vector
	var res *Result
	if ar := st.arena; ar != nil {
		ar.gen ^= 1
		ar.bufs[ar.gen] = growVec(ar.bufs[ar.gen], need)
		buf = ar.bufs[ar.gen]
		res = &ar.ress[ar.gen]
	} else {
		buf = linalg.NewVector(need)
		res = &Result{}
	}
	x := buf[:st.n:st.n]
	copy(x, st.x)
	z := buf[st.n : st.n+st.m : st.n+st.m]
	copy(z, st.z)
	*res = Result{
		X:          x,
		IneqDuals:  z,
		Objective:  st.obj,
		Iterations: iters,
		Gap:        mu,
		PrimalRes:  math.Max(st.rpNorm, st.reNorm),
		DualRes:    st.rdNorm,
	}
	if st.q > 0 {
		y := buf[st.n+st.m:]
		copy(y, st.y)
		res.EqDuals = y
	}
	return res, nil
}

// solveEqualityOnly handles problems with no inequality constraints by
// solving the KKT system directly:
//
//	[Q Aᵀ; A 0] [x; y] = [−c; b]
func solveEqualityOnly(p *Problem, opts Options) (*Result, error) {
	n := p.NumVars()
	q := p.NumEq()
	hm := p.Q.Clone()
	for i := 0; i < n; i++ {
		hm.Inc(i, i, opts.Regularize)
	}
	chol, err := linalg.NewCholesky(hm)
	if err != nil {
		return nil, fmt.Errorf("unconstrained Q: %v: %w", err, ErrNumerical)
	}
	negC := p.C.Clone()
	negC.Scale(-1)
	if q == 0 {
		x := linalg.NewVector(n)
		if err := chol.Solve(negC, x); err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		obj, err := p.Objective(x)
		if err != nil {
			return nil, err
		}
		return &Result{X: x, Objective: obj, Iterations: 1}, nil
	}
	hInvAt, err := chol.SolveMatrix(p.A.T())
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	sc, err := linalg.Mul(p.A, hInvAt)
	if err != nil {
		return nil, err
	}
	schur, err := linalg.NewCholesky(sc)
	if err != nil {
		return nil, fmt.Errorf("schur: %v: %w", err, ErrNumerical)
	}
	hInvC := linalg.NewVector(n)
	if err := chol.Solve(negC, hInvC); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	rhs := linalg.NewVector(q)
	if err := p.A.MulVec(hInvC, rhs); err != nil {
		return nil, err
	}
	for i := 0; i < q; i++ {
		rhs[i] -= p.B[i]
	}
	y := linalg.NewVector(q)
	if err := schur.Solve(rhs, y); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	aty := linalg.NewVector(n)
	if err := p.A.MulVecT(y, aty); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		negC[i] -= aty[i]
	}
	x := linalg.NewVector(n)
	if err := chol.Solve(negC, x); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	obj, err := p.Objective(x)
	if err != nil {
		return nil, err
	}
	return &Result{X: x, EqDuals: y, Objective: obj, Iterations: 1}, nil
}

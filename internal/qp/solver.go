package qp

import (
	"fmt"
	"math"

	"dspp/internal/linalg"
)

// Solve minimizes the given convex QP with a primal–dual interior-point
// method. On ErrMaxIterations the best iterate found so far is returned
// alongside the error so callers may decide whether it is usable.
func Solve(p *Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	n := p.NumVars()
	m := p.NumIneq()
	pe := p.NumEq()

	if m == 0 {
		return solveEqualityOnly(p, opts)
	}

	st := newIPMState(p, n, m, pe)
	st.initPoint()

	for iter := 0; iter < opts.MaxIterations; iter++ {
		st.computeResiduals()
		mu := st.gap()
		if st.converged(opts.Tolerance, mu) {
			return st.result(p, iter, mu)
		}

		if err := st.factorKKT(opts.Regularize); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", iter, err)
		}

		// Affine (predictor) direction: pure Newton on the residuals with
		// rc = s∘z (no centering).
		for i := 0; i < m; i++ {
			st.rc[i] = st.s[i] * st.z[i]
		}
		if err := st.solveDirection(); err != nil {
			return nil, fmt.Errorf("iteration %d (affine): %w", iter, err)
		}
		alphaAff := st.maxStep()
		muAff := st.gapAfter(alphaAff)

		// Centering parameter (Mehrotra heuristic).
		sigma := 0.0
		if mu > 0 {
			r := muAff / mu
			sigma = r * r * r
		}

		// Corrector direction: rc = s∘z + Δs_aff∘Δz_aff − σμ·1.
		for i := 0; i < m; i++ {
			st.rc[i] = st.s[i]*st.z[i] + st.ds[i]*st.dz[i] - sigma*mu
		}
		if err := st.solveDirection(); err != nil {
			return nil, fmt.Errorf("iteration %d (corrector): %w", iter, err)
		}

		alpha := opts.StepScale * st.maxStep()
		if alpha > 1 {
			alpha = 1
		}
		st.step(alpha)
	}

	st.computeResiduals()
	mu := st.gap()
	res, err := st.result(p, opts.MaxIterations, mu)
	if err != nil {
		return nil, err
	}
	// Accept a slightly looser solution before reporting failure: MPC loops
	// prefer a usable near-optimal control to an error.
	if st.converged(opts.Tolerance*1e4, mu) {
		return res, nil
	}
	return res, fmt.Errorf("gap=%.3g primal=%.3g dual=%.3g: %w",
		mu, res.PrimalRes, res.DualRes, ErrMaxIterations)
}

// ipmState carries the working vectors of the interior-point iteration.
type ipmState struct {
	p       *Problem
	n, m, q int // vars, inequalities, equalities

	x, s, z, y linalg.Vector // primal, slack, ineq dual, eq dual

	rd, rp, re, rc linalg.Vector // residuals
	dx, ds, dz, dy linalg.Vector // search direction

	w    linalg.Vector // z/s weights
	hMat *linalg.Matrix
	chol *linalg.Cholesky
	// Schur complement pieces for equality constraints.
	hInvAt *linalg.Matrix
	schur  *linalg.Cholesky

	scratchN linalg.Vector
	scratchM linalg.Vector
	scratchQ linalg.Vector
}

func newIPMState(p *Problem, n, m, q int) *ipmState {
	return &ipmState{
		p: p, n: n, m: m, q: q,
		x: linalg.NewVector(n), s: linalg.NewVector(m),
		z: linalg.NewVector(m), y: linalg.NewVector(q),
		rd: linalg.NewVector(n), rp: linalg.NewVector(m),
		re: linalg.NewVector(q), rc: linalg.NewVector(m),
		dx: linalg.NewVector(n), ds: linalg.NewVector(m),
		dz: linalg.NewVector(m), dy: linalg.NewVector(q),
		w:        linalg.NewVector(m),
		hMat:     linalg.NewMatrix(n, n),
		scratchN: linalg.NewVector(n), scratchM: linalg.NewVector(m),
		scratchQ: linalg.NewVector(q),
	}
}

// initPoint picks a strictly feasible-in-(s,z) starting point.
func (st *ipmState) initPoint() {
	st.x.Zero()
	gx := st.scratchM
	_ = st.p.G.MulVec(st.x, gx)
	for i := 0; i < st.m; i++ {
		slack := st.p.H[i] - gx[i]
		if slack < 1 {
			slack = 1
		}
		st.s[i] = slack
		st.z[i] = 1
	}
	st.y.Zero()
}

func (st *ipmState) computeResiduals() {
	p := st.p
	// rd = Qx + c + Gᵀz + Aᵀy
	_ = p.Q.MulVec(st.x, st.rd)
	for i := range st.rd {
		st.rd[i] += p.C[i]
	}
	_ = p.G.MulVecT(st.z, st.scratchN)
	for i := range st.rd {
		st.rd[i] += st.scratchN[i]
	}
	if st.q > 0 {
		_ = p.A.MulVecT(st.y, st.scratchN)
		for i := range st.rd {
			st.rd[i] += st.scratchN[i]
		}
	}
	// rp = Gx + s − h
	_ = p.G.MulVec(st.x, st.rp)
	for i := range st.rp {
		st.rp[i] += st.s[i] - p.H[i]
	}
	// re = Ax − b
	if st.q > 0 {
		_ = p.A.MulVec(st.x, st.re)
		for i := range st.re {
			st.re[i] -= p.B[i]
		}
	}
}

func (st *ipmState) gap() float64 {
	var g float64
	for i := 0; i < st.m; i++ {
		g += st.s[i] * st.z[i]
	}
	return g / float64(st.m)
}

func (st *ipmState) gapAfter(alpha float64) float64 {
	var g float64
	for i := 0; i < st.m; i++ {
		g += (st.s[i] + alpha*st.ds[i]) * (st.z[i] + alpha*st.dz[i])
	}
	return g / float64(st.m)
}

func (st *ipmState) converged(tol, mu float64) bool {
	// Relative tests, each against its own natural scale: the duality gap
	// against the objective magnitude, the dual residual against the cost
	// vector, the primal residuals against the constraint data. Scaling
	// everything by ‖h‖ would let one huge (slack) bound mask a bad gap.
	obj, err := st.p.Objective(st.x)
	if err != nil {
		return false
	}
	objScale := 1 + math.Abs(obj)
	dualScale := 1 + st.p.C.NormInf()
	priScale := 1.0
	if st.m > 0 {
		priScale += st.p.H.NormInf()
	}
	eqScale := 1.0
	if st.q > 0 {
		eqScale += st.p.B.NormInf()
	}
	return mu < tol*objScale &&
		st.rd.NormInf() < tol*dualScale*objScale &&
		st.rp.NormInf() < tol*priScale &&
		st.re.NormInf() < tol*eqScale
}

// factorKKT forms H = Q + Gᵀdiag(z/s)G (+ regularization) and factorizes
// it, plus the Schur complement A H⁻¹ Aᵀ when equalities are present.
func (st *ipmState) factorKKT(reg float64) error {
	for i := 0; i < st.m; i++ {
		st.w[i] = st.z[i] / st.s[i]
	}
	st.hMat.Zero()
	if err := st.p.G.AtATWeighted(st.w, st.hMat); err != nil {
		return err
	}
	if err := st.hMat.AddScaled(1, st.p.Q); err != nil {
		return err
	}
	for i := 0; i < st.n; i++ {
		st.hMat.Inc(i, i, reg)
	}
	chol, err := linalg.NewCholesky(st.hMat)
	if err != nil {
		// Retry once with heavier regularization, scaled to the matrix
		// magnitude: near-complementary iterates blow the z/s weights up
		// to ~1e14, where an absolute 1e-8 shift is lost in rounding.
		var maxDiag float64
		for i := 0; i < st.n; i++ {
			if d := st.hMat.At(i, i); d > maxDiag {
				maxDiag = d
			}
		}
		bump := 1e-8 * (1 + maxDiag)
		for i := 0; i < st.n; i++ {
			st.hMat.Inc(i, i, bump)
		}
		chol, err = linalg.NewCholesky(st.hMat)
		if err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	}
	st.chol = chol

	if st.q > 0 {
		at := st.p.A.T()
		st.hInvAt, err = chol.SolveMatrix(at)
		if err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		sc, err := linalg.Mul(st.p.A, st.hInvAt)
		if err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		for i := 0; i < st.q; i++ {
			sc.Inc(i, i, reg)
		}
		st.schur, err = linalg.NewCholesky(sc)
		if err != nil {
			return fmt.Errorf("schur: %v: %w", err, ErrNumerical)
		}
	}
	return nil
}

// solveDirection solves the reduced Newton system for the current
// residuals (rd, rp, re, rc), storing the direction in dx/ds/dz/dy.
// factorKKT must have been called for the current (s, z).
func (st *ipmState) solveDirection() error {
	// r1 = −rd − Gᵀ S⁻¹ (Z·rp − rc)
	for i := 0; i < st.m; i++ {
		st.scratchM[i] = (st.z[i]*st.rp[i] - st.rc[i]) / st.s[i]
	}
	if err := st.p.G.MulVecT(st.scratchM, st.scratchN); err != nil {
		return err
	}
	r1 := st.dx // reuse storage
	for i := 0; i < st.n; i++ {
		r1[i] = -st.rd[i] - st.scratchN[i]
	}

	if st.q == 0 {
		if err := st.chol.Solve(r1, st.dx); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	} else {
		// Schur: (A H⁻¹ Aᵀ) dy = A H⁻¹ r1 + re, dx = H⁻¹ (r1 − Aᵀ dy).
		hr := linalg.NewVector(st.n)
		if err := st.chol.Solve(r1, hr); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		rhs := st.scratchQ
		if err := st.p.A.MulVec(hr, rhs); err != nil {
			return err
		}
		for i := 0; i < st.q; i++ {
			rhs[i] += st.re[i]
		}
		if err := st.schur.Solve(rhs, st.dy); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		if err := st.p.A.MulVecT(st.dy, st.scratchN); err != nil {
			return err
		}
		for i := 0; i < st.n; i++ {
			r1[i] -= st.scratchN[i]
		}
		if err := st.chol.Solve(r1, st.dx); err != nil {
			return fmt.Errorf("%v: %w", err, ErrNumerical)
		}
	}

	// ds = −rp − G dx ; dz = S⁻¹(−rc − Z ds).
	if err := st.p.G.MulVec(st.dx, st.scratchM); err != nil {
		return err
	}
	for i := 0; i < st.m; i++ {
		st.ds[i] = -st.rp[i] - st.scratchM[i]
		st.dz[i] = (-st.rc[i] - st.z[i]*st.ds[i]) / st.s[i]
	}
	return nil
}

// maxStep returns the largest alpha in (0, 1] keeping s and z positive.
func (st *ipmState) maxStep() float64 {
	alpha := 1.0
	for i := 0; i < st.m; i++ {
		if st.ds[i] < 0 {
			if a := -st.s[i] / st.ds[i]; a < alpha {
				alpha = a
			}
		}
		if st.dz[i] < 0 {
			if a := -st.z[i] / st.dz[i]; a < alpha {
				alpha = a
			}
		}
	}
	return alpha
}

func (st *ipmState) step(alpha float64) {
	_ = st.x.AXPY(alpha, st.dx)
	_ = st.s.AXPY(alpha, st.ds)
	_ = st.z.AXPY(alpha, st.dz)
	_ = st.y.AXPY(alpha, st.dy)
	const floor = 1e-14
	for i := 0; i < st.m; i++ {
		if st.s[i] < floor {
			st.s[i] = floor
		}
		if st.z[i] < floor {
			st.z[i] = floor
		}
	}
}

func (st *ipmState) result(p *Problem, iters int, mu float64) (*Result, error) {
	obj, err := p.Objective(st.x)
	if err != nil {
		return nil, err
	}
	res := &Result{
		X:          st.x.Clone(),
		IneqDuals:  st.z.Clone(),
		Objective:  obj,
		Iterations: iters,
		Gap:        mu,
		PrimalRes:  math.Max(st.rp.NormInf(), st.re.NormInf()),
		DualRes:    st.rd.NormInf(),
	}
	if st.q > 0 {
		res.EqDuals = st.y.Clone()
	}
	return res, nil
}

// solveEqualityOnly handles problems with no inequality constraints by
// solving the KKT system directly:
//
//	[Q Aᵀ; A 0] [x; y] = [−c; b]
func solveEqualityOnly(p *Problem, opts Options) (*Result, error) {
	n := p.NumVars()
	q := p.NumEq()
	hm := p.Q.Clone()
	for i := 0; i < n; i++ {
		hm.Inc(i, i, opts.Regularize)
	}
	chol, err := linalg.NewCholesky(hm)
	if err != nil {
		return nil, fmt.Errorf("unconstrained Q: %v: %w", err, ErrNumerical)
	}
	negC := p.C.Clone()
	negC.Scale(-1)
	if q == 0 {
		x := linalg.NewVector(n)
		if err := chol.Solve(negC, x); err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
		}
		obj, err := p.Objective(x)
		if err != nil {
			return nil, err
		}
		return &Result{X: x, Objective: obj, Iterations: 1}, nil
	}
	hInvAt, err := chol.SolveMatrix(p.A.T())
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	sc, err := linalg.Mul(p.A, hInvAt)
	if err != nil {
		return nil, err
	}
	schur, err := linalg.NewCholesky(sc)
	if err != nil {
		return nil, fmt.Errorf("schur: %v: %w", err, ErrNumerical)
	}
	hInvC := linalg.NewVector(n)
	if err := chol.Solve(negC, hInvC); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	rhs := linalg.NewVector(q)
	if err := p.A.MulVec(hInvC, rhs); err != nil {
		return nil, err
	}
	for i := 0; i < q; i++ {
		rhs[i] -= p.B[i]
	}
	y := linalg.NewVector(q)
	if err := schur.Solve(rhs, y); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	aty := linalg.NewVector(n)
	if err := p.A.MulVecT(y, aty); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		negC[i] -= aty[i]
	}
	x := linalg.NewVector(n)
	if err := chol.Solve(negC, x); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrNumerical)
	}
	obj, err := p.Objective(x)
	if err != nil {
		return nil, err
	}
	return &Result{X: x, EqDuals: y, Objective: obj, Iterations: 1}, nil
}

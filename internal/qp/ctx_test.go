package qp

import (
	"context"
	"errors"
	"testing"

	"dspp/internal/linalg"
)

func TestSolveWarmCtxCancelled(t *testing.T) {
	// Inequality-constrained so the solve enters the IPM loop, where the
	// context is polled once per iteration.
	p := &Problem{
		Q: linalg.Identity(2),
		C: linalg.VectorOf(-1, -2),
		G: mustMatrix(t, [][]float64{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}),
		H: linalg.VectorOf(0.5, 0.5, 0, 0),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveWarmCtx(ctx, p, DefaultOptions(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same problem with a live context must solve cleanly.
	res, err := SolveWarmCtx(context.Background(), p, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] > 0.5+1e-8 || res.X[1] > 0.5+1e-8 {
		t.Errorf("x = %v violates the box", res.X)
	}
}

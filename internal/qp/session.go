package qp

import (
	"context"
	"fmt"

	"dspp/internal/telemetry"
)

// Session is a persistent solver bound to one Problem instance that will
// be solved many times as its data drifts: the per-round best-response
// QPs of Algorithm 2, the per-step MPC solves, the cells of a horizon
// sweep. The caller may rewrite C and H in place between solves; Q, G, A
// and every dimension are fixed for the session's lifetime.
//
// Against the one-shot SolveWarmCtx path a session changes three things,
// none of which alters a single bit of the computed iterates:
//
//   - State lifetime: the working vectors, packed KKT band, and factor
//     live for the session instead of bouncing through the state pool.
//   - Result storage: results double-buffer inside the session (the
//     previous result — usually the next warm start — survives exactly
//     one more solve), eliminating the last two allocations per solve.
//   - Factorization reuse: when a solve's z/s weights are bitwise
//     identical to the ones that produced the standing factor, the
//     refill+factorize is skipped outright; with SessionOptions.RankK,
//     a handful of changed weights advances the factor by banded rank-1
//     updates instead (see ResolveCtx).
//
// A Session is not safe for concurrent use; concurrent solvers each hold
// their own session (they still share symbolic analysis through the
// process-wide registry).
type Session struct {
	p    *Problem
	opts Options

	st    *ipmState
	fr    factorReuse
	arena resultArena
	// hot marks the iterate in st as the final point of a successful
	// solve, the precondition for ResolveCtx's continuation path.
	hot bool

	// Checkpoint state: the saved baseline iterate and bound vector for
	// ResolvePerturbedCtx queries.
	ckSet         bool
	ckX, ckS, ckZ []float64
	ckY, ckH      []float64
}

// SessionOptions selects session-only behavior on top of Options.
type SessionOptions struct {
	// RankK enables the rank-k factorization-update tier: solves whose
	// KKT weights differ from the standing factor's in only a few rows
	// (sparse capacity or price perturbations on a converged iterate)
	// update the factor in place instead of refactorizing. The updated
	// factor agrees with a fresh one to rounding (~1e-10 relative), not
	// bit for bit — leave it off where bit-identical replay matters.
	RankK bool
}

// NewSession binds a session to p with exact-reuse enabled and the
// rank-k tier off (the bit-identical configuration).
func NewSession(p *Problem, opts Options) (*Session, error) {
	return NewSessionOpts(p, opts, SessionOptions{})
}

// NewSessionOpts is NewSession with explicit session options.
func NewSessionOpts(p *Problem, opts Options, sopts SessionOptions) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.NumIneq() == 0 {
		return nil, fmt.Errorf("session requires inequality constraints: %w", ErrBadProblem)
	}
	s := &Session{p: p, opts: opts.withDefaults()}
	s.st = newIPMState(p, p.NumVars(), p.NumIneq(), p.NumEq())
	s.st.arena = &s.arena
	if p.NumEq() == 0 {
		// The reuse tiers assume the inequality-only band factorization;
		// the Schur pieces of equality-constrained problems rebuild every
		// iteration regardless, so those sessions run without reuse.
		s.fr.rankK = sopts.RankK
		s.st.reuse = &s.fr
	}
	return s, nil
}

// SetAnytime toggles Options.Anytime for subsequent solves on this
// session: deadline-bounded callers enable it so a solve stopped by its
// context hands back the best iterate (ErrDeadline contract) instead of
// only an error. Off by default — the snapshot copies cost a little per
// improving iteration, so unbudgeted callers shouldn't pay for them.
func (s *Session) SetAnytime(on bool) { s.opts.Anytime = on }

// SolveCtx runs one solve against the problem's current data, optionally
// warm-started. Iterates are bit-identical to SolveWarmCtx on the same
// data (with RankK off). The returned Result's slices remain valid until
// the end of the next-but-one solve on this session.
func (s *Session) SolveCtx(ctx context.Context, warm *WarmStart) (*Result, error) {
	return s.run(ctx, warm, false)
}

// Solve is SolveCtx without cancellation.
func (s *Session) Solve(warm *WarmStart) (*Result, error) {
	return s.SolveCtx(context.Background(), warm)
}

// ResolveCtx continues the interior-point iteration from the previous
// solve's final iterate — no warm-start re-centering, no slack
// recomputation. It is the hot path after PerturbH: the iterate is
// already near-optimal for the perturbed problem, only the perturbed
// rows' z/s weights have moved, and (with RankK on) the factorization
// advances by a rank-k update instead of a refactorization. Without a
// prior successful solve it degrades to a cold SolveCtx.
func (s *Session) ResolveCtx(ctx context.Context) (*Result, error) {
	if !s.hot {
		return s.SolveCtx(ctx, nil)
	}
	return s.run(ctx, nil, true)
}

// run wraps one solve (cont=false: fresh start from warm; cont=true:
// continue from the standing iterate) with norm refresh, hot tracking,
// and the optional telemetry envelope. No closures — the zero-alloc
// steady state of a session depends on it.
func (s *Session) run(ctx context.Context, warm *WarmStart, cont bool) (*Result, error) {
	st := s.st
	// C and H may have been rewritten since the last solve; their norms
	// feed the convergence scales and must track the data.
	st.cNorm = s.p.C.NormInf()
	st.hNorm = s.p.H.NormInf()
	s.hot = false
	var res *Result
	var err error
	if s.opts.Hooks == nil {
		res, err = s.dispatch(ctx, warm, cont, nil)
	} else {
		hooks := s.opts.Hooks
		sp := hooks.Tracer.Start(telemetry.SpanQPSolve, telemetry.SpanIDFromContext(ctx))
		var stats solveStats
		res, err = s.dispatch(ctx, warm, cont, &stats)
		flushQPTelemetry(hooks, sp, warm, res, err, &stats)
	}
	s.hot = err == nil
	return res, err
}

func (s *Session) dispatch(ctx context.Context, warm *WarmStart, cont bool, stats *solveStats) (*Result, error) {
	if cont {
		return iterateIPM(ctx, s.st, s.opts, stats)
	}
	return runIPM(ctx, s.st, s.opts, warm, stats)
}

// PerturbH shifts inequality bound row i by delta, carrying the current
// slack along with it: h and s move together, so the primal residual
// Gx + s − h is unchanged and the iterate stays strictly feasible —
// unless the shift would push the slack to the boundary, where it is
// clamped to the same interior floor warm starts use (the next solve
// then re-centers that row). Only row i's z/s weight changes, which is
// exactly the sparse-Δw shape the rank-k tier consumes.
func (s *Session) PerturbH(i int, delta float64) {
	s.p.H[i] += delta
	if !s.hot {
		return
	}
	st := s.st
	si := st.s[i] + delta
	if floor := 1e-7 * (1 + abs(s.p.H[i])); si < floor {
		si = floor
	}
	st.s[i] = si
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Checkpoint saves the current (converged) iterate and bound vector as
// the baseline for ResolvePerturbedCtx queries, and arms the standing
// factorization at that iterate with one full refactorization. Arming is
// what makes the queries cheap: every query restores the baseline
// bitwise, so its KKT weights differ from the armed factor's in exactly
// the perturbed rows — the sparse diff the rank-k update tier consumes.
// Requires a successful prior solve.
func (s *Session) Checkpoint() error {
	if !s.hot {
		return fmt.Errorf("checkpoint without a converged iterate: %w", ErrBadProblem)
	}
	st := s.st
	s.ckX = append(s.ckX[:0], st.x[:st.n]...)
	s.ckS = append(s.ckS[:0], st.s[:st.m]...)
	s.ckZ = append(s.ckZ[:0], st.z[:st.m]...)
	s.ckY = append(s.ckY[:0], st.y[:st.q]...)
	s.ckH = append(s.ckH[:0], s.p.H...)
	s.ckSet = true
	if st.reuse != nil {
		// One factorization at the baseline weights; factorKKT records them
		// as the reuse state the first query will diff against.
		if err := st.factorKKT(s.opts.Regularize); err != nil {
			return err
		}
	}
	return nil
}

// ResolvePerturbedCtx answers a sensitivity query against the checkpoint:
// what does the optimum become when inequality bound row rows[k] shifts
// by deltas[k]? The baseline iterate and bounds are restored bitwise,
// the perturbations applied with the slack carried along (see PerturbH),
// and the iteration continued from there. Because the restore is exact,
// consecutive queries present the armed factorization with weight diffs
// confined to the perturbed rows, so (with RankK on) the first
// factorization of each query is a banded rank-k update rather than a
// refill+refactorize; queries that wander further — large perturbations
// needing several iterations — fall back to full factorizations
// automatically and re-arm for the next query only through Checkpoint.
func (s *Session) ResolvePerturbedCtx(ctx context.Context, rows []int, deltas []float64) (*Result, error) {
	if !s.ckSet {
		return nil, fmt.Errorf("resolve-perturbed without a checkpoint: %w", ErrBadProblem)
	}
	if len(rows) != len(deltas) {
		return nil, fmt.Errorf("%d rows, %d deltas: %w", len(rows), len(deltas), ErrBadProblem)
	}
	st := s.st
	copy(st.x[:st.n], s.ckX)
	copy(st.s[:st.m], s.ckS)
	copy(st.z[:st.m], s.ckZ)
	copy(st.y[:st.q], s.ckY)
	copy(s.p.H, s.ckH)
	s.hot = true
	for k, i := range rows {
		s.PerturbH(i, deltas[k])
	}
	return s.run(ctx, nil, true)
}

// SessionStats is the session's cumulative factorization accounting.
type SessionStats struct {
	// Factorizations counts full numeric refactorizations.
	Factorizations uint64
	// Reused counts factorizations skipped outright because the KKT
	// weights were bitwise unchanged.
	Reused uint64
	// RankKUpdates counts factorizations advanced by in-place rank-k
	// updates.
	RankKUpdates uint64
}

// Stats reports the session's factorization accounting (all zeros on
// equality-constrained sessions, where reuse is disabled).
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Factorizations: s.fr.fullTotal,
		Reused:         s.fr.reusedTotal,
		RankKUpdates:   s.fr.rankkTotal,
	}
}

// Problem returns the bound problem, whose C and H the caller may rewrite
// in place between solves.
func (s *Session) Problem() *Problem { return s.p }

package qp

import (
	"math"
	"math/rand"
	"testing"

	"dspp/internal/linalg"
)

// driftH nudges every bound by a small deterministic amount, the shape of
// capacity drift between best-response rounds.
func driftH(rng *rand.Rand, h linalg.Vector) {
	for i := range h {
		h[i] += rng.NormFloat64() * 0.01
		if h[i] < 0.5 {
			h[i] = 0.5
		}
	}
}

// TestSessionBitIdenticalToOneShot drives a session and the pooled
// one-shot path through the same sequence of drifting problems with
// chained warm starts, and demands bitwise agreement on every field of
// every result: the session's state reuse, shared symbolic analysis, and
// arena-backed results must not move a single ulp.
func TestSessionBitIdenticalToOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(2*n)
		base := randomFeasibleQP(rng, n, m)

		pSes := &Problem{Q: base.Q, C: base.C.Clone(), G: base.G, H: base.H.Clone()}
		pOne := &Problem{Q: base.Q, C: base.C.Clone(), G: base.G, H: base.H.Clone()}
		ses, err := NewSession(pSes, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}

		var warmSes, warmOne *WarmStart
		drift := rand.New(rand.NewSource(int64(trial)))
		for round := 0; round < 6; round++ {
			if round > 0 {
				save := drift.Int63()
				driftH(rand.New(rand.NewSource(save)), pSes.H)
				driftH(rand.New(rand.NewSource(save)), pOne.H)
			}
			rSes, errSes := ses.Solve(warmSes)
			rOne, errOne := SolveWarm(pOne, DefaultOptions(), warmOne)
			if (errSes == nil) != (errOne == nil) {
				t.Fatalf("trial %d round %d: session err %v, one-shot err %v", trial, round, errSes, errOne)
			}
			if errSes != nil {
				break
			}
			if rSes.Objective != rOne.Objective || rSes.Iterations != rOne.Iterations ||
				rSes.Gap != rOne.Gap || rSes.PrimalRes != rOne.PrimalRes || rSes.DualRes != rOne.DualRes {
				t.Fatalf("trial %d round %d: scalar drift: %+v vs %+v", trial, round, rSes, rOne)
			}
			for i := range rSes.X {
				if rSes.X[i] != rOne.X[i] {
					t.Fatalf("trial %d round %d: x[%d] %v != %v", trial, round, i, rSes.X[i], rOne.X[i])
				}
			}
			for i := range rSes.IneqDuals {
				if rSes.IneqDuals[i] != rOne.IneqDuals[i] {
					t.Fatalf("trial %d round %d: z[%d] %v != %v", trial, round, i, rSes.IneqDuals[i], rOne.IneqDuals[i])
				}
			}
			warmSes = &WarmStart{X: rSes.X, Z: rSes.IneqDuals}
			warmOne = &WarmStart{X: rOne.X, Z: rOne.IneqDuals}
		}
	}
}

// TestSessionResultDoubleBuffered pins the arena lifetime contract: a
// result stays intact through the next solve (it is the next warm start),
// and only the solve after that may overwrite its storage.
func TestSessionResultDoubleBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomFeasibleQP(rng, 6, 10)
	ses, err := NewSession(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ses.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	x1 := append([]float64(nil), r1.X...)
	p.H[0] += 0.25
	if _, err := ses.Solve(&WarmStart{X: r1.X, Z: r1.IneqDuals}); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if r1.X[i] != x1[i] {
			t.Fatalf("result clobbered by the very next solve at x[%d]", i)
		}
	}
}

// bandedSparseQP builds a strictly convex QP with a banded sparse G (row
// i covers columns [i, i+bw]), the structure whose KKT factorization the
// rank-k update tier can advance in place.
func bandedSparseQP(rng *rand.Rand, n, bw int) *Problem {
	q := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 0.5+rng.Float64()*2)
	}
	c := linalg.NewVector(n)
	for i := range c {
		c[i] = rng.NormFloat64() * 2
	}
	b := linalg.NewSparseBuilder(n, n, n*(bw+1))
	h := linalg.NewVector(n)
	for i := 0; i < n; i++ {
		b.StartRow()
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		for j := i; j <= hi; j++ {
			b.Add(j, rng.NormFloat64())
		}
		h[i] = 1 + rng.Float64()*3
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return &Problem{Q: q, C: c, G: g, H: h, KKTBandHint: bw + 1}
}

// TestSessionCheckpointQueries exercises the hot-continuation path end to
// end: a checkpointed session answers bound-perturbation queries through
// the rank-k update tier, each query's optimum agreeing with a from-scratch
// solve of the perturbed problem; repeating a query hits the exact-reuse
// tier; and re-checkpointing (weights unchanged) is an exact reuse too.
func TestSessionCheckpointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	n, bw := 80, 4
	p := bandedSparseQP(rng, n, bw)
	ses, err := NewSessionOpts(p, DefaultOptions(), SessionOptions{RankK: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ses.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Perturbing an inactive bound moves nothing (the query converges on
	// the spot, factorization-free); pick the most active constraint so
	// every query genuinely iterates.
	active := 0
	for i, z := range base.IneqDuals {
		if z > base.IneqDuals[active] {
			active = i
		}
	}
	if err := ses.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ses.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := ses.Stats().Reused; got < 1 {
		t.Fatalf("re-checkpoint with unchanged weights should hit the exact-reuse tier, reused=%d", got)
	}

	rows := []int{active}
	for trial := 0; trial < 5; trial++ {
		delta := []float64{-0.05 * float64(trial+1)}
		got, err := ses.ResolvePerturbedCtx(nil, rows, delta)
		if err != nil {
			t.Fatalf("query %d: %v", trial, err)
		}
		// Reference: an independent cold solve of the perturbed problem.
		ph := p.H.Clone()
		// The session restored p.H to the checkpoint before perturbing.
		ref := &Problem{Q: p.Q, C: p.C, G: p.G, H: ph, KKTBandHint: p.KKTBandHint}
		want, err := Solve(ref, DefaultOptions())
		if err != nil {
			t.Fatalf("query %d reference: %v", trial, err)
		}
		for i := range got.X {
			if d := math.Abs(got.X[i] - want.X[i]); d > 1e-5*(1+math.Abs(want.X[i])) {
				t.Fatalf("query %d: x[%d] %v vs reference %v", trial, i, got.X[i], want.X[i])
			}
		}
	}
	st := ses.Stats()
	if st.RankKUpdates < 1 {
		t.Fatalf("no query went through the rank-k tier: %+v", st)
	}

	// Identical consecutive queries: the second presents weights bitwise
	// equal to the factor the first left standing, when the first resolved
	// in a single factorization.
	if _, err := ses.ResolvePerturbedCtx(nil, rows, []float64{0.01}); err != nil {
		t.Fatal(err)
	}
	before := ses.Stats()
	r2, err := ses.ResolvePerturbedCtx(nil, rows, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	after := ses.Stats()
	if after.Reused <= before.Reused && after.RankKUpdates <= before.RankKUpdates {
		t.Fatalf("repeated query used neither reuse tier: before %+v after %+v", before, after)
	}
	_ = r2
}

// TestSessionSteadyStateZeroAllocs proves the arena claim: once warm, a
// session solve allocates nothing at all — no pooled state, no result
// storage, no telemetry.
func TestSessionSteadyStateZeroAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector bookkeeping allocates nondeterministically")
	}
	rng := rand.New(rand.NewSource(5))
	p := bandedSparseQP(rng, 40, 3)
	ses, err := NewSession(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	warm := &WarmStart{}
	for i := 0; i < 3; i++ {
		res, err := ses.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		warm.X, warm.Z = res.X, res.IneqDuals
	}
	allocs := testing.AllocsPerRun(20, func() {
		res, err := ses.Solve(warm)
		if err != nil {
			t.Fatal(err)
		}
		warm.X, warm.Z = res.X, res.IneqDuals
	})
	if allocs != 0 {
		t.Fatalf("steady-state session solve allocates %v times", allocs)
	}
}

// Package qp solves convex quadratic programs of the form
//
//	minimize   ½ xᵀQx + qᵀx
//	subject to G x ≤ h        (m inequality constraints)
//	           A x = b        (p equality constraints)
//
// with a primal–dual interior-point method (Mehrotra predictor–corrector).
// Q must be symmetric positive semidefinite; the solver adds a tiny static
// regularization so strictly convex behaviour is recovered numerically.
//
// The solver reports both the primal solution and the dual multipliers of
// the inequality constraints. The duals are consumed directly by the
// resource-competition game (paper Algorithm 2), which reallocates data
// center quotas proportionally to the capacity-constraint duals.
package qp

import (
	"errors"
	"fmt"

	"dspp/internal/linalg"
	"dspp/internal/telemetry"
)

// Sentinel errors reported by Solve.
var (
	// ErrMaxIterations means the iteration limit was reached before the
	// tolerances were met. The best iterate found is still returned.
	ErrMaxIterations = errors.New("qp: maximum iterations reached")
	// ErrNumerical means a linear solve inside the IPM failed
	// (typically a singular or indefinite KKT system).
	ErrNumerical = errors.New("qp: numerical failure")
	// ErrBadProblem means the problem dimensions are inconsistent.
	ErrBadProblem = errors.New("qp: inconsistent problem dimensions")
	// ErrDeadline means the context expired mid-solve with Options.Anytime
	// set and the best iterate seen so far was returned instead of nil. The
	// returned error wraps both this sentinel and the context's own error,
	// so errors.Is works against either; Result.Anytime carries the
	// iterate-quality metadata the caller needs to judge the partial plan.
	ErrDeadline = errors.New("qp: deadline reached, returning best iterate")
)

// Problem is a convex QP instance. G/h and A/b may be nil for problems
// without inequality or equality constraints respectively.
//
// G is any linalg.Operator: pass a dense *linalg.Matrix for general
// constraints, or a *linalg.SparseMatrix when the rows are sparse (the
// horizon QP's prefix-sum rows are) so KKT assembly runs nnz-proportional
// instead of O(m·n²).
type Problem struct {
	Q *linalg.Matrix  // n×n, symmetric PSD
	C linalg.Vector   // n, linear cost term q
	G linalg.Operator // m×n (dense or sparse) or nil
	H linalg.Vector   // m or nil
	A *linalg.Matrix  // p×n or nil
	B linalg.Vector   // p or nil

	// KKTBandHint, when positive, declares the KKT half-bandwidth as
	// KKTBandHint−1: the solver then skips the O(n²) Q-band scan it would
	// otherwise run per solve. Callers that solve the same problem shape
	// thousands of times (the horizon QP structure cache) compute it once
	// with KKTBandwidth and pass it here. Zero means "unknown, compute".
	// A hint narrower than the true band silently corrupts the KKT system;
	// it is the caller's contract that every nonzero of Q and of GᵀDG lies
	// within the declared band.
	KKTBandHint int
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	if p.Q == nil {
		return fmt.Errorf("nil Q: %w", ErrBadProblem)
	}
	n := p.Q.Rows()
	if p.Q.Cols() != n {
		return fmt.Errorf("Q is %dx%d: %w", p.Q.Rows(), p.Q.Cols(), ErrBadProblem)
	}
	if len(p.C) != n {
		return fmt.Errorf("c has %d entries, n=%d: %w", len(p.C), n, ErrBadProblem)
	}
	if (p.G == nil) != (p.H == nil) {
		return fmt.Errorf("G and h must both be set or both nil: %w", ErrBadProblem)
	}
	if p.G != nil {
		if p.G.Cols() != n {
			return fmt.Errorf("G has %d cols, n=%d: %w", p.G.Cols(), n, ErrBadProblem)
		}
		if p.G.Rows() != len(p.H) {
			return fmt.Errorf("G has %d rows, h has %d: %w", p.G.Rows(), len(p.H), ErrBadProblem)
		}
	}
	if (p.A == nil) != (p.B == nil) {
		return fmt.Errorf("A and b must both be set or both nil: %w", ErrBadProblem)
	}
	if p.A != nil {
		if p.A.Cols() != n {
			return fmt.Errorf("A has %d cols, n=%d: %w", p.A.Cols(), n, ErrBadProblem)
		}
		if p.A.Rows() != len(p.B) {
			return fmt.Errorf("A has %d rows, b has %d: %w", p.A.Rows(), len(p.B), ErrBadProblem)
		}
	}
	return nil
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.Q.Rows() }

// NumIneq returns the number of inequality constraints.
func (p *Problem) NumIneq() int {
	if p.G == nil {
		return 0
	}
	return p.G.Rows()
}

// NumEq returns the number of equality constraints.
func (p *Problem) NumEq() int {
	if p.A == nil {
		return 0
	}
	return p.A.Rows()
}

// Objective evaluates ½xᵀQx + qᵀx.
func (p *Problem) Objective(x linalg.Vector) (float64, error) {
	if len(x) != p.NumVars() {
		return 0, fmt.Errorf("objective at x of len %d, n=%d: %w", len(x), p.NumVars(), ErrBadProblem)
	}
	return p.objectiveScratch(x, linalg.NewVector(len(x))), nil
}

// objectiveScratch computes the objective using caller-provided scratch of
// length n, for per-iteration convergence checks without allocation.
func (p *Problem) objectiveScratch(x, scratch linalg.Vector) float64 {
	_ = p.Q.MulVec(x, scratch)
	var s float64
	for i, xi := range x {
		s += xi * (0.5*scratch[i] + p.C[i])
	}
	return s
}

// WarmStart seeds the interior-point iteration from a previous solution of
// a nearby problem — the same window re-solved under slightly different
// data (best-response rounds) or the previous MPC plan shifted by one
// period. Vectors are copied, not retained.
type WarmStart struct {
	// X is the primal guess (length n). Required.
	X linalg.Vector
	// Z holds inequality-dual guesses (length m). Optional; entries are
	// floored away from zero so the iteration stays interior.
	Z linalg.Vector
}

// Result holds the outcome of a Solve call.
type Result struct {
	X          linalg.Vector // primal solution
	IneqDuals  linalg.Vector // z ≥ 0, multipliers of Gx ≤ h (nil if m = 0)
	EqDuals    linalg.Vector // y, multipliers of Ax = b (nil if p = 0)
	Objective  float64       // objective value at X
	Iterations int           // IPM iterations performed
	Gap        float64       // final average complementarity gap sᵀz/m
	PrimalRes  float64       // final primal residual (∞-norm)
	DualRes    float64       // final dual residual (∞-norm)

	// Anytime is set only when the solve returned early with ErrDeadline:
	// the X/duals above are then the best-merit iterate snapshotted during
	// the interrupted run, and this block records how far that iterate got.
	// Nil on every complete solve.
	Anytime *AnytimeInfo
}

// AnytimeInfo is the iterate-quality metadata attached to a deadline
// (anytime) result: how many iterations the snapshot completed, the
// complementarity gap and residual norms at the snapshot, and the merit
// value (objective + infeasibility penalty) the best-so-far rule minimized.
type AnytimeInfo struct {
	Iterations int     // IPM iterations completed when the snapshot was taken
	Mu         float64 // average complementarity gap sᵀz/m at the snapshot
	PrimalRes  float64 // primal residual ∞-norm at the snapshot
	DualRes    float64 // dual residual ∞-norm at the snapshot
	Merit      float64 // objective + anytimeInfeasWeight·(primal+eq residual)
}

// Options tunes the interior-point solver. The zero value is usable via
// DefaultOptions.
type Options struct {
	MaxIterations int     // default 100
	Tolerance     float64 // residual/gap tolerance, default 1e-8
	StepScale     float64 // fraction-to-boundary, default 0.99
	Regularize    float64 // static diagonal regularization, default 1e-12

	// Anytime opts into deadline-bounded solving: each iteration the solver
	// snapshots the best-merit iterate seen so far, and when the context
	// expires mid-solve it returns that snapshot with an error wrapping
	// ErrDeadline (plus Result.Anytime metadata) instead of returning nil.
	// Off by default: the snapshot copies cost ~3 vector copies per
	// improving iteration and the enabled path grows three extra pooled
	// buffers, so the flag is reserved for budget-driven callers (the MPC
	// degradation ladder, the dsppd daemon).
	Anytime bool

	// Hooks, when non-nil, receives solver telemetry: per-solve counters
	// (iterations, factorizations, regularization bumps, corrector skips,
	// warm vs. cold starts, failure modes) and a qp_solve span per call.
	// Nil disables instrumentation entirely — the solve path then pays one
	// pointer test and keeps its exact allocation count (see
	// TestAllocsIndependentOfIterationCount).
	Hooks *telemetry.QPHooks
}

// DefaultOptions returns the recommended solver settings.
func DefaultOptions() Options {
	return Options{
		MaxIterations: 100,
		Tolerance:     1e-8,
		StepScale:     0.99,
		Regularize:    1e-12,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxIterations <= 0 {
		o.MaxIterations = d.MaxIterations
	}
	if o.Tolerance <= 0 {
		o.Tolerance = d.Tolerance
	}
	if o.StepScale <= 0 || o.StepScale >= 1 {
		o.StepScale = d.StepScale
	}
	if o.Regularize <= 0 {
		o.Regularize = d.Regularize
	}
	return o
}

package qp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dspp/internal/linalg"
)

// TestSolutionMatchesBruteForceX cross-checks the predictor–corrector
// solution vector (not just the objective) against the active-set brute
// force on randomized strictly convex problems: strict convexity makes the
// minimizer unique, so the two independent methods must agree within the
// solver tolerance.
func TestSolutionMatchesBruteForceX(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(5)
		p := randomFeasibleQP(rng, n, m)
		res, err := Solve(p, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bestX, _, ok := bruteForceQP(p)
		if !ok {
			continue
		}
		checked++
		for i := range res.X {
			if d := math.Abs(res.X[i] - bestX[i]); d > 1e-6*(1+math.Abs(bestX[i])) {
				t.Errorf("trial %d: x[%d] = %.12g, brute force %.12g (Δ=%.3g)",
					trial, i, res.X[i], bestX[i], d)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d/40 trials produced a brute-force reference", checked)
	}
}

// TestCorpusSolutionsIndependentOfWarmStart runs the randomized corpus
// twice — cold and warm-started from the cold solution — and demands the
// two solves land on the same point within 1e-6. The warm path exercises
// the predictor-corrector's skip-corrector and adaptive step-length
// branches that cold solves rarely reach.
func TestCorpusSolutionsIndependentOfWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(2*n)
		p := randomFeasibleQP(rng, n, m)
		cold, err := Solve(p, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		warm, err := SolveWarm(p, DefaultOptions(), &WarmStart{X: cold.X, Z: cold.IneqDuals})
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if warm.Iterations > cold.Iterations {
			t.Errorf("trial %d: warm solve took %d iters vs cold %d",
				trial, warm.Iterations, cold.Iterations)
		}
		for i := range cold.X {
			if d := math.Abs(cold.X[i] - warm.X[i]); d > 1e-6*(1+math.Abs(cold.X[i])) {
				t.Errorf("trial %d: warm x[%d] = %.12g vs cold %.12g",
					trial, i, warm.X[i], cold.X[i])
			}
		}
	}
}

// TestPoisonedWarmStartReturnsErrNumerical pins the error contract the
// degradation ladder depends on: when a warm start wrecks the iteration
// numerically (NaN primal guess), the predictor-corrector path must
// surface ErrNumerical so core.SolveHorizon retries from a cold start
// instead of propagating an opaque failure.
func TestPoisonedWarmStartReturnsErrNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randomFeasibleQP(rng, 6, 12)
	warm := &WarmStart{X: linalg.NewVector(6), Z: linalg.NewVector(12)}
	for i := range warm.X {
		warm.X[i] = math.NaN()
	}
	for i := range warm.Z {
		warm.Z[i] = 0.1
	}
	_, err := SolveWarm(p, DefaultOptions(), warm)
	if err == nil {
		t.Fatal("poisoned warm start solved cleanly")
	}
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("err = %v, want ErrNumerical", err)
	}
}

// TestAllocsIndependentOfIterationCount proves the zero-allocation
// property of the iteration loop: a solve that runs ~3× more interior-point
// iterations must allocate exactly as much as a short one, because all
// per-iteration storage (KKT band, factorization, residuals, directions)
// is preallocated by the symbolic phase and pooled across solves.
func TestAllocsIndependentOfIterationCount(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector bookkeeping allocates nondeterministically; exact counts are checked by the non-race run and the check.sh bench guard")
	}
	rng := rand.New(rand.NewSource(77))
	p := randomFeasibleQP(rng, 30, 60)
	loose := DefaultOptions()
	loose.Tolerance = 1e-2
	tight := DefaultOptions()
	tight.Tolerance = 1e-11

	resLoose, err := Solve(p, loose)
	if err != nil {
		t.Fatal(err)
	}
	resTight, err := Solve(p, tight)
	if err != nil {
		t.Fatal(err)
	}
	if resTight.Iterations < resLoose.Iterations+3 {
		t.Skipf("iteration spread too small to discriminate (%d vs %d)",
			resLoose.Iterations, resTight.Iterations)
	}

	allocsLoose := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, loose); err != nil {
			t.Fatal(err)
		}
	})
	allocsTight := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, tight); err != nil {
			t.Fatal(err)
		}
	})
	if allocsTight != allocsLoose {
		t.Errorf("allocations scale with iterations: %v allocs at %d iters vs %v at %d",
			allocsTight, resTight.Iterations, allocsLoose, resLoose.Iterations)
	}
}

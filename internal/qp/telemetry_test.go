package qp

import (
	"bytes"
	"math/rand"
	"testing"

	"dspp/internal/telemetry"
)

// TestTelemetryCounters drives warm and cold solves through an enabled
// hub and checks the counters agree with the returned results: the
// registry is an exact ledger, not a sampling.
func TestTelemetryCounters(t *testing.T) {
	var buf bytes.Buffer
	hub := telemetry.New(telemetry.WithTraceWriter(&buf))
	rng := rand.New(rand.NewSource(3))
	p := randomFeasibleQP(rng, 20, 40)

	opts := DefaultOptions()
	opts.Hooks = hub.QPHooks()
	cold, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := SolveWarm(p, opts, &WarmStart{X: cold.X, Z: cold.IneqDuals})
	if err != nil {
		t.Fatal(err)
	}

	snap := hub.Registry().Snapshot()
	if got := snap[telemetry.MetricQPSolves]; got != 2 {
		t.Fatalf("solves = %v, want 2", got)
	}
	if got := snap[telemetry.MetricQPWarmStarts]; got != 1 {
		t.Fatalf("warm starts = %v, want 1", got)
	}
	if got := snap[telemetry.MetricQPColdStarts]; got != 1 {
		t.Fatalf("cold starts = %v, want 1", got)
	}
	wantIters := float64(cold.Iterations + warmRes.Iterations)
	if got := snap[telemetry.MetricQPIterations]; got != wantIters {
		t.Fatalf("iterations = %v, want %v", got, wantIters)
	}
	// Every IPM iteration factorizes exactly once (the bump retry refills
	// the same factorization slot), so the two ledgers must agree.
	if got := snap[telemetry.MetricQPFactorizations]; got > wantIters || got <= 0 {
		t.Fatalf("factorizations = %v, want in (0, %v]", got, wantIters)
	}
	if got := snap[telemetry.MetricQPSolveIterations+"_count"]; got != 2 {
		t.Fatalf("iteration histogram count = %v, want 2", got)
	}
	if got := snap[telemetry.MetricQPNumericalFailures]; got != 0 {
		t.Fatalf("numerical failures = %v, want 0", got)
	}

	// The JSONL stream must carry one qp_solve span per solve whose
	// iteration attributes replay to the registry totals.
	events, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := telemetry.Summarize(events)
	if got := sum.Count(telemetry.SpanQPSolve); got != 2 {
		t.Fatalf("qp_solve spans = %d, want 2", got)
	}
	if got := sum.AttrSum(telemetry.SpanQPSolve, "iterations"); got != wantIters {
		t.Fatalf("span iterations = %v, registry %v", got, wantIters)
	}
}

// TestTelemetryMaxIterOutcome checks the failure-mode counters: a solve
// starved of iterations must land in dspp_qp_maxiter_total.
func TestTelemetryMaxIterOutcome(t *testing.T) {
	hub := telemetry.New()
	rng := rand.New(rand.NewSource(5))
	p := randomFeasibleQP(rng, 30, 60)
	opts := DefaultOptions()
	opts.MaxIterations = 1
	opts.Tolerance = 1e-12
	opts.Hooks = hub.QPHooks()
	if _, err := Solve(p, opts); err == nil {
		t.Skip("1-iteration solve unexpectedly converged")
	}
	if got := hub.Registry().Snapshot()[telemetry.MetricQPMaxIter]; got != 1 {
		t.Fatalf("maxiter counter = %v, want 1", got)
	}
}

// TestTelemetryDoesNotPerturbSolve pins that instrumentation is purely
// observational: identical problems solved with and without hooks walk
// the same iterates to the same answer.
func TestTelemetryDoesNotPerturbSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomFeasibleQP(rng, 25, 50)
	plain, err := Solve(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Hooks = telemetry.New().QPHooks()
	hooked, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Iterations != hooked.Iterations || plain.Objective != hooked.Objective {
		t.Fatalf("telemetry changed the solve: %d/%v vs %d/%v",
			plain.Iterations, plain.Objective, hooked.Iterations, hooked.Objective)
	}
	for i := range plain.X {
		if plain.X[i] != hooked.X[i] {
			t.Fatalf("x[%d] differs: %v vs %v", i, plain.X[i], hooked.X[i])
		}
	}
}

package daemon

import (
	"context"
	"time"

	"dspp/internal/core"
	"dspp/internal/decomp"
)

// controller abstracts the daemon's MPC engine: the monolithic
// core.Controller or (with Config.Decomp) the decomposed continental
// controller. *core.Controller satisfies it directly; decompCtrl adapts
// decomp.Controller's (applied, state, error) step signature and its
// different warm-start story.
type controller interface {
	StepCtx(ctx context.Context, demand, prices [][]float64) (*core.StepResult, error)
	State() core.State
	SetState(core.State) error
	SetStall(time.Duration)
	MissStreak() int
	RestoreMissStreak(int)
	WarmCapsule() *core.HorizonWarm
	RestoreWarm(*core.HorizonWarm)
}

// decompCtrl adapts decomp.Controller to the daemon's controller
// interface. The per-period budget becomes a context deadline — the
// decomposed controller's anytime contract applies the last complete
// coordination iterate when the deadline lands between rounds.
//
// Checkpoints are state-only for the decomposed path: per-shard warm
// starts, standing factorizations, and quota duals live inside the
// shard sessions and are rebuilt on restart, so a resumed run converges
// to the same trajectory but is not bit-identical to an uninterrupted
// one (the monolithic path keeps that stronger contract via its warm
// capsule; here WarmCapsule is nil and RestoreWarm a no-op).
type decompCtrl struct {
	ctrl   *decomp.Controller
	budget time.Duration
}

func (dc *decompCtrl) StepCtx(ctx context.Context, demand, prices [][]float64) (*core.StepResult, error) {
	if dc.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dc.budget)
		defer cancel()
	}
	applied, state, err := dc.ctrl.StepCtx(ctx, demand, prices)
	if err != nil {
		return nil, err
	}
	return &core.StepResult{
		Applied:     applied,
		NewState:    state,
		Degradation: dc.ctrl.LastDegradation(),
	}, nil
}

func (dc *decompCtrl) State() core.State            { return dc.ctrl.State() }
func (dc *decompCtrl) SetState(s core.State) error  { return dc.ctrl.SetState(s) }
func (dc *decompCtrl) SetStall(d time.Duration)     { dc.ctrl.SetStall(d) }
func (dc *decompCtrl) MissStreak() int              { return 0 }
func (dc *decompCtrl) RestoreMissStreak(int)        {}
func (dc *decompCtrl) WarmCapsule() *core.HorizonWarm { return nil }
func (dc *decompCtrl) RestoreWarm(*core.HorizonWarm) {}

// LastSolution exposes the coordinated solver's per-step incremental
// accounting (Daemon.LastSolution type-asserts for it).
func (dc *decompCtrl) LastSolution() *decomp.Solution { return dc.ctrl.LastSolution() }

// LastExplain implements core.Explainer by forwarding to the decomposed
// controller, so daemon attribution records carry the retained shard
// capacity duals and the quota split they were computed under.
func (dc *decompCtrl) LastExplain() core.Explain { return dc.ctrl.LastExplain() }

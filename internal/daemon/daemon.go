// Package daemon implements the dsppd placement daemon: a long-running
// control loop that ingests streaming demand observations (JSONL over
// stdin or HTTP POST), re-forecasts, and re-solves the placement QP every
// period under a wall-clock budget via the controller's deadline-bounded
// anytime ladder. Closing the loop against reality, it tracks two
// multiplicative correction factors online — realized/forecast demand and
// observed/modeled M/M/1 delay — and folds them into the next forecast.
// The daemon checkpoints after every completed period (atomic
// write-then-rename), so a SIGTERM at any point — including mid-solve —
// loses at most the in-flight period and a restart resumes with plans
// bit-identical to an uninterrupted run. A watchdog cold-restarts the
// controller when a solve wedges past its limit.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"dspp/internal/core"
	"dspp/internal/decomp"
	"dspp/internal/monitor"
	"dspp/internal/predict"
	"dspp/internal/qp"
	"dspp/internal/queue"
	"dspp/internal/telemetry"
)

// ErrBadConfig flags an invalid daemon configuration.
var ErrBadConfig = errors.New("daemon: invalid configuration")

// overrunGrace is the scheduling slack allowed past the period budget
// before a completed period counts as an overrun (matches the simulator's
// BudgetGrace).
const overrunGrace = 5 * time.Millisecond

// minCorrSamples is how many ratio observations a correction factor needs
// before it moves off 1: with fewer, the Welford mean is noise.
const minCorrSamples = 3

// Observation is one period's realized telemetry, decoded from a JSONL
// line on stdin or a POST /observe body. Demand has one entry per
// location (req/s realized this period), Prices one per data center.
// Delay, when present, is the observed mean response time per location
// (seconds); it drives the M/M/1 delay-model correction.
type Observation struct {
	Demand []float64 `json:"demand"`
	Prices []float64 `json:"prices"`
	Delay  []float64 `json:"delay,omitempty"`
}

// Report is the daemon's per-period output line (JSONL on Config.Out).
type Report struct {
	Period  int     `json:"period"`
	Mode    string  `json:"mode"`
	Cost    float64 `json:"cost"`
	Servers float64 `json:"servers"`
	Shed    float64 `json:"shed,omitempty"`
	WallMS  float64 `json:"wall_ms"`
	Overrun bool    `json:"overrun,omitempty"`
	// DemandCorr and DelayCorr are the correction factors applied to this
	// period's forecast (1 until enough samples accumulate).
	DemandCorr float64 `json:"demand_corr"`
	DelayCorr  float64 `json:"delay_corr"`
	// Watchdog marks a period whose solve wedged past the watchdog limit
	// and was cold-restarted (the allocation is held).
	Watchdog bool `json:"watchdog,omitempty"`
	// Incremental-coordination accounting, populated on decomposed daemons
	// (Config.Decomp): the period's shard-solve economics under dirty-shard
	// scheduling and cross-period carry. A settled quiet loop shows
	// held_shards = shard count and zero solves.
	Rounds        int `json:"rounds,omitempty"`
	ShardSolves   int `json:"shard_solves,omitempty"`
	SkippedShards int `json:"skipped_shards,omitempty"`
	HeldShards    int `json:"held_shards,omitempty"`
	FastResolves  int `json:"fast_resolves,omitempty"`
	// Err reports a malformed observation that was skipped; every other
	// field is zero on such lines.
	Err string `json:"err,omitempty"`
}

// Config parameterizes a Daemon.
type Config struct {
	// Instance is the placement problem (required).
	Instance *core.Instance
	// Horizon is the MPC prediction window W ≥ 1.
	Horizon int
	// Budget is the per-period wall-clock allowance; positive values
	// enable the controller's deadline-bounded anytime ladder. Zero
	// disables budgeting (solves run to convergence).
	Budget time.Duration
	// Watchdog is the wedged-solve limit: a period whose solve exceeds it
	// is abandoned, the controller rebuilt from the last applied state.
	// Defaults to 4×Budget when budgeted; zero with no budget disables it.
	Watchdog time.Duration
	// Predictor forecasts each location's demand series (default
	// predict.Persistence).
	Predictor predict.Predictor
	// History bounds the retained demand/price history (default 96).
	History int
	// Mu is the per-server service rate for the M/M/1 delay model used by
	// the delay correction (default 150, the repo's standard setting).
	Mu float64
	// CheckpointPath, when set, is where the daemon persists its state
	// after every completed period (atomically); on startup an existing
	// checkpoint is restored.
	CheckpointPath string
	// QP overrides the interior-point options (nil = defaults).
	QP *qp.Options
	// Decomp, when non-nil, runs the control loop on the decomposed
	// continental controller (sharded region QPs with incremental
	// dirty-shard coordination) instead of the monolithic one. The
	// options are passed through to decomp.NewController; Telemetry and
	// QP overrides from this Config are folded in. Checkpoints become
	// state-only on this path (see decompCtrl).
	Decomp *decomp.Options
	// InitialState is the starting allocation (nil = zeros). A restored
	// checkpoint takes precedence.
	InitialState core.State
	// Telemetry, when non-nil, receives the daemon counters/gauges, the
	// controller spans, and backs the /metrics endpoint.
	Telemetry *telemetry.Hub
	// Addr, when set, serves POST /observe, /healthz and /metrics on this
	// address (port 0 picks a free port; see Daemon.Addr).
	Addr string
	// Out receives one Report JSON line per period (nil discards).
	Out io.Writer
}

// Daemon is the running control loop. Build with New, drive with Run.
type Daemon struct {
	cfg  Config
	inst *core.Instance
	pred predict.Predictor

	mu   sync.Mutex // guards everything below (Run loop vs HTTP handlers)
	ctrl controller
	// period indexes the next period to run (== completed periods).
	period     int
	demandHist [][]float64
	priceHist  [][]float64
	// demandCorr accumulates realized/forecast demand ratios; delayCorr
	// accumulates observed/modeled delay ratios.
	demandCorr monitor.Welford
	delayCorr  monitor.Welford
	// lastForecast is the previous period's raw (uncorrected) one-step
	// demand forecast, the denominator of the next demand ratio.
	lastForecast  []float64
	lastWall      time.Duration
	watchdogTrips int
	restored      bool

	obsCh    chan Observation
	out      *reportWriter
	httpAddr string

	mPeriods, mObs, mCkpt, mWatchdog, mOverruns *telemetry.Counter
	mModes                                      *telemetry.CounterVec
	gDemandCorr, gDelayCorr                     *telemetry.Gauge
	hPeriodSeconds, hBudgetUtil                 *telemetry.Histogram
	sink                                        *telemetry.AttributionSink
}

// New validates the configuration, builds the controller, and restores
// the checkpoint at Config.CheckpointPath if one exists.
func New(cfg Config) (*Daemon, error) {
	if cfg.Instance == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", cfg.Horizon, ErrBadConfig)
	}
	if cfg.Budget < 0 || cfg.Watchdog < 0 {
		return nil, fmt.Errorf("negative budget or watchdog: %w", ErrBadConfig)
	}
	if cfg.Watchdog == 0 && cfg.Budget > 0 {
		cfg.Watchdog = 4 * cfg.Budget
	}
	if cfg.History <= 0 {
		cfg.History = 96
	}
	if cfg.Mu <= 0 {
		cfg.Mu = 150
	}
	d := &Daemon{
		cfg:   cfg,
		inst:  cfg.Instance,
		pred:  cfg.Predictor,
		obsCh: make(chan Observation, 64),
	}
	if d.pred == nil {
		d.pred = predict.Persistence{}
	}
	if cfg.Out != nil {
		d.out = &reportWriter{enc: json.NewEncoder(cfg.Out)}
	}
	if h := cfg.Telemetry; h != nil {
		reg := h.Registry()
		d.mPeriods = reg.Counter(telemetry.MetricDaemonPeriods)
		d.mObs = reg.Counter(telemetry.MetricDaemonObservations)
		d.mCkpt = reg.Counter(telemetry.MetricDaemonCheckpoints)
		d.mWatchdog = reg.Counter(telemetry.MetricDaemonWatchdog)
		d.mOverruns = reg.Counter(telemetry.MetricBudgetOverruns)
		d.mModes = reg.CounterVec(telemetry.MetricDegradationSteps, "mode")
		d.gDemandCorr = reg.Gauge(telemetry.MetricDaemonDemandCorr)
		d.gDelayCorr = reg.Gauge(telemetry.MetricDaemonDelayCorr)
		d.hPeriodSeconds = reg.Histogram(telemetry.MetricDaemonPeriodSeconds, telemetry.PeriodSecondsBuckets)
		d.hBudgetUtil = reg.Histogram(telemetry.MetricBudgetUtilization, telemetry.BudgetUtilizationBuckets)
		d.sink = h.Attribution()
	}
	ctrl, err := d.newController(cfg.InitialState)
	if err != nil {
		return nil, err
	}
	d.ctrl = ctrl
	if cfg.CheckpointPath != "" {
		restored, err := d.loadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		d.restored = restored
	}
	return d, nil
}

// newController builds a fresh controller from the given state (nil =
// zeros); the watchdog uses it to abandon a wedged solve.
func (d *Daemon) newController(state core.State) (controller, error) {
	if d.cfg.Decomp != nil {
		opt := *d.cfg.Decomp
		if opt.Telemetry == nil {
			opt.Telemetry = d.cfg.Telemetry
		}
		if d.cfg.QP != nil {
			opt.QP = *d.cfg.QP
		}
		var copts []decomp.ControllerOption
		if state != nil {
			copts = append(copts, decomp.WithInitialState(state))
		}
		ctrl, err := decomp.NewController(d.inst, d.cfg.Horizon, opt, copts...)
		if err != nil {
			return nil, err
		}
		return &decompCtrl{ctrl: ctrl, budget: d.cfg.Budget}, nil
	}
	opts := []core.ControllerOption{core.WithTelemetry(d.cfg.Telemetry)}
	if d.cfg.QP != nil {
		opts = append(opts, core.WithQPOptions(*d.cfg.QP))
	}
	if state != nil {
		opts = append(opts, core.WithInitialState(state))
	}
	if d.cfg.Budget > 0 {
		opts = append(opts, core.WithBudget(d.cfg.Budget))
	}
	return core.NewController(d.inst, d.cfg.Horizon, opts...)
}

// Restored reports whether New resumed from an existing checkpoint.
func (d *Daemon) Restored() bool { return d.restored }

// Period returns the number of completed control periods.
func (d *Daemon) Period() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.period
}

// State returns a copy of the current allocation.
func (d *Daemon) State() core.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ctrl.State()
}

// WatchdogTrips returns how many solves the watchdog has abandoned.
func (d *Daemon) WatchdogTrips() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.watchdogTrips
}

// LastSolution returns the decomposed solver's previous-period
// incremental accounting — rounds, shard solves, skipped shard-rounds,
// rank-k fast resolves, held shards. Nil for a monolithic daemon,
// before the first period, or when the period fell back monolithically.
func (d *Daemon) LastSolution() *decomp.Solution {
	d.mu.Lock()
	defer d.mu.Unlock()
	if dc, ok := d.ctrl.(interface{ LastSolution() *decomp.Solution }); ok {
		return dc.LastSolution()
	}
	return nil
}

// SetStall injects artificial solver latency into every subsequent
// period, exactly like the simulator's `stall` fault — the hook tests and
// demos use to exercise the anytime ladder and the watchdog.
func (d *Daemon) SetStall(dur time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctrl.SetStall(dur)
}

// Run drives the control loop until ctx is cancelled (SIGTERM via
// signal.NotifyContext) or, when no HTTP address is configured, until r
// is drained. r streams one JSON Observation per line; nil is allowed
// when Config.Addr serves observations instead. Cancellation is a clean
// shutdown (nil error): the last completed period's checkpoint is already
// on disk, and an in-flight solve is abandoned, not awaited.
func (d *Daemon) Run(ctx context.Context, r io.Reader) error {
	var stopHTTP func() error
	if d.cfg.Addr != "" {
		addr, stop, err := d.startHTTP()
		if err != nil {
			return err
		}
		d.mu.Lock()
		d.httpAddr = addr
		d.mu.Unlock()
		stopHTTP = stop
		defer func() {
			if stopHTTP != nil {
				stopHTTP() //nolint:errcheck // shutdown path
			}
		}()
	}
	eof := make(chan struct{})
	if r != nil {
		go d.readObservations(ctx, r, eof)
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case obs := <-d.obsCh:
			if err := d.runPeriod(ctx, obs); err != nil {
				if ctx.Err() != nil {
					return nil // interrupted mid-period: clean shutdown
				}
				return err
			}
		case <-eof:
			eof = nil // reader drained; below decides whether to stop
		}
		// Without an HTTP ingest path, a drained reader with an empty
		// queue means no observation can ever arrive again.
		if eof == nil && d.cfg.Addr == "" && len(d.obsCh) == 0 {
			return nil
		}
	}
}

// readObservations feeds r's JSONL lines into the observation channel.
// Malformed lines become error Reports rather than stopping the stream.
func (d *Daemon) readObservations(ctx context.Context, r io.Reader, eof chan<- struct{}) {
	defer close(eof)
	dec := newLineDecoder(r)
	for {
		obs, err := dec.next()
		if err == io.EOF {
			return
		}
		if err != nil {
			d.report(Report{Err: err.Error()})
			continue
		}
		select {
		case d.obsCh <- obs:
		case <-ctx.Done():
			return
		}
	}
}

// runPeriod executes one control period for the observation: update the
// correction factors, re-forecast, solve under budget (with the watchdog
// armed), apply, report, checkpoint.
func (d *Daemon) runPeriod(ctx context.Context, obs Observation) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mObs != nil {
		d.mObs.Inc()
	}
	if err := d.checkObservation(obs); err != nil {
		d.report(Report{Period: d.period, Err: err.Error()})
		return nil // a malformed observation is skipped, not fatal
	}
	start := time.Now()

	d.updateCorrections(obs)
	d.pushHistory(obs)
	demandCorr, delayCorr := d.corrFactors()
	demand, raw0 := d.forecastDemand(demandCorr * delayCorr)
	d.lastForecast = raw0
	prices := d.forecastPrices(obs.Prices)

	// Snapshot the pre-step allocation for the churn metric before the
	// solve replaces it (ctrl.State returns a copy).
	var prev core.State
	if d.sink != nil {
		prev = d.ctrl.State()
	}

	res, tripped, err := d.stepWatchdog(ctx, demand, prices)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	d.lastWall = wall
	d.hPeriodSeconds.Observe(wall.Seconds())
	if d.cfg.Budget > 0 {
		d.hBudgetUtil.Observe(float64(wall) / float64(d.cfg.Budget))
	}

	rep := Report{
		Period:     d.period,
		WallMS:     float64(wall) / float64(time.Millisecond),
		Overrun:    d.cfg.Budget > 0 && wall > d.cfg.Budget+overrunGrace,
		DemandCorr: demandCorr,
		DelayCorr:  delayCorr,
		Watchdog:   tripped,
	}
	if tripped {
		rep.Mode = "watchdog-restart"
		rep.Servers = sumState(d.ctrl.State())
	} else {
		deg := res.Degradation
		rep.Mode = deg.Mode.String()
		rep.Shed = deg.ShedDemand
		rep.Servers = sumState(res.NewState)
		cost, cerr := d.inst.PeriodCost(res.NewState, res.Applied, obs.Prices)
		if cerr == nil {
			rep.Cost = cost.Total()
			if d.sink != nil {
				var explain core.Explain
				if ex, ok := d.ctrl.(core.Explainer); ok {
					explain = ex.LastExplain()
				}
				if a, aerr := core.NewAttribution(d.inst, d.period, res.NewState, res.Applied,
					prev, obs.Prices, cost, deg, wall, explain); aerr == nil {
					d.sink.Record(a)
				}
			}
		}
		if d.mModes != nil {
			d.mModes.With(deg.Mode.String()).Inc()
		}
		if dc, ok := d.ctrl.(interface{ LastSolution() *decomp.Solution }); ok {
			if sol := dc.LastSolution(); sol != nil {
				rep.Rounds = sol.Rounds
				rep.ShardSolves = sol.ShardSolves
				rep.SkippedShards = sol.SkippedShards
				rep.HeldShards = sol.HeldShards
				rep.FastResolves = sol.FastResolves
			}
		}
	}
	if d.mPeriods != nil {
		d.mPeriods.Inc()
		if rep.Overrun {
			d.mOverruns.Inc()
		}
		d.gDemandCorr.Set(demandCorr)
		d.gDelayCorr.Set(delayCorr)
	}
	d.period++
	d.report(rep)
	if d.cfg.CheckpointPath != "" {
		if err := d.saveCheckpoint(d.cfg.CheckpointPath); err != nil {
			return err
		}
	}
	return nil
}

// stepWatchdog runs one controller step with the watchdog armed: a solve
// that exceeds the limit is cancelled and abandoned — the controller is
// rebuilt from the last applied state (the zombie goroutine keeps the old
// one, so a late return cannot corrupt the fresh controller) and the
// period holds its allocation.
func (d *Daemon) stepWatchdog(ctx context.Context, demand, prices [][]float64) (*core.StepResult, bool, error) {
	wd := d.cfg.Watchdog
	if wd <= 0 {
		res, err := d.ctrl.StepCtx(ctx, demand, prices)
		return res, false, err
	}
	type outcome struct {
		res *core.StepResult
		err error
	}
	stepCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 1)
	old := d.ctrl
	// Snapshot the pre-step state before the solve starts: after a trip
	// the zombie goroutine still owns `old`, so nothing may touch it.
	prev := old.State()
	go func() {
		res, err := old.StepCtx(stepCtx, demand, prices)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(wd)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, false, o.err
	case <-timer.C:
		cancel() // best effort: a cooperative solve unwinds within one iteration
		fresh, err := d.newController(prev)
		if err != nil {
			return nil, true, err
		}
		d.ctrl = fresh
		d.watchdogTrips++
		if d.mWatchdog != nil {
			d.mWatchdog.Inc()
		}
		return nil, true, nil
	}
}

// checkObservation validates dimensions and values; the QP would reject
// them anyway, but a daemon should name the bad line, not fail a solve.
func (d *Daemon) checkObservation(obs Observation) error {
	if len(obs.Demand) != d.inst.NumLocations() {
		return fmt.Errorf("demand has %d entries, want %d", len(obs.Demand), d.inst.NumLocations())
	}
	if len(obs.Prices) != d.inst.NumDataCenters() {
		return fmt.Errorf("prices has %d entries, want %d", len(obs.Prices), d.inst.NumDataCenters())
	}
	if obs.Delay != nil && len(obs.Delay) != d.inst.NumLocations() {
		return fmt.Errorf("delay has %d entries, want %d", len(obs.Delay), d.inst.NumLocations())
	}
	for i, v := range obs.Demand {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("demand[%d] = %g", i, v)
		}
	}
	for i, v := range obs.Prices {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("prices[%d] = %g", i, v)
		}
	}
	for i, v := range obs.Delay {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("delay[%d] = %g", i, v)
		}
	}
	return nil
}

// updateCorrections folds one realized observation into the two error
// trackers. The demand ratio compares total realized demand against the
// previous period's raw one-step forecast; the delay ratio compares the
// observed per-location delay against the M/M/1 model's prediction for
// the allocation that served the period.
func (d *Daemon) updateCorrections(obs Observation) {
	if d.lastForecast != nil {
		var fc, re float64
		for i, f := range d.lastForecast {
			fc += f
			re += obs.Demand[i]
		}
		if fc > 0 {
			d.demandCorr.Add(re / fc)
		}
	}
	if obs.Delay == nil {
		return
	}
	state := d.ctrl.State()
	var ratioSum float64
	var n int
	for v, observed := range obs.Delay {
		if observed <= 0 || obs.Demand[v] <= 0 {
			continue
		}
		var servers float64
		for l := range state {
			servers += state[l][v]
		}
		modeled, err := queue.MM1Delay(obs.Demand[v], d.cfg.Mu*servers)
		if err != nil || modeled <= 0 {
			continue // unstable or empty allocation: the model has no prediction
		}
		ratioSum += observed / modeled
		n++
	}
	if n > 0 {
		d.delayCorr.Add(ratioSum / float64(n))
	}
}

// corrFactors returns the clamped multiplicative corrections (1 until
// each tracker has minCorrSamples ratios). Underestimating delay means
// each server is effectively slower than modeled, so demand is scaled up
// by the same factor — equivalent to scaling the SLA coefficient, which
// is frozen inside the cached QP structure.
func (d *Daemon) corrFactors() (demand, delay float64) {
	return clampCorr(&d.demandCorr, 0.25, 4), clampCorr(&d.delayCorr, 0.5, 2)
}

func clampCorr(w *monitor.Welford, lo, hi float64) float64 {
	if w.Count() < minCorrSamples {
		return 1
	}
	m := w.Mean()
	if math.IsNaN(m) || m <= 0 {
		return 1
	}
	return math.Min(hi, math.Max(lo, m))
}

// pushHistory appends the observation, trimming to the history bound.
func (d *Daemon) pushHistory(obs Observation) {
	d.demandHist = append(d.demandHist, append([]float64(nil), obs.Demand...))
	d.priceHist = append(d.priceHist, append([]float64(nil), obs.Prices...))
	if n := len(d.demandHist); n > d.cfg.History {
		d.demandHist = append(d.demandHist[:0], d.demandHist[n-d.cfg.History:]...)
		d.priceHist = append(d.priceHist[:0], d.priceHist[n-d.cfg.History:]...)
	}
}

// forecastDemand runs the predictor per location over the retained
// history, applies the correction factor, and also returns the raw
// (uncorrected) first-step forecast — the denominator of the next demand
// ratio. A predictor without enough history falls back to persistence.
func (d *Daemon) forecastDemand(corr float64) (fc [][]float64, raw0 []float64) {
	w, v := d.cfg.Horizon, d.inst.NumLocations()
	fc = make([][]float64, w)
	for t := range fc {
		fc[t] = make([]float64, v)
	}
	raw0 = make([]float64, v)
	series := make([]float64, 0, len(d.demandHist))
	for j := 0; j < v; j++ {
		series = series[:0]
		for _, row := range d.demandHist {
			series = append(series, row[j])
		}
		col, err := d.pred.Forecast(series, w)
		if err != nil || len(col) != w {
			last := series[len(series)-1]
			col = make([]float64, w)
			for t := range col {
				col[t] = last
			}
		}
		raw0[j] = col[0]
		for t := 0; t < w; t++ {
			f := col[t] * corr
			if f < 0 || math.IsNaN(f) {
				f = 0
			}
			fc[t][j] = f
		}
	}
	return fc, raw0
}

// forecastPrices repeats the latest observed prices across the horizon:
// the repo's predictors model demand seasonality, and persistence is the
// standard baseline for slowly varying electricity prices.
func (d *Daemon) forecastPrices(latest []float64) [][]float64 {
	w := d.cfg.Horizon
	out := make([][]float64, w)
	for t := range out {
		out[t] = append([]float64(nil), latest...)
	}
	return out
}

func sumState(s core.State) float64 {
	var total float64
	for _, row := range s {
		for _, x := range row {
			total += x
		}
	}
	return total
}

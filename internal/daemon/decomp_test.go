package daemon

import (
	"context"
	"testing"

	"dspp/internal/decomp"
)

// TestDaemonDecompSteadyState drives a decomposed daemon through 100
// quiet periods (identical observations, so the persistence forecast is
// constant) and pins the incremental-coordination contract at the daemon
// level: dirty-shard scheduling must actually skip shard-rounds, and
// once the MPC trajectory settles the loop must re-solve under half the
// fleet per period — the steady-state economics the dsppd deployment
// story is built on.
func TestDaemonDecompSteadyState(t *testing.T) {
	scn, err := decomp.NewScenario(decomp.ScenarioConfig{
		Locations: 120, DCSites: 12, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := decomp.NewPartition(scn.Inst, 30)
	if err != nil {
		t.Fatal(err)
	}
	shards := len(part.Shards)
	if shards < 2 {
		t.Fatalf("scenario partitioned into %d shards, need ≥ 2", shards)
	}
	d, err := New(Config{
		Instance: scn.Inst,
		Horizon:  2,
		Decomp: &decomp.Options{
			MaxShardSize: 30,
			// Force coordination regardless of the cost model: this test is
			// about the incremental loop, not the bypass.
			BypassRatio:    -1,
			RankK:          true,
			PeriodCarryTol: 1e-3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{Demand: scn.Demand[0], Prices: scn.Prices[0]}
	const periods = 100
	var skipped, tailSolves, tailSlots, heldPeriods int
	for k := 0; k < periods; k++ {
		if err := d.runPeriod(context.Background(), obs); err != nil {
			t.Fatalf("period %d: %v", k, err)
		}
		sol := d.LastSolution()
		if sol == nil {
			t.Fatalf("period %d: daemon reports no coordinated solution", k)
		}
		skipped += sol.SkippedShards + sol.HeldShards
		if k >= periods/2 {
			tailSolves += sol.ShardSolves
			tailSlots += shards
			if sol.HeldShards == shards {
				heldPeriods++
			}
		}
	}
	if got := d.Period(); got != periods {
		t.Fatalf("daemon completed %d periods, want %d", got, periods)
	}
	if skipped == 0 {
		t.Fatal("100 quiet periods never skipped or held a shard")
	}
	frac := float64(tailSolves) / float64(tailSlots)
	if frac >= 0.5 {
		t.Fatalf("settled quiet loop re-solves %.0f%% of shard-slots per period, want < 50%%", 100*frac)
	}
	if heldPeriods == 0 {
		t.Fatal("cross-period carry never held a full quiet period")
	}
}

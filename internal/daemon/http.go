package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"dspp/internal/telemetry"
)

// Addr returns the HTTP listen address once Run has started the server
// (useful with Config.Addr port 0; empty until then).
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.httpAddr
}

// startHTTP serves the daemon's ops surface: POST /observe enqueues one
// JSON observation, /healthz reports liveness and loop progress,
// /metrics exposes the telemetry registry in Prometheus text format, and
// /statusz serves the per-period cost-attribution ring as JSON.
func (d *Daemon) startHTTP() (addr string, stop func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/observe", d.handleObserve)
	mux.HandleFunc("/healthz", d.handleHealthz)
	if d.cfg.Telemetry != nil {
		mux.Handle("/metrics", telemetry.MetricsHandler(d.cfg.Telemetry.Registry()))
		mux.Handle("/statusz", telemetry.StatuszHandler(d.cfg.Telemetry))
	}
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return "", nil, fmt.Errorf("daemon: listen %s: %w", d.cfg.Addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}, nil
}

// handleObserve accepts one observation per POST. A full queue answers
// 503 so a fast producer gets backpressure instead of silent drops.
func (d *Daemon) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var obs Observation
	if err := json.NewDecoder(r.Body).Decode(&obs); err != nil {
		http.Error(w, fmt.Sprintf("bad observation: %v", err), http.StatusBadRequest)
		return
	}
	select {
	case d.obsCh <- obs:
		w.WriteHeader(http.StatusAccepted)
	default:
		http.Error(w, "observation queue full", http.StatusServiceUnavailable)
	}
}

// handleHealthz reports loop progress as JSON; any response at all means
// the process is alive, the body says whether the loop is moving.
func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	status := struct {
		Status        string  `json:"status"`
		Period        int     `json:"period"`
		LastWallMS    float64 `json:"last_wall_ms"`
		WatchdogTrips int     `json:"watchdog_trips"`
		QueueDepth    int     `json:"queue_depth"`
	}{
		Status:        "ok",
		Period:        d.period,
		LastWallMS:    float64(d.lastWall) / float64(time.Millisecond),
		WatchdogTrips: d.watchdogTrips,
		QueueDepth:    len(d.obsCh),
	}
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(status) //nolint:errcheck // best-effort health body
}

package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dspp/internal/core"
	"dspp/internal/decomp"
	"dspp/internal/telemetry"
)

// testInstance is a small 2-DC × 3-location problem every solve finishes
// in well under a millisecond on.
func testInstance(t *testing.T) *core.Instance {
	t.Helper()
	inst, err := core.NewInstance(core.Config{
		SLA:             [][]float64{{1, 1, 1}, {1, 1, 1}},
		ReconfigWeights: []float64{1e-3, 2e-3},
		Capacities:      []float64{500, 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// testObs builds a deterministic observation for period k, with optional
// per-location delays.
func testObs(k int, withDelay bool) Observation {
	obs := Observation{
		Demand: []float64{
			40 + 5*float64(k%7),
			30 + 3*float64((k*2)%5),
			20 + 2*float64((k*3)%4),
		},
		Prices: []float64{0.1 + 0.01*float64(k%3), 0.12 + 0.005*float64(k%5)},
	}
	if withDelay {
		obs.Delay = []float64{0.012, 0.010, 0.011}
	}
	return obs
}

// feedLines renders observations [from, to) as a JSONL stream.
func feedLines(t *testing.T, from, to int, withDelay bool) string {
	t.Helper()
	var sb strings.Builder
	for k := from; k < to; k++ {
		line, err := json.Marshal(testObs(k, withDelay))
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func decodeReports(t *testing.T, buf *bytes.Buffer) []Report {
	t.Helper()
	var reps []Report
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var r Report
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad report line %q: %v", sc.Text(), err)
		}
		reps = append(reps, r)
	}
	return reps
}

// TestDaemonRunsFromReader: a drained JSONL stream runs one period per
// observation, reports each, skips a malformed line without dying, and
// moves the correction factors once enough ratios accumulate.
func TestDaemonRunsFromReader(t *testing.T) {
	var out bytes.Buffer
	d, err := New(Config{Instance: testInstance(t), Horizon: 4, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	feed := feedLines(t, 0, 3, true) + "{not json}\n" + feedLines(t, 3, 8, true)
	if err := d.Run(context.Background(), strings.NewReader(feed)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if d.Period() != 8 {
		t.Fatalf("completed %d periods, want 8", d.Period())
	}
	reps := decodeReports(t, &out)
	var good, bad int
	for _, r := range reps {
		if r.Err != "" {
			bad++
			continue
		}
		good++
		if r.Mode != "none" {
			t.Errorf("period %d degraded: %s", r.Period, r.Mode)
		}
		if r.Cost <= 0 {
			t.Errorf("period %d cost %g", r.Period, r.Cost)
		}
		if r.Servers <= 0 {
			t.Errorf("period %d servers %g", r.Period, r.Servers)
		}
	}
	if good != 8 || bad != 1 {
		t.Fatalf("reports: %d good, %d bad, want 8/1", good, bad)
	}
	last := reps[len(reps)-1]
	if last.DemandCorr == 0 || last.DelayCorr == 0 {
		t.Errorf("correction factors missing: %+v", last)
	}
	if err := testInstance(t).CheckState(d.State()); err != nil {
		t.Errorf("final state invalid: %v", err)
	}
}

// TestDaemonCheckpointResumeIdentical is the resume contract: a daemon
// stopped after period 5 and restarted from its checkpoint must produce
// reports for periods 5.. that match an uninterrupted run exactly —
// same modes, bit-identical costs, server counts, and corrections.
func TestDaemonCheckpointResumeIdentical(t *testing.T) {
	inst := testInstance(t)
	dir := t.TempDir()
	const total, cut = 12, 5

	run := func(ckpt string, from, to int) []Report {
		var out bytes.Buffer
		d, err := New(Config{
			Instance: inst, Horizon: 4,
			Budget:         200 * time.Millisecond,
			CheckpointPath: ckpt,
			Out:            &out,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(context.Background(), strings.NewReader(feedLines(t, from, to, true))); err != nil {
			t.Fatalf("run [%d,%d): %v", from, to, err)
		}
		return decodeReports(t, &out)
	}

	full := run(filepath.Join(dir, "full.json"), 0, total)
	ckpt := filepath.Join(dir, "split.json")
	_ = run(ckpt, 0, cut)

	// The resumed daemon must notice and restore the checkpoint.
	var out bytes.Buffer
	d, err := New(Config{
		Instance: inst, Horizon: 4,
		Budget:         200 * time.Millisecond,
		CheckpointPath: ckpt,
		Out:            &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Restored() {
		t.Fatal("daemon did not restore the checkpoint")
	}
	if d.Period() != cut {
		t.Fatalf("restored at period %d, want %d", d.Period(), cut)
	}
	if err := d.Run(context.Background(), strings.NewReader(feedLines(t, cut, total, true))); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	resumed := decodeReports(t, &out)

	if len(full) != total || len(resumed) != total-cut {
		t.Fatalf("report counts: full %d, resumed %d", len(full), len(resumed))
	}
	for i, r := range resumed {
		want := full[cut+i]
		if r.Period != want.Period || r.Mode != want.Mode {
			t.Fatalf("period %d: mode %q vs %q", r.Period, r.Mode, want.Mode)
		}
		if r.Cost != want.Cost {
			t.Errorf("period %d: cost %v != %v (must be bit-identical)", r.Period, r.Cost, want.Cost)
		}
		if r.Servers != want.Servers {
			t.Errorf("period %d: servers %v != %v", r.Period, r.Servers, want.Servers)
		}
		if r.DemandCorr != want.DemandCorr || r.DelayCorr != want.DelayCorr {
			t.Errorf("period %d: corrections (%v, %v) != (%v, %v)",
				r.Period, r.DemandCorr, r.DelayCorr, want.DemandCorr, want.DelayCorr)
		}
	}
}

// TestDaemonCancelMidStream: cancelling the context (the SIGTERM path)
// stops the loop cleanly — nil error, checkpoint on disk from the last
// completed period — even with observations still queued.
func TestDaemonCancelMidStream(t *testing.T) {
	inst := testInstance(t)
	ckpt := filepath.Join(t.TempDir(), "ck.json")
	var out bytes.Buffer
	d, err := New(Config{Instance: inst, Horizon: 3, CheckpointPath: ckpt, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	pr, pw := newBlockingFeed(feedLines(t, 0, 4, false))
	go func() { done <- d.Run(ctx, pr) }()
	// Wait for the 4 ready observations to complete, then cancel while
	// the daemon is blocked waiting for a 5th that never comes.
	waitFor(t, func() bool { return d.Period() == 4 })
	cancel()
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("cancelled run returned %v, want nil", err)
	}
	d2, err := New(Config{Instance: inst, Horizon: 3, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Restored() || d2.Period() != 4 {
		t.Fatalf("restore after cancel: restored=%v period=%d", d2.Restored(), d2.Period())
	}
}

// TestDaemonStallOverrunsAndHolds: a stall longer than the whole budget
// forces the hold rung and flags the overrun, then a cleared stall
// recovers to clean solves.
func TestDaemonStallOverrunsAndHolds(t *testing.T) {
	var out bytes.Buffer
	d, err := New(Config{
		Instance: testInstance(t), Horizon: 3,
		Budget:   20 * time.Millisecond,
		Watchdog: time.Second, // keep the watchdog out of this test
		Out:      &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SetStall(40 * time.Millisecond)
	if err := d.Run(context.Background(), strings.NewReader(feedLines(t, 0, 2, false))); err != nil {
		t.Fatal(err)
	}
	d.SetStall(0)
	if err := d.Run(context.Background(), strings.NewReader(feedLines(t, 2, 3, false))); err != nil {
		t.Fatal(err)
	}
	reps := decodeReports(t, &out)
	if len(reps) != 3 {
		t.Fatalf("%d reports, want 3", len(reps))
	}
	for _, r := range reps[:2] {
		if r.Mode != "hold" {
			t.Errorf("stalled period %d mode %q, want hold", r.Period, r.Mode)
		}
		if !r.Overrun {
			t.Errorf("stalled period %d not flagged as overrun (wall %.1fms)", r.Period, r.WallMS)
		}
	}
	if reps[2].Mode != "none" || reps[2].Overrun {
		t.Errorf("recovered period: %+v", reps[2])
	}
}

// TestDaemonWatchdogRestart: a solve wedged past the watchdog limit is
// abandoned — the period holds its allocation, the controller is rebuilt,
// and the next period solves cleanly.
func TestDaemonWatchdogRestart(t *testing.T) {
	var out bytes.Buffer
	hub := telemetry.New()
	d, err := New(Config{
		Instance: testInstance(t), Horizon: 3,
		Watchdog:  30 * time.Millisecond,
		Telemetry: hub,
		Out:       &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SetStall(10 * time.Second)
	if err := d.Run(context.Background(), strings.NewReader(feedLines(t, 0, 2, false))); err != nil {
		t.Fatal(err)
	}
	reps := decodeReports(t, &out)
	if len(reps) != 2 {
		t.Fatalf("%d reports, want 2", len(reps))
	}
	if !reps[0].Watchdog || reps[0].Mode != "watchdog-restart" {
		t.Fatalf("wedged period: %+v", reps[0])
	}
	if reps[1].Watchdog || reps[1].Mode != "none" {
		t.Fatalf("post-restart period: %+v", reps[1])
	}
	if d.WatchdogTrips() != 1 {
		t.Errorf("watchdog trips = %d, want 1", d.WatchdogTrips())
	}
	if got := hub.Registry().Snapshot()[telemetry.MetricDaemonWatchdog]; got != 1 {
		t.Errorf("watchdog metric = %g, want 1", got)
	}
}

// TestDaemonHTTP: observations over POST /observe drive periods, and the
// ops surface answers /healthz, /metrics and /statusz.
func TestDaemonHTTP(t *testing.T) {
	hub := telemetry.New()
	var out bytes.Buffer
	d, err := New(Config{
		Instance: testInstance(t), Horizon: 3,
		Telemetry: hub,
		Addr:      "127.0.0.1:0",
		Out:       &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, nil) }()
	waitFor(t, func() bool { return d.Addr() != "" })
	base := "http://" + d.Addr()

	body, err := json.Marshal(testObs(0, false))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /observe = %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return d.Period() == 1 })

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Period int    `json:"period"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Period != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(metrics.String(), telemetry.MetricDaemonPeriods) {
		t.Errorf("/metrics missing %s", telemetry.MetricDaemonPeriods)
	}
	if !strings.Contains(metrics.String(), telemetry.MetricDaemonPeriodSeconds) {
		t.Errorf("/metrics missing %s", telemetry.MetricDaemonPeriodSeconds)
	}

	// /statusz serves the period's attribution from the ring, and the
	// components sum to the cost the report line carried.
	page := getStatusz(t, base)
	if page.Periods != 1 || len(page.Recent) != 1 {
		t.Fatalf("statusz page %+v", page)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	reps := decodeReports(t, &out)
	if len(reps) != 1 || reps[0].Cost <= 0 {
		t.Fatalf("reports %+v", reps)
	}
	a := page.Recent[0]
	if relDiff(a.ComponentSum(), a.Total) > 1e-9 || relDiff(a.Total, reps[0].Cost) > 1e-9 {
		t.Fatalf("attribution %g/%g disagrees with reported cost %g",
			a.ComponentSum(), a.Total, reps[0].Cost)
	}
	if len(a.DCs) != 2 {
		t.Fatalf("dc rows %d, want 2", len(a.DCs))
	}
}

// TestDaemonHTTPDecomp runs the ops surface on the decomposed path: a
// sharded continental daemon must serve /healthz, /metrics (with the
// period/budget histograms populated) and /statusz records whose DC rows
// carry the shard ownership and quota view of the coordinated solve.
func TestDaemonHTTPDecomp(t *testing.T) {
	scn, err := decomp.NewScenario(decomp.ScenarioConfig{Locations: 120, DCSites: 12, Seed: 19, Utilization: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.New()
	var out bytes.Buffer
	d, err := New(Config{
		Instance:  scn.Inst,
		Horizon:   2,
		Budget:    2 * time.Second,
		Watchdog:  time.Minute,
		Telemetry: hub,
		Addr:      "127.0.0.1:0",
		Out:       &out,
		Decomp:    &decomp.Options{MaxShardSize: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, nil) }()
	waitFor(t, func() bool { return d.Addr() != "" })
	base := "http://" + d.Addr()

	obs := Observation{Demand: scn.Demand[0], Prices: scn.Prices[0]}
	body, err := json.Marshal(obs)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		resp, err := http.Post(base+"/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /observe = %d", resp.StatusCode)
		}
		waitFor(t, func() bool { return d.Period() == k+1 })
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Period int    `json:"period"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Period != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	snap := hub.Registry().Snapshot()
	if got := snap[telemetry.MetricDaemonPeriodSeconds+"_count"]; got != 2 {
		t.Errorf("period histogram count = %g, want 2", got)
	}
	if got := snap[telemetry.MetricBudgetUtilization+"_count"]; got != 2 {
		t.Errorf("budget histogram count = %g, want 2", got)
	}

	page := getStatusz(t, base)
	if page.Periods != 2 || len(page.Recent) != 2 {
		t.Fatalf("statusz page periods=%d recent=%d", page.Periods, len(page.Recent))
	}
	a := page.Recent[1]
	if relDiff(a.ComponentSum(), a.Total) > 1e-9 {
		t.Fatalf("decomp attribution %g != total %g", a.ComponentSum(), a.Total)
	}
	if len(a.DCs) != 12 {
		t.Fatalf("dc rows %d, want 12", len(a.DCs))
	}
	owned := 0
	for _, row := range a.DCs {
		if row.Shard >= 0 {
			owned++
		}
		if row.Quota <= 0 {
			t.Errorf("dc %d quota %g, want the coordinated solve's enforced capacity", row.DC, row.Quota)
		}
	}
	if owned == 0 {
		t.Error("no DC row carries shard ownership on the decomposed path")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// getStatusz fetches and decodes /statusz?n=0 (every retained record).
func getStatusz(t *testing.T, base string) *telemetry.StatuszPage {
	t.Helper()
	resp, err := http.Get(base + "/statusz?n=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statusz = %d", resp.StatusCode)
	}
	var page telemetry.StatuszPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return &page
}

func relDiff(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	m := want
	if m < 0 {
		m = -m
	}
	if m > 1 {
		return d / m
	}
	return d
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newBlockingFeed returns a reader that yields the given content and
// then blocks (instead of EOF) until the writer side is closed — the
// shape of a live stdin feed.
func newBlockingFeed(content string) (*blockingFeed, *blockingFeed) {
	bf := &blockingFeed{data: []byte(content), closed: make(chan struct{})}
	return bf, bf
}

type blockingFeed struct {
	data   []byte
	pos    int
	closed chan struct{}
}

func (b *blockingFeed) Read(p []byte) (int, error) {
	if b.pos < len(b.data) {
		n := copy(p, b.data[b.pos:])
		b.pos += n
		return n, nil
	}
	<-b.closed
	return 0, fmt.Errorf("feed closed: %w", errClosed)
}

var errClosed = fmt.Errorf("closed")

func (b *blockingFeed) Close() error {
	close(b.closed)
	return nil
}

package daemon

import (
	"encoding/json"
	"fmt"
	"os"

	"dspp/internal/core"
	"dspp/internal/monitor"
)

// checkpointVersion guards the on-disk format; a mismatch refuses to
// restore rather than resuming from misread state.
const checkpointVersion = 1

// checkpoint is the daemon's persisted state: everything a restart needs
// to continue the control loop exactly where it stopped. The warm capsule
// and the Welford snapshots make the resumed run's plans bit-identical to
// an uninterrupted one (floats round-trip exactly through JSON).
type checkpoint struct {
	Version      int                  `json:"version"`
	Period       int                  `json:"period"`
	State        [][]float64          `json:"state"`
	DemandHist   [][]float64          `json:"demand_hist"`
	PriceHist    [][]float64          `json:"price_hist"`
	DemandCorr   monitor.WelfordState `json:"demand_corr"`
	DelayCorr    monitor.WelfordState `json:"delay_corr"`
	LastForecast []float64            `json:"last_forecast,omitempty"`
	MissStreak   int                  `json:"miss_streak"`
	Warm         *core.WarmState      `json:"warm,omitempty"`
}

// saveCheckpoint persists the current state atomically: the JSON is
// written to <path>.tmp and renamed over the target, so a crash mid-write
// leaves the previous checkpoint intact. Caller holds d.mu.
func (d *Daemon) saveCheckpoint(path string) error {
	ck := checkpoint{
		Version:      checkpointVersion,
		Period:       d.period,
		State:        d.ctrl.State(),
		DemandHist:   d.demandHist,
		PriceHist:    d.priceHist,
		DemandCorr:   d.demandCorr.Snapshot(),
		DelayCorr:    d.delayCorr.Snapshot(),
		LastForecast: d.lastForecast,
		MissStreak:   d.ctrl.MissStreak(),
		Warm:         d.ctrl.WarmCapsule().Export(),
	}
	data, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("daemon: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("daemon: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("daemon: install checkpoint: %w", err)
	}
	if d.mCkpt != nil {
		d.mCkpt.Inc()
	}
	return nil
}

// loadCheckpoint restores state from path if a checkpoint exists there,
// reporting whether one was restored. A missing file is a fresh start; a
// corrupt or incompatible file is an error — silently discarding state a
// deployment relies on would be worse than failing loudly.
func (d *Daemon) loadCheckpoint(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("daemon: read checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return false, fmt.Errorf("daemon: decode checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return false, fmt.Errorf("daemon: checkpoint %s has version %d, want %d: %w",
			path, ck.Version, checkpointVersion, ErrBadConfig)
	}
	state := core.State(ck.State)
	if err := d.inst.CheckState(state); err != nil {
		return false, fmt.Errorf("daemon: checkpoint %s state: %w", path, err)
	}
	if err := d.ctrl.SetState(state); err != nil {
		return false, err
	}
	d.ctrl.RestoreWarm(core.ImportWarm(ck.Warm))
	d.ctrl.RestoreMissStreak(ck.MissStreak)
	d.period = ck.Period
	d.demandHist = ck.DemandHist
	d.priceHist = ck.PriceHist
	d.demandCorr.Restore(ck.DemandCorr)
	d.delayCorr.Restore(ck.DelayCorr)
	d.lastForecast = ck.LastForecast
	return true, nil
}

package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// reportWriter serializes Report lines from the control loop and the
// reader goroutine onto one stream.
type reportWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// report emits one JSONL line (no-op without Config.Out).
func (d *Daemon) report(r Report) {
	if d.out == nil {
		return
	}
	d.out.mu.Lock()
	defer d.out.mu.Unlock()
	d.out.enc.Encode(r) //nolint:errcheck // a broken report pipe must not stop the control loop
}

// lineDecoder reads one JSON Observation per line, skipping blanks.
type lineDecoder struct {
	sc   *bufio.Scanner
	line int
	dead bool
}

func newLineDecoder(r io.Reader) *lineDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &lineDecoder{sc: sc}
}

// next returns the next observation, io.EOF at end of stream, or a
// decode error naming the line.
func (ld *lineDecoder) next() (Observation, error) {
	if ld.dead {
		return Observation{}, io.EOF
	}
	for ld.sc.Scan() {
		ld.line++
		text := strings.TrimSpace(ld.sc.Text())
		if text == "" {
			continue
		}
		var obs Observation
		if err := json.Unmarshal([]byte(text), &obs); err != nil {
			return Observation{}, fmt.Errorf("observation line %d: %v", ld.line, err)
		}
		return obs, nil
	}
	if err := ld.sc.Err(); err != nil {
		// A failed underlying reader never recovers: report it once, then
		// present EOF so the feed goroutine winds down.
		ld.dead = true
		return Observation{}, fmt.Errorf("observation stream: %v", err)
	}
	return Observation{}, io.EOF
}

package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	m := Constant{Level: 42}
	for _, k := range []int{0, 5, 1000} {
		if m.Rate(k) != 42 {
			t.Fatalf("Rate(%d) = %g", k, m.Rate(k))
		}
	}
}

func TestNewDiurnalValidation(t *testing.T) {
	if _, err := NewDiurnal(-1, 5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative base err = %v", err)
	}
	if _, err := NewDiurnal(10, 5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("peak<base err = %v", err)
	}
}

func TestDiurnalOnOffShape(t *testing.T) {
	d, err := NewDiurnal(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Night hours are at base.
	for _, h := range []int{0, 3, 5, 22, 23} {
		if got := d.Rate(h); got != 100 {
			t.Errorf("Rate(%d) = %g, want base 100", h, got)
		}
	}
	// Working hours are high.
	for h := 8; h < 17; h++ {
		if got := d.Rate(h); got < 800 {
			t.Errorf("Rate(%d) = %g, want near peak", h, got)
		}
	}
	// Shoulders are intermediate.
	for _, h := range []int{7, 17} {
		got := d.Rate(h)
		if got <= 100 || got >= 900 {
			t.Errorf("shoulder Rate(%d) = %g", h, got)
		}
	}
	// Day 2 repeats day 1.
	if d.Rate(10) != d.Rate(34) {
		t.Error("not periodic across days")
	}
	// Negative periods wrap safely.
	if got := d.Rate(-14); got != d.Rate(10) {
		t.Errorf("negative wrap: Rate(-14)=%g Rate(10)=%g", got, d.Rate(10))
	}
}

func TestDiurnalPhaseShift(t *testing.T) {
	d, err := NewDiurnal(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	shifted := *d
	shifted.PhaseShift = 3
	if d.Rate(9) != shifted.Rate(6) {
		t.Error("phase shift does not relabel hours")
	}
}

func TestDiurnalZeroDefaults(t *testing.T) {
	d := &Diurnal{Base: 1, Peak: 10} // PeriodsPerDay / window left zero
	if got := d.Rate(12); got < 8 {
		t.Errorf("default window: Rate(12) = %g, want near peak", got)
	}
	if got := d.Rate(2); got != 1 {
		t.Errorf("default window: Rate(2) = %g, want base", got)
	}
}

func TestSinusoid(t *testing.T) {
	s := Sinusoid{Mean: 50, Amplitude: 30, PeriodsPerDay: 24}
	if math.Abs(s.Rate(0)-50) > 1e-9 {
		t.Errorf("Rate(0) = %g, want 50", s.Rate(0))
	}
	if math.Abs(s.Rate(6)-80) > 1e-9 {
		t.Errorf("Rate(6) = %g, want 80", s.Rate(6))
	}
	neg := Sinusoid{Mean: 5, Amplitude: 30, PeriodsPerDay: 24}
	if neg.Rate(18) != 0 {
		t.Errorf("negative rate not clamped: %g", neg.Rate(18))
	}
	if (Sinusoid{Mean: 1, PeriodsPerDay: 0}).Rate(0) != 1 {
		t.Error("zero PeriodsPerDay default broken")
	}
}

func TestRandomWalkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		mean, vol, rev float64
	}{
		{0, 0.1, 0.5}, {10, -1, 0.5}, {10, 0.1, 0}, {10, 0.1, 2},
	}
	for i, c := range cases {
		if _, err := NewRandomWalk(c.mean, c.vol, c.rev, rng); !errors.Is(err, ErrBadParameter) {
			t.Errorf("case %d err = %v", i, err)
		}
	}
	if _, err := NewRandomWalk(10, 0.1, 0.5, nil); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil rng err = %v", err)
	}
}

func TestRandomWalkProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w, err := NewRandomWalk(100, 0.2, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Same period is stable; values stay nonnegative; walk actually moves.
	first := w.Rate(0)
	if w.Rate(0) != first {
		t.Error("Rate(0) not stable across calls")
	}
	moved := false
	prev := first
	for k := 1; k < 200; k++ {
		v := w.Rate(k)
		if v < 0 {
			t.Fatalf("negative demand at k=%d: %g", k, v)
		}
		if v != prev {
			moved = true
		}
		prev = v
	}
	if !moved {
		t.Error("random walk never moved")
	}
}

func TestRandomWalkMeanReversion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := NewRandomWalk(100, 0.05, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 5000
	for k := 0; k < n; k++ {
		sum += w.Rate(k)
	}
	avg := sum / float64(n)
	if avg < 60 || avg > 140 {
		t.Errorf("long-run average %g far from mean 100", avg)
	}
}

func TestFlashCrowd(t *testing.T) {
	f := FlashCrowd{Base: Constant{Level: 10}, Start: 5, Duration: 3, Multiplier: 8}
	if f.Rate(4) != 10 || f.Rate(8) != 10 {
		t.Error("spike leaked outside window")
	}
	for k := 5; k < 8; k++ {
		if f.Rate(k) != 80 {
			t.Errorf("Rate(%d) = %g, want 80", k, f.Rate(k))
		}
	}
}

func TestScaledAndTrace(t *testing.T) {
	s := Scaled{Base: Constant{Level: 7}, Factor: 3}
	if s.Rate(0) != 21 {
		t.Errorf("Scaled = %g", s.Rate(0))
	}
	tr := Trace{1, 2, 3}
	if tr.Rate(-5) != 1 || tr.Rate(1) != 2 || tr.Rate(99) != 3 {
		t.Errorf("Trace clamping broken: %g %g %g", tr.Rate(-5), tr.Rate(1), tr.Rate(99))
	}
	var empty Trace
	if empty.Rate(0) != 0 {
		t.Error("empty trace should be 0")
	}
}

func TestMaterialize(t *testing.T) {
	tr, err := Materialize(Constant{Level: 2}, 5)
	if err != nil || len(tr) != 5 || tr[4] != 2 {
		t.Errorf("Materialize = %v, %v", tr, err)
	}
	if _, err := Materialize(nil, 5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil model err = %v", err)
	}
	if _, err := Materialize(Constant{}, -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative periods err = %v", err)
	}
}

func TestSamplePoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	// Small-mean regime (Knuth inversion).
	var sum int
	n := 20000
	for i := 0; i < n; i++ {
		k, err := SamplePoisson(3, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += k
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("small-mean sample mean %g, want 3", mean)
	}
	// Large-mean regime (normal approximation).
	sum = 0
	for i := 0; i < n; i++ {
		k, err := SamplePoisson(500, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += k
	}
	mean = float64(sum) / float64(n)
	if math.Abs(mean-500) > 2 {
		t.Errorf("large-mean sample mean %g, want 500", mean)
	}
}

func TestSamplePoissonEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k, err := SamplePoisson(0, 1, rng)
	if err != nil || k != 0 {
		t.Errorf("zero rate: %d, %v", k, err)
	}
	if _, err := SamplePoisson(-1, 1, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative rate err = %v", err)
	}
	if _, err := SamplePoisson(1, 0, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero period err = %v", err)
	}
	if _, err := SamplePoisson(1, 1, nil); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil rng err = %v", err)
	}
}

func TestPopulationWeights(t *testing.T) {
	w, err := PopulationWeights([]int{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Errorf("weights = %v", w)
	}
	if _, err := PopulationWeights(nil); !errors.Is(err, ErrBadParameter) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := PopulationWeights([]int{5, 0}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero population err = %v", err)
	}
}

// Property: population weights always sum to 1 and are positive.
func TestQuickPopulationWeightsNormalized(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pops := make([]int, len(raw))
		for i, r := range raw {
			pops[i] = int(r) + 1
		}
		w, err := PopulationWeights(pops)
		if err != nil {
			return false
		}
		var sum float64
		for _, x := range w {
			if x <= 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Diurnal rates always lie within [Base, Peak].
func TestQuickDiurnalBounded(t *testing.T) {
	f := func(seed int64, k int) bool {
		rng := rand.New(rand.NewSource(seed))
		base := rng.Float64() * 100
		peak := base + rng.Float64()*1000
		d, err := NewDiurnal(base, peak)
		if err != nil {
			return false
		}
		r := d.Rate(k % 100000)
		return r >= base-1e-9 && r <= peak+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

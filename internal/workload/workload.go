// Package workload generates the request demand that drives the DSPP
// controller. The paper (§VII) generates requests "from a non-homogeneous
// Poisson process that considers both the population of each city as well
// as the time of day", with an on-off profile: high arrival rate during
// working hours (8am–5pm) and low at night. This package implements that
// generator plus the deterministic profiles used by the controlled
// experiments (constant demand for Fig. 5/10, volatile random-walk demand
// for Fig. 9, flash crowds for robustness tests).
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadParameter flags invalid model parameters.
var ErrBadParameter = errors.New("workload: invalid parameter")

// Model produces the mean arrival rate (requests/s) at a given period.
// Implementations must be deterministic functions of (period, their own
// seeded state); the simulator calls Rate exactly once per period in
// increasing order.
type Model interface {
	// Rate returns the mean arrival rate for period k.
	Rate(k int) float64
}

// Constant is a demand model with a fixed arrival rate.
type Constant struct{ Level float64 }

// Rate implements Model.
func (c Constant) Rate(int) float64 { return c.Level }

// Diurnal is the paper's on-off daily profile smoothed with a sinusoidal
// shoulder: high during working hours, low at night.
type Diurnal struct {
	// Base is the overnight arrival rate.
	Base float64
	// Peak is the working-hours arrival rate.
	Peak float64
	// PeriodsPerDay is the number of control periods per day (e.g. 24
	// for hourly periods).
	PeriodsPerDay int
	// WorkStart and WorkEnd delimit the high-rate window in periods
	// (defaults 8 and 17 when zero, matching the paper's 8am–5pm).
	WorkStart, WorkEnd int
	// PhaseShift offsets local time, e.g. to model time zones.
	PhaseShift int
}

// NewDiurnal builds the paper's profile with hourly periods.
func NewDiurnal(base, peak float64) (*Diurnal, error) {
	if base < 0 || peak < base {
		return nil, fmt.Errorf("base=%g peak=%g: %w", base, peak, ErrBadParameter)
	}
	return &Diurnal{Base: base, Peak: peak, PeriodsPerDay: 24, WorkStart: 8, WorkEnd: 17}, nil
}

// Rate implements Model.
func (d *Diurnal) Rate(k int) float64 {
	ppd := d.PeriodsPerDay
	if ppd <= 0 {
		ppd = 24
	}
	ws, we := d.WorkStart, d.WorkEnd
	if ws == 0 && we == 0 {
		ws, we = 8, 17
	}
	hour := ((k+d.PhaseShift)%ppd + ppd) % ppd
	// Smooth one-period ramps at the window edges keep the QP well behaved
	// while preserving the on-off character.
	switch {
	case hour >= ws && hour < we:
		// Mild midday bump between 90% and 100% of the peak excess.
		frac := float64(hour-ws) / math.Max(1, float64(we-ws))
		return d.Base + (d.Peak-d.Base)*(0.9+0.1*math.Sin(frac*math.Pi))
	case hour == ws-1 || hour == we:
		return d.Base + (d.Peak-d.Base)*0.5
	default:
		return d.Base
	}
}

// Sinusoid is a smooth daily profile: mean + amplitude·sin.
type Sinusoid struct {
	Mean, Amplitude float64
	PeriodsPerDay   int
	Phase           float64
}

// Rate implements Model.
func (s Sinusoid) Rate(k int) float64 {
	ppd := s.PeriodsPerDay
	if ppd <= 0 {
		ppd = 24
	}
	r := s.Mean + s.Amplitude*math.Sin(2*math.Pi*float64(k)/float64(ppd)+s.Phase)
	if r < 0 {
		return 0
	}
	return r
}

// RandomWalk is the volatile demand model for Fig. 9: a mean-reverting
// multiplicative random walk that is hard for simple predictors.
type RandomWalk struct {
	level, mean float64
	volatility  float64
	reversion   float64
	rng         *rand.Rand
	lastK       int
	started     bool
}

// NewRandomWalk creates a mean-reverting random walk starting at mean.
// volatility is the per-period relative standard deviation; reversion in
// (0,1] pulls the level back toward the mean.
func NewRandomWalk(mean, volatility, reversion float64, rng *rand.Rand) (*RandomWalk, error) {
	if mean <= 0 || volatility < 0 || reversion <= 0 || reversion > 1 {
		return nil, fmt.Errorf("mean=%g vol=%g rev=%g: %w", mean, volatility, reversion, ErrBadParameter)
	}
	if rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadParameter)
	}
	return &RandomWalk{level: mean, mean: mean, volatility: volatility, reversion: reversion, rng: rng}, nil
}

// Rate implements Model. Repeated calls with the same k return the same
// value; the walk advances one step per new period.
func (w *RandomWalk) Rate(k int) float64 {
	if !w.started {
		w.started = true
		w.lastK = k
		return w.level
	}
	for w.lastK < k {
		shock := 1 + w.volatility*w.rng.NormFloat64()
		if shock < 0.1 {
			shock = 0.1
		}
		w.level = w.level*shock + w.reversion*(w.mean-w.level)
		if w.level < 0 {
			w.level = 0
		}
		w.lastK++
	}
	return w.level
}

// FlashCrowd wraps a base model and injects a multiplicative spike over
// [Start, Start+Duration).
type FlashCrowd struct {
	Base       Model
	Start      int
	Duration   int
	Multiplier float64
}

// Rate implements Model.
func (f FlashCrowd) Rate(k int) float64 {
	r := f.Base.Rate(k)
	if k >= f.Start && k < f.Start+f.Duration {
		return r * f.Multiplier
	}
	return r
}

// Scaled multiplies a base model by a constant factor (used for
// population weighting).
type Scaled struct {
	Base   Model
	Factor float64
}

// Rate implements Model.
func (s Scaled) Rate(k int) float64 { return s.Base.Rate(k) * s.Factor }

// Trace is a precomputed demand series usable as a Model; out-of-range
// periods clamp to the nearest endpoint.
type Trace []float64

// Rate implements Model.
func (t Trace) Rate(k int) float64 {
	if len(t) == 0 {
		return 0
	}
	if k < 0 {
		k = 0
	}
	if k >= len(t) {
		k = len(t) - 1
	}
	return t[k]
}

// Materialize evaluates a model over [0, periods) into a Trace.
func Materialize(m Model, periods int) (Trace, error) {
	if m == nil || periods < 0 {
		return nil, fmt.Errorf("model=%v periods=%d: %w", m, periods, ErrBadParameter)
	}
	out := make(Trace, periods)
	for k := 0; k < periods; k++ {
		out[k] = m.Rate(k)
	}
	return out, nil
}

// SamplePoisson draws the realized number of arrivals in a period of the
// given duration, for a mean rate. It uses the inversion method for small
// means and a normal approximation for large ones, as is standard for
// workload generators at data-center request volumes.
func SamplePoisson(rate, periodSec float64, rng *rand.Rand) (int, error) {
	if rate < 0 || periodSec <= 0 {
		return 0, fmt.Errorf("rate=%g period=%g: %w", rate, periodSec, ErrBadParameter)
	}
	if rng == nil {
		return 0, fmt.Errorf("nil rng: %w", ErrBadParameter)
	}
	mean := rate * periodSec
	if mean == 0 {
		return 0, nil
	}
	if mean > 50 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n, nil
	}
	// Knuth inversion.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k, nil
		}
		k++
	}
}

// PopulationWeights returns per-city demand weights proportional to
// population, normalized to sum to 1.
func PopulationWeights(populations []int) ([]float64, error) {
	if len(populations) == 0 {
		return nil, fmt.Errorf("no populations: %w", ErrBadParameter)
	}
	var total float64
	for i, p := range populations {
		if p <= 0 {
			return nil, fmt.Errorf("population[%d]=%d: %w", i, p, ErrBadParameter)
		}
		total += float64(p)
	}
	out := make([]float64, len(populations))
	for i, p := range populations {
		out[i] = float64(p) / total
	}
	return out, nil
}

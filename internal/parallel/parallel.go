// Package parallel provides the bounded, deterministic fan-out primitive
// used by the embarrassingly parallel outer loops of the simulator and the
// competition game: per-SP best-response solves, horizon sweeps, and
// parameter sweeps.
//
// Determinism contract: callers seed any randomness per item (never from a
// shared RNG consumed inside workers) and workers write results only into
// their own item's slot. Completion order then never changes observable
// output, so runs are bit-identical at any worker count — including 1.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count setting: values ≤ 0 mean
// runtime.GOMAXPROCS(0), and the count never exceeds n items.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(0), …, fn(n−1) on at most workers goroutines (≤ 0 means
// GOMAXPROCS). Every index runs to completion regardless of other items'
// errors, no goroutine outlives the call, and the returned error is the
// lowest-index failure — the same error a sequential loop that kept going
// would report first. Results must be written into index-addressed slots.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, no
// new item is dispatched (items already running finish normally — workers
// are never killed mid-item) and every undispatched item's slot reports
// ctx.Err(). The lowest-index rule still picks the returned error, so a
// genuine item failure that happened before the cancellation wins over the
// cancellation itself.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("parallel: nil function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Inline fast path: no goroutines, same semantics.
		var first error
		for i := 0; i < n; i++ {
			var err error
			if err = ctx.Err(); err == nil {
				err = fn(i)
			}
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Errorf("Workers(2, 100) = %d, want 2", got)
	}
	if got := Workers(5, 0); got != 1 {
		t.Errorf("Workers(5, 0) = %d, want 1", got)
	}
}

func TestForEachRunsEveryIndexAtAnyWorkerCount(t *testing.T) {
	const n = 57
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out := make([]int, n)
		err := ForEach(n, workers, func(i int) error {
			out[i] = i*i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i+1 {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i+1)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		err := ForEach(20, workers, func(i int) error {
			calls.Add(1)
			if i == 3 || i == 11 {
				return fmt.Errorf("item %d: %w", i, sentinel)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if got := err.Error(); got != "item 3: boom" {
			t.Errorf("workers=%d: err = %q, want lowest-index failure", workers, got)
		}
		// Every index still ran despite the failures.
		if calls.Load() != 20 {
			t.Errorf("workers=%d: %d calls, want 20", workers, calls.Load())
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := ForEach(-1, 4, nil); err != nil {
		t.Errorf("n<0: %v", err)
	}
	if err := ForEach(3, 4, nil); err == nil {
		t.Error("nil fn with n>0: no error")
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		err := ForEachCtx(ctx, 10, workers, func(i int) error {
			calls.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if calls.Load() != 0 {
			t.Errorf("workers=%d: %d items dispatched after cancellation", workers, calls.Load())
		}
	}
}

func TestForEachCtxStopsDispatch(t *testing.T) {
	// Single worker makes dispatch order deterministic: item 2 cancels, so
	// items 3..9 must be skipped and their slots report the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	err := ForEachCtx(ctx, 10, 1, func(i int) error {
		calls.Add(1)
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 3 {
		t.Errorf("%d items ran, want 3 (0..2 then stop)", calls.Load())
	}
}

func TestForEachCtxItemErrorBeatsCancellation(t *testing.T) {
	// A genuine failure at a lower index than any cancelled slot must win
	// the lowest-index rule over the cancellation itself.
	sentinel := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 10, 1, func(i int) error {
		if i == 1 {
			cancel()
			return fmt.Errorf("item %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the item failure, not the cancellation", err)
	}
}

package traceio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"dspp/internal/core"
	"dspp/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	trace := [][]float64{
		{1.5, 2.25},
		{3, 4},
		{0, -7.125},
	}
	names := []string{"alpha", "beta"}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, names, trace); err != nil {
		t.Fatal(err)
	}
	gotNames, gotTrace, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 2 || gotNames[0] != "alpha" || gotNames[1] != "beta" {
		t.Errorf("names = %v", gotNames)
	}
	if len(gotTrace) != 3 {
		t.Fatalf("rows = %d", len(gotTrace))
	}
	for i := range trace {
		for j := range trace[i] {
			if gotTrace[i][j] != trace[i][j] {
				t.Errorf("(%d,%d): %g != %g", i, j, gotTrace[i][j], trace[i][j])
			}
		}
	}
}

func TestWriteTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil, nil); !errors.Is(err, ErrBadTrace) {
		t.Errorf("empty err = %v", err)
	}
	if err := WriteTrace(&buf, []string{"a"}, [][]float64{{1, 2}}); !errors.Is(err, ErrBadTrace) {
		t.Errorf("name mismatch err = %v", err)
	}
	if err := WriteTrace(&buf, []string{"a"}, [][]float64{{1}, {1, 2}}); !errors.Is(err, ErrBadTrace) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"header only", "period,a\n"},
		{"bad header", "time,a\n0,1\n"},
		{"ragged row", "period,a\n0,1,2\n"},
		{"bad period", "period,a\nx,1\n"},
		{"wrong order", "period,a\n5,1\n"},
		{"bad value", "period,a\n0,zzz\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadTrace(strings.NewReader(tc.csv))
			if err == nil {
				t.Error("accepted malformed csv")
			}
		})
	}
}

func simResultFixture(t *testing.T) *sim.Result {
	t.Helper()
	inst, err := core.NewInstance(core.Config{
		SLA:             [][]float64{{0.01}},
		ReconfigWeights: []float64{1e-3},
		Capacities:      []float64{math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace := [][]float64{{100}, {100}, {200}, {150}}
	prices := [][]float64{{0.1}, {0.1}, {0.1}, {0.1}}
	res, err := sim.Run(sim.Config{
		Instance:    inst,
		Policy:      &sim.MPCPolicy{Ctrl: ctrl},
		DemandTrace: trace,
		PriceTrace:  prices,
		Periods:     3,
		Horizon:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteSimResult(t *testing.T) {
	res := simResultFixture(t)
	var buf bytes.Buffer
	if err := WriteSimResult(&buf, res, []string{"dc0"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 periods
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "period,demand_total,servers_dc0,cost_resource,cost_reconfig,sla_met") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "true") {
		t.Errorf("row 1 missing sla flag: %q", lines[1])
	}
}

func TestWriteSimResultErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSimResult(&buf, nil, nil); !errors.Is(err, ErrBadTrace) {
		t.Errorf("nil result err = %v", err)
	}
	res := simResultFixture(t)
	if err := WriteSimResult(&buf, res, []string{"a", "b"}); !errors.Is(err, ErrBadTrace) {
		t.Errorf("name mismatch err = %v", err)
	}
}

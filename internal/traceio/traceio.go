// Package traceio persists demand/price traces and simulation results as
// CSV, so experiments can be exported to plotting tools and externally
// collected traces (e.g. real electricity prices) can be fed into the
// controller. Only the standard library's encoding/csv is used.
package traceio

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"encoding/csv"

	"dspp/internal/sim"
)

// Sentinel errors.
var (
	// ErrBadTrace flags malformed trace data.
	ErrBadTrace = errors.New("traceio: malformed trace")
)

// WriteTrace writes a [periods][series] trace as CSV with a header row of
// column names. len(names) must match the trace width.
func WriteTrace(w io.Writer, names []string, trace [][]float64) error {
	if len(trace) == 0 {
		return fmt.Errorf("empty trace: %w", ErrBadTrace)
	}
	width := len(trace[0])
	if len(names) != width {
		return fmt.Errorf("%d names for width %d: %w", len(names), width, ErrBadTrace)
	}
	cw := csv.NewWriter(w)
	header := append([]string{"period"}, names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	row := make([]string, width+1)
	for k, vals := range trace {
		if len(vals) != width {
			return fmt.Errorf("row %d has %d columns, want %d: %w", k, len(vals), width, ErrBadTrace)
		}
		row[0] = strconv.Itoa(k)
		for i, v := range vals {
			row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write row %d: %w", k, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV written by WriteTrace (or hand-made in the same
// shape): a header row, then one row per period with a leading period
// index. It returns the column names and the trace.
func ReadTrace(r io.Reader) ([]string, [][]float64, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, nil, fmt.Errorf("need header + data rows, got %d: %w", len(records), ErrBadTrace)
	}
	header := records[0]
	if len(header) < 2 || header[0] != "period" {
		return nil, nil, fmt.Errorf("header %v: %w", header, ErrBadTrace)
	}
	names := append([]string(nil), header[1:]...)
	width := len(names)
	trace := make([][]float64, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != width+1 {
			return nil, nil, fmt.Errorf("row %d has %d columns, want %d: %w", i, len(rec), width+1, ErrBadTrace)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil || idx != i {
			return nil, nil, fmt.Errorf("row %d period %q: %w", i, rec[0], ErrBadTrace)
		}
		vals := make([]float64, width)
		for j, cell := range rec[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d col %d %q: %w", i, j, cell, ErrBadTrace)
			}
			vals[j] = v
		}
		trace = append(trace, vals)
	}
	return names, trace, nil
}

// WriteSimResult writes one row per executed period of a simulation run:
// period, total demand, per-DC server counts, resource and reconfiguration
// cost, and the SLA outcome.
func WriteSimResult(w io.Writer, res *sim.Result, dcNames []string) error {
	if res == nil || len(res.Steps) == 0 {
		return fmt.Errorf("empty result: %w", ErrBadTrace)
	}
	numDC := len(res.Steps[0].ServersByDC)
	if len(dcNames) != numDC {
		return fmt.Errorf("%d names for %d DCs: %w", len(dcNames), numDC, ErrBadTrace)
	}
	cw := csv.NewWriter(w)
	header := []string{"period", "demand_total"}
	for _, n := range dcNames {
		header = append(header, "servers_"+n)
	}
	header = append(header, "cost_resource", "cost_reconfig", "sla_met")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for _, s := range res.Steps {
		var demand float64
		for _, d := range s.Demand {
			demand += d
		}
		row := []string{
			strconv.Itoa(s.Period),
			strconv.FormatFloat(demand, 'g', -1, 64),
		}
		for _, x := range s.ServersByDC {
			row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		}
		row = append(row,
			strconv.FormatFloat(s.Cost.Resource, 'g', -1, 64),
			strconv.FormatFloat(s.Cost.Reconfig, 'g', -1, 64),
			strconv.FormatBool(s.SLAMet),
		)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write period %d: %w", s.Period, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

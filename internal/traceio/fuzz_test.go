package traceio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes through the CSV trace parser: it
// must reject malformed input with an error, never panic, and round-trip
// anything it accepts.
func FuzzReadTrace(f *testing.F) {
	f.Add("period,a\n0,1\n1,2\n")
	f.Add("period,a,b\n0,1.5,2.5\n")
	f.Add("")
	f.Add("period\n0\n")
	f.Add("time,a\n0,1\n")
	f.Add("period,a\nx,1\n")
	f.Add("period,a\n0,NaN\n")
	f.Fuzz(func(t *testing.T, data string) {
		names, trace, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly through WriteTrace.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, names, trace); err != nil {
			t.Fatalf("accepted trace failed to write: %v", err)
		}
		names2, trace2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if len(names2) != len(names) || len(trace2) != len(trace) {
			t.Fatalf("round trip changed shape: %d/%d names, %d/%d rows",
				len(names2), len(names), len(trace2), len(trace))
		}
	})
}

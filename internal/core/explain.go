package core

import (
	"math"
	"time"

	"dspp/internal/telemetry"
)

// BindingTol is the dual-price threshold above which a capacity
// constraint is reported as binding: interior-point duals of inactive
// constraints converge to zero but never reach it exactly.
const BindingTol = 1e-6

// Explain is the decision-provenance surface of a controller's last
// executed step: the dual prices the QP solution put on the capacity
// constraints, and — on the decomposed path — the quota split those
// prices were computed under. It answers "which constraint was binding,
// and what was one more server there worth" for the plan actually
// applied.
type Explain struct {
	// CapacityDuals[l] is the horizon-summed capacity dual price per DC
	// (the paper's λ^il reported to the infrastructure provider); zero
	// for uncapacitated or slack DCs. Nil before the first step.
	CapacityDuals []float64
	// Quotas[l] is the capacity the last solve actually enforced per DC.
	// Nil on the monolithic path (the live instance capacities apply).
	Quotas []float64
	// ShardOfDC maps each DC to the shard that owned it in the last
	// coordinated solve (-1 = shared/quota-managed). Nil on the
	// monolithic path.
	ShardOfDC []int
}

// Binding appends to dst the DCs whose capacity dual exceeds BindingTol
// and returns the extended slice.
func (e Explain) Binding(dst []int) []int {
	for l, d := range e.CapacityDuals {
		if d > BindingTol {
			dst = append(dst, l)
		}
	}
	return dst
}

// Explainer is implemented by controllers that can reconstruct the
// dual-price provenance of their last step — core.Controller and the
// decomp controller. Attribution emitters discover it by assertion, so
// policies without a dual surface simply yield records with no prices.
type Explainer interface {
	LastExplain() Explain
}

// LastExplain returns the dual-price surface of the last executed step
// (zero Explain before the first step). The slices are copies.
func (c *Controller) LastExplain() Explain {
	if c.lastDuals == nil {
		return Explain{}
	}
	return Explain{CapacityDuals: append([]float64(nil), c.lastDuals...)}
}

// NewAttribution builds one period's provenance record: the realized
// cost split per component and data center, placement churn against the
// previous period's allocation, the dual-price surface of the plan that
// produced the step, and the imputed cost of any demand the degradation
// ladder shed (at DefaultShedPenalty per unit). The record's four
// components sum to Total by construction, up to FP rounding against the
// separately accumulated CostBreakdown.
func NewAttribution(inst *Instance, period int, state, applied, prev State,
	prices []float64, cost CostBreakdown, deg Degradation,
	wall time.Duration, e Explain) (*telemetry.Attribution, error) {
	dcs, err := inst.AttributeCost(state, applied, prices)
	if err != nil {
		return nil, err
	}
	shedCost := deg.ShedDemand * DefaultShedPenalty
	a := &telemetry.Attribution{
		Period:     period,
		Shed:       shedCost,
		Total:      cost.Total() + shedCost,
		Churn:      inst.PlacementChurn(prev, state),
		ShedDemand: deg.ShedDemand,
		Mode:       deg.Mode.String(),
		WallUS:     wall.Microseconds(),
		DCs:        make([]telemetry.DCAttribution, len(dcs)),
	}
	for l, dc := range dcs {
		row := telemetry.DCAttribution{
			DC:        l,
			Shard:     -1,
			Resource:  dc.Resource,
			Bandwidth: dc.Bandwidth,
			Reconfig:  dc.Reconfig,
			Servers:   dc.Servers,
		}
		if l < len(e.CapacityDuals) {
			row.Dual = e.CapacityDuals[l]
			row.Binding = e.CapacityDuals[l] > BindingTol
		}
		q := math.Inf(1)
		if l < len(e.Quotas) {
			q = e.Quotas[l]
		} else if c, cerr := inst.Capacity(l); cerr == nil {
			q = c
		}
		// Uncapacitated DCs stay at quota 0: +Inf is not representable in
		// the /statusz JSON, and a zero dual already says "no constraint".
		if !math.IsInf(q, 1) {
			row.Quota = q
		}
		if l < len(e.ShardOfDC) {
			row.Shard = e.ShardOfDC[l]
		}
		a.Resource += dc.Resource
		a.Bandwidth += dc.Bandwidth
		a.Reconfig += dc.Reconfig
		a.DCs[l] = row
	}
	return a, nil
}

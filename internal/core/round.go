package core

import (
	"fmt"
	"math"
)

// RoundResult reports an integer-feasible allocation derived from a
// continuous one (the paper's future-work item on integer server counts,
// §VIII, implemented as a rounding post-processor rather than a MIP).
type RoundResult struct {
	// X is the integral allocation.
	X State
	// Overflow[l] is the amount by which rounding pushed DC l above its
	// capacity before repair (0 after successful repair).
	Overflow []float64
	// ExtraServers is the integrality cost: total servers added relative
	// to the continuous allocation.
	ExtraServers float64
}

// RoundUp converts a continuous allocation to integers by rounding each
// positive entry up (the paper's §IV argument: for services needing tens
// or hundreds of servers the relative gap is small). If a DC exceeds its
// capacity after rounding, the repair step walks that DC's entries and
// rounds the largest fractional parts down instead, provided the demand
// slack allows it; any remaining overflow is reported.
func (in *Instance) RoundUp(x State, demand []float64) (*RoundResult, error) {
	if err := in.CheckState(x); err != nil {
		return nil, err
	}
	if len(demand) != in.v {
		return nil, fmt.Errorf("demand has %d locations, want %d: %w", len(demand), in.v, ErrBadInput)
	}
	res := &RoundResult{
		X:        in.NewState(),
		Overflow: make([]float64, in.l),
	}
	var contTotal, intTotal float64
	for l := 0; l < in.l; l++ {
		for v := 0; v < in.v; v++ {
			val := x[l][v]
			contTotal += val
			if val <= 0 {
				continue
			}
			r := math.Ceil(val - 1e-9)
			res.X[l][v] = r
			intTotal += r
		}
	}
	// Capacity repair: round down entries with enough aggregate slack.
	for l := 0; l < in.l; l++ {
		capL := in.capacity[l]
		if math.IsInf(capL, 1) {
			continue
		}
		total := 0.0
		for v := 0; v < in.v; v++ {
			total += res.X[l][v]
		}
		for total > capL+1e-9 {
			// Find the entry whose round-down least harms demand slack.
			bestV := -1
			for v := 0; v < in.v; v++ {
				if res.X[l][v] < 1 {
					continue
				}
				res.X[l][v]--
				slack, err := in.DemandSlack(res.X, demand)
				res.X[l][v]++
				if err != nil {
					return nil, err
				}
				ok := true
				for _, s := range slack {
					if s < -1e-9 {
						ok = false
						break
					}
				}
				if ok {
					bestV = v
					break
				}
			}
			if bestV < 0 {
				break // cannot repair without violating demand
			}
			res.X[l][bestV]--
			total--
			intTotal--
		}
		if total > capL+1e-9 {
			res.Overflow[l] = total - capL
		}
	}
	res.ExtraServers = intTotal - contTotal
	return res, nil
}

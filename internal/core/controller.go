package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dspp/internal/qp"
	"dspp/internal/telemetry"
)

// Controller is the paper's MPC resource controller (Algorithm 1): at each
// control period it solves the horizon QP from the current state and
// applies only the first control action.
//
// By default the controller degrades gracefully instead of erroring when a
// solve fails (see StepCtx); WithDegradation(false) restores the strict
// fail-fast behaviour.
type Controller struct {
	inst    *Instance
	horizon int
	opts    qp.Options
	state   State
	// warm carries the previous step's QP iterates; each MPC step seeds
	// its solve from the prior plan shifted by one period, which cuts
	// interior-point iterations across the closed loop.
	warm *HorizonWarm
	// degrade enables the degradation ladder (default true); shedPenalty
	// prices shed demand in the soft rung (≤ 0 means DefaultShedPenalty).
	degrade     bool
	shedPenalty float64
	// budget, when positive, is the wall-clock allowance per StepCtx: the
	// hard solve runs under a deadline and returns its best iterate when
	// it fires (the anytime rung), fallback rungs divide what remains, and
	// a slice is always reserved for the hold rung so the ladder itself
	// cannot overrun. missStreak counts consecutive deadline misses and
	// exponentially shrinks the hard solve's share, so a persistently slow
	// solver escalates to cheaper rungs earlier instead of burning the
	// whole budget every period. stall is test-injected solver latency
	// (the faults package's stall fault), slept before the solve begins.
	budget     time.Duration
	missStreak int
	stall      time.Duration
	// lastDuals retains the horizon-summed capacity dual prices of the
	// last executed step's plan — the explain surface (see LastExplain).
	// One buffer, refreshed per step; nil until the first step.
	lastDuals []float64
	// tel, when non-nil, receives an mpc_step span per StepCtx and wires
	// the QP solver's counters through opts.Hooks.
	tel *telemetry.Hub
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithQPOptions overrides the interior-point solver settings.
func WithQPOptions(opts qp.Options) ControllerOption {
	return func(c *Controller) { c.opts = opts }
}

// WithInitialState sets the starting allocation (default: all zeros).
func WithInitialState(s State) ControllerOption {
	return func(c *Controller) { c.state = s.Clone() }
}

// WithDegradation enables or disables the graceful-degradation ladder
// (enabled by default). Disabled, Step returns solver errors to the caller
// exactly as the underlying solve reported them.
func WithDegradation(enabled bool) ControllerOption {
	return func(c *Controller) { c.degrade = enabled }
}

// WithShedPenalty overrides the linear penalty per unit of shed demand
// used by the soft-relaxation rung (default DefaultShedPenalty).
func WithShedPenalty(penalty float64) ControllerOption {
	return func(c *Controller) { c.shedPenalty = penalty }
}

// WithBudget sets the per-step wall-clock budget, enabling deadline-
// bounded (anytime) solving: each StepCtx must produce a plan within
// roughly this allowance, degrading through the ladder — best-iterate-at-
// deadline, then soft relaxation, then hold — rather than overrunning.
// An eighth of the budget is reserved for the hold rung; consecutive
// deadline misses exponentially shrink the hard solve's share (backoff)
// until a solve completes cleanly again. Zero or negative disables
// budgeting. Requires the degradation ladder (the default); with
// WithDegradation(false) the budget is ignored.
func WithBudget(d time.Duration) ControllerOption {
	return func(c *Controller) { c.budget = d }
}

// WithTelemetry attaches a telemetry hub: every StepCtx emits an
// mpc_step span (carrying the degradation outcome) and the underlying QP
// solves report their iteration/factorization counters through the hub.
// A nil hub leaves telemetry disabled.
func WithTelemetry(h *telemetry.Hub) ControllerOption {
	return func(c *Controller) { c.tel = h }
}

// NewController creates an MPC controller with prediction horizon W ≥ 1.
func NewController(inst *Instance, horizon int, opts ...ControllerOption) (*Controller, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadInput)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadInput)
	}
	c := &Controller{
		inst:    inst,
		horizon: horizon,
		opts:    qp.DefaultOptions(),
		state:   inst.NewState(),
		degrade: true,
	}
	for _, o := range opts {
		o(c)
	}
	if c.tel != nil {
		c.opts.Hooks = c.tel.QPHooks()
	}
	if err := inst.CheckState(c.state); err != nil {
		return nil, err
	}
	return c, nil
}

// Instance returns the controlled DSPP instance.
func (c *Controller) Instance() *Instance { return c.inst }

// Horizon returns the prediction window W.
func (c *Controller) Horizon() int { return c.horizon }

// State returns a copy of the current allocation.
func (c *Controller) State() State { return c.state.Clone() }

// SetState overwrites the current allocation (e.g. after external scaling).
func (c *Controller) SetState(s State) error {
	if err := c.inst.CheckState(s); err != nil {
		return err
	}
	c.state = s.Clone()
	// The previous plan was computed for a different trajectory; drop it
	// rather than warm-start from a stale point.
	c.warm = nil
	return nil
}

// SetStall injects artificial solver latency: every subsequent StepCtx
// sleeps d before its solve begins, consuming step budget exactly as a
// slow factorization would. Zero clears the stall. This is the plumbing
// the simulator's `stall` fault uses to exercise the deadline paths
// deterministically.
func (c *Controller) SetStall(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.stall = d
}

// Budget returns the per-step wall-clock budget (zero when unbudgeted).
func (c *Controller) Budget() time.Duration { return c.budget }

// WarmCapsule returns the warm-start capsule from the last successful
// step (nil before the first solve or after SetState). Together with
// RestoreWarm it lets a long-running process checkpoint the controller:
// a controller rebuilt from the same state and capsule continues with
// bit-identical solves.
func (c *Controller) WarmCapsule() *HorizonWarm { return c.warm }

// RestoreWarm installs a warm-start capsule (typically from a
// checkpoint's WarmState via ImportWarm). Call it after SetState, which
// clears the capsule. A nil or shape-mismatched capsule simply cold-
// starts the next solve.
func (c *Controller) RestoreWarm(w *HorizonWarm) { c.warm = w }

// RestoreMissStreak overwrites the consecutive-deadline-miss counter,
// re-arming the anytime backoff exactly where a checkpoint left it.
func (c *Controller) RestoreMissStreak(n int) {
	if n < 0 {
		n = 0
	}
	c.missStreak = n
}

// MissStreak returns the current run of consecutive deadline misses; it
// resets to zero whenever a hard solve completes inside its share.
func (c *Controller) MissStreak() int { return c.missStreak }

// StepResult reports one executed MPC step.
type StepResult struct {
	// Applied is the executed control u_{k|k} (the plan's first step).
	Applied State
	// NewState is the allocation after applying the control.
	NewState State
	// Plan is the full horizon solution (U[0] == Applied).
	Plan *Plan
	// Degradation records how the plan was produced: DegradeNone for a
	// clean solve, otherwise the ladder rung used plus retry counts and
	// violation mass. Experiments chart it to measure robustness.
	Degradation Degradation
}

// Step executes one period of Algorithm 1: solve the horizon QP for the
// forecasts and apply the first control. Demand[t][v] and Prices[t][l]
// must cover t = 0..W−1 (forecasts for the next W periods); shorter
// forecasts are an error, longer ones are truncated to W.
func (c *Controller) Step(demand, prices [][]float64) (*StepResult, error) {
	return c.StepCtx(context.Background(), demand, prices)
}

// StepCtx is Step with cooperative cancellation and the graceful-
// degradation ladder. When a solve fails and degradation is enabled
// (the default) the controller walks down the ladder instead of erroring:
//
//  1. warm-started hard QP (cold-restarted once on numerical failure);
//  2. anytime — with a WithBudget allowance, a hard solve that hits its
//     share of the budget returns its best interior-point iterate,
//     projected onto capacity so the plan is implementable (only under a
//     budget; without one a deadline never fires from inside the step);
//  3. soft-constrained relaxation — capacity stays hard, demand gains
//     penalized slack, so the step reports shed demand instead of failing
//     when the surviving capacity cannot carry the load;
//  4. hold-last-plan — the current allocation projected onto the
//     surviving capacity, with zero further movement. Under a budget a
//     reserved slice of the allowance belongs to this rung, so the
//     ladder as a whole cannot overrun.
//
// Input-validation errors (ErrBadInput) and context cancellation always
// propagate: the ladder only absorbs solver-level failures (infeasibility,
// numerical breakdown, iteration exhaustion). The returned StepResult's
// Degradation field says which rung produced the plan.
func (c *Controller) StepCtx(ctx context.Context, demand, prices [][]float64) (*StepResult, error) {
	if c.tel == nil {
		return c.stepCtx(ctx, demand, prices)
	}
	sp := c.tel.Tracer().Start(telemetry.SpanMPCStep, telemetry.SpanIDFromContext(ctx))
	res, err := c.stepCtx(telemetry.ContextWithSpan(ctx, sp), demand, prices)
	if res != nil {
		d := res.Degradation
		sp.SetAttr(
			telemetry.Str("mode", d.Mode.String()),
			telemetry.Num("cold_restarts", float64(d.ColdRestarts)),
			telemetry.Num("shed", d.ShedDemand),
			telemetry.Num("qp_iterations", float64(res.Plan.QPIterations)),
		)
	} else {
		sp.SetAttr(telemetry.Str("outcome", "error"))
	}
	sp.End()
	return res, err
}

// anytimeBackoffCap bounds the exponential backoff on consecutive
// deadline misses: past 2^4 the hard solve's share is small enough that
// further halving only adds noise.
const anytimeBackoffCap = 4

// holdFloorDiv is the fraction of the step budget reserved for the rungs
// below the hard solve (soft headroom plus the hold projection): budget/8.
const holdFloorDiv = 8

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (c *Controller) stepCtx(ctx context.Context, demand, prices [][]float64) (*StepResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("step: %w", err)
	}
	if len(demand) < c.horizon || len(prices) < c.horizon {
		return nil, fmt.Errorf("forecasts cover %d/%d periods, horizon %d: %w",
			len(demand), len(prices), c.horizon, ErrBadInput)
	}
	// The budget clock starts before the injected stall: the stall models
	// solver latency, so it consumes the step's allowance like real work.
	budgeted := c.degrade && c.budget > 0
	var stepStart time.Time
	var holdFloor time.Duration
	if budgeted {
		stepStart = time.Now()
		holdFloor = c.budget / holdFloorDiv
	}
	if c.stall > 0 {
		sleepCtx(ctx, c.stall)
	}
	input := HorizonInput{
		X0:        c.state,
		Demand:    demand[:c.horizon],
		Prices:    prices[:c.horizon],
		Warm:      c.warm,
		WarmShift: 1,
	}
	var deg Degradation
	opts := c.opts
	solveCtx := ctx
	skipHard := false
	if budgeted {
		avail := c.budget - holdFloor - time.Since(stepStart)
		boff := c.missStreak
		if boff > anytimeBackoffCap {
			boff = anytimeBackoffCap
		}
		hardBudget := avail / (1 << uint(boff))
		if hardBudget > 0 {
			opts.Anytime = true
			var cancel context.CancelFunc
			solveCtx, cancel = context.WithTimeout(ctx, hardBudget)
			defer cancel()
		} else {
			// The stall (or backoff) consumed the whole solving share
			// before the hard rung could start: count the miss and drop
			// straight down the ladder.
			skipHard = true
		}
	}
	var plan *Plan
	var err error
	if skipHard {
		err = fmt.Errorf("step budget %v exhausted before the hard solve: %w", c.budget, context.DeadlineExceeded)
		c.missStreak++
	} else {
		plan, err = c.inst.SolveHorizonCtx(solveCtx, input, opts)
	}
	if err == nil && plan.ColdRestarts > 0 {
		deg.Mode = DegradeColdRestart
		deg.ColdRestarts = plan.ColdRestarts
	}
	if err != nil {
		// Anytime rung: the hard solve's deadline fired and it handed back
		// its best iterate. Project it onto capacity and apply it — the
		// plan optimizes the true objective, it is just not converged.
		if budgeted && plan != nil && errors.Is(err, qp.ErrDeadline) && ctx.Err() == nil {
			c.missStreak++
			deg.Mode = DegradeAnytime
			deg.ColdRestarts = plan.ColdRestarts
			deg.Cause = err.Error()
			if plan.Anytime != nil {
				deg.AnytimeIterations = plan.Anytime.Iterations
			}
			deg.CapacityTrim = c.inst.projectPlanCapacity(plan, c.state, input.Prices)
		} else {
			if !c.degrade || errors.Is(err, ErrBadInput) || ctx.Err() != nil {
				return nil, err
			}
			deg.Cause = err.Error()
			input.Warm, input.WarmShift = nil, 0
			softCtx := ctx
			skipSoft := false
			if budgeted {
				// The soft rung gets whatever remains above the hold floor.
				remain := c.budget - holdFloor - time.Since(stepStart)
				if remain > 0 {
					var softCancel context.CancelFunc
					softCtx, softCancel = context.WithTimeout(ctx, remain)
					defer softCancel()
				} else {
					skipSoft = true
				}
			}
			var soft *Plan
			softErr := context.DeadlineExceeded
			if !skipSoft {
				soft, softErr = c.inst.SolveHorizonSoftCtx(softCtx, input, c.opts, c.shedPenalty)
			}
			switch {
			case softErr == nil:
				deg.Mode = DegradeSoft
				plan = soft
				for _, s := range soft.Shed[0] {
					deg.ShedDemand += s
				}
				deg.HorizonShed = soft.TotalShed()
			case ctx.Err() != nil:
				return nil, softErr
			default:
				// Last rung: hold the current allocation, projected onto the
				// surviving capacity. Never fails, and under a budget its
				// reserved floor guarantees the ladder finishes in time.
				deg.Mode = DegradeHold
				plan, deg.CapacityTrim = c.inst.holdPlan(c.state, input.Prices)
			}
		}
	} else if budgeted {
		// A clean in-budget hard solve ends the miss streak: the backoff
		// exists to tame a persistently slow solver, not to punish one
		// recovered from a transient stall.
		c.missStreak = 0
	}
	c.warm = plan.Warm
	c.state = plan.X[0].Clone()
	if c.lastDuals == nil {
		c.lastDuals = make([]float64, c.inst.l)
	}
	plan.TotalCapacityDualsInto(c.lastDuals)
	return &StepResult{
		Applied:     plan.U[0],
		NewState:    plan.X[0],
		Plan:        plan,
		Degradation: deg,
	}, nil
}

package core

import (
	"context"
	"errors"
	"fmt"

	"dspp/internal/qp"
	"dspp/internal/telemetry"
)

// Controller is the paper's MPC resource controller (Algorithm 1): at each
// control period it solves the horizon QP from the current state and
// applies only the first control action.
//
// By default the controller degrades gracefully instead of erroring when a
// solve fails (see StepCtx); WithDegradation(false) restores the strict
// fail-fast behaviour.
type Controller struct {
	inst    *Instance
	horizon int
	opts    qp.Options
	state   State
	// warm carries the previous step's QP iterates; each MPC step seeds
	// its solve from the prior plan shifted by one period, which cuts
	// interior-point iterations across the closed loop.
	warm *HorizonWarm
	// degrade enables the degradation ladder (default true); shedPenalty
	// prices shed demand in the soft rung (≤ 0 means DefaultShedPenalty).
	degrade     bool
	shedPenalty float64
	// tel, when non-nil, receives an mpc_step span per StepCtx and wires
	// the QP solver's counters through opts.Hooks.
	tel *telemetry.Hub
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithQPOptions overrides the interior-point solver settings.
func WithQPOptions(opts qp.Options) ControllerOption {
	return func(c *Controller) { c.opts = opts }
}

// WithInitialState sets the starting allocation (default: all zeros).
func WithInitialState(s State) ControllerOption {
	return func(c *Controller) { c.state = s.Clone() }
}

// WithDegradation enables or disables the graceful-degradation ladder
// (enabled by default). Disabled, Step returns solver errors to the caller
// exactly as the underlying solve reported them.
func WithDegradation(enabled bool) ControllerOption {
	return func(c *Controller) { c.degrade = enabled }
}

// WithShedPenalty overrides the linear penalty per unit of shed demand
// used by the soft-relaxation rung (default DefaultShedPenalty).
func WithShedPenalty(penalty float64) ControllerOption {
	return func(c *Controller) { c.shedPenalty = penalty }
}

// WithTelemetry attaches a telemetry hub: every StepCtx emits an
// mpc_step span (carrying the degradation outcome) and the underlying QP
// solves report their iteration/factorization counters through the hub.
// A nil hub leaves telemetry disabled.
func WithTelemetry(h *telemetry.Hub) ControllerOption {
	return func(c *Controller) { c.tel = h }
}

// NewController creates an MPC controller with prediction horizon W ≥ 1.
func NewController(inst *Instance, horizon int, opts ...ControllerOption) (*Controller, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadInput)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadInput)
	}
	c := &Controller{
		inst:    inst,
		horizon: horizon,
		opts:    qp.DefaultOptions(),
		state:   inst.NewState(),
		degrade: true,
	}
	for _, o := range opts {
		o(c)
	}
	if c.tel != nil {
		c.opts.Hooks = c.tel.QPHooks()
	}
	if err := inst.CheckState(c.state); err != nil {
		return nil, err
	}
	return c, nil
}

// Instance returns the controlled DSPP instance.
func (c *Controller) Instance() *Instance { return c.inst }

// Horizon returns the prediction window W.
func (c *Controller) Horizon() int { return c.horizon }

// State returns a copy of the current allocation.
func (c *Controller) State() State { return c.state.Clone() }

// SetState overwrites the current allocation (e.g. after external scaling).
func (c *Controller) SetState(s State) error {
	if err := c.inst.CheckState(s); err != nil {
		return err
	}
	c.state = s.Clone()
	// The previous plan was computed for a different trajectory; drop it
	// rather than warm-start from a stale point.
	c.warm = nil
	return nil
}

// StepResult reports one executed MPC step.
type StepResult struct {
	// Applied is the executed control u_{k|k} (the plan's first step).
	Applied State
	// NewState is the allocation after applying the control.
	NewState State
	// Plan is the full horizon solution (U[0] == Applied).
	Plan *Plan
	// Degradation records how the plan was produced: DegradeNone for a
	// clean solve, otherwise the ladder rung used plus retry counts and
	// violation mass. Experiments chart it to measure robustness.
	Degradation Degradation
}

// Step executes one period of Algorithm 1: solve the horizon QP for the
// forecasts and apply the first control. Demand[t][v] and Prices[t][l]
// must cover t = 0..W−1 (forecasts for the next W periods); shorter
// forecasts are an error, longer ones are truncated to W.
func (c *Controller) Step(demand, prices [][]float64) (*StepResult, error) {
	return c.StepCtx(context.Background(), demand, prices)
}

// StepCtx is Step with cooperative cancellation and the graceful-
// degradation ladder. When a solve fails and degradation is enabled
// (the default) the controller walks down the ladder instead of erroring:
//
//  1. warm-started hard QP (cold-restarted once on numerical failure);
//  2. soft-constrained relaxation — capacity stays hard, demand gains
//     penalized slack, so the step reports shed demand instead of failing
//     when the surviving capacity cannot carry the load;
//  3. hold-last-plan — the current allocation projected onto the
//     surviving capacity, with zero further movement.
//
// Input-validation errors (ErrBadInput) and context cancellation always
// propagate: the ladder only absorbs solver-level failures (infeasibility,
// numerical breakdown, iteration exhaustion). The returned StepResult's
// Degradation field says which rung produced the plan.
func (c *Controller) StepCtx(ctx context.Context, demand, prices [][]float64) (*StepResult, error) {
	if c.tel == nil {
		return c.stepCtx(ctx, demand, prices)
	}
	sp := c.tel.Tracer().Start(telemetry.SpanMPCStep, telemetry.SpanIDFromContext(ctx))
	res, err := c.stepCtx(telemetry.ContextWithSpan(ctx, sp), demand, prices)
	if res != nil {
		d := res.Degradation
		sp.SetAttr(
			telemetry.Str("mode", d.Mode.String()),
			telemetry.Num("cold_restarts", float64(d.ColdRestarts)),
			telemetry.Num("shed", d.ShedDemand),
			telemetry.Num("qp_iterations", float64(res.Plan.QPIterations)),
		)
	} else {
		sp.SetAttr(telemetry.Str("outcome", "error"))
	}
	sp.End()
	return res, err
}

func (c *Controller) stepCtx(ctx context.Context, demand, prices [][]float64) (*StepResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("step: %w", err)
	}
	if len(demand) < c.horizon || len(prices) < c.horizon {
		return nil, fmt.Errorf("forecasts cover %d/%d periods, horizon %d: %w",
			len(demand), len(prices), c.horizon, ErrBadInput)
	}
	input := HorizonInput{
		X0:        c.state,
		Demand:    demand[:c.horizon],
		Prices:    prices[:c.horizon],
		Warm:      c.warm,
		WarmShift: 1,
	}
	var deg Degradation
	plan, err := c.inst.SolveHorizonCtx(ctx, input, c.opts)
	if err == nil && plan.ColdRestarts > 0 {
		deg.Mode = DegradeColdRestart
		deg.ColdRestarts = plan.ColdRestarts
	}
	if err != nil {
		if !c.degrade || errors.Is(err, ErrBadInput) || ctx.Err() != nil {
			return nil, err
		}
		deg.Cause = err.Error()
		input.Warm, input.WarmShift = nil, 0
		soft, softErr := c.inst.SolveHorizonSoftCtx(ctx, input, c.opts, c.shedPenalty)
		switch {
		case softErr == nil:
			deg.Mode = DegradeSoft
			plan = soft
			for _, s := range soft.Shed[0] {
				deg.ShedDemand += s
			}
			deg.HorizonShed = soft.TotalShed()
		case ctx.Err() != nil:
			return nil, softErr
		default:
			// Last rung: hold the current allocation, projected onto the
			// surviving capacity. Never fails.
			deg.Mode = DegradeHold
			plan, deg.CapacityTrim = c.inst.holdPlan(c.state, input.Prices)
		}
	}
	c.warm = plan.Warm
	c.state = plan.X[0].Clone()
	return &StepResult{
		Applied:     plan.U[0],
		NewState:    plan.X[0],
		Plan:        plan,
		Degradation: deg,
	}, nil
}

package core

import (
	"fmt"

	"dspp/internal/qp"
)

// Controller is the paper's MPC resource controller (Algorithm 1): at each
// control period it solves the horizon QP from the current state and
// applies only the first control action.
type Controller struct {
	inst    *Instance
	horizon int
	opts    qp.Options
	state   State
	// warm carries the previous step's QP iterates; each MPC step seeds
	// its solve from the prior plan shifted by one period, which cuts
	// interior-point iterations across the closed loop.
	warm *HorizonWarm
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithQPOptions overrides the interior-point solver settings.
func WithQPOptions(opts qp.Options) ControllerOption {
	return func(c *Controller) { c.opts = opts }
}

// WithInitialState sets the starting allocation (default: all zeros).
func WithInitialState(s State) ControllerOption {
	return func(c *Controller) { c.state = s.Clone() }
}

// NewController creates an MPC controller with prediction horizon W ≥ 1.
func NewController(inst *Instance, horizon int, opts ...ControllerOption) (*Controller, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadInput)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadInput)
	}
	c := &Controller{
		inst:    inst,
		horizon: horizon,
		opts:    qp.DefaultOptions(),
		state:   inst.NewState(),
	}
	for _, o := range opts {
		o(c)
	}
	if err := inst.CheckState(c.state); err != nil {
		return nil, err
	}
	return c, nil
}

// Instance returns the controlled DSPP instance.
func (c *Controller) Instance() *Instance { return c.inst }

// Horizon returns the prediction window W.
func (c *Controller) Horizon() int { return c.horizon }

// State returns a copy of the current allocation.
func (c *Controller) State() State { return c.state.Clone() }

// SetState overwrites the current allocation (e.g. after external scaling).
func (c *Controller) SetState(s State) error {
	if err := c.inst.CheckState(s); err != nil {
		return err
	}
	c.state = s.Clone()
	// The previous plan was computed for a different trajectory; drop it
	// rather than warm-start from a stale point.
	c.warm = nil
	return nil
}

// StepResult reports one executed MPC step.
type StepResult struct {
	// Applied is the executed control u_{k|k} (the plan's first step).
	Applied State
	// NewState is the allocation after applying the control.
	NewState State
	// Plan is the full horizon solution (U[0] == Applied).
	Plan *Plan
}

// Step executes one period of Algorithm 1: solve the horizon QP for the
// forecasts and apply the first control. Demand[t][v] and Prices[t][l]
// must cover t = 0..W−1 (forecasts for the next W periods); shorter
// forecasts are an error, longer ones are truncated to W.
func (c *Controller) Step(demand, prices [][]float64) (*StepResult, error) {
	if len(demand) < c.horizon || len(prices) < c.horizon {
		return nil, fmt.Errorf("forecasts cover %d/%d periods, horizon %d: %w",
			len(demand), len(prices), c.horizon, ErrBadInput)
	}
	plan, err := c.inst.SolveHorizon(HorizonInput{
		X0:        c.state,
		Demand:    demand[:c.horizon],
		Prices:    prices[:c.horizon],
		Warm:      c.warm,
		WarmShift: 1,
	}, c.opts)
	if err != nil {
		return nil, err
	}
	c.warm = plan.Warm
	c.state = plan.X[0].Clone()
	return &StepResult{
		Applied:  plan.U[0],
		NewState: plan.X[0],
		Plan:     plan,
	}, nil
}

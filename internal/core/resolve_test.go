package core

import (
	"context"
	"math"
	"testing"
	"time"

	"dspp/internal/qp"
)

// TestResolveCapacitiesMatchesFullSolve pins the capacity fast path's
// accuracy: after a full solve, each ResolveCapacitiesCtx under drifted
// capacities must agree with a cold one-shot solve of a twin instance at
// the same capacities to (far better than) 1e-6 relative — with the
// rank-k session option on and off, since the perturbation algebra is
// the same and only the factorization update strategy differs.
func TestResolveCapacitiesMatchesFullSolve(t *testing.T) {
	const l, v, w = 3, 5, 4
	for _, rankK := range []bool{true, false} {
		instSes := sessionTestInstance(t, l, v)
		instOne := sessionTestInstance(t, l, v)
		ses, err := instSes.NewHorizonSessionOpts(w, qp.DefaultOptions(), qp.SessionOptions{RankK: rankK})
		if err != nil {
			t.Fatal(err)
		}
		input := sessionTestInput(instSes, l, v, w)
		inputOne := sessionTestInput(instOne, l, v, w)
		if _, err := ses.Solve(input); err != nil {
			t.Fatal(err)
		}
		if !ses.CanResolveCapacities() {
			t.Fatal("standing solve not armed after a successful SolveCtx")
		}
		caps := make([]float64, l)
		for i := range caps {
			caps[i] = 40000 + 5000*float64(i)
		}
		for round := 1; round <= 6; round++ {
			// Alternate shrinks and grows on one DC per round — the shape a
			// quota transfer produces, and few enough perturbed rows for the
			// rank-k work gate to accept the update on this small problem.
			i := round % l
			caps[i] = (40000 + 5000*float64(i)) * (1 + 0.02*float64(1-2*(round%2)))
			if err := instSes.SetCapacities(caps); err != nil {
				t.Fatal(err)
			}
			if err := instOne.SetCapacities(caps); err != nil {
				t.Fatal(err)
			}
			fast, err := ses.ResolveCapacitiesCtx(context.Background())
			if err != nil {
				t.Fatalf("rankK=%t round %d: %v", rankK, round, err)
			}
			full, err := instOne.SolveHorizonCtx(nil, inputOne, qp.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			gap := math.Abs(fast.Objective-full.Objective) / math.Abs(full.Objective)
			if gap > 1e-6 {
				t.Fatalf("rankK=%t round %d: fast-path objective gap %.2e > 1e-6", rankK, round, gap)
			}
			for ti := range fast.X {
				for i := range fast.X[ti] {
					var tot float64
					for _, x := range fast.X[ti][i] {
						tot += x
					}
					if tot > caps[i]*(1+1e-9) {
						t.Fatalf("rankK=%t round %d: step %d DC %d over capacity: %g > %g",
							rankK, round, ti, i, tot, caps[i])
					}
				}
			}
			if !ses.CanResolveCapacities() {
				t.Fatalf("rankK=%t round %d: successful resolve disarmed the standing solve", rankK, round)
			}
		}
		if rankK {
			if st := ses.Stats(); st.RankKUpdates == 0 {
				t.Fatalf("rank-k session reported no rank-k updates (stats %+v)", st)
			}
		}
	}
}

// TestResolveCapacitiesGate pins the fast path's arming contract: no
// standing solve means ErrBadInput, a failed resolve disarms, and a
// fresh full solve re-arms.
func TestResolveCapacitiesGate(t *testing.T) {
	const l, v, w = 2, 3, 3
	inst := sessionTestInstance(t, l, v)
	ses, err := inst.NewHorizonSessionOpts(w, qp.DefaultOptions(), qp.SessionOptions{RankK: true})
	if err != nil {
		t.Fatal(err)
	}
	if ses.CanResolveCapacities() {
		t.Fatal("fresh session claims a standing solve")
	}
	if _, err := ses.ResolveCapacitiesCtx(context.Background()); err == nil {
		t.Fatal("resolve without a standing solve must fail")
	}
	input := sessionTestInput(inst, l, v, w)
	if _, err := ses.Solve(input); err != nil {
		t.Fatal(err)
	}
	caps := []float64{41000, 44000}
	if err := inst.SetCapacities(caps); err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline kills the continuation: the standing
	// solve must be disarmed so the caller falls back to a full solve.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ses.ResolveCapacitiesCtx(ctx); err == nil {
		t.Fatal("resolve under an expired deadline must fail")
	}
	if ses.CanResolveCapacities() {
		t.Fatal("failed resolve left the standing solve armed")
	}
	// The fallback path: a full solve at the current capacities re-arms.
	if _, err := ses.Solve(input); err != nil {
		t.Fatal(err)
	}
	if !ses.CanResolveCapacities() {
		t.Fatal("full solve did not re-arm the fast path")
	}
	if _, err := ses.ResolveCapacitiesCtx(context.Background()); err != nil {
		t.Fatalf("no-op resolve after re-arm: %v", err)
	}
}

//go:build race

package core

// raceDetectorEnabled reports whether this test binary was built with
// -race. Exact allocation-count assertions are skipped under the race
// detector: its shadow-memory bookkeeping allocates nondeterministically
// and pollutes testing.AllocsPerRun.
const raceDetectorEnabled = true

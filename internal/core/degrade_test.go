package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"dspp/internal/qp"
)

// overloadForecasts returns demand far above a 10-server DC's ceiling so
// the hard horizon QP is infeasible.
func overloadForecasts(w int) (demand, prices [][]float64) {
	return constForecast(w, []float64{5000}), constForecast(w, []float64{0.1})
}

func TestSolveHorizonSoftFeasibleMatchesHard(t *testing.T) {
	inst := singleDC(t, 1e-3, 100)
	input := HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(3, []float64{1000}),
		Prices: constForecast(3, []float64{0.1}),
	}
	hard, err := inst.SolveHorizon(input, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	soft, err := inst.SolveHorizonSoft(input, qp.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if shed := soft.TotalShed(); shed > 1e-6 {
		t.Errorf("feasible problem shed %g", shed)
	}
	if math.Abs(soft.Objective-hard.Objective) > 1e-3*(1+math.Abs(hard.Objective)) {
		t.Errorf("soft objective %g vs hard %g", soft.Objective, hard.Objective)
	}
	for tt := range soft.X {
		if d := math.Abs(soft.X[tt][0][0] - hard.X[tt][0][0]); d > 1e-3*(1+hard.X[tt][0][0]) {
			t.Errorf("step %d: soft state %g vs hard %g", tt, soft.X[tt][0][0], hard.X[tt][0][0])
		}
	}
	if soft.Warm != nil {
		t.Error("soft plan must not carry a hard-layout warm capsule")
	}
}

func TestSolveHorizonSoftShedsWhenOverloaded(t *testing.T) {
	inst := singleDC(t, 1e-3, 10) // a = 0.01 → ceiling 1000 req/s
	demand, prices := overloadForecasts(3)
	input := HorizonInput{X0: inst.NewState(), Demand: demand, Prices: prices}
	if _, err := inst.SolveHorizon(input, qp.DefaultOptions()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("hard solve err = %v, want ErrInfeasible", err)
	}
	soft, err := inst.SolveHorizonSoft(input, qp.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity stays hard; the 4000 req/s beyond the ceiling is shed.
	for tt := range soft.X {
		if x := soft.X[tt][0][0]; x > 10+1e-6 {
			t.Errorf("step %d: %g servers beyond capacity", tt, x)
		}
		if s := soft.Shed[tt][0]; math.Abs(s-4000) > 40 {
			t.Errorf("step %d: shed %g, want ≈4000", tt, s)
		}
	}
	if total := soft.TotalShed(); math.Abs(total-12000) > 120 {
		t.Errorf("TotalShed = %g, want ≈12000", total)
	}
}

func TestStepSoftDegradation(t *testing.T) {
	inst := singleDC(t, 1e-3, 10)
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	demand, prices := overloadForecasts(3)
	res, err := c.Step(demand, prices)
	if err != nil {
		t.Fatalf("degrading controller errored: %v", err)
	}
	deg := res.Degradation
	if deg.Mode != DegradeSoft || !deg.Degraded() {
		t.Fatalf("mode = %v, want soft", deg.Mode)
	}
	if deg.ShedDemand < 3500 || deg.HorizonShed < 3*3500 {
		t.Errorf("shed = %g (horizon %g), want ≈4000/12000", deg.ShedDemand, deg.HorizonShed)
	}
	if deg.Cause == "" {
		t.Error("degradation cause not recorded")
	}
	if res.NewState[0][0] > 10+1e-6 {
		t.Errorf("degraded state %g beyond capacity", res.NewState[0][0])
	}
	// A later feasible step must return to the clean path.
	res2, err := c.Step(constForecast(3, []float64{500}), constForecast(3, []float64{0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degradation.Degraded() {
		t.Errorf("feasible follow-up step degraded: %v", res2.Degradation)
	}
}

func TestStepDegradationDisabled(t *testing.T) {
	inst := singleDC(t, 1e-3, 10)
	c, err := NewController(inst, 3, WithDegradation(false))
	if err != nil {
		t.Fatal(err)
	}
	demand, prices := overloadForecasts(3)
	if _, err := c.Step(demand, prices); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("strict controller err = %v, want ErrInfeasible", err)
	}
}

func TestStepHoldRungWhenSoftFails(t *testing.T) {
	// A NaN shed penalty makes the soft rung fail validation, pushing the
	// ladder to its last rung: hold the allocation, projected onto the
	// surviving capacity.
	inst := singleDC(t, 1e-3, 10)
	init := inst.NewState()
	init[0][0] = 8
	c, err := NewController(inst, 3, WithInitialState(init), WithShedPenalty(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	demand, prices := overloadForecasts(3)
	res, err := c.Step(demand, prices)
	if err != nil {
		t.Fatalf("hold rung errored: %v", err)
	}
	if res.Degradation.Mode != DegradeHold {
		t.Fatalf("mode = %v, want hold", res.Degradation.Mode)
	}
	if res.NewState[0][0] != 8 {
		t.Errorf("hold moved the state to %g", res.NewState[0][0])
	}
}

func TestHoldProjection(t *testing.T) {
	inst := twoByTwo(t) // capacities 100, 100
	s := inst.NewState()
	s[0][0], s[0][1] = 150, 50 // DC 0 at 200: over by 100
	s[1][0] = 30
	next, trimmed := inst.holdProjection(s)
	if math.Abs(trimmed-100) > 1e-9 {
		t.Errorf("trimmed = %g, want 100", trimmed)
	}
	if math.Abs(next[0][0]-75) > 1e-9 || math.Abs(next[0][1]-25) > 1e-9 {
		t.Errorf("DC 0 projected to %v, want proportional 75/25", next[0])
	}
	if next[1][0] != 30 {
		t.Errorf("within-capacity DC rescaled: %v", next[1])
	}
}

func TestStepBadInputBypassesLadder(t *testing.T) {
	inst := singleDC(t, 1e-3, 10)
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Forecast shorter than the horizon: a caller bug, never degraded
	// around.
	if _, err := c.Step(constForecast(2, []float64{1}), constForecast(2, []float64{1})); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short forecast err = %v, want ErrBadInput", err)
	}
}

func TestStepCtxCancelledPropagates(t *testing.T) {
	inst := singleDC(t, 1e-3, 10)
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	demand, prices := overloadForecasts(3)
	if _, err := c.StepCtx(ctx, demand, prices); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled step err = %v, want context.Canceled", err)
	}
}

func TestColdRestartRecovery(t *testing.T) {
	inst := singleDC(t, 1e-3, 100)
	input := HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(3, []float64{1000}),
		Prices: constForecast(3, []float64{0.1}),
	}
	plan, err := inst.SolveHorizon(input, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.ColdRestarts != 0 {
		t.Fatalf("clean solve reported %d cold restarts", plan.ColdRestarts)
	}
	// Poison the warm capsule: a NaN primal guess breaks the first solve
	// numerically, and the cold retry must recover transparently.
	for i := range plan.Warm.y {
		plan.Warm.y[i] = math.NaN()
	}
	input.Warm, input.WarmShift = plan.Warm, 0
	plan2, err := inst.SolveHorizon(input, qp.DefaultOptions())
	if err != nil {
		t.Fatalf("poisoned warm start not recovered: %v", err)
	}
	if plan2.ColdRestarts != 1 {
		t.Errorf("ColdRestarts = %d, want 1", plan2.ColdRestarts)
	}
	if math.Abs(plan2.Objective-plan.Objective) > 1e-6*(1+math.Abs(plan.Objective)) {
		t.Errorf("recovered objective %g vs clean %g", plan2.Objective, plan.Objective)
	}
}

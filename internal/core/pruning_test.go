package core

import (
	"math"
	"testing"

	"dspp/internal/qp"
)

// diagonalConfig builds an L×L config where location v is served by DC v
// and DC (v+1) mod L; every other pair gets offDiag as its SLA coefficient
// (math.Inf(1) prunes the pair, a huge finite value keeps it in the QP as
// an economically useless route).
func diagonalConfig(l int, offDiag float64) Config {
	sla := make([][]float64, l)
	weights := make([]float64, l)
	caps := make([]float64, l)
	for i := 0; i < l; i++ {
		sla[i] = make([]float64, l)
		for j := 0; j < l; j++ {
			sla[i][j] = offDiag
		}
		weights[i] = 1e-4
		caps[i] = 400
	}
	for v := 0; v < l; v++ {
		sla[v][v] = 0.01
		sla[(v+1)%l][v] = 0.012
	}
	return Config{SLA: sla, ReconfigWeights: weights, Capacities: caps}
}

// TestPrunedIdenticalWithZeroPruning checks the degenerate end of the
// pruning rule: adding a data center whose every pair is SLA-infeasible
// (and which is uncapacitated, so it contributes no constraint rows) must
// leave the horizon QP bit-identical — same pair count, same objective,
// same allocations — because the pruned construction never materializes
// the phantom DC's variables.
func TestPrunedIdenticalWithZeroPruning(t *testing.T) {
	base := Config{
		SLA:             [][]float64{{0.01, 0.02}, {0.015, 0.01}},
		ReconfigWeights: []float64{1e-4, 2e-4},
		Capacities:      []float64{300, math.Inf(1)},
	}
	padded := Config{
		SLA:             [][]float64{{0.01, 0.02}, {0.015, 0.01}, {math.Inf(1), math.Inf(1)}},
		ReconfigWeights: []float64{1e-4, 2e-4, 1e-4},
		Capacities:      []float64{300, math.Inf(1), math.Inf(1)},
	}
	instA, err := NewInstance(base)
	if err != nil {
		t.Fatal(err)
	}
	instB, err := NewInstance(padded)
	if err != nil {
		t.Fatal(err)
	}
	if instA.NumPairs() != instB.NumPairs() {
		t.Fatalf("pair counts differ: %d vs %d", instA.NumPairs(), instB.NumPairs())
	}
	if st := instB.Support(); st.PrunedPairs != 2 {
		t.Fatalf("padded instance pruned %d pairs, want 2", st.PrunedPairs)
	}

	demand := constForecast(4, []float64{900, 1100})
	planA, err := instA.SolveHorizon(HorizonInput{
		X0: instA.NewState(), Demand: demand,
		Prices: constForecast(4, []float64{0.05, 0.08}),
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	planB, err := instB.SolveHorizon(HorizonInput{
		X0: instB.NewState(), Demand: demand,
		Prices: constForecast(4, []float64{0.05, 0.08, 0.5}),
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if planA.Objective != planB.Objective {
		t.Errorf("objectives differ: %.17g vs %.17g", planA.Objective, planB.Objective)
	}
	for tt := range planA.X {
		for l := 0; l < 2; l++ {
			for v := 0; v < 2; v++ {
				if planA.X[tt][l][v] != planB.X[tt][l][v] {
					t.Errorf("X[%d][%d][%d]: %.17g vs %.17g",
						tt, l, v, planA.X[tt][l][v], planB.X[tt][l][v])
				}
			}
		}
		for v := 0; v < 2; v++ {
			if x := planB.X[tt][2][v]; x != 0 {
				t.Errorf("phantom DC holds %g servers at step %d", x, tt)
			}
		}
	}
}

// TestMostlyPrunedMatchesUnprunedSolve compares the pruned horizon QP
// against an explicitly unpruned construction of the same economics: the
// SLA-infeasible routes are materialized with an astronomically large
// coefficient (a^lv = 1e9 servers per req/s), so the unpruned QP carries
// all L·V variables but its optimum cannot afford the useless routes. The
// two solves must agree to solver precision while the pruned problem is a
// fraction of the size.
func TestMostlyPrunedMatchesUnprunedSolve(t *testing.T) {
	const l = 6
	pruned, err := NewInstance(diagonalConfig(l, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := NewInstance(diagonalConfig(l, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if st := pruned.Support(); st.PrunedFraction < 0.5 {
		t.Fatalf("pruned fraction %.2f, want a mostly-pruned instance", st.PrunedFraction)
	}
	if pruned.NumPairs() >= unpruned.NumPairs() {
		t.Fatalf("pruned QP not smaller: %d vs %d pairs", pruned.NumPairs(), unpruned.NumPairs())
	}

	perStep := make([]float64, l)
	prices := make([]float64, l)
	for v := 0; v < l; v++ {
		perStep[v] = 600 + 40*float64(v)
		prices[v] = 0.05 + 0.01*float64(v)
	}
	mk := func(in *Instance) (*Plan, error) {
		return in.SolveHorizon(HorizonInput{
			X0:     in.NewState(),
			Demand: constForecast(3, perStep),
			Prices: constForecast(3, prices),
		}, qp.DefaultOptions())
	}
	planP, err := mk(pruned)
	if err != nil {
		t.Fatal(err)
	}
	planU, err := mk(unpruned)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(planP.Objective - planU.Objective); d > 1e-6*(1+math.Abs(planU.Objective)) {
		t.Errorf("objectives differ by %.3g: pruned %.12g vs unpruned %.12g",
			d, planP.Objective, planU.Objective)
	}
	for tt := range planP.X {
		for li := 0; li < l; li++ {
			for v := 0; v < l; v++ {
				dp, du := planP.X[tt][li][v], planU.X[tt][li][v]
				if d := math.Abs(dp - du); d > 1e-4*(1+math.Abs(du)) {
					t.Errorf("X[%d][%d][%d]: pruned %.9g vs unpruned %.9g",
						tt, li, v, dp, du)
				}
			}
		}
	}
}

// TestSoftSolveOverPrunedSupport drives the degradation ladder's soft rung
// on a mostly-pruned instance whose surviving routes cannot carry the
// offered load: the relaxation must succeed over the pruned support, shed
// the overflow, and keep every SLA-infeasible pair at exactly zero.
func TestSoftSolveOverPrunedSupport(t *testing.T) {
	const l = 5
	inst, err := NewInstance(diagonalConfig(l, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Each DC holds 400 servers and each location sees two DCs with
	// a ≈ 0.01, so the per-location ceiling is ≈ 2·400/0.01 shared across
	// neighbours; 90000 req/s per location overwhelms it.
	perStep := make([]float64, l)
	prices := make([]float64, l)
	for v := 0; v < l; v++ {
		perStep[v] = 90000
		prices[v] = 0.05
	}
	plan, err := inst.SolveHorizonSoft(HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(3, perStep),
		Prices: constForecast(3, prices),
	}, qp.DefaultOptions(), 0)
	if err != nil {
		t.Fatalf("soft solve over pruned support: %v", err)
	}
	if shed := plan.TotalShed(); shed <= 0 {
		t.Errorf("overloaded pruned instance shed %g", shed)
	}
	for tt := range plan.X {
		if err := inst.CheckState(plan.X[tt]); err != nil {
			t.Errorf("soft plan step %d violates the pruned support: %v", tt, err)
		}
	}
}

// TestLadderSoftRungOverPrunedSupport runs the controller's degradation
// ladder end to end on a mostly-pruned instance: the overloaded hard QP is
// infeasible, the ladder drops to the soft rung, and the degraded step
// still respects the pruned support.
func TestLadderSoftRungOverPrunedSupport(t *testing.T) {
	const l = 5
	inst, err := NewInstance(diagonalConfig(l, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	perStep := make([]float64, l)
	prices := make([]float64, l)
	for v := 0; v < l; v++ {
		perStep[v] = 90000
		prices[v] = 0.05
	}
	res, err := ctrl.Step(constForecast(3, perStep), constForecast(3, prices))
	if err != nil {
		t.Fatalf("ladder errored on pruned instance: %v", err)
	}
	if res.Degradation.Mode != DegradeSoft {
		t.Fatalf("mode = %v, want soft", res.Degradation.Mode)
	}
	if res.Degradation.ShedDemand <= 0 {
		t.Error("soft rung reported no shed demand under overload")
	}
	if err := inst.CheckState(res.NewState); err != nil {
		t.Errorf("degraded state violates the pruned support: %v", err)
	}
	// Recovery: a servable follow-up forecast returns to the clean path.
	for v := 0; v < l; v++ {
		perStep[v] = 1000
	}
	res2, err := ctrl.Step(constForecast(3, perStep), constForecast(3, prices))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degradation.Degraded() {
		t.Errorf("feasible follow-up step degraded: %v", res2.Degradation)
	}
}

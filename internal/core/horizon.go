package core

import (
	"fmt"
	"math"

	"dspp/internal/linalg"
	"dspp/internal/qp"
)

// HorizonInput is one MPC optimization problem: from the current state X0
// at period k, choose controls u for the next W periods given forecasts.
// Demand[t][v] and Prices[t][l] refer to period k+1+t (the period shaped
// by control u_t), for t = 0..W−1.
type HorizonInput struct {
	X0     State
	Demand [][]float64 // W×V forecast demand
	Prices [][]float64 // W×L forecast prices
}

// Plan is the solved horizon: the control sequence, the resulting state
// trajectory, the predicted cost, and the constraint duals that the
// competition game consumes.
type Plan struct {
	// U[t] is the planned control for period k+t (only U[0] is applied
	// by MPC).
	U []State
	// X[t] is the planned state at period k+1+t.
	X []State
	// Objective is the predicted horizon cost Σ p·x + Σ c·u² including
	// the holding cost of the planned states.
	Objective float64
	// CapacityDuals[t][l] is the dual of DC l's capacity constraint at
	// horizon step t (zero for uncapacitated DCs).
	CapacityDuals [][]float64
	// DemandDuals[t][v] is the dual of location v's demand constraint.
	DemandDuals [][]float64
	// QPIterations reports interior-point iterations used.
	QPIterations int
}

// Horizon returns len(plan.U).
func (p *Plan) Horizon() int { return len(p.U) }

// TotalCapacityDuals sums the capacity duals over the horizon per DC —
// the λ^il quantity reported to the infrastructure provider in the
// paper's Algorithm 2.
func (p *Plan) TotalCapacityDuals() []float64 {
	if len(p.CapacityDuals) == 0 {
		return nil
	}
	out := make([]float64, len(p.CapacityDuals[0]))
	for _, row := range p.CapacityDuals {
		for l, d := range row {
			out[l] += d
		}
	}
	return out
}

// SolveHorizon builds and solves the horizon QP (the DSPP of §IV-D
// restricted to a window, states substituted out) and reconstructs the
// trajectory. It is the computational core of Algorithm 1.
func (in *Instance) SolveHorizon(input HorizonInput, opts qp.Options) (*Plan, error) {
	w := len(input.Demand)
	if w == 0 {
		return nil, fmt.Errorf("empty horizon: %w", ErrBadInput)
	}
	if len(input.Prices) != w {
		return nil, fmt.Errorf("prices horizon %d, demand horizon %d: %w", len(input.Prices), w, ErrBadInput)
	}
	if err := in.CheckState(input.X0); err != nil {
		return nil, err
	}
	for t := 0; t < w; t++ {
		if len(input.Demand[t]) != in.v {
			return nil, fmt.Errorf("demand[%d] has %d locations, want %d: %w", t, len(input.Demand[t]), in.v, ErrBadInput)
		}
		if len(input.Prices[t]) != in.l {
			return nil, fmt.Errorf("prices[%d] has %d DCs, want %d: %w", t, len(input.Prices[t]), in.l, ErrBadInput)
		}
		for v, d := range input.Demand[t] {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("demand[%d][%d] = %g: %w", t, v, d, ErrBadInput)
			}
		}
		for l, p := range input.Prices[t] {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return nil, fmt.Errorf("prices[%d][%d] = %g: %w", t, l, p, ErrBadInput)
			}
		}
		// Cheap necessary feasibility check: even granting location v
		// every feasible DC's full capacity, the demand must fit. It
		// catches the common misconfiguration (demand beyond physical
		// capacity) with a clear error instead of a QP solver failure.
		for v := 0; v < in.v; v++ {
			var ceiling float64
			for l := 0; l < in.l; l++ {
				pi := in.pairIdx[l][v]
				if pi < 0 {
					continue
				}
				if math.IsInf(in.capacity[l], 1) {
					ceiling = math.Inf(1)
					break
				}
				ceiling += in.capacity[l] / in.a[l][v]
			}
			if input.Demand[t][v] > ceiling {
				return nil, fmt.Errorf(
					"demand[%d][%d] = %g exceeds the %g req/s ceiling of its feasible DCs: %w",
					t, v, input.Demand[t][v], ceiling, ErrInfeasible)
			}
		}
	}

	e := len(in.pairs)
	n := e * w // decision variables: u_t^pair

	// Quadratic term: ½ uᵀQu with Q = diag(2 c^l).
	qMat := linalg.NewMatrix(n, n)
	for t := 0; t < w; t++ {
		for pi, pr := range in.pairs {
			idx := t*e + pi
			qMat.Set(idx, idx, 2*in.reconfig[pr.l])
		}
	}
	// Linear term: u_τ^e contributes to the holding cost of every later
	// planned state, so its coefficient is Σ_{t≥τ} Prices[t][l(e)].
	cVec := linalg.NewVector(n)
	for pi, pr := range in.pairs {
		var tail float64
		for t := w - 1; t >= 0; t-- {
			tail += input.Prices[t][pr.l]
			cVec[t*e+pi] = tail
		}
	}
	// Sunk holding cost of x0 carried through the horizon (constant).
	var constCost float64
	for t := 0; t < w; t++ {
		for _, pr := range in.pairs {
			constCost += input.Prices[t][pr.l] * input.X0[pr.l][pr.v]
		}
	}

	// Inequality rows: per horizon step t — demand (V), capacity
	// (capacitated DCs), nonnegativity (E).
	capacitated := make([]int, 0, in.l)
	for l := 0; l < in.l; l++ {
		if !math.IsInf(in.capacity[l], 1) {
			capacitated = append(capacitated, l)
		}
	}
	rowsPerStep := in.v + len(capacitated) + e
	m := w * rowsPerStep
	gMat := linalg.NewMatrix(m, n)
	hVec := linalg.NewVector(m)

	row := 0
	// Row bookkeeping for dual extraction.
	demandRow := make([][]int, w)
	capRow := make([][]int, w)
	for t := 0; t < w; t++ {
		demandRow[t] = make([]int, in.v)
		capRow[t] = make([]int, in.l)
		for l := range capRow[t] {
			capRow[t][l] = -1
		}
		// Demand: −Σ_{e∈v} Σ_{τ≤t} u_τ^e / a_e ≤ −D + Σ_{e∈v} x0_e/a_e.
		for v := 0; v < in.v; v++ {
			demandRow[t][v] = row
			rhs := -input.Demand[t][v]
			for l := 0; l < in.l; l++ {
				pi := in.pairIdx[l][v]
				if pi < 0 {
					continue
				}
				inv := 1 / in.a[l][v]
				rhs += input.X0[l][v] * inv
				for tau := 0; tau <= t; tau++ {
					gMat.Set(row, tau*e+pi, -inv)
				}
			}
			hVec[row] = rhs
			row++
		}
		// Capacity: Σ_{e∈l} Σ_{τ≤t} u ≤ C_l − Σ_{e∈l} x0.
		for _, l := range capacitated {
			capRow[t][l] = row
			rhs := in.capacity[l]
			for v := 0; v < in.v; v++ {
				pi := in.pairIdx[l][v]
				if pi < 0 {
					continue
				}
				rhs -= input.X0[l][v]
				for tau := 0; tau <= t; tau++ {
					gMat.Set(row, tau*e+pi, 1)
				}
			}
			hVec[row] = rhs
			row++
		}
		// Nonnegativity: −Σ_{τ≤t} u_τ^e ≤ x0_e.
		for pi, pr := range in.pairs {
			for tau := 0; tau <= t; tau++ {
				gMat.Set(row, tau*e+pi, -1)
			}
			hVec[row] = input.X0[pr.l][pr.v]
			row++
		}
	}

	prob := &qp.Problem{Q: qMat, C: cVec, G: gMat, H: hVec}
	res, err := qp.Solve(prob, opts)
	if err != nil {
		return nil, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, n, m, err)
	}

	plan := &Plan{
		U:             make([]State, w),
		X:             make([]State, w),
		Objective:     res.Objective + constCost,
		CapacityDuals: make([][]float64, w),
		DemandDuals:   make([][]float64, w),
		QPIterations:  res.Iterations,
	}
	prev := input.X0.Clone()
	for t := 0; t < w; t++ {
		u := in.NewState()
		for pi, pr := range in.pairs {
			u[pr.l][pr.v] = res.X[t*e+pi]
		}
		x := prev.Clone()
		for l := 0; l < in.l; l++ {
			for v := 0; v < in.v; v++ {
				x[l][v] += u[l][v]
				// Clamp the tiny interior-point slack so states stay
				// exactly feasible for downstream consumers.
				if x[l][v] < 0 {
					x[l][v] = 0
				}
			}
		}
		plan.U[t] = u
		plan.X[t] = x
		prev = x

		plan.DemandDuals[t] = make([]float64, in.v)
		for v := 0; v < in.v; v++ {
			plan.DemandDuals[t][v] = res.IneqDuals[demandRow[t][v]]
		}
		plan.CapacityDuals[t] = make([]float64, in.l)
		for l := 0; l < in.l; l++ {
			if r := capRow[t][l]; r >= 0 {
				plan.CapacityDuals[t][l] = res.IneqDuals[r]
			}
		}
	}
	return plan, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"dspp/internal/linalg"
	"dspp/internal/qp"
)

// HorizonInput is one MPC optimization problem: from the current state X0
// at period k, choose controls u for the next W periods given forecasts.
// Demand[t][v] and Prices[t][l] refer to period k+1+t (the period shaped
// by control u_t), for t = 0..W−1.
type HorizonInput struct {
	X0     State
	Demand [][]float64 // W×V forecast demand
	Prices [][]float64 // W×L forecast prices
	// Warm optionally seeds the QP from a previously solved plan's raw
	// iterates, shifted forward by WarmShift periods: 1 chains receding-
	// horizon MPC steps, 0 re-solves the same window (best-response
	// rounds). A warm start whose shape doesn't match is ignored.
	Warm      *HorizonWarm
	WarmShift int
}

// HorizonWarm is the opaque warm-start capsule a solved Plan carries: the
// raw primal iterates (cumulative controls y_t = Σ_{τ≤t} u_τ) and
// inequality duals of its QP, plus the layout needed to validate and
// shift them for the next solve.
type HorizonWarm struct {
	y, z                    linalg.Vector
	pairs, horizon, rowsPer int
}

// WarmState is the serializable form of a HorizonWarm capsule. The raw
// iterates round-trip exactly through JSON (Go emits the shortest
// representation that re-parses to the same float64), so a controller
// restored from a checkpointed WarmState produces plans bit-identical to
// the uninterrupted run — the dsppd resume contract.
type WarmState struct {
	Y       []float64 `json:"y"`
	Z       []float64 `json:"z"`
	Pairs   int       `json:"pairs"`
	Horizon int       `json:"horizon"`
	RowsPer int       `json:"rows_per"`
}

// Export copies the capsule into its serializable form (nil for a nil
// capsule).
func (hw *HorizonWarm) Export() *WarmState {
	if hw == nil {
		return nil
	}
	return &WarmState{
		Y:       append([]float64(nil), hw.y...),
		Z:       append([]float64(nil), hw.z...),
		Pairs:   hw.pairs,
		Horizon: hw.horizon,
		RowsPer: hw.rowsPer,
	}
}

// ImportWarm rebuilds a capsule from its serialized form (nil for nil or
// a state with inconsistent lengths — a corrupt checkpoint degrades to a
// cold start rather than a bad warm point).
func ImportWarm(ws *WarmState) *HorizonWarm {
	if ws == nil || len(ws.Y) != ws.Pairs*ws.Horizon || len(ws.Z) != ws.RowsPer*ws.Horizon {
		return nil
	}
	return &HorizonWarm{
		y:       append(linalg.Vector(nil), ws.Y...),
		z:       append(linalg.Vector(nil), ws.Z...),
		pairs:   ws.Pairs,
		horizon: ws.Horizon,
		rowsPer: ws.RowsPer,
	}
}

// shifted produces the QP warm start for a problem with the given layout,
// advancing the stored solution by shift periods. The stored primal is
// cumulative, so shifting rebases it on the state reached after the
// applied controls: y'_t = y_{t+shift} − y_{shift−1}. Periods beyond the
// old horizon hold the last cumulative level (controls default to zero);
// dual blocks repeat the last period's, the best available guess for the
// newly revealed period.
func (hw *HorizonWarm) shifted(e, w, rowsPerStep, shift int, out *qp.WarmStart) *qp.WarmStart {
	if hw == nil || shift < 0 ||
		hw.pairs != e || hw.horizon != w || hw.rowsPer != rowsPerStep ||
		len(hw.y) != e*w || len(hw.z) != rowsPerStep*w {
		return nil
	}
	if shift == 0 {
		out.X, out.Z = hw.y, hw.z
		return out
	}
	x := linalg.NewVector(e * w)
	z := linalg.NewVector(rowsPerStep * w)
	base := shift - 1
	if base > w-1 {
		base = w - 1
	}
	for t := 0; t < w; t++ {
		src := t + shift
		if src > w-1 {
			src = w - 1
		}
		for pi := 0; pi < e; pi++ {
			x[t*e+pi] = hw.y[src*e+pi] - hw.y[base*e+pi]
		}
		copy(z[t*rowsPerStep:(t+1)*rowsPerStep], hw.z[src*rowsPerStep:(src+1)*rowsPerStep])
	}
	out.X, out.Z = x, z
	return out
}

// Plan is the solved horizon: the control sequence, the resulting state
// trajectory, the predicted cost, and the constraint duals that the
// competition game consumes.
type Plan struct {
	// U[t] is the planned control for period k+t (only U[0] is applied
	// by MPC).
	U []State
	// X[t] is the planned state at period k+1+t.
	X []State
	// Objective is the predicted horizon cost Σ p·x + Σ c·u² including
	// the holding cost of the planned states.
	Objective float64
	// CapacityDuals[t][l] is the dual of DC l's capacity constraint at
	// horizon step t (zero for uncapacitated DCs).
	CapacityDuals [][]float64
	// DemandDuals[t][v] is the dual of location v's demand constraint.
	DemandDuals [][]float64
	// QPIterations reports interior-point iterations used.
	QPIterations int
	// ColdRestarts counts warm-started solves that failed numerically and
	// were retried from a cold start (0 or 1 per solve).
	ColdRestarts int
	// Shed[t][v] is the demand shed at horizon step t for location v; nil
	// unless the plan came from the soft-constrained relaxation (see
	// SolveHorizonSoft).
	Shed [][]float64
	// Warm carries the raw QP iterates for warm-starting the next solve
	// over the same instance layout (see HorizonInput.Warm).
	Warm *HorizonWarm
	// Anytime is the solver's iterate-quality metadata when this plan is a
	// deadline-interrupted partial iterate (see qp.ErrDeadline); nil for
	// every fully converged plan.
	Anytime *qp.AnytimeInfo
}

// TotalShed sums the shed demand over the whole horizon (zero for plans
// from the hard-constrained solve).
func (p *Plan) TotalShed() float64 {
	var t float64
	for _, row := range p.Shed {
		for _, s := range row {
			t += s
		}
	}
	return t
}

// Horizon returns len(plan.U).
func (p *Plan) Horizon() int { return len(p.U) }

// TotalCapacityDuals sums the capacity duals over the horizon per DC —
// the λ^il quantity reported to the infrastructure provider in the
// paper's Algorithm 2.
func (p *Plan) TotalCapacityDuals() []float64 {
	if len(p.CapacityDuals) == 0 {
		return nil
	}
	out := make([]float64, len(p.CapacityDuals[0]))
	p.TotalCapacityDualsInto(out)
	return out
}

// TotalCapacityDualsInto is TotalCapacityDuals into caller storage: dst
// is zeroed and accumulated in place, so per-round game loops reuse one
// buffer instead of allocating. dst must have one entry per DC.
func (p *Plan) TotalCapacityDualsInto(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, row := range p.CapacityDuals {
		for l, d := range row {
			dst[l] += d
		}
	}
}

// SolveHorizon builds and solves the horizon QP (the DSPP of §IV-D
// restricted to a window, states substituted out) and reconstructs the
// trajectory. It is the computational core of Algorithm 1.
func (in *Instance) SolveHorizon(input HorizonInput, opts qp.Options) (*Plan, error) {
	return in.SolveHorizonCtx(context.Background(), input, opts)
}

// SolveHorizonCtx is SolveHorizon with cooperative cancellation: ctx is
// polled once per interior-point iteration, so a stuck solve terminates
// within one iteration of ctx expiring and the returned error wraps
// ctx.Err().
func (in *Instance) SolveHorizonCtx(ctx context.Context, input HorizonInput, opts qp.Options) (*Plan, error) {
	w, err := in.checkHorizonInput(input, true)
	if err != nil {
		return nil, err
	}

	e := len(in.pairs)
	n := e * w // decision variables: y_t^pair = Σ_{τ≤t} u_τ^pair

	// The quadratic term and the constraint matrix depend only on the
	// instance and the horizon length — not on demand, prices, state, or
	// capacity values — so they are built once per (instance, W) and
	// reused across every solve of an MPC or best-response loop.
	hs, err := in.horizonStructure(w)
	if err != nil {
		return nil, err
	}
	rowsPerStep := hs.rowsPerStep
	m := w * rowsPerStep

	// Cost and right-hand-side vectors come from the structure's pool: they
	// are dead once the solver returns (results are copied out), and the
	// fill loops below overwrite every entry.
	vecs, _ := hs.vecPool.Get().(*horizonVecs)
	if vecs == nil {
		vecs = &horizonVecs{c: linalg.NewVector(n), h: linalg.NewVector(m)}
	}

	constCost := in.fillHorizonVectors(hs, input, w, e, vecs.c, vecs.h)

	vecs.prob = qp.Problem{Q: hs.q, C: vecs.c, G: hs.g, H: vecs.h, KKTBandHint: hs.kktBandHint}
	prob := &vecs.prob
	warm := input.Warm.shifted(e, w, rowsPerStep, input.WarmShift, &vecs.ws)
	res, err := qp.SolveWarmCtx(ctx, prob, opts, warm)
	coldRestarts := 0
	if err != nil && warm != nil && errors.Is(err, qp.ErrNumerical) {
		// A warm point can sit badly for the new data (e.g. after a capacity
		// shock) and wreck the KKT conditioning; the cold start costs extra
		// iterations but starts well centered. Retry once before failing.
		coldRestarts = 1
		res, err = qp.SolveWarmCtx(ctx, prob, opts, nil)
	}
	vecs.ws = qp.WarmStart{} // drop the borrowed warm-start slices
	hs.vecPool.Put(vecs)
	if err != nil {
		if res != nil && errors.Is(err, qp.ErrDeadline) {
			// Anytime return: the result is the best iterate at the
			// deadline. Hand back a full plan alongside the error so the
			// degradation ladder can take the anytime rung; callers that
			// ignore the plan see exactly the old error contract.
			plan := in.buildPlan(hs, input, res, w, e, coldRestarts, constCost, nil)
			plan.Anytime = res.Anytime
			return plan, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, n, m, err)
		}
		return nil, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, n, m, err)
	}

	return in.buildPlan(hs, input, res, w, e, coldRestarts, constCost, nil), nil
}

// fillHorizonVectors writes the horizon QP's cost and right-hand-side
// vectors for the given input and returns the constant holding cost of
// x0. Shared by the one-shot path and HorizonSession, so both solve the
// bitwise-identical problem.
func (in *Instance) fillHorizonVectors(hs *horizonStruct, input HorizonInput, w, e int, cVec, hVec linalg.Vector) float64 {
	// Linear term: the holding cost p_t·x_t is simply Prices[t][l] per
	// cumulative variable (no suffix sums needed in y-space).
	for pi, pr := range in.pairs {
		for t := 0; t < w; t++ {
			cVec[t*e+pi] = input.Prices[t][pr.l]
		}
	}
	// Sunk holding cost of x0 carried through the horizon (constant).
	var constCost float64
	for t := 0; t < w; t++ {
		for _, pr := range in.pairs {
			constCost += input.Prices[t][pr.l] * input.X0[pr.l][pr.v]
		}
	}

	// Right-hand sides, in the fixed row order of the cached G (per step:
	// demand, capacity, nonnegativity — see horizonStructure).
	row := 0
	for t := 0; t < w; t++ {
		// Demand: −Σ_{e∈v} y_t^e / a_e ≤ −D + Σ_{e∈v} x0_e/a_e. The
		// compressed support lists walk only the feasible pairs instead of
		// scanning the L×V grid.
		for v := 0; v < in.v; v++ {
			rhs := -input.Demand[t][v]
			for _, pr := range in.locPairs[v] {
				rhs += input.X0[pr.l][v] * pr.aInv
			}
			hVec[row] = rhs
			row++
		}
		// Capacity: Σ_{e∈l} y_t ≤ C_l − Σ_{e∈l} x0.
		for _, l := range hs.capacitated {
			rhs := in.capacity[l]
			for _, pr := range in.dcPairs[l] {
				rhs -= input.X0[l][pr.v]
			}
			hVec[row] = rhs
			row++
		}
		// Nonnegativity: −y_t^e ≤ x0_e.
		for _, pr := range in.pairs {
			hVec[row] = input.X0[pr.l][pr.v]
			row++
		}
	}
	return constCost
}

// planPair is a Plan and its warm capsule in one allocation: they have
// the same lifetime (the capsule chains into the next solve).
type planPair struct {
	plan Plan
	warm HorizonWarm
}

// planArena is the reusable backing storage of one reconstructed Plan,
// double-buffered by HorizonSession. Contents are fully rewritten (the
// float block is zeroed first — partially-written rows like the capacity
// duals rely on a clean slate), so a reused arena yields a Plan bitwise
// identical to a freshly allocated one.
type planArena struct {
	floats []float64
	rows   [][]float64
	states []State
	pw     planPair
}

// buildPlan reconstructs the trajectory, duals, and warm capsule from a
// solved horizon QP. With ar == nil every block is freshly allocated (the
// one-shot path); otherwise the arena's buffers are resized and reused.
func (in *Instance) buildPlan(hs *horizonStruct, input HorizonInput, res *qp.Result, w, e, coldRestarts int, constCost float64, ar *planArena) *Plan {
	// The whole plan — 2W states plus the two dual tables — is carved out
	// of one float backing array and one row-header block, so a plan costs
	// a fixed handful of allocations instead of O(W·L) small ones.
	nf := w * (2*in.l*in.v + in.v + in.l)
	nr := 2*w*in.l + 2*w
	rowsPerStep := hs.rowsPerStep
	var floats []float64
	var rows [][]float64
	var states []State
	var pw *planPair
	if ar == nil {
		floats = make([]float64, nf)
		rows = make([][]float64, nr)
		states = make([]State, 2*w)
		pw = &planPair{}
	} else {
		if cap(ar.floats) < nf {
			ar.floats = make([]float64, nf)
		} else {
			ar.floats = ar.floats[:nf]
			for i := range ar.floats {
				ar.floats[i] = 0
			}
		}
		if cap(ar.rows) < nr {
			ar.rows = make([][]float64, nr)
		}
		if cap(ar.states) < 2*w {
			ar.states = make([]State, 2*w)
		}
		floats, rows, states = ar.floats, ar.rows[:nr], ar.states[:2*w]
		pw = &ar.pw
	}
	takeRow := func(k int) []float64 {
		r := floats[:k:k]
		floats = floats[k:]
		return r
	}
	takeState := func() State {
		s := State(rows[:in.l:in.l])
		rows = rows[in.l:]
		for l := range s {
			s[l] = takeRow(in.v)
		}
		return s
	}

	pw.warm = HorizonWarm{y: res.X, z: res.IneqDuals, pairs: e, horizon: w, rowsPer: rowsPerStep}
	plan := &pw.plan
	*plan = Plan{
		U:             states[:w:w],
		X:             states[w:],
		Objective:     res.Objective + constCost,
		CapacityDuals: rows[:w:w],
		DemandDuals:   rows[w : 2*w : 2*w],
		QPIterations:  res.Iterations,
		ColdRestarts:  coldRestarts,
		Warm:          &pw.warm,
	}
	rows = rows[2*w:]
	// Trajectory reconstruction: each state starts as a copy of its
	// predecessor (X0 itself is only read, never cloned) and only the
	// feasible pairs — the only entries a control can move — are updated.
	// The QP primal is cumulative, so the control is the difference of
	// consecutive levels: u_t = y_t − y_{t−1}.
	prev := input.X0
	for t := 0; t < w; t++ {
		u := takeState()
		x := takeState()
		for l := range x {
			copy(x[l], prev[l])
		}
		for pi, pr := range in.pairs {
			uv := res.X[t*e+pi]
			if t > 0 {
				uv -= res.X[(t-1)*e+pi]
			}
			u[pr.l][pr.v] = uv
			xv := x[pr.l][pr.v] + uv
			// Clamp the tiny interior-point slack so states stay
			// exactly feasible for downstream consumers.
			if xv < 0 {
				xv = 0
			}
			x[pr.l][pr.v] = xv
		}
		plan.U[t] = u
		plan.X[t] = x
		prev = x

		// Dual extraction follows the fixed row layout: step t's block
		// starts at t·rowsPerStep with the V demand rows, then one row per
		// capacitated DC.
		base := t * rowsPerStep
		plan.DemandDuals[t] = takeRow(in.v)
		copy(plan.DemandDuals[t], res.IneqDuals[base:base+in.v])
		plan.CapacityDuals[t] = takeRow(in.l)
		for ci, l := range hs.capacitated {
			plan.CapacityDuals[t][l] = res.IneqDuals[base+in.v+ci]
		}
	}
	return plan
}

// horizonStruct is the data-independent part of the horizon QP for one
// horizon length: the quadratic term, the sparse constraint matrix, and
// the row layout. Q's entries depend only on the reconfiguration weights,
// G's only on the SLA coefficients and on which DCs are capacitated;
// demand, prices, the initial state, and the capacity values enter solely
// through the O(n) cost and right-hand-side vectors rebuilt per solve.
type horizonStruct struct {
	q *linalg.Matrix
	g *linalg.SparseMatrix
	// capacitated lists the DCs with finite capacity, ascending — the
	// order their rows appear within each step's block.
	capacitated []int
	// rowsPerStep = V demand rows + len(capacitated) + E nonnegativity.
	rowsPerStep int
	// kktBandHint caches qp.KKTBandwidth(q, g)+1, computed once at build:
	// the solver then skips its O(n²) per-solve bandwidth scan.
	kktBandHint int
	// vecPool recycles the per-solve cost/rhs vectors (*horizonVecs);
	// the solver does not retain them past a solve.
	vecPool sync.Pool
}

// horizonVecs is the pooled per-solve working set for one structure: the
// cost/rhs vectors plus the Problem and WarmStart shells, which would
// otherwise escape to the heap on every solve.
type horizonVecs struct {
	c, h linalg.Vector
	prob qp.Problem
	ws   qp.WarmStart
}

// horizonStructure returns the cached structure for horizon length w,
// building it on first use.
//
// State-space formulation: the decision variable for (t, pair) is the
// cumulative control y_t = Σ_{τ≤t} u_τ — the planned state relative to
// x0 — instead of the raw control u_t. Every constraint on the planned
// state x_t = x0 + y_t then touches only step t's block of e columns, so
// G is block diagonal and the KKT matrix H = Q + GᵀDG is banded with
// half-bandwidth e (Q couples consecutive steps of the same pair):
// Cholesky factorization drops from O((eW)³) to O(eW·e²) per
// interior-point iteration, and matrix-vector products run on O(W)
// nonzero blocks instead of the O(W²) prefix-sum rows of the u-space
// form. The two formulations are related by an invertible change of
// variables, so optimum, objective, and constraint duals coincide.
func (in *Instance) horizonStructure(w int) (*horizonStruct, error) {
	in.qpMu.Lock()
	defer in.qpMu.Unlock()
	if hs, ok := in.qpCache[w]; ok {
		return hs, nil
	}

	e := len(in.pairs)
	n := e * w

	// Quadratic term: Σ_t c^l (y_t − y_{t−1})², y_{−1} = 0 — in the
	// ½ yᵀQy convention a block-tridiagonal Q with diag 4c (2c on the
	// final step, which no later difference references) and −2c between
	// consecutive steps of the same pair.
	qMat := linalg.NewMatrix(n, n)
	for t := 0; t < w; t++ {
		for pi, pr := range in.pairs {
			idx := t*e + pi
			c2 := 2 * in.reconfig[pr.l]
			if t < w-1 {
				qMat.Set(idx, idx, 2*c2)
				qMat.Set(idx, idx+e, -c2)
				qMat.Set(idx+e, idx, -c2)
			} else {
				qMat.Set(idx, idx, c2)
			}
		}
	}

	// Inequality rows: per horizon step t — demand (V), capacity
	// (capacitated DCs), nonnegativity (E). Each row constrains only step
	// t's planned state, i.e. only the e columns of block t: the matrix
	// is emitted in CSR form directly and KKT assembly inside the solver
	// runs on nonzeros only instead of O(m·n²).
	capacitated := make([]int, 0, in.l)
	capPairs := 0
	for l := 0; l < in.l; l++ {
		if !math.IsInf(in.capacity[l], 1) {
			capacitated = append(capacitated, l)
			capPairs += len(in.dcPairs[l])
		}
	}
	rowsPerStep := in.v + len(capacitated) + e
	gb := linalg.NewSparseBuilder(w*rowsPerStep, n, (2*e+capPairs)*w)
	for t := 0; t < w; t++ {
		for v := 0; v < in.v; v++ {
			gb.StartRow()
			for _, pr := range in.locPairs[v] {
				gb.Add(t*e+pr.idx, -pr.aInv)
			}
		}
		for _, l := range capacitated {
			gb.StartRow()
			for _, pr := range in.dcPairs[l] {
				gb.Add(t*e+pr.idx, 1)
			}
		}
		for pi := range in.pairs {
			gb.StartRow()
			gb.Add(t*e+pi, -1)
		}
	}
	gMat, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("horizon constraint assembly: %w", err)
	}

	hs := &horizonStruct{q: qMat, g: gMat, capacitated: capacitated, rowsPerStep: rowsPerStep}
	// One O(n²) bandwidth scan at build time spares every subsequent solve
	// of this shape the same scan.
	hs.kktBandHint = qp.KKTBandwidth(&qp.Problem{Q: qMat, G: gMat}) + 1
	if in.qpCache == nil {
		in.qpCache = make(map[int]*horizonStruct)
	}
	in.qpCache[w] = hs
	return hs, nil
}

// checkHorizonInput validates a horizon problem's dimensions and values and
// returns the horizon length. With ceiling set it additionally runs the
// cheap necessary feasibility check — even granting location v every
// feasible DC's full capacity, the demand must fit — which catches the
// common misconfiguration (demand beyond physical capacity) with a clear
// error instead of a QP solver failure. The soft relaxation skips that
// check: excess demand is exactly what its slack variables absorb.
func (in *Instance) checkHorizonInput(input HorizonInput, ceiling bool) (int, error) {
	w := len(input.Demand)
	if w == 0 {
		return 0, fmt.Errorf("empty horizon: %w", ErrBadInput)
	}
	if len(input.Prices) != w {
		return 0, fmt.Errorf("prices horizon %d, demand horizon %d: %w", len(input.Prices), w, ErrBadInput)
	}
	if err := in.CheckState(input.X0); err != nil {
		return 0, err
	}
	for t := 0; t < w; t++ {
		if len(input.Demand[t]) != in.v {
			return 0, fmt.Errorf("demand[%d] has %d locations, want %d: %w", t, len(input.Demand[t]), in.v, ErrBadInput)
		}
		if len(input.Prices[t]) != in.l {
			return 0, fmt.Errorf("prices[%d] has %d DCs, want %d: %w", t, len(input.Prices[t]), in.l, ErrBadInput)
		}
		for v, d := range input.Demand[t] {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return 0, fmt.Errorf("demand[%d][%d] = %g: %w", t, v, d, ErrBadInput)
			}
		}
		for l, p := range input.Prices[t] {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return 0, fmt.Errorf("prices[%d][%d] = %g: %w", t, l, p, ErrBadInput)
			}
		}
		if !ceiling {
			continue
		}
		for v := 0; v < in.v; v++ {
			var ceil float64
			for _, pr := range in.locPairs[v] {
				if math.IsInf(in.capacity[pr.l], 1) {
					ceil = math.Inf(1)
					break
				}
				ceil += in.capacity[pr.l] * pr.aInv
			}
			if input.Demand[t][v] > ceil {
				return 0, fmt.Errorf(
					"demand[%d][%d] = %g exceeds the %g req/s ceiling of its feasible DCs: %w",
					t, v, input.Demand[t][v], ceil, ErrInfeasible)
			}
		}
	}
	return w, nil
}

package core

import (
	"context"
	"errors"
	"fmt"

	"dspp/internal/linalg"
	"dspp/internal/qp"
)

// HorizonSession is a persistent solver for one (instance, horizon
// length) shape, the workhorse of loops that solve the same window over
// and over: MPC steps, best-response rounds, sweep cells. It owns a
// qp.Session bound to the cached horizon structure, so across solves it
// keeps the interior-point working set, the packed KKT band and its
// factorization, and double-buffered result and plan storage — a solve
// allocates nothing once the session is warm, and every returned Plan is
// bitwise identical to what the one-shot SolveHorizonCtx produces for
// the same input.
//
// Lifetimes: a returned Plan (including its warm capsule and the slices
// inside) stays valid until the end of the next-but-one solve on this
// session — exactly long enough to be consumed as the next solve's warm
// start and compared against the next plan. Callers that keep plans
// longer must copy what they need. Not safe for concurrent use.
type HorizonSession struct {
	in *Instance
	hs *horizonStruct
	w  int
	e  int

	ses   *qp.Session
	rankK bool
	ws    qp.WarmStart
	arena [2]planArena
	gen   int

	// Fast-resolve state: the input and constant cost of the last full
	// solve (whose vectors the session problem still holds) and the
	// capacity values baked into the H vector per capacitated DC. A
	// ResolveCapacitiesCtx is only meaningful while the caller's input
	// buffers are bitwise unchanged since that solve; lastOK tracks
	// whether a standing solve exists to continue from.
	lastInput HorizonInput
	lastConst float64
	lastOK    bool
	capSnap   []float64
	rowBuf    []int
	deltaBuf  []float64
}

// NewHorizonSession binds a session to the instance for horizon length w.
// Capacity values may change between solves (SetCapacities); the horizon
// length, feasibility pattern, and SLA structure are fixed.
func (in *Instance) NewHorizonSession(w int, opts qp.Options) (*HorizonSession, error) {
	return in.NewHorizonSessionOpts(w, opts, qp.SessionOptions{})
}

// NewHorizonSessionOpts is NewHorizonSession with explicit qp session
// options — decomposition callers enable SessionOptions.RankK so that
// capacity-only re-solves (ResolveCapacitiesCtx) advance the standing
// factorization by banded rank-k updates instead of refactorizing.
func (in *Instance) NewHorizonSessionOpts(w int, opts qp.Options, sopts qp.SessionOptions) (*HorizonSession, error) {
	if w <= 0 {
		return nil, fmt.Errorf("horizon %d: %w", w, ErrBadInput)
	}
	hs, err := in.horizonStructure(w)
	if err != nil {
		return nil, err
	}
	e := len(in.pairs)
	n := e * w
	m := w * hs.rowsPerStep
	prob := &qp.Problem{
		Q: hs.q, C: linalg.NewVector(n), G: hs.g, H: linalg.NewVector(m),
		KKTBandHint: hs.kktBandHint,
	}
	ses, err := qp.NewSessionOpts(prob, opts, sopts)
	if err != nil {
		return nil, err
	}
	return &HorizonSession{
		in: in, hs: hs, w: w, e: e, ses: ses, rankK: sopts.RankK,
		capSnap: make([]float64, len(hs.capacitated)),
	}, nil
}

// Horizon returns the session's fixed horizon length.
func (s *HorizonSession) Horizon() int { return s.w }

// SetAnytime toggles deadline-bounded anytime solving for subsequent
// solves: when enabled, a solve stopped by its context's deadline returns
// its best iterate alongside qp.ErrDeadline instead of a bare error.
func (s *HorizonSession) SetAnytime(on bool) { s.ses.SetAnytime(on) }

// Solve is SolveCtx without cancellation.
func (s *HorizonSession) Solve(input HorizonInput) (*Plan, error) {
	return s.SolveCtx(context.Background(), input)
}

// SolveCtx validates the input, refills the session problem's cost and
// right-hand-side vectors in place, and solves — with the same
// warm-start handling and cold-restart retry as SolveHorizonCtx.
func (s *HorizonSession) SolveCtx(ctx context.Context, input HorizonInput) (*Plan, error) {
	in := s.in
	w, err := in.checkHorizonInput(input, true)
	if err != nil {
		return nil, err
	}
	if w != s.w {
		return nil, fmt.Errorf("session horizon %d, input horizon %d: %w", s.w, w, ErrBadInput)
	}
	prob := s.ses.Problem()
	constCost := in.fillHorizonVectors(s.hs, input, w, s.e, prob.C, prob.H)
	// The H vector now embeds the instance's current capacities; snapshot
	// them so a later ResolveCapacitiesCtx perturbs against the right
	// baseline. The input/constant-cost record is refreshed alongside.
	for ci, l := range s.hs.capacitated {
		s.capSnap[ci] = in.capacity[l]
	}
	s.lastInput, s.lastConst, s.lastOK = input, constCost, false
	warm := input.Warm.shifted(s.e, w, s.hs.rowsPerStep, input.WarmShift, &s.ws)
	res, err := s.ses.SolveCtx(ctx, warm)
	coldRestarts := 0
	if err != nil && warm != nil && (errors.Is(err, qp.ErrNumerical) || errors.Is(err, qp.ErrMaxIterations)) {
		// Same policy as the one-shot path: a badly sitting warm point is
		// retried once from a cold start before failing. Iteration
		// exhaustion counts — a warm plan solved under capacities several
		// quota rounds old can stall the interior point the same way a
		// numerical breakdown does.
		coldRestarts = 1
		res, err = s.ses.SolveCtx(ctx, nil)
	}
	s.ws = qp.WarmStart{} // drop the borrowed warm-start slices
	if err != nil {
		if res != nil && errors.Is(err, qp.ErrDeadline) {
			// Same anytime contract as the one-shot path: plan and error
			// both non-nil, so the ladder can use the partial iterate.
			s.gen ^= 1
			plan := in.buildPlan(s.hs, input, res, w, s.e, coldRestarts, constCost, &s.arena[s.gen])
			plan.Anytime = res.Anytime
			return plan, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, s.e*w, w*s.hs.rowsPerStep, err)
		}
		return nil, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, s.e*w, w*s.hs.rowsPerStep, err)
	}
	s.gen ^= 1
	s.lastOK = true
	return in.buildPlan(s.hs, input, res, w, s.e, coldRestarts, constCost, &s.arena[s.gen]), nil
}

// CanResolveCapacities reports whether a standing converged solve exists
// for ResolveCapacitiesCtx to continue from. It turns false whenever a
// solve fails, hits its deadline, or has not happened yet.
func (s *HorizonSession) CanResolveCapacities() bool { return s.lastOK }

// ResolveCapacitiesCtx re-solves the horizon after only the instance's
// capacity values moved since the last successful SolveCtx — the quota
// re-division step of the decomposed coordination loop, where each round
// perturbs exactly the shared DCs' capacity rows. Each changed capacity
// becomes a slack-carried perturbation on its W capacity rows (the
// iterate stays strictly feasible), and the interior-point iteration
// continues from the standing near-optimal iterate instead of warm-
// restarting. With the session's RankK option on, the resolve runs as a
// checkpoint-and-query cycle: the factorization is armed at the
// converged iterate, so the query's first factorization is a banded
// rank-k update confined to the perturbed rows rather than a
// refill+refactorize (a plain continuation always refactorizes — its
// standing factor predates the final iterate, so the weight diff spans
// every row). The caller must not have touched X0/Demand/Prices since
// the last solve: the C vector, the demand and nonnegativity rows of H,
// and the rebuilt Plan all reuse that input. On a non-deadline error the
// standing solve is invalidated and the caller should fall back to a
// full SolveCtx.
func (s *HorizonSession) ResolveCapacitiesCtx(ctx context.Context) (*Plan, error) {
	if !s.lastOK {
		return nil, fmt.Errorf("capacity resolve without a standing solve: %w", ErrBadInput)
	}
	in := s.in
	rows, deltas := s.rowBuf[:0], s.deltaBuf[:0]
	for ci, l := range s.hs.capacitated {
		c := in.capacity[l]
		if c == s.capSnap[ci] {
			continue
		}
		delta := c - s.capSnap[ci]
		s.capSnap[ci] = c
		for t := 0; t < s.w; t++ {
			rows = append(rows, t*s.hs.rowsPerStep+in.v+ci)
			deltas = append(deltas, delta)
		}
	}
	s.rowBuf, s.deltaBuf = rows, deltas
	var res *qp.Result
	var err error
	if s.rankK && len(rows) > 0 {
		if err = s.ses.Checkpoint(); err != nil {
			s.lastOK = false
			return nil, fmt.Errorf("horizon QP resolve checkpoint (W=%d): %w", s.w, err)
		}
		res, err = s.ses.ResolvePerturbedCtx(ctx, rows, deltas)
	} else {
		for k, i := range rows {
			s.ses.PerturbH(i, deltas[k])
		}
		res, err = s.ses.ResolveCtx(ctx)
	}
	if err != nil {
		s.lastOK = false
		if res != nil && errors.Is(err, qp.ErrDeadline) {
			s.gen ^= 1
			plan := in.buildPlan(s.hs, s.lastInput, res, s.w, s.e, 0, s.lastConst, &s.arena[s.gen])
			plan.Anytime = res.Anytime
			return plan, fmt.Errorf("horizon QP resolve (W=%d, rows=%d): %w", s.w, len(rows), err)
		}
		return nil, fmt.Errorf("horizon QP resolve (W=%d, rows=%d): %w", s.w, len(rows), err)
	}
	s.gen ^= 1
	return in.buildPlan(s.hs, s.lastInput, res, s.w, s.e, 0, s.lastConst, &s.arena[s.gen]), nil
}

// Stats reports the underlying qp session's factorization accounting —
// full factorizations, bitwise reuses, and rank-k updates.
func (s *HorizonSession) Stats() qp.SessionStats { return s.ses.Stats() }

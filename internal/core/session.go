package core

import (
	"context"
	"errors"
	"fmt"

	"dspp/internal/linalg"
	"dspp/internal/qp"
)

// HorizonSession is a persistent solver for one (instance, horizon
// length) shape, the workhorse of loops that solve the same window over
// and over: MPC steps, best-response rounds, sweep cells. It owns a
// qp.Session bound to the cached horizon structure, so across solves it
// keeps the interior-point working set, the packed KKT band and its
// factorization, and double-buffered result and plan storage — a solve
// allocates nothing once the session is warm, and every returned Plan is
// bitwise identical to what the one-shot SolveHorizonCtx produces for
// the same input.
//
// Lifetimes: a returned Plan (including its warm capsule and the slices
// inside) stays valid until the end of the next-but-one solve on this
// session — exactly long enough to be consumed as the next solve's warm
// start and compared against the next plan. Callers that keep plans
// longer must copy what they need. Not safe for concurrent use.
type HorizonSession struct {
	in *Instance
	hs *horizonStruct
	w  int
	e  int

	ses   *qp.Session
	ws    qp.WarmStart
	arena [2]planArena
	gen   int
}

// NewHorizonSession binds a session to the instance for horizon length w.
// Capacity values may change between solves (SetCapacities); the horizon
// length, feasibility pattern, and SLA structure are fixed.
func (in *Instance) NewHorizonSession(w int, opts qp.Options) (*HorizonSession, error) {
	if w <= 0 {
		return nil, fmt.Errorf("horizon %d: %w", w, ErrBadInput)
	}
	hs, err := in.horizonStructure(w)
	if err != nil {
		return nil, err
	}
	e := len(in.pairs)
	n := e * w
	m := w * hs.rowsPerStep
	prob := &qp.Problem{
		Q: hs.q, C: linalg.NewVector(n), G: hs.g, H: linalg.NewVector(m),
		KKTBandHint: hs.kktBandHint,
	}
	ses, err := qp.NewSession(prob, opts)
	if err != nil {
		return nil, err
	}
	return &HorizonSession{in: in, hs: hs, w: w, e: e, ses: ses}, nil
}

// Horizon returns the session's fixed horizon length.
func (s *HorizonSession) Horizon() int { return s.w }

// SetAnytime toggles deadline-bounded anytime solving for subsequent
// solves: when enabled, a solve stopped by its context's deadline returns
// its best iterate alongside qp.ErrDeadline instead of a bare error.
func (s *HorizonSession) SetAnytime(on bool) { s.ses.SetAnytime(on) }

// Solve is SolveCtx without cancellation.
func (s *HorizonSession) Solve(input HorizonInput) (*Plan, error) {
	return s.SolveCtx(context.Background(), input)
}

// SolveCtx validates the input, refills the session problem's cost and
// right-hand-side vectors in place, and solves — with the same
// warm-start handling and cold-restart retry as SolveHorizonCtx.
func (s *HorizonSession) SolveCtx(ctx context.Context, input HorizonInput) (*Plan, error) {
	in := s.in
	w, err := in.checkHorizonInput(input, true)
	if err != nil {
		return nil, err
	}
	if w != s.w {
		return nil, fmt.Errorf("session horizon %d, input horizon %d: %w", s.w, w, ErrBadInput)
	}
	prob := s.ses.Problem()
	constCost := in.fillHorizonVectors(s.hs, input, w, s.e, prob.C, prob.H)
	warm := input.Warm.shifted(s.e, w, s.hs.rowsPerStep, input.WarmShift, &s.ws)
	res, err := s.ses.SolveCtx(ctx, warm)
	coldRestarts := 0
	if err != nil && warm != nil && errors.Is(err, qp.ErrNumerical) {
		// Same policy as the one-shot path: a badly sitting warm point is
		// retried once from a cold start before failing.
		coldRestarts = 1
		res, err = s.ses.SolveCtx(ctx, nil)
	}
	s.ws = qp.WarmStart{} // drop the borrowed warm-start slices
	if err != nil {
		if res != nil && errors.Is(err, qp.ErrDeadline) {
			// Same anytime contract as the one-shot path: plan and error
			// both non-nil, so the ladder can use the partial iterate.
			s.gen ^= 1
			plan := in.buildPlan(s.hs, input, res, w, s.e, coldRestarts, constCost, &s.arena[s.gen])
			plan.Anytime = res.Anytime
			return plan, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, s.e*w, w*s.hs.rowsPerStep, err)
		}
		return nil, fmt.Errorf("horizon QP (W=%d, n=%d, m=%d): %w", w, s.e*w, w*s.hs.rowsPerStep, err)
	}
	s.gen ^= 1
	return in.buildPlan(s.hs, input, res, w, s.e, coldRestarts, constCost, &s.arena[s.gen]), nil
}

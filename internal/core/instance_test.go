package core

import (
	"errors"
	"math"
	"testing"
)

// twoByTwo builds a small standard instance: 2 DCs, 2 locations, all pairs
// feasible with a = 1, reconfig weight 1, capacity 100.
func twoByTwo(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{1, 1}, {1, 1}},
		ReconfigWeights: []float64{1, 1},
		Capacities:      []float64{100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceValid(t *testing.T) {
	inst := twoByTwo(t)
	if inst.NumDataCenters() != 2 || inst.NumLocations() != 2 {
		t.Fatalf("L=%d V=%d", inst.NumDataCenters(), inst.NumLocations())
	}
	if inst.NumPairs() != 4 {
		t.Errorf("pairs = %d, want 4", inst.NumPairs())
	}
	if !inst.Feasible(0, 0) || inst.Feasible(5, 0) || inst.Feasible(0, -1) {
		t.Error("Feasible bounds checks broken")
	}
	a, err := inst.SLACoefficient(1, 1)
	if err != nil || a != 1 {
		t.Errorf("a(1,1) = %g, %v", a, err)
	}
	c, err := inst.Capacity(0)
	if err != nil || c != 100 {
		t.Errorf("Capacity(0) = %g, %v", c, err)
	}
	w, err := inst.ReconfigWeight(1)
	if err != nil || w != 1 {
		t.Errorf("ReconfigWeight(1) = %g, %v", w, err)
	}
}

func TestNewInstanceExcludesInfeasiblePairs(t *testing.T) {
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{1, math.Inf(1)}, {2, 3}},
		ReconfigWeights: []float64{1, 1},
		Capacities:      []float64{math.Inf(1), math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumPairs() != 3 {
		t.Errorf("pairs = %d, want 3", inst.NumPairs())
	}
	if inst.Feasible(0, 1) {
		t.Error("infeasible pair reported feasible")
	}
}

func TestNewInstanceErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"no DCs", Config{}, ErrBadInstance},
		{"no locations", Config{SLA: [][]float64{{}}, ReconfigWeights: []float64{1}, Capacities: []float64{1}}, ErrBadInstance},
		{"weights mismatch", Config{SLA: [][]float64{{1}}, ReconfigWeights: []float64{1, 2}, Capacities: []float64{1}}, ErrBadInstance},
		{"caps mismatch", Config{SLA: [][]float64{{1}}, ReconfigWeights: []float64{1}, Capacities: []float64{1, 2}}, ErrBadInstance},
		{"ragged SLA", Config{SLA: [][]float64{{1, 1}, {1}}, ReconfigWeights: []float64{1, 1}, Capacities: []float64{1, 1}}, ErrBadInstance},
		{"zero weight", Config{SLA: [][]float64{{1}}, ReconfigWeights: []float64{0}, Capacities: []float64{1}}, ErrBadInstance},
		{"zero capacity", Config{SLA: [][]float64{{1}}, ReconfigWeights: []float64{1}, Capacities: []float64{0}}, ErrBadInstance},
		{"negative a", Config{SLA: [][]float64{{-1}}, ReconfigWeights: []float64{1}, Capacities: []float64{1}}, ErrBadInstance},
		{"NaN a", Config{SLA: [][]float64{{math.NaN()}}, ReconfigWeights: []float64{1}, Capacities: []float64{1}}, ErrBadInstance},
		{"orphan location", Config{SLA: [][]float64{{math.Inf(1)}}, ReconfigWeights: []float64{1}, Capacities: []float64{1}}, ErrInfeasible},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewInstance(tc.cfg); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSLAMatrix(t *testing.T) {
	latency := [][]float64{
		{0.01, 0.30}, // second pair exceeds the 0.25s SLA budget entirely
		{0.05, 0.05},
	}
	m, err := SLAMatrix(latency, SLAConfig{Mu: 10, MaxDelay: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(m[0][0], 1) || !math.IsInf(m[0][1], 1) {
		t.Errorf("matrix = %v", m)
	}
	want := 1 / (10 - 1/(0.25-0.05))
	if math.Abs(m[1][1]-want) > 1e-12 {
		t.Errorf("a = %g, want %g", m[1][1], want)
	}
	if _, err := SLAMatrix(nil, SLAConfig{Mu: 10, MaxDelay: 1}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("empty latency err = %v", err)
	}
	if _, err := SLAMatrix(latency, SLAConfig{Mu: 0, MaxDelay: 1}); err == nil {
		t.Error("bad mu accepted")
	}
}

func TestWithCapacities(t *testing.T) {
	inst := twoByTwo(t)
	inst2, err := inst.WithCapacities([]float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := inst2.Capacity(1)
	if c != 7 {
		t.Errorf("new capacity = %g", c)
	}
	// Original untouched.
	c, _ = inst.Capacity(1)
	if c != 100 {
		t.Errorf("original capacity mutated: %g", c)
	}
	if _, err := inst.WithCapacities([]float64{1}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("mismatch err = %v", err)
	}
}

func TestStateHelpers(t *testing.T) {
	inst := twoByTwo(t)
	s := inst.NewState()
	if err := inst.CheckState(s); err != nil {
		t.Fatal(err)
	}
	s[0][0] = 3
	s[1][1] = 4
	if got := s.Total(); got != 7 {
		t.Errorf("Total = %g", got)
	}
	byDC := s.TotalByDC()
	if byDC[0] != 3 || byDC[1] != 4 {
		t.Errorf("TotalByDC = %v", byDC)
	}
	c := s.Clone()
	c[0][0] = 99
	if s[0][0] != 3 {
		t.Error("Clone aliases")
	}
}

func TestCheckStateErrors(t *testing.T) {
	inst := twoByTwo(t)
	if err := inst.CheckState(State{{1, 1}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("wrong rows err = %v", err)
	}
	if err := inst.CheckState(State{{1}, {1}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("wrong cols err = %v", err)
	}
	if err := inst.CheckState(State{{-1, 0}, {0, 0}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative err = %v", err)
	}
	if err := inst.CheckState(State{{math.NaN(), 0}, {0, 0}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN err = %v", err)
	}
	// Positive allocation on an infeasible pair.
	inst2, err := NewInstance(Config{
		SLA:             [][]float64{{1, math.Inf(1)}, {1, 1}},
		ReconfigWeights: []float64{1, 1},
		Capacities:      []float64{10, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := inst2.NewState()
	bad[0][1] = 1
	if err := inst2.CheckState(bad); !errors.Is(err, ErrBadInput) {
		t.Errorf("infeasible-pair state err = %v", err)
	}
}

func TestPeriodCost(t *testing.T) {
	inst := twoByTwo(t)
	x := inst.NewState()
	x[0][0] = 2
	x[1][0] = 3
	u := inst.NewState()
	u[0][0] = 2 // cost 1·4
	cb, err := inst.PeriodCost(x, u, []float64{10, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cb.Resource != 23 {
		t.Errorf("Resource = %g, want 23", cb.Resource)
	}
	if cb.Reconfig != 4 {
		t.Errorf("Reconfig = %g, want 4", cb.Reconfig)
	}
	if cb.Total() != 27 {
		t.Errorf("Total = %g, want 27", cb.Total())
	}
	// nil control means zero reconfiguration cost.
	cb, err = inst.PeriodCost(x, nil, []float64{10, 1})
	if err != nil || cb.Reconfig != 0 {
		t.Errorf("nil control: %+v, %v", cb, err)
	}
	if _, err := inst.PeriodCost(x, u, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("price mismatch err = %v", err)
	}
	if _, err := inst.PeriodCost(x, State{{1, 1}}, []float64{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("control shape err = %v", err)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"dspp/internal/qp"
)

// twoDCInstance builds a 2-DC, 2-location capacitated instance whose
// horizon QP carries demand, capacity, and nonnegativity rows — the full
// sparse constraint structure.
func twoDCInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.01, 0.02}, {0.02, 0.01}},
		ReconfigWeights: []float64{1e-3, 1e-3},
		Capacities:      []float64{400, 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func noisyForecast(rng *rand.Rand, w int, base []float64) [][]float64 {
	out := make([][]float64, w)
	for t := range out {
		out[t] = make([]float64, len(base))
		for i, b := range base {
			out[t][i] = b * (0.9 + 0.2*rng.Float64())
		}
	}
	return out
}

// TestHorizonWarmShiftMatchesColdSolve runs the receding-horizon chain
// twice — cold every step, and warm-started with the one-period shift —
// and checks that warm starting changes neither the trajectory nor the
// cost, while using no more (and cumulatively fewer) IPM iterations.
func TestHorizonWarmShiftMatchesColdSolve(t *testing.T) {
	inst := twoDCInstance(t)
	rng := rand.New(rand.NewSource(11))
	const w, steps = 4, 12
	demand := noisyForecast(rng, steps+w, []float64{5000, 4000})
	prices := noisyForecast(rng, steps+w, []float64{0.05, 0.06})

	var warm *HorizonWarm
	state := inst.NewState()
	coldState := inst.NewState()
	coldIters, warmIters := 0, 0
	for k := 0; k < steps; k++ {
		in := HorizonInput{
			X0:     state,
			Demand: demand[k : k+w],
			Prices: prices[k : k+w],
		}
		cold, err := inst.SolveHorizon(HorizonInput{
			X0:     coldState,
			Demand: demand[k : k+w],
			Prices: prices[k : k+w],
		}, qp.DefaultOptions())
		if err != nil {
			t.Fatalf("step %d cold: %v", k, err)
		}
		in.Warm, in.WarmShift = warm, 1
		got, err := inst.SolveHorizon(in, qp.DefaultOptions())
		if err != nil {
			t.Fatalf("step %d warm: %v", k, err)
		}
		if math.Abs(got.Objective-cold.Objective) > 1e-4*(1+math.Abs(cold.Objective)) {
			t.Fatalf("step %d: warm objective %g vs cold %g", k, got.Objective, cold.Objective)
		}
		for l := range got.X[0] {
			for v := range got.X[0][l] {
				if math.Abs(got.X[0][l][v]-cold.X[0][l][v]) > 1e-3*(1+cold.X[0][l][v]) {
					t.Fatalf("step %d: x[%d][%d] warm %g vs cold %g",
						k, l, v, got.X[0][l][v], cold.X[0][l][v])
				}
			}
		}
		coldIters += cold.QPIterations
		warmIters += got.QPIterations
		warm = got.Warm
		state = got.X[0]
		coldState = cold.X[0]
	}
	if warmIters > coldIters {
		t.Errorf("warm chain used %d iterations, cold chain %d", warmIters, coldIters)
	}
	t.Logf("IPM iterations over %d steps: cold %d, warm %d", steps, coldIters, warmIters)
}

// TestControllerWarmChain checks the Controller plumbs the shifted warm
// start through Step and drops it on SetState.
func TestControllerWarmChain(t *testing.T) {
	inst := twoDCInstance(t)
	rng := rand.New(rand.NewSource(13))
	const w, steps = 3, 6
	demand := noisyForecast(rng, steps+w, []float64{5000, 4000})
	prices := noisyForecast(rng, steps+w, []float64{0.05, 0.06})

	ctrl, err := NewController(inst, w)
	if err != nil {
		t.Fatal(err)
	}
	first, rest := 0, 0
	for k := 0; k < steps; k++ {
		res, err := ctrl.Step(demand[k:k+w], prices[k:k+w])
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if k == 0 {
			first = res.Plan.QPIterations
		} else {
			rest += res.Plan.QPIterations
		}
	}
	if avg := float64(rest) / float64(steps-1); avg > float64(first) {
		t.Errorf("warm-started steps averaged %.1f iterations, cold first step %d", avg, first)
	}
	if err := ctrl.SetState(inst.NewState()); err != nil {
		t.Fatal(err)
	}
	if ctrl.warm != nil {
		t.Error("SetState did not drop the stale warm start")
	}
}

package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspp/internal/qp"
)

// singleDC builds the Fig.4 setting: one DC, one location, a = 0.01
// (100 req/s per server), weight c, capacity cap.
func singleDC(t *testing.T, c, cap64 float64) *Instance {
	t.Helper()
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.01}},
		ReconfigWeights: []float64{c},
		Capacities:      []float64{cap64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func constForecast(w int, perStep []float64) [][]float64 {
	out := make([][]float64, w)
	for t := range out {
		out[t] = append([]float64(nil), perStep...)
	}
	return out
}

func TestSolveHorizonMeetsDemand(t *testing.T) {
	inst := singleDC(t, 1e-4, math.Inf(1))
	plan, err := inst.SolveHorizon(HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(3, []float64{1000}),
		Prices: constForecast(3, []float64{0.1}),
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Horizon() != 3 {
		t.Fatalf("horizon = %d", plan.Horizon())
	}
	for step, x := range plan.X {
		// Demand 1000 at a=0.01 needs ≥ 10 servers.
		if x[0][0] < 10-1e-4 {
			t.Errorf("step %d: x = %g, want ≥ 10", step, x[0][0])
		}
	}
	// Cost pressure keeps the allocation near the minimum.
	if plan.X[2][0][0] > 11 {
		t.Errorf("final x = %g, want close to 10", plan.X[2][0][0])
	}
}

func TestSolveHorizonRespectsCapacity(t *testing.T) {
	// Two DCs; cheap one has tiny capacity, so demand must spill over.
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.01, 0.01}, {0.01, 0.01}},
		ReconfigWeights: []float64{1e-4, 1e-4},
		Capacities:      []float64{5, 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := inst.SolveHorizon(HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(2, []float64{1000, 1000}), // needs 20 servers total
		Prices: constForecast(2, []float64{0.01, 1.0}),  // DC0 100x cheaper
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for step, x := range plan.X {
		total0 := x[0][0] + x[0][1]
		if total0 > 5+1e-4 {
			t.Errorf("step %d: DC0 load %g exceeds capacity 5", step, total0)
		}
		// All demand served.
		slack, err := inst.DemandSlack(x, []float64{1000, 1000})
		if err != nil {
			t.Fatal(err)
		}
		for v, s := range slack {
			if s < -1e-3 {
				t.Errorf("step %d: location %d slack %g", step, v, s)
			}
		}
	}
	// The binding cheap DC must carry a positive capacity dual.
	duals := plan.TotalCapacityDuals()
	if duals[0] <= 1e-9 {
		t.Errorf("binding capacity dual = %g, want > 0", duals[0])
	}
	if duals[1] > 1e-6 {
		t.Errorf("slack capacity dual = %g, want ~0", duals[1])
	}
}

func TestSolveHorizonPrefersCheapDC(t *testing.T) {
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.01}, {0.01}},
		ReconfigWeights: []float64{1e-5, 1e-5},
		Capacities:      []float64{math.Inf(1), math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := inst.SolveHorizon(HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(4, []float64{1000}),
		Prices: constForecast(4, []float64{1.0, 0.2}),
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	final := plan.X[3]
	if final[1][0] < final[0][0] {
		t.Errorf("expensive DC carries more load: %g vs %g", final[0][0], final[1][0])
	}
	if final[1][0] < 8 {
		t.Errorf("cheap DC load %g, want most of the 10 required", final[1][0])
	}
}

func TestSolveHorizonReconfigSmoothing(t *testing.T) {
	// A demand spike at step 1 only; higher c spreads the ramp.
	mk := func(c float64) float64 {
		inst := singleDC(t, c, math.Inf(1))
		demand := [][]float64{{100}, {5000}, {100}, {100}}
		prices := constForecast(4, []float64{0.01})
		plan, err := inst.SolveHorizon(HorizonInput{
			X0:     inst.NewState(),
			Demand: demand,
			Prices: prices,
		}, qp.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Max per-step change.
		var maxStep float64
		for _, u := range plan.U {
			if a := math.Abs(u[0][0]); a > maxStep {
				maxStep = a
			}
		}
		return maxStep
	}
	smooth := mk(1.0)
	aggressive := mk(1e-6)
	if smooth >= aggressive {
		t.Errorf("higher reconfig weight should reduce max step: %g vs %g", smooth, aggressive)
	}
}

func TestSolveHorizonStartsFromNonzeroState(t *testing.T) {
	inst := singleDC(t, 1e-3, math.Inf(1))
	x0 := inst.NewState()
	x0[0][0] = 50
	plan, err := inst.SolveHorizon(HorizonInput{
		X0:     x0,
		Demand: constForecast(3, []float64{1000}), // needs only 10
		Prices: constForecast(3, []float64{1.0}),
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Expensive prices push the over-allocation down toward 10.
	if plan.X[2][0][0] >= 50 {
		t.Errorf("no scale-down from 50: %g", plan.X[2][0][0])
	}
	if plan.X[2][0][0] < 10-1e-4 {
		t.Errorf("scaled below demand requirement: %g", plan.X[2][0][0])
	}
}

func TestSolveHorizonInputValidation(t *testing.T) {
	inst := twoByTwo(t)
	x0 := inst.NewState()
	good := HorizonInput{
		X0:     x0,
		Demand: constForecast(2, []float64{1, 1}),
		Prices: constForecast(2, []float64{1, 1}),
	}
	cases := []struct {
		name   string
		mutate func(h HorizonInput) HorizonInput
	}{
		{"empty horizon", func(h HorizonInput) HorizonInput { h.Demand = nil; return h }},
		{"price horizon mismatch", func(h HorizonInput) HorizonInput { h.Prices = h.Prices[:1]; return h }},
		{"demand width", func(h HorizonInput) HorizonInput {
			h.Demand = constForecast(2, []float64{1})
			return h
		}},
		{"price width", func(h HorizonInput) HorizonInput {
			h.Prices = constForecast(2, []float64{1})
			return h
		}},
		{"negative demand", func(h HorizonInput) HorizonInput {
			h.Demand = constForecast(2, []float64{-1, 1})
			return h
		}},
		{"negative price", func(h HorizonInput) HorizonInput {
			h.Prices = constForecast(2, []float64{-1, 1})
			return h
		}},
		{"bad state", func(h HorizonInput) HorizonInput {
			bad := inst.NewState()
			bad[0][0] = -1
			h.X0 = bad
			return h
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := inst.SolveHorizon(tc.mutate(good), qp.DefaultOptions()); !errors.Is(err, ErrBadInput) {
				t.Errorf("err = %v, want ErrBadInput", err)
			}
		})
	}
}

func TestSolveHorizonObjectiveMatchesReplay(t *testing.T) {
	// The plan's objective must equal the replayed per-period costs.
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.02, 0.01}, {0.01, 0.03}},
		ReconfigWeights: []float64{0.001, 0.002},
		Capacities:      []float64{200, 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	demand := [][]float64{{500, 300}, {800, 200}, {100, 900}}
	prices := [][]float64{{0.5, 0.3}, {0.2, 0.9}, {0.4, 0.4}}
	x0 := inst.NewState()
	x0[0][0] = 2
	plan, err := inst.SolveHorizon(HorizonInput{X0: x0, Demand: demand, Prices: prices}, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var replay float64
	for step := 0; step < plan.Horizon(); step++ {
		cb, err := inst.PeriodCost(plan.X[step], plan.U[step], prices[step])
		if err != nil {
			t.Fatal(err)
		}
		replay += cb.Total()
	}
	if math.Abs(replay-plan.Objective) > 1e-4*(1+math.Abs(replay)) {
		t.Errorf("objective %g != replayed %g", plan.Objective, replay)
	}
}

// Property: horizon solutions are always demand- and capacity-feasible for
// random feasible instances.
func TestQuickHorizonFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(3)
		v := 1 + rng.Intn(3)
		w := 1 + rng.Intn(3)
		sla := make([][]float64, l)
		for i := range sla {
			sla[i] = make([]float64, v)
			for j := range sla[i] {
				sla[i][j] = 0.005 + rng.Float64()*0.05
			}
		}
		weights := make([]float64, l)
		caps := make([]float64, l)
		for i := range weights {
			weights[i] = 1e-4 + rng.Float64()*1e-2
			caps[i] = math.Inf(1)
		}
		inst, err := NewInstance(Config{SLA: sla, ReconfigWeights: weights, Capacities: caps})
		if err != nil {
			return false
		}
		demand := make([][]float64, w)
		prices := make([][]float64, w)
		for t2 := 0; t2 < w; t2++ {
			demand[t2] = make([]float64, v)
			prices[t2] = make([]float64, l)
			for j := range demand[t2] {
				demand[t2][j] = rng.Float64() * 500
			}
			for i := range prices[t2] {
				prices[t2][i] = 0.05 + rng.Float64()
			}
		}
		plan, err := inst.SolveHorizon(HorizonInput{
			X0: inst.NewState(), Demand: demand, Prices: prices,
		}, qp.DefaultOptions())
		if err != nil {
			return false
		}
		for t2, x := range plan.X {
			slack, err := inst.DemandSlack(x, demand[t2])
			if err != nil {
				return false
			}
			for _, s := range slack {
				if s < -1e-3 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(64))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveHorizonDetectsImpossibleDemand(t *testing.T) {
	// Capacity 5 servers at a = 0.01 supports at most 500 req/s.
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.01}},
		ReconfigWeights: []float64{1e-3},
		Capacities:      []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.SolveHorizon(HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(2, []float64{600}),
		Prices: constForecast(2, []float64{0.1}),
	}, qp.DefaultOptions())
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	// Just inside the ceiling must solve.
	plan, err := inst.SolveHorizon(HorizonInput{
		X0:     inst.NewState(),
		Demand: constForecast(2, []float64{490}),
		Prices: constForecast(2, []float64{0.1}),
	}, qp.DefaultOptions())
	if err != nil {
		t.Fatalf("feasible case failed: %v", err)
	}
	if plan.X[1][0][0] > 5+1e-6 {
		t.Errorf("capacity exceeded: %g", plan.X[1][0][0])
	}
}

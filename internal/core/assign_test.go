package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignProportional(t *testing.T) {
	// Two DCs with equal a: load splits proportionally to x.
	inst := twoByTwo(t)
	x := inst.NewState()
	x[0][0] = 3
	x[1][0] = 1
	assign, err := inst.Assign(x, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(assign[0][0]-75) > 1e-9 || math.Abs(assign[1][0]-25) > 1e-9 {
		t.Errorf("assign = %v, want 75/25", assign)
	}
	if assign[0][1] != 0 || assign[1][1] != 0 {
		t.Error("zero-demand location received load")
	}
}

func TestAssignWeightsBySLACoefficient(t *testing.T) {
	// Equal x but DC1 needs twice the servers per request (a doubled):
	// effective capacity halves, so it receives half the share.
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{1}, {2}},
		ReconfigWeights: []float64{1, 1},
		Capacities:      []float64{100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := inst.NewState()
	x[0][0] = 10
	x[1][0] = 10
	assign, err := inst.Assign(x, []float64{30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(assign[0][0]-20) > 1e-9 || math.Abs(assign[1][0]-10) > 1e-9 {
		t.Errorf("assign = %v, want 20/10", assign)
	}
}

func TestAssignErrors(t *testing.T) {
	inst := twoByTwo(t)
	x := inst.NewState()
	if _, err := inst.Assign(x, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("demand length err = %v", err)
	}
	if _, err := inst.Assign(x, []float64{-1, 0}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative demand err = %v", err)
	}
	// Demand with zero allocation anywhere is infeasible to route.
	if _, err := inst.Assign(x, []float64{5, 0}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("no capacity err = %v", err)
	}
	bad := State{{1}}
	if _, err := inst.Assign(bad, []float64{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad state err = %v", err)
	}
}

func TestAssignConservesDemand(t *testing.T) {
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{0.5, 1, math.Inf(1)}, {2, 0.25, 1}},
		ReconfigWeights: []float64{1, 1},
		Capacities:      []float64{100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := inst.NewState()
	x[0][0], x[0][1] = 4, 2
	x[1][0], x[1][1], x[1][2] = 1, 5, 3
	demand := []float64{40, 70, 11}
	assign, err := inst.Assign(x, demand)
	if err != nil {
		t.Fatal(err)
	}
	for v := range demand {
		var sum float64
		for l := 0; l < inst.NumDataCenters(); l++ {
			sum += assign[l][v]
		}
		if math.Abs(sum-demand[v]) > 1e-9 {
			t.Errorf("location %d: routed %g of %g", v, sum, demand[v])
		}
	}
	// Nothing routed to the infeasible pair.
	if assign[0][2] != 0 {
		t.Errorf("infeasible pair carries %g", assign[0][2])
	}
}

func TestSLASatisfied(t *testing.T) {
	inst := singleDC(t, 1, math.Inf(1)) // a = 0.01
	x := inst.NewState()
	x[0][0] = 10 // supports demand up to 1000
	ok, err := inst.SLASatisfied(x, []float64{900}, 1e-9)
	if err != nil || !ok {
		t.Errorf("SLA should hold: ok=%v err=%v", ok, err)
	}
	ok, err = inst.SLASatisfied(x, []float64{1500}, 1e-9)
	if err != nil || ok {
		t.Errorf("SLA should fail at 1500 req/s: ok=%v err=%v", ok, err)
	}
}

func TestDemandSlack(t *testing.T) {
	inst := twoByTwo(t)
	x := inst.NewState()
	x[0][0] = 3
	x[1][0] = 2
	slack, err := inst.DemandSlack(x, []float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slack[0]-1) > 1e-12 {
		t.Errorf("slack[0] = %g, want 1", slack[0])
	}
	if math.Abs(slack[1]+1) > 1e-12 {
		t.Errorf("slack[1] = %g, want -1", slack[1])
	}
	if _, err := inst.DemandSlack(x, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length err = %v", err)
	}
}

// Property (paper §IV-C): whenever the aggregate constraint (eq. 12)
// holds, the proportional assignment meets the per-pair SLA x ≥ a·σ.
func TestQuickProportionalAssignmentMeetsSLA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(4)
		v := 1 + rng.Intn(4)
		sla := make([][]float64, l)
		for i := range sla {
			sla[i] = make([]float64, v)
			for j := range sla[i] {
				sla[i][j] = 0.1 + rng.Float64()*2
			}
		}
		weights := make([]float64, l)
		caps := make([]float64, l)
		for i := range weights {
			weights[i] = 1
			caps[i] = math.Inf(1)
		}
		inst, err := NewInstance(Config{SLA: sla, ReconfigWeights: weights, Capacities: caps})
		if err != nil {
			return false
		}
		x := inst.NewState()
		for i := 0; i < l; i++ {
			for j := 0; j < v; j++ {
				x[i][j] = rng.Float64() * 20
			}
		}
		// Draw demand within the supported envelope so eq. 12 holds.
		demand := make([]float64, v)
		slack, err := inst.DemandSlack(x, make([]float64, v))
		if err != nil {
			return false
		}
		for j := range demand {
			demand[j] = slack[j] * rng.Float64() // ≤ capacity envelope
		}
		ok, err := inst.SLASatisfied(x, demand, 1e-9)
		if err != nil {
			// Zero-capacity locations with nonzero sampled demand can
			// legitimately fail to route; skip those draws.
			return errors.Is(err, ErrInfeasible)
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRoundUpBasic(t *testing.T) {
	inst := twoByTwo(t)
	x := inst.NewState()
	x[0][0] = 2.3
	x[1][1] = 4.7
	res, err := inst.RoundUp(x, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0][0] != 3 || res.X[1][1] != 5 {
		t.Errorf("rounded = %v", res.X)
	}
	if math.Abs(res.ExtraServers-1.0) > 1e-9 {
		t.Errorf("extra = %g, want 1.0", res.ExtraServers)
	}
	for l, o := range res.Overflow {
		if o != 0 {
			t.Errorf("overflow[%d] = %g", l, o)
		}
	}
}

func TestRoundUpCapacityRepair(t *testing.T) {
	// DC capacity 5; continuous solution 2.5 + 2.5 rounds to 3+3 = 6 > 5.
	// Demand only needs 5 effective servers, so repair rounds one down.
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{1, 1}},
		ReconfigWeights: []float64{1},
		Capacities:      []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := inst.NewState()
	x[0][0], x[0][1] = 2.5, 2.5
	res, err := inst.RoundUp(x, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	total := res.X[0][0] + res.X[0][1]
	if total > 5+1e-9 {
		t.Errorf("repaired total %g exceeds capacity", total)
	}
	if res.Overflow[0] != 0 {
		t.Errorf("overflow = %g after successful repair", res.Overflow[0])
	}
	slack, err := inst.DemandSlack(res.X, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range slack {
		if s < -1e-9 {
			t.Errorf("repair broke demand at %d: slack %g", v, s)
		}
	}
}

func TestRoundUpReportsIrreparableOverflow(t *testing.T) {
	// Demand pins both entries: repair impossible, overflow reported.
	inst, err := NewInstance(Config{
		SLA:             [][]float64{{1, 1}},
		ReconfigWeights: []float64{1},
		Capacities:      []float64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := inst.NewState()
	x[0][0], x[0][1] = 2.5, 2.5
	res, err := inst.RoundUp(x, []float64{2.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow[0] <= 0 {
		t.Errorf("expected reported overflow, got %g", res.Overflow[0])
	}
}

func TestRoundUpErrors(t *testing.T) {
	inst := twoByTwo(t)
	if _, err := inst.RoundUp(State{{1}}, []float64{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad state err = %v", err)
	}
	if _, err := inst.RoundUp(inst.NewState(), []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad demand err = %v", err)
	}
}

package core

import (
	"errors"
	"math"
	"testing"

	"dspp/internal/queue"
)

// FuzzNewInstance drives the Config validator with arbitrary shapes and
// values: construction must either succeed with a usable instance or
// reject the config with a wrapped package sentinel — never panic.
func FuzzNewInstance(f *testing.F) {
	f.Add(2, 2, 0.01, 1e-4, 100.0)
	f.Add(1, 1, math.Inf(1), 1e-4, 100.0)
	f.Add(3, 1, -0.5, 0.0, math.NaN())
	f.Add(0, 5, 0.01, 1e-4, 100.0)
	f.Add(2, 3, 0.02, math.Inf(1), 0.0)
	f.Fuzz(func(t *testing.T, l, v int, a, w, c float64) {
		if l < 0 || l > 8 || v < 0 || v > 8 {
			t.Skip()
		}
		sla := make([][]float64, l)
		weights := make([]float64, l)
		caps := make([]float64, l)
		for li := range sla {
			sla[li] = make([]float64, v)
			for vi := range sla[li] {
				// Vary entries so one config exercises several code paths
				// (including the per-location feasibility scan).
				sla[li][vi] = a * float64(1+(li+vi)%3)
			}
			weights[li] = w
			caps[li] = c
		}
		inst, err := NewInstance(Config{SLA: sla, ReconfigWeights: weights, Capacities: caps})
		if err != nil {
			if !errors.Is(err, ErrBadInstance) && !errors.Is(err, ErrInfeasible) {
				t.Fatalf("unwrapped error %v for l=%d v=%d a=%g w=%g c=%g", err, l, v, a, w, c)
			}
			return
		}
		// An accepted config must yield a self-consistent instance.
		if inst.NumDataCenters() != l || inst.NumLocations() != v {
			t.Fatalf("dims %dx%d, want %dx%d", inst.NumDataCenters(), inst.NumLocations(), l, v)
		}
		if err := inst.CheckState(inst.NewState()); err != nil {
			t.Fatalf("zero state rejected: %v", err)
		}
	})
}

// FuzzSLAMatrix exercises the latency→coefficient conversion: arbitrary
// queueing parameters must produce either a matrix NewInstance can accept
// or a wrapped sentinel from core or queue.
func FuzzSLAMatrix(f *testing.F) {
	f.Add(100.0, 0.25, 1.0, 0.0, 0.05)
	f.Add(100.0, 0.25, 0.8, 0.95, 0.05)
	f.Add(-1.0, 0.25, 1.0, 0.0, 0.05)
	f.Add(100.0, 0.0, 1.0, 0.0, 0.5)
	f.Add(math.NaN(), math.Inf(1), 2.0, 1.5, math.Inf(-1))
	f.Fuzz(func(t *testing.T, mu, dbar, rho, pct, lat float64) {
		latency := [][]float64{{lat, lat * 2}, {0, lat}}
		a, err := SLAMatrix(latency, SLAConfig{
			Mu:               mu,
			MaxDelay:         dbar,
			ReservationRatio: rho,
			Percentile:       pct,
		})
		if err != nil {
			if !errors.Is(err, ErrBadInstance) &&
				!errors.Is(err, queue.ErrBadParameter) &&
				!errors.Is(err, queue.ErrUnstable) {
				t.Fatalf("unwrapped error %v for mu=%g dbar=%g rho=%g pct=%g lat=%g",
					err, mu, dbar, rho, pct, lat)
			}
			return
		}
		for l := range a {
			for v := range a[l] {
				if math.IsNaN(a[l][v]) || a[l][v] <= 0 {
					t.Fatalf("a[%d][%d] = %g from mu=%g dbar=%g rho=%g pct=%g lat=%g",
						l, v, a[l][v], mu, dbar, rho, pct, lat)
				}
			}
		}
	})
}

package core

import (
	"fmt"
	"math"
	"testing"

	"dspp/internal/qp"
)

// benchInstance builds an L×V all-feasible instance.
func benchInstance(b *testing.B, l, v int) *Instance {
	b.Helper()
	sla := make([][]float64, l)
	weights := make([]float64, l)
	caps := make([]float64, l)
	for i := 0; i < l; i++ {
		sla[i] = make([]float64, v)
		for j := 0; j < v; j++ {
			sla[i][j] = 0.004 + 0.0001*float64(i+j)
		}
		weights[i] = 1e-4
		caps[i] = math.Inf(1)
	}
	inst, err := NewInstance(Config{SLA: sla, ReconfigWeights: weights, Capacities: caps})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkControllerStep measures one MPC period across problem sizes:
// the figure that tells a user how big an (L, V, W) they can run online.
func BenchmarkControllerStep(b *testing.B) {
	for _, sz := range []struct{ l, v, w int }{
		{1, 1, 5}, {2, 4, 5}, {4, 8, 5}, {4, 8, 10}, {4, 24, 5},
	} {
		b.Run(fmt.Sprintf("L%d_V%d_W%d", sz.l, sz.v, sz.w), func(b *testing.B) {
			inst := benchInstance(b, sz.l, sz.v)
			ctrl, err := NewController(inst, sz.w)
			if err != nil {
				b.Fatal(err)
			}
			demand := make([][]float64, sz.w)
			prices := make([][]float64, sz.w)
			for t := range demand {
				demand[t] = make([]float64, sz.v)
				prices[t] = make([]float64, sz.l)
				for j := range demand[t] {
					demand[t][j] = 1000 + 50*float64(t+j)
				}
				for j := range prices[t] {
					prices[t][j] = 0.05 + 0.01*float64(j)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctrl.Step(demand, prices); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAssign measures the request-router policy (eq. 13), which runs
// on the data path rather than the control path.
func BenchmarkAssign(b *testing.B) {
	inst := benchInstance(b, 4, 24)
	x := inst.NewState()
	demand := make([]float64, 24)
	for v := 0; v < 24; v++ {
		demand[v] = 500
		for l := 0; l < 4; l++ {
			x[l][v] = 3
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Assign(x, demand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHorizonVsQPOnly isolates the QP-assembly overhead from
// the interior-point solve.
func BenchmarkSolveHorizonVsQPOnly(b *testing.B) {
	inst := benchInstance(b, 3, 6)
	demand := make([][]float64, 6)
	prices := make([][]float64, 6)
	for t := range demand {
		demand[t] = []float64{900, 800, 700, 600, 500, 400}
		prices[t] = []float64{0.05, 0.06, 0.07}
	}
	in := HorizonInput{X0: inst.NewState(), Demand: demand, Prices: prices}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.SolveHorizon(in, qp.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"fmt"
	"math"
)

// Assignment holds the request-routing decision σ^lv: the demand arrival
// rate from location v dispatched to data center l (paper eq. 13).
type Assignment [][]float64

// Assign implements the paper's proportional demand-assignment policy
// (eq. 13): each request router splits its location's demand across data
// centers proportionally to x^lv / a^lv, which meets the SLA whenever the
// aggregate constraint (eq. 12) holds.
func (in *Instance) Assign(x State, demand []float64) (Assignment, error) {
	if err := in.CheckState(x); err != nil {
		return nil, err
	}
	if len(demand) != in.v {
		return nil, fmt.Errorf("demand has %d locations, want %d: %w", len(demand), in.v, ErrBadInput)
	}
	out := make(Assignment, in.l)
	for l := range out {
		out[l] = make([]float64, in.v)
	}
	for v := 0; v < in.v; v++ {
		d := demand[v]
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("demand[%d] = %g: %w", v, d, ErrBadInput)
		}
		if d == 0 {
			continue
		}
		var denom float64
		for _, pr := range in.locPairs[v] {
			denom += x[pr.l][v] * pr.aInv
		}
		if denom <= 0 {
			return nil, fmt.Errorf("location %d has demand %g but no serving capacity: %w", v, d, ErrInfeasible)
		}
		for _, pr := range in.locPairs[v] {
			out[pr.l][v] = d * (x[pr.l][v] * pr.aInv) / denom
		}
	}
	return out, nil
}

// SLASatisfied reports whether the allocation x meets the SLA for the
// given demand under the proportional assignment policy, i.e. whether
// x^lv ≥ a^lv·σ^lv for every pair carrying load (within tol). When the
// aggregate demand constraint (eq. 12) holds this is guaranteed; the check
// exists for monitoring realized (non-forecast) demand.
func (in *Instance) SLASatisfied(x State, demand []float64, tol float64) (bool, error) {
	assign, err := in.Assign(x, demand)
	if err != nil {
		return false, err
	}
	for l := 0; l < in.l; l++ {
		for v := 0; v < in.v; v++ {
			sigma := assign[l][v]
			if sigma == 0 {
				continue
			}
			if x[l][v]+tol < in.a[l][v]*sigma {
				return false, nil
			}
		}
	}
	return true, nil
}

// DemandSlack returns, per location, Σ_l x^lv/a^lv − D^v: nonnegative
// slack means the aggregate SLA constraint (eq. 12) holds for location v.
func (in *Instance) DemandSlack(x State, demand []float64) ([]float64, error) {
	if err := in.CheckState(x); err != nil {
		return nil, err
	}
	if len(demand) != in.v {
		return nil, fmt.Errorf("demand has %d locations, want %d: %w", len(demand), in.v, ErrBadInput)
	}
	out := make([]float64, in.v)
	for v := 0; v < in.v; v++ {
		var cap64 float64
		for _, pr := range in.locPairs[v] {
			cap64 += x[pr.l][v] * pr.aInv
		}
		out[v] = cap64 - demand[v]
	}
	return out, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// attrInstance builds a 3-DC × 3-location instance with heterogeneous
// SLA coefficients (so the local/bandwidth split is non-trivial), one
// infeasible pair, and one uncapacitated DC.
func attrInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance(Config{
		SLA: [][]float64{
			{0.010, 0.015, 0.020},
			{0.014, 0.011, math.Inf(1)},
			{0.022, 0.018, 0.012},
		},
		ReconfigWeights: []float64{0.5, 1, 2},
		Capacities:      []float64{40, 60, math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 1 {
		return d / m
	}
	return d
}

func TestAttributeCostMatchesPeriodCost(t *testing.T) {
	inst := attrInstance(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		x, u := inst.NewState(), inst.NewState()
		for l := 0; l < inst.NumDataCenters(); l++ {
			for v := 0; v < inst.NumLocations(); v++ {
				if inst.Feasible(l, v) {
					x[l][v] = rng.Float64() * 10
					u[l][v] = rng.Float64()*4 - 2
				}
			}
		}
		prices := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		cost, err := inst.PeriodCost(x, u, prices)
		if err != nil {
			t.Fatal(err)
		}
		dcs, err := inst.AttributeCost(x, u, prices)
		if err != nil {
			t.Fatal(err)
		}
		var res, bw, rec, servers float64
		for _, dc := range dcs {
			if dc.Resource < 0 || dc.Bandwidth < 0 || dc.Reconfig < 0 {
				t.Fatalf("negative component: %+v", dc)
			}
			res += dc.Resource
			bw += dc.Bandwidth
			rec += dc.Reconfig
			servers += dc.Servers
		}
		if e := relErr(res+bw, cost.Resource); e > 1e-9 {
			t.Fatalf("trial %d: resource split %g vs H_k %g (rel %g)", trial, res+bw, cost.Resource, e)
		}
		if e := relErr(rec, cost.Reconfig); e > 1e-9 {
			t.Fatalf("trial %d: reconfig %g vs G_k %g (rel %g)", trial, rec, cost.Reconfig, e)
		}
		if e := relErr(servers, x.Total()); e > 1e-9 {
			t.Fatalf("trial %d: servers %g vs %g", trial, servers, x.Total())
		}
	}
}

func TestAttributeCostBestPlacementHasNoPremium(t *testing.T) {
	inst := attrInstance(t)
	// Location 0's best feasible rate is a=0.010 at DC 0: serving it
	// there entirely must carry zero bandwidth premium, serving it at
	// DC 2 (a=0.022) must.
	x := inst.NewState()
	x[0][0] = 5
	dcs, err := inst.AttributeCost(x, nil, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if dcs[0].Bandwidth != 0 || relErr(dcs[0].Resource, 5) > 1e-12 {
		t.Fatalf("best placement row %+v", dcs[0])
	}
	x = inst.NewState()
	x[2][0] = 5
	dcs, err = inst.AttributeCost(x, nil, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantLocal := 5 * (0.010 / 0.022)
	if relErr(dcs[2].Resource, wantLocal) > 1e-12 || relErr(dcs[2].Bandwidth, 5-wantLocal) > 1e-12 {
		t.Fatalf("premium row %+v, want local %g", dcs[2], wantLocal)
	}
}

func TestAttributeCostErrors(t *testing.T) {
	inst := attrInstance(t)
	x := inst.NewState()
	if _, err := inst.AttributeCost(x, nil, []float64{1}); err == nil {
		t.Error("short prices accepted")
	}
	if _, err := inst.AttributeCost(x, State{{1}}, []float64{1, 1, 1}); err == nil {
		t.Error("ragged control accepted")
	}
	bad := inst.NewState()
	bad[0][0] = -1
	if _, err := inst.AttributeCost(bad, nil, []float64{1, 1, 1}); err == nil {
		t.Error("invalid state accepted")
	}
}

func TestPlacementChurn(t *testing.T) {
	inst := attrInstance(t)
	a := inst.NewState()
	a[0][0], a[1][1] = 4, 3
	if got := inst.PlacementChurn(a, a); got != 0 {
		t.Errorf("identical states churn %g", got)
	}
	// Move location 0's full share from DC 0 (a=0.010) to DC 2
	// (a=0.022), keeping the served demand share x/a constant: the whole
	// of location 0's share moved, location 1's held.
	b := inst.NewState()
	b[2][0] = 4 * (0.022 / 0.010)
	b[1][1] = 3
	share0 := 4 / 0.010
	share1 := 3 / 0.011
	want := share0 / (share0 + share1)
	if got := inst.PlacementChurn(a, b); relErr(got, want) > 1e-9 {
		t.Errorf("partial move churn %g, want %g", got, want)
	}
	// Everything moves: churn 1.
	c := inst.NewState()
	c[2][0] = 4 * (0.022 / 0.010)
	c[0][1] = 3 * (0.015 / 0.011)
	if got := inst.PlacementChurn(a, c); relErr(got, 1) > 1e-9 {
		t.Errorf("full move churn %g, want 1", got)
	}
	if got := inst.PlacementChurn(nil, a); got != 0 {
		t.Errorf("nil prev churn %g", got)
	}
	if got := inst.PlacementChurn(inst.NewState(), inst.NewState()); got != 0 {
		t.Errorf("empty states churn %g", got)
	}
	if inst.PlacementChurn(a, b) < 0 || inst.PlacementChurn(a, b) > 1 {
		t.Error("churn out of [0,1]")
	}
}

func TestControllerLastExplain(t *testing.T) {
	inst := attrInstance(t)
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := c.LastExplain(); e.CapacityDuals != nil {
		t.Fatal("explain non-zero before first step")
	}
	// Demand heavy enough that the cheap capacitated DCs (caps 40 and 60,
	// ~a=0.01 → ≥600 servers required in total) saturate and the QP must
	// lean on the expensive uncapacitated DC 2.
	demand := constForecast(3, []float64{20000, 20000, 20000})
	prices := constForecast(3, []float64{0.05, 0.2, 1.0})
	if _, err := c.Step(demand, prices); err != nil {
		t.Fatal(err)
	}
	e := c.LastExplain()
	if len(e.CapacityDuals) != inst.NumDataCenters() {
		t.Fatalf("duals len %d", len(e.CapacityDuals))
	}
	if e.Quotas != nil || e.ShardOfDC != nil {
		t.Error("monolithic explain must not report quotas/shards")
	}
	binding := e.Binding(nil)
	if len(binding) == 0 {
		t.Fatalf("no binding DC under saturating demand; duals %v", e.CapacityDuals)
	}
	for _, l := range binding {
		if l == 2 {
			t.Error("uncapacitated DC reported binding")
		}
	}
	// Mutating the returned slice must not corrupt the controller.
	e.CapacityDuals[0] = -1
	if c.LastExplain().CapacityDuals[0] == -1 {
		t.Error("LastExplain leaks internal storage")
	}
}

func TestNewAttributionRecord(t *testing.T) {
	inst := attrInstance(t)
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := c.State()
	demand := constForecast(3, []float64{500, 400, 300})
	prices := constForecast(3, []float64{0.1, 0.15, 0.2})
	res, err := c.Step(demand, prices)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := inst.PeriodCost(res.NewState, res.Applied, prices[0])
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAttribution(inst, 1, res.NewState, res.Applied, prev, prices[0],
		cost, res.Degradation, 1500*time.Microsecond, c.LastExplain())
	if err != nil {
		t.Fatal(err)
	}
	if a.Period != 1 || a.WallUS != 1500 || a.Mode != res.Degradation.Mode.String() {
		t.Fatalf("record header %+v", a)
	}
	if e := relErr(a.ComponentSum(), a.Total); e > 1e-9 {
		t.Fatalf("components %g != total %g (rel %g)", a.ComponentSum(), a.Total, e)
	}
	if e := relErr(a.Total, cost.Total()); e > 1e-9 {
		t.Fatalf("clean period total %g != cost %g", a.Total, cost.Total())
	}
	if len(a.DCs) != inst.NumDataCenters() {
		t.Fatalf("dc rows %d", len(a.DCs))
	}
	for _, row := range a.DCs {
		if row.Shard != -1 {
			t.Errorf("monolithic shard = %d", row.Shard)
		}
		if math.IsInf(row.Quota, 0) || math.IsNaN(row.Quota) {
			t.Errorf("non-finite quota on dc %d", row.DC)
		}
	}
	if a.DCs[0].Quota != 40 || a.DCs[1].Quota != 60 || a.DCs[2].Quota != 0 {
		t.Errorf("quotas %g %g %g", a.DCs[0].Quota, a.DCs[1].Quota, a.DCs[2].Quota)
	}
	// Shed periods impute cost: components still sum to Total.
	deg := Degradation{Mode: DegradeSoft, ShedDemand: 2.5}
	a, err = NewAttribution(inst, 2, res.NewState, res.Applied, prev, prices[0],
		cost, deg, time.Millisecond, Explain{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Shed != 2.5*DefaultShedPenalty || a.ShedDemand != 2.5 || a.Mode != "soft" {
		t.Fatalf("shed record %+v", a)
	}
	if e := relErr(a.ComponentSum(), a.Total); e > 1e-9 {
		t.Fatalf("shed components %g != total %g", a.ComponentSum(), a.Total)
	}
}

package core

import (
	"fmt"
	"math"
)

// DegradationMode identifies which rung of the controller's degradation
// ladder produced a step's plan.
type DegradationMode int

const (
	// DegradeNone: the hard horizon QP solved normally.
	DegradeNone DegradationMode = iota
	// DegradeColdRestart: the warm-started solve failed numerically and a
	// cold restart succeeded.
	DegradeColdRestart
	// DegradeAnytime: the hard QP ran out of wall-clock budget and the
	// plan is the solver's best interior-point iterate at the deadline,
	// projected onto the capacity bounds so it is implementable. Above
	// the soft rung: the plan still optimizes the true objective, it is
	// just not converged.
	DegradeAnytime
	// DegradeSoft: the hard QP was infeasible or kept failing, and the
	// soft-constrained relaxation produced the plan (demand may be shed).
	DegradeSoft
	// DegradeHold: even the relaxation failed; the controller held its
	// last allocation, projected onto the surviving capacity.
	DegradeHold
	// DegradeMonolithic: the geographic decomposition's dual-price
	// coordination failed to converge within its round budget (or a
	// region solve failed) and the step fell back to one monolithic
	// horizon QP over the full instance. The plan is exact — the rung
	// records that the fast sharded path was abandoned, not that the
	// answer is degraded.
	DegradeMonolithic
)

// String returns the mode's report label.
func (m DegradationMode) String() string {
	switch m {
	case DegradeNone:
		return "none"
	case DegradeColdRestart:
		return "cold-restart"
	case DegradeAnytime:
		return "anytime"
	case DegradeSoft:
		return "soft"
	case DegradeHold:
		return "hold"
	case DegradeMonolithic:
		return "monolithic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Degradation records how a controller step was produced: which rung of
// the ladder (normal solve → cold restart → soft relaxation → hold-last),
// how many solver retries it took, and how much constraint violation the
// chosen plan carries. A zero value means a clean, fully-constrained step.
type Degradation struct {
	// Mode is the ladder rung that produced the plan.
	Mode DegradationMode
	// ColdRestarts counts warm-start discards (numerical retries) spent on
	// this step, whichever rung finally succeeded.
	ColdRestarts int
	// ShedDemand is the demand (req/s) shed in the applied period by a
	// soft-mode plan.
	ShedDemand float64
	// HorizonShed is the total demand shed across the planned horizon.
	HorizonShed float64
	// CapacityTrim is the number of servers the hold projection dropped to
	// fit the surviving capacity.
	CapacityTrim float64
	// AnytimeIterations is the number of IPM iterations the deadline
	// snapshot completed (anytime mode only).
	AnytimeIterations int
	// Cause is the error the ladder recovered from ("" for a clean step).
	Cause string
}

// Degraded reports whether the step deviated from the normal solve path.
func (d Degradation) Degraded() bool {
	return d.Mode != DegradeNone || d.ColdRestarts > 0
}

// String renders a compact report line.
func (d Degradation) String() string {
	if !d.Degraded() {
		return "ok"
	}
	s := d.Mode.String()
	if d.ColdRestarts > 0 {
		s += fmt.Sprintf(" restarts=%d", d.ColdRestarts)
	}
	if d.ShedDemand > 0 || d.HorizonShed > 0 {
		s += fmt.Sprintf(" shed=%.1f(horizon %.1f)", d.ShedDemand, d.HorizonShed)
	}
	if d.CapacityTrim > 0 {
		s += fmt.Sprintf(" trimmed=%.1f", d.CapacityTrim)
	}
	if d.Mode == DegradeAnytime {
		s += fmt.Sprintf(" iters=%d", d.AnytimeIterations)
	}
	return s
}

// ProjectPlanCapacity projects a partial-iterate (anytime) plan onto the
// instance's current capacities, making it implementable. Exported for
// deadline-bounded callers outside the package — the decomposition
// coordinator projects a deadline-stopped shard's best iterate onto its
// capacity quota before gathering it into the global plan. Returns the
// servers trimmed from the applied step.
func (in *Instance) ProjectPlanCapacity(plan *Plan, x0 State, prices [][]float64) float64 {
	return in.projectPlanCapacity(plan, x0, prices)
}

// projectPlanCapacity makes a partial-iterate plan implementable: every
// planned state whose per-DC load exceeds the capacity is scaled back
// proportionally (the same rule as holdProjection), the controls are
// recomputed as the differences of the corrected states, and the objective
// is re-evaluated at the corrected trajectory. Returns the servers trimmed
// from the applied step (t = 0), the only state the MPC loop executes.
// Mutates the plan in place; duals keep their snapshot values.
func (in *Instance) projectPlanCapacity(plan *Plan, x0 State, prices [][]float64) float64 {
	var trimmed float64
	for t := range plan.X {
		x := plan.X[t]
		for l := 0; l < in.l; l++ {
			c := in.capacity[l]
			if math.IsInf(c, 1) {
				continue
			}
			var total float64
			for v := 0; v < in.v; v++ {
				total += x[l][v]
			}
			if total > c {
				scale := c / total
				for v := 0; v < in.v; v++ {
					x[l][v] *= scale
				}
				if t == 0 {
					trimmed += total - c
				}
			}
		}
	}
	prev := x0
	var obj float64
	for t := range plan.U {
		u, x := plan.U[t], plan.X[t]
		for l := range u {
			for v := range u[l] {
				u[l][v] = x[l][v] - prev[l][v]
			}
		}
		prev = x
		for _, pr := range in.pairs {
			uv := u[pr.l][pr.v]
			obj += prices[t][pr.l]*x[pr.l][pr.v] + in.reconfig[pr.l]*uv*uv
		}
	}
	plan.Objective = obj
	return trimmed
}

// holdProjection returns the allocation closest to s (by per-DC
// proportional scaling) that fits the instance's current capacities, along
// with the number of servers dropped. It is the degradation ladder's last
// rung: always well defined, no solve involved.
func (in *Instance) holdProjection(s State) (State, float64) {
	next := in.NewState()
	var trimmed float64
	for l := 0; l < in.l; l++ {
		var total float64
		for v := 0; v < in.v; v++ {
			next[l][v] = s[l][v]
			total += s[l][v]
		}
		c := in.capacity[l]
		if total > c {
			scale := c / total
			for v := 0; v < in.v; v++ {
				next[l][v] *= scale
			}
			trimmed += total - c
		}
	}
	return next, trimmed
}

// holdPlan synthesizes a full-length plan that applies the projection step
// and then holds: U[0] moves from the current state onto the projected
// one, all later controls are zero. Duals are zero — the plan carries no
// optimality information — and there is no warm-start capsule.
func (in *Instance) holdPlan(x0 State, prices [][]float64) (*Plan, float64) {
	next, trimmed := in.holdProjection(x0)
	w := len(prices)
	plan := &Plan{
		U:             make([]State, w),
		X:             make([]State, w),
		CapacityDuals: make([][]float64, w),
		DemandDuals:   make([][]float64, w),
	}
	u0 := in.NewState()
	for l := 0; l < in.l; l++ {
		for v := 0; v < in.v; v++ {
			u0[l][v] = next[l][v] - x0[l][v]
			plan.Objective += in.reconfig[l] * u0[l][v] * u0[l][v]
		}
	}
	for t := 0; t < w; t++ {
		if t == 0 {
			plan.U[t] = u0
		} else {
			plan.U[t] = in.NewState()
		}
		plan.X[t] = next
		plan.CapacityDuals[t] = make([]float64, in.l)
		plan.DemandDuals[t] = make([]float64, in.v)
		for l := 0; l < in.l; l++ {
			for v := 0; v < in.v; v++ {
				plan.Objective += prices[t][l] * next[l][v]
			}
		}
	}
	return plan, trimmed
}

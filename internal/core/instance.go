// Package core implements the paper's primary contribution: the Dynamic
// Service Placement Problem (DSPP, §IV) and its Model Predictive Control
// solution (Algorithm 1, §V).
//
// A DSPP instance is defined over L data centers and V client locations.
// The state x ∈ R₊^{L·V} counts servers at DC l dedicated to demand from
// location v; the control u changes x between periods. Each period the SP
// pays p_k^l per server plus a quadratic reconfiguration penalty c^l·u².
// Demand must be absorbed within an SLA latency bound, which the M/M/1
// reduction (package queue) turns into the linear constraint
// Σ_l x^lv / a^lv ≥ D^v, and DC capacities bound Σ_v x^lv ≤ C^l.
//
// The MPC controller solves, at each period, a strictly convex QP over the
// next W periods (states substituted out, so the decision variable is the
// control sequence) and applies only the first control — exactly the
// paper's Algorithm 1.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dspp/internal/queue"
)

// Sentinel errors.
var (
	// ErrBadInstance flags inconsistent instance dimensions or values.
	ErrBadInstance = errors.New("core: invalid instance")
	// ErrInfeasible means a location has demand but no feasible data
	// center, or the requested horizon inputs are malformed.
	ErrInfeasible = errors.New("core: infeasible placement")
	// ErrBadInput flags malformed controller inputs.
	ErrBadInput = errors.New("core: invalid input")
)

// Instance is a DSPP instance: the placement graph with SLA coefficients,
// per-DC reconfiguration weights and capacities. Everything but the
// capacity values (see SetCapacities) is immutable after construction.
type Instance struct {
	l, v int
	// a[l][v] is the SLA coefficient a^lv (servers per unit arrival
	// rate); +Inf marks an infeasible (l, v) pair, excluded from the QP.
	a [][]float64
	// reconfig[l] is the quadratic reconfiguration weight c^l > 0.
	reconfig []float64
	// capacity[l] is C^l; +Inf means uncapacitated.
	capacity []float64
	// pairs enumerates the feasible (l, v) pairs; pairIdx[l][v] is the
	// dense variable index of the pair or -1.
	pairs   []pair
	pairIdx [][]int
	// Compressed support adjacency, the two directions of the pruned
	// (location, DC) index map: locPairs[v] lists the feasible DCs of
	// location v, dcPairs[l] the feasible locations of DC l, each entry
	// carrying the dense pair index and 1/a^lv. Hot loops (QP
	// right-hand-side fills, assignment, slack checks) iterate these lists
	// instead of scanning the full L×V grid testing pairIdx — on
	// geo-realistic topologies most pairs are SLA-infeasible, so the lists
	// are a small fraction of the grid.
	locPairs [][]pairRef
	dcPairs  [][]pairRef
	// aBest[v] is the smallest (most SLA-efficient) a^lv over location
	// v's feasible DCs — the reference rate the cost attribution uses to
	// split resource cost into a local component and a bandwidth-latency
	// premium (see AttributeCost).
	aBest []float64

	// qpCache holds the horizon QP's data-independent structure per
	// horizon length (see horizonStructure): the repeated solves of an MPC
	// or best-response loop then rebuild only the O(n) cost and
	// right-hand-side vectors. Guarded by qpMu — instances are shared
	// across the parallel sweep and experiment workers. softCache is the
	// analogue for the soft-constrained relaxation (see softStructure).
	qpMu      sync.Mutex
	qpCache   map[int]*horizonStruct
	softCache map[int]*horizonStruct
}

type pair struct{ l, v int }

// pairRef is one entry of the compressed support adjacency: a feasible
// (l, v) pair seen from one of its endpoints, with the dense QP variable
// index and the reciprocal SLA coefficient precomputed (the hot loops
// always divide by a^lv).
type pairRef struct {
	l, v, idx int
	aInv      float64
}

// Config assembles an Instance.
type Config struct {
	// SLA is the L×V matrix of SLA coefficients a^lv. Use math.Inf(1)
	// for pairs that can never meet the SLA.
	SLA [][]float64
	// ReconfigWeights holds c^l > 0 per data center.
	ReconfigWeights []float64
	// Capacities holds C^l per data center; +Inf (or 0 treated as an
	// error) for explicit bounds. Use math.Inf(1) for uncapacitated DCs.
	Capacities []float64
}

// NewInstance validates and builds an instance.
func NewInstance(cfg Config) (*Instance, error) {
	l := len(cfg.SLA)
	if l == 0 {
		return nil, fmt.Errorf("no data centers: %w", ErrBadInstance)
	}
	v := len(cfg.SLA[0])
	if v == 0 {
		return nil, fmt.Errorf("no client locations: %w", ErrBadInstance)
	}
	if len(cfg.ReconfigWeights) != l {
		return nil, fmt.Errorf("reconfig weights %d, want %d: %w", len(cfg.ReconfigWeights), l, ErrBadInstance)
	}
	if len(cfg.Capacities) != l {
		return nil, fmt.Errorf("capacities %d, want %d: %w", len(cfg.Capacities), l, ErrBadInstance)
	}
	inst := &Instance{
		l: l, v: v,
		a:        make([][]float64, l),
		reconfig: append([]float64(nil), cfg.ReconfigWeights...),
		capacity: append([]float64(nil), cfg.Capacities...),
		pairIdx:  make([][]int, l),
	}
	for li := 0; li < l; li++ {
		if len(cfg.SLA[li]) != v {
			return nil, fmt.Errorf("SLA row %d has %d cols, want %d: %w", li, len(cfg.SLA[li]), v, ErrBadInstance)
		}
		if w := cfg.ReconfigWeights[li]; w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("reconfig weight[%d] = %g: %w", li, w, ErrBadInstance)
		}
		if c := cfg.Capacities[li]; c <= 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("capacity[%d] = %g: %w", li, c, ErrBadInstance)
		}
		inst.a[li] = append([]float64(nil), cfg.SLA[li]...)
		inst.pairIdx[li] = make([]int, v)
		for vi := 0; vi < v; vi++ {
			aVal := cfg.SLA[li][vi]
			if math.IsNaN(aVal) || aVal <= 0 {
				return nil, fmt.Errorf("a[%d][%d] = %g: %w", li, vi, aVal, ErrBadInstance)
			}
			if math.IsInf(aVal, 1) {
				inst.pairIdx[li][vi] = -1
				continue
			}
			inst.pairIdx[li][vi] = len(inst.pairs)
			inst.pairs = append(inst.pairs, pair{l: li, v: vi})
		}
	}
	// Compressed adjacency: one pass over the dense pair list fans the
	// support out to both endpoints. The backing arrays are shared (one
	// allocation per direction) since the per-endpoint counts are known.
	inst.locPairs = make([][]pairRef, v)
	inst.dcPairs = make([][]pairRef, l)
	locCount := make([]int, v)
	dcCount := make([]int, l)
	for _, pr := range inst.pairs {
		locCount[pr.v]++
		dcCount[pr.l]++
	}
	locBacking := make([]pairRef, len(inst.pairs))
	dcBacking := make([]pairRef, len(inst.pairs))
	for vi := 0; vi < v; vi++ {
		inst.locPairs[vi] = locBacking[:0:locCount[vi]]
		locBacking = locBacking[locCount[vi]:]
	}
	for li := 0; li < l; li++ {
		inst.dcPairs[li] = dcBacking[:0:dcCount[li]]
		dcBacking = dcBacking[dcCount[li]:]
	}
	for idx, pr := range inst.pairs {
		ref := pairRef{l: pr.l, v: pr.v, idx: idx, aInv: 1 / inst.a[pr.l][pr.v]}
		inst.locPairs[pr.v] = append(inst.locPairs[pr.v], ref)
		inst.dcPairs[pr.l] = append(inst.dcPairs[pr.l], ref)
	}
	// Every location must have at least one feasible DC.
	for vi := 0; vi < v; vi++ {
		if len(inst.locPairs[vi]) == 0 {
			return nil, fmt.Errorf("location %d has no feasible data center: %w", vi, ErrInfeasible)
		}
	}
	inst.aBest = make([]float64, v)
	for vi := 0; vi < v; vi++ {
		best := math.Inf(1)
		for _, pr := range inst.locPairs[vi] {
			if a := inst.a[pr.l][pr.v]; a < best {
				best = a
			}
		}
		inst.aBest[vi] = best
	}
	return inst, nil
}

// SupportStats summarizes the SLA-sparsity pruning of an instance: how many
// of the L·V (location, DC) pairs survive the latency + M/M/1 bound and
// therefore carry QP variables. The horizon QP has FeasiblePairs·W
// variables, so PrunedFraction is the per-period share of the dense problem
// the pruning removed.
type SupportStats struct {
	// DataCenters and Locations echo the instance dimensions L and V.
	DataCenters, Locations int
	// TotalPairs = L·V, the unpruned pair count.
	TotalPairs int
	// FeasiblePairs is the number of pairs meeting the SLA bound — the
	// per-period QP variable count.
	FeasiblePairs int
	// PrunedPairs = TotalPairs − FeasiblePairs.
	PrunedPairs int
	// PrunedFraction = PrunedPairs / TotalPairs (0 when TotalPairs is 0).
	PrunedFraction float64
	// MinDCsPerLocation / MaxDCsPerLocation bound the per-location support
	// width (the minimum is ≥ 1 by construction).
	MinDCsPerLocation, MaxDCsPerLocation int
}

// Support reports the instance's SLA-sparsity statistics.
func (in *Instance) Support() SupportStats {
	st := SupportStats{
		DataCenters:   in.l,
		Locations:     in.v,
		TotalPairs:    in.l * in.v,
		FeasiblePairs: len(in.pairs),
	}
	st.PrunedPairs = st.TotalPairs - st.FeasiblePairs
	if st.TotalPairs > 0 {
		st.PrunedFraction = float64(st.PrunedPairs) / float64(st.TotalPairs)
	}
	for v, refs := range in.locPairs {
		if n := len(refs); v == 0 || n < st.MinDCsPerLocation {
			st.MinDCsPerLocation = n
		}
		if n := len(refs); n > st.MaxDCsPerLocation {
			st.MaxDCsPerLocation = n
		}
	}
	return st
}

// FeasibleDCs appends to dst the data-center indices that can serve
// location v within the SLA (ascending) and returns the extended slice.
// It exposes the support adjacency to the geographic decomposition layer
// without copying the instance internals; dst may be nil.
func (in *Instance) FeasibleDCs(v int, dst []int) []int {
	if v < 0 || v >= in.v {
		return dst
	}
	for _, pr := range in.locPairs[v] {
		dst = append(dst, pr.l)
	}
	return dst
}

// FeasibleLocations appends to dst the location indices data center l can
// serve within the SLA (ascending) and returns the extended slice; dst
// may be nil.
func (in *Instance) FeasibleLocations(l int, dst []int) []int {
	if l < 0 || l >= in.l {
		return dst
	}
	for _, pr := range in.dcPairs[l] {
		dst = append(dst, pr.v)
	}
	return dst
}

// SLAConfig builds the SLA coefficient matrix from a latency matrix and a
// uniform queueing configuration, excluding pairs the SLA can never admit
// (a^lv = +Inf), per paper eq. 10.
type SLAConfig struct {
	// Mu is the per-server service rate (req/s).
	Mu float64
	// MaxDelay is the SLA latency bound d̄ applied to every pair.
	MaxDelay float64
	// ReservationRatio and Percentile are the §IV-B extensions; zero
	// values mean r = 1 and mean-delay SLA.
	ReservationRatio float64
	Percentile       float64
}

// SLAMatrix converts an L×V network latency matrix into the a^lv matrix.
func SLAMatrix(latency [][]float64, cfg SLAConfig) ([][]float64, error) {
	if len(latency) == 0 || len(latency[0]) == 0 {
		return nil, fmt.Errorf("empty latency matrix: %w", ErrBadInstance)
	}
	out := make([][]float64, len(latency))
	for l, row := range latency {
		out[l] = make([]float64, len(row))
		for v, d := range row {
			params := queue.SLAParams{
				Mu:               cfg.Mu,
				NetworkDelay:     d,
				MaxDelay:         cfg.MaxDelay,
				ReservationRatio: cfg.ReservationRatio,
				Percentile:       cfg.Percentile,
			}
			a, err := params.Coefficient()
			if err != nil {
				return nil, fmt.Errorf("pair (%d,%d): %w", l, v, err)
			}
			out[l][v] = a
		}
	}
	return out, nil
}

// NumDataCenters returns L.
func (in *Instance) NumDataCenters() int { return in.l }

// NumLocations returns V.
func (in *Instance) NumLocations() int { return in.v }

// NumPairs returns the number of feasible (l, v) pairs, i.e. the per-period
// decision dimension.
func (in *Instance) NumPairs() int { return len(in.pairs) }

// Feasible reports whether pair (l, v) can meet the SLA.
func (in *Instance) Feasible(l, v int) bool {
	if l < 0 || l >= in.l || v < 0 || v >= in.v {
		return false
	}
	return in.pairIdx[l][v] >= 0
}

// SLACoefficient returns a^lv (possibly +Inf).
func (in *Instance) SLACoefficient(l, v int) (float64, error) {
	if l < 0 || l >= in.l || v < 0 || v >= in.v {
		return 0, fmt.Errorf("pair (%d,%d) of (%d,%d): %w", l, v, in.l, in.v, ErrBadInput)
	}
	return in.a[l][v], nil
}

// Capacity returns C^l.
func (in *Instance) Capacity(l int) (float64, error) {
	if l < 0 || l >= in.l {
		return 0, fmt.Errorf("dc %d of %d: %w", l, in.l, ErrBadInput)
	}
	return in.capacity[l], nil
}

// Capacities returns a copy of the per-DC capacity vector (callers snapshot
// it before fault injection and restore it afterwards via SetCapacities).
func (in *Instance) Capacities() []float64 {
	return append([]float64(nil), in.capacity...)
}

// ReconfigWeight returns c^l.
func (in *Instance) ReconfigWeight(l int) (float64, error) {
	if l < 0 || l >= in.l {
		return 0, fmt.Errorf("dc %d of %d: %w", l, in.l, ErrBadInput)
	}
	return in.reconfig[l], nil
}

// SetCapacities updates the per-DC capacities in place. The finiteness
// pattern must match the current capacities: which DCs are capacitated
// determines the horizon QP's cached constraint structure, while the
// capacity values only enter the per-solve right-hand side. It must not be
// called concurrently with solves on the same instance. The best-response
// game uses it to move a provider's quotas between rounds without
// rebuilding the instance.
func (in *Instance) SetCapacities(caps []float64) error {
	if len(caps) != in.l {
		return fmt.Errorf("capacities %d, want %d: %w", len(caps), in.l, ErrBadInstance)
	}
	for l, c := range caps {
		if c <= 0 || math.IsNaN(c) {
			return fmt.Errorf("capacity[%d] = %g: %w", l, c, ErrBadInstance)
		}
		if math.IsInf(c, 1) != math.IsInf(in.capacity[l], 1) {
			return fmt.Errorf("capacity[%d] = %g changes the capacitated set: %w", l, c, ErrBadInstance)
		}
	}
	copy(in.capacity, caps)
	return nil
}

// WithCapacities returns a copy of the instance with new per-DC capacities
// (used by the competition game to impose per-provider quotas).
func (in *Instance) WithCapacities(caps []float64) (*Instance, error) {
	if len(caps) != in.l {
		return nil, fmt.Errorf("capacities %d, want %d: %w", len(caps), in.l, ErrBadInstance)
	}
	sla := make([][]float64, in.l)
	for l := range sla {
		sla[l] = append([]float64(nil), in.a[l]...)
	}
	return NewInstance(Config{
		SLA:             sla,
		ReconfigWeights: append([]float64(nil), in.reconfig...),
		Capacities:      append([]float64(nil), caps...),
	})
}

// State is a dense L×V server allocation, indexed x[l][v]. Infeasible
// pairs must stay at zero.
type State [][]float64

// NewState returns the all-zero allocation for the instance. The rows
// share one backing array, so building a state costs two allocations
// regardless of L — the MPC loop creates two per horizon step.
func (in *Instance) NewState() State {
	s := make(State, in.l)
	data := make([]float64, in.l*in.v)
	for l := range s {
		s[l] = data[l*in.v : (l+1)*in.v : (l+1)*in.v]
	}
	return s
}

// CheckState validates dimensions and nonnegativity against the instance.
func (in *Instance) CheckState(s State) error {
	if len(s) != in.l {
		return fmt.Errorf("state has %d DCs, want %d: %w", len(s), in.l, ErrBadInput)
	}
	for l, row := range s {
		if len(row) != in.v {
			return fmt.Errorf("state row %d has %d cols, want %d: %w", l, len(row), in.v, ErrBadInput)
		}
		for v, x := range row {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("state[%d][%d] = %g: %w", l, v, x, ErrBadInput)
			}
			if x > 0 && in.pairIdx[l][v] < 0 {
				return fmt.Errorf("state[%d][%d] = %g on infeasible pair: %w", l, v, x, ErrBadInput)
			}
		}
	}
	return nil
}

// Clone deep-copies a state.
func (s State) Clone() State {
	out := make(State, len(s))
	for i, row := range s {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// TotalByDC returns Σ_v x^lv per data center.
func (s State) TotalByDC() []float64 {
	out := make([]float64, len(s))
	for l, row := range s {
		for _, x := range row {
			out[l] += x
		}
	}
	return out
}

// Total returns the total number of servers in the allocation.
func (s State) Total() float64 {
	var t float64
	for _, row := range s {
		for _, x := range row {
			t += x
		}
	}
	return t
}

// CostBreakdown reports the per-period cost components (paper eqs. 3–4).
type CostBreakdown struct {
	Resource float64 // H_k = Σ p^l x^lv
	Reconfig float64 // G_k = Σ c^l (u^lv)²
}

// Total returns H_k + G_k.
func (c CostBreakdown) Total() float64 { return c.Resource + c.Reconfig }

// PeriodCost computes the cost of holding allocation x at prices p (per
// DC) after applying control u (x is the post-control state; u may be nil
// for a pure holding cost).
func (in *Instance) PeriodCost(x State, u State, prices []float64) (CostBreakdown, error) {
	if err := in.CheckState(x); err != nil {
		return CostBreakdown{}, err
	}
	if len(prices) != in.l {
		return CostBreakdown{}, fmt.Errorf("prices %d, want %d: %w", len(prices), in.l, ErrBadInput)
	}
	var cb CostBreakdown
	for l := 0; l < in.l; l++ {
		for v := 0; v < in.v; v++ {
			cb.Resource += prices[l] * x[l][v]
		}
	}
	if u != nil {
		if len(u) != in.l {
			return CostBreakdown{}, fmt.Errorf("control has %d DCs, want %d: %w", len(u), in.l, ErrBadInput)
		}
		for l := 0; l < in.l; l++ {
			if len(u[l]) != in.v {
				return CostBreakdown{}, fmt.Errorf("control row %d has %d cols, want %d: %w", l, len(u[l]), in.v, ErrBadInput)
			}
			for v := 0; v < in.v; v++ {
				cb.Reconfig += in.reconfig[l] * u[l][v] * u[l][v]
			}
		}
	}
	return cb, nil
}

// DCCost is one data center's share of a period's realized cost, with
// the resource term H_k split into a local component and a
// bandwidth-latency premium: each (l, v) pair's p^l·x^lv scales by
// aBest_v/a^lv into the cost of serving the same demand share at the
// location's most SLA-efficient feasible rate, and the remainder is the
// premium paid for placing it at this (farther, higher-a) DC. The split
// partitions H_k by construction: Resource + Bandwidth over all DCs
// sums to PeriodCost's resource term (up to float rounding).
type DCCost struct {
	Resource  float64 // p·x at the location-best SLA rate
	Bandwidth float64 // premium over the location-best rate
	Reconfig  float64 // c^l Σ_v (u^lv)²
	Servers   float64 // Σ_v x^lv
}

// AttributeCost decomposes the period cost of holding x (after control
// u, which may be nil) at prices into per-DC components. The per-DC
// rows sum to PeriodCost(x, u, prices) component for component.
func (in *Instance) AttributeCost(x State, u State, prices []float64) ([]DCCost, error) {
	if err := in.CheckState(x); err != nil {
		return nil, err
	}
	if len(prices) != in.l {
		return nil, fmt.Errorf("prices %d, want %d: %w", len(prices), in.l, ErrBadInput)
	}
	if u != nil && len(u) != in.l {
		return nil, fmt.Errorf("control has %d DCs, want %d: %w", len(u), in.l, ErrBadInput)
	}
	out := make([]DCCost, in.l)
	for l := 0; l < in.l; l++ {
		dc := &out[l]
		// Infeasible pairs hold x = 0 (CheckState), so iterating the
		// support adjacency covers the whole resource sum.
		for _, pr := range in.dcPairs[l] {
			xv := x[l][pr.v]
			if xv == 0 {
				continue
			}
			r := prices[l] * xv
			local := r * (in.aBest[pr.v] * pr.aInv) // aBest/a ≤ 1
			dc.Resource += local
			dc.Bandwidth += r - local
			dc.Servers += xv
		}
		if u != nil {
			if len(u[l]) != in.v {
				return nil, fmt.Errorf("control row %d has %d cols, want %d: %w", l, len(u[l]), in.v, ErrBadInput)
			}
			for v := 0; v < in.v; v++ {
				dc.Reconfig += in.reconfig[l] * u[l][v] * u[l][v]
			}
		}
	}
	return out, nil
}

// PlacementChurn measures the fraction of served demand that moved
// between DCs from prev to cur: allocations convert to served demand
// shares (x^lv/a^lv), half the total absolute movement is the moved
// mass, and the result normalizes by the larger of the two totals —
// 0 when placements held (or either state is nil/empty), 1 when
// everything moved. Always in [0, 1].
func (in *Instance) PlacementChurn(prev, cur State) float64 {
	if len(prev) != in.l || len(cur) != in.l {
		return 0
	}
	var moved, totPrev, totCur float64
	for l := 0; l < in.l; l++ {
		for _, pr := range in.dcPairs[l] {
			sPrev := prev[l][pr.v] * pr.aInv
			sCur := cur[l][pr.v] * pr.aInv
			d := sCur - sPrev
			if d < 0 {
				d = -d
			}
			moved += d
			totPrev += sPrev
			totCur += sCur
		}
	}
	den := totPrev
	if totCur > den {
		den = totCur
	}
	if den <= 0 {
		return 0
	}
	return 0.5 * moved / den
}

package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"dspp/internal/qp"
)

// bigInstance builds an instance large enough that a cold horizon solve
// takes well over a millisecond, so a small step budget reliably trips
// the solver's deadline mid-iteration.
func bigInstance(t *testing.T, l, v int) *Instance {
	t.Helper()
	sla := make([][]float64, l)
	for i := range sla {
		sla[i] = make([]float64, v)
		for j := range sla[i] {
			sla[i][j] = 0.005 + 0.001*float64((i+j)%7)
		}
	}
	rec := make([]float64, l)
	caps := make([]float64, l)
	for i := range rec {
		rec[i] = 1e-3
		caps[i] = 5000
	}
	inst, err := NewInstance(Config{SLA: sla, ReconfigWeights: rec, Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// varyForecast fills a W×width forecast with deterministic variation so
// consecutive steps exercise real re-solves rather than fixed points.
func varyForecast(w, width int, base, amp float64) [][]float64 {
	out := make([][]float64, w)
	for t := range out {
		out[t] = make([]float64, width)
		for i := range out[t] {
			out[t][i] = base + amp*float64((t*7+i*3)%11)
		}
	}
	return out
}

func assertCapacityFeasible(t *testing.T, inst *Instance, s State, label string) {
	t.Helper()
	caps := inst.Capacities()
	for l, row := range s {
		if math.IsInf(caps[l], 1) {
			continue
		}
		var total float64
		for _, x := range row {
			total += x
		}
		if total > caps[l]+1e-6 {
			t.Errorf("%s: DC %d load %g exceeds capacity %g", label, l, total, caps[l])
		}
	}
}

// TestBudgetGenerousBitIdentical: with a budget the deadline never
// reaches, the budgeted step path (anytime bookkeeping on, solve under a
// timeout context) must be bit-identical to the unbudgeted one.
func TestBudgetGenerousBitIdentical(t *testing.T) {
	inst := twoByTwo(t)
	plain, err := NewController(inst, 4)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := NewController(inst, 4, WithBudget(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		demand := varyForecast(4, 2, 15+3*float64(k), 4)
		prices := varyForecast(4, 2, 0.1, 0.02)
		a, err := plain.Step(demand, prices)
		if err != nil {
			t.Fatalf("step %d plain: %v", k, err)
		}
		b, err := budgeted.Step(demand, prices)
		if err != nil {
			t.Fatalf("step %d budgeted: %v", k, err)
		}
		if b.Degradation.Mode != DegradeNone {
			t.Fatalf("step %d: generous budget degraded: %v", k, b.Degradation)
		}
		for l := range a.NewState {
			for v := range a.NewState[l] {
				if a.NewState[l][v] != b.NewState[l][v] {
					t.Fatalf("step %d: state[%d][%d] %g != %g (must be bitwise equal)",
						k, l, v, a.NewState[l][v], b.NewState[l][v])
				}
				if a.Applied[l][v] != b.Applied[l][v] {
					t.Fatalf("step %d: control[%d][%d] differs", k, l, v)
				}
			}
		}
		if a.Plan.Objective != b.Plan.Objective {
			t.Fatalf("step %d: objective %g != %g", k, a.Plan.Objective, b.Plan.Objective)
		}
	}
	if budgeted.MissStreak() != 0 {
		t.Errorf("miss streak = %d after clean steps", budgeted.MissStreak())
	}
}

// TestBudgetStallExhaustedHolds: a stall longer than the whole budget
// leaves no time for any solve, so the ladder must fall straight through
// to hold — deterministically, since the sleep alone overruns the
// solving share.
func TestBudgetStallExhaustedHolds(t *testing.T) {
	inst := singleDC(t, 1e-3, 100)
	init := inst.NewState()
	init[0][0] = 8
	c, err := NewController(inst, 3, WithInitialState(init), WithBudget(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.SetStall(80 * time.Millisecond)
	demand := constForecast(3, []float64{500})
	prices := constForecast(3, []float64{0.1})
	res, err := c.Step(demand, prices)
	if err != nil {
		t.Fatalf("exhausted-budget step errored: %v", err)
	}
	if res.Degradation.Mode != DegradeHold {
		t.Fatalf("mode = %v, want hold", res.Degradation.Mode)
	}
	if res.Degradation.Cause == "" {
		t.Error("hold cause not recorded")
	}
	if res.NewState[0][0] != 8 {
		t.Errorf("hold moved the state to %g", res.NewState[0][0])
	}
	if c.MissStreak() == 0 {
		t.Error("deadline miss not counted")
	}
	// Clearing the stall recovers: the backoff halves the solving share,
	// but a small warm solve still finishes inside it and the streak
	// resets.
	c.SetStall(0)
	res2, err := c.Step(demand, prices)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degradation.Degraded() {
		t.Errorf("recovery step degraded: %v", res2.Degradation)
	}
	if c.MissStreak() != 0 {
		t.Errorf("miss streak = %d after clean step", c.MissStreak())
	}
}

// TestBudgetAnytimeRung drives a large cold solve into a small budget so
// the solver's deadline fires mid-iteration and the step degrades to the
// anytime rung: the best interior-point iterate so far, projected onto
// the capacity bounds. The budget ladder shrinks until the deadline
// beats the solver, so the test is robust to machine speed.
func TestBudgetAnytimeRung(t *testing.T) {
	inst := bigInstance(t, 12, 24)
	demand := varyForecast(8, 24, 300, 40)
	prices := varyForecast(8, 12, 0.1, 0.01)
	var hit *StepResult
	for _, budget := range []time.Duration{
		4 * time.Millisecond, 2 * time.Millisecond, time.Millisecond,
		500 * time.Microsecond, 250 * time.Microsecond,
	} {
		c, err := NewController(inst, 8, WithBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Step(demand, prices)
		if err != nil {
			t.Fatalf("budget %v: step errored: %v", budget, err)
		}
		if res.Degradation.Mode == DegradeAnytime {
			hit = res
			if c.MissStreak() == 0 {
				t.Error("anytime step did not count a deadline miss")
			}
			break
		}
	}
	if hit == nil {
		t.Fatal("no budget in the ladder triggered the anytime rung")
	}
	deg := hit.Degradation
	if deg.Cause == "" {
		t.Error("anytime cause not recorded")
	}
	if deg.AnytimeIterations < 0 {
		t.Errorf("anytime iterations = %d", deg.AnytimeIterations)
	}
	assertCapacityFeasible(t, inst, hit.NewState, "anytime state")
	for tt, x := range hit.Plan.X {
		assertCapacityFeasible(t, inst, x, "anytime plan step "+string(rune('0'+tt)))
	}
	// The projected plan must stay internally consistent: U[t] is the
	// difference of consecutive states.
	prev := inst.NewState()
	for tt := range hit.Plan.U {
		for l := range hit.Plan.U[tt] {
			for v := range hit.Plan.U[tt][l] {
				want := hit.Plan.X[tt][l][v] - prev[l][v]
				if math.Abs(hit.Plan.U[tt][l][v]-want) > 1e-9 {
					t.Fatalf("plan U[%d][%d][%d] = %g, want %g", tt, l, v, hit.Plan.U[tt][l][v], want)
				}
			}
		}
		prev = hit.Plan.X[tt]
	}
}

// TestProjectPlanCapacity checks the anytime projection in isolation:
// over-capacity states are scaled back proportionally, controls are
// recomputed as state differences, and the objective is re-evaluated at
// the corrected trajectory (verified against PeriodCost).
func TestProjectPlanCapacity(t *testing.T) {
	inst := twoByTwo(t) // capacities 100, 100
	w := 2
	plan := &Plan{U: make([]State, w), X: make([]State, w)}
	for tt := 0; tt < w; tt++ {
		plan.U[tt] = inst.NewState()
		plan.X[tt] = inst.NewState()
	}
	plan.X[0][0][0], plan.X[0][0][1] = 150, 50 // DC 0 at 200: over by 100
	plan.X[0][1][0] = 30
	plan.X[1][0][0], plan.X[1][0][1] = 60, 20
	plan.X[1][1][0] = 120 // DC 1 over at t=1: scaled, but not counted as trim
	x0 := inst.NewState()
	prices := constForecast(w, []float64{0.1, 0.2})

	trimmed := inst.projectPlanCapacity(plan, x0, prices)
	if math.Abs(trimmed-100) > 1e-9 {
		t.Errorf("trimmed = %g, want 100 (t=0 only)", trimmed)
	}
	if math.Abs(plan.X[0][0][0]-75) > 1e-9 || math.Abs(plan.X[0][0][1]-25) > 1e-9 {
		t.Errorf("t=0 DC 0 projected to %v, want 75/25", plan.X[0][0])
	}
	if math.Abs(plan.X[1][1][0]-100) > 1e-9 {
		t.Errorf("t=1 DC 1 projected to %g, want 100", plan.X[1][1][0])
	}
	for tt := range plan.X {
		assertCapacityFeasible(t, inst, plan.X[tt], "projected plan")
	}
	// Objective must equal the sum of per-period costs at the corrected
	// trajectory.
	var want float64
	prev := x0
	for tt := 0; tt < w; tt++ {
		cost, err := inst.PeriodCost(plan.X[tt], plan.U[tt], prices[tt])
		if err != nil {
			t.Fatal(err)
		}
		want += cost.Total()
		for l := range plan.U[tt] {
			for v := range plan.U[tt][l] {
				if math.Abs(plan.U[tt][l][v]-(plan.X[tt][l][v]-prev[l][v])) > 1e-9 {
					t.Fatalf("U[%d][%d][%d] inconsistent after projection", tt, l, v)
				}
			}
		}
		prev = plan.X[tt]
	}
	if math.Abs(plan.Objective-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("projected objective %g, want %g", plan.Objective, want)
	}
}

// TestSessionAnytimeContract: a deadline-truncated session solve hands
// back both a plan and the wrapped ErrDeadline, and the plan carries the
// iterate-quality metadata.
func TestSessionAnytimeContract(t *testing.T) {
	inst := bigInstance(t, 12, 24)
	opts := qp.DefaultOptions()
	opts.Anytime = true
	ses, err := inst.NewHorizonSession(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	input := HorizonInput{
		X0:     inst.NewState(),
		Demand: varyForecast(8, 24, 300, 40),
		Prices: varyForecast(8, 12, 0.1, 0.01),
	}
	// An already-expired deadline trips the solver at its first poll;
	// the session must still return the initial-iterate plan.
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	plan, err := ses.SolveCtx(ctx, input)
	if !errors.Is(err, qp.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if plan == nil {
		t.Fatal("anytime session returned nil plan with deadline error")
	}
	if plan.Anytime == nil {
		t.Fatal("plan missing anytime metadata")
	}
	if plan.Anytime.Iterations != 0 {
		t.Errorf("iterations = %d, want 0 for an expired deadline", plan.Anytime.Iterations)
	}
}

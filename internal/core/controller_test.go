package core

import (
	"errors"
	"math"
	"testing"

	"dspp/internal/qp"
)

func TestNewControllerValidation(t *testing.T) {
	inst := twoByTwo(t)
	if _, err := NewController(nil, 3); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil instance err = %v", err)
	}
	if _, err := NewController(inst, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("horizon 0 err = %v", err)
	}
	bad := inst.NewState()
	bad[0][0] = -5
	if _, err := NewController(inst, 2, WithInitialState(bad)); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad initial state err = %v", err)
	}
}

func TestControllerAccessors(t *testing.T) {
	inst := twoByTwo(t)
	init := inst.NewState()
	init[0][0] = 4
	c, err := NewController(inst, 5, WithInitialState(init), WithQPOptions(qp.DefaultOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Horizon() != 5 {
		t.Errorf("Horizon = %d", c.Horizon())
	}
	if c.Instance() != inst {
		t.Error("Instance identity lost")
	}
	s := c.State()
	if s[0][0] != 4 {
		t.Errorf("State = %v", s)
	}
	s[0][0] = 99 // must not leak into the controller
	if c.State()[0][0] != 4 {
		t.Error("State exposes internal storage")
	}
	next := inst.NewState()
	next[1][1] = 2
	if err := c.SetState(next); err != nil {
		t.Fatal(err)
	}
	if c.State()[1][1] != 2 {
		t.Error("SetState did not apply")
	}
	next[1][1] = -1
	if err := c.SetState(next); !errors.Is(err, ErrBadInput) {
		t.Errorf("SetState bad err = %v", err)
	}
}

func TestControllerTracksDemand(t *testing.T) {
	inst := singleDC(t, 1e-4, math.Inf(1))
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp demand up, then down; allocation should follow (a=0.01 →
	// servers ≈ demand/100).
	demands := []float64{1000, 3000, 5000, 3000, 1000}
	var allocs []float64
	for _, d := range demands {
		forecast := constForecast(3, []float64{d})
		prices := constForecast(3, []float64{0.1})
		res, err := c.Step(forecast, prices)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, res.NewState[0][0])
		// Invariant: demand met after every applied step.
		slack, err := inst.DemandSlack(res.NewState, []float64{d})
		if err != nil {
			t.Fatal(err)
		}
		if slack[0] < -1e-4 {
			t.Errorf("demand %g unmet: slack %g", d, slack[0])
		}
	}
	if allocs[2] <= allocs[0] {
		t.Errorf("allocation did not rise with demand: %v", allocs)
	}
	if allocs[4] >= allocs[2] {
		t.Errorf("allocation did not fall with demand: %v", allocs)
	}
}

func TestControllerStepForecastTooShort(t *testing.T) {
	inst := twoByTwo(t)
	c, err := NewController(inst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(constForecast(2, []float64{1, 1}), constForecast(4, []float64{1, 1})); !errors.Is(err, ErrBadInput) {
		t.Errorf("short demand err = %v", err)
	}
	if _, err := c.Step(constForecast(4, []float64{1, 1}), constForecast(1, []float64{1, 1})); !errors.Is(err, ErrBadInput) {
		t.Errorf("short prices err = %v", err)
	}
}

func TestControllerLongerForecastTruncated(t *testing.T) {
	inst := singleDC(t, 1e-3, math.Inf(1))
	c, err := NewController(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(constForecast(10, []float64{500}), constForecast(10, []float64{0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Horizon() != 2 {
		t.Errorf("plan horizon = %d, want 2", res.Plan.Horizon())
	}
}

func TestControllerAppliedMatchesPlanFirstStep(t *testing.T) {
	inst := twoByTwo(t)
	c, err := NewController(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(constForecast(3, []float64{5, 5}), constForecast(3, []float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 2; l++ {
		for v := 0; v < 2; v++ {
			if res.Applied[l][v] != res.Plan.U[0][l][v] {
				t.Fatalf("Applied != Plan.U[0] at (%d,%d)", l, v)
			}
		}
	}
	// Controller state advanced to the plan's first state.
	got := c.State()
	for l := 0; l < 2; l++ {
		for v := 0; v < 2; v++ {
			if got[l][v] != res.Plan.X[0][l][v] {
				t.Fatalf("controller state != Plan.X[0] at (%d,%d)", l, v)
			}
		}
	}
}

// Paper Fig. 6 property: a longer horizon yields smaller per-step changes
// (smoother control) on a peaky demand profile — with lookahead the
// controller pre-ramps instead of jumping when the spike arrives.
func TestControllerHorizonSmoothing(t *testing.T) {
	demand := []float64{100, 100, 4000, 4000, 100, 100, 4000, 4000, 100, 100, 2000, 500}
	run := func(w int) float64 {
		inst := singleDC(t, 0.05, math.Inf(1))
		c, err := NewController(inst, w)
		if err != nil {
			t.Fatal(err)
		}
		var maxAbs float64
		for k := 0; k < len(demand); k++ {
			fc := make([][]float64, w)
			pr := make([][]float64, w)
			for i := 0; i < w; i++ {
				idx := k + 1 + i
				if idx >= len(demand) {
					idx = len(demand) - 1
				}
				fc[i] = []float64{demand[idx]}
				pr[i] = []float64{0.05}
			}
			res, err := c.Step(fc, pr)
			if err != nil {
				t.Fatal(err)
			}
			if a := math.Abs(res.Applied[0][0]); a > maxAbs {
				maxAbs = a
			}
		}
		return maxAbs
	}
	short := run(1)
	long := run(6)
	if long >= short {
		t.Errorf("W=6 max |u| %g should be below W=1 %g", long, short)
	}
}

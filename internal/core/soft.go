package core

import (
	"context"
	"fmt"
	"math"

	"dspp/internal/linalg"
	"dspp/internal/qp"
)

// DefaultShedPenalty is the default linear cost per unit of shed demand per
// period in the soft relaxation. It is several orders of magnitude above
// the realistic per-request serving cost (price × SLA coefficient, ~1e-3),
// so demand is shed only when the hard constraints genuinely cannot hold.
const DefaultShedPenalty = 1e3

// softQuadPenalty is the small quadratic term on the shed variables. It
// keeps the soft QP strictly convex (unique optimum, well-conditioned KKT)
// without materially changing which demand is shed. It is a fixed constant
// because it enters the cached quadratic term.
const softQuadPenalty = 1e-3

// SolveHorizonSoft solves the soft-constrained relaxation of the horizon
// QP: per (step, location) a slack variable s_t^v ≥ 0 absorbs demand the
// allocation cannot serve, penalized linearly at shedPenalty (plus a tiny
// quadratic regularizer). Capacity and nonnegativity stay hard — they are
// physical — so the relaxation is always feasible: in the worst case the
// allocation drains to zero and all demand is shed. It is the degradation
// ladder's second rung: when the hard QP is infeasible (a DC outage or
// capacity shock leaves less capacity than demand) or numerically stuck,
// the controller still gets a usable plan plus an explicit report of the
// demand it had to shed (Plan.Shed).
//
// shedPenalty ≤ 0 selects DefaultShedPenalty. The returned plan carries no
// warm-start capsule (its QP layout differs from the hard solve's), and
// Plan.Objective includes the shed penalty terms.
func (in *Instance) SolveHorizonSoft(input HorizonInput, opts qp.Options, shedPenalty float64) (*Plan, error) {
	return in.SolveHorizonSoftCtx(context.Background(), input, opts, shedPenalty)
}

// SolveHorizonSoftCtx is SolveHorizonSoft with cooperative cancellation
// (see SolveHorizonCtx).
func (in *Instance) SolveHorizonSoftCtx(ctx context.Context, input HorizonInput, opts qp.Options, shedPenalty float64) (*Plan, error) {
	w, err := in.checkHorizonInput(input, false)
	if err != nil {
		return nil, err
	}
	if shedPenalty <= 0 {
		shedPenalty = DefaultShedPenalty
	}
	if math.IsNaN(shedPenalty) || math.IsInf(shedPenalty, 0) {
		return nil, fmt.Errorf("shed penalty %g: %w", shedPenalty, ErrBadInput)
	}

	e := len(in.pairs)
	b := e + in.v // per-step block: e cumulative controls, then v sheds
	n := b * w

	hs, err := in.softStructure(w)
	if err != nil {
		return nil, err
	}
	rowsPerStep := hs.rowsPerStep
	m := w * rowsPerStep

	vecs, _ := hs.vecPool.Get().(*horizonVecs)
	if vecs == nil {
		vecs = &horizonVecs{c: linalg.NewVector(n), h: linalg.NewVector(m)}
	}

	// Linear term: prices on the cumulative controls, the shed penalty on
	// the slacks.
	cVec := vecs.c
	for t := 0; t < w; t++ {
		for pi, pr := range in.pairs {
			cVec[t*b+pi] = input.Prices[t][pr.l]
		}
		for v := 0; v < in.v; v++ {
			cVec[t*b+e+v] = shedPenalty
		}
	}
	var constCost float64
	for t := 0; t < w; t++ {
		for _, pr := range in.pairs {
			constCost += input.Prices[t][pr.l] * input.X0[pr.l][pr.v]
		}
	}

	// Right-hand sides, in the fixed row order of the cached G (per step:
	// demand, capacity, nonneg y, nonneg s — see softStructure).
	hVec := vecs.h
	row := 0
	for t := 0; t < w; t++ {
		// Demand with slack: −Σ y/a − s ≤ −D + Σ x0/a.
		for v := 0; v < in.v; v++ {
			rhs := -input.Demand[t][v]
			for _, pr := range in.locPairs[v] {
				rhs += input.X0[pr.l][v] * pr.aInv
			}
			hVec[row] = rhs
			row++
		}
		// Capacity (hard): Σ y ≤ C − Σ x0.
		for _, l := range hs.capacitated {
			rhs := in.capacity[l]
			for _, pr := range in.dcPairs[l] {
				rhs -= input.X0[l][pr.v]
			}
			hVec[row] = rhs
			row++
		}
		// Nonnegativity of the planned state: −y ≤ x0.
		for _, pr := range in.pairs {
			hVec[row] = input.X0[pr.l][pr.v]
			row++
		}
		// Nonnegativity of the sheds: −s ≤ 0.
		for v := 0; v < in.v; v++ {
			hVec[row] = 0
			row++
		}
	}

	prob := &qp.Problem{Q: hs.q, C: cVec, G: hs.g, H: hVec, KKTBandHint: hs.kktBandHint}
	res, err := qp.SolveWarmCtx(ctx, prob, opts, nil)
	hs.vecPool.Put(vecs)
	if err != nil {
		return nil, fmt.Errorf("soft horizon QP (W=%d, n=%d, m=%d): %w", w, n, m, err)
	}

	// Plan reconstruction mirrors the hard solve, with one extra w×v shed
	// table carved out of the same backing array.
	floats := make([]float64, w*(2*in.l*in.v+in.v+in.l+in.v))
	rows := make([][]float64, 2*w*in.l+3*w)
	states := make([]State, 2*w)
	takeRow := func(k int) []float64 {
		r := floats[:k:k]
		floats = floats[k:]
		return r
	}
	takeState := func() State {
		s := State(rows[:in.l:in.l])
		rows = rows[in.l:]
		for l := range s {
			s[l] = takeRow(in.v)
		}
		return s
	}

	plan := &Plan{
		U:             states[:w:w],
		X:             states[w:],
		Objective:     res.Objective + constCost,
		CapacityDuals: rows[:w:w],
		DemandDuals:   rows[w : 2*w : 2*w],
		Shed:          rows[2*w : 3*w : 3*w],
		QPIterations:  res.Iterations,
	}
	rows = rows[3*w:]
	prev := input.X0
	for t := 0; t < w; t++ {
		u := takeState()
		x := takeState()
		for l := range x {
			copy(x[l], prev[l])
		}
		for pi, pr := range in.pairs {
			uv := res.X[t*b+pi]
			if t > 0 {
				uv -= res.X[(t-1)*b+pi]
			}
			u[pr.l][pr.v] = uv
			xv := x[pr.l][pr.v] + uv
			if xv < 0 {
				xv = 0
			}
			x[pr.l][pr.v] = xv
		}
		plan.U[t] = u
		plan.X[t] = x
		prev = x

		plan.Shed[t] = takeRow(in.v)
		for v := 0; v < in.v; v++ {
			// Clamp the tiny interior-point slack so zero shed reports as
			// exactly zero.
			if s := res.X[t*b+e+v]; s > 1e-9 {
				plan.Shed[t][v] = s
			}
		}

		base := t * rowsPerStep
		plan.DemandDuals[t] = takeRow(in.v)
		copy(plan.DemandDuals[t], res.IneqDuals[base:base+in.v])
		plan.CapacityDuals[t] = takeRow(in.l)
		for ci, l := range hs.capacitated {
			plan.CapacityDuals[t][l] = res.IneqDuals[base+in.v+ci]
		}
	}
	return plan, nil
}

// softStructure returns the cached data-independent part of the soft
// relaxation for horizon length w, building it on first use. The layout
// parallels horizonStructure with per-step blocks of e+v variables
// (cumulative controls, then sheds): every constraint row touches only its
// own step's block, so G stays block diagonal and the KKT matrix banded
// with half-bandwidth e+v.
func (in *Instance) softStructure(w int) (*horizonStruct, error) {
	in.qpMu.Lock()
	defer in.qpMu.Unlock()
	if hs, ok := in.softCache[w]; ok {
		return hs, nil
	}

	e := len(in.pairs)
	b := e + in.v
	n := b * w

	// Quadratic term: the reconfiguration differences on y (block stride b
	// instead of e) plus the small fixed regularizer on the sheds.
	qMat := linalg.NewMatrix(n, n)
	for t := 0; t < w; t++ {
		for pi, pr := range in.pairs {
			idx := t*b + pi
			c2 := 2 * in.reconfig[pr.l]
			if t < w-1 {
				qMat.Set(idx, idx, 2*c2)
				qMat.Set(idx, idx+b, -c2)
				qMat.Set(idx+b, idx, -c2)
			} else {
				qMat.Set(idx, idx, c2)
			}
		}
		for v := 0; v < in.v; v++ {
			idx := t*b + e + v
			qMat.Set(idx, idx, 2*softQuadPenalty)
		}
	}

	capacitated := make([]int, 0, in.l)
	capPairs := 0
	for l := 0; l < in.l; l++ {
		if !math.IsInf(in.capacity[l], 1) {
			capacitated = append(capacitated, l)
			capPairs += len(in.dcPairs[l])
		}
	}
	rowsPerStep := in.v + len(capacitated) + e + in.v
	gb := linalg.NewSparseBuilder(w*rowsPerStep, n, (2*e+2*in.v+capPairs)*w)
	for t := 0; t < w; t++ {
		for v := 0; v < in.v; v++ {
			gb.StartRow()
			for _, pr := range in.locPairs[v] {
				gb.Add(t*b+pr.idx, -pr.aInv)
			}
			gb.Add(t*b+e+v, -1)
		}
		for _, l := range capacitated {
			gb.StartRow()
			for _, pr := range in.dcPairs[l] {
				gb.Add(t*b+pr.idx, 1)
			}
		}
		for pi := range in.pairs {
			gb.StartRow()
			gb.Add(t*b+pi, -1)
		}
		for v := 0; v < in.v; v++ {
			gb.StartRow()
			gb.Add(t*b+e+v, -1)
		}
	}
	gMat, err := gb.Build()
	if err != nil {
		return nil, fmt.Errorf("soft constraint assembly: %w", err)
	}

	hs := &horizonStruct{q: qMat, g: gMat, capacitated: capacitated, rowsPerStep: rowsPerStep}
	hs.kktBandHint = qp.KKTBandwidth(&qp.Problem{Q: qMat, G: gMat}) + 1
	if in.softCache == nil {
		in.softCache = make(map[int]*horizonStruct)
	}
	in.softCache[w] = hs
	return hs, nil
}

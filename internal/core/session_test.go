package core

import (
	"math"
	"testing"

	"dspp/internal/qp"
)

// sessionTestInstance builds a capacitated instance whose capacity values
// can drift between solves, the shape best-response rounds present.
func sessionTestInstance(t *testing.T, l, v int) *Instance {
	t.Helper()
	sla := make([][]float64, l)
	weights := make([]float64, l)
	caps := make([]float64, l)
	for i := 0; i < l; i++ {
		sla[i] = make([]float64, v)
		for j := 0; j < v; j++ {
			sla[i][j] = 0.004 + 0.0001*float64(i+j)
		}
		weights[i] = 1e-4
		caps[i] = 40000 + 5000*float64(i)
	}
	inst, err := NewInstance(Config{SLA: sla, ReconfigWeights: weights, Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func sessionTestInput(inst *Instance, l, v, w int) HorizonInput {
	demand := make([][]float64, w)
	prices := make([][]float64, w)
	for t := range demand {
		demand[t] = make([]float64, v)
		prices[t] = make([]float64, l)
		for j := range demand[t] {
			demand[t][j] = 1000 + 50*float64(t+j)
		}
		for j := range prices[t] {
			prices[t][j] = 0.05 + 0.01*float64(j)
		}
	}
	return HorizonInput{X0: inst.NewState(), Demand: demand, Prices: prices}
}

func plansBitIdentical(t *testing.T, round int, a, b *Plan) {
	t.Helper()
	if a.Objective != b.Objective || a.QPIterations != b.QPIterations || a.ColdRestarts != b.ColdRestarts {
		t.Fatalf("round %d: scalars differ: (%v, %d, %d) vs (%v, %d, %d)", round,
			a.Objective, a.QPIterations, a.ColdRestarts, b.Objective, b.QPIterations, b.ColdRestarts)
	}
	for ti := range a.U {
		for l := range a.U[ti] {
			for vi := range a.U[ti][l] {
				if a.U[ti][l][vi] != b.U[ti][l][vi] {
					t.Fatalf("round %d: U[%d][%d][%d] %v != %v", round, ti, l, vi, a.U[ti][l][vi], b.U[ti][l][vi])
				}
				if a.X[ti][l][vi] != b.X[ti][l][vi] {
					t.Fatalf("round %d: X[%d][%d][%d] %v != %v", round, ti, l, vi, a.X[ti][l][vi], b.X[ti][l][vi])
				}
			}
		}
	}
	for ti := range a.CapacityDuals {
		for l := range a.CapacityDuals[ti] {
			if a.CapacityDuals[ti][l] != b.CapacityDuals[ti][l] {
				t.Fatalf("round %d: capacity dual [%d][%d] %v != %v", round, ti, l,
					a.CapacityDuals[ti][l], b.CapacityDuals[ti][l])
			}
		}
		for vi := range a.DemandDuals[ti] {
			if a.DemandDuals[ti][vi] != b.DemandDuals[ti][vi] {
				t.Fatalf("round %d: demand dual [%d][%d] %v != %v", round, ti, vi,
					a.DemandDuals[ti][vi], b.DemandDuals[ti][vi])
			}
		}
	}
}

// TestHorizonSessionBitIdenticalToOneShot replays a best-response-shaped
// loop — fixed demand and prices, capacities drifting each round, warm
// starts chained from the previous plan — through a HorizonSession and
// through one-shot SolveHorizonCtx on an identical twin instance, and
// requires every plan field to agree bitwise.
func TestHorizonSessionBitIdenticalToOneShot(t *testing.T) {
	const l, v, w = 3, 5, 4
	instSes := sessionTestInstance(t, l, v)
	instOne := sessionTestInstance(t, l, v)
	ses, err := instSes.NewHorizonSession(w, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputSes := sessionTestInput(instSes, l, v, w)
	inputOne := sessionTestInput(instOne, l, v, w)
	caps := make([]float64, l)
	for round := 0; round < 8; round++ {
		for i := range caps {
			caps[i] = (40000 + 5000*float64(i)) * (1 - 0.02*float64(round%4))
		}
		if err := instSes.SetCapacities(caps); err != nil {
			t.Fatal(err)
		}
		if err := instOne.SetCapacities(caps); err != nil {
			t.Fatal(err)
		}
		pSes, errSes := ses.Solve(inputSes)
		pOne, errOne := instOne.SolveHorizonCtx(nil, inputOne, qp.DefaultOptions())
		if (errSes == nil) != (errOne == nil) {
			t.Fatalf("round %d: session err %v, one-shot err %v", round, errSes, errOne)
		}
		if errSes != nil {
			t.Fatal(errSes)
		}
		plansBitIdentical(t, round, pSes, pOne)
		inputSes.Warm, inputSes.WarmShift = pSes.Warm, 0
		inputOne.Warm, inputOne.WarmShift = pOne.Warm, 0
	}
}

// TestHorizonSessionPlanLifetime pins the double-buffer contract: the
// previous plan (the warm-start source) survives the next solve intact.
func TestHorizonSessionPlanLifetime(t *testing.T) {
	const l, v, w = 2, 3, 3
	inst := sessionTestInstance(t, l, v)
	ses, err := inst.NewHorizonSession(w, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := sessionTestInput(inst, l, v, w)
	p1, err := ses.Solve(input)
	if err != nil {
		t.Fatal(err)
	}
	obj1 := p1.Objective
	u000 := p1.U[0][0][0]
	input.Warm, input.WarmShift = p1.Warm, 0
	input.Demand[0][0] *= 1.01
	if _, err := ses.Solve(input); err != nil {
		t.Fatal(err)
	}
	if p1.Objective != obj1 || p1.U[0][0][0] != u000 {
		t.Fatal("previous plan mutated by the next solve")
	}
}

// TestHorizonSessionSteadyStateAllocs bounds the steady-state allocation
// cost of a session solve: the QP itself is allocation-free and the plan
// arenas are double-buffered, so nothing should allocate.
func TestHorizonSessionSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector bookkeeping allocates nondeterministically")
	}
	const l, v, w = 3, 5, 4
	inst := sessionTestInstance(t, l, v)
	ses, err := inst.NewHorizonSession(w, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	input := sessionTestInput(inst, l, v, w)
	for i := 0; i < 3; i++ {
		p, err := ses.Solve(input)
		if err != nil {
			t.Fatal(err)
		}
		input.Warm, input.WarmShift = p.Warm, 0
	}
	allocs := testing.AllocsPerRun(20, func() {
		p, err := ses.Solve(input)
		if err != nil {
			t.Fatal(err)
		}
		input.Warm, input.WarmShift = p.Warm, 0
	})
	if allocs > 0 {
		t.Fatalf("steady-state session solve allocates %v times", allocs)
	}
}

// TestTotalCapacityDualsInto checks the in-place dual accumulator against
// its allocating sibling.
func TestTotalCapacityDualsInto(t *testing.T) {
	const l, v, w = 3, 5, 4
	inst := sessionTestInstance(t, l, v)
	input := sessionTestInput(inst, l, v, w)
	plan, err := inst.SolveHorizon(input, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := plan.TotalCapacityDuals()
	dst := make([]float64, l)
	for i := range dst {
		dst[i] = math.NaN() // must be fully overwritten
	}
	plan.TotalCapacityDualsInto(dst)
	for i := range want {
		if want[i] != dst[i] {
			t.Fatalf("dual %d: %v != %v", i, want[i], dst[i])
		}
	}
}

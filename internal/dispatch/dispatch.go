// Package dispatch replays a control period at the granularity of
// individual requests: demand from each location is split across data
// centers by the paper's proportional routing policy (eq. 13), thinned
// uniformly onto the integer number of servers actually deployed, and each
// server is simulated as an M/M/1 queue (Lindley recursion). The output is
// the realized per-request latency distribution — the end-to-end check
// that the controller's closed-form SLA reasoning survives contact with a
// discrete-event system.
package dispatch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dspp/internal/core"
)

// Sentinel errors.
var (
	// ErrBadConfig flags invalid simulation parameters.
	ErrBadConfig = errors.New("dispatch: invalid configuration")
)

// Config parameterizes a request-level replay.
type Config struct {
	// Latency[l][v] is the network latency added to every request routed
	// from location v to DC l (seconds).
	Latency [][]float64
	// Mu is the per-server service rate (req/s).
	Mu float64
	// SLABound is the total-latency bound d̄ used for the WithinSLA
	// fraction (0 disables that statistic).
	SLABound float64
	// Requests is the total number of requests to simulate across all
	// (location, DC) flows (≥ 1).
	Requests int
	// Rng drives all randomness (required).
	Rng *rand.Rand
}

// LocationStats summarizes one location's realized latency.
type LocationStats struct {
	Location  int
	Requests  int
	Mean, P95 float64
}

// Report is the outcome of a replay.
type Report struct {
	// Total requests completed.
	Total int
	// Mean, P50, P95, P99 of total (network + queueing) latency.
	Mean, P50, P95, P99 float64
	// WithinSLA is the fraction of requests meeting the SLA bound.
	WithinSLA float64
	// PerLocation breaks the statistics down by origin.
	PerLocation []LocationStats
}

// Simulate replays one period: allocation x serves demand (req/s per
// location) under the instance's routing policy.
func Simulate(inst *core.Instance, x core.State, demand []float64, cfg Config) (*Report, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadConfig)
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("requests %d: %w", cfg.Requests, ErrBadConfig)
	}
	if cfg.Mu <= 0 {
		return nil, fmt.Errorf("mu %g: %w", cfg.Mu, ErrBadConfig)
	}
	l, v := inst.NumDataCenters(), inst.NumLocations()
	if len(cfg.Latency) != l {
		return nil, fmt.Errorf("latency has %d DCs, want %d: %w", len(cfg.Latency), l, ErrBadConfig)
	}
	for li, row := range cfg.Latency {
		if len(row) != v {
			return nil, fmt.Errorf("latency[%d] has %d locations, want %d: %w", li, len(row), v, ErrBadConfig)
		}
	}
	assign, err := inst.Assign(x, demand)
	if err != nil {
		return nil, err
	}
	var totalRate float64
	for _, d := range demand {
		totalRate += d
	}
	if totalRate <= 0 {
		return nil, fmt.Errorf("no demand: %w", ErrBadConfig)
	}

	all := make([]float64, 0, cfg.Requests)
	perLoc := make([][]float64, v)
	for li := 0; li < l; li++ {
		for vi := 0; vi < v; vi++ {
			sigma := assign[li][vi]
			if sigma <= 0 {
				continue
			}
			// Integer servers actually deployed for this flow.
			servers := int(math.Ceil(x[li][vi] - 1e-9))
			if servers < 1 {
				servers = 1
			}
			perServerRate := sigma / float64(servers)
			flowRequests := int(math.Round(float64(cfg.Requests) * sigma / totalRate))
			if flowRequests == 0 {
				continue
			}
			perServer := flowRequests / servers
			if perServer == 0 {
				perServer = 1
			}
			remaining := flowRequests
			for s := 0; s < servers && remaining > 0; s++ {
				take := perServer
				if take > remaining {
					take = remaining
				}
				samples := lindleyMM1(perServerRate, cfg.Mu, take, cfg.Rng)
				for _, soj := range samples {
					lat := cfg.Latency[li][vi] + soj
					all = append(all, lat)
					perLoc[vi] = append(perLoc[vi], lat)
				}
				remaining -= take
			}
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no requests generated: %w", ErrBadConfig)
	}
	sort.Float64s(all)
	rep := &Report{
		Total: len(all),
		Mean:  mean(all),
		P50:   quantile(all, 0.50),
		P95:   quantile(all, 0.95),
		P99:   quantile(all, 0.99),
	}
	if cfg.SLABound > 0 {
		within := sort.SearchFloat64s(all, cfg.SLABound)
		rep.WithinSLA = float64(within) / float64(len(all))
	}
	for vi := 0; vi < v; vi++ {
		if len(perLoc[vi]) == 0 {
			continue
		}
		sort.Float64s(perLoc[vi])
		rep.PerLocation = append(rep.PerLocation, LocationStats{
			Location: vi,
			Requests: len(perLoc[vi]),
			Mean:     mean(perLoc[vi]),
			P95:      quantile(perLoc[vi], 0.95),
		})
	}
	return rep, nil
}

// lindleyMM1 draws n sojourn times of a stationary M/M/1 queue via the
// Lindley recursion W⁺ = max(0, W + S − A), discarding a warmup prefix.
// An unstable flow (lambda ≥ mu) still simulates — waits simply grow —
// mirroring what an overloaded real server does.
func lindleyMM1(lambda, mu float64, n int, rng *rand.Rand) []float64 {
	if n < 1 {
		return nil
	}
	const warmup = 64
	out := make([]float64, 0, n)
	var wait float64
	for i := 0; i < n+warmup; i++ {
		service := rng.ExpFloat64() / mu
		if i >= warmup {
			out = append(out, wait+service)
		}
		inter := rng.ExpFloat64() / lambda
		wait = math.Max(0, wait+service-inter)
	}
	return out
}

func mean(sorted []float64) float64 {
	var s float64
	for _, x := range sorted {
		s += x
	}
	return s / float64(len(sorted))
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

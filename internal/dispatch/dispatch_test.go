package dispatch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dspp/internal/core"
	"dspp/internal/queue"
)

func newInstance(t *testing.T, sla [][]float64) *core.Instance {
	t.Helper()
	l := len(sla)
	weights := make([]float64, l)
	caps := make([]float64, l)
	for i := range weights {
		weights[i] = 1e-3
		caps[i] = math.Inf(1)
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: weights,
		Capacities:      caps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSimulateValidation(t *testing.T) {
	inst := newInstance(t, [][]float64{{0.01}})
	x := inst.NewState()
	x[0][0] = 10
	demand := []float64{500}
	lat := [][]float64{{0.02}}
	rng := rand.New(rand.NewSource(1))
	good := Config{Latency: lat, Mu: 250, Requests: 100, Rng: rng}

	if _, err := Simulate(nil, x, demand, good); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inst err = %v", err)
	}
	bad := good
	bad.Rng = nil
	if _, err := Simulate(inst, x, demand, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil rng err = %v", err)
	}
	bad = good
	bad.Requests = 0
	if _, err := Simulate(inst, x, demand, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("requests err = %v", err)
	}
	bad = good
	bad.Mu = 0
	if _, err := Simulate(inst, x, demand, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("mu err = %v", err)
	}
	bad = good
	bad.Latency = [][]float64{{0.02}, {0.02}}
	if _, err := Simulate(inst, x, demand, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("latency rows err = %v", err)
	}
	bad = good
	bad.Latency = [][]float64{{0.02, 0.03}}
	if _, err := Simulate(inst, x, demand, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("latency cols err = %v", err)
	}
	if _, err := Simulate(inst, x, []float64{0}, good); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no demand err = %v", err)
	}
}

// A properly provisioned allocation (x = a·σ rounded up) must meet the
// mean SLA at request level.
func TestSimulateProperAllocationMeetsSLA(t *testing.T) {
	params := queue.SLAParams{Mu: 250, NetworkDelay: 0.02, MaxDelay: 0.25}
	a, err := params.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	inst := newInstance(t, [][]float64{{a}})
	demand := []float64{5000}
	x := inst.NewState()
	x[0][0] = math.Ceil(a * demand[0])
	rep, err := Simulate(inst, x, demand, Config{
		Latency:  [][]float64{{0.02}},
		Mu:       250,
		SLABound: 0.25,
		Requests: 200000,
		Rng:      rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mean > 0.25 {
		t.Errorf("mean latency %g exceeds SLA 0.25", rep.Mean)
	}
	if rep.Mean < 0.02 {
		t.Errorf("mean latency %g below network floor", rep.Mean)
	}
	// Sojourn times are exponential-ish: the percentiles must be ordered.
	if !(rep.P50 <= rep.P95 && rep.P95 <= rep.P99) {
		t.Errorf("percentiles out of order: %g %g %g", rep.P50, rep.P95, rep.P99)
	}
	if rep.WithinSLA < 0.80 {
		t.Errorf("only %g of requests within SLA", rep.WithinSLA)
	}
	if len(rep.PerLocation) != 1 || rep.PerLocation[0].Requests == 0 {
		t.Errorf("per-location stats missing: %+v", rep.PerLocation)
	}
}

// An under-provisioned allocation must show clear SLA degradation.
func TestSimulateUnderProvisioningDegrades(t *testing.T) {
	params := queue.SLAParams{Mu: 250, NetworkDelay: 0.02, MaxDelay: 0.25}
	a, err := params.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	inst := newInstance(t, [][]float64{{a}})
	demand := []float64{5000}
	proper := math.Ceil(a * demand[0])

	run := func(servers float64) float64 {
		x := inst.NewState()
		x[0][0] = servers
		rep, err := Simulate(inst, x, demand, Config{
			Latency:  [][]float64{{0.02}},
			Mu:       250,
			SLABound: 0.25,
			Requests: 50000,
			Rng:      rand.New(rand.NewSource(11)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Mean
	}
	ok := run(proper)
	starved := run(proper * 0.92) // push per-server load close to mu
	if starved <= ok {
		t.Errorf("under-provisioned mean %g not above proper %g", starved, ok)
	}
}

// Multi-DC routing: latency mix must reflect the proportional split.
func TestSimulateMultiDCRouting(t *testing.T) {
	inst := newInstance(t, [][]float64{{0.005}, {0.005}})
	x := inst.NewState()
	x[0][0] = 30
	x[1][0] = 10 // 3:1 split by eq. 13 with equal a
	demand := []float64{4000}
	rep, err := Simulate(inst, x, demand, Config{
		Latency:  [][]float64{{0.010}, {0.100}},
		Mu:       250,
		Requests: 40000,
		Rng:      rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 75% of traffic sees 10ms, 25% sees 100ms network latency:
	// mean network ≈ 0.0325; with queueing the mean sits above that but
	// well below the all-remote 0.1.
	if rep.Mean < 0.032 || rep.Mean > 0.08 {
		t.Errorf("mean %g inconsistent with 3:1 split", rep.Mean)
	}
	// P50 served by the near DC: near 10ms + queueing.
	if rep.P50 > 0.05 {
		t.Errorf("p50 %g too high for majority-local routing", rep.P50)
	}
}

func TestLindleyMatchesMM1Formula(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lambda, mu := 200.0, 250.0
	samples := lindleyMM1(lambda, mu, 400000, rng)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	got := sum / float64(len(samples))
	want := 1 / (mu - lambda)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("lindley mean %g vs analytic %g (rel %g)", got, want, rel)
	}
	if lindleyMM1(1, 1, 0, rng) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestQuantileEdges(t *testing.T) {
	if quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	s := []float64{1, 2, 3, 4}
	if quantile(s, 0.999) != 4 {
		t.Errorf("tail quantile = %g", quantile(s, 0.999))
	}
	if quantile(s, 0) != 1 {
		t.Errorf("zero quantile = %g", quantile(s, 0))
	}
}

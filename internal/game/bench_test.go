package game

import (
	"math"
	"testing"
)

// benchScenario is a mid-size competition: 3 providers, 2 DCs with a
// binding bottleneck, window w — enough rounds to exercise the
// best-response loop's steady state without dominating setup.
func benchScenario(w int) *Scenario {
	mk := func(name string, demand, sla0, sla1 float64) *Provider {
		dem := make([][]float64, w)
		pr := make([][]float64, w)
		for t := 0; t < w; t++ {
			dem[t] = []float64{demand * (1 + 0.05*float64(t%3))}
			pr[t] = []float64{0.1, 1.0}
		}
		return &Provider{
			Name:            name,
			SLA:             [][]float64{{sla0}, {sla1}},
			ReconfigWeights: []float64{1e-4, 1e-4},
			ServerSize:      1,
			Demand:          dem,
			Prices:          pr,
		}
	}
	return &Scenario{
		Capacity: []float64{12, math.Inf(1)},
		Providers: []*Provider{
			mk("sp1", 1000, 0.010, 0.010),
			mk("sp2", 1500, 0.012, 0.009),
			mk("sp3", 800, 0.008, 0.011),
		},
	}
}

// benchBestResponse runs the full game once per iteration; the scenario
// is rebuilt outside the timed region each pass so provider-level caches
// never leak across iterations. ns/op is a whole multi-round game.
func benchBestResponse(b *testing.B, cfg BestResponseConfig) {
	cfg.Epsilon = 0.001
	scens := make([]*Scenario, b.N)
	for i := range scens {
		scens[i] = benchScenario(4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := BestResponse(scens[i], cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkBestResponseRounds measures the default (session-backed)
// round loop.
func BenchmarkBestResponseRounds(b *testing.B) {
	benchBestResponse(b, BestResponseConfig{Parallel: 1})
}

// BenchmarkBestResponseRoundsNoSessions is the same loop through the
// pooled one-shot solver — the baseline the session fast path is judged
// against.
func BenchmarkBestResponseRoundsNoSessions(b *testing.B) {
	benchBestResponse(b, BestResponseConfig{Parallel: 1, NoSessions: true})
}

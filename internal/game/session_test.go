package game

import (
	"math"
	"math/rand"
	"testing"
)

// compareBR requires two best-response results to agree bitwise on every
// field a caller can observe.
func compareBR(t *testing.T, label string, a, b *BestResponseResult) {
	t.Helper()
	if a.Iterations != b.Iterations || a.Converged != b.Converged || a.Total != b.Total {
		t.Fatalf("%s: (%d, %v, %v) vs (%d, %v, %v)", label,
			a.Iterations, a.Converged, a.Total, b.Iterations, b.Converged, b.Total)
	}
	if len(a.CostHistory) != len(b.CostHistory) {
		t.Fatalf("%s: history %d vs %d", label, len(a.CostHistory), len(b.CostHistory))
	}
	for r := range a.CostHistory {
		if a.CostHistory[r] != b.CostHistory[r] {
			t.Fatalf("%s: history[%d] %v != %v", label, r, a.CostHistory[r], b.CostHistory[r])
		}
	}
	for i := range a.Quotas {
		for li := range a.Quotas[i] {
			if a.Quotas[i][li] != b.Quotas[i][li] {
				t.Fatalf("%s: quota[%d][%d] %v != %v", label, i, li, a.Quotas[i][li], b.Quotas[i][li])
			}
		}
	}
	for i := range a.Outcomes {
		oa, ob := a.Outcomes[i], b.Outcomes[i]
		if oa.Cost != ob.Cost {
			t.Fatalf("%s: cost[%d] %v != %v", label, i, oa.Cost, ob.Cost)
		}
		for ti := range oa.U {
			for l := range oa.U[ti] {
				for v := range oa.U[ti][l] {
					if oa.U[ti][l][v] != ob.U[ti][l][v] {
						t.Fatalf("%s: U[%d][%d][%d][%d] %v != %v", label, i, ti, l, v,
							oa.U[ti][l][v], ob.U[ti][l][v])
					}
					if oa.X[ti][l][v] != ob.X[ti][l][v] {
						t.Fatalf("%s: X[%d][%d][%d][%d] %v != %v", label, i, ti, l, v,
							oa.X[ti][l][v], ob.X[ti][l][v])
					}
				}
			}
		}
	}
}

// TestBestResponseSessionsBitIdentical pins the fast path's core contract:
// per-provider sessions (factorization reuse, arena-backed plans, in-place
// dual extraction) change not a single bit of the game's outcome relative
// to the pooled one-shot path, at any worker count.
func TestBestResponseSessionsBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		ses, err := BestResponse(twoProviderScenario(4, 8),
			BestResponseConfig{Epsilon: 0.001, Parallel: workers})
		if err != nil {
			t.Fatalf("workers=%d sessions: %v", workers, err)
		}
		one, err := BestResponse(twoProviderScenario(4, 8),
			BestResponseConfig{Epsilon: 0.001, Parallel: workers, NoSessions: true})
		if err != nil {
			t.Fatalf("workers=%d one-shot: %v", workers, err)
		}
		compareBR(t, "two-provider", ses, one)
	}
}

// TestBestResponseSessionsBitIdenticalRandom repeats the comparison over
// randomized multi-provider scenarios (mixed server sizes, multi-round
// convergence paths).
func TestBestResponseSessionsBitIdenticalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		n := 2 + rng.Intn(3)
		const w = 3
		mk := func() *Scenario {
			drng := rand.New(rand.NewSource(int64(1000 + trial)))
			providers := make([]*Provider, n)
			for i := range providers {
				demand := make([][]float64, w)
				prices := make([][]float64, w)
				for t2 := 0; t2 < w; t2++ {
					demand[t2] = []float64{200 + drng.Float64()*800}
					prices[t2] = []float64{0.05 + drng.Float64()*0.1, 0.5 + drng.Float64()}
				}
				providers[i] = &Provider{
					Name:            "sp",
					SLA:             [][]float64{{0.005 + drng.Float64()*0.02}, {0.005 + drng.Float64()*0.02}},
					ReconfigWeights: []float64{1e-4, 1e-4},
					ServerSize:      1 + float64(drng.Intn(2)),
					Demand:          demand,
					Prices:          prices,
				}
			}
			return &Scenario{
				Capacity:  []float64{5 + drng.Float64()*20, math.Inf(1)},
				Providers: providers,
			}
		}
		cfg := BestResponseConfig{MaxIterations: 300, Parallel: 1 + rng.Intn(4)}
		ses, errS := BestResponse(mk(), cfg)
		cfg.NoSessions = true
		one, errO := BestResponse(mk(), cfg)
		if (errS == nil) != (errO == nil) {
			t.Fatalf("trial %d: session err %v, one-shot err %v", trial, errS, errO)
		}
		if errS != nil {
			continue
		}
		compareBR(t, "random", ses, one)
	}
}

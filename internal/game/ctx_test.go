package game

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// tripCtx reports Canceled from the (after+1)-th Err() poll onward
// (after < 0 never trips and just counts). Every cancellation consumer in
// this codebase polls Err() (none selects on Done()), so tripping mid-run
// is deterministic where a timer is not.
type tripCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *tripCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.after >= 0 && c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func (c *tripCtx) polls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestBestResponseCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BestResponseCtx(ctx, twoProviderScenario(3, 150), BestResponseConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("pre-cancelled run produced a result: %+v", res)
	}
}

func TestBestResponseCtxCancelMidRun(t *testing.T) {
	// Trip the context partway through the run for a spread of poll
	// budgets: wherever the trip lands — inside a QP solve, inside the
	// fan-out, or at the top of a round — the loop must stop within one
	// round and surface the cancellation. The run's natural poll count
	// depends on how fast the QP solver converges, so calibrate first with
	// a never-tripping context and derive the budgets from the total; a
	// fixed budget list would silently fall off the end of the run whenever
	// the solver gets faster.
	cfg := BestResponseConfig{Epsilon: 1e-15, MaxIterations: 1 << 20}
	scenario := twoProviderScenario(3, 5)
	probe := &tripCtx{Context: context.Background(), after: -1}
	if _, err := BestResponseCtx(probe, scenario, cfg); err != nil {
		t.Fatalf("calibration run errored: %v", err)
	}
	total := probe.polls()
	if total < 20 {
		t.Fatalf("calibration run made only %d polls; scenario too small to trip mid-run", total)
	}
	late := total - 2
	for _, after := range []int{1, 5, total / 2, late} {
		ctx := &tripCtx{Context: context.Background(), after: after}
		res, err := BestResponseCtx(ctx, scenario, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d (total=%d): err = %v, want context.Canceled", after, total, err)
		}
		// Wherever the trip lands, a partial iterate is handed back once a
		// full round has completed, and the round count reflects completed
		// rounds only.
		if res != nil && res.Iterations < 1 {
			t.Errorf("after=%d: partial result with %d rounds", after, res.Iterations)
		}
		if res == nil && after >= late {
			t.Errorf("after=%d: no partial iterate despite completed rounds", after)
		}
	}
}

func TestRunRecedingCtxCancelled(t *testing.T) {
	p := dynProvider("a", 1000, 4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunRecedingCtx(ctx, []float64{10, 1e9}, []*DynamicProvider{p},
		RecedingConfig{Window: 2, Periods: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunRecedingPreservesCostHistories(t *testing.T) {
	providers := []*DynamicProvider{
		dynProvider("a", 800, 4, 2),
		dynProvider("b", 1200, 4, 2),
	}
	const periods = 4
	res, err := RunReceding([]float64{8, 1e9}, providers, RecedingConfig{
		Window:  2,
		Periods: periods,
		BestResponse: BestResponseConfig{
			Epsilon:       1e-15, // unattainable: every period hits the cap
			MaxIterations: 3,
		},
	})
	if err != nil {
		t.Fatalf("round-capped receding run errored: %v", err)
	}
	if len(res.CostHistories) != periods {
		t.Fatalf("CostHistories covers %d/%d periods", len(res.CostHistories), periods)
	}
	for k, hist := range res.CostHistories {
		if res.Converged[k] {
			t.Errorf("period %d converged under ε=1e-15", k)
		}
		// The trace must be preserved in full even though the round cap was
		// hit without ε-stability: one entry per completed round.
		if len(hist) != res.Rounds[k] {
			t.Errorf("period %d: %d cost entries for %d rounds", k, len(hist), res.Rounds[k])
		}
		for r, c := range hist {
			if !(c > 0) {
				t.Errorf("period %d round %d: cost %g", k, r, c)
			}
		}
	}
}

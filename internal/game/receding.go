package game

import (
	"context"
	"errors"
	"fmt"

	"dspp/internal/core"
	"dspp/internal/telemetry"
)

// DynamicProvider is a provider with full demand and price traces over a
// simulation run (as opposed to Provider, which carries one window). The
// receding-horizon game slices windows out of these traces.
type DynamicProvider struct {
	Name            string
	SLA             [][]float64
	ReconfigWeights []float64
	ServerSize      float64
	X0              core.State
	// Demand[k][v] and Prices[k][l] must cover Periods+Window entries.
	Demand [][]float64
	Prices [][]float64
}

// RecedingConfig drives RunReceding.
type RecedingConfig struct {
	// Window is the shared prediction window W̄ (Theorem 1's common
	// horizon assumption).
	Window int
	// Periods is the number of closed-loop control periods.
	Periods int
	// BestResponse configures the per-period Algorithm 2 runs.
	BestResponse BestResponseConfig
}

// RecedingResult is the closed-loop outcome.
type RecedingResult struct {
	// States[i][k] is provider i's allocation serving period k+1.
	States [][]core.State
	// Costs[i] is provider i's realized cost over the run.
	Costs []float64
	// Total is Σᵢ Costs[i].
	Total float64
	// Rounds[k] is the number of Algorithm 2 rounds at period k.
	Rounds []int
	// Converged[k] reports per-period ε-stability.
	Converged []bool
	// CostHistories[k] is period k's per-round total-cost trace from
	// Algorithm 2 — preserved even when the round cap was hit without
	// ε-stability, since the non-converged traces are exactly the ones
	// worth inspecting.
	CostHistories [][]float64
}

// RunReceding implements the paper's W-MPC equilibrium dynamics
// (Definition 2) in closed loop: at each period the providers compute the
// competition outcome for the next W periods via Algorithm 2, every
// provider applies only its first control, and the horizon recedes. It is
// the multi-provider analogue of the single-SP MPC loop in package sim.
func RunReceding(capacity []float64, providers []*DynamicProvider, cfg RecedingConfig) (*RecedingResult, error) {
	return RunRecedingCtx(context.Background(), capacity, providers, cfg)
}

// RunRecedingCtx is RunReceding with cooperative cancellation: the context
// is checked every period and threaded through the per-period Algorithm 2
// runs, so cancellation stops the loop within one best-response round.
func RunRecedingCtx(ctx context.Context, capacity []float64, providers []*DynamicProvider, cfg RecedingConfig) (*RecedingResult, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("window %d: %w", cfg.Window, ErrBadScenario)
	}
	if cfg.Periods < 1 {
		return nil, fmt.Errorf("periods %d: %w", cfg.Periods, ErrBadScenario)
	}
	if len(providers) == 0 {
		return nil, fmt.Errorf("no providers: %w", ErrBadScenario)
	}
	n := len(providers)
	for i, p := range providers {
		if p == nil {
			return nil, fmt.Errorf("provider %d nil: %w", i, ErrBadScenario)
		}
		need := cfg.Periods + cfg.Window
		if len(p.Demand) < need || len(p.Prices) < need {
			return nil, fmt.Errorf("provider %d traces cover %d/%d of %d periods: %w",
				i, len(p.Demand), len(p.Prices), need, ErrBadScenario)
		}
	}

	// Current states, starting from X0 (or zeros).
	states := make([]core.State, n)
	for i, p := range providers {
		if p.X0 != nil {
			states[i] = p.X0.Clone()
		} else {
			states[i] = zeroState(len(p.SLA), len(p.SLA[0]))
		}
	}

	res := &RecedingResult{
		States: make([][]core.State, n),
		Costs:  make([]float64, n),
	}
	// One game_run span wraps the closed loop; the per-period Algorithm 2
	// invocations parent their best_response spans to it via the context.
	// Nil-safe throughout when no hub is configured.
	runSpan := cfg.BestResponse.Telemetry.Tracer().Start(telemetry.SpanGameRun,
		telemetry.SpanIDFromContext(ctx),
		telemetry.Num("periods", float64(cfg.Periods)),
		telemetry.Num("providers", float64(n)))
	ctx = telemetry.ContextWithSpan(ctx, runSpan)
	defer func() {
		runSpan.SetAttr(telemetry.Num("total_cost", res.Total))
		runSpan.End()
	}()
	// Each period's round 0 warm-starts from the previous period's final
	// plans shifted by one period (the horizon recedes by exactly one).
	brCfg := cfg.BestResponse
	for k := 0; k < cfg.Periods; k++ {
		// Build the window scenario: forecasts for periods k+1 .. k+W.
		window := make([]*Provider, n)
		for i, p := range providers {
			window[i] = &Provider{
				Name:            p.Name,
				SLA:             p.SLA,
				ReconfigWeights: p.ReconfigWeights,
				ServerSize:      p.ServerSize,
				X0:              states[i],
				Demand:          p.Demand[k+1 : k+1+cfg.Window],
				Prices:          p.Prices[k+1 : k+1+cfg.Window],
			}
		}
		scen := &Scenario{Capacity: capacity, Providers: window}
		br, err := BestResponseCtx(ctx, scen, brCfg)
		// A round-cap overrun still yields a usable (ε-unstable) outcome to
		// apply; any other error — including cancellation — aborts the run.
		if err != nil && !errors.Is(err, ErrNotConverged) {
			return nil, fmt.Errorf("period %d: %w", k, err)
		}
		brCfg.initialWarms = br.finalWarms
		brCfg.initialWarmShift = 1
		res.Rounds = append(res.Rounds, br.Iterations)
		res.Converged = append(res.Converged, br.Converged)
		res.CostHistories = append(res.CostHistories, br.CostHistory)

		// Apply only the first control of every provider's plan.
		for i, p := range providers {
			u0 := br.Outcomes[i].U[0]
			next := br.Outcomes[i].X[0]
			var cost float64
			for l := range next {
				for v := range next[l] {
					cost += p.Prices[k+1][l]*next[l][v] +
						p.ReconfigWeights[l]*u0[l][v]*u0[l][v]
				}
			}
			res.Costs[i] += cost
			res.Total += cost
			states[i] = next.Clone()
			res.States[i] = append(res.States[i], next.Clone())
		}
	}
	return res, nil
}

// CapacityUsage returns, per period, the shared capacity units consumed
// at DC l across all providers — for verifying the shared constraint in
// closed loop.
func (r *RecedingResult) CapacityUsage(providers []*DynamicProvider, l int) ([]float64, error) {
	if len(providers) != len(r.States) {
		return nil, fmt.Errorf("providers %d, states %d: %w", len(providers), len(r.States), ErrBadScenario)
	}
	if len(r.States) == 0 {
		return nil, nil
	}
	periods := len(r.States[0])
	out := make([]float64, periods)
	for i, p := range providers {
		if len(r.States[i]) != periods {
			return nil, fmt.Errorf("provider %d has %d states, want %d: %w",
				i, len(r.States[i]), periods, ErrBadScenario)
		}
		for k := 0; k < periods; k++ {
			if l < 0 || l >= len(r.States[i][k]) {
				return nil, fmt.Errorf("dc %d out of range: %w", l, ErrBadScenario)
			}
			for _, x := range r.States[i][k][l] {
				out[k] += p.ServerSize * x
			}
		}
	}
	return out, nil
}

func zeroState(l, v int) core.State {
	s := make(core.State, l)
	for i := range s {
		s[i] = make([]float64, v)
	}
	return s
}

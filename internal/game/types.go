// Package game implements the paper's multi-provider resource-competition
// model (§VI): N service providers share the capacity of L data centers,
// each minimizing its own DSPP cost. It provides
//
//   - the social welfare problem (SWP): one joint QP over all providers
//     with shared capacity constraints, whose optimum is the benchmark for
//     the price of anarchy/stability;
//   - Algorithm 2: the distributed best-response iteration in which the
//     infrastructure provider re-divides each DC's capacity into per-SP
//     quotas proportionally to the reported capacity-constraint duals,
//     until the total cost stabilizes (|J − J̄| ≤ ε·J̄);
//   - PoA/PoS-style efficiency metrics comparing the two.
package game

import (
	"errors"
	"fmt"
	"math"

	"dspp/internal/core"
)

// Sentinel errors.
var (
	// ErrBadScenario flags inconsistent scenario dimensions or values.
	ErrBadScenario = errors.New("game: invalid scenario")
	// ErrNotConverged means Algorithm 2 hit its iteration cap before the
	// stability test passed. Partial results are still returned.
	ErrNotConverged = errors.New("game: best response did not converge")
)

// Provider describes one competing service provider.
type Provider struct {
	// Name identifies the provider in reports.
	Name string
	// SLA is the provider's L×Vᵢ coefficient matrix a^ilv (+Inf marks
	// infeasible pairs).
	SLA [][]float64
	// ReconfigWeights holds the quadratic weights c^il per DC.
	ReconfigWeights []float64
	// ServerSize is s^i: the capacity units one of this provider's
	// servers occupies in a data center (§VI, eq. 16).
	ServerSize float64
	// X0 is the initial allocation (nil means all zeros).
	X0 core.State
	// Demand[t][v] is the demand forecast over the game window.
	Demand [][]float64
	// Prices[t][l] is the price forecast over the game window.
	Prices [][]float64

	// inst caches the provider's core instance across best-response
	// rounds: between rounds only the quota values move, so the instance
	// — and with it the horizon QP structure it caches — is reused by
	// updating its capacities in place. x0c caches the defensive copy of
	// X0 handed to the solver.
	inst *core.Instance
	x0c  core.State
}

// numLocations returns Vᵢ.
func (p *Provider) numLocations() int {
	if len(p.SLA) == 0 {
		return 0
	}
	return len(p.SLA[0])
}

// instance builds the provider's core instance for given per-DC quotas in
// capacity units (quota/serverSize server slots).
func (p *Provider) instance(quota []float64) (*core.Instance, error) {
	caps := make([]float64, len(quota))
	for l, q := range quota {
		if math.IsInf(q, 1) {
			caps[l] = math.Inf(1)
		} else {
			caps[l] = q / p.ServerSize
		}
	}
	// Reuse the cached instance when only the quota values changed;
	// SetCapacities rejects a changed capacitated set (or invalid values),
	// in which case the instance is rebuilt from scratch.
	if p.inst != nil && p.inst.SetCapacities(caps) == nil {
		return p.inst, nil
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             p.SLA,
		ReconfigWeights: p.ReconfigWeights,
		Capacities:      caps,
	})
	if err != nil {
		return nil, err
	}
	p.inst = inst
	return inst, nil
}

// Scenario is a complete competition setting.
type Scenario struct {
	// Capacity[l] is each DC's total capacity in capacity units; +Inf
	// means uncapacitated.
	Capacity []float64
	// Providers are the competing SPs. All must share the horizon length
	// (Theorem 1's common-window assumption W^i = W̄).
	Providers []*Provider
}

// Window returns the shared horizon length (0 when undeterminable).
func (s *Scenario) Window() int {
	if len(s.Providers) == 0 || s.Providers[0] == nil {
		return 0
	}
	return len(s.Providers[0].Demand)
}

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if len(s.Providers) == 0 {
		return fmt.Errorf("no providers: %w", ErrBadScenario)
	}
	l := len(s.Capacity)
	if l == 0 {
		return fmt.Errorf("no data centers: %w", ErrBadScenario)
	}
	for i, c := range s.Capacity {
		if c <= 0 || math.IsNaN(c) {
			return fmt.Errorf("capacity[%d] = %g: %w", i, c, ErrBadScenario)
		}
	}
	for i, p := range s.Providers {
		if p == nil {
			return fmt.Errorf("provider %d is nil: %w", i, ErrBadScenario)
		}
	}
	w := s.Window()
	if w == 0 {
		return fmt.Errorf("empty horizon: %w", ErrBadScenario)
	}
	for i, p := range s.Providers {
		if len(p.SLA) != l {
			return fmt.Errorf("provider %d SLA has %d DCs, want %d: %w", i, len(p.SLA), l, ErrBadScenario)
		}
		if p.ServerSize <= 0 || math.IsNaN(p.ServerSize) || math.IsInf(p.ServerSize, 0) {
			return fmt.Errorf("provider %d server size %g: %w", i, p.ServerSize, ErrBadScenario)
		}
		if len(p.Demand) != w {
			return fmt.Errorf("provider %d horizon %d, want %d: %w", i, len(p.Demand), w, ErrBadScenario)
		}
		if len(p.Prices) != w {
			return fmt.Errorf("provider %d price horizon %d, want %d: %w", i, len(p.Prices), w, ErrBadScenario)
		}
		v := p.numLocations()
		if v == 0 {
			return fmt.Errorf("provider %d has no locations: %w", i, ErrBadScenario)
		}
		for t := 0; t < w; t++ {
			if len(p.Demand[t]) != v {
				return fmt.Errorf("provider %d demand[%d] width %d, want %d: %w", i, t, len(p.Demand[t]), v, ErrBadScenario)
			}
			if len(p.Prices[t]) != l {
				return fmt.Errorf("provider %d prices[%d] width %d, want %d: %w", i, t, len(p.Prices[t]), l, ErrBadScenario)
			}
		}
		// Instance construction validates SLA/weights; use uncapacitated
		// quotas for the structural check.
		quota := make([]float64, l)
		for j := range quota {
			quota[j] = math.Inf(1)
		}
		inst, err := p.instance(quota)
		if err != nil {
			return fmt.Errorf("provider %d: %w", i, err)
		}
		if p.X0 != nil {
			if err := inst.CheckState(p.X0); err != nil {
				return fmt.Errorf("provider %d x0: %w", i, err)
			}
		}
	}
	return nil
}

// x0 returns the provider's initial state (zeros if unset). The copy is
// cached: the horizon solver only reads it, and rebuilding it every
// best-response round is measurable across the tens of thousands of
// rounds a convergence experiment runs.
func (p *Provider) x0() core.State {
	if p.x0c == nil {
		if p.X0 != nil {
			p.x0c = p.X0.Clone()
		} else {
			p.x0c = make(core.State, len(p.SLA))
			for l := range p.x0c {
				p.x0c[l] = make([]float64, p.numLocations())
			}
		}
	}
	return p.x0c
}

// Outcome is one provider's solved trajectory and cost.
type Outcome struct {
	// U and X are the control and state trajectories over the window.
	U, X []core.State
	// Cost is the provider's objective Σ p·x + c·u² over the window.
	Cost float64
}

// TotalCost sums provider costs.
func TotalCost(outcomes []Outcome) float64 {
	var t float64
	for _, o := range outcomes {
		t += o.Cost
	}
	return t
}

package game

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"dspp/internal/qp"
)

// twoProviderScenario: 2 DCs (first capacitated, cheap; second large,
// expensive), 2 providers each with one location, window w.
func twoProviderScenario(w int, bottleneck float64) *Scenario {
	mkProvider := func(name string, demand float64) *Provider {
		dem := make([][]float64, w)
		pr := make([][]float64, w)
		for t := 0; t < w; t++ {
			dem[t] = []float64{demand}
			pr[t] = []float64{0.1, 1.0} // DC0 10x cheaper
		}
		return &Provider{
			Name:            name,
			SLA:             [][]float64{{0.01}, {0.01}},
			ReconfigWeights: []float64{1e-4, 1e-4},
			ServerSize:      1,
			Demand:          dem,
			Prices:          pr,
		}
	}
	return &Scenario{
		Capacity:  []float64{bottleneck, math.Inf(1)},
		Providers: []*Provider{mkProvider("sp1", 1000), mkProvider("sp2", 1500)},
	}
}

func TestScenarioValidate(t *testing.T) {
	s := twoProviderScenario(3, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no providers", func(s *Scenario) { s.Providers = nil }},
		{"no DCs", func(s *Scenario) { s.Capacity = nil }},
		{"bad capacity", func(s *Scenario) { s.Capacity[0] = 0 }},
		{"nil provider", func(s *Scenario) { s.Providers[0] = nil }},
		{"SLA rows", func(s *Scenario) { s.Providers[0].SLA = s.Providers[0].SLA[:1] }},
		{"server size", func(s *Scenario) { s.Providers[1].ServerSize = 0 }},
		{"horizon mismatch", func(s *Scenario) { s.Providers[1].Demand = s.Providers[1].Demand[:1] }},
		{"price horizon", func(s *Scenario) { s.Providers[1].Prices = s.Providers[1].Prices[:1] }},
		{"demand width", func(s *Scenario) { s.Providers[0].Demand[0] = []float64{1, 2} }},
		{"price width", func(s *Scenario) { s.Providers[0].Prices[0] = []float64{1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := twoProviderScenario(3, 10)
			tc.mutate(s)
			if err := s.Validate(); !errors.Is(err, ErrBadScenario) {
				t.Errorf("err = %v, want ErrBadScenario", err)
			}
		})
	}
}

func TestSWPRespectsSharedCapacity(t *testing.T) {
	// Bottleneck 10 capacity units at the cheap DC; both providers need
	// 25 server-slots total, so most load must go to the expensive DC.
	s := twoProviderScenario(3, 10)
	res, err := SolveSocialWelfare(s, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < 3; t2++ {
		var used float64
		for i, oc := range res.Outcomes {
			used += s.Providers[i].ServerSize * oc.X[t2][0][0]
		}
		if used > 10+1e-3 {
			t.Errorf("step %d: shared DC0 usage %g exceeds 10", t2, used)
		}
		// All demand served for each provider.
		for i, oc := range res.Outcomes {
			total := oc.X[t2][0][0]/0.01 + oc.X[t2][1][0]/0.01
			want := s.Providers[i].Demand[t2][0]
			if total < want-1 {
				t.Errorf("step %d provider %d: serves %g of %g", t2, i, total, want)
			}
		}
	}
	// Binding shared capacity must show a positive dual.
	var dualSum float64
	for _, row := range res.CapacityDuals {
		dualSum += row[0]
	}
	if dualSum <= 0 {
		t.Errorf("binding shared capacity dual sum = %g", dualSum)
	}
	if res.Total <= 0 {
		t.Errorf("total cost = %g", res.Total)
	}
}

func TestSWPUncapacitatedMatchesIndependentSolves(t *testing.T) {
	// With no binding capacity the SWP decomposes: total equals the sum
	// of each provider solving alone.
	s := twoProviderScenario(3, 1e9)
	joint, err := SolveSocialWelfare(s, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var independent float64
	for _, p := range s.Providers {
		quota := []float64{math.Inf(1), math.Inf(1)}
		plan, err := solveProvider(context.Background(), p, quota, qp.DefaultOptions(), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		independent += plan.Objective
	}
	if math.Abs(joint.Total-independent) > 1e-3*(1+independent) {
		t.Errorf("joint %g != independent %g", joint.Total, independent)
	}
}

func TestBestResponseConverges(t *testing.T) {
	s := twoProviderScenario(3, 10)
	res, err := BestResponse(s, BestResponseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations < 2 {
		t.Errorf("iterations = %d, want ≥ 2", res.Iterations)
	}
	// Quotas at the bottleneck DC must sum to its capacity.
	var sum float64
	for i := range res.Quotas {
		q := res.Quotas[i][0]
		if q < 0 {
			t.Errorf("negative quota %g", q)
		}
		sum += q
	}
	if math.Abs(sum-10) > 1e-6 {
		t.Errorf("bottleneck quotas sum to %g, want 10", sum)
	}
	// Per-provider capacity respected.
	for i, oc := range res.Outcomes {
		for t2 := range oc.X {
			if used := oc.X[t2][0][0] * s.Providers[i].ServerSize; used > res.Quotas[i][0]+1e-3 {
				t.Errorf("provider %d step %d uses %g of quota %g", i, t2, used, res.Quotas[i][0])
			}
		}
	}
}

// Theorem 1: the best NE is socially optimal (PoS = 1). With ε = 0.05 the
// computed outcome should be within a few percent of the SWP optimum.
func TestBestResponseNearSocialOptimum(t *testing.T) {
	s := twoProviderScenario(3, 10)
	swp, err := SolveSocialWelfare(s, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ne, err := BestResponse(s, BestResponseConfig{Epsilon: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := EfficiencyRatio(ne, swp)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.98 {
		t.Errorf("NE beat the social optimum by too much: ratio %g (solver artifacts?)", ratio)
	}
	if ratio > 1.15 {
		t.Errorf("efficiency ratio %g too far above 1 (PoS should be 1)", ratio)
	}
}

// Paper Fig. 7: tighter bottlenecks need more rounds to stabilize.
func TestBestResponseTighterCapacitySlower(t *testing.T) {
	run := func(bottleneck float64) int {
		s := twoProviderScenario(3, bottleneck)
		res, err := BestResponse(s, BestResponseConfig{Epsilon: 0.001, Alpha: 0.3})
		if err != nil {
			t.Fatalf("bottleneck %g: %v", bottleneck, err)
		}
		return res.Iterations
	}
	tight := run(5)
	loose := run(2000) // effectively non-binding
	if tight < loose {
		t.Errorf("tight bottleneck converged faster (%d) than loose (%d)", tight, loose)
	}
	if loose > 3 {
		t.Errorf("non-binding case took %d rounds, want ≤ 3", loose)
	}
}

func TestBestResponseNotConverged(t *testing.T) {
	s := twoProviderScenario(3, 5)
	res, err := BestResponse(s, BestResponseConfig{
		Epsilon:       1e-12, // unattainably strict
		MaxIterations: 3,
	})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if res == nil || res.Iterations != 3 {
		t.Errorf("partial result = %+v", res)
	}
}

func TestBestResponseInvalidScenario(t *testing.T) {
	s := twoProviderScenario(2, 10)
	s.Providers[0].ServerSize = -1
	if _, err := BestResponse(s, BestResponseConfig{}); !errors.Is(err, ErrBadScenario) {
		t.Errorf("err = %v", err)
	}
	if _, err := SolveSocialWelfare(s, qp.DefaultOptions()); !errors.Is(err, ErrBadScenario) {
		t.Errorf("swp err = %v", err)
	}
}

func TestEfficiencyRatioEdgeCases(t *testing.T) {
	if _, err := EfficiencyRatio(nil, nil); !errors.Is(err, ErrBadScenario) {
		t.Errorf("nil err = %v", err)
	}
	r, err := EfficiencyRatio(&BestResponseResult{Total: 0}, &SWPResult{Total: 0})
	if err != nil || r != 1 {
		t.Errorf("zero/zero = %g, %v", r, err)
	}
	if _, err := EfficiencyRatio(&BestResponseResult{Total: 5}, &SWPResult{Total: 0}); err == nil {
		t.Error("positive/zero accepted")
	}
}

func TestServerSizesAffectSharedCapacity(t *testing.T) {
	// Provider with size-2 servers consumes twice the capacity per
	// server; SWP must account for that.
	s := twoProviderScenario(2, 10)
	s.Providers[0].ServerSize = 2
	res, err := SolveSocialWelfare(s, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < 2; t2++ {
		used := 2*res.Outcomes[0].X[t2][0][0] + res.Outcomes[1].X[t2][0][0]
		if used > 10+1e-3 {
			t.Errorf("step %d: weighted usage %g exceeds 10", t2, used)
		}
	}
}

func TestBestResponseRandomScenariosConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(3)
		w := 2
		providers := make([]*Provider, n)
		for i := range providers {
			demand := make([][]float64, w)
			prices := make([][]float64, w)
			for t2 := 0; t2 < w; t2++ {
				demand[t2] = []float64{200 + rng.Float64()*800}
				prices[t2] = []float64{0.05 + rng.Float64()*0.1, 0.5 + rng.Float64()}
			}
			providers[i] = &Provider{
				Name:            "sp",
				SLA:             [][]float64{{0.005 + rng.Float64()*0.02}, {0.005 + rng.Float64()*0.02}},
				ReconfigWeights: []float64{1e-4, 1e-4},
				ServerSize:      1 + float64(rng.Intn(2)),
				Demand:          demand,
				Prices:          prices,
			}
		}
		s := &Scenario{
			Capacity:  []float64{5 + rng.Float64()*20, math.Inf(1)},
			Providers: providers,
		}
		res, err := BestResponse(s, BestResponseConfig{MaxIterations: 300})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Converged {
			t.Errorf("trial %d did not converge", trial)
		}
	}
}

func TestBestResponseCustomInitialQuotas(t *testing.T) {
	s := twoProviderScenario(3, 10)
	// Heavily skewed start: provider 0 gets 90% of the bottleneck.
	res, err := BestResponse(s, BestResponseConfig{
		Epsilon:       0.01,
		InitialQuotas: [][]float64{{9, 1}, {1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range res.Quotas {
		sum += res.Quotas[i][0]
	}
	if math.Abs(sum-10) > 1e-6 {
		t.Errorf("quota sum %g, want 10", sum)
	}
}

func TestBestResponseInitialQuotaValidation(t *testing.T) {
	s := twoProviderScenario(2, 10)
	cases := [][][]float64{
		{{1, 1}},                  // wrong provider count
		{{1}, {1}},                // wrong DC count
		{{0, 1}, {1, 1}},          // nonpositive entry
		{{math.NaN(), 1}, {1, 1}}, // NaN
	}
	for i, init := range cases {
		if _, err := BestResponse(s, BestResponseConfig{InitialQuotas: init}); !errors.Is(err, ErrBadScenario) {
			t.Errorf("case %d err = %v, want ErrBadScenario", i, err)
		}
	}
}

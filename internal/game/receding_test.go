package game

import (
	"errors"
	"math"
	"testing"

	"dspp/internal/core"
)

// dynProvider builds a DynamicProvider with a sinusoid-ish demand trace.
func dynProvider(name string, level float64, periods, window int) *DynamicProvider {
	demand := make([][]float64, periods+window)
	prices := make([][]float64, periods+window)
	for k := range demand {
		wave := 1 + 0.3*math.Sin(float64(k)/3)
		demand[k] = []float64{level * wave}
		prices[k] = []float64{0.1, 1.0}
	}
	return &DynamicProvider{
		Name:            name,
		SLA:             [][]float64{{0.01}, {0.01}},
		ReconfigWeights: []float64{1e-4, 1e-4},
		ServerSize:      1,
		Demand:          demand,
		Prices:          prices,
	}
}

func TestRunRecedingValidation(t *testing.T) {
	p := dynProvider("a", 1000, 4, 2)
	cases := []struct {
		name string
		call func() (*RecedingResult, error)
	}{
		{"window 0", func() (*RecedingResult, error) {
			return RunReceding([]float64{10, math.Inf(1)}, []*DynamicProvider{p},
				RecedingConfig{Window: 0, Periods: 2})
		}},
		{"periods 0", func() (*RecedingResult, error) {
			return RunReceding([]float64{10, math.Inf(1)}, []*DynamicProvider{p},
				RecedingConfig{Window: 2, Periods: 0})
		}},
		{"no providers", func() (*RecedingResult, error) {
			return RunReceding([]float64{10, math.Inf(1)}, nil,
				RecedingConfig{Window: 2, Periods: 2})
		}},
		{"nil provider", func() (*RecedingResult, error) {
			return RunReceding([]float64{10, math.Inf(1)}, []*DynamicProvider{nil},
				RecedingConfig{Window: 2, Periods: 2})
		}},
		{"short traces", func() (*RecedingResult, error) {
			return RunReceding([]float64{10, math.Inf(1)}, []*DynamicProvider{p},
				RecedingConfig{Window: 2, Periods: 100})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.call(); !errors.Is(err, ErrBadScenario) {
				t.Errorf("err = %v, want ErrBadScenario", err)
			}
		})
	}
}

func TestRunRecedingClosedLoop(t *testing.T) {
	const periods = 6
	const window = 3
	providers := []*DynamicProvider{
		dynProvider("a", 1000, periods, window),
		dynProvider("b", 1600, periods, window),
	}
	capacity := []float64{12, math.Inf(1)}
	res, err := RunReceding(capacity, providers, RecedingConfig{
		Window:  window,
		Periods: periods,
		BestResponse: BestResponseConfig{
			Alpha: 50, StepDecay: 1, Epsilon: 0.02, MaxIterations: 400,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States[0]) != periods || len(res.Rounds) != periods {
		t.Fatalf("recorded %d states, %d rounds", len(res.States[0]), len(res.Rounds))
	}
	// Shared capacity respected in every period.
	usage, err := res.CapacityUsage(providers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, u := range usage {
		if u > 12+1e-3 {
			t.Errorf("period %d: shared DC0 usage %g > 12", k, u)
		}
	}
	// Every provider's demand served in every period.
	for i, p := range providers {
		for k, x := range res.States[i] {
			served := x[0][0]/0.01 + x[1][0]/0.01
			want := p.Demand[k+1][0]
			if served < want-1 {
				t.Errorf("provider %d period %d: serves %g of %g", i, k, served, want)
			}
		}
	}
	if res.Total <= 0 {
		t.Errorf("total cost %g", res.Total)
	}
	sum := res.Costs[0] + res.Costs[1]
	if math.Abs(sum-res.Total) > 1e-9 {
		t.Errorf("cost sum %g != total %g", sum, res.Total)
	}
}

// With one provider and no binding capacity, the receding game must match
// the single-provider MPC controller exactly.
func TestRunRecedingMatchesSingleProviderMPC(t *testing.T) {
	const periods = 5
	const window = 2
	p := dynProvider("solo", 1200, periods, window)
	res, err := RunReceding([]float64{math.Inf(1), math.Inf(1)},
		[]*DynamicProvider{p}, RecedingConfig{Window: window, Periods: periods})
	if err != nil {
		t.Fatal(err)
	}

	inst, err := core.NewInstance(core.Config{
		SLA:             p.SLA,
		ReconfigWeights: p.ReconfigWeights,
		Capacities:      []float64{math.Inf(1), math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(inst, window)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < periods; k++ {
		step, err := ctrl.Step(p.Demand[k+1:k+1+window], p.Prices[k+1:k+1+window])
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < 2; l++ {
			got := res.States[0][k][l][0]
			want := step.NewState[l][0]
			if math.Abs(got-want) > 1e-4*(1+want) {
				t.Fatalf("period %d DC %d: receding %g vs MPC %g", k, l, got, want)
			}
		}
	}
}

func TestCapacityUsageErrors(t *testing.T) {
	p := dynProvider("a", 1000, 2, 2)
	good, err := RunReceding([]float64{10, math.Inf(1)}, []*DynamicProvider{p},
		RecedingConfig{Window: 2, Periods: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.CapacityUsage(nil, 0); !errors.Is(err, ErrBadScenario) {
		t.Errorf("mismatched providers err = %v", err)
	}
	if _, err := good.CapacityUsage([]*DynamicProvider{p}, 9); !errors.Is(err, ErrBadScenario) {
		t.Errorf("dc range err = %v", err)
	}
}

package game

import (
	"fmt"
	"math"

	"dspp/internal/core"
	"dspp/internal/linalg"
	"dspp/internal/qp"
)

// SWPResult is the social-welfare optimum: the joint cost-minimizing
// allocation over all providers under the shared capacity constraints.
type SWPResult struct {
	Outcomes []Outcome
	// Total is Σᵢ Jᵢ at the optimum.
	Total float64
	// CapacityDuals[t][l] are the shared capacity constraint duals.
	CapacityDuals [][]float64
	// QPIterations reports interior-point iterations.
	QPIterations int
}

// swpLayout captures the variable block structure of the joint QP.
type swpLayout struct {
	w          int
	l          int
	offsets    []int   // per provider: first variable index
	pairsL     [][]int // per provider: pair index -> DC
	pairsV     [][]int // per provider: pair index -> location
	pairAt     [][]float64
	numVars    int
	capDCs     []int
	x0         []core.State
	totalByDCL [][]float64 // per provider: capacity units held at t=0 per DC
}

func buildLayout(s *Scenario) (*swpLayout, error) {
	w := s.Window()
	l := len(s.Capacity)
	lay := &swpLayout{w: w, l: l}
	for li := 0; li < l; li++ {
		if !math.IsInf(s.Capacity[li], 1) {
			lay.capDCs = append(lay.capDCs, li)
		}
	}
	for _, p := range s.Providers {
		lay.offsets = append(lay.offsets, lay.numVars)
		var pl, pv []int
		var pa []float64
		for li := 0; li < l; li++ {
			for vi := 0; vi < p.numLocations(); vi++ {
				a := p.SLA[li][vi]
				if math.IsInf(a, 1) {
					continue
				}
				if a <= 0 || math.IsNaN(a) {
					return nil, fmt.Errorf("provider SLA (%d,%d) = %g: %w", li, vi, a, ErrBadScenario)
				}
				pl = append(pl, li)
				pv = append(pv, vi)
				pa = append(pa, a)
			}
		}
		lay.pairsL = append(lay.pairsL, pl)
		lay.pairsV = append(lay.pairsV, pv)
		lay.pairAt = append(lay.pairAt, pa)
		lay.numVars += len(pl) * w
		lay.x0 = append(lay.x0, p.x0())
	}
	return lay, nil
}

// varIdx returns the QP variable index of provider i, horizon step t,
// dense pair pi.
func (lay *swpLayout) varIdx(i, t, pi int) int {
	return lay.offsets[i] + t*len(lay.pairsL[i]) + pi
}

// SolveSocialWelfare solves the joint SWP (§VI-B) as a single QP. Every
// provider's demand and nonnegativity constraints appear alongside the
// shared capacity constraints Σᵢ sᵢ·xᵢ ≤ C.
func SolveSocialWelfare(s *Scenario, opts qp.Options) (*SWPResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lay, err := buildLayout(s)
	if err != nil {
		return nil, err
	}
	w, n := lay.w, lay.numVars

	qMat := linalg.NewMatrix(n, n)
	cVec := linalg.NewVector(n)
	var constCost float64
	for i, p := range s.Providers {
		for pi, li := range lay.pairsL[i] {
			vi := lay.pairsV[i][pi]
			var tail float64
			for t := w - 1; t >= 0; t-- {
				tail += p.Prices[t][li]
				idx := lay.varIdx(i, t, pi)
				cVec[idx] = tail
				qMat.Set(idx, idx, 2*p.ReconfigWeights[li])
			}
			for t := 0; t < w; t++ {
				constCost += p.Prices[t][li] * lay.x0[i][li][vi]
			}
		}
	}

	// Row count: per provider per step, demand (Vᵢ) + nonneg (Eᵢ);
	// shared capacity rows per step per capacitated DC.
	m := 0
	for i, p := range s.Providers {
		m += w * (p.numLocations() + len(lay.pairsL[i]))
	}
	m += w * len(lay.capDCs)
	gMat := linalg.NewMatrix(m, n)
	hVec := linalg.NewVector(m)
	row := 0
	capRows := make([][]int, w)

	for i, p := range s.Providers {
		v := p.numLocations()
		for t := 0; t < w; t++ {
			// Demand rows.
			for vi := 0; vi < v; vi++ {
				rhs := -p.Demand[t][vi]
				for pi, li := range lay.pairsL[i] {
					if lay.pairsV[i][pi] != vi {
						continue
					}
					inv := 1 / lay.pairAt[i][pi]
					rhs += lay.x0[i][li][vi] * inv
					for tau := 0; tau <= t; tau++ {
						gMat.Set(row, lay.varIdx(i, tau, pi), -inv)
					}
				}
				hVec[row] = rhs
				row++
			}
			// Nonnegativity rows.
			for pi, li := range lay.pairsL[i] {
				vi := lay.pairsV[i][pi]
				for tau := 0; tau <= t; tau++ {
					gMat.Set(row, lay.varIdx(i, tau, pi), -1)
				}
				hVec[row] = lay.x0[i][li][vi]
				row++
			}
		}
	}
	// Shared capacity rows.
	for t := 0; t < w; t++ {
		capRows[t] = make([]int, lay.l)
		for li := range capRows[t] {
			capRows[t][li] = -1
		}
		for _, li := range lay.capDCs {
			capRows[t][li] = row
			rhs := s.Capacity[li]
			for i, p := range s.Providers {
				for pi, pl := range lay.pairsL[i] {
					if pl != li {
						continue
					}
					vi := lay.pairsV[i][pi]
					rhs -= p.ServerSize * lay.x0[i][li][vi]
					for tau := 0; tau <= t; tau++ {
						gMat.Set(row, lay.varIdx(i, tau, pi), p.ServerSize)
					}
				}
			}
			hVec[row] = rhs
			row++
		}
	}

	res, err := qp.Solve(&qp.Problem{Q: qMat, C: cVec, G: gMat, H: hVec}, opts)
	if err != nil {
		return nil, fmt.Errorf("SWP QP (n=%d, m=%d): %w", n, m, err)
	}

	out := &SWPResult{
		Outcomes:      make([]Outcome, len(s.Providers)),
		QPIterations:  res.Iterations,
		CapacityDuals: make([][]float64, w),
	}
	for t := 0; t < w; t++ {
		out.CapacityDuals[t] = make([]float64, lay.l)
		for _, li := range lay.capDCs {
			out.CapacityDuals[t][li] = res.IneqDuals[capRows[t][li]]
		}
	}
	for i, p := range s.Providers {
		oc, cost := lay.extract(i, p, res.X)
		out.Outcomes[i] = oc
		out.Total += cost
	}
	return out, nil
}

// extract rebuilds provider i's trajectory from the QP solution and
// computes its individual cost.
func (lay *swpLayout) extract(i int, p *Provider, sol linalg.Vector) (Outcome, float64) {
	w := lay.w
	v := p.numLocations()
	oc := Outcome{U: make([]core.State, w), X: make([]core.State, w)}
	prev := lay.x0[i].Clone()
	var cost float64
	for t := 0; t < w; t++ {
		u := make(core.State, lay.l)
		x := make(core.State, lay.l)
		for li := 0; li < lay.l; li++ {
			u[li] = make([]float64, v)
			x[li] = append([]float64(nil), prev[li]...)
		}
		for pi, li := range lay.pairsL[i] {
			vi := lay.pairsV[i][pi]
			uv := sol[lay.varIdx(i, t, pi)]
			u[li][vi] = uv
			x[li][vi] += uv
			if x[li][vi] < 0 {
				x[li][vi] = 0
			}
			cost += p.Prices[t][li]*x[li][vi] + p.ReconfigWeights[li]*uv*uv
		}
		oc.U[t] = u
		oc.X[t] = x
		prev = x
	}
	oc.Cost = cost
	return oc, cost
}

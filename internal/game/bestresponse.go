package game

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dspp/internal/core"
	"dspp/internal/parallel"
	"dspp/internal/qp"
	"dspp/internal/telemetry"
)

// BestResponseConfig tunes Algorithm 2.
type BestResponseConfig struct {
	// Alpha is the quota-update step size α (default 0.5).
	Alpha float64
	// Epsilon is the relative stability threshold ε (default 0.05, the
	// paper's experimental setting).
	Epsilon float64
	// MaxIterations caps the loop (default 500).
	MaxIterations int
	// QP configures the per-provider DSPP solves.
	QP qp.Options
	// MinQuota floors each provider's per-DC quota to keep individual
	// problems well posed (default 1e-6 of the DC capacity).
	MinQuota float64
	// StepDecay makes the effective step α/√(1+decay·iter), the standard
	// diminishing step of dual subgradient methods; 0 disables decay.
	StepDecay float64
	// InitialQuotas[i][l] overrides the default equal split of each
	// capacitated DC (entries for uncapacitated DCs are ignored). Each
	// capacitated column must be positive and is renormalized to the DC
	// capacity. Different starts can reach different ε-stable outcomes —
	// which is exactly how the price-of-anarchy experiment probes the
	// equilibrium set.
	InitialQuotas [][]float64
	// Parallel bounds the worker pool for the per-round provider solves
	// (providers are independent given their quotas); ≤ 0 means
	// runtime.GOMAXPROCS(0). Results are collected by provider index, so
	// the outcome is identical at any worker count.
	Parallel int
	// NoSessions disables the per-provider persistent solver sessions and
	// routes every round through the pooled one-shot path instead. The
	// sessions keep each provider's interior-point state, KKT
	// factorization, and plan storage alive across rounds — the fast
	// configuration — and produce bit-identical results to the one-shot
	// path; the toggle exists for verification and debugging.
	NoSessions bool
	// Telemetry, when non-nil, records the game's convergence behaviour:
	// best_response/best_response_round spans, round and quota-re-division
	// counters, the per-SP relative cost-delta histogram, and the QP
	// solver's own counters (wired through QP.Hooks unless the caller set
	// hooks explicitly). Nil disables instrumentation.
	Telemetry *telemetry.Hub

	// initialWarms optionally seeds round 0 of each provider's solve
	// (shifted by initialWarmShift periods); used by the receding-horizon
	// loop to chain warm starts across control periods.
	initialWarms     []*core.HorizonWarm
	initialWarmShift int
}

func (c BestResponseConfig) withDefaults() BestResponseConfig {
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 500
	}
	if c.MinQuota <= 0 {
		c.MinQuota = 1e-6
	}
	return c
}

// BestResponseResult reports the outcome of Algorithm 2.
type BestResponseResult struct {
	// Outcomes holds each provider's final trajectory and cost.
	Outcomes []Outcome
	// Quotas[i][l] is provider i's final capacity quota at DC l.
	Quotas [][]float64
	// Iterations is the number of best-response rounds executed.
	Iterations int
	// CostHistory records the total cost after every round.
	CostHistory []float64
	// Converged reports whether the ε-stability test passed.
	Converged bool
	// Total is the final total cost Σᵢ Jᵢ.
	Total float64

	// finalWarms holds each provider's last QP iterates; the
	// receding-horizon loop shifts them into the next period's round 0.
	finalWarms []*core.HorizonWarm
}

// BestResponse runs the paper's Algorithm 2. Each round, every provider
// solves its DSPP against its current capacity quotas and reports the
// dual variables of the quota constraints; the infrastructure provider
// then shifts quota toward providers with higher duals (marginal value of
// capacity) and renormalizes so each DC's quotas sum to its capacity. The
// loop stops when total cost changes by at most ε (relative), which the
// paper uses as its "approximately stable outcome" criterion.
func BestResponse(s *Scenario, cfg BestResponseConfig) (*BestResponseResult, error) {
	return BestResponseCtx(context.Background(), s, cfg)
}

// BestResponseCtx is BestResponse with cooperative cancellation: the
// context is checked before every round and threaded into each provider's
// QP solve, so the loop stops within one round of the context being
// cancelled. If at least one round completed, the partial result is
// returned alongside the context's error (mirroring the ErrNotConverged
// contract); callers must treat such a result as a snapshot, not an
// equilibrium.
func BestResponseCtx(ctx context.Context, s *Scenario, cfg BestResponseConfig) (*BestResponseResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(s.Providers)
	l := len(s.Capacity)

	// Initial quotas: equal split of each capacitated DC, or the caller's
	// normalized split.
	quotas := make([][]float64, n)
	for i := range quotas {
		quotas[i] = make([]float64, l)
		for li, c := range s.Capacity {
			if math.IsInf(c, 1) {
				quotas[i][li] = math.Inf(1)
			} else {
				quotas[i][li] = c / float64(n)
			}
		}
	}
	if cfg.InitialQuotas != nil {
		if len(cfg.InitialQuotas) != n {
			return nil, fmt.Errorf("initial quotas for %d providers, want %d: %w",
				len(cfg.InitialQuotas), n, ErrBadScenario)
		}
		for li, c := range s.Capacity {
			if math.IsInf(c, 1) {
				continue
			}
			var sum float64
			for i := range cfg.InitialQuotas {
				if len(cfg.InitialQuotas[i]) != l {
					return nil, fmt.Errorf("initial quotas row %d has %d DCs, want %d: %w",
						i, len(cfg.InitialQuotas[i]), l, ErrBadScenario)
				}
				q := cfg.InitialQuotas[i][li]
				if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
					return nil, fmt.Errorf("initial quota[%d][%d] = %g: %w", i, li, q, ErrBadScenario)
				}
				sum += q
			}
			for i := range quotas {
				quotas[i][li] = cfg.InitialQuotas[i][li] * c / sum
			}
		}
	}

	// All telemetry handles are nil-safe: with no hub every call below is
	// a no-op on a nil receiver.
	hub := cfg.Telemetry
	if hub != nil && cfg.QP.Hooks == nil {
		cfg.QP.Hooks = hub.QPHooks()
	}
	reg := hub.Registry()
	mRounds := reg.Counter(telemetry.MetricGameRounds)
	mRediv := reg.Counter(telemetry.MetricGameQuotaRedivision)
	costHist := hub.GameCostDeltaHist()
	reg.Counter(telemetry.MetricGameRuns).Inc()

	res := &BestResponseResult{Quotas: quotas}
	brSpan := hub.Tracer().Start(telemetry.SpanBestResponse, telemetry.SpanIDFromContext(ctx),
		telemetry.Num("providers", float64(n)))
	ctx = telemetry.ContextWithSpan(ctx, brSpan)
	defer func() {
		conv := 0.0
		if res.Converged {
			conv = 1
		}
		brSpan.SetAttr(
			telemetry.Num("rounds", float64(res.Iterations)),
			telemetry.Num("converged", conv),
			telemetry.Num("total_cost", res.Total),
		)
		brSpan.End()
	}()

	prev := make([]float64, n)
	havePrev := false
	// The per-provider dual and total buffers are written by exactly one
	// worker each round and reused across rounds; carving the dual rows
	// out of one flat backing keeps a 4000-round game at a fixed handful
	// of allocations instead of O(rounds·providers).
	duals := make([][]float64, n)
	dualsFlat := make([]float64, n*l)
	for i := range duals {
		duals[i] = dualsFlat[i*l : (i+1)*l : (i+1)*l]
	}
	totals := make([]float64, n)
	raw := make([]float64, n)
	// Outcomes double-buffer: res.Outcomes always references the last
	// completed round's buffer, so the round in flight must write the
	// other one — a mid-round cancellation then cannot corrupt the
	// snapshot the partial result hands back.
	var outBufs [2][]Outcome
	outBufs[0] = make([]Outcome, n)
	outBufs[1] = make([]Outcome, n)
	// Per-provider persistent sessions (unless disabled): across rounds
	// only the quota values move, so each provider's horizon QP keeps its
	// structure, interior-point state, and factorization storage alive for
	// the whole game. Sessions are confined to this call — nothing solves
	// on them after return, so the plans the result references stay
	// intact.
	var sessions []*core.HorizonSession
	var sesInsts []*core.Instance
	if !cfg.NoSessions {
		sessions = make([]*core.HorizonSession, n)
		sesInsts = make([]*core.Instance, n)
	}
	// Warm starts: round 0 may be seeded by the caller (receding-horizon
	// chaining); later rounds reuse each provider's previous solution —
	// only the quotas move between rounds, so the previous plan is an
	// excellent starting point and cuts interior-point iterations hard.
	warms := make([]*core.HorizonWarm, n)
	warmShift := 0
	if cfg.initialWarms != nil && len(cfg.initialWarms) == n {
		copy(warms, cfg.initialWarms)
		warmShift = cfg.initialWarmShift
	}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			wrapped := fmt.Errorf("round %d: %w", iter, err)
			if iter > 0 {
				return res, wrapped
			}
			return nil, wrapped
		}
		mRounds.Inc()
		roundSpan := hub.Tracer().Start(telemetry.SpanBestResponseRound, brSpan.ID(),
			telemetry.Num("round", float64(iter)))
		roundCtx := telemetry.ContextWithSpan(ctx, roundSpan)
		outcomes := outBufs[iter&1]
		// Per-SP best responses are independent given the quotas: fan out
		// on a bounded pool, collect by index (determinism contract).
		err := parallel.ForEachCtx(roundCtx, n, cfg.Parallel, func(i int) error {
			p := s.Providers[i]
			var plan *core.Plan
			var err error
			if sessions != nil {
				plan, err = solveProviderSession(roundCtx, sessions, sesInsts, i, p, quotas[i], cfg.QP, warms[i], warmShift)
			} else {
				plan, err = solveProvider(roundCtx, p, quotas[i], cfg.QP, warms[i], warmShift)
			}
			if err != nil {
				return fmt.Errorf("round %d provider %d (%s): %w", iter, i, p.Name, err)
			}
			outcomes[i] = Outcome{U: plan.U, X: plan.X, Cost: plan.Objective}
			warms[i] = plan.Warm
			// The plan reports duals of the server-count constraint
			// (quota/sᵢ slots); one capacity unit buys 1/sᵢ servers, so
			// the marginal value of quota is the dual divided by sᵢ.
			plan.TotalCapacityDualsInto(duals[i])
			for li := range duals[i] {
				duals[i][li] /= p.ServerSize
			}
			totals[i] = plan.Objective
			return nil
		})
		if err != nil {
			roundSpan.SetAttr(telemetry.Str("outcome", "error"))
			roundSpan.End()
			// A cancellation that lands mid-round still hands back the
			// last completed round's iterate; a genuine solve failure
			// (which the lowest-index rule ranks above any cancelled
			// slot) stays fatal.
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) && iter > 0 {
				return res, fmt.Errorf("round %d: %w", iter, ctxErr)
			}
			return nil, err
		}
		warmShift = 0
		var total float64
		for _, t := range totals {
			total += t
		}
		res.Outcomes = outcomes
		res.Total = total
		res.Iterations = iter + 1
		res.CostHistory = append(res.CostHistory, total)
		res.finalWarms = warms
		if havePrev {
			// Per-SP relative cost movement this round — the contraction
			// the ε-stability test watches.
			for i, oc := range outcomes {
				denom := math.Abs(prev[i])
				if denom == 0 {
					denom = 1
				}
				costHist.Observe(math.Abs(oc.Cost-prev[i]) / denom)
			}
		}
		roundSpan.SetAttr(telemetry.Num("total_cost", total))
		roundSpan.End()

		// "This process repeats until no SP can significantly improve its
		// total cost" (§VI): every provider's cost must be ε-stable.
		if havePrev {
			stable := true
			for i, oc := range outcomes {
				if math.Abs(oc.Cost-prev[i]) > cfg.Epsilon*math.Abs(prev[i]) {
					stable = false
					break
				}
			}
			if stable {
				res.Converged = true
				reg.Counter(telemetry.MetricGameConverged).Inc()
				return res, nil
			}
		}
		for i, oc := range outcomes {
			prev[i] = oc.Cost
		}
		havePrev = true

		// Quota update: C̄ᵢ = Cᵢ + α·λᵢ, floored, then renormalized per DC.
		mRediv.Inc()
		alpha := cfg.Alpha
		if cfg.StepDecay > 0 {
			alpha /= math.Sqrt(1 + cfg.StepDecay*float64(iter))
		}
		for li := 0; li < l; li++ {
			if math.IsInf(s.Capacity[li], 1) {
				continue
			}
			floor := cfg.MinQuota * s.Capacity[li]
			var sum float64
			for i := range quotas {
				raw[i] = quotas[i][li] + alpha*duals[i][li]
				if raw[i] < floor {
					raw[i] = floor
				}
				sum += raw[i]
			}
			for i := range quotas {
				quotas[i][li] = raw[i] * s.Capacity[li] / sum
			}
		}
	}
	return res, fmt.Errorf("after %d rounds (ε=%g): %w", cfg.MaxIterations, cfg.Epsilon, ErrNotConverged)
}

// solveProviderSession is solveProvider through provider i's persistent
// HorizonSession, building it on first use and rebuilding it if the
// provider's instance was reconstructed (a changed capacitated set —
// impossible mid-game, where quotas stay finite and positive on a fixed
// set, but cheap to guard). Results are bit-identical to solveProvider;
// the session keeps the QP state, factorization, and plan storage alive
// between rounds instead of bouncing them through the pools.
func solveProviderSession(ctx context.Context, sessions []*core.HorizonSession, sesInsts []*core.Instance, i int, p *Provider, quota []float64, opts qp.Options, warm *core.HorizonWarm, warmShift int) (*core.Plan, error) {
	inst, err := p.instance(quota)
	if err != nil {
		return nil, err
	}
	if sessions[i] == nil || sesInsts[i] != inst {
		ses, err := inst.NewHorizonSession(len(p.Demand), opts)
		if err != nil {
			return nil, err
		}
		sessions[i], sesInsts[i] = ses, inst
	}
	return sessions[i].SolveCtx(ctx, core.HorizonInput{
		X0:        p.x0(),
		Demand:    p.Demand,
		Prices:    p.Prices,
		Warm:      warm,
		WarmShift: warmShift,
	})
}

// solveProvider solves one provider's DSPP under the given quotas,
// optionally warm-started from a previous plan shifted by warmShift.
func solveProvider(ctx context.Context, p *Provider, quota []float64, opts qp.Options, warm *core.HorizonWarm, warmShift int) (*core.Plan, error) {
	inst, err := p.instance(quota)
	if err != nil {
		return nil, err
	}
	return inst.SolveHorizonCtx(ctx, core.HorizonInput{
		X0:        p.x0(),
		Demand:    p.Demand,
		Prices:    p.Prices,
		Warm:      warm,
		WarmShift: warmShift,
	}, opts)
}

// EfficiencyRatio returns NE-total-cost / SWP-total-cost: the realized
// inefficiency of the computed equilibrium (≥ 1 up to solver tolerance;
// the paper's Theorem 1 predicts a best-case ratio — PoS — of exactly 1).
func EfficiencyRatio(ne *BestResponseResult, swp *SWPResult) (float64, error) {
	if ne == nil || swp == nil {
		return 0, fmt.Errorf("nil result: %w", ErrBadScenario)
	}
	if swp.Total <= 0 {
		if ne.Total <= 0 {
			return 1, nil
		}
		return 0, fmt.Errorf("SWP total %g: %w", swp.Total, ErrBadScenario)
	}
	return ne.Total / swp.Total, nil
}

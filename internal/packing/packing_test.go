package packing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFDSimple(t *testing.T) {
	res, err := FirstFitDecreasing([]float64{5, 5, 5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 2 {
		t.Errorf("bins = %d, want 2", res.NumBins())
	}
	if res.Waste != 0 {
		t.Errorf("waste = %g, want 0", res.Waste)
	}
}

func TestFFDEmpty(t *testing.T) {
	res, err := FirstFitDecreasing(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 0 || res.Waste != 0 {
		t.Errorf("empty packing: bins=%d waste=%g", res.NumBins(), res.Waste)
	}
}

func TestFFDErrors(t *testing.T) {
	if _, err := FirstFitDecreasing([]float64{1}, 0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("capacity 0 err = %v", err)
	}
	if _, err := FirstFitDecreasing([]float64{-1}, 10); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative size err = %v", err)
	}
	if _, err := FirstFitDecreasing([]float64{math.NaN()}, 10); !errors.Is(err, ErrBadParameter) {
		t.Errorf("NaN size err = %v", err)
	}
	if _, err := FirstFitDecreasing([]float64{11}, 10); !errors.Is(err, ErrItemTooLarge) {
		t.Errorf("oversized err = %v", err)
	}
}

func TestFFDEveryItemPackedOnce(t *testing.T) {
	sizes := []float64{7, 3, 2, 5, 5, 4, 6, 1, 1, 8}
	res, err := FirstFitDecreasing(sizes, 10)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for b, bin := range res.Bins {
		var load float64
		for _, idx := range bin {
			if seen[idx] {
				t.Fatalf("item %d packed twice", idx)
			}
			seen[idx] = true
			load += sizes[idx]
		}
		if load > 10+1e-9 {
			t.Errorf("bin %d overloaded: %g", b, load)
		}
	}
	if len(seen) != len(sizes) {
		t.Errorf("packed %d of %d items", len(seen), len(sizes))
	}
}

// The paper's claim: with divisible (doubling) sizes, FFD achieves the
// lower bound exactly — no wasted capacity in any full bin.
func TestFFDOptimalOnDivisibleSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	gogrid := GoGridSizes()
	if !Divisible(gogrid) {
		t.Fatal("GoGrid sizes should be divisible")
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		sizes := make([]float64, n)
		var total float64
		for i := range sizes {
			sizes[i] = gogrid[rng.Intn(len(gogrid))]
			total += sizes[i]
		}
		const capacity = 32
		res, err := FirstFitDecreasing(sizes, capacity)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := LowerBound(sizes, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumBins() != lb {
			t.Errorf("trial %d: FFD used %d bins, lower bound %d (total %g)",
				trial, res.NumBins(), lb, total)
		}
	}
}

func TestDivisible(t *testing.T) {
	cases := []struct {
		sizes []float64
		want  bool
	}{
		{nil, true},
		{[]float64{4}, true},
		{[]float64{1, 2, 4, 8}, true},
		{[]float64{2, 2, 4}, true},
		{[]float64{3, 6, 12}, true},
		{[]float64{1, 3, 6}, true}, // 1|3, 3|6
		{[]float64{2, 3}, false},
		{[]float64{2, 5, 10}, false},
		{[]float64{0, 2}, false},
		{[]float64{-1, 2}, false},
	}
	for i, c := range cases {
		if got := Divisible(c.sizes); got != c.want {
			t.Errorf("case %d Divisible(%v) = %v, want %v", i, c.sizes, got, c.want)
		}
	}
}

func TestLowerBound(t *testing.T) {
	lb, err := LowerBound([]float64{5, 5, 1}, 10)
	if err != nil || lb != 2 {
		t.Errorf("lb = %d, %v; want 2", lb, err)
	}
	lb, err = LowerBound(nil, 10)
	if err != nil || lb != 0 {
		t.Errorf("empty lb = %d, %v", lb, err)
	}
	if _, err := LowerBound([]float64{1}, 0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("capacity err = %v", err)
	}
	if _, err := LowerBound([]float64{-2}, 5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("size err = %v", err)
	}
}

// Property: FFD never exceeds capacity in any bin and never uses more than
// the classic 11/9·OPT + 1 bins (checked against the lower bound).
func TestQuickFFDBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		const capacity = 100.0
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Float64()*99
		}
		res, err := FirstFitDecreasing(sizes, capacity)
		if err != nil {
			return false
		}
		for _, bin := range res.Bins {
			var load float64
			for _, idx := range bin {
				load += sizes[idx]
			}
			if load > capacity+1e-6 {
				return false
			}
		}
		lb, err := LowerBound(sizes, capacity)
		if err != nil {
			return false
		}
		return float64(res.NumBins()) <= math.Ceil(11.0/9.0*float64(lb))+1
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: waste equals used capacity minus total item size.
func TestQuickFFDWasteAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		const capacity = 50.0
		sizes := make([]float64, n)
		var total float64
		for i := range sizes {
			sizes[i] = 1 + rng.Float64()*49
			total += sizes[i]
		}
		res, err := FirstFitDecreasing(sizes, capacity)
		if err != nil {
			return false
		}
		want := float64(res.NumBins())*capacity - total
		return math.Abs(res.Waste-want) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Package packing implements First-Fit-Decreasing bin packing. The paper's
// resource-competition game (§VI) assumes data-center capacity can be
// allocated to VMs without waste; it justifies this with the observation
// that when VM sizes are multiples of one another (as in GoGrid's 6
// doubling sizes), FFD packs them optimally with zero fragmentation. This
// package provides the FFD algorithm and the divisibility check backing
// that argument, and is used by the game tests and an ablation bench.
package packing

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sentinel errors.
var (
	// ErrBadParameter flags invalid sizes or capacities.
	ErrBadParameter = errors.New("packing: invalid parameter")
	// ErrItemTooLarge means an item exceeds the bin capacity.
	ErrItemTooLarge = errors.New("packing: item larger than bin")
)

// Result describes a packing: Bins[i] lists the item indices packed into
// bin i.
type Result struct {
	Bins [][]int
	// Waste is the total unused capacity across used bins.
	Waste float64
	// Capacity is the bin capacity used for the packing.
	Capacity float64
}

// NumBins returns the number of bins used.
func (r *Result) NumBins() int { return len(r.Bins) }

// FirstFitDecreasing packs items (sizes > 0) into bins of the given
// capacity using the FFD heuristic: sort descending, place each item into
// the first bin with room, opening a new bin when none fits.
func FirstFitDecreasing(sizes []float64, capacity float64) (*Result, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("capacity %g: %w", capacity, ErrBadParameter)
	}
	for i, s := range sizes {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("size[%d] = %g: %w", i, s, ErrBadParameter)
		}
		if s > capacity {
			return nil, fmt.Errorf("size[%d] = %g > capacity %g: %w", i, s, capacity, ErrItemTooLarge)
		}
	}
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })

	var bins [][]int
	var free []float64
	const eps = 1e-9
	for _, idx := range order {
		s := sizes[idx]
		placed := false
		for b := range bins {
			if free[b]+eps >= s {
				bins[b] = append(bins[b], idx)
				free[b] -= s
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, []int{idx})
			free = append(free, capacity-s)
		}
	}
	var waste float64
	for _, f := range free {
		waste += f
	}
	return &Result{Bins: bins, Waste: waste, Capacity: capacity}, nil
}

// Divisible reports whether the distinct sizes form a divisibility chain:
// sorted ascending, each size divides the next (within tolerance). GoGrid's
// doubling VM sizes satisfy this; it is the condition under which FFD
// wastes nothing on full bins (§VI).
func Divisible(sizes []float64) bool {
	if len(sizes) == 0 {
		return true
	}
	uniq := dedupeSorted(sizes)
	for _, s := range uniq {
		if s <= 0 {
			return false
		}
	}
	for i := 1; i < len(uniq); i++ {
		ratio := uniq[i] / uniq[i-1]
		if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
			return false
		}
	}
	return true
}

// LowerBound returns the trivial lower bound ⌈Σ sizes / capacity⌉ on the
// number of bins any packing needs.
func LowerBound(sizes []float64, capacity float64) (int, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("capacity %g: %w", capacity, ErrBadParameter)
	}
	var total float64
	for i, s := range sizes {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, fmt.Errorf("size[%d] = %g: %w", i, s, ErrBadParameter)
		}
		total += s
	}
	return int(math.Ceil(total/capacity - 1e-9)), nil
}

// GoGridSizes returns the six doubling VM sizes (in abstract capacity
// units) that the paper cites as the GoGrid offering.
func GoGridSizes() []float64 {
	return []float64{1, 2, 4, 8, 16, 32}
}

func dedupeSorted(sizes []float64) []float64 {
	s := append([]float64(nil), sizes...)
	sort.Float64s(s)
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

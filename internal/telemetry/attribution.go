package telemetry

import (
	"sync/atomic"
)

// Metric names for the provenance layer. The cost components export as
// one labeled counter family (dspp_cost_component_total{component=...})
// so the four shares stay mutually comparable in a single query.
const (
	MetricCostComponent       = "dspp_cost_component_total"
	MetricPlacementChurn      = "dspp_placement_churn"
	MetricDaemonPeriodSeconds = "dspp_daemon_period_seconds"
	MetricBudgetUtilization   = "dspp_budget_utilization"
)

// Label values of the dspp_cost_component_total counter family, and the
// JSON keys of the /statusz rollup. The four partition a period's
// attributed cost: components sum to Attribution.Total by construction.
const (
	ComponentResource  = "resource"
	ComponentBandwidth = "bandwidth"
	ComponentReconfig  = "reconfig"
	ComponentShed      = "shed"
)

// ChurnBuckets is the fixed layout of the placement-churn histogram: the
// fraction of served demand that moved DCs between consecutive periods
// (0 = placements held, 1 = everything moved).
var ChurnBuckets = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}

// PeriodSecondsBuckets covers daemon period wall times from sub-ms toy
// instances to multi-second continental coordinations.
var PeriodSecondsBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// BudgetUtilizationBuckets covers wall/budget ratios; the >1 buckets are
// the overrun tail the deadline ladder is meant to keep empty.
var BudgetUtilizationBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.25, 1.5, 2}

// DefaultAttributionDepth is the ring-buffer capacity: the last N
// periods a Hub retains for /statusz.
const DefaultAttributionDepth = 256

// DCAttribution is one data center's share of a period's attributed
// cost, together with the capacity dual price the QP solution put on
// that DC's capacity constraint.
type DCAttribution struct {
	DC    int `json:"dc"`
	Shard int `json:"shard"` // owning shard; -1 = monolithic or shared across shards

	// Resource + Bandwidth partition the period's H_k share at this
	// DC: Resource is the cost of serving each location at its most
	// SLA-efficient feasible DC rate, Bandwidth the premium actually
	// paid for the (location, DC) assignments chosen.
	Resource  float64 `json:"resource"`
	Bandwidth float64 `json:"bandwidth"`
	Reconfig  float64 `json:"reconfig"`

	Servers float64 `json:"servers"` // x summed over locations served here
	Dual    float64 `json:"dual"`    // horizon-summed capacity dual price
	Quota   float64 `json:"quota"`   // capacity the solve actually enforced
	Binding bool    `json:"binding"` // capacity constraint active (dual > tol)
}

// Attribution decomposes one MPC period's realized cost. Resource,
// Bandwidth, Reconfig and Shed always sum to Total: the first three are
// the realized period cost split per component, Shed is the imputed
// cost of demand the degradation ladder shed (zero on clean periods).
type Attribution struct {
	Period int `json:"period"`

	Resource  float64 `json:"resource"`
	Bandwidth float64 `json:"bandwidth"`
	Reconfig  float64 `json:"reconfig"`
	Shed      float64 `json:"shed"`
	Total     float64 `json:"total"`

	Churn      float64 `json:"churn"`                 // fraction of served demand that moved DCs
	ShedDemand float64 `json:"shed_demand,omitempty"` // req/s shed this period
	Mode       string  `json:"mode"`                  // degradation ladder outcome
	WallUS     int64   `json:"wall_us"`               // solve wall time

	DCs []DCAttribution `json:"dcs,omitempty"`
}

// ComponentSum returns Resource+Bandwidth+Reconfig+Shed; the identity
// guard asserts it equals Total within 1e-9 relative.
func (a *Attribution) ComponentSum() float64 {
	return a.Resource + a.Bandwidth + a.Reconfig + a.Shed
}

// Binding returns the DCs whose capacity constraint was active.
func (a *Attribution) Binding() []int {
	var out []int
	for i := range a.DCs {
		if a.DCs[i].Binding {
			out = append(out, a.DCs[i].DC)
		}
	}
	return out
}

// AttributionRing retains the last N Attribution records without locks:
// writers publish immutable records through an atomic slot pointer and
// claim slots with one atomic add, readers snapshot whatever subset is
// currently published. Records must not be mutated after Record.
type AttributionRing struct {
	buf []atomic.Pointer[Attribution]
	seq atomic.Uint64 // number of records ever written
}

// NewAttributionRing returns a ring retaining the last depth records
// (DefaultAttributionDepth when depth <= 0).
func NewAttributionRing(depth int) *AttributionRing {
	if depth <= 0 {
		depth = DefaultAttributionDepth
	}
	return &AttributionRing{buf: make([]atomic.Pointer[Attribution], depth)}
}

// Record publishes a record, evicting the oldest when full. Nil-safe;
// safe for concurrent writers.
func (r *AttributionRing) Record(a *Attribution) {
	if r == nil || a == nil {
		return
	}
	idx := r.seq.Add(1) - 1
	r.buf[idx%uint64(len(r.buf))].Store(a)
}

// Depth returns the ring capacity (0 on nil).
func (r *AttributionRing) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Periods returns how many records were ever written (not how many are
// retained).
func (r *AttributionRing) Periods() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Last returns the most recently published record (nil when empty).
func (r *AttributionRing) Last() *Attribution {
	if r == nil {
		return nil
	}
	n := r.seq.Load()
	if n == 0 {
		return nil
	}
	return r.buf[(n-1)%uint64(len(r.buf))].Load()
}

// Snapshot returns the retained records oldest-first. Under concurrent
// writes a slot can be observed mid-rotation; the published pointers
// themselves are always whole records.
func (r *AttributionRing) Snapshot() []*Attribution {
	if r == nil {
		return nil
	}
	n := r.seq.Load()
	depth := uint64(len(r.buf))
	start := uint64(0)
	if n > depth {
		start = n - depth
	}
	out := make([]*Attribution, 0, n-start)
	for i := start; i < n; i++ {
		if a := r.buf[i%depth].Load(); a != nil {
			out = append(out, a)
		}
	}
	return out
}

// AttributionSink is the pre-resolved provenance surface a control loop
// records into once per period: the ring buffer behind /statusz plus the
// component counters and churn histogram. A nil sink (telemetry
// disabled) swallows everything; nothing here is on the QP solve path.
type AttributionSink struct {
	ring *AttributionRing

	resource  *Counter
	bandwidth *Counter
	reconfig  *Counter
	shed      *Counter
	churn     *Histogram
}

// Record publishes one period's attribution to the ring and the metrics.
func (s *AttributionSink) Record(a *Attribution) {
	if s == nil || a == nil {
		return
	}
	s.ring.Record(a)
	s.resource.Add(a.Resource)
	s.bandwidth.Add(a.Bandwidth)
	s.reconfig.Add(a.Reconfig)
	s.shed.Add(a.Shed)
	s.churn.Observe(a.Churn)
}

// Ring returns the sink's ring buffer (nil on a nil sink).
func (s *AttributionSink) Ring() *AttributionRing {
	if s == nil {
		return nil
	}
	return s.ring
}

// Attribution returns the hub's provenance sink, resolving the ring and
// every metric once and caching the result (nil on a nil hub).
func (h *Hub) Attribution() *AttributionSink {
	if h == nil {
		return nil
	}
	h.attrOnce.Do(func() {
		vec := h.reg.CounterVec(MetricCostComponent, "component")
		h.attr = &AttributionSink{
			ring:      NewAttributionRing(DefaultAttributionDepth),
			resource:  vec.With(ComponentResource),
			bandwidth: vec.With(ComponentBandwidth),
			reconfig:  vec.With(ComponentReconfig),
			shed:      vec.With(ComponentShed),
			churn:     h.reg.Histogram(MetricPlacementChurn, ChurnBuckets),
		}
	})
	return h.attr
}

package telemetry

import (
	"context"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Exactly one of F/S is meaningful, chosen by
// IsStr; numeric attributes stay float64 so JSONL round-trips losslessly
// with strconv 'g'/-1 formatting.
type Attr struct {
	Key   string
	F     float64
	S     string
	IsStr bool
}

// Num returns a numeric attribute.
func Num(key string, v float64) Attr { return Attr{Key: key, F: v} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, S: v, IsStr: true} }

// Span is one timed unit of work in the run → period → qp_solve /
// best_response_round hierarchy. Spans are pooled: after End the struct
// is recycled, so callers must not retain a *Span past End. Child spans
// therefore capture the parent's ID (a plain uint64), never the pointer.
// All methods are nil-safe no-ops.
type Span struct {
	tr     *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  []Attr
}

// Tracer issues spans and streams them as JSONL events on End. A nil
// *Tracer hands out nil spans. The writer is guarded by a mutex; the
// encode path builds each line into a pooled buffer with hand-rolled
// strconv appends (no encoding/json, no reflection).
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	nextID atomic.Uint64
	spans  sync.Pool
	bufs   sync.Pool
	counts *CounterVec // optional: dspp_spans_total{span=...}
	epoch  time.Time   // wall-clock origin for start_us timestamps
}

// NewTracer returns a tracer streaming JSONL span events to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, epoch: time.Now()}
	t.spans.New = func() any { return &Span{} }
	t.bufs.New = func() any { b := make([]byte, 0, 256); return &b }
	return t
}

// setCounts wires the per-span-name counter family (owned by the Hub).
func (t *Tracer) setCounts(v *CounterVec) {
	if t != nil {
		t.counts = v
	}
}

// Start opens a span as a child of parent (0 = root), recording the wall
// clock now. Returns nil when the tracer is nil.
func (t *Tracer) Start(name string, parent uint64, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := t.spans.Get().(*Span)
	sp.tr = t
	sp.name = name
	sp.id = t.nextID.Add(1)
	sp.parent = parent
	sp.start = time.Now()
	sp.attrs = append(sp.attrs[:0], attrs...)
	return sp
}

// ID returns the span's identifier for parenting children (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span: its JSONL event is written and the struct is
// recycled. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	dur := time.Since(s.start)
	t.counts.With(s.name).Inc()
	if t.w != nil {
		t.emit(s, dur)
	}
	s.tr, s.attrs = nil, s.attrs[:0]
	t.spans.Put(s)
}

// emit encodes and writes one span event line.
func (t *Tracer) emit(s *Span, dur time.Duration) {
	bp := t.bufs.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"span":`...)
	b = strconv.AppendQuote(b, s.name)
	b = append(b, `,"id":`...)
	b = strconv.AppendUint(b, s.id, 10)
	b = append(b, `,"parent":`...)
	b = strconv.AppendUint(b, s.parent, 10)
	b = append(b, `,"start_us":`...)
	b = strconv.AppendInt(b, s.start.Sub(t.epoch).Microseconds(), 10)
	b = append(b, `,"dur_us":`...)
	b = strconv.AppendInt(b, dur.Microseconds(), 10)
	if len(s.attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range s.attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, a.Key)
			b = append(b, ':')
			if a.IsStr {
				b = strconv.AppendQuote(b, a.S)
			} else {
				b = strconv.AppendFloat(b, a.F, 'g', -1, 64)
			}
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	t.mu.Lock()
	t.w.Write(b)
	t.mu.Unlock()
	*bp = b
	t.bufs.Put(bp)
}

// spanKey is the context key carrying the current span ID (not the span
// pointer — spans are pooled and may be recycled while a context lives).
type spanKey struct{}

// ContextWithSpan returns ctx annotated with sp as the current span, so
// downstream layers can parent their spans correctly. Nil-safe: a nil
// span leaves ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp.id)
}

// SpanIDFromContext returns the current span ID in ctx (0 when absent),
// for use as the parent of a new span.
func SpanIDFromContext(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(spanKey{}).(uint64); ok {
		return id
	}
	return 0
}

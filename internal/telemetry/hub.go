package telemetry

import (
	"io"
	"sync"
)

// Metric names exported by the pipeline. Keeping them as constants makes
// DESIGN.md §8, the tests, and the instrumentation sites agree by
// construction.
const (
	MetricQPSolves            = "dspp_qp_solves_total"
	MetricQPIterations        = "dspp_qp_iterations_total"
	MetricQPWarmStarts        = "dspp_qp_warm_starts_total"
	MetricQPColdStarts        = "dspp_qp_cold_starts_total"
	MetricQPCorrectorSkips    = "dspp_qp_corrector_skips_total"
	MetricQPFactorizations    = "dspp_qp_factorizations_total"
	MetricQPFactorBumps       = "dspp_qp_factorization_bumps_total"
	MetricQPNumericalFailures = "dspp_qp_numerical_failures_total"
	MetricQPMaxIter           = "dspp_qp_maxiter_total"
	MetricQPFactorReused      = "dspp_factorizations_reused_total"
	MetricQPRankKUpdates      = "dspp_rankk_updates_total"
	MetricQPSolveIterations   = "dspp_qp_solve_iterations"
	MetricQPDeadlineReturns   = "dspp_qp_deadline_returns_total"

	MetricSpans = "dspp_spans_total"

	MetricPeriods         = "dspp_periods_total"
	MetricSLAViolations   = "dspp_sla_violations_total"
	MetricSLAHeadroom     = "dspp_sla_headroom"
	MetricSLAHeadroomMean = "dspp_sla_headroom_mean"
	MetricSLAHeadroomP5   = "dspp_sla_headroom_p05"

	MetricDegradationSteps = "dspp_degradation_steps_total"
	MetricShedDemand       = "dspp_shed_demand_total"

	MetricBudgetOverruns     = "dspp_budget_overruns_total"
	MetricDaemonPeriods      = "dspp_daemon_periods_total"
	MetricDaemonObservations = "dspp_daemon_observations_total"
	MetricDaemonCheckpoints  = "dspp_daemon_checkpoints_total"
	MetricDaemonWatchdog     = "dspp_daemon_watchdog_restarts_total"
	MetricDaemonDemandCorr   = "dspp_daemon_demand_correction"
	MetricDaemonDelayCorr    = "dspp_daemon_delay_correction"

	MetricDecompShards       = "dspp_decomp_shards"
	MetricCoordinationRounds = "dspp_coordination_rounds_total"
	MetricShardSolves        = "dspp_decomp_shard_solves_total"
	MetricShardsSkipped      = "dspp_shards_skipped_total"
	MetricQuotaFastResolves  = "dspp_quota_fast_resolves_total"
	MetricRoundDirtyFraction = "dspp_round_dirty_fraction"

	MetricGameRuns            = "dspp_game_runs_total"
	MetricGameRounds          = "dspp_game_rounds_total"
	MetricGameConverged       = "dspp_game_converged_total"
	MetricGameQuotaRedivision = "dspp_game_quota_redivisions_total"
	MetricGameCostRelDelta    = "dspp_game_cost_rel_delta"
)

// Span names in the run → period → solve hierarchy.
const (
	SpanRun               = "run"
	SpanPeriod            = "period"
	SpanMPCStep           = "mpc_step"
	SpanCoordinate        = "coordinate"
	SpanShardSolve        = "shard_solve"
	SpanQPSolve           = "qp_solve"
	SpanGameRun           = "game_run"
	SpanBestResponse      = "best_response"
	SpanBestResponseRound = "best_response_round"
)

// qpIterBuckets is the fixed bucket layout for per-solve IPM iteration
// counts (roughly Fibonacci: warm solves land in the first few buckets,
// cold solves in the teens, pathologies in the tail).
var qpIterBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 100}

// DirtyFractionBuckets is the fixed bucket layout for the per-round
// dirty-fraction histogram: the share of shards a coordination round
// actually re-solved (1 = every shard, the non-incremental behavior).
var DirtyFractionBuckets = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// costDeltaBuckets covers the best-response per-round relative cost
// movement, which contracts geometrically toward the ε-stability cutoff.
var costDeltaBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// QPHooks is the pre-resolved instrumentation surface handed to the QP
// solver: plain struct fields instead of registry lookups, so the hot
// path does one nil test and a handful of atomic adds. A nil *QPHooks
// (telemetry disabled) costs a single pointer comparison.
type QPHooks struct {
	Solves            *Counter
	Iterations        *Counter
	WarmStarts        *Counter
	ColdStarts        *Counter
	CorrectorSkips    *Counter
	Factorizations    *Counter
	FactorBumps       *Counter
	NumericalFailures *Counter
	MaxIter           *Counter
	FactorReused      *Counter
	RankKUpdates      *Counter
	DeadlineReturns   *Counter
	IterationsHist    *Histogram
	Tracer            *Tracer
}

// Hub bundles a metrics Registry with a span Tracer — the one handle the
// facade, CLIs, and every instrumented layer share. A nil *Hub disables
// telemetry end to end: every accessor returns nil, and every nil metric
// or span swallows its calls.
type Hub struct {
	reg *Registry
	tr  *Tracer

	qpOnce sync.Once
	qp     *QPHooks

	attrOnce sync.Once
	attr     *AttributionSink
}

// Option configures a Hub.
type Option func(*Hub)

// WithTraceWriter streams JSONL span events to w as spans end.
func WithTraceWriter(w io.Writer) Option {
	return func(h *Hub) {
		h.tr = NewTracer(w)
	}
}

// New returns a Hub with a fresh registry. Span counts
// (dspp_spans_total{span=...}) are recorded whether or not a trace
// writer is attached.
func New(opts ...Option) *Hub {
	h := &Hub{reg: NewRegistry()}
	for _, o := range opts {
		o(h)
	}
	if h.tr == nil {
		h.tr = NewTracer(nil)
	}
	h.tr.setCounts(h.reg.CounterVec(MetricSpans, "span"))
	return h
}

// Registry returns the hub's metrics registry (nil on a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Tracer returns the hub's span tracer (nil on a nil hub).
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tr
}

// QPHooks returns the solver instrumentation block, resolving every
// metric once and caching the result (nil on a nil hub).
func (h *Hub) QPHooks() *QPHooks {
	if h == nil {
		return nil
	}
	h.qpOnce.Do(func() {
		h.qp = &QPHooks{
			Solves:            h.reg.Counter(MetricQPSolves),
			Iterations:        h.reg.Counter(MetricQPIterations),
			WarmStarts:        h.reg.Counter(MetricQPWarmStarts),
			ColdStarts:        h.reg.Counter(MetricQPColdStarts),
			CorrectorSkips:    h.reg.Counter(MetricQPCorrectorSkips),
			Factorizations:    h.reg.Counter(MetricQPFactorizations),
			FactorBumps:       h.reg.Counter(MetricQPFactorBumps),
			NumericalFailures: h.reg.Counter(MetricQPNumericalFailures),
			MaxIter:           h.reg.Counter(MetricQPMaxIter),
			FactorReused:      h.reg.Counter(MetricQPFactorReused),
			RankKUpdates:      h.reg.Counter(MetricQPRankKUpdates),
			DeadlineReturns:   h.reg.Counter(MetricQPDeadlineReturns),
			IterationsHist:    h.reg.Histogram(MetricQPSolveIterations, qpIterBuckets),
			Tracer:            h.tr,
		}
	})
	return h.qp
}

// GameCostDeltaHist returns the per-round relative cost-delta histogram
// with its canonical bucket layout (nil on a nil hub).
func (h *Hub) GameCostDeltaHist() *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.Histogram(MetricGameCostRelDelta, costDeltaBuckets)
}

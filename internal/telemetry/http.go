package telemetry

import (
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format (suitable for `curl <addr>/metrics` or a Prometheus scrape).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// expvar can only Publish a name once per process, so the dspp_metrics
// var is registered lazily on first use and reads whichever registry is
// currently installed.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's Snapshot as the expvar variable
// "dspp_metrics" (visible on /debug/vars alongside the runtime's
// memstats). Calling it again swaps the backing registry; it never
// double-publishes.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("dspp_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format (suitable for `curl <addr>/metrics` or a Prometheus scrape).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// StatuszRollup aggregates the retained attribution records: component
// totals, mean churn, and how many periods ran degraded.
type StatuszRollup struct {
	Resource        float64 `json:"resource"`
	Bandwidth       float64 `json:"bandwidth"`
	Reconfig        float64 `json:"reconfig"`
	Shed            float64 `json:"shed"`
	Total           float64 `json:"total"`
	MeanChurn       float64 `json:"mean_churn"`
	ShedDemand      float64 `json:"shed_demand"`
	DegradedPeriods int     `json:"degraded_periods"`
}

// StatuszPage is the /statusz JSON document: the rolled-up view over
// every retained period plus the most recent per-period records
// (oldest-first).
type StatuszPage struct {
	Periods  uint64         `json:"periods"`  // periods ever attributed
	Retained int            `json:"retained"` // periods in the ring
	Depth    int            `json:"depth"`    // ring capacity
	Rollup   StatuszRollup  `json:"rollup"`
	Recent   []*Attribution `json:"recent,omitempty"`
}

// Statusz builds the /statusz document from the hub's attribution ring:
// the rollup covers every retained record, recent holds the newest n
// (n <= 0 = all retained). Nil-safe: a nil hub yields an empty page.
func Statusz(h *Hub, n int) *StatuszPage {
	page := &StatuszPage{}
	ring := h.Attribution().Ring()
	if ring == nil {
		return page
	}
	recs := ring.Snapshot()
	page.Periods = ring.Periods()
	page.Retained = len(recs)
	page.Depth = ring.Depth()
	for _, a := range recs {
		page.Rollup.Resource += a.Resource
		page.Rollup.Bandwidth += a.Bandwidth
		page.Rollup.Reconfig += a.Reconfig
		page.Rollup.Shed += a.Shed
		page.Rollup.Total += a.Total
		page.Rollup.MeanChurn += a.Churn
		page.Rollup.ShedDemand += a.ShedDemand
		if a.Mode != "" && a.Mode != "none" {
			page.Rollup.DegradedPeriods++
		}
	}
	if len(recs) > 0 {
		page.Rollup.MeanChurn /= float64(len(recs))
	}
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	page.Recent = recs
	return page
}

// statuszDefaultRecent bounds the per-period records a plain GET
// returns; ?n= overrides (n=0 streams the whole ring).
const statuszDefaultRecent = 32

// StatuszHandler serves the attribution ring as JSON: rolled-up
// component totals over the retained window plus the newest per-period
// records. ?n=K controls how many records are inlined (0 = all).
func StatuszHandler(h *Hub) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := statuszDefaultRecent
		if raw := req.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Statusz(h, n))
	})
}

// expvar can only Publish a name once per process, so the dspp_metrics
// var is registered lazily on first use and reads whichever registry is
// currently installed.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's Snapshot as the expvar variable
// "dspp_metrics" (visible on /debug/vars alongside the runtime's
// memstats). Calling it again swaps the backing registry; it never
// double-publishes.
func PublishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("dspp_metrics", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// TraceEvent is the decoded form of one JSONL span line. Attribute
// values are float64 for numbers and string otherwise, mirroring the
// Attr union on the emit side.
type TraceEvent struct {
	Span    string         `json:"span"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Num returns the named numeric attribute (0, false when absent or not
// numeric).
func (e *TraceEvent) Num(key string) (float64, bool) {
	v, ok := e.Attrs[key].(float64)
	return v, ok
}

// Str returns the named string attribute ("", false when absent).
func (e *TraceEvent) Str(key string) (string, bool) {
	v, ok := e.Attrs[key].(string)
	return v, ok
}

// ReadTrace decodes a JSONL span stream (as written by a Tracer) in
// emission order. Blank lines are skipped; a malformed line is an error.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var events []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var e TraceEvent
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// SpanStats aggregates one span name across a trace.
type SpanStats struct {
	Count    int
	TotalUS  int64
	AttrSums map[string]float64 // numeric attrs summed over spans
}

// TraceSummary is the replayable aggregate of a JSONL trace: exactly the
// numbers the live registry accumulated, recomputed from the event
// stream (the round-trip tests assert the two agree).
type TraceSummary struct {
	Spans map[string]*SpanStats
}

// Summarize aggregates a decoded trace.
func Summarize(events []TraceEvent) *TraceSummary {
	s := &TraceSummary{Spans: make(map[string]*SpanStats)}
	for i := range events {
		e := &events[i]
		st := s.Spans[e.Span]
		if st == nil {
			st = &SpanStats{AttrSums: make(map[string]float64)}
			s.Spans[e.Span] = st
		}
		st.Count++
		st.TotalUS += e.DurUS
		for k, v := range e.Attrs {
			if f, ok := v.(float64); ok {
				st.AttrSums[k] += f
			}
		}
	}
	return s
}

// AttrSum returns the sum of a numeric attribute over all spans with the
// given name (0 when the span never occurred).
func (s *TraceSummary) AttrSum(span, key string) float64 {
	if st := s.Spans[span]; st != nil {
		return st.AttrSums[key]
	}
	return 0
}

// Count returns how many spans with the given name the trace holds.
func (s *TraceSummary) Count(span string) int {
	if st := s.Spans[span]; st != nil {
		return st.Count
	}
	return 0
}

// Table renders the per-span aggregate as an aligned operator table:
// span name, count, total and mean wall time, then each summed numeric
// attribute.
func (s *TraceSummary) Table() string {
	names := make([]string, 0, len(s.Spans))
	for n := range s.Spans {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %12s %12s  %s\n", "span", "count", "total_ms", "mean_ms", "attr sums")
	for _, n := range names {
		st := s.Spans[n]
		mean := float64(st.TotalUS) / 1000 / float64(st.Count)
		keys := make([]string, 0, len(st.AttrSums))
		for k := range st.AttrSums {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var attrs []string
		for _, k := range keys {
			attrs = append(attrs, fmt.Sprintf("%s=%g", k, st.AttrSums[k]))
		}
		fmt.Fprintf(&b, "%-22s %8d %12.3f %12.3f  %s\n",
			n, st.Count, float64(st.TotalUS)/1000, mean, strings.Join(attrs, " "))
	}
	return b.String()
}

// CriticalStep is one round of a coordination's critical path: the
// shard whose solve finished last and therefore bounded the round's
// wall time (rounds are barriers — the round ends when its slowest
// shard does).
type CriticalStep struct {
	Round  int
	Shard  int
	DurUS  int64 // the critical shard's solve time
	Solves int   // shard solves this round
	Fast   bool  // critical solve served by the rank-k fast path
}

// CoordinationPath is the critical-path decomposition of one coordinate
// span: per round, the dominating shard. CriticalUS sums the per-round
// critical solves — the fraction of DurUS it covers is how much of the
// coordination was spent inside shard QPs (the rest is quota pricing,
// scatter/gather, and scheduling).
type CoordinationPath struct {
	ID         uint64
	DurUS      int64
	Shards     int
	Rounds     int
	Converged  bool
	CriticalUS int64
	Steps      []CriticalStep
}

// CriticalPaths analyzes the span tree of a decoded trace: for every
// coordinate span, its shard_solve children are grouped by round and
// the latest-finishing (longest) solve per round becomes the critical
// step. Coordinations without shard_solve children (monolithic runs,
// pre-provenance traces) yield no entry. Paths come back in trace
// order.
func CriticalPaths(events []TraceEvent) []CoordinationPath {
	children := make(map[uint64][]*TraceEvent)
	for i := range events {
		e := &events[i]
		if e.Span == SpanShardSolve {
			children[e.Parent] = append(children[e.Parent], e)
		}
	}
	var paths []CoordinationPath
	for i := range events {
		e := &events[i]
		if e.Span != SpanCoordinate {
			continue
		}
		kids := children[e.ID]
		if len(kids) == 0 {
			continue
		}
		p := CoordinationPath{ID: e.ID, DurUS: e.DurUS}
		if n, ok := e.Num("shards"); ok {
			p.Shards = int(n)
		}
		if n, ok := e.Num("rounds"); ok {
			p.Rounds = int(n)
		}
		if s, ok := e.Str("converged"); ok {
			p.Converged = s == "true"
		}
		byRound := make(map[int]*CriticalStep)
		maxRound := 0
		for _, k := range kids {
			round := 0
			if n, ok := k.Num("round"); ok {
				round = int(n)
			}
			if round > maxRound {
				maxRound = round
			}
			st := byRound[round]
			if st == nil {
				st = &CriticalStep{Round: round, Shard: -1}
				byRound[round] = st
			}
			st.Solves++
			if k.DurUS >= st.DurUS {
				st.DurUS = k.DurUS
				if n, ok := k.Num("shard"); ok {
					st.Shard = int(n)
				}
				f, _ := k.Num("fast")
				st.Fast = f != 0
			}
		}
		for r := 0; r <= maxRound; r++ {
			if st := byRound[r]; st != nil {
				p.Steps = append(p.Steps, *st)
				p.CriticalUS += st.DurUS
			}
		}
		paths = append(paths, p)
	}
	return paths
}

// FormatCriticalPaths renders the critical-path table for the slowest
// max coordinations (0 = all): one header line per coordination, one
// line per round naming the dominating shard. Empty string when the
// trace holds no analyzable coordination.
func FormatCriticalPaths(paths []CoordinationPath, max int) string {
	if len(paths) == 0 {
		return ""
	}
	show := append([]CoordinationPath(nil), paths...)
	sort.SliceStable(show, func(i, j int) bool { return show[i].DurUS > show[j].DurUS })
	if max > 0 && len(show) > max {
		show = show[:max]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "coordination critical path (dominating shard per round, slowest %d of %d):\n",
		len(show), len(paths))
	for _, p := range show {
		conv := "converged"
		if !p.Converged {
			conv = "not converged"
		}
		share := 0.0
		if p.DurUS > 0 {
			share = 100 * float64(p.CriticalUS) / float64(p.DurUS)
		}
		fmt.Fprintf(&b, "coordinate #%d  total %.3fms  rounds %d  shards %d  %s  critical path %.3fms (%.0f%%)\n",
			p.ID, float64(p.DurUS)/1000, p.Rounds, p.Shards, conv, float64(p.CriticalUS)/1000, share)
		for _, st := range p.Steps {
			fast := ""
			if st.Fast {
				fast = "  rank-k"
			}
			fmt.Fprintf(&b, "  round %-3d shard %-4d %10.3fms  (%d solves)%s\n",
				st.Round, st.Shard, float64(st.DurUS)/1000, st.Solves, fast)
		}
	}
	return b.String()
}

// FormatDegradationSummary renders the one-line operator summary of a
// run's degradation ladder activity. It is THE formatter — sim.Result
// and the trace-summary replay both call it, so the two can only agree
// byte for byte.
func FormatDegradationSummary(policy string, steps, degraded, cold, anytime, soft, hold int, shed float64) string {
	if degraded == 0 {
		return fmt.Sprintf("%s: all %d steps clean", policy, steps)
	}
	return fmt.Sprintf("%s: %d/%d steps degraded (cold-restart=%d anytime=%d soft=%d hold=%d), shed %.1f req/s total",
		policy, degraded, steps, cold, anytime, soft, hold, shed)
}

// DegradationFromTrace recomputes the degradation summary line from a
// trace: the run span carries policy and step count, and each period
// span carries its ladder outcome (mode, shed, cold_restarts). Returns
// ok=false when the trace has no run span.
func DegradationFromTrace(events []TraceEvent) (line string, ok bool) {
	var policy string
	var steps int
	found := false
	var degraded, cold, anytime, soft, hold int
	var shed float64
	for i := range events {
		e := &events[i]
		switch e.Span {
		case SpanRun:
			if p, ok := e.Str("policy"); ok {
				policy = p
			}
			if n, ok := e.Num("steps"); ok {
				steps = int(n)
			}
			found = true
		case SpanPeriod:
			mode, _ := e.Str("mode")
			coldRestarts, _ := e.Num("cold_restarts")
			if mode != "" && mode != "none" || coldRestarts > 0 {
				degraded++
			}
			switch mode {
			case "cold-restart":
				cold++
			case "anytime":
				anytime++
			case "soft":
				soft++
			case "hold":
				hold++
			}
			if v, ok := e.Num("shed"); ok {
				shed += v
			}
		}
	}
	if !found {
		return "", false
	}
	return FormatDegradationSummary(policy, steps, degraded, cold, anytime, soft, hold, shed), true
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestAttributionRing(t *testing.T) {
	r := NewAttributionRing(4)
	if r.Depth() != 4 || r.Periods() != 0 || r.Last() != nil || len(r.Snapshot()) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for p := 1; p <= 6; p++ {
		r.Record(&Attribution{Period: p})
	}
	if r.Periods() != 6 {
		t.Fatalf("periods = %d, want 6", r.Periods())
	}
	if got := r.Last().Period; got != 6 {
		t.Fatalf("last period = %d, want 6", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	// Oldest-first, with the two oldest records evicted.
	for i, a := range snap {
		if a.Period != i+3 {
			t.Fatalf("snapshot[%d].Period = %d, want %d", i, a.Period, i+3)
		}
	}
}

func TestAttributionRingNilSafe(t *testing.T) {
	var r *AttributionRing
	r.Record(&Attribution{})
	if r.Depth() != 0 || r.Periods() != 0 || r.Last() != nil || r.Snapshot() != nil {
		t.Fatal("nil ring methods must no-op")
	}
	NewAttributionRing(2).Record(nil) // nil record ignored
	var s *AttributionSink
	s.Record(&Attribution{})
	if s.Ring() != nil {
		t.Fatal("nil sink ring")
	}
	var h *Hub
	if h.Attribution() != nil {
		t.Fatal("nil hub sink")
	}
}

func TestAttributionRingConcurrent(t *testing.T) {
	r := NewAttributionRing(8)
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(&Attribution{Period: w*per + i, Resource: 1})
				r.Snapshot() // concurrent readers must see whole records
				r.Last()
			}
		}(w)
	}
	wg.Wait()
	if r.Periods() != writers*per {
		t.Fatalf("periods = %d, want %d", r.Periods(), writers*per)
	}
	for _, a := range r.Snapshot() {
		if a.Resource != 1 {
			t.Fatalf("torn record: %+v", a)
		}
	}
}

func TestAttributionSinkMetrics(t *testing.T) {
	hub := New()
	sink := hub.Attribution()
	if sink == nil || hub.Attribution() != sink {
		t.Fatal("sink must resolve once and be stable")
	}
	sink.Record(&Attribution{Period: 1, Resource: 10, Bandwidth: 2, Reconfig: 1, Shed: 0, Total: 13, Churn: 0.25})
	sink.Record(&Attribution{Period: 2, Resource: 5, Bandwidth: 1, Reconfig: 0.5, Shed: 3, Total: 9.5, Churn: 0.75})
	snap := hub.Registry().Snapshot()
	for comp, want := range map[string]float64{
		ComponentResource:  15,
		ComponentBandwidth: 3,
		ComponentReconfig:  1.5,
		ComponentShed:      3,
	} {
		key := fmt.Sprintf("%s{component=%q}", MetricCostComponent, comp)
		if got := snap[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if got := snap[MetricPlacementChurn+"_count"]; got != 2 {
		t.Errorf("churn count = %g, want 2", got)
	}
	if got := snap[MetricPlacementChurn+"_sum"]; got != 1 {
		t.Errorf("churn sum = %g, want 1", got)
	}
	if got := sink.Ring().Periods(); got != 2 {
		t.Errorf("ring periods = %d, want 2", got)
	}
}

func TestStatusz(t *testing.T) {
	if page := Statusz(nil, 0); page.Periods != 0 || page.Recent != nil {
		t.Fatal("nil hub must yield empty page")
	}
	hub := New()
	sink := hub.Attribution()
	sink.Record(&Attribution{Period: 1, Resource: 4, Bandwidth: 1, Reconfig: 1, Total: 6, Churn: 0.2, Mode: "none"})
	sink.Record(&Attribution{Period: 2, Resource: 2, Bandwidth: 1, Reconfig: 0, Shed: 5, Total: 8, Churn: 0.6, ShedDemand: 0.005, Mode: "soft"})
	page := Statusz(hub, 0)
	if page.Periods != 2 || page.Retained != 2 || page.Depth != DefaultAttributionDepth {
		t.Fatalf("page header %+v", page)
	}
	ro := page.Rollup
	if ro.Resource != 6 || ro.Bandwidth != 2 || ro.Reconfig != 1 || ro.Shed != 5 || ro.Total != 14 {
		t.Fatalf("rollup %+v", ro)
	}
	if ro.MeanChurn != 0.4 || ro.ShedDemand != 0.005 || ro.DegradedPeriods != 1 {
		t.Fatalf("rollup tail %+v", ro)
	}
	if len(page.Recent) != 2 || page.Recent[0].Period != 1 {
		t.Fatalf("recent %v", page.Recent)
	}
	// n trims to the newest records but the rollup still covers everything.
	page = Statusz(hub, 1)
	if len(page.Recent) != 1 || page.Recent[0].Period != 2 || page.Rollup.Total != 14 {
		t.Fatalf("trimmed page %+v", page)
	}
}

func TestStatuszHandler(t *testing.T) {
	hub := New()
	for p := 1; p <= 3; p++ {
		hub.Attribution().Record(&Attribution{Period: p, Resource: float64(p), Total: float64(p)})
	}
	srv := httptest.NewServer(StatuszHandler(hub))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var page StatuszPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Periods != 3 || len(page.Recent) != 2 || page.Recent[1].Period != 3 {
		t.Fatalf("page %+v", page)
	}
	if page.Rollup.Resource != 6 {
		t.Fatalf("rollup resource = %g, want 6", page.Rollup.Resource)
	}

	bad, err := http.Get(srv.URL + "?n=zap")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n status %d", bad.StatusCode)
	}
}

func TestCriticalPaths(t *testing.T) {
	attrs := func(kv map[string]any) map[string]any { return kv }
	events := []TraceEvent{
		{Span: SpanCoordinate, ID: 10, DurUS: 1000, Attrs: attrs(map[string]any{
			"shards": 2.0, "rounds": 2.0, "converged": "true"})},
		{Span: SpanShardSolve, ID: 11, Parent: 10, DurUS: 300, Attrs: attrs(map[string]any{
			"shard": 0.0, "round": 0.0, "fast": 0.0})},
		{Span: SpanShardSolve, ID: 12, Parent: 10, DurUS: 500, Attrs: attrs(map[string]any{
			"shard": 1.0, "round": 0.0, "fast": 1.0})},
		{Span: SpanShardSolve, ID: 13, Parent: 10, DurUS: 200, Attrs: attrs(map[string]any{
			"shard": 0.0, "round": 1.0, "fast": 0.0})},
		// A coordinate without shard_solve children (pre-provenance trace)
		// yields no path.
		{Span: SpanCoordinate, ID: 20, DurUS: 50},
	}
	paths := CriticalPaths(events)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if p.ID != 10 || p.Shards != 2 || p.Rounds != 2 || !p.Converged {
		t.Fatalf("path header %+v", p)
	}
	if p.CriticalUS != 700 {
		t.Fatalf("critical us = %d, want 700", p.CriticalUS)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(p.Steps))
	}
	if p.Steps[0].Shard != 1 || !p.Steps[0].Fast || p.Steps[0].Solves != 2 {
		t.Fatalf("round 0 step %+v", p.Steps[0])
	}
	if p.Steps[1].Shard != 0 || p.Steps[1].Fast || p.Steps[1].DurUS != 200 {
		t.Fatalf("round 1 step %+v", p.Steps[1])
	}

	table := FormatCriticalPaths(paths, 5)
	for _, want := range []string{"coordinate #10", "rank-k", "round 0", "round 1", "converged"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if FormatCriticalPaths(nil, 5) != "" {
		t.Error("empty paths must format to empty string")
	}
}

package telemetry

import (
	"bytes"
	"context"
	"expvar"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}

	var g Gauge
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 111.5 {
		t.Fatalf("hist sum = %v, want 111.5", got)
	}
	// Bucket layout: le=1 gets {0.5, 1}, le=5 adds {3}, le=10 adds {7},
	// +Inf adds {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("concurrent counter = %v, want 4000", got)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("steps", "mode")
	v.With("soft").Add(2)
	v.With("hold").Inc()
	v.With("soft").Inc()
	if got := v.With("soft").Value(); got != 3 {
		t.Fatalf("soft = %v, want 3", got)
	}
	if got := v.Sum(); got != 4 {
		t.Fatalf("sum = %v, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	// None of these may panic; all reads return zero values.
	var c *Counter
	c.Inc()
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram not empty")
	}
	var v *CounterVec
	v.With("x").Inc()
	if v.Sum() != 0 {
		t.Fatal("nil vec sum != 0")
	}
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", nil).Observe(1)
	r.CounterVec("d", "l").With("x").Inc()
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 || r.Table() != "" {
		t.Fatal("nil registry not empty")
	}
	var tr *Tracer
	sp := tr.Start("x", 0)
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	sp.SetAttr(Num("k", 1))
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span ID != 0")
	}
	var hub *Hub
	if hub.Registry() != nil || hub.Tracer() != nil || hub.QPHooks() != nil || hub.GameCostDeltaHist() != nil {
		t.Fatal("nil hub leaked a non-nil component")
	}
	if ctx := ContextWithSpan(context.Background(), nil); SpanIDFromContext(ctx) != 0 {
		t.Fatal("nil span polluted context")
	}
}

// TestDisabledZeroAlloc pins the zero-overhead guarantee: with telemetry
// disabled (nil hub, nil hooks, nil metrics), instrumentation sites —
// which guard struct-field access with a hooks != nil test, and call nil
// metrics/spans directly — allocate nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var hub *Hub
	hooks := hub.QPHooks() // nil
	var c *Counter
	var h *Histogram
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if hooks != nil {
			hooks.Solves.Inc()
		}
		c.Inc()
		h.Observe(7)
		sp := hub.Tracer().Start(SpanQPSolve, SpanIDFromContext(ctx))
		sp.SetAttr(Num("iterations", 7))
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %v per op, want 0", allocs)
	}
}

func BenchmarkDisabledOverhead(b *testing.B) {
	var hub *Hub
	hooks := hub.QPHooks() // nil
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if hooks != nil {
			hooks.Solves.Inc()
		}
		c.Add(7)
		h.Observe(7)
		sp := hub.Tracer().Start(SpanQPSolve, 0)
		sp.End()
	}
}

func TestRegistryPrometheusAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("dspp_x_total").Add(3)
	r.Gauge("dspp_g").Set(-1.5)
	r.Histogram("dspp_h", []float64{1, 2}).Observe(1.5)
	r.CounterVec("dspp_v_total", "mode").With("soft").Add(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dspp_x_total counter\ndspp_x_total 3\n",
		"# TYPE dspp_g gauge\ndspp_g -1.5\n",
		"dspp_h_bucket{le=\"1\"} 0\n",
		"dspp_h_bucket{le=\"2\"} 1\n",
		"dspp_h_bucket{le=\"+Inf\"} 1\n",
		"dspp_h_sum 1.5\n",
		"dspp_h_count 1\n",
		"dspp_v_total{mode=\"soft\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	for k, want := range map[string]float64{
		"dspp_x_total":                3,
		"dspp_g":                      -1.5,
		"dspp_h_count":                1,
		"dspp_h_sum":                  1.5,
		"dspp_v_total{mode=\"soft\"}": 2,
	} {
		if got := snap[k]; got != want {
			t.Fatalf("snapshot[%q] = %v, want %v", k, got, want)
		}
	}

	tbl := r.Table()
	if !strings.Contains(tbl, "dspp_x_total") || !strings.Contains(tbl, "count=1 mean=1.5") {
		t.Fatalf("table missing entries:\n%s", tbl)
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hub := New(WithTraceWriter(&buf))
	tr := hub.Tracer()

	root := tr.Start(SpanRun, 0, Str("policy", "mpc-w6"), Num("steps", 2))
	ctx := ContextWithSpan(context.Background(), root)
	for i := 0; i < 2; i++ {
		p := tr.Start(SpanPeriod, SpanIDFromContext(ctx), Num("period", float64(i)))
		q := tr.Start(SpanQPSolve, p.ID())
		q.SetAttr(Num("iterations", float64(3+i)), Str("outcome", "ok"))
		q.End()
		p.SetAttr(Str("mode", "none"), Num("shed", 0), Num("cold_restarts", 0))
		p.End()
	}
	root.End()

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	// Children end before parents, so qp_solve lines precede their period.
	if events[0].Span != SpanQPSolve || events[1].Span != SpanPeriod {
		t.Fatalf("unexpected emission order: %s, %s", events[0].Span, events[1].Span)
	}
	if events[0].Parent != events[1].ID {
		t.Fatalf("qp_solve parent %d != period id %d", events[0].Parent, events[1].ID)
	}
	if events[1].Parent != events[4].ID || events[4].Span != SpanRun {
		t.Fatal("period not parented to run")
	}

	sum := Summarize(events)
	if sum.Count(SpanQPSolve) != 2 || sum.Count(SpanPeriod) != 2 || sum.Count(SpanRun) != 1 {
		t.Fatalf("bad span counts: %+v", sum.Spans)
	}
	if got := sum.AttrSum(SpanQPSolve, "iterations"); got != 7 {
		t.Fatalf("iterations sum = %v, want 7", got)
	}

	// The registry's span counters and the replayed trace must agree.
	snap := hub.Registry().Snapshot()
	for _, name := range []string{SpanRun, SpanPeriod, SpanQPSolve} {
		key := MetricSpans + "{span=\"" + name + "\"}"
		if got, want := snap[key], float64(sum.Count(name)); got != want {
			t.Fatalf("registry %s = %v, trace count = %v", key, got, want)
		}
	}

	if !strings.Contains(sum.Table(), SpanQPSolve) {
		t.Fatalf("summary table missing qp_solve:\n%s", sum.Table())
	}
}

func TestTracerFloatRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	v := 1.0/3.0 + 1e-9
	sp := tr.Start("x", 0, Num("v", v), Num("inf_guard", math.MaxFloat64))
	sp.End()
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := events[0].Num("v"); got != v {
		t.Fatalf("float attr round-trip: got %v, want %v", got, v)
	}
}

func TestFormatDegradationSummary(t *testing.T) {
	if got := FormatDegradationSummary("mpc-w6", 30, 0, 0, 0, 0, 0, 0); got != "mpc-w6: all 30 steps clean" {
		t.Fatalf("clean summary = %q", got)
	}
	got := FormatDegradationSummary("mpc-w6", 30, 5, 1, 1, 2, 1, 12.34)
	want := "mpc-w6: 5/30 steps degraded (cold-restart=1 anytime=1 soft=2 hold=1), shed 12.3 req/s total"
	if got != want {
		t.Fatalf("degraded summary = %q, want %q", got, want)
	}
}

func TestDegradationFromTrace(t *testing.T) {
	var buf bytes.Buffer
	hub := New(WithTraceWriter(&buf))
	tr := hub.Tracer()
	root := tr.Start(SpanRun, 0, Str("policy", "mpc-w4"), Num("steps", 4))
	for i, mode := range []string{"none", "anytime", "soft", "hold"} {
		p := tr.Start(SpanPeriod, root.ID(), Num("period", float64(i)))
		shed := 0.0
		if mode == "soft" {
			shed = 5.5
		}
		p.SetAttr(Str("mode", mode), Num("shed", shed), Num("cold_restarts", 0))
		p.End()
	}
	root.End()

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	line, ok := DegradationFromTrace(events)
	if !ok {
		t.Fatal("no run span found")
	}
	want := FormatDegradationSummary("mpc-w4", 4, 3, 0, 1, 1, 1, 5.5)
	if line != want {
		t.Fatalf("trace summary = %q, want %q", line, want)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("dspp_pub_total").Add(1)
	PublishExpvar(r1)
	r2 := NewRegistry()
	r2.Counter("dspp_pub_total").Add(2)
	PublishExpvar(r2) // must not panic, must swap the backing registry
	v := expvar.Get("dspp_metrics")
	if v == nil {
		t.Fatal("dspp_metrics not published")
	}
	if !strings.Contains(v.String(), "2") {
		t.Fatalf("expvar did not track latest registry: %s", v.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("dspp_hits_total").Add(9)
	h := MetricsHandler(r)
	rec := &recorder{header: make(http.Header)}
	h.ServeHTTP(rec, nil)
	if !strings.Contains(rec.body.String(), "dspp_hits_total 9") {
		t.Fatalf("handler output missing metric:\n%s", rec.body.String())
	}
	if ct := rec.header["Content-Type"]; len(ct) == 0 || !strings.Contains(ct[0], "version=0.0.4") {
		t.Fatalf("bad content type: %v", rec.header)
	}
}

// recorder is a minimal http.ResponseWriter (avoids importing
// net/http/httptest into the dependency-light package tests).
type recorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }
func (r *recorder) WriteHeader(c int)           { r.code = c }

// Package telemetry is the observability layer of the reproduction: a
// dependency-light, allocation-conscious metrics registry (atomic
// counters, gauges and fixed-bucket histograms, exportable as Prometheus
// text and expvar JSON) plus hierarchical span tracing (run → period →
// QP solve / best-response round) with a structured JSONL event stream
// that can be replayed post hoc.
//
// Everything is nil-safe by design: every method on a nil *Registry,
// *Counter, *Gauge, *Histogram, *CounterVec, *Tracer or *Span is a no-op
// (or returns a nil child), so instrumented code pays a pointer test and
// nothing else when telemetry is disabled. The hot-path contract — the
// interior-point solver keeps its exact allocation count with telemetry
// off — is enforced by tests in this package and in internal/qp.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 metric. The zero value is
// ready to use; a nil *Counter ignores all writes.
type Counter struct {
	bits atomic.Uint64
}

// NewCounter returns a standalone counter (one not owned by a Registry),
// for run-local accounting that shares the metric code path.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by d (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(d float64) {
	if c == nil || d <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can move both ways (last-write-wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. The bucket layout is
// chosen at creation and never changes, so Observe is a bounded scan over
// a short slice plus two atomic updates — safe for per-solve hot paths.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Counter
}

// NewHistogram returns a standalone histogram with the given ascending
// upper bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// CounterVec is a family of counters keyed by one label value (e.g. the
// degradation mode). Children are created on first use and live forever.
type CounterVec struct {
	name  string
	label string

	mu   sync.RWMutex
	m    map[string]*Counter
	keys []string // insertion order, for stable export
}

// NewCounterVec returns a standalone labeled counter family.
func NewCounterVec(name, label string) *CounterVec {
	return &CounterVec{name: name, label: label, m: make(map[string]*Counter)}
}

// With returns the child counter for the given label value, creating it
// at zero on first use (so it exports as an explicit 0). Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[value]; c != nil {
		return c
	}
	c = &Counter{}
	v.m[value] = c
	v.keys = append(v.keys, value)
	return c
}

// Sum returns the total across all children.
func (v *CounterVec) Sum() float64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	var s float64
	for _, c := range v.m {
		s += c.Value()
	}
	return s
}

// metric is the registry's tagged union of the four metric kinds.
type metric struct {
	name string
	c    *Counter
	g    *Gauge
	h    *Histogram
	vec  *CounterVec
}

// Registry owns a namespace of metrics. Get-or-create accessors make the
// instrumentation sites declarative: the first caller shapes the metric,
// later callers share it. A nil *Registry hands out nil metrics, which
// swallow all writes — the disabled-telemetry path.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookup(name string) *metric {
	m := r.byName[name]
	if m == nil {
		m = &metric{name: name}
		r.byName[name] = m
		r.ordered = append(r.ordered, m)
	}
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later callers share the original layout).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.h == nil {
		m.h = NewHistogram(bounds)
	}
	return m.h
}

// CounterVec returns the named labeled counter family, creating it on
// first use (later callers share it; the label name is fixed by the
// first call).
func (r *Registry) CounterVec(name, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name)
	if m.vec == nil {
		m.vec = NewCounterVec(name, label)
	}
	return m.vec
}

// snapshot returns the metrics in name order under the lock.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]*metric(nil), r.ordered...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, m := range r.snapshot() {
		switch {
		case m.c != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", m.name, m.name, formatFloat(m.c.Value()))
		case m.g != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatFloat(m.g.Value()))
		case m.vec != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
			m.vec.mu.RLock()
			keys := append([]string(nil), m.vec.keys...)
			m.vec.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", m.name, m.vec.label, k, formatFloat(m.vec.With(k).Value()))
			}
		case m.h != nil:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
			var cum uint64
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(m.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens every metric to name → value: plain "name" for
// counters and gauges, "name{label=\"value\"}" for vec children, and
// "name_count"/"name_sum" for histograms. Used by the expvar export and
// by tests asserting exact registry/trace agreement.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	for _, m := range r.snapshot() {
		switch {
		case m.c != nil:
			out[m.name] = m.c.Value()
		case m.g != nil:
			out[m.name] = m.g.Value()
		case m.vec != nil:
			m.vec.mu.RLock()
			keys := append([]string(nil), m.vec.keys...)
			m.vec.mu.RUnlock()
			for _, k := range keys {
				out[fmt.Sprintf("%s{%s=%q}", m.name, m.vec.label, k)] = m.vec.With(k).Value()
			}
		case m.h != nil:
			out[m.name+"_count"] = float64(m.h.Count())
			out[m.name+"_sum"] = m.h.Sum()
		}
	}
	return out
}

// Table renders the end-of-run operator summary: every metric and its
// value, one aligned line each, sorted by name. Histograms report count
// and mean.
func (r *Registry) Table() string {
	if r == nil {
		return ""
	}
	type row struct{ name, value string }
	var rows []row
	for _, m := range r.snapshot() {
		switch {
		case m.c != nil:
			rows = append(rows, row{m.name, formatFloat(m.c.Value())})
		case m.g != nil:
			rows = append(rows, row{m.name, formatFloat(m.g.Value())})
		case m.vec != nil:
			m.vec.mu.RLock()
			keys := append([]string(nil), m.vec.keys...)
			m.vec.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				rows = append(rows, row{fmt.Sprintf("%s{%s=%q}", m.name, m.vec.label, k),
					formatFloat(m.vec.With(k).Value())})
			}
		case m.h != nil:
			mean := 0.0
			if n := m.h.Count(); n > 0 {
				mean = m.h.Sum() / float64(n)
			}
			rows = append(rows, row{m.name,
				fmt.Sprintf("count=%d mean=%.3g", m.h.Count(), mean)})
		}
	}
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, r.name, r.value)
	}
	return b.String()
}

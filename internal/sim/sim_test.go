package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dspp/internal/baseline"
	"dspp/internal/core"
	"dspp/internal/predict"
	"dspp/internal/qp"
)

func simpleInstance(t *testing.T) *core.Instance {
	t.Helper()
	inst, err := core.NewInstance(core.Config{
		SLA:             [][]float64{{0.01}},
		ReconfigWeights: []float64{1e-3},
		Capacities:      []float64{math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mpcPolicy(t *testing.T, inst *core.Instance, w int) Policy {
	t.Helper()
	ctrl, err := core.NewController(inst, w)
	if err != nil {
		t.Fatal(err)
	}
	return &MPCPolicy{Ctrl: ctrl}
}

func constTrace(n int, vals []float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), vals...)
	}
	return out
}

func TestRunBasicMPC(t *testing.T) {
	inst := simpleInstance(t)
	cfg := Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 3),
		DemandTrace: constTrace(12, []float64{1000}),
		PriceTrace:  constTrace(12, []float64{0.5}),
		Periods:     8,
		Horizon:     3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 8 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if res.SLAViolations != 0 {
		t.Errorf("violations = %d with perfect foresight", res.SLAViolations)
	}
	if !strings.HasPrefix(res.PolicyName, "mpc-w") {
		t.Errorf("policy name = %q", res.PolicyName)
	}
	// Converges to ~10 servers: resource cost ≈ 10·0.5 per period.
	last := res.Steps[7]
	if math.Abs(last.ServersByDC[0]-10) > 0.5 {
		t.Errorf("final servers = %g, want ~10", last.ServersByDC[0])
	}
	if math.Abs(res.TotalCost-(res.TotalResource+res.TotalReconfig)) > 1e-9 {
		t.Error("cost components do not add up")
	}
	series := res.ServersSeries()
	if len(series) != 8 || series[7] != last.ServersByDC[0] {
		t.Errorf("ServersSeries = %v", series)
	}
}

func TestRunTracksDiurnalDemand(t *testing.T) {
	inst := simpleInstance(t)
	// Day profile over 24 periods plus warmup copies.
	trace := make([][]float64, 26)
	for k := range trace {
		h := k % 24
		if h >= 8 && h < 17 {
			trace[k] = []float64{2000}
		} else {
			trace[k] = []float64{200}
		}
	}
	cfg := Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 2),
		DemandTrace: trace,
		PriceTrace:  constTrace(26, []float64{0.1}),
		Periods:     24,
		Horizon:     2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Allocation at 10am (period 10) ≈ 20, at 2am (period 2) ≈ 2.
	day := res.Steps[9].ServersByDC[0]   // period 10
	night := res.Steps[2].ServersByDC[0] // period 3
	if day < 15 || night > 6 {
		t.Errorf("day %g night %g: allocation not tracking demand", day, night)
	}
}

func TestRunImperfectPredictorCausesViolations(t *testing.T) {
	inst := simpleInstance(t)
	// A surprise spike that persistence cannot anticipate.
	trace := constTrace(12, []float64{100})
	trace[5] = []float64{5000}
	cfgPerfect := Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 1),
		DemandTrace: trace,
		PriceTrace:  constTrace(12, []float64{0.1}),
		Periods:     10,
		Horizon:     1,
	}
	perfect, err := Run(cfgPerfect)
	if err != nil {
		t.Fatal(err)
	}
	cfgBlind := cfgPerfect
	cfgBlind.Policy = mpcPolicy(t, inst, 1)
	cfgBlind.DemandPredictor = predict.Persistence{}
	blind, err := Run(cfgBlind)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.SLAViolations != 0 {
		t.Errorf("perfect foresight violated SLA %d times", perfect.SLAViolations)
	}
	if blind.SLAViolations == 0 {
		t.Error("persistence predictor should miss the flash crowd")
	}
}

func TestRunWithBaselinePolicies(t *testing.T) {
	inst, err := core.NewInstance(core.Config{
		SLA:             [][]float64{{0.01, 0.02}, {0.02, 0.01}},
		ReconfigWeights: []float64{1e-3, 1e-3},
		Capacities:      []float64{math.Inf(1), math.Inf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	demand := constTrace(10, []float64{500, 700})
	prices := constTrace(10, []float64{0.3, 0.4})

	greedy, err := baseline.NewGreedyNearest(inst)
	if err != nil {
		t.Fatal(err)
	}
	static, err := baseline.NewStaticAverage(inst, demand, prices, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	myopic, err := baseline.NewMyopic(inst, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := baseline.NewLazyThreshold(inst, 1.2, 2.0, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{greedy, static, myopic, lazy} {
		res, err := Run(Config{
			Instance:    inst,
			Policy:      pol,
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     6,
			Horizon:     1,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.SLAViolations != 0 {
			t.Errorf("%s: %d violations on constant demand", pol.Name(), res.SLAViolations)
		}
		if res.TotalCost <= 0 {
			t.Errorf("%s: cost %g", pol.Name(), res.TotalCost)
		}
	}
}

func TestRunValidation(t *testing.T) {
	inst := simpleInstance(t)
	good := Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 1),
		DemandTrace: constTrace(5, []float64{1}),
		PriceTrace:  constTrace(5, []float64{1}),
		Periods:     3,
		Horizon:     1,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil instance", func(c *Config) { c.Instance = nil }},
		{"nil policy", func(c *Config) { c.Policy = nil }},
		{"zero periods", func(c *Config) { c.Periods = 0 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"short demand", func(c *Config) { c.DemandTrace = c.DemandTrace[:2] }},
		{"short prices", func(c *Config) { c.PriceTrace = c.PriceTrace[:2] }},
		{"demand width", func(c *Config) { c.DemandTrace = constTrace(5, []float64{1, 2}) }},
		{"price width", func(c *Config) { c.PriceTrace = constTrace(5, []float64{1, 2}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestMPCPolicyLabel(t *testing.T) {
	inst := simpleInstance(t)
	ctrl, err := core.NewController(inst, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := &MPCPolicy{Ctrl: ctrl}
	if p.Name() != "mpc-w4" {
		t.Errorf("Name = %q", p.Name())
	}
	p.Label = "custom"
	if p.Name() != "custom" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.State() == nil {
		t.Error("State nil")
	}
}

func TestResultMaxControl(t *testing.T) {
	inst := simpleInstance(t)
	trace := constTrace(8, []float64{100})
	trace[3] = []float64{3000}
	res, err := Run(Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 1),
		DemandTrace: trace,
		PriceTrace:  constTrace(8, []float64{0.1}),
		Periods:     6,
		Horizon:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The spike forces a jump of roughly 29 servers.
	if mc := res.MaxControl(); mc < 20 {
		t.Errorf("MaxControl = %g, want ≥ 20", mc)
	}
}

func TestForecastColdStartFallback(t *testing.T) {
	inst := simpleInstance(t)
	// AR(2) needs 6 observations; the first periods must fall back to
	// persistence instead of erroring.
	cfg := Config{
		Instance:        inst,
		Policy:          mpcPolicy(t, inst, 2),
		DemandTrace:     constTrace(14, []float64{800}),
		PriceTrace:      constTrace(14, []float64{0.2}),
		Periods:         10,
		Horizon:         2,
		DemandPredictor: predict.AR{P: 2},
		PricePredictor:  predict.Persistence{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 10 {
		t.Errorf("steps = %d", len(res.Steps))
	}
}

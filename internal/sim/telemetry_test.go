package sim

import (
	"bytes"
	"testing"

	"dspp/internal/core"
	"dspp/internal/faults"
	"dspp/internal/telemetry"
)

// outageSchedule is the deterministic degradation-producing scenario:
// the single DC goes down for periods 5–7, forcing soft-mode shedding.
func outageSchedule() *faults.Schedule {
	return &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.DCOutage, Target: 0, Start: 5, End: 7},
	}}
}

// telemetryRun executes the outage scenario with the given hub wired
// through both the sim engine and the MPC controller (nil hub = both
// disabled).
func telemetryRun(t *testing.T, hub *telemetry.Hub) *Result {
	t.Helper()
	inst := cappedInstance(t, 10)
	var opts []core.ControllerOption
	if hub != nil {
		opts = append(opts, core.WithTelemetry(hub))
	}
	ctrl, err := core.NewController(inst, 3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultedConfig(t, inst, outageSchedule())
	cfg.Policy = &MPCPolicy{Ctrl: ctrl}
	cfg.Telemetry = hub
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTelemetryRoundTrip is the end-to-end contract of the observability
// pipeline: a traced run's JSONL stream, replayed through the trace
// summarizer, must reproduce the in-memory registry and the Result's
// degradation summary exactly — and attaching telemetry must not change
// the Result at all.
func TestTelemetryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hub := telemetry.New(telemetry.WithTraceWriter(&buf))
	res := telemetryRun(t, hub)
	plain := telemetryRun(t, nil)

	// (a) Telemetry is an observer: the Result is bit-identical to the
	// untraced run.
	if res.DegradedSteps != plain.DegradedSteps ||
		res.ColdRestartSteps != plain.ColdRestartSteps ||
		res.SoftSteps != plain.SoftSteps ||
		res.HoldSteps != plain.HoldSteps ||
		res.ShedDemand != plain.ShedDemand ||
		res.SLAViolations != plain.SLAViolations ||
		res.TotalCost != plain.TotalCost {
		t.Errorf("telemetry perturbed the run:\n  traced: %+v\n  plain:  %+v", res, plain)
	}
	if got, want := res.DegradationSummary(), plain.DegradationSummary(); got != want {
		t.Errorf("summary diverged: %q vs %q", got, want)
	}
	// The scenario must actually exercise the ladder, or the test is
	// vacuous.
	if res.SoftSteps == 0 || res.ShedDemand <= 0 {
		t.Fatalf("outage produced no soft degradation: %+v", res)
	}

	// (b) The JSONL stream replays to the same numbers as the live run.
	events, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	line, ok := telemetry.DegradationFromTrace(events)
	if !ok {
		t.Fatal("trace has no run span")
	}
	if want := res.DegradationSummary(); line != want {
		t.Errorf("trace replay:\n  got  %q\n  want %q", line, want)
	}

	// (c) Trace aggregates agree with the registry, which agrees with the
	// Result.
	sum := telemetry.Summarize(events)
	snap := hub.Registry().Snapshot()
	if got := sum.Count(telemetry.SpanRun); got != 1 {
		t.Errorf("run spans = %d, want 1", got)
	}
	periods := len(res.Steps)
	if got := sum.Count(telemetry.SpanPeriod); got != periods {
		t.Errorf("period spans = %d, want %d", got, periods)
	}
	if got := snap[telemetry.MetricPeriods]; got != float64(periods) {
		t.Errorf("%s = %g, want %d", telemetry.MetricPeriods, got, periods)
	}
	if got := snap[telemetry.MetricDegradationSteps+`{mode="soft"}`]; got != float64(res.SoftSteps) {
		t.Errorf("soft counter = %g, want %d", got, res.SoftSteps)
	}
	if got := snap[telemetry.MetricShedDemand]; got != res.ShedDemand {
		t.Errorf("shed counter = %g, want %g", got, res.ShedDemand)
	}
	if got := sum.AttrSum(telemetry.SpanPeriod, "shed"); got != res.ShedDemand {
		t.Errorf("trace shed sum = %g, want %g", got, res.ShedDemand)
	}
	// Every period ran the controller, so mpc_step spans and QP activity
	// must be present and mutually consistent.
	if got := sum.Count(telemetry.SpanMPCStep); got != periods {
		t.Errorf("mpc_step spans = %d, want %d", got, periods)
	}
	if snap[telemetry.MetricQPSolves] == 0 || snap[telemetry.MetricQPIterations] == 0 {
		t.Errorf("no QP activity recorded: solves=%g iters=%g",
			snap[telemetry.MetricQPSolves], snap[telemetry.MetricQPIterations])
	}
	if got := sum.AttrSum(telemetry.SpanQPSolve, "iterations"); got != snap[telemetry.MetricQPIterations] {
		t.Errorf("trace iteration sum %g != registry %g", got, snap[telemetry.MetricQPIterations])
	}
	// dspp_spans_total{span=...} children must equal the trace counts for
	// every span name that occurred.
	for name, st := range sum.Spans {
		key := telemetry.MetricSpans + `{span="` + name + `"}`
		if got := snap[key]; got != float64(st.Count) {
			t.Errorf("%s = %g, trace says %d", key, got, st.Count)
		}
	}
}

// TestTelemetryCleanRunSummary pins the clean-path round trip too: no
// degradation, and the replayed line still matches.
func TestTelemetryCleanRunSummary(t *testing.T) {
	var buf bytes.Buffer
	hub := telemetry.New(telemetry.WithTraceWriter(&buf))
	inst := cappedInstance(t, 10)
	ctrl, err := core.NewController(inst, 3, core.WithTelemetry(hub))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultedConfig(t, inst, nil)
	cfg.Policy = &MPCPolicy{Ctrl: ctrl}
	cfg.Telemetry = hub
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedSteps != 0 {
		t.Fatalf("clean scenario degraded: %+v", res)
	}
	events, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	line, ok := telemetry.DegradationFromTrace(events)
	if !ok || line != res.DegradationSummary() {
		t.Errorf("clean replay %q (ok=%v), want %q", line, ok, res.DegradationSummary())
	}
}

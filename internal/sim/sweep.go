package sim

import (
	"context"
	"fmt"

	"dspp/internal/parallel"
)

// SweepItem pairs a label with a simulation configuration.
type SweepItem struct {
	Label  string
	Config Config
}

// SweepResult is one completed sweep entry.
type SweepResult struct {
	Label  string
	Result *Result
}

// RunSweep executes independent simulations concurrently with at most
// `workers` goroutines (≤ 0 means runtime.GOMAXPROCS(0)). All simulations
// run to completion; the first error encountered (lowest item index) is
// returned after every worker has exited — no goroutine outlives the
// call, as the distributed-systems house rules demand. Results are
// returned in input order regardless of completion order.
//
// Configurations must not share mutable state: in particular each item
// needs its own Policy instance (policies carry allocation state).
func RunSweep(items []SweepItem, workers int) ([]SweepResult, error) {
	return RunSweepCtx(context.Background(), items, workers)
}

// RunSweepCtx is RunSweep with cooperative cancellation: once the context
// is done no new simulation starts, in-flight ones are cancelled through
// RunCtx, and the lowest-index error (typically ctx.Err wrapped with its
// item label) is returned.
func RunSweepCtx(ctx context.Context, items []SweepItem, workers int) ([]SweepResult, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("no sweep items: %w", ErrBadConfig)
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[i].Config.Policy != nil && items[i].Config.Policy == items[j].Config.Policy {
				return nil, fmt.Errorf("items %d and %d share a policy instance: %w", i, j, ErrBadConfig)
			}
		}
	}

	results := make([]SweepResult, len(items))
	err := parallel.ForEachCtx(ctx, len(items), workers, func(idx int) error {
		res, err := RunCtx(ctx, items[idx].Config)
		if err != nil {
			return fmt.Errorf("sweep %q: %w", items[idx].Label, err)
		}
		results[idx] = SweepResult{Label: items[idx].Label, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

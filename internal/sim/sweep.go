package sim

import (
	"fmt"
	"sync"
)

// SweepItem pairs a label with a simulation configuration.
type SweepItem struct {
	Label  string
	Config Config
}

// SweepResult is one completed sweep entry.
type SweepResult struct {
	Label  string
	Result *Result
}

// RunSweep executes independent simulations concurrently with at most
// `parallel` workers (≤ 0 means one worker per item). All simulations run
// to completion; the first error encountered (lowest item index) is
// returned after every worker has exited — no goroutine outlives the
// call, as the distributed-systems house rules demand. Results are
// returned in input order.
//
// Configurations must not share mutable state: in particular each item
// needs its own Policy instance (policies carry allocation state).
func RunSweep(items []SweepItem, parallel int) ([]SweepResult, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("no sweep items: %w", ErrBadConfig)
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[i].Config.Policy != nil && items[i].Config.Policy == items[j].Config.Policy {
				return nil, fmt.Errorf("items %d and %d share a policy instance: %w", i, j, ErrBadConfig)
			}
		}
	}
	if parallel <= 0 || parallel > len(items) {
		parallel = len(items)
	}

	results := make([]SweepResult, len(items))
	errs := make([]error, len(items))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				res, err := Run(items[idx].Config)
				if err != nil {
					errs[idx] = fmt.Errorf("sweep %q: %w", items[idx].Label, err)
					continue
				}
				results[idx] = SweepResult{Label: items[idx].Label, Result: res}
			}
		}()
	}
	for idx := range items {
		work <- idx
	}
	close(work)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

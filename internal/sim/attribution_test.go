package sim

import (
	"math"
	"testing"

	"dspp/internal/core"
	"dspp/internal/telemetry"
)

func attrRelErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 1 {
		return d / m
	}
	return d
}

// TestRunEmitsAttribution is the engine-level provenance contract: with
// a hub attached, every executed period lands one record in the
// attribution ring whose components sum to the period's reported cost
// (plus the imputed shed cost on degraded periods) within 1e-9
// relative, carrying the controller's dual surface.
func TestRunEmitsAttribution(t *testing.T) {
	hub := telemetry.New()
	inst := cappedInstance(t, 10)
	ctrl, err := core.NewController(inst, 3, core.WithTelemetry(hub))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultedConfig(t, inst, outageSchedule())
	cfg.Policy = &MPCPolicy{Ctrl: ctrl}
	cfg.Telemetry = hub
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedDemand <= 0 {
		t.Fatal("outage scenario must shed, or the shed-attribution arm is vacuous")
	}

	ring := hub.Attribution().Ring()
	if got := ring.Periods(); got != uint64(len(res.Steps)) {
		t.Fatalf("ring has %d records, want %d", got, len(res.Steps))
	}
	recs := ring.Snapshot()
	sawShed := false
	for i, a := range recs {
		step := res.Steps[i]
		if a.Period != step.Period {
			t.Fatalf("record %d period %d, want %d", i, a.Period, step.Period)
		}
		if e := attrRelErr(a.ComponentSum(), a.Total); e > 1e-9 {
			t.Fatalf("period %d: components %g != total %g (rel %g)",
				a.Period, a.ComponentSum(), a.Total, e)
		}
		wantTotal := step.Cost.Total() + step.Degradation.ShedDemand*core.DefaultShedPenalty
		if e := attrRelErr(a.Total, wantTotal); e > 1e-9 {
			t.Fatalf("period %d: total %g, want %g", a.Period, a.Total, wantTotal)
		}
		if a.Mode != step.Degradation.Mode.String() {
			t.Fatalf("period %d: mode %q, want %q", a.Period, a.Mode, step.Degradation.Mode)
		}
		if a.Churn < 0 || a.Churn > 1 || a.WallUS < 0 {
			t.Fatalf("period %d: churn %g wall %d", a.Period, a.Churn, a.WallUS)
		}
		if len(a.DCs) != inst.NumDataCenters() {
			t.Fatalf("period %d: %d dc rows", a.Period, len(a.DCs))
		}
		for _, row := range a.DCs {
			if row.Dual < 0 || math.IsNaN(row.Dual) || math.IsInf(row.Quota, 0) {
				t.Fatalf("period %d dc %d: dual %g quota %g", a.Period, row.DC, row.Dual, row.Quota)
			}
			if row.Binding != (row.Dual > core.BindingTol) {
				t.Fatalf("period %d dc %d: binding flag disagrees with dual %g", a.Period, row.DC, row.Dual)
			}
		}
		if a.Shed > 0 {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("no record carries imputed shed cost")
	}

	// /statusz serves the same numbers the ring holds.
	page := telemetry.Statusz(hub, 0)
	var total float64
	for _, a := range recs {
		total += a.Total
	}
	if e := attrRelErr(page.Rollup.Total, total); e > 1e-9 {
		t.Fatalf("statusz rollup %g, ring sums to %g", page.Rollup.Total, total)
	}
	if page.Rollup.DegradedPeriods != res.DegradedSteps {
		t.Fatalf("statusz degraded %d, result says %d", page.Rollup.DegradedPeriods, res.DegradedSteps)
	}
	if e := attrRelErr(page.Rollup.ShedDemand, res.ShedDemand); e > 1e-9 {
		t.Fatalf("statusz shed demand %g, result %g", page.Rollup.ShedDemand, res.ShedDemand)
	}
}

// TestRunNoTelemetryNoAttribution pins the disabled path: without a hub
// the engine must not build records at all (the 2-allocs/solve guard
// depends on the whole provenance layer staying off this path).
func TestRunNoTelemetryNoAttribution(t *testing.T) {
	inst := cappedInstance(t, 10)
	cfg := faultedConfig(t, inst, nil)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var hub *telemetry.Hub
	if hub.Attribution() != nil {
		t.Fatal("nil hub must yield nil sink")
	}
}

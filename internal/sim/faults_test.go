package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"dspp/internal/core"
	"dspp/internal/faults"
)

// cappedInstance is a single capacitated DC (10 servers, a = 0.01 →
// ceiling 1000 req/s) so capacity faults bite.
func cappedInstance(t *testing.T, servers float64) *core.Instance {
	t.Helper()
	inst, err := core.NewInstance(core.Config{
		SLA:             [][]float64{{0.01}},
		ReconfigWeights: []float64{1e-3},
		Capacities:      []float64{servers},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func faultedConfig(t *testing.T, inst *core.Instance, sched *faults.Schedule) Config {
	t.Helper()
	return Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 3),
		DemandTrace: constTrace(16, []float64{500}),
		PriceTrace:  constTrace(16, []float64{0.1}),
		Periods:     12,
		Horizon:     3,
		Faults:      sched,
	}
}

func TestRunOutageDegradesAndRestores(t *testing.T) {
	inst := cappedInstance(t, 10)
	base := inst.Capacities()
	sched := &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.DCOutage, Target: 0, Start: 5, End: 7},
	}}
	res, err := Run(faultedConfig(t, inst, sched))
	if err != nil {
		t.Fatalf("outage run errored: %v", err)
	}
	if res.DegradedSteps == 0 || res.ShedDemand <= 0 {
		t.Fatalf("degraded=%d shed=%g; the outage must force shedding",
			res.DegradedSteps, res.ShedDemand)
	}
	for _, s := range res.Steps {
		down := s.Period >= 5 && s.Period <= 7
		if down {
			if s.Degradation.Mode != core.DegradeSoft {
				t.Errorf("period %d: mode %v, want soft", s.Period, s.Degradation.Mode)
			}
			if len(s.ActiveFaults) != 1 {
				t.Errorf("period %d: active faults %v", s.Period, s.ActiveFaults)
			}
		} else {
			if s.Degradation.Degraded() {
				t.Errorf("period %d degraded outside the outage: %v", s.Period, s.Degradation)
			}
			if len(s.ActiveFaults) != 0 {
				t.Errorf("period %d: active faults %v, want none", s.Period, s.ActiveFaults)
			}
		}
	}
	// The run must leave the instance's capacities restored.
	got := inst.Capacities()
	for l := range base {
		if got[l] != base[l] {
			t.Errorf("capacity[%d] left at %g, want %g", l, got[l], base[l])
		}
	}
}

func TestRunSurgeAndSpikeRewriteTraces(t *testing.T) {
	inst := simpleInstance(t)
	sched := &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.DemandSurge, Target: 0, Start: 4, End: 4, Factor: 2},
		{Kind: faults.PriceSpike, Target: 0, Start: 6, End: 6, Factor: 5},
	}}
	cfg := faultedConfig(t, inst, sched)
	cfg.Instance = inst
	cfg.Policy = mpcPolicy(t, inst, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Steps {
		wantD, wantP := 500.0, 0.1
		if s.Period == 4 {
			wantD = 1000
		}
		if s.Period == 6 {
			wantP = 0.5
		}
		if s.Demand[0] != wantD {
			t.Errorf("period %d demand %g, want %g", s.Period, s.Demand[0], wantD)
		}
		if math.Abs(s.Prices[0]-wantP) > 1e-12 {
			t.Errorf("period %d price %g, want %g", s.Period, s.Prices[0], wantP)
		}
	}
	// Perfect foresight sees the surge coming: the realized demand and the
	// one-step forecast must agree even in the surged period.
	for _, s := range res.Steps {
		if s.DemandForecast[0] != s.Demand[0] {
			t.Errorf("period %d forecast %g vs realized %g", s.Period, s.DemandForecast[0], s.Demand[0])
		}
	}
	if res.DegradedSteps != 0 {
		t.Errorf("uncapacitated run degraded %d steps", res.DegradedSteps)
	}
}

func TestRunForecastNoiseLeavesTraceClean(t *testing.T) {
	inst := simpleInstance(t)
	sched := &faults.Schedule{
		Faults: []faults.Fault{{Kind: faults.ForecastNoise, Start: 1, End: 12, Factor: 0.5}},
		Seed:   3,
	}
	cfg := faultedConfig(t, inst, sched)
	cfg.Instance = inst
	cfg.Policy = mpcPolicy(t, inst, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := 0
	for _, s := range res.Steps {
		if s.Demand[0] != 500 {
			t.Errorf("period %d realized demand %g mutated by noise", s.Period, s.Demand[0])
		}
		if s.DemandForecast[0] != 500 {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Error("forecast noise never perturbed the forecasts")
	}
}

func TestRunFaultValidation(t *testing.T) {
	inst := simpleInstance(t) // uncapacitated: capacity faults are invalid
	cfg := faultedConfig(t, inst, &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.DCOutage, Target: 0, Start: 1, End: 2},
	}})
	cfg.Instance = inst
	cfg.Policy = mpcPolicy(t, inst, 3)
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("outage on uncapacitated DC: err = %v, want ErrBadConfig", err)
	}
	cfg.Faults = &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.DemandSurge, Target: 7, Start: 1, End: 2, Factor: 2},
	}}
	if _, err := Run(cfg); !errors.Is(err, faults.ErrBadSchedule) {
		t.Errorf("surge out of range: err = %v, want ErrBadSchedule", err)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	inst := simpleInstance(t)
	cfg := faultedConfig(t, inst, nil)
	cfg.Instance = inst
	cfg.Policy = mpcPolicy(t, inst, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run err = %v, want context.Canceled", err)
	}
}

func TestRunNoFaultsIdenticalToNilSchedule(t *testing.T) {
	mk := func(sched *faults.Schedule) *Result {
		inst := cappedInstance(t, 10)
		cfg := faultedConfig(t, inst, sched)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := mk(nil)
	b := mk(&faults.Schedule{}) // empty schedule must be a true no-op
	if a.TotalCost != b.TotalCost || a.TotalReconfig != b.TotalReconfig {
		t.Errorf("empty schedule changed totals: %g/%g vs %g/%g",
			a.TotalCost, a.TotalReconfig, b.TotalCost, b.TotalReconfig)
	}
	for i := range a.Steps {
		if a.Steps[i].ServersByDC[0] != b.Steps[i].ServersByDC[0] {
			t.Errorf("period %d allocation diverged: %g vs %g",
				a.Steps[i].Period, a.Steps[i].ServersByDC[0], b.Steps[i].ServersByDC[0])
		}
	}
}

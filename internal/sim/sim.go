// Package sim is the discrete-time simulation engine that wires together
// the paper's system architecture (Fig. 2): per-location demand arrives at
// request routers, the monitoring module records realized demand and
// prices, the analysis-and-prediction module forecasts the next W periods,
// and the resource controller (an MPC controller or a baseline policy)
// adjusts the per-DC allocation. The engine records the full time series —
// allocations, costs, SLA outcomes — that the experiment harness turns
// into the paper's figures.
package sim

import (
	"errors"
	"fmt"

	"dspp/internal/core"
	"dspp/internal/monitor"
	"dspp/internal/predict"
)

// Sentinel errors.
var (
	// ErrBadConfig flags an invalid simulation configuration.
	ErrBadConfig = errors.New("sim: invalid configuration")
)

// Policy is the control interface the engine drives each period. The MPC
// controller (via MPCPolicy) and every baseline implement it.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// State returns the current allocation.
	State() core.State
	// Step consumes demand and price forecasts for the next W periods
	// (index 0 = next period) and returns the applied control and the
	// new allocation.
	Step(demandForecast, priceForecast [][]float64) (applied core.State, newState core.State, err error)
}

// MPCPolicy adapts core.Controller to the Policy interface.
type MPCPolicy struct {
	Ctrl *core.Controller
	// Label overrides the default name (useful when sweeping horizons).
	Label string
}

// Name implements Policy.
func (m *MPCPolicy) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return fmt.Sprintf("mpc-w%d", m.Ctrl.Horizon())
}

// State implements Policy.
func (m *MPCPolicy) State() core.State { return m.Ctrl.State() }

// Step implements Policy.
func (m *MPCPolicy) Step(demand, prices [][]float64) (core.State, core.State, error) {
	res, err := m.Ctrl.Step(demand, prices)
	if err != nil {
		return nil, nil, err
	}
	return res.Applied, res.NewState, nil
}

// Config describes one simulation run.
type Config struct {
	// Instance is the DSPP instance being controlled.
	Instance *core.Instance
	// Policy makes the per-period decision.
	Policy Policy
	// DemandTrace[k][v] is the realized demand; it must cover at least
	// Periods+1 periods (period 0 is history; control starts shaping
	// period 1).
	DemandTrace [][]float64
	// PriceTrace[k][l] is the realized price; same length rule.
	PriceTrace [][]float64
	// Periods is the number of control periods to execute.
	Periods int
	// Horizon is the forecast window passed to the policy each period.
	Horizon int
	// DemandPredictor forecasts demand per location from realized
	// history; nil means perfect foresight (forecasts read the trace).
	DemandPredictor predict.Predictor
	// PricePredictor is the price analogue of DemandPredictor.
	PricePredictor predict.Predictor
	// SLAJudge, when set, is the instance whose SLA coefficients define
	// a violation. It lets a controller plan with a §IV-B capacity
	// cushion (reservation ratio baked into its own coefficients) while
	// violations are still counted against the true, uncushioned SLA.
	// Nil means judge with Instance itself. Dimensions must match.
	SLAJudge *core.Instance
}

// StepRecord captures one executed control period.
type StepRecord struct {
	// Period is the period index being shaped (1-based: the state after
	// control k serves period k+1).
	Period int
	// Demand and Prices are the realized values of that period.
	Demand []float64
	Prices []float64
	// State is the allocation serving the period; Control is the change
	// applied to reach it.
	State   core.State
	Control core.State
	// ServersByDC aggregates State per data center.
	ServersByDC []float64
	// Cost is the realized cost of the period.
	Cost core.CostBreakdown
	// SLAMet reports whether the realized demand fit the SLA envelope.
	SLAMet bool
	// DemandForecast[0] is what the policy believed the period's demand
	// would be (for forecast-error analysis).
	DemandForecast []float64
}

// Result is a completed run.
type Result struct {
	PolicyName    string
	Steps         []StepRecord
	TotalCost     float64
	TotalResource float64
	TotalReconfig float64
	SLAViolations int
	// ForecastAccuracy scores the demand predictor per location over the
	// run (one-step-ahead forecast vs realized demand): the monitoring
	// signal the analysis module would use to pick horizons (Figs. 9/10).
	ForecastAccuracy []ForecastAccuracy
}

// ForecastAccuracy is the per-location forecast scorecard.
type ForecastAccuracy struct {
	Location            int
	Bias                float64 // mean (forecast − realized)
	MAE                 float64
	RMSE                float64
	P95AbsError         float64
	UnderpredictionRate float64
}

// MaxControl returns the largest per-period total |u| across the run, the
// smoothness metric of Fig. 6.
func (r *Result) MaxControl() float64 {
	var m float64
	for _, s := range r.Steps {
		var step float64
		for _, row := range s.Control {
			for _, u := range row {
				if u < 0 {
					step -= u
				} else {
					step += u
				}
			}
		}
		if step > m {
			m = step
		}
	}
	return m
}

// ServersSeries returns the per-period total server count (Fig. 4's
// y-axis).
func (r *Result) ServersSeries() []float64 {
	out := make([]float64, len(r.Steps))
	for i, s := range r.Steps {
		var t float64
		for _, x := range s.ServersByDC {
			t += x
		}
		out[i] = t
	}
	return out
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	inst := cfg.Instance
	judge := cfg.SLAJudge
	if judge == nil {
		judge = inst
	}
	v := inst.NumLocations()
	l := inst.NumDataCenters()
	res := &Result{PolicyName: cfg.Policy.Name()}
	trackers := make([]*monitor.ForecastTracker, v)
	for i := range trackers {
		tr, err := monitor.NewForecastTracker()
		if err != nil {
			return nil, err
		}
		trackers[i] = tr
	}

	for k := 0; k < cfg.Periods; k++ {
		demandFC, err := forecastMatrix(cfg.DemandTrace, k, cfg.Horizon, v, cfg.DemandPredictor)
		if err != nil {
			return nil, fmt.Errorf("period %d demand forecast: %w", k, err)
		}
		priceFC, err := forecastMatrix(cfg.PriceTrace, k, cfg.Horizon, l, cfg.PricePredictor)
		if err != nil {
			return nil, fmt.Errorf("period %d price forecast: %w", k, err)
		}
		applied, state, err := cfg.Policy.Step(demandFC, priceFC)
		if err != nil {
			return nil, fmt.Errorf("period %d policy step: %w", k, err)
		}
		realD := cfg.DemandTrace[k+1]
		realP := cfg.PriceTrace[k+1]
		cost, err := inst.PeriodCost(state, applied, realP)
		if err != nil {
			return nil, fmt.Errorf("period %d cost: %w", k, err)
		}
		slaOK := true
		slack, err := judge.DemandSlack(state, realD)
		if err != nil {
			return nil, fmt.Errorf("period %d sla: %w", k, err)
		}
		for _, s := range slack {
			if s < -1e-6 {
				slaOK = false
				break
			}
		}
		if !slaOK {
			res.SLAViolations++
		}
		for vi := 0; vi < v; vi++ {
			trackers[vi].Observe(demandFC[0][vi], realD[vi])
		}
		res.TotalResource += cost.Resource
		res.TotalReconfig += cost.Reconfig
		res.TotalCost += cost.Total()
		res.Steps = append(res.Steps, StepRecord{
			Period:         k + 1,
			Demand:         append([]float64(nil), realD...),
			Prices:         append([]float64(nil), realP...),
			State:          state.Clone(),
			Control:        applied.Clone(),
			ServersByDC:    state.TotalByDC(),
			Cost:           cost,
			SLAMet:         slaOK,
			DemandForecast: append([]float64(nil), demandFC[0]...),
		})
	}
	for vi, tr := range trackers {
		res.ForecastAccuracy = append(res.ForecastAccuracy, ForecastAccuracy{
			Location:            vi,
			Bias:                tr.Bias(),
			MAE:                 tr.MAE(),
			RMSE:                tr.RMSE(),
			P95AbsError:         tr.P95AbsError(),
			UnderpredictionRate: tr.UnderpredictionRate(),
		})
	}
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.Instance == nil {
		return fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if cfg.Policy == nil {
		return fmt.Errorf("nil policy: %w", ErrBadConfig)
	}
	if cfg.Periods < 1 {
		return fmt.Errorf("periods %d: %w", cfg.Periods, ErrBadConfig)
	}
	if cfg.Horizon < 1 {
		return fmt.Errorf("horizon %d: %w", cfg.Horizon, ErrBadConfig)
	}
	if len(cfg.DemandTrace) < cfg.Periods+1 {
		return fmt.Errorf("demand trace %d < %d: %w", len(cfg.DemandTrace), cfg.Periods+1, ErrBadConfig)
	}
	if len(cfg.PriceTrace) < cfg.Periods+1 {
		return fmt.Errorf("price trace %d < %d: %w", len(cfg.PriceTrace), cfg.Periods+1, ErrBadConfig)
	}
	v := cfg.Instance.NumLocations()
	for k, row := range cfg.DemandTrace {
		if len(row) != v {
			return fmt.Errorf("demand[%d] width %d, want %d: %w", k, len(row), v, ErrBadConfig)
		}
	}
	l := cfg.Instance.NumDataCenters()
	for k, row := range cfg.PriceTrace {
		if len(row) != l {
			return fmt.Errorf("prices[%d] width %d, want %d: %w", k, len(row), l, ErrBadConfig)
		}
	}
	if cfg.SLAJudge != nil &&
		(cfg.SLAJudge.NumDataCenters() != l || cfg.SLAJudge.NumLocations() != v) {
		return fmt.Errorf("SLA judge is %dx%d, instance %dx%d: %w",
			cfg.SLAJudge.NumDataCenters(), cfg.SLAJudge.NumLocations(), l, v, ErrBadConfig)
	}
	return nil
}

// forecastMatrix produces the W×width forecast for periods k+1..k+W.
// With a nil predictor it reads the true trace (clamping at the end);
// otherwise it forecasts each column from the realized history [0..k].
func forecastMatrix(trace [][]float64, k, w, width int, p predict.Predictor) ([][]float64, error) {
	out := make([][]float64, w)
	if p == nil {
		for t := 0; t < w; t++ {
			idx := k + 1 + t
			if idx >= len(trace) {
				idx = len(trace) - 1
			}
			out[t] = append([]float64(nil), trace[idx]...)
		}
		return out, nil
	}
	for t := 0; t < w; t++ {
		out[t] = make([]float64, width)
	}
	history := make([]float64, k+1)
	for col := 0; col < width; col++ {
		for i := 0; i <= k; i++ {
			history[i] = trace[i][col]
		}
		fc, err := p.Forecast(history, w)
		if err != nil {
			if errors.Is(err, predict.ErrInsufficientHistory) {
				// Cold start: fall back to persistence of the last value.
				for t := 0; t < w; t++ {
					out[t][col] = history[k]
				}
				continue
			}
			return nil, err
		}
		for t := 0; t < w; t++ {
			out[t][col] = fc[t]
		}
	}
	return out, nil
}

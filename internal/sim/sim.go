// Package sim is the discrete-time simulation engine that wires together
// the paper's system architecture (Fig. 2): per-location demand arrives at
// request routers, the monitoring module records realized demand and
// prices, the analysis-and-prediction module forecasts the next W periods,
// and the resource controller (an MPC controller or a baseline policy)
// adjusts the per-DC allocation. The engine records the full time series —
// allocations, costs, SLA outcomes — that the experiment harness turns
// into the paper's figures.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"dspp/internal/core"
	"dspp/internal/faults"
	"dspp/internal/monitor"
	"dspp/internal/predict"
	"dspp/internal/telemetry"
)

// Sentinel errors.
var (
	// ErrBadConfig flags an invalid simulation configuration.
	ErrBadConfig = errors.New("sim: invalid configuration")
)

// Policy is the control interface the engine drives each period. The MPC
// controller (via MPCPolicy) and every baseline implement it.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// State returns the current allocation.
	State() core.State
	// Step consumes demand and price forecasts for the next W periods
	// (index 0 = next period) and returns the applied control and the
	// new allocation.
	Step(demandForecast, priceForecast [][]float64) (applied core.State, newState core.State, err error)
}

// CtxPolicy is optionally implemented by policies that support cooperative
// cancellation; the engine prefers StepCtx over Step when it is available.
type CtxPolicy interface {
	Policy
	StepCtx(ctx context.Context, demandForecast, priceForecast [][]float64) (applied core.State, newState core.State, err error)
}

// DegradationReporter is optionally implemented by policies that can say
// how their last step was produced (clean solve vs a degradation-ladder
// rung). The engine records the report on each StepRecord.
type DegradationReporter interface {
	LastDegradation() core.Degradation
}

// Staller is optionally implemented by policies that can inject artificial
// solver latency. When the fault schedule carries stall faults, the engine
// calls SetStall before every step with that period's scheduled delay
// (zero when none is active), so the stall consumes the policy's own
// per-step budget exactly like a slow solve would.
type Staller interface {
	SetStall(d time.Duration)
}

// MPCPolicy adapts core.Controller to the Policy interface.
type MPCPolicy struct {
	Ctrl *core.Controller
	// Label overrides the default name (useful when sweeping horizons).
	Label string

	lastDeg core.Degradation
}

// Name implements Policy.
func (m *MPCPolicy) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return fmt.Sprintf("mpc-w%d", m.Ctrl.Horizon())
}

// State implements Policy.
func (m *MPCPolicy) State() core.State { return m.Ctrl.State() }

// Step implements Policy.
func (m *MPCPolicy) Step(demand, prices [][]float64) (core.State, core.State, error) {
	return m.StepCtx(context.Background(), demand, prices)
}

// StepCtx implements CtxPolicy.
func (m *MPCPolicy) StepCtx(ctx context.Context, demand, prices [][]float64) (core.State, core.State, error) {
	res, err := m.Ctrl.StepCtx(ctx, demand, prices)
	if err != nil {
		return nil, nil, err
	}
	m.lastDeg = res.Degradation
	return res.Applied, res.NewState, nil
}

// LastDegradation implements DegradationReporter.
func (m *MPCPolicy) LastDegradation() core.Degradation { return m.lastDeg }

// SetStall implements Staller by forwarding to the controller.
func (m *MPCPolicy) SetStall(d time.Duration) { m.Ctrl.SetStall(d) }

// LastExplain implements core.Explainer by forwarding to the controller,
// so attribution records carry the dual-price surface of the plan that
// produced each period.
func (m *MPCPolicy) LastExplain() core.Explain { return m.Ctrl.LastExplain() }

// Config describes one simulation run.
type Config struct {
	// Instance is the DSPP instance being controlled.
	Instance *core.Instance
	// Policy makes the per-period decision.
	Policy Policy
	// DemandTrace[k][v] is the realized demand; it must cover at least
	// Periods+1 periods (period 0 is history; control starts shaping
	// period 1).
	DemandTrace [][]float64
	// PriceTrace[k][l] is the realized price; same length rule.
	PriceTrace [][]float64
	// Periods is the number of control periods to execute.
	Periods int
	// Horizon is the forecast window passed to the policy each period.
	Horizon int
	// DemandPredictor forecasts demand per location from realized
	// history; nil means perfect foresight (forecasts read the trace).
	DemandPredictor predict.Predictor
	// PricePredictor is the price analogue of DemandPredictor.
	PricePredictor predict.Predictor
	// SLAJudge, when set, is the instance whose SLA coefficients define
	// a violation. It lets a controller plan with a §IV-B capacity
	// cushion (reservation ratio baked into its own coefficients) while
	// violations are still counted against the true, uncushioned SLA.
	// Nil means judge with Instance itself. Dimensions must match.
	SLAJudge *core.Instance
	// Faults, when non-nil, is the fault schedule applied to the run:
	// demand surges and price spikes rewrite the traces (so both realized
	// values and forecasts see them, like real-world shocks would), DC
	// outages and capacity shocks retarget the instance's capacities per
	// period (restored when the run ends), and forecast noise corrupts
	// the demand forecast handed to the policy without touching the
	// realized trace. Fault windows are in the 1-based period index that
	// StepRecord.Period reports.
	Faults *faults.Schedule
	// Budget, when positive, is the wall-clock allowance each control
	// period is expected to honor. The policy enforces its own deadline
	// (e.g. core.WithBudget); the engine independently times every step
	// end to end — stall included — and counts periods slower than
	// Budget+BudgetGrace as overruns, so the report catches a ladder that
	// blows its budget even when the solver believes it met the deadline.
	Budget time.Duration
	// Telemetry, when non-nil, receives the run's metrics and spans: a
	// run span wrapping one period span per control step (parenting the
	// controller's mpc_step/qp_solve spans via the context), period/SLA/
	// degradation counters, and SLA-headroom gauges fed by the monitor
	// estimators. Nil disables telemetry; the run's own degradation
	// accounting still flows through (unregistered) telemetry counters,
	// so Result numbers are identical either way.
	Telemetry *telemetry.Hub
}

// StepRecord captures one executed control period.
type StepRecord struct {
	// Period is the period index being shaped (1-based: the state after
	// control k serves period k+1).
	Period int
	// Demand and Prices are the realized values of that period.
	Demand []float64
	Prices []float64
	// State is the allocation serving the period; Control is the change
	// applied to reach it.
	State   core.State
	Control core.State
	// ServersByDC aggregates State per data center.
	ServersByDC []float64
	// Cost is the realized cost of the period.
	Cost core.CostBreakdown
	// SLAMet reports whether the realized demand fit the SLA envelope.
	SLAMet bool
	// DemandForecast[0] is what the policy believed the period's demand
	// would be (for forecast-error analysis).
	DemandForecast []float64
	// Degradation reports how the policy produced this step (always the
	// zero value for policies that don't implement DegradationReporter).
	Degradation core.Degradation
	// ActiveFaults lists the scheduled faults in effect this period.
	ActiveFaults []faults.Fault
	// Wall is the policy's wall-clock time for the step (the quantity
	// compared against Config.Budget when counting overruns).
	Wall time.Duration
}

// Result is a completed run.
type Result struct {
	PolicyName    string
	Steps         []StepRecord
	TotalCost     float64
	TotalResource float64
	TotalReconfig float64
	SLAViolations int
	// ForecastAccuracy scores the demand predictor per location over the
	// run (one-step-ahead forecast vs realized demand): the monitoring
	// signal the analysis module would use to pick horizons (Figs. 9/10).
	ForecastAccuracy []ForecastAccuracy
	// DegradedSteps counts the periods whose plan came from a degradation
	// rung (or needed a cold restart); ShedDemand is the total demand shed
	// across the run by soft-mode steps. Both are read back from the
	// telemetry counters at the end of the run (as per-run deltas, so a
	// shared hub across runs stays cumulative while each Result stays
	// self-contained), as are the per-rung counts below.
	DegradedSteps int
	ShedDemand    float64
	// ColdRestartSteps/AnytimeSteps/SoftSteps/HoldSteps/MonolithicSteps
	// split DegradedSteps by ladder rung — the
	// dspp_degradation_steps_total{mode=...} deltas. AnytimeSteps counts
	// periods served by a deadline-truncated best iterate; MonolithicSteps
	// counts periods where a decomposed policy abandoned coordination
	// and fell back to one full-instance QP.
	ColdRestartSteps int
	AnytimeSteps     int
	SoftSteps        int
	HoldSteps        int
	MonolithicSteps  int
	// BudgetOverruns counts periods whose end-to-end wall time exceeded
	// Config.Budget+BudgetGrace (0 when no budget was configured);
	// MaxStepWall is the slowest period observed.
	BudgetOverruns int
	MaxStepWall    time.Duration
}

// BudgetGrace is the measurement slack added on top of Config.Budget
// before a period counts as an overrun: the ladder's hold rung runs after
// the deadline fires, so a budgeted step legitimately finishes a hair
// late, never unboundedly late.
const BudgetGrace = 5 * time.Millisecond

// DegradationSummary renders a one-line robustness report for the run.
// It is a pure view over the telemetry-counter deltas captured at the
// end of the run; replaying the run's JSONL trace through
// telemetry.DegradationFromTrace reproduces it byte for byte.
func (r *Result) DegradationSummary() string {
	return telemetry.FormatDegradationSummary(r.PolicyName, len(r.Steps),
		r.DegradedSteps, r.ColdRestartSteps, r.AnytimeSteps, r.SoftSteps, r.HoldSteps, r.ShedDemand)
}

// ForecastAccuracy is the per-location forecast scorecard.
type ForecastAccuracy struct {
	Location            int
	Bias                float64 // mean (forecast − realized)
	MAE                 float64
	RMSE                float64
	P95AbsError         float64
	UnderpredictionRate float64
}

// MaxControl returns the largest per-period total |u| across the run, the
// smoothness metric of Fig. 6.
func (r *Result) MaxControl() float64 {
	var m float64
	for _, s := range r.Steps {
		var step float64
		for _, row := range s.Control {
			for _, u := range row {
				if u < 0 {
					step -= u
				} else {
					step += u
				}
			}
		}
		if step > m {
			m = step
		}
	}
	return m
}

// ServersSeries returns the per-period total server count (Fig. 4's
// y-axis).
func (r *Result) ServersSeries() []float64 {
	out := make([]float64, len(r.Steps))
	for i, s := range r.Steps {
		var t float64
		for _, x := range s.ServersByDC {
			t += x
		}
		out[i] = t
	}
	return out
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation: the context is checked at
// the top of every control period and passed through to the policy when it
// implements CtxPolicy, so a deadline bounds the slowest solve rather than
// only the gaps between periods.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	inst := cfg.Instance
	judge := cfg.SLAJudge
	if judge == nil {
		judge = inst
	}
	v := inst.NumLocations()
	l := inst.NumDataCenters()

	// Fault injection: surges and spikes rewrite the traces up front
	// (period index == trace row index), capacity faults retarget the
	// instance per period and are undone before returning.
	sched := cfg.Faults
	demandTrace, priceTrace := cfg.DemandTrace, cfg.PriceTrace
	var baseCaps, liveCaps []float64
	if !sched.Empty() {
		demandTrace = faultTrace(demandTrace, sched.Demand)
		priceTrace = faultTrace(priceTrace, sched.Prices)
		baseCaps = inst.Capacities()
		liveCaps = baseCaps
		defer func() {
			if &liveCaps[0] != &baseCaps[0] {
				inst.SetCapacities(baseCaps)
			}
		}()
	}

	ctxPolicy, _ := cfg.Policy.(CtxPolicy)
	degrader, _ := cfg.Policy.(DegradationReporter)
	staller, _ := cfg.Policy.(Staller)
	explainer, _ := cfg.Policy.(core.Explainer)
	res := &Result{PolicyName: cfg.Policy.Name()}

	// Degradation/SLA accounting runs through telemetry counters whether
	// or not a hub is attached: with one, the counters are the hub's
	// registered metrics (live on /metrics, cumulative across runs) and
	// the Result captures this run's deltas; without one they are
	// throwaway standalone counters starting at zero. Either way there is
	// exactly one accounting path.
	hub := cfg.Telemetry
	var mPeriods, mViol, mShed, mOver *telemetry.Counter
	var mDeg *telemetry.CounterVec
	if reg := hub.Registry(); reg != nil {
		mPeriods = reg.Counter(telemetry.MetricPeriods)
		mViol = reg.Counter(telemetry.MetricSLAViolations)
		mShed = reg.Counter(telemetry.MetricShedDemand)
		mOver = reg.Counter(telemetry.MetricBudgetOverruns)
		mDeg = reg.CounterVec(telemetry.MetricDegradationSteps, "mode")
	} else {
		mPeriods = telemetry.NewCounter()
		mViol = telemetry.NewCounter()
		mShed = telemetry.NewCounter()
		mOver = telemetry.NewCounter()
		mDeg = telemetry.NewCounterVec(telemetry.MetricDegradationSteps, "mode")
	}
	modeLabels := []string{
		core.DegradeColdRestart.String(), core.DegradeAnytime.String(),
		core.DegradeSoft.String(), core.DegradeHold.String(),
		core.DegradeMonolithic.String(), core.DegradeNone.String(),
	}
	baseViol := mViol.Value()
	baseShed := mShed.Value()
	baseOver := mOver.Value()
	baseMode := make(map[string]float64, len(modeLabels))
	for _, m := range modeLabels {
		baseMode[m] = mDeg.With(m).Value()
	}

	// SLA headroom per period (the min demand slack under the judging
	// SLA) feeds the monitor estimators; gauges expose the latest value,
	// the running mean, and the streaming 5th percentile.
	var headroomGauge, headroomMean, headroomP5 *telemetry.Gauge
	var headroomQ *monitor.P2Quantile
	var headroomW monitor.Welford
	if reg := hub.Registry(); reg != nil {
		headroomGauge = reg.Gauge(telemetry.MetricSLAHeadroom)
		headroomMean = reg.Gauge(telemetry.MetricSLAHeadroomMean)
		headroomP5 = reg.Gauge(telemetry.MetricSLAHeadroomP5)
		var err error
		if headroomQ, err = monitor.NewP2Quantile(0.05); err != nil {
			return nil, err
		}
	}

	// The provenance sink decomposes each period's realized cost into the
	// ring buffer behind /statusz and the component counters. prevState
	// anchors the churn metric: how much served demand moved DCs between
	// consecutive periods.
	sink := hub.Attribution()
	prevState := cfg.Policy.State().Clone()

	tr := hub.Tracer()
	runSpan := tr.Start(telemetry.SpanRun, telemetry.SpanIDFromContext(ctx),
		telemetry.Str("policy", res.PolicyName))
	ctx = telemetry.ContextWithSpan(ctx, runSpan)
	defer func() {
		runSpan.SetAttr(telemetry.Num("steps", float64(len(res.Steps))))
		runSpan.End()
	}()

	trackers := make([]*monitor.ForecastTracker, v)
	for i := range trackers {
		tr, err := monitor.NewForecastTracker()
		if err != nil {
			return nil, err
		}
		trackers[i] = tr
	}

	for k := 0; k < cfg.Periods; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("period %d: %w", k, err)
		}
		pSpan := tr.Start(telemetry.SpanPeriod, runSpan.ID(),
			telemetry.Num("period", float64(k+1)))
		stepCtx := telemetry.ContextWithSpan(ctx, pSpan)
		// perr closes the period span with an error outcome before the
		// run aborts, so a failed period still appears in the trace.
		perr := func(err error) error {
			pSpan.SetAttr(telemetry.Str("outcome", "error"))
			pSpan.End()
			return err
		}
		if baseCaps != nil {
			caps := sched.Capacities(k+1, baseCaps)
			if &caps[0] != &liveCaps[0] {
				if err := inst.SetCapacities(caps); err != nil {
					return nil, perr(fmt.Errorf("period %d fault capacities: %w", k, err))
				}
				liveCaps = caps
			}
		}
		demandFC, err := forecastMatrix(demandTrace, k, cfg.Horizon, v, cfg.DemandPredictor)
		if err != nil {
			return nil, perr(fmt.Errorf("period %d demand forecast: %w", k, err))
		}
		priceFC, err := forecastMatrix(priceTrace, k, cfg.Horizon, l, cfg.PricePredictor)
		if err != nil {
			return nil, perr(fmt.Errorf("period %d price forecast: %w", k, err))
		}
		sched.PerturbForecast(k+1, demandFC)
		if staller != nil {
			staller.SetStall(sched.StallDelay(k + 1))
		}
		var applied, state core.State
		stepStart := time.Now()
		if ctxPolicy != nil {
			applied, state, err = ctxPolicy.StepCtx(stepCtx, demandFC, priceFC)
		} else {
			applied, state, err = cfg.Policy.Step(demandFC, priceFC)
		}
		stepWall := time.Since(stepStart)
		if err != nil {
			return nil, perr(fmt.Errorf("period %d policy step: %w", k, err))
		}
		if stepWall > res.MaxStepWall {
			res.MaxStepWall = stepWall
		}
		if cfg.Budget > 0 && stepWall > cfg.Budget+BudgetGrace {
			mOver.Inc()
		}
		realD := demandTrace[k+1]
		realP := priceTrace[k+1]
		cost, err := inst.PeriodCost(state, applied, realP)
		if err != nil {
			return nil, perr(fmt.Errorf("period %d cost: %w", k, err))
		}
		slack, err := judge.DemandSlack(state, realD)
		if err != nil {
			return nil, perr(fmt.Errorf("period %d sla: %w", k, err))
		}
		// The full scan (no early break) yields the period's SLA headroom
		// — the minimum slack — alongside the violation verdict.
		minSlack := math.Inf(1)
		for _, s := range slack {
			if s < minSlack {
				minSlack = s
			}
		}
		slaOK := !(minSlack < -1e-6)
		if !slaOK {
			mViol.Inc()
		}
		if headroomQ != nil && !math.IsInf(minSlack, 1) {
			headroomQ.Add(minSlack)
			headroomW.Add(minSlack)
			headroomGauge.Set(minSlack)
			headroomMean.Set(headroomW.Mean())
			headroomP5.Set(headroomQ.Value())
		}
		for vi := 0; vi < v; vi++ {
			trackers[vi].Observe(demandFC[0][vi], realD[vi])
		}
		res.TotalResource += cost.Resource
		res.TotalReconfig += cost.Reconfig
		res.TotalCost += cost.Total()
		rec := StepRecord{
			Period:         k + 1,
			Demand:         append([]float64(nil), realD...),
			Prices:         append([]float64(nil), realP...),
			State:          state.Clone(),
			Control:        applied.Clone(),
			ServersByDC:    state.TotalByDC(),
			Cost:           cost,
			SLAMet:         slaOK,
			DemandForecast: append([]float64(nil), demandFC[0]...),
			ActiveFaults:   sched.Active(k + 1),
			Wall:           stepWall,
		}
		if degrader != nil {
			rec.Degradation = degrader.LastDegradation()
		}
		if rec.Degradation.Degraded() {
			mDeg.With(rec.Degradation.Mode.String()).Inc()
			mShed.Add(rec.Degradation.ShedDemand)
		}
		if sink != nil {
			var explain core.Explain
			if explainer != nil {
				explain = explainer.LastExplain()
			}
			a, aerr := core.NewAttribution(inst, k+1, state, applied, prevState, realP,
				cost, rec.Degradation, stepWall, explain)
			if aerr != nil {
				return nil, perr(fmt.Errorf("period %d attribution: %w", k, aerr))
			}
			sink.Record(a)
		}
		prevState = rec.State
		mPeriods.Inc()
		pSpan.SetAttr(
			telemetry.Str("mode", rec.Degradation.Mode.String()),
			telemetry.Num("cold_restarts", float64(rec.Degradation.ColdRestarts)),
			telemetry.Num("shed", rec.Degradation.ShedDemand),
			telemetry.Num("min_slack", minSlack),
			telemetry.Num("cost", cost.Total()),
		)
		pSpan.End()
		res.Steps = append(res.Steps, rec)
	}
	// Fold this run's counter deltas back into the Result: the summary
	// numbers are a view over telemetry, not a second ledger.
	res.ShedDemand = mShed.Value() - baseShed
	res.BudgetOverruns = int(mOver.Value() - baseOver)
	res.ColdRestartSteps = int(mDeg.With(core.DegradeColdRestart.String()).Value() - baseMode[core.DegradeColdRestart.String()])
	res.AnytimeSteps = int(mDeg.With(core.DegradeAnytime.String()).Value() - baseMode[core.DegradeAnytime.String()])
	res.SoftSteps = int(mDeg.With(core.DegradeSoft.String()).Value() - baseMode[core.DegradeSoft.String()])
	res.HoldSteps = int(mDeg.With(core.DegradeHold.String()).Value() - baseMode[core.DegradeHold.String()])
	res.MonolithicSteps = int(mDeg.With(core.DegradeMonolithic.String()).Value() - baseMode[core.DegradeMonolithic.String()])
	res.DegradedSteps = res.ColdRestartSteps + res.AnytimeSteps + res.SoftSteps + res.HoldSteps + res.MonolithicSteps +
		int(mDeg.With(core.DegradeNone.String()).Value()-baseMode[core.DegradeNone.String()])
	res.SLAViolations = int(mViol.Value() - baseViol)
	for vi, tr := range trackers {
		res.ForecastAccuracy = append(res.ForecastAccuracy, ForecastAccuracy{
			Location:            vi,
			Bias:                tr.Bias(),
			MAE:                 tr.MAE(),
			RMSE:                tr.RMSE(),
			P95AbsError:         tr.P95AbsError(),
			UnderpredictionRate: tr.UnderpredictionRate(),
		})
	}
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.Instance == nil {
		return fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if cfg.Policy == nil {
		return fmt.Errorf("nil policy: %w", ErrBadConfig)
	}
	if cfg.Periods < 1 {
		return fmt.Errorf("periods %d: %w", cfg.Periods, ErrBadConfig)
	}
	if cfg.Horizon < 1 {
		return fmt.Errorf("horizon %d: %w", cfg.Horizon, ErrBadConfig)
	}
	if len(cfg.DemandTrace) < cfg.Periods+1 {
		return fmt.Errorf("demand trace %d < %d: %w", len(cfg.DemandTrace), cfg.Periods+1, ErrBadConfig)
	}
	if len(cfg.PriceTrace) < cfg.Periods+1 {
		return fmt.Errorf("price trace %d < %d: %w", len(cfg.PriceTrace), cfg.Periods+1, ErrBadConfig)
	}
	v := cfg.Instance.NumLocations()
	for k, row := range cfg.DemandTrace {
		if len(row) != v {
			return fmt.Errorf("demand[%d] width %d, want %d: %w", k, len(row), v, ErrBadConfig)
		}
	}
	l := cfg.Instance.NumDataCenters()
	for k, row := range cfg.PriceTrace {
		if len(row) != l {
			return fmt.Errorf("prices[%d] width %d, want %d: %w", k, len(row), l, ErrBadConfig)
		}
	}
	if cfg.SLAJudge != nil &&
		(cfg.SLAJudge.NumDataCenters() != l || cfg.SLAJudge.NumLocations() != v) {
		return fmt.Errorf("SLA judge is %dx%d, instance %dx%d: %w",
			cfg.SLAJudge.NumDataCenters(), cfg.SLAJudge.NumLocations(), l, v, ErrBadConfig)
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(l, v); err != nil {
			return fmt.Errorf("fault schedule: %w", err)
		}
		// Capacity faults work by rewriting the capacity vector, which
		// requires the target to be capacitated to begin with (the QP
		// structure bakes in which DCs have capacity rows).
		for i, f := range cfg.Faults.Faults {
			if f.Kind != faults.DCOutage && f.Kind != faults.CapacityShock {
				continue
			}
			if c, err := cfg.Instance.Capacity(f.Target); err == nil && math.IsInf(c, 1) {
				return fmt.Errorf("fault %d (%v) targets uncapacitated dc %d: %w", i, f.Kind, f.Target, ErrBadConfig)
			}
		}
	}
	return nil
}

// faultTrace maps a per-period transform over a trace, sharing rows the
// transform leaves untouched and copying only the faulted ones.
func faultTrace(trace [][]float64, f func(k int, row []float64) []float64) [][]float64 {
	var out [][]float64
	for k, row := range trace {
		if faulted := f(k, row); &faulted[0] != &row[0] {
			if out == nil {
				out = append(out, trace[:k]...)
			}
			out = append(out, faulted)
		} else if out != nil {
			out = append(out, row)
		}
	}
	if out == nil {
		return trace
	}
	return out
}

// forecastMatrix produces the W×width forecast for periods k+1..k+W.
// With a nil predictor it reads the true trace (clamping at the end);
// otherwise it forecasts each column from the realized history [0..k].
func forecastMatrix(trace [][]float64, k, w, width int, p predict.Predictor) ([][]float64, error) {
	out := make([][]float64, w)
	if p == nil {
		for t := 0; t < w; t++ {
			idx := k + 1 + t
			if idx >= len(trace) {
				idx = len(trace) - 1
			}
			out[t] = append([]float64(nil), trace[idx]...)
		}
		return out, nil
	}
	for t := 0; t < w; t++ {
		out[t] = make([]float64, width)
	}
	history := make([]float64, k+1)
	for col := 0; col < width; col++ {
		for i := 0; i <= k; i++ {
			history[i] = trace[i][col]
		}
		fc, err := p.Forecast(history, w)
		if err != nil {
			if errors.Is(err, predict.ErrInsufficientHistory) {
				// Cold start: fall back to persistence of the last value.
				for t := 0; t < w; t++ {
					out[t][col] = history[k]
				}
				continue
			}
			return nil, err
		}
		for t := 0; t < w; t++ {
			out[t][col] = fc[t]
		}
	}
	return out, nil
}

package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dspp/internal/predict"
)

func TestRunSweepMatchesSequential(t *testing.T) {
	inst := simpleInstance(t)
	demand := constTrace(10, []float64{1500})
	prices := constTrace(10, []float64{0.2})
	mkItem := func(label string, w int) SweepItem {
		return SweepItem{
			Label: label,
			Config: Config{
				Instance:    inst,
				Policy:      mpcPolicy(t, inst, w),
				DemandTrace: demand,
				PriceTrace:  prices,
				Periods:     6,
				Horizon:     w,
			},
		}
	}
	items := []SweepItem{mkItem("w1", 1), mkItem("w2", 2), mkItem("w3", 3)}
	parallelRes, err := RunSweep(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh policies for the sequential reference.
	ref := []SweepItem{mkItem("w1", 1), mkItem("w2", 2), mkItem("w3", 3)}
	for i := range ref {
		seq, err := Run(ref[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		if parallelRes[i].Label != ref[i].Label {
			t.Fatalf("order broken: %q at %d", parallelRes[i].Label, i)
		}
		if math.Abs(parallelRes[i].Result.TotalCost-seq.TotalCost) > 1e-9 {
			t.Errorf("%s: parallel %g vs sequential %g",
				ref[i].Label, parallelRes[i].Result.TotalCost, seq.TotalCost)
		}
	}
}

func TestRunSweepBoundedWorkers(t *testing.T) {
	inst := simpleInstance(t)
	demand := constTrace(6, []float64{500})
	prices := constTrace(6, []float64{0.2})
	items := make([]SweepItem, 7)
	for i := range items {
		items[i] = SweepItem{
			Label: "x",
			Config: Config{
				Instance:    inst,
				Policy:      mpcPolicy(t, inst, 1),
				DemandTrace: demand,
				PriceTrace:  prices,
				Periods:     3,
				Horizon:     1,
			},
		}
	}
	res, err := RunSweep(items, 2) // fewer workers than items
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Errorf("results = %d", len(res))
	}
}

func TestRunSweepErrors(t *testing.T) {
	if _, err := RunSweep(nil, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty err = %v", err)
	}
	inst := simpleInstance(t)
	shared := mpcPolicy(t, inst, 1)
	demand := constTrace(6, []float64{500})
	prices := constTrace(6, []float64{0.2})
	items := []SweepItem{
		{Label: "a", Config: Config{Instance: inst, Policy: shared, DemandTrace: demand, PriceTrace: prices, Periods: 2, Horizon: 1}},
		{Label: "b", Config: Config{Instance: inst, Policy: shared, DemandTrace: demand, PriceTrace: prices, Periods: 2, Horizon: 1}},
	}
	if _, err := RunSweep(items, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("shared policy err = %v", err)
	}
	// A failing config (too-short trace) propagates with its label.
	bad := []SweepItem{
		{Label: "good", Config: Config{Instance: inst, Policy: mpcPolicy(t, inst, 1), DemandTrace: demand, PriceTrace: prices, Periods: 2, Horizon: 1}},
		{Label: "broken", Config: Config{Instance: inst, Policy: mpcPolicy(t, inst, 1), DemandTrace: demand[:1], PriceTrace: prices, Periods: 2, Horizon: 1}},
	}
	_, err := RunSweep(bad, 2)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q should name the failing item", err)
	}
}

func TestForecastAccuracyRecorded(t *testing.T) {
	inst := simpleInstance(t)
	// Rising demand that persistence always underpredicts.
	trace := make([][]float64, 12)
	for k := range trace {
		trace[k] = []float64{100 + 50*float64(k)}
	}
	res, err := Run(Config{
		Instance:        inst,
		Policy:          mpcPolicy(t, inst, 1),
		DemandTrace:     trace,
		PriceTrace:      constTrace(12, []float64{0.1}),
		Periods:         8,
		Horizon:         1,
		DemandPredictor: predict.Persistence{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ForecastAccuracy) != 1 {
		t.Fatalf("accuracy entries = %d", len(res.ForecastAccuracy))
	}
	fa := res.ForecastAccuracy[0]
	if fa.Bias >= 0 {
		t.Errorf("persistence on a rising series should underpredict: bias %g", fa.Bias)
	}
	if math.Abs(fa.Bias+50) > 1e-9 {
		t.Errorf("bias = %g, want -50 (one-step lag on slope 50)", fa.Bias)
	}
	if fa.UnderpredictionRate != 1 {
		t.Errorf("underprediction rate = %g, want 1", fa.UnderpredictionRate)
	}
	// Perfect foresight has zero error.
	res2, err := Run(Config{
		Instance:    inst,
		Policy:      mpcPolicy(t, inst, 1),
		DemandTrace: trace,
		PriceTrace:  constTrace(12, []float64{0.1}),
		Periods:     8,
		Horizon:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ForecastAccuracy[0].RMSE != 0 {
		t.Errorf("perfect predictor RMSE = %g", res2.ForecastAccuracy[0].RMSE)
	}
}

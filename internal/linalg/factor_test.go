package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive-definite matrix A = BᵀB + εI.
func randSPD(rng *rand.Rand, n int) *Matrix {
	b := randMatrix(rng, n, n)
	w := NewVector(n)
	w.Fill(1)
	a := NewMatrix(n, n)
	if err := b.AtATWeighted(w, a); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		a.Inc(i, i, 0.5)
	}
	return a
}

func residual(a *Matrix, x, b Vector) float64 {
	ax := NewVector(len(b))
	if err := a.MulVec(x, ax); err != nil {
		return math.Inf(1)
	}
	r := NewVector(len(b))
	if err := r.Sub(ax, b); err != nil {
		return math.Inf(1)
	}
	return r.NormInf()
}

func TestCholeskySolveKnown(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
	b := VectorOf(2, 4, 1)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := NewVector(3)
	if err := c.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-10 {
		t.Errorf("residual = %g", r)
	}
}

func TestCholeskyRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randSPD(rng, n)
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Errorf("n=%d residual = %g", n, r)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{1, 2},
		{2, 1}, // eigenvalues 3, -1
	})
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("indefinite err = %v", err)
	}
	if _, err := NewCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("non-square err = %v", err)
	}
}

func TestCholeskySolveInPlaceAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, 6)
	b := NewVector(6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := b.Clone()
	if err := c.Solve(x, x); err != nil { // aliased solve
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("aliased residual = %g", r)
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSPD(rng, 4)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Solve A X = I, then A·X should be I.
	x, err := c.SolveMatrix(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	ax, err := Mul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(ax.At(i, j), want, 1e-8) {
				t.Fatalf("A·A⁻¹[%d,%d] = %g", i, j, ax.At(i, j))
			}
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{0, 2, 1}, // zero pivot forces a row swap
		{1, 1, 1},
		{2, 0, 3},
	})
	b := VectorOf(4, 3, 7)
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := NewVector(3)
	if err := f.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-10 {
		t.Errorf("residual = %g", r)
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("singular err = %v", err)
	}
	if _, err := NewLU(NewMatrix(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("non-square err = %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{3, 0},
		{0, 2},
	})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 6, 1e-12) {
		t.Errorf("Det = %g, want 6", f.Det())
	}
	// Row swap flips the sign bookkeeping but not the determinant value.
	b, _ := MatrixFromRows([][]float64{
		{0, 2},
		{3, 0},
	})
	g, err := NewLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g.Det(), -6, 1e-12) {
		t.Errorf("Det = %g, want -6", g.Det())
	}
}

func TestLURandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 3, 10, 40} {
		a := randMatrix(rng, n, n)
		// Diagonal boost keeps the random matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Inc(i, i, float64(n))
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := NewLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := NewVector(n)
		if err := f.Solve(b, x); err != nil {
			t.Fatal(err)
		}
		if r := residual(a, x, b); r > 1e-8 {
			t.Errorf("n=%d residual = %g", n, r)
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2 + 3t.
	a, _ := MatrixFromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 2},
		{1, 3},
	})
	b := VectorOf(2, 5, 8, 11)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-8) || !almostEqual(x[1], 3, 1e-8) {
		t.Errorf("LeastSquares = %v, want [2 3]", x)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(3, 2)
	if _, err := LeastSquares(a, VectorOf(1, 2), 0); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := LeastSquares(a, VectorOf(1, 2, 3), -1); err == nil {
		t.Error("negative ridge accepted")
	}
}

// Property: Cholesky solve then multiply is the identity map, for random
// SPD systems of random size.
func TestQuickCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return residual(a, x, b) < 1e-7
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: LU determinant of a triangular-ish dominant matrix matches the
// product of pivots (sanity on sign bookkeeping under random pivoting).
func TestQuickLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Inc(i, i, float64(2*n))
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f2, err := NewLU(a)
		if err != nil {
			return false
		}
		x := NewVector(n)
		if err := f2.Solve(b, x); err != nil {
			return false
		}
		return residual(a, x, b) < 1e-7
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

package linalg

import "sync"

// BandSymbolic is the shared, immutable result of symbolic analysis for
// band Cholesky factorizations of one shape: the clamped (n, bw), the
// packed storage size, and the transposed-copy policy. Factorization
// objects size their buffers from it (SymbolicFrom) without redoing the
// clamping or threshold decisions.
//
// Symbolic analysis for a band factorization is cheap — the point of
// sharing it process-wide is not the analysis cost but the registry
// itself: every QP structure cache entry, best-response session, and
// sweep cell solving the same (n, bw) shape resolves to the same
// *BandSymbolic, which makes shape identity observable (hit/miss
// counters) and gives future structure-dependent analyses (orderings,
// panel blockings) one place to live.
type BandSymbolic struct {
	n, bw int
	need  int  // packed floats: n·(bw+1)
	useLT bool // whether Factorize maintains the transposed copy
}

// N returns the (clamped) order.
func (s *BandSymbolic) N() int { return s.n }

// Bandwidth returns the (clamped) half-bandwidth.
func (s *BandSymbolic) Bandwidth() int { return s.bw }

// symbolicClamp normalizes a requested (n, bw) the same way
// BandCholesky.Symbolic and BandMatrix.Reset do, so registry keys are
// canonical.
func symbolicClamp(n, bw int) (int, int) {
	if n < 0 {
		n = 0
	}
	if bw < 0 {
		bw = 0
	}
	if bw > n-1 {
		bw = n - 1
	}
	if n == 0 {
		bw = 0
	}
	return n, bw
}

// symbolicRegistry is the process-wide (n, bw) → *BandSymbolic table.
// Entries are immutable once published, so readers share them freely; the
// map itself is guarded by a mutex (lookups are rare — once per solver
// session or structure-cache entry, not per solve).
var symbolicRegistry = struct {
	sync.Mutex
	m            map[[2]int]*BandSymbolic
	hits, misses uint64
}{m: make(map[[2]int]*BandSymbolic)}

// SharedSymbolic returns the process-wide shared symbolic object for band
// factorizations of order n with half-bandwidth bw (clamped like
// BandCholesky.Symbolic). Safe for concurrent use; the returned object is
// immutable and shared by every caller with the same shape.
func SharedSymbolic(n, bw int) *BandSymbolic {
	n, bw = symbolicClamp(n, bw)
	key := [2]int{n, bw}
	r := &symbolicRegistry
	r.Lock()
	s, ok := r.m[key]
	if ok {
		r.hits++
	} else {
		r.misses++
		s = &BandSymbolic{n: n, bw: bw, need: n * (bw + 1), useLT: n*(bw+1) > ltThreshold}
		r.m[key] = s
	}
	r.Unlock()
	return s
}

// SymbolicRegistryStats reports the registry's cumulative hit/miss counts
// (a hit means a shape was shared with a previous caller).
func SymbolicRegistryStats() (hits, misses uint64) {
	r := &symbolicRegistry
	r.Lock()
	hits, misses = r.hits, r.misses
	r.Unlock()
	return hits, misses
}

// SymbolicFrom prepares the factorization for the shape described by the
// shared symbolic object: identical to Symbolic(s.N(), s.Bandwidth()) but
// with the clamping and threshold decisions already made.
func (c *BandCholesky) SymbolicFrom(s *BandSymbolic) {
	c.useLT = s.useLT
	if cap(c.l) < s.need {
		c.l = make([]float64, s.need)
	}
	if c.useLT && cap(c.lt) < s.need {
		c.lt = make([]float64, s.need)
	}
	if cap(c.dinv) < s.n {
		c.dinv = make([]float64, s.n)
	}
	c.n, c.bw = s.n, s.bw
	c.l = c.l[:s.need]
	if c.useLT {
		c.lt = c.lt[:s.need]
	}
	c.dinv = c.dinv[:s.n]
}

package linalg

import (
	"fmt"
	"math"
)

// BandMatrix is a symmetric matrix with half-bandwidth bw stored packed:
// only the lower band of each row is kept, row-major, bw+1 entries per
// row. Entry (i, j) with i−bw ≤ j ≤ i lives at data[i·(bw+1) + j−i+bw].
// Compared to a dense n×n buffer this cuts the KKT working set from
// O(n²) to O(n·bw) floats, which is what keeps the band factorization
// and triangular solves in cache for the horizon QP (n = E·W, bw ≈ E).
type BandMatrix struct {
	n, bw int
	data  []float64
}

// NewBandMatrix returns a zero band matrix of order n with half-bandwidth
// bw (clamped into [0, n−1]).
func NewBandMatrix(n, bw int) *BandMatrix {
	b := &BandMatrix{}
	b.Reset(n, bw)
	return b
}

// Reset re-shapes the matrix for a new (n, bw), reusing the backing
// storage when it is large enough — the symbolic half of the
// symbolic/numeric factorization split. The band is NOT cleared; callers
// that assemble incrementally must ZeroBand first.
func (b *BandMatrix) Reset(n, bw int) {
	if n < 0 {
		n = 0
	}
	if bw < 0 {
		bw = 0
	}
	if bw > n-1 {
		bw = n - 1
	}
	if n == 0 {
		bw = 0
	}
	need := n * (bw + 1)
	if cap(b.data) < need {
		b.data = make([]float64, need)
	}
	b.n, b.bw = n, bw
	b.data = b.data[:need]
}

// N returns the order of the matrix.
func (b *BandMatrix) N() int { return b.n }

// Bandwidth returns the half-bandwidth.
func (b *BandMatrix) Bandwidth() int { return b.bw }

// ZeroBand clears every stored entry.
func (b *BandMatrix) ZeroBand() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// Row returns the packed storage of row i: bw+1 entries ending at the
// diagonal. Index j of row i (for i−bw ≤ j ≤ i) is at position j−i+bw.
func (b *BandMatrix) Row(i int) []float64 {
	w1 := b.bw + 1
	return b.data[i*w1 : (i+1)*w1 : (i+1)*w1]
}

// At returns entry (i, j), using symmetry for the upper triangle and
// zero outside the band.
func (b *BandMatrix) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	if i-j > b.bw {
		return 0
	}
	return b.data[i*(b.bw+1)+j-i+b.bw]
}

// Set stores v at (i, j) (and, by symmetry, (j, i)). Entries outside the
// band are rejected.
func (b *BandMatrix) Set(i, j int, v float64) error {
	if j > i {
		i, j = j, i
	}
	if i < 0 || i >= b.n || i-j > b.bw {
		return fmt.Errorf("band set (%d,%d) n=%d bw=%d: %w", i, j, b.n, b.bw, ErrDimensionMismatch)
	}
	b.data[i*(b.bw+1)+j-i+b.bw] = v
	return nil
}

// Inc adds v at (i, j) (and, by symmetry, (j, i)).
func (b *BandMatrix) Inc(i, j int, v float64) error {
	if j > i {
		i, j = j, i
	}
	if i < 0 || i >= b.n || i-j > b.bw {
		return fmt.Errorf("band inc (%d,%d) n=%d bw=%d: %w", i, j, b.n, b.bw, ErrDimensionMismatch)
	}
	b.data[i*(b.bw+1)+j-i+b.bw] += v
	return nil
}

// AddDiag adds v to every diagonal entry.
func (b *BandMatrix) AddDiag(v float64) {
	w1 := b.bw + 1
	for i := 0; i < b.n; i++ {
		b.data[i*w1+b.bw] += v
	}
}

// CopyLowerBand overwrites the band with the lower-band entries of the
// dense symmetric matrix a (entries of a outside the band are ignored —
// the caller guarantees they are zero, as kktBandwidth does for the KKT
// assembly).
func (b *BandMatrix) CopyLowerBand(a *Matrix) error {
	if a.Rows() != b.n || a.Cols() != b.n {
		return fmt.Errorf("band copy from (%dx%d), n=%d: %w", a.Rows(), a.Cols(), b.n, ErrDimensionMismatch)
	}
	w1 := b.bw + 1
	for i := 0; i < b.n; i++ {
		lo := i - b.bw
		k := 0
		if lo < 0 {
			for ; k < -lo; k++ {
				b.data[i*w1+k] = 0
			}
			lo = 0
		}
		copy(b.data[i*w1+k:(i+1)*w1], a.Row(i)[lo:i+1])
	}
	return nil
}

// CopyFrom overwrites the band with src's band. Shapes must match.
func (b *BandMatrix) CopyFrom(src *BandMatrix) error {
	if src.n != b.n || src.bw != b.bw {
		return fmt.Errorf("band copy from n=%d bw=%d into n=%d bw=%d: %w", src.n, src.bw, b.n, b.bw, ErrDimensionMismatch)
	}
	copy(b.data, src.data)
	return nil
}

// MulVecSym computes y = A·x for the symmetric band matrix, walking only
// the packed lower band (each off-diagonal entry is applied to both its
// row and its mirrored column). Per element of y the terms accumulate in
// ascending column order — the same association a dense band-limited
// row-times-vector product uses — so results are bit-identical to
// Matrix.MulVecBand on the materialized matrix.
func (b *BandMatrix) MulVecSym(x, y Vector) error {
	if len(x) != b.n || len(y) != b.n {
		return fmt.Errorf("band mulvec x=%d y=%d n=%d: %w", len(x), len(y), b.n, ErrDimensionMismatch)
	}
	w1 := b.bw + 1
	for i := range y {
		y[i] = 0
	}
	if b.bw == 2 {
		b.mulVecSymBW2(x, y)
		return nil
	}
	for i := 0; i < b.n; i++ {
		lo := i - b.bw
		if lo < 0 {
			lo = 0
		}
		row := b.data[i*w1+lo-i+b.bw : i*w1+w1]
		xi := x[i]
		var s float64
		off := row[:len(row)-1]
		xv := x[lo : lo+len(off)]
		for k, v := range off {
			s += v * xv[k]
			y[lo+k] += v * xi
		}
		s += row[len(row)-1] * xi
		y[i] += s
	}
	return nil
}

// mulVecSymBW2 is the bw = 2 product loop with the per-row slice setup
// unrolled away. The accumulate/scatter interleaving is identical to the
// generic loop's (s grows in ascending column order, each y element sees
// the same additions in the same order), so y is bit-identical. y must be
// zeroed by the caller.
func (b *BandMatrix) mulVecSymBW2(x, y Vector) {
	n := b.n // ≥ 3: Reset clamps bw ≤ n−1
	d := b.data
	s := d[2] * x[0]
	y[0] += s
	s = d[4] * x[0]
	y[0] += d[4] * x[1]
	s += d[5] * x[1]
	y[1] += s
	for i := 2; i < n; i++ {
		base := 3 * i
		a2, a1, diag := d[base], d[base+1], d[base+2]
		xi := x[i]
		s = a2 * x[i-2]
		y[i-2] += a2 * xi
		s += a1 * x[i-1]
		y[i-1] += a1 * xi
		s += diag * xi
		y[i] += s
	}
}

// ToDense materializes the full symmetric matrix (tests and debugging).
func (b *BandMatrix) ToDense() *Matrix {
	d := NewMatrix(b.n, b.n)
	for i := 0; i < b.n; i++ {
		lo := i - b.bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			v := b.At(i, j)
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	return d
}

// BandCholesky factorizes symmetric positive-definite band matrices into
// packed storage, split into a symbolic phase (Symbolic: size the packed
// layout, allocate once) and a numeric phase (Factorize: refactorize
// in place with zero allocations). Interior-point loops call Symbolic
// once per problem shape and Factorize once per iteration.
type BandCholesky struct {
	n, bw int
	l     []float64 // packed lower factor, bw+1 entries per row
	// lt mirrors the factor transposed (packed columns of L) so back
	// substitution walks memory contiguously; rebuilt by each Factorize.
	lt   []float64
	dinv []float64 // 1/L[i][i]: substitution multiplies instead of divides
	// useLT records whether Factorize built the transposed copy: below
	// ltThreshold floats the factor fits comfortably in L1, strided reads
	// are free, and the copy pass is pure overhead (the interior-point
	// workloads factorize tiny bands hundreds of thousands of times).
	useLT bool
	// uw is the working vector of UpdateRank1/UpdateRankK, sized lazily on
	// first use (factorization updates are opt-in).
	uw []float64
}

// ltThreshold is the packed-factor size (floats) above which Factorize
// maintains the transposed copy for cache-friendly back substitution.
const ltThreshold = 2048

// Symbolic prepares the factorization for matrices of order n with
// half-bandwidth bw: it sizes the packed factor storage, growing the
// buffers only when the shape outgrows them. It performs no numeric work.
func (c *BandCholesky) Symbolic(n, bw int) {
	if n < 0 {
		n = 0
	}
	if bw < 0 {
		bw = 0
	}
	if bw > n-1 {
		bw = n - 1
	}
	if n == 0 {
		bw = 0
	}
	need := n * (bw + 1)
	c.useLT = need > ltThreshold
	if cap(c.l) < need {
		c.l = make([]float64, need)
	}
	if c.useLT && cap(c.lt) < need {
		c.lt = make([]float64, need)
	}
	if cap(c.dinv) < n {
		c.dinv = make([]float64, n)
	}
	c.n, c.bw = n, bw
	c.l = c.l[:need]
	if c.useLT {
		c.lt = c.lt[:need]
	}
	c.dinv = c.dinv[:n]
}

// N returns the order the factorization is prepared for.
func (c *BandCholesky) N() int { return c.n }

// Factorize runs the numeric phase on a, which must match the shape given
// to Symbolic (Factorize re-runs Symbolic when it does not, so a bare
// Factorize is always correct — just not guaranteed allocation-free).
// On error the factor is invalid until the next successful call.
func (c *BandCholesky) Factorize(a *BandMatrix) error {
	if a.n != c.n || a.bw != c.bw {
		c.Symbolic(a.n, a.bw)
	}
	n, bw := c.n, c.bw
	if bw == 2 {
		// The horizon QP's two-datacenter instances (the experiment sweeps)
		// produce this exact shape hundreds of thousands of times per run.
		if err := c.factorizeBW2(a.data); err != nil {
			return err
		}
		c.rebuildLT()
		return nil
	}
	w1 := bw + 1
	l := c.l
	ad := a.data
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		ri := l[i*w1 : (i+1)*w1]
		for j := lo; j < i; j++ {
			// s = a(i,j) − Σ_k L[i][k]·L[j][k], k ∈ [max(lo, j−bw), j).
			kmin := j - bw
			if kmin < lo {
				kmin = lo
			}
			s := ad[i*w1+j-i+bw]
			// Four-accumulator inner product. The paper-scale horizon QPs
			// have single-digit bands, where these products are a handful
			// of terms and run entirely in the remainder loop — as cheap as
			// a plain loop, and still cheaper than a DotProd call. The
			// continental shard QPs have bandwidths in the hundreds, where
			// a single accumulator serializes every iteration on its add
			// chain; splitting the chain keeps the FPU pipeline full in the
			// kernel that dominates coordinated-solve time.
			if cnt := j - kmin; cnt > 0 {
				la := ri[kmin-i+bw : j-i+bw]
				lb := l[j*w1+kmin-j+bw : j*w1+bw]
				lb = lb[:len(la)]
				var s0, s1, s2, s3 float64
				k := 0
				for ; k+4 <= len(la); k += 4 {
					s0 += la[k] * lb[k]
					s1 += la[k+1] * lb[k+1]
					s2 += la[k+2] * lb[k+2]
					s3 += la[k+3] * lb[k+3]
				}
				for ; k < len(la); k++ {
					s0 += la[k] * lb[k]
				}
				s -= (s0 + s2) + (s1 + s3)
			}
			ri[j-i+bw] = s * c.dinv[j]
		}
		// Diagonal pivot, same four-lane accumulation.
		s := ad[i*w1+bw]
		{
			row := ri[lo-i+bw : bw]
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+4 <= len(row); k += 4 {
				s0 += row[k] * row[k]
				s1 += row[k+1] * row[k+1]
				s2 += row[k+2] * row[k+2]
				s3 += row[k+3] * row[k+3]
			}
			for ; k < len(row); k++ {
				s0 += row[k] * row[k]
			}
			s -= (s0 + s2) + (s1 + s3)
		}
		if s <= 0 || math.IsNaN(s) {
			return fmt.Errorf("pivot %d = %g: %w", i, s, ErrNotPositiveDefinite)
		}
		d := math.Sqrt(s)
		ri[bw] = d
		c.dinv[i] = 1 / d
	}
	// Packed transposed copy: lt row i holds column i of L from the
	// diagonal down, i.e. lt[i·w1+k] = L[i+k][i]. Skipped for factors
	// small enough to sit in L1, where back substitution reads l directly.
	c.rebuildLT()
	return nil
}

// factorizeBW2 is the numeric phase unrolled for half-bandwidth 2. Every
// floating-point operation runs in exactly the order of the generic loop
// (ascending k, left-to-right accumulation), so the factor is bit-identical;
// what the unrolling removes is per-row slice arithmetic and the loop-bound
// bookkeeping, which for a 3-wide band costs more than the arithmetic.
func (c *BandCholesky) factorizeBW2(ad []float64) error {
	n := c.n // ≥ 3: Symbolic clamps bw ≤ n−1
	l, dinv := c.l, c.dinv
	s := ad[2]
	if s <= 0 || math.IsNaN(s) {
		return fmt.Errorf("pivot %d = %g: %w", 0, s, ErrNotPositiveDefinite)
	}
	d := math.Sqrt(s)
	l[2] = d
	dinv[0] = 1 / d
	v1 := ad[4] * dinv[0]
	l[4] = v1
	s = ad[5] - v1*v1
	if s <= 0 || math.IsNaN(s) {
		return fmt.Errorf("pivot %d = %g: %w", 1, s, ErrNotPositiveDefinite)
	}
	d = math.Sqrt(s)
	l[5] = d
	dinv[1] = 1 / d
	for i := 2; i < n; i++ {
		base := 3 * i
		v0 := ad[base] * dinv[i-2]
		l[base] = v0
		w := (ad[base+1] - v0*l[base-2]) * dinv[i-1]
		l[base+1] = w
		s = ad[base+2] - v0*v0
		s -= w * w
		if s <= 0 || math.IsNaN(s) {
			return fmt.Errorf("pivot %d = %g: %w", i, s, ErrNotPositiveDefinite)
		}
		d = math.Sqrt(s)
		l[base+2] = d
		dinv[i] = 1 / d
	}
	return nil
}

// solveBW2 is Solve unrolled for half-bandwidth 2 (direct-l back
// substitution — bw-2 factors sit below ltThreshold until n > 682, and the
// dispatch requires !useLT). Operation order matches the generic loops
// exactly, so results are bit-identical.
func (c *BandCholesky) solveBW2(b, x Vector) {
	n := c.n // ≥ 3, as in factorizeBW2
	l, dinv := c.l, c.dinv
	x[0] = b[0] * dinv[0]
	x[1] = (b[1] - l[4]*x[0]) * dinv[1]
	for i := 2; i < n; i++ {
		base := 3 * i
		s := b[i] - l[base]*x[i-2]
		s -= l[base+1] * x[i-1]
		x[i] = s * dinv[i]
	}
	x[n-1] *= dinv[n-1]
	i := n - 2
	x[i] = (x[i] - l[3*i+4]*x[i+1]) * dinv[i]
	for i = n - 3; i >= 0; i-- {
		base := 3 * i
		s := x[i] - l[base+4]*x[i+1]
		s -= l[base+6] * x[i+2]
		x[i] = s * dinv[i]
	}
}

// Solve solves A x = b using the factorization, writing into x. x and b
// may alias. It allocates nothing.
func (c *BandCholesky) Solve(b Vector, x Vector) error {
	n, bw := c.n, c.bw
	if len(b) != n || len(x) != n {
		return fmt.Errorf("band solve b=%d x=%d n=%d: %w", len(b), len(x), n, ErrDimensionMismatch)
	}
	if bw == 2 && !c.useLT {
		c.solveBW2(b, x)
		return nil
	}
	w1 := bw + 1
	l := c.l
	// Forward substitution: L y = b. Narrow bands make the inner products
	// a few terms each; inline loops avoid per-row call overhead.
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		s := b[i]
		if lo < i {
			lv := l[i*w1+lo-i+bw : i*w1+bw]
			xv := x[lo:i]
			xv = xv[:len(lv)]
			for k, v := range lv {
				s -= v * xv[k]
			}
		}
		x[i] = s * c.dinv[i]
	}
	// Back substitution: Lᵀ x = y, off the packed transposed copy when one
	// was built, else straight off l (small factors live in L1 anyway).
	if c.useLT {
		lt := c.lt
		for i := n - 1; i >= 0; i-- {
			hi := i + bw
			if hi > n-1 {
				hi = n - 1
			}
			s := x[i]
			if i < hi {
				lv := lt[i*w1+1 : i*w1+hi-i+1]
				xv := x[i+1 : hi+1]
				xv = xv[:len(lv)]
				for k, v := range lv {
					s -= v * xv[k]
				}
			}
			x[i] = s * c.dinv[i]
		}
		return nil
	}
	for i := n - 1; i >= 0; i-- {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		s := x[i]
		for k := i + 1; k <= hi; k++ {
			s -= l[k*w1+i-k+bw] * x[k]
		}
		x[i] = s * c.dinv[i]
	}
	return nil
}

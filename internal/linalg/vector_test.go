package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVectorBasics(t *testing.T) {
	v := VectorOf(1, 2, 3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %g, want 6", got)
	}
	if got := v.Min(); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if got := v.Max(); got != 3 {
		t.Errorf("Max = %g, want 3", got)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestVectorEmptyExtremes(t *testing.T) {
	var v Vector
	if !math.IsInf(v.Min(), 1) {
		t.Errorf("empty Min = %g, want +Inf", v.Min())
	}
	if !math.IsInf(v.Max(), -1) {
		t.Errorf("empty Max = %g, want -Inf", v.Max())
	}
	if v.Norm2() != 0 {
		t.Errorf("empty Norm2 = %g, want 0", v.Norm2())
	}
	if v.NormInf() != 0 {
		t.Errorf("empty NormInf = %g, want 0", v.NormInf())
	}
}

func TestVectorAddSub(t *testing.T) {
	a := VectorOf(1, 2)
	b := VectorOf(10, 20)
	out := NewVector(2)
	if err := out.Add(a, b); err != nil {
		t.Fatal(err)
	}
	if out[0] != 11 || out[1] != 22 {
		t.Errorf("Add = %v", out)
	}
	if err := out.Sub(b, a); err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 || out[1] != 18 {
		t.Errorf("Sub = %v", out)
	}
}

func TestVectorDimensionErrors(t *testing.T) {
	a := VectorOf(1, 2)
	b := VectorOf(1, 2, 3)
	out := NewVector(2)
	if err := out.Add(a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Add mismatch err = %v", err)
	}
	if err := out.Sub(a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Sub mismatch err = %v", err)
	}
	if err := out.AXPY(1, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AXPY mismatch err = %v", err)
	}
	if err := out.CopyFrom(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("CopyFrom mismatch err = %v", err)
	}
	if _, err := Dot(a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Dot mismatch err = %v", err)
	}
}

func TestVectorAXPYAndScale(t *testing.T) {
	v := VectorOf(1, 1, 1)
	if err := v.AXPY(2, VectorOf(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	want := VectorOf(3, 5, 7)
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", v, want)
		}
	}
	v.Scale(0.5)
	if v[2] != 3.5 {
		t.Errorf("Scale: v[2] = %g, want 3.5", v[2])
	}
}

func TestVectorNorms(t *testing.T) {
	v := VectorOf(3, 4)
	if !almostEqual(v.Norm2(), 5, 1e-12) {
		t.Errorf("Norm2 = %g, want 5", v.Norm2())
	}
	if v.NormInf() != 4 {
		t.Errorf("NormInf = %g, want 4", v.NormInf())
	}
	// Norm2 must not overflow for huge entries.
	h := VectorOf(1e300, 1e300)
	if math.IsInf(h.Norm2(), 0) {
		t.Error("Norm2 overflowed on large entries")
	}
}

func TestVectorHasNaN(t *testing.T) {
	if VectorOf(1, 2).HasNaN() {
		t.Error("false positive")
	}
	if !VectorOf(1, math.NaN()).HasNaN() {
		t.Error("missed NaN")
	}
	if !VectorOf(math.Inf(1)).HasNaN() {
		t.Error("missed Inf")
	}
}

// Property: dot product is symmetric and bilinear.
func TestQuickDotSymmetric(t *testing.T) {
	f := func(raw []float64) bool {
		a := clipVec(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		ab, err1 := Dot(a, b)
		ba, err2 := Dot(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(ab, ba, 1e-12)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: ||a+b|| <= ||a|| + ||b|| (triangle inequality).
func TestQuickTriangleInequality(t *testing.T) {
	f := func(raw []float64) bool {
		a := clipVec(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = math.Sin(float64(i)) * 10
		}
		s := make(Vector, len(a))
		if err := s.Add(a, b); err != nil {
			return false
		}
		return s.Norm2() <= a.Norm2()+b.Norm2()+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |a·b| <= ||a||·||b||.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(raw []float64) bool {
		a := clipVec(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = float64((i*13)%11) - 5
		}
		ab, err := Dot(a, b)
		if err != nil {
			return false
		}
		return math.Abs(ab) <= a.Norm2()*b.Norm2()*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// clipVec replaces NaN/Inf/huge values so quick-generated inputs stay in a
// numerically meaningful range.
func clipVec(raw []float64) Vector {
	out := make(Vector, len(raw))
	for i, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		if x > 1e6 {
			x = 1e6
		}
		if x < -1e6 {
			x = -1e6
		}
		out[i] = x
	}
	return out
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
}

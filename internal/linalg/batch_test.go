package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveBatchBitIdenticalToSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cases := []struct{ n, bw, nrhs int }{
		{1, 0, 1},
		{6, 2, 4},
		{9, 3, 7},   // non-multiple of the panel width
		{17, 1, 8},  // exactly one panel
		{30, 5, 13}, // multiple panels + remainder
		{40, 0, 5},  // diagonal system
		{500, 4, 9}, // large enough to use the transposed copy
	}
	for _, tc := range cases {
		_, a := randBandSPD(rng, tc.n, tc.bw)
		var chol BandCholesky
		chol.Symbolic(tc.n, tc.bw)
		if err := chol.Factorize(a); err != nil {
			t.Fatalf("n=%d bw=%d: factorize: %v", tc.n, tc.bw, err)
		}
		b := make([]float64, tc.n*tc.nrhs)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := make([]float64, len(b))
		if err := chol.SolveBatch(b, got, tc.nrhs); err != nil {
			t.Fatalf("n=%d bw=%d nrhs=%d: SolveBatch: %v", tc.n, tc.bw, tc.nrhs, err)
		}
		want := NewVector(tc.n)
		for j := 0; j < tc.nrhs; j++ {
			if err := chol.Solve(Vector(b[j*tc.n:(j+1)*tc.n]), want); err != nil {
				t.Fatalf("sequential solve: %v", err)
			}
			for i := 0; i < tc.n; i++ {
				if got[j*tc.n+i] != want[i] {
					t.Fatalf("n=%d bw=%d nrhs=%d: column %d row %d: batch %v != sequential %v",
						tc.n, tc.bw, tc.nrhs, j, i, got[j*tc.n+i], want[i])
				}
			}
		}
	}
}

func TestSolveBatchAliasAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, bw, nrhs := 12, 3, 6
	_, a := randBandSPD(rng, n, bw)
	var chol BandCholesky
	if err := chol.Factorize(a); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sep := make([]float64, len(b))
	if err := chol.SolveBatch(b, sep, nrhs); err != nil {
		t.Fatal(err)
	}
	inPlace := append([]float64(nil), b...)
	if err := chol.SolveBatch(inPlace, inPlace, nrhs); err != nil {
		t.Fatal(err)
	}
	for i := range sep {
		if sep[i] != inPlace[i] {
			t.Fatalf("aliased solve differs at %d: %v vs %v", i, inPlace[i], sep[i])
		}
	}
	if err := chol.SolveBatch(b[:n], sep, nrhs); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("short b: got %v", err)
	}
	if err := chol.SolveBatch(b, sep[:n], nrhs); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("short x: got %v", err)
	}
	if err := chol.SolveBatch(nil, nil, 0); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// applyRankUpdates materializes A' = A + Σ σᵥ·v·vᵀ on a copy of the band.
func applyRankUpdates(a *BandMatrix, ups []RankUpdate) *BandMatrix {
	out := NewBandMatrix(a.N(), a.Bandwidth())
	_ = out.CopyFrom(a)
	for _, u := range ups {
		for i, vi := range u.V {
			for j, vj := range u.V {
				if u.Start+j > u.Start+i {
					continue
				}
				_ = out.Inc(u.Start+i, u.Start+j, u.Sigma*vi*vj)
			}
		}
	}
	return out
}

func maxRelFactorDiff(t *testing.T, upd, ref *BandCholesky, n, bw int) float64 {
	t.Helper()
	w1 := bw + 1
	var worst float64
	for i := 0; i < n*w1; i++ {
		d := math.Abs(upd.l[i] - ref.l[i])
		scale := math.Abs(ref.l[i])
		if scale < 1 {
			scale = 1
		}
		if d/scale > worst {
			worst = d / scale
		}
	}
	return worst
}

func TestUpdateRankKAgreesWithRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	cases := []struct{ n, bw, k int }{
		{8, 2, 1},
		{20, 3, 4},
		{50, 6, 5},
		{600, 3, 4}, // transposed-copy path
	}
	for _, tc := range cases {
		_, a := randBandSPD(rng, tc.n, tc.bw)
		var upd BandCholesky
		if err := upd.Factorize(a); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		ups := make([]RankUpdate, tc.k)
		for u := range ups {
			width := 1 + rng.Intn(tc.bw+1)
			start := rng.Intn(tc.n - width + 1)
			v := make([]float64, width)
			for i := range v {
				v[i] = rng.NormFloat64() * 0.3
			}
			sigma := 0.5 + rng.Float64()
			if u%2 == 1 {
				sigma = -sigma * 0.05 // small downdates stay PD on a dominant matrix
			}
			ups[u] = RankUpdate{Start: start, V: v, Sigma: sigma}
		}
		if err := upd.UpdateRankK(ups); err != nil {
			t.Fatalf("n=%d: UpdateRankK: %v", tc.n, err)
		}
		perturbed := applyRankUpdates(a, ups)
		var ref BandCholesky
		if err := ref.Factorize(perturbed); err != nil {
			t.Fatalf("n=%d: refactorize: %v", tc.n, err)
		}
		if worst := maxRelFactorDiff(t, &upd, &ref, tc.n, tc.bw); worst > 1e-10 {
			t.Fatalf("n=%d bw=%d k=%d: factor disagrees with refactorization: max rel diff %g", tc.n, tc.bw, tc.k, worst)
		}
		// The solve path (dinv and, on large shapes, the transposed copy)
		// must be refreshed too.
		b := NewVector(tc.n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xu, xr := NewVector(tc.n), NewVector(tc.n)
		if err := upd.Solve(b, xu); err != nil {
			t.Fatal(err)
		}
		if err := ref.Solve(b, xr); err != nil {
			t.Fatal(err)
		}
		for i := range xu {
			scale := math.Abs(xr[i])
			if scale < 1 {
				scale = 1
			}
			if math.Abs(xu[i]-xr[i])/scale > 1e-10 {
				t.Fatalf("n=%d: solve disagrees at %d: %v vs %v", tc.n, i, xu[i], xr[i])
			}
		}
	}
}

func TestUpdateRankKFallbackTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, bw := 16, 3
	_, a := randBandSPD(rng, n, bw)
	var chol BandCholesky
	if err := chol.Factorize(a); err != nil {
		t.Fatal(err)
	}
	// Downdating by (slightly more than) the full diagonal entry at row 9
	// makes the perturbed matrix indefinite: the sweep must detect the
	// collapsing pivot and report the unstable-update error, which is the
	// signal the QP session layer converts into a full refactorization.
	v := []float64{math.Sqrt(a.At(9, 9) * 1.0000001)}
	err := chol.UpdateRankK([]RankUpdate{{Start: 9, V: v, Sigma: -1}})
	if !errors.Is(err, ErrUpdateUnstable) {
		t.Fatalf("want ErrUpdateUnstable, got %v", err)
	}
	// The fallback path: refill + refactorize restores a valid factor.
	if err := chol.Factorize(a); err != nil {
		t.Fatalf("recovery factorize: %v", err)
	}
	b := NewVector(n)
	b[0] = 1
	x := NewVector(n)
	if err := chol.Solve(b, x); err != nil {
		t.Fatalf("solve after recovery: %v", err)
	}
}

func TestUpdateRankKValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, bw := 10, 2
	_, a := randBandSPD(rng, n, bw)
	var chol BandCholesky
	if err := chol.Factorize(a); err != nil {
		t.Fatal(err)
	}
	bad := []RankUpdate{
		{Start: 0, V: []float64{1, 1, 1, 1}, Sigma: 1},  // wider than bw+1
		{Start: 8, V: []float64{1, 1, 1}, Sigma: 1},     // runs past n
		{Start: -1, V: []float64{1}, Sigma: 1},          // negative start
		{Start: 0, V: nil, Sigma: 1},                    // empty window
		{Start: 0, V: []float64{1}, Sigma: 0},           // zero sigma
		{Start: 0, V: []float64{1}, Sigma: math.NaN()},  // NaN sigma
		{Start: 0, V: []float64{1}, Sigma: math.Inf(1)}, // infinite sigma
	}
	for i, u := range bad {
		if err := chol.UpdateRankK([]RankUpdate{u}); !errors.Is(err, ErrDimensionMismatch) {
			t.Fatalf("bad update %d: want ErrDimensionMismatch, got %v", i, err)
		}
	}
	// Validation happens before any mutation: a batch with a bad tail
	// leaves the factor untouched even though its head was applicable.
	before := append([]float64(nil), chol.l...)
	err := chol.UpdateRankK([]RankUpdate{
		{Start: 0, V: []float64{1}, Sigma: 1},
		{Start: 0, V: nil, Sigma: 1},
	})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("want ErrDimensionMismatch, got %v", err)
	}
	for i := range before {
		if chol.l[i] != before[i] {
			t.Fatal("factor mutated by a batch that failed validation")
		}
	}
}

func TestSharedSymbolicRegistry(t *testing.T) {
	h0, m0 := SymbolicRegistryStats()
	s1 := SharedSymbolic(37, 5)
	s2 := SharedSymbolic(37, 5)
	if s1 != s2 {
		t.Fatal("same shape did not share one symbolic object")
	}
	if s1.N() != 37 || s1.Bandwidth() != 5 {
		t.Fatalf("symbolic shape (%d,%d), want (37,5)", s1.N(), s1.Bandwidth())
	}
	h1, m1 := SymbolicRegistryStats()
	if h1 <= h0 {
		t.Fatalf("hits did not advance: %d -> %d", h0, h1)
	}
	if m1 < m0 {
		t.Fatalf("misses went backwards: %d -> %d", m0, m1)
	}
	// Clamping matches Symbolic: an oversized bandwidth keys the same
	// entry as the clamped one.
	if SharedSymbolic(4, 99) != SharedSymbolic(4, 3) {
		t.Fatal("clamped shapes did not share")
	}

	// A factorization prepared from the shared symbolic behaves exactly
	// like one prepared by its own Symbolic call.
	rng := rand.New(rand.NewSource(3))
	_, a := randBandSPD(rng, 37, 5)
	var viaShared, viaOwn BandCholesky
	viaShared.SymbolicFrom(SharedSymbolic(37, 5))
	viaOwn.Symbolic(37, 5)
	if err := viaShared.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := viaOwn.Factorize(a); err != nil {
		t.Fatal(err)
	}
	b := NewVector(37)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, x2 := NewVector(37), NewVector(37)
	if err := viaShared.Solve(b, x1); err != nil {
		t.Fatal(err)
	}
	if err := viaOwn.Solve(b, x2); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("shared-symbolic solve differs at %d", i)
		}
	}
}

// BenchmarkBatchSolve compares the panel back-solve against sequential
// scalar solves on a best-response-shaped factor (many RHS, narrow band).
func BenchmarkBatchSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, bw, nrhs := 240, 4, 8
	_, a := randBandSPD(rng, n, bw)
	var chol BandCholesky
	if err := chol.Factorize(a); err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n*nrhs)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	out := make([]float64, len(rhs))
	b.Run("panel", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := chol.SolveBatch(rhs, out, nrhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < nrhs; j++ {
				if err := chol.Solve(Vector(rhs[j*n:(j+1)*n]), Vector(out[j*n:(j+1)*n])); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkRankKUpdate compares a k-row factorization update against the
// full refill+refactorize it replaces (the marginal vs cold cost of a
// quota-perturbed re-solve).
func BenchmarkRankKUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, bw, k := 240, 4, 2
	_, a := randBandSPD(rng, n, bw)
	ups := make([]RankUpdate, k)
	for u := range ups {
		v := make([]float64, bw+1)
		for i := range v {
			v[i] = rng.NormFloat64() * 1e-3
		}
		ups[u] = RankUpdate{Start: rng.Intn(n - bw), V: v, Sigma: 1}
	}
	var chol BandCholesky
	if err := chol.Factorize(a); err != nil {
		b.Fatal(err)
	}
	b.Run("update", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := chol.UpdateRankK(ups); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refactorize", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := chol.Factorize(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

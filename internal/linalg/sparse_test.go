package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSparse draws a rows×cols matrix with the given fill density and
// returns both the dense and CSR forms.
func randomSparse(rng *rand.Rand, rows, cols int, density float64) (*Matrix, *SparseMatrix) {
	d := NewMatrix(rows, cols)
	b := NewSparseBuilder(rows, cols, int(float64(rows*cols)*density)+1)
	for i := 0; i < rows; i++ {
		b.StartRow()
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				d.Set(i, j, v)
				b.Add(j, v)
			}
		}
	}
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d, s
}

func TestSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		d, s := randomSparse(rng, rows, cols, 0.4)
		if s.Rows() != rows || s.Cols() != cols {
			t.Fatalf("dims %dx%d, want %dx%d", s.Rows(), s.Cols(), rows, cols)
		}
		back := s.ToDense()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if back.At(i, j) != d.At(i, j) || s.At(i, j) != d.At(i, j) {
					t.Fatalf("entry (%d,%d): dense %g, sparse %g, roundtrip %g",
						i, j, d.At(i, j), s.At(i, j), back.At(i, j))
				}
			}
		}
		s2 := SparseFromDense(d)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if s2.At(i, j) != d.At(i, j) {
					t.Fatalf("SparseFromDense (%d,%d): %g != %g", i, j, s2.At(i, j), d.At(i, j))
				}
			}
		}
	}
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		d, s := randomSparse(rng, rows, cols, 0.3)
		x := NewVector(cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		yd, ys := NewVector(rows), NewVector(rows)
		if err := d.MulVec(x, yd); err != nil {
			t.Fatal(err)
		}
		if err := s.MulVec(x, ys); err != nil {
			t.Fatal(err)
		}
		for i := range yd {
			if math.Abs(yd[i]-ys[i]) > 1e-12*(1+math.Abs(yd[i])) {
				t.Fatalf("MulVec[%d]: %g != %g", i, ys[i], yd[i])
			}
		}
		xt := NewVector(rows)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		td, ts := NewVector(cols), NewVector(cols)
		if err := d.MulVecT(xt, td); err != nil {
			t.Fatal(err)
		}
		if err := s.MulVecT(xt, ts); err != nil {
			t.Fatal(err)
		}
		for i := range td {
			if math.Abs(td[i]-ts[i]) > 1e-12*(1+math.Abs(td[i])) {
				t.Fatalf("MulVecT[%d]: %g != %g", i, ts[i], td[i])
			}
		}
	}
}

func TestSparseAtATWeightedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		d, s := randomSparse(rng, rows, cols, 0.35)
		w := NewVector(rows)
		for i := range w {
			w[i] = rng.Float64() + 0.1
		}
		gd, gs := NewMatrix(cols, cols), NewMatrix(cols, cols)
		if err := d.AtATWeighted(w, gd); err != nil {
			t.Fatal(err)
		}
		if err := s.AtATWeighted(w, gs); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(gd.At(i, j)-gs.At(i, j)) > 1e-10*(1+math.Abs(gd.At(i, j))) {
					t.Fatalf("AtATWeighted (%d,%d): %g != %g", i, j, gs.At(i, j), gd.At(i, j))
				}
			}
		}
	}
}

func TestSparseMulVecDimChecks(t *testing.T) {
	_, s := randomSparse(rand.New(rand.NewSource(1)), 3, 4, 0.5)
	if err := s.MulVec(NewVector(3), NewVector(3)); err == nil {
		t.Error("MulVec with wrong x length: no error")
	}
	if err := s.MulVec(NewVector(4), NewVector(4)); err == nil {
		t.Error("MulVec with wrong y length: no error")
	}
	if err := s.MulVecT(NewVector(4), NewVector(4)); err == nil {
		t.Error("MulVecT with wrong x length: no error")
	}
	if err := s.AtATWeighted(NewVector(2), NewMatrix(4, 4)); err == nil {
		t.Error("AtATWeighted with wrong weight length: no error")
	}
	if err := s.AtATWeighted(NewVector(3), NewMatrix(3, 3)); err == nil {
		t.Error("AtATWeighted with wrong dst shape: no error")
	}
}

func TestSparseBuilderErrors(t *testing.T) {
	b := NewSparseBuilder(2, 3, 0)
	b.StartRow()
	b.Add(1, 1.0)
	if _, err := b.Build(); err == nil {
		t.Error("Build with missing rows: no error")
	}

	b = NewSparseBuilder(1, 3, 0)
	b.Add(0, 1.0) // Add before StartRow
	if _, err := b.Build(); err == nil {
		t.Error("Add before StartRow: no error")
	}

	b = NewSparseBuilder(1, 3, 0)
	b.StartRow()
	b.Add(3, 1.0) // column out of range
	if _, err := b.Build(); err == nil {
		t.Error("column out of range: no error")
	}

	b = NewSparseBuilder(1, 3, 0)
	b.StartRow()
	b.Add(1, 1.0)
	b.Add(1, 2.0) // duplicate column
	if _, err := b.Build(); err == nil {
		t.Error("duplicate column: no error")
	}

	b = NewSparseBuilder(1, 2, 0)
	b.StartRow()
	b.StartRow() // too many rows
	if _, err := b.Build(); err == nil {
		t.Error("extra StartRow: no error")
	}

	// Unsorted insertion within a row is fine: Build sorts.
	b = NewSparseBuilder(1, 4, 0)
	b.StartRow()
	b.Add(3, 3.0)
	b.Add(0, 1.0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 1.0 || s.At(0, 3) != 3.0 || s.NNZ() != 2 {
		t.Errorf("unsorted build: got %v nnz=%d", s.ToDense(), s.NNZ())
	}
}

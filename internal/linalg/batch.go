package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrUpdateUnstable is returned by UpdateRank1/UpdateRankK when a downdate
// would drive a pivot at or below the stability floor — the perturbed
// matrix is (numerically) no longer positive definite along the band.
// After this error the factor is invalid; the caller must refill and
// refactorize, which is exactly the fallback the QP session layer takes.
var ErrUpdateUnstable = errors.New("linalg: band factorization update unstable")

// solvePanelWidth is the number of right-hand sides back-substituted
// together by SolveBatch: wide enough to amortize the factor's band loads
// across columns, narrow enough that a panel of column tails stays in L1.
const solvePanelWidth = 8

// SolveBatch solves A·X = B for nrhs right-hand sides against the current
// factorization. B and X are column-major panels of length n·nrhs: column
// j occupies [j·n, (j+1)·n). b and x may alias. Columns are processed in
// panels of up to solvePanelWidth so each row of the factor is loaded once
// per panel instead of once per column; within a column the arithmetic
// (term order and rounding) is bit-identical to a sequential Solve.
func (c *BandCholesky) SolveBatch(b, x []float64, nrhs int) error {
	n, bw := c.n, c.bw
	if nrhs < 0 || len(b) != n*nrhs || len(x) != n*nrhs {
		return fmt.Errorf("band batch solve b=%d x=%d n=%d nrhs=%d: %w", len(b), len(x), n, nrhs, ErrDimensionMismatch)
	}
	if n == 0 || nrhs == 0 {
		return nil
	}
	if &b[0] != &x[0] {
		copy(x, b)
	}
	w1 := bw + 1
	l := c.l
	for base := 0; base < nrhs; base += solvePanelWidth {
		p := nrhs - base
		if p > solvePanelWidth {
			p = solvePanelWidth
		}
		xs := x[base*n:]
		// Forward substitution: L·Y = B across the panel.
		for i := 0; i < n; i++ {
			lo := i - bw
			if lo < 0 {
				lo = 0
			}
			lv := l[i*w1+lo-i+bw : i*w1+bw]
			panelFwdStep(xs, n, i, lo, lv, c.dinv[i], p)
		}
		// Back substitution: Lᵀ·X = Y, off the transposed copy when one
		// was built (same policy as Solve).
		if c.useLT {
			lt := c.lt
			for i := n - 1; i >= 0; i-- {
				hi := i + bw
				if hi > n-1 {
					hi = n - 1
				}
				lv := lt[i*w1+1 : i*w1+hi-i+1]
				panelBackStepLT(xs, n, i, lv, c.dinv[i], p)
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				hi := i + bw
				if hi > n-1 {
					hi = n - 1
				}
				panelBackStep(xs, n, i, hi, w1, bw, l, c.dinv[i], p)
			}
		}
	}
	return nil
}

// RankUpdate describes one rank-1 perturbation A' = A + Sigma·v·vᵀ of a
// factorized band matrix, with v given as a dense window: v[i] is the
// entry at row Start+i and everything outside the window is zero. The
// window may span at most bw+1 rows — a wider vector would fill in
// outside the band and is rejected.
type RankUpdate struct {
	Start int
	V     []float64
	Sigma float64
}

// updateStabTol is the relative pivot floor of the downdate: a step that
// would leave d'² ≤ updateStabTol·d² is rejected as unstable (the hyperbolic
// rotation's cosh blows up as the pivot collapses, amplifying rounding in
// every later column). Updates (Sigma > 0) only grow pivots and cannot
// trip it.
const updateStabTol = 1e-14

// UpdateRank1 applies the rank-1 perturbation A' = A + sigma·v·vᵀ to the
// current factorization in place: Givens-style rotations for sigma > 0,
// hyperbolic rotations for sigma < 0, each sweep touching only the band
// (the window constraint keeps the working vector's support inside the
// sliding bw+1 window, so no fill occurs). Cost is O((n−start)·bw) against
// the O(n·bw²) of a fresh factorization — the win when a solve-to-solve
// perturbation touches a handful of constraint rows, as Algorithm 2's
// quota re-division does.
//
// On ErrUpdateUnstable the factor is invalid and must be refactorized.
func (c *BandCholesky) UpdateRank1(start int, v []float64, sigma float64) error {
	if err := c.checkUpdate(start, v, sigma); err != nil {
		return err
	}
	if err := c.updateRank1(start, v, sigma); err != nil {
		return err
	}
	c.rebuildLT()
	return nil
}

// UpdateRankK applies k rank-1 perturbations in sequence, sharing one
// validation pass and one transposed-copy rebuild. On error the factor is
// invalid (a dimension error on any update leaves it untouched; an
// instability mid-sequence does not), and the caller must refactorize.
func (c *BandCholesky) UpdateRankK(ups []RankUpdate) error {
	for i := range ups {
		if err := c.checkUpdate(ups[i].Start, ups[i].V, ups[i].Sigma); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	for i := range ups {
		if err := c.updateRank1(ups[i].Start, ups[i].V, ups[i].Sigma); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	c.rebuildLT()
	return nil
}

func (c *BandCholesky) checkUpdate(start int, v []float64, sigma float64) error {
	if start < 0 || len(v) == 0 || start+len(v) > c.n || len(v) > c.bw+1 {
		return fmt.Errorf("band update start=%d len=%d n=%d bw=%d: %w", start, len(v), c.n, c.bw, ErrDimensionMismatch)
	}
	if sigma == 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return fmt.Errorf("band update sigma=%g: %w", sigma, ErrDimensionMismatch)
	}
	return nil
}

func (c *BandCholesky) updateRank1(start int, v []float64, sigma float64) error {
	n, bw := c.n, c.bw
	w1 := bw + 1
	// Working vector: |sigma| folded into v, sign into the rotation type.
	// Its support starts as the caller's window and slides with the sweep —
	// after eliminating column k it is contained in [k+1, k+bw] — so only
	// the first bw+1 slots past the current column are ever nonzero and the
	// factor's band structure is preserved exactly.
	if cap(c.uw) < n {
		c.uw = make([]float64, n)
	}
	w := c.uw[:n]
	scale := math.Sqrt(math.Abs(sigma))
	for i, vi := range v {
		w[start+i] = vi * scale
	}
	// The sweep's read window slides to w[k+bw]; every entry past the
	// caller's window is mathematically zero throughout (the band keeps the
	// support from spreading), so the scratch tail must start clean.
	for i := start + len(v); i < n; i++ {
		w[i] = 0
	}
	up := sigma > 0
	l := c.l
	for k := start; k < n; k++ {
		wk := w[k]
		if wk == 0 {
			// Identity rotation; the rest of the window is untouched.
			continue
		}
		dk := l[k*w1+bw]
		var r float64
		if up {
			r = math.Sqrt(dk*dk + wk*wk)
		} else {
			rsq := dk*dk - wk*wk
			if !(rsq > updateStabTol*dk*dk) {
				return fmt.Errorf("column %d pivot %g → %g: %w", k, dk, rsq, ErrUpdateUnstable)
			}
			r = math.Sqrt(rsq)
		}
		ch := r / dk
		sh := wk / dk
		l[k*w1+bw] = r
		c.dinv[k] = 1 / r
		hi := k + bw
		if hi > n-1 {
			hi = n - 1
		}
		if up {
			for i := k + 1; i <= hi; i++ {
				lik := (l[i*w1+k-i+bw] + sh*w[i]) / ch
				l[i*w1+k-i+bw] = lik
				w[i] = ch*w[i] - sh*lik
			}
		} else {
			for i := k + 1; i <= hi; i++ {
				lik := (l[i*w1+k-i+bw] - sh*w[i]) / ch
				l[i*w1+k-i+bw] = lik
				w[i] = ch*w[i] - sh*lik
			}
		}
	}
	return nil
}

// rebuildLT refreshes the packed transposed copy after in-place factor
// updates (no-op for factors small enough to be read directly).
func (c *BandCholesky) rebuildLT() {
	if !c.useLT {
		return
	}
	n, bw := c.n, c.bw
	w1 := bw + 1
	l, lt := c.l, c.lt
	for i := 0; i < n; i++ {
		hi := bw
		if i+hi > n-1 {
			hi = n - 1 - i
		}
		for k := 0; k <= hi; k++ {
			lt[i*w1+k] = l[(i+k)*w1+bw-k]
		}
	}
}

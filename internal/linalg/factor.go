package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// ErrSingular is returned by LU when the matrix is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full square storage)
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. The input is not modified.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("cholesky of (%dx%d): %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	c := &Cholesky{n: n, l: make([]float64, n*n)}
	l := c.l
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			li := l[i*n:]
			lj := l[j*n:]
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("pivot %d = %g: %w", i, s, ErrNotPositiveDefinite)
				}
				l[i*n+j] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / lj[j]
			}
		}
	}
	return c, nil
}

// Solve solves A x = b using the factorization, writing the result into x.
// x and b may alias.
func (c *Cholesky) Solve(b Vector, x Vector) error {
	n := c.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("cholesky solve b=%d x=%d n=%d: %w", len(b), len(x), n, ErrDimensionMismatch)
	}
	l := c.l
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		li := l[i*n:]
		for k := 0; k < i; k++ {
			s -= li[k] * x[k]
		}
		x[i] = s / li[i]
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return nil
}

// SolveMatrix solves A X = B column by column, returning X.
func (c *Cholesky) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.Rows() != c.n {
		return nil, fmt.Errorf("cholesky solvematrix rows=%d n=%d: %w", b.Rows(), c.n, ErrDimensionMismatch)
	}
	x := NewMatrix(b.Rows(), b.Cols())
	col := NewVector(c.n)
	out := NewVector(c.n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < b.Rows(); i++ {
			col[i] = b.At(i, j)
		}
		if err := c.Solve(col, out); err != nil {
			return nil, err
		}
		for i := 0; i < b.Rows(); i++ {
			x.Set(i, j, out[i])
		}
	}
	return x, nil
}

// LU holds a row-pivoted LU factorization P·A = L·U.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factorizes the square matrix a with partial pivoting.
// The input is not modified.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("lu of (%dx%d): %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	for i := 0; i < n; i++ {
		f.piv[i] = i
		copy(f.lu[i*n:(i+1)*n], a.Row(i))
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot search.
		p, pmax := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, fmt.Errorf("column %d: %w", k, ErrSingular)
		}
		if p != k {
			rk := lu[k*n : (k+1)*n]
			rp := lu[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := lu[i*n:]
			rk := lu[k*n:]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b, writing the result into x. x and b must not alias.
func (f *LU) Solve(b Vector, x Vector) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("lu solve b=%d x=%d n=%d: %w", len(b), len(x), n, ErrDimensionMismatch)
	}
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	lu := f.lu
	// Forward: L y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		ri := lu[i*n:]
		for k := 0; k < i; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s
	}
	// Back: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := lu[i*n:]
		for k := i + 1; k < n; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s / ri[i]
	}
	return nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSPD is a convenience that factorizes a (assumed symmetric positive
// definite) and solves a single system A x = b.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	x := NewVector(len(b))
	if err := c.Solve(b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// LeastSquares solves min_x ||A x - b||₂ via the normal equations with a
// small Tikhonov ridge for robustness. It is intended for the modest,
// well-conditioned regression problems in the AR predictor.
func LeastSquares(a *Matrix, b Vector, ridge float64) (Vector, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("lstsq A=(%dx%d) b=%d: %w", a.Rows(), a.Cols(), len(b), ErrDimensionMismatch)
	}
	if ridge < 0 {
		return nil, fmt.Errorf("lstsq: negative ridge %g", ridge)
	}
	n := a.Cols()
	ata := NewMatrix(n, n)
	w := NewVector(a.Rows())
	w.Fill(1)
	if err := a.AtATWeighted(w, ata); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ata.Inc(i, i, ridge)
	}
	atb := NewVector(n)
	if err := a.MulVecT(b, atb); err != nil {
		return nil, err
	}
	return SolveSPD(ata, atb)
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// ErrSingular is returned by LU when the matrix is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ.
type Cholesky struct {
	n  int
	bw int       // half-bandwidth of the factor (n−1 when dense)
	l  []float64 // row-major lower triangle (full square storage)
	// lt mirrors the factor transposed (row-major Lᵀ) so back
	// substitution walks memory contiguously instead of striding down a
	// column; the copy is O(n·bw) once per factorization and is repaid by
	// the repeated solves of each interior-point iteration.
	lt []float64
	// dinv holds 1/L[i][i]: substitution then multiplies instead of
	// dividing on every row of every solve.
	dinv []float64
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. The input is not modified.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	c := &Cholesky{}
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factorize refactorizes c in place for a new matrix, reusing the factor
// buffer when the size matches. Iterative callers (the interior-point
// solver refactors every iteration) use it to avoid an O(n²) allocation
// per call. On error the factor is invalid until the next successful call.
func (c *Cholesky) Factorize(a *Matrix) error {
	return c.FactorizeBand(a, -1)
}

// FactorizeBand is Factorize for a banded SPD matrix: entries of a with
// |i−j| > bw are taken to be zero. The Cholesky factor of a banded matrix
// stays inside the band, so factorization costs O(n·bw²) and the
// subsequent Solve O(n·bw) instead of O(n³)/O(n²) — the payoff that makes
// the state-space horizon QP cheap. bw < 0 (or ≥ n−1) means dense.
func (c *Cholesky) FactorizeBand(a *Matrix, bw int) error {
	if a.Rows() != a.Cols() {
		return fmt.Errorf("cholesky of (%dx%d): %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	if bw < 0 || bw > n-1 {
		bw = n - 1
	}
	if c.n != n || len(c.l) != n*n {
		c.n = n
		c.l = make([]float64, n*n)
		c.lt = make([]float64, n*n)
		c.dinv = make([]float64, n)
	}
	c.bw = bw
	l := c.l
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			s := a.At(i, j)
			// l[i][k] is zero for k < i−bw, so the dot product starts at lo.
			li := l[i*n+lo : i*n+j]
			lj := l[j*n+lo : j*n+j]
			for k, lv := range li {
				s -= lv * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return fmt.Errorf("pivot %d = %g: %w", i, s, ErrNotPositiveDefinite)
				}
				l[i*n+j] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	// Transposed copy of the band for the back-substitution pass, and the
	// reciprocal diagonal for both substitution passes.
	for i := 0; i < n; i++ {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		lti := c.lt[i*n:]
		for k := i; k <= hi; k++ {
			lti[k] = l[k*n+i]
		}
		c.dinv[i] = 1 / l[i*n+i]
	}
	return nil
}

// Solve solves A x = b using the factorization, writing the result into x.
// x and b may alias.
func (c *Cholesky) Solve(b Vector, x Vector) error {
	n := c.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("cholesky solve b=%d x=%d n=%d: %w", len(b), len(x), n, ErrDimensionMismatch)
	}
	l := c.l
	bw := c.bw
	// Forward substitution: L y = b. Only the in-band part of each row is
	// populated (and stale out-of-band entries from a previous, wider
	// factorization must not be read).
	for i := 0; i < n; i++ {
		s := b[i]
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		li := l[i*n+lo : i*n+i]
		xk := x[lo:i]
		for k, lv := range li {
			s -= lv * xk[k]
		}
		x[i] = s * c.dinv[i]
	}
	// Back substitution: Lᵀ x = y, off the transposed (row-major) copy.
	lt := c.lt
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		lti := lt[i*n+i+1 : i*n+hi+1]
		xk := x[i+1 : hi+1]
		for k, lv := range lti {
			s -= lv * xk[k]
		}
		x[i] = s * c.dinv[i]
	}
	return nil
}

// SolveMatrix solves A X = B column by column, returning X.
func (c *Cholesky) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.Rows() != c.n {
		return nil, fmt.Errorf("cholesky solvematrix rows=%d n=%d: %w", b.Rows(), c.n, ErrDimensionMismatch)
	}
	x := NewMatrix(b.Rows(), b.Cols())
	col := NewVector(c.n)
	out := NewVector(c.n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < b.Rows(); i++ {
			col[i] = b.At(i, j)
		}
		if err := c.Solve(col, out); err != nil {
			return nil, err
		}
		for i := 0; i < b.Rows(); i++ {
			x.Set(i, j, out[i])
		}
	}
	return x, nil
}

// LU holds a row-pivoted LU factorization P·A = L·U.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factorizes the square matrix a with partial pivoting.
// The input is not modified.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("lu of (%dx%d): %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	n := a.Rows()
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	for i := 0; i < n; i++ {
		f.piv[i] = i
		copy(f.lu[i*n:(i+1)*n], a.Row(i))
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot search.
		p, pmax := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, fmt.Errorf("column %d: %w", k, ErrSingular)
		}
		if p != k {
			rk := lu[k*n : (k+1)*n]
			rp := lu[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := lu[i*n:]
			rk := lu[k*n:]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b, writing the result into x. x and b must not alias.
func (f *LU) Solve(b Vector, x Vector) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("lu solve b=%d x=%d n=%d: %w", len(b), len(x), n, ErrDimensionMismatch)
	}
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	lu := f.lu
	// Forward: L y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		ri := lu[i*n:]
		for k := 0; k < i; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s
	}
	// Back: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := lu[i*n:]
		for k := i + 1; k < n; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s / ri[i]
	}
	return nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSPD is a convenience that factorizes a (assumed symmetric positive
// definite) and solves a single system A x = b.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	x := NewVector(len(b))
	if err := c.Solve(b, x); err != nil {
		return nil, err
	}
	return x, nil
}

// LeastSquares solves min_x ||A x - b||₂ via the normal equations with a
// small Tikhonov ridge for robustness. It is intended for the modest,
// well-conditioned regression problems in the AR predictor.
func LeastSquares(a *Matrix, b Vector, ridge float64) (Vector, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("lstsq A=(%dx%d) b=%d: %w", a.Rows(), a.Cols(), len(b), ErrDimensionMismatch)
	}
	if ridge < 0 {
		return nil, fmt.Errorf("lstsq: negative ridge %g", ridge)
	}
	n := a.Cols()
	ata := NewMatrix(n, n)
	w := NewVector(a.Rows())
	w.Fill(1)
	if err := a.AtATWeighted(w, ata); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ata.Inc(i, i, ridge)
	}
	atb := NewVector(n)
	if err := a.MulVecT(b, atb); err != nil {
		return nil, err
	}
	return SolveSPD(ata, atb)
}

package linalg

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
// Negative dimensions are treated as zero.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d cols, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d Vector) *Matrix {
	n := len(d)
	m := NewMatrix(n, n)
	for i, x := range d {
		m.data[i*n+i] = x
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, x float64) { m.data[i*m.cols+j] = x }

// Inc adds x to the (i, j) entry.
func (m *Matrix) Inc(i, j int, x float64) { m.data[i*m.cols+j] += x }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.cols : (i+1)*m.cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero sets all entries to 0.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, x := range ri {
			out.data[j*m.rows+i] = x
		}
	}
	return out
}

// MulVec computes y = M x. The output vector y must have length m.Rows().
func (m *Matrix) MulVec(x Vector, y Vector) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("mulvec (%dx%d)·%d into %d: %w", m.rows, m.cols, len(x), len(y), ErrDimensionMismatch)
	}
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range ri {
			s += a * x[j]
		}
		y[i] = s
	}
	return nil
}

// MulVecBand computes y = M x for a square banded matrix: entries with
// |i−j| > bw are taken to be zero, so the product costs O(n·bw) instead of
// O(n²). bw < 0 (or ≥ n−1) falls back to the dense product.
func (m *Matrix) MulVecBand(bw int, x Vector, y Vector) error {
	if m.rows != m.cols || bw < 0 || bw >= m.rows-1 {
		return m.MulVec(x, y)
	}
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("mulvecband (%dx%d)·%d into %d: %w", m.rows, m.cols, len(x), len(y), ErrDimensionMismatch)
	}
	n := m.rows
	for i := 0; i < n; i++ {
		lo, hi := i-bw, i+bw
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		ri := m.data[i*n:]
		var s float64
		for j := lo; j <= hi; j++ {
			s += ri[j] * x[j]
		}
		y[i] = s
	}
	return nil
}

// MulVecT computes y = Mᵀ x without forming the transpose.
// The output y must have length m.Cols() and x length m.Rows().
func (m *Matrix) MulVecT(x Vector, y Vector) error {
	if len(x) != m.rows || len(y) != m.cols {
		return fmt.Errorf("mulvecT (%dx%d)ᵀ·%d into %d: %w", m.rows, m.cols, len(x), len(y), ErrDimensionMismatch)
	}
	y.Zero()
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range ri {
			y[j] += a * xi
		}
	}
	return nil
}

// Mul returns A·B as a new matrix.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("mul (%dx%d)·(%dx%d): %w", a.rows, a.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.data[i*a.cols : (i+1)*a.cols]
		or := out.data[i*out.cols : (i+1)*out.cols]
		for k, aik := range ar {
			if aik == 0 {
				continue
			}
			br := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range br {
				or[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// AddScaled computes m += alpha*other elementwise in place.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) error {
	if m.rows != other.rows || m.cols != other.cols {
		return fmt.Errorf("addscaled (%dx%d)+(%dx%d): %w", m.rows, m.cols, other.rows, other.cols, ErrDimensionMismatch)
	}
	for i := range m.data {
		m.data[i] += alpha * other.data[i]
	}
	return nil
}

// AddDiag adds d[i] to the i-th diagonal entry of the square matrix m.
func (m *Matrix) AddDiag(d Vector) error {
	if m.rows != m.cols || len(d) != m.rows {
		return fmt.Errorf("adddiag %d onto (%dx%d): %w", len(d), m.rows, m.cols, ErrDimensionMismatch)
	}
	for i, x := range d {
		m.data[i*m.cols+i] += x
	}
	return nil
}

// AtATWeighted accumulates into dst the product Gᵀ·diag(w)·G, where G is m.
// dst must be square with size m.Cols(). Existing contents of dst are kept
// (the product is added), enabling Q + GᵀWG assembly without temporaries.
func (m *Matrix) AtATWeighted(w Vector, dst *Matrix) error {
	if len(w) != m.rows || dst.rows != m.cols || dst.cols != m.cols {
		return fmt.Errorf("gtwg (%dx%d), w=%d, dst=(%dx%d): %w",
			m.rows, m.cols, len(w), dst.rows, dst.cols, ErrDimensionMismatch)
	}
	n := m.cols
	for r := 0; r < m.rows; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		row := m.data[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			gi := row[i]
			if gi == 0 {
				continue
			}
			f := wr * gi
			di := dst.data[i*n : (i+1)*n]
			// Only the upper triangle is accumulated; mirrored below.
			for j := i; j < n; j++ {
				di[j] += f * row[j]
			}
		}
	}
	// Mirror upper triangle to lower.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dst.data[j*n+i] = dst.data[i*n+j]
		}
	}
	return nil
}

// AtATWeightedBand accumulates Gᵀ·diag(w)·G into packed band storage. A
// dense G generally fills the whole triangle, so dst's band must be full
// (n−1) unless the caller knows the product is narrower; entries falling
// outside the band are an error, surfaced per offending pair.
func (m *Matrix) AtATWeightedBand(w Vector, dst *BandMatrix) error {
	if len(w) != m.rows || dst.N() != m.cols {
		return fmt.Errorf("gtwg band (%dx%d), w=%d, dst n=%d: %w",
			m.rows, m.cols, len(w), dst.N(), ErrDimensionMismatch)
	}
	n := m.cols
	bw := dst.Bandwidth()
	for r := 0; r < m.rows; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		row := m.data[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			f := wr * row[i]
			if f == 0 {
				continue
			}
			lo := i - bw
			if lo < 0 {
				lo = 0
			}
			for j := 0; j < lo; j++ {
				if row[j] != 0 {
					return fmt.Errorf("gtwg band: entry (%d,%d) outside band %d: %w",
						i, j, bw, ErrDimensionMismatch)
				}
			}
			di := dst.Row(i)
			for j := lo; j <= i; j++ {
				di[j-i+bw] += f * row[j]
			}
		}
	}
	return nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

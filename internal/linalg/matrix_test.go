package linalg

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]float64{{1}, {2, 3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged rows err = %v", err)
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("empty: %v rows=%d", err, empty.Rows())
	}
}

func TestNewMatrixNegativeDims(t *testing.T) {
	m := NewMatrix(-3, -4)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Errorf("negative dims gave %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d,%d] = %g", i, j, id.At(i, j))
			}
		}
	}
	d := Diag(VectorOf(5, 7))
	if d.At(0, 0) != 5 || d.At(1, 1) != 7 || d.At(0, 1) != 0 {
		t.Errorf("Diag wrong: %v", d)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := NewVector(3)
	if err := m.MulVec(VectorOf(1, 1), y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 || y[2] != 11 {
		t.Errorf("MulVec = %v", y)
	}
	yt := NewVector(2)
	if err := m.MulVecT(VectorOf(1, 1, 1), yt); err != nil {
		t.Fatal(err)
	}
	if yt[0] != 9 || yt[1] != 12 {
		t.Errorf("MulVecT = %v", yt)
	}
	if err := m.MulVec(VectorOf(1), y); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVec mismatch err = %v", err)
	}
	if err := m.MulVecT(VectorOf(1), yt); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVecT mismatch err = %v", err)
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 1}, {4, 3}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d,%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := Mul(a, NewMatrix(3, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Mul mismatch err = %v", err)
	}
}

func TestMatrixTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 4, 7)
	mt := m.T()
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
	mtt := mt.T()
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			if m.At(i, j) != mtt.At(i, j) {
				t.Fatal("double transpose not identity")
			}
		}
	}
}

func TestMatrixAddScaledAndDiag(t *testing.T) {
	a := Identity(2)
	b := Identity(2)
	if err := a.AddScaled(3, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 {
		t.Errorf("AddScaled diag = %g, want 4", a.At(0, 0))
	}
	if err := a.AddDiag(VectorOf(1, 2)); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 1) != 6 {
		t.Errorf("AddDiag = %g, want 6", a.At(1, 1))
	}
	if err := a.AddScaled(1, NewMatrix(3, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddScaled mismatch err = %v", err)
	}
	if err := a.AddDiag(VectorOf(1)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddDiag mismatch err = %v", err)
	}
}

// AtATWeighted must agree with the naive Gᵀ·diag(w)·G computation.
func TestAtATWeightedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		g := randMatrix(rng, rows, cols)
		w := NewVector(rows)
		for i := range w {
			w[i] = rng.Float64() * 3
		}
		got := NewMatrix(cols, cols)
		if err := g.AtATWeighted(w, got); err != nil {
			t.Fatal(err)
		}
		wg, err := Mul(Diag(w), g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Mul(g.T(), wg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				if !almostEqual(got.At(i, j), want.At(i, j), 1e-10) {
					t.Fatalf("trial %d: (%d,%d) got %g want %g",
						trial, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestAtATWeightedAccumulates(t *testing.T) {
	g := Identity(2)
	dst := Diag(VectorOf(10, 10))
	w := VectorOf(1, 1)
	if err := g.AtATWeighted(w, dst); err != nil {
		t.Fatal(err)
	}
	if dst.At(0, 0) != 11 {
		t.Errorf("accumulation lost existing contents: %g", dst.At(0, 0))
	}
}

func TestMatrixString(t *testing.T) {
	m := Identity(2)
	s := m.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "\n") {
		t.Errorf("String output unexpected: %q", s)
	}
}

// Property: (A·B)x == A·(B·x) for compatible shapes.
func TestQuickMulAssociatesWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		x := NewVector(n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		lhs := NewVector(m)
		if err := ab.MulVec(x, lhs); err != nil {
			return false
		}
		bx := NewVector(k)
		if err := b.MulVec(x, bx); err != nil {
			return false
		}
		rhs := NewVector(m)
		if err := a.MulVec(bx, rhs); err != nil {
			return false
		}
		diff := NewVector(m)
		if err := diff.Sub(lhs, rhs); err != nil {
			return false
		}
		return diff.NormInf() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

package linalg

// Fused, manually unrolled kernels for the interior-point hot loops. The
// 4-way unrolling gives the compiler independent accumulation chains (one
// FMA dependency chain per lane instead of one for the whole loop), which
// is worth 1.5–2× on the dot-product-shaped inner loops of the band
// factorization and triangular solves. All kernels are allocation-free;
// BenchmarkKernels proves it with b.ReportAllocs.

// DotProd returns xᵀy over the first min(len(x), len(y)) entries with
// four independent accumulators. Callers pass equal-length slices; the
// min-length contract exists so slicing bugs surface as wrong answers in
// tests rather than panics in the solver's innermost loop.
func DotProd(x, y []float64) float64 {
	if len(y) < len(x) {
		x = x[:len(y)]
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		yv := y[i : i+4 : i+4]
		s0 += x[i] * yv[0]
		s1 += x[i+1] * yv[1]
		s2 += x[i+2] * yv[2]
		s3 += x[i+3] * yv[3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha·x, 4-way unrolled. Lengths must match (the
// slice bound enforces it).
func Axpy(alpha float64, x, y []float64) {
	x = x[:len(y)]
	i := 0
	for ; i+4 <= len(y); i += 4 {
		xv := x[i : i+4 : i+4]
		y[i] += alpha * xv[0]
		y[i+1] += alpha * xv[1]
		y[i+2] += alpha * xv[2]
		y[i+3] += alpha * xv[3]
	}
	for ; i < len(y); i++ {
		y[i] += alpha * x[i]
	}
}

// panelFwdStep eliminates row i of the forward substitution L·Y = B for
// every column of a column-major panel: for each column x,
// x[i] = (x[i] − Σ_k lv[k]·x[lo+k]) · dinv, with lv the packed band of row
// i (k ascending — the same association BandCholesky.Solve uses, so each
// column is bit-identical to a scalar solve). Columns are processed four
// at a time so the band loads of row i are amortized across the panel and
// the compiler gets four independent accumulation chains.
func panelFwdStep(xs []float64, stride, i, lo int, lv []float64, dinv float64, ncols int) {
	c := 0
	for ; c+4 <= ncols; c += 4 {
		x0 := xs[c*stride : (c+1)*stride]
		x1 := xs[(c+1)*stride : (c+2)*stride]
		x2 := xs[(c+2)*stride : (c+3)*stride]
		x3 := xs[(c+3)*stride : (c+4)*stride]
		s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
		for k, v := range lv {
			s0 -= v * x0[lo+k]
			s1 -= v * x1[lo+k]
			s2 -= v * x2[lo+k]
			s3 -= v * x3[lo+k]
		}
		x0[i] = s0 * dinv
		x1[i] = s1 * dinv
		x2[i] = s2 * dinv
		x3[i] = s3 * dinv
	}
	for ; c < ncols; c++ {
		x := xs[c*stride : (c+1)*stride]
		s := x[i]
		for k, v := range lv {
			s -= v * x[lo+k]
		}
		x[i] = s * dinv
	}
}

// panelBackStep eliminates row i of the back substitution Lᵀ·X = Y for a
// column-major panel, reading column i of L directly from the packed
// factor (the small-factor path of BandCholesky.Solve): for each column x,
// x[i] = (x[i] − Σ_{k=i+1..hi} L[k][i]·x[k]) · dinv, k ascending.
func panelBackStep(xs []float64, stride, i, hi, w1, bw int, l []float64, dinv float64, ncols int) {
	c := 0
	for ; c+4 <= ncols; c += 4 {
		x0 := xs[c*stride : (c+1)*stride]
		x1 := xs[(c+1)*stride : (c+2)*stride]
		x2 := xs[(c+2)*stride : (c+3)*stride]
		x3 := xs[(c+3)*stride : (c+4)*stride]
		s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
		for k := i + 1; k <= hi; k++ {
			v := l[k*w1+i-k+bw]
			s0 -= v * x0[k]
			s1 -= v * x1[k]
			s2 -= v * x2[k]
			s3 -= v * x3[k]
		}
		x0[i] = s0 * dinv
		x1[i] = s1 * dinv
		x2[i] = s2 * dinv
		x3[i] = s3 * dinv
	}
	for ; c < ncols; c++ {
		x := xs[c*stride : (c+1)*stride]
		s := x[i]
		for k := i + 1; k <= hi; k++ {
			s -= l[k*w1+i-k+bw] * x[k]
		}
		x[i] = s * dinv
	}
}

// panelBackStepLT is panelBackStep off the packed transposed copy (the
// large-factor path): lv holds column i of L below the diagonal
// contiguously, so the inner loop is a unit-stride dot against x[i+1:].
func panelBackStepLT(xs []float64, stride, i int, lv []float64, dinv float64, ncols int) {
	c := 0
	for ; c+4 <= ncols; c += 4 {
		x0 := xs[c*stride : (c+1)*stride]
		x1 := xs[(c+1)*stride : (c+2)*stride]
		x2 := xs[(c+2)*stride : (c+3)*stride]
		x3 := xs[(c+3)*stride : (c+4)*stride]
		s0, s1, s2, s3 := x0[i], x1[i], x2[i], x3[i]
		for k, v := range lv {
			s0 -= v * x0[i+1+k]
			s1 -= v * x1[i+1+k]
			s2 -= v * x2[i+1+k]
			s3 -= v * x3[i+1+k]
		}
		x0[i] = s0 * dinv
		x1[i] = s1 * dinv
		x2[i] = s2 * dinv
		x3[i] = s3 * dinv
	}
	for ; c < ncols; c++ {
		x := xs[c*stride : (c+1)*stride]
		s := x[i]
		for k, v := range lv {
			s -= v * x[i+1+k]
		}
		x[i] = s * dinv
	}
}

// ScaledAdd computes dst = a + alpha·b in one fused pass (no intermediate
// copy), 4-way unrolled. dst may alias a or b.
func ScaledAdd(dst, a []float64, alpha float64, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		av := a[i : i+4 : i+4]
		bv := b[i : i+4 : i+4]
		dst[i] = av[0] + alpha*bv[0]
		dst[i+1] = av[1] + alpha*bv[1]
		dst[i+2] = av[2] + alpha*bv[2]
		dst[i+3] = av[3] + alpha*bv[3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + alpha*b[i]
	}
}

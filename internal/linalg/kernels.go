package linalg

// Fused, manually unrolled kernels for the interior-point hot loops. The
// 4-way unrolling gives the compiler independent accumulation chains (one
// FMA dependency chain per lane instead of one for the whole loop), which
// is worth 1.5–2× on the dot-product-shaped inner loops of the band
// factorization and triangular solves. All kernels are allocation-free;
// BenchmarkKernels proves it with b.ReportAllocs.

// DotProd returns xᵀy over the first min(len(x), len(y)) entries with
// four independent accumulators. Callers pass equal-length slices; the
// min-length contract exists so slicing bugs surface as wrong answers in
// tests rather than panics in the solver's innermost loop.
func DotProd(x, y []float64) float64 {
	if len(y) < len(x) {
		x = x[:len(y)]
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		yv := y[i : i+4 : i+4]
		s0 += x[i] * yv[0]
		s1 += x[i+1] * yv[1]
		s2 += x[i+2] * yv[2]
		s3 += x[i+3] * yv[3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha·x, 4-way unrolled. Lengths must match (the
// slice bound enforces it).
func Axpy(alpha float64, x, y []float64) {
	x = x[:len(y)]
	i := 0
	for ; i+4 <= len(y); i += 4 {
		xv := x[i : i+4 : i+4]
		y[i] += alpha * xv[0]
		y[i+1] += alpha * xv[1]
		y[i+2] += alpha * xv[2]
		y[i+3] += alpha * xv[3]
	}
	for ; i < len(y); i++ {
		y[i] += alpha * x[i]
	}
}

// ScaledAdd computes dst = a + alpha·b in one fused pass (no intermediate
// copy), 4-way unrolled. dst may alias a or b.
func ScaledAdd(dst, a []float64, alpha float64, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		av := a[i : i+4 : i+4]
		bv := b[i : i+4 : i+4]
		dst[i] = av[0] + alpha*bv[0]
		dst[i+1] = av[1] + alpha*bv[1]
		dst[i+2] = av[2] + alpha*bv[2]
		dst[i+3] = av[3] + alpha*bv[3]
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] + alpha*b[i]
	}
}

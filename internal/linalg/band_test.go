package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randBandSPD builds a random symmetric positive-definite matrix with the
// given half-bandwidth, returned both dense and packed.
func randBandSPD(rng *rand.Rand, n, bw int) (*Matrix, *BandMatrix) {
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			v := rng.NormFloat64()
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
		// Diagonal dominance keeps it SPD for any band content.
		d.Set(i, i, float64(2*bw+2)+rng.Float64())
	}
	b := NewBandMatrix(n, bw)
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			if err := b.Set(i, j, d.At(i, j)); err != nil {
				panic(err)
			}
		}
	}
	return d, b
}

func TestBandMatrixAccessors(t *testing.T) {
	b := NewBandMatrix(5, 2)
	if err := b.Set(3, 1, 7); err != nil {
		t.Fatal(err)
	}
	if got := b.At(3, 1); got != 7 {
		t.Fatalf("At(3,1) = %g, want 7", got)
	}
	if got := b.At(1, 3); got != 7 {
		t.Fatalf("symmetric At(1,3) = %g, want 7", got)
	}
	if got := b.At(0, 4); got != 0 {
		t.Fatalf("out-of-band At(0,4) = %g, want 0", got)
	}
	if err := b.Set(0, 4, 1); err == nil {
		t.Fatal("Set outside the band should fail")
	}
	if err := b.Inc(3, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := b.At(3, 1); got != 8 {
		t.Fatalf("after Inc At(3,1) = %g, want 8", got)
	}
	b.AddDiag(2)
	if got := b.At(2, 2); got != 2 {
		t.Fatalf("after AddDiag At(2,2) = %g, want 2", got)
	}
}

// TestBandCholeskyMatchesDense cross-checks the packed band factorization
// against the dense Cholesky across shapes, including bw=0 (diagonal),
// bw=n−1 (effectively dense), and rectangular-ish tall bands.
func TestBandCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sz := range []struct{ n, bw int }{
		{1, 0}, {2, 1}, {5, 0}, {5, 2}, {8, 7}, {17, 3}, {40, 6}, {60, 59},
	} {
		t.Run(fmt.Sprintf("n%d_bw%d", sz.n, sz.bw), func(t *testing.T) {
			d, b := randBandSPD(rng, sz.n, sz.bw)
			dense, err := NewCholesky(d)
			if err != nil {
				t.Fatal(err)
			}
			var band BandCholesky
			band.Symbolic(sz.n, sz.bw)
			if err := band.Factorize(b); err != nil {
				t.Fatal(err)
			}
			rhs := NewVector(sz.n)
			for i := range rhs {
				rhs[i] = rng.NormFloat64()
			}
			want := NewVector(sz.n)
			if err := dense.Solve(rhs, want); err != nil {
				t.Fatal(err)
			}
			got := NewVector(sz.n)
			if err := band.Solve(rhs, got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("x[%d]: band %g vs dense %g", i, got[i], want[i])
				}
			}
		})
	}
}

// TestBandCholeskyReuse refactorizes the same BandCholesky across shapes
// and values: the symbolic/numeric split must stay correct when the shape
// shrinks (buffers are reused) and when values change in place.
func TestBandCholeskyReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var c BandCholesky
	for _, sz := range []struct{ n, bw int }{{30, 5}, {12, 2}, {30, 5}, {7, 6}} {
		d, b := randBandSPD(rng, sz.n, sz.bw)
		c.Symbolic(sz.n, sz.bw)
		if err := c.Factorize(b); err != nil {
			t.Fatal(err)
		}
		rhs := NewVector(sz.n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := NewVector(sz.n)
		if err := c.Solve(rhs, x); err != nil {
			t.Fatal(err)
		}
		// Verify A x = rhs directly.
		ax := NewVector(sz.n)
		if err := d.MulVec(x, ax); err != nil {
			t.Fatal(err)
		}
		for i := range ax {
			if math.Abs(ax[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
				t.Fatalf("n=%d bw=%d: (Ax)[%d] = %g, want %g", sz.n, sz.bw, i, ax[i], rhs[i])
			}
		}
	}
}

func TestBandCholeskyNotPositiveDefinite(t *testing.T) {
	b := NewBandMatrix(3, 1)
	_ = b.Set(0, 0, 1)
	_ = b.Set(1, 1, -2)
	_ = b.Set(2, 2, 1)
	var c BandCholesky
	c.Symbolic(3, 1)
	if err := c.Factorize(b); err == nil {
		t.Fatal("factorizing an indefinite matrix should fail")
	}
}

// TestBandFactorizeNoAlloc proves the numeric phase and the solves are
// allocation-free after Symbolic.
func TestBandFactorizeNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	_, b := randBandSPD(rng, 64, 8)
	var c BandCholesky
	c.Symbolic(64, 8)
	rhs := NewVector(64)
	x := NewVector(64)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.Factorize(b); err != nil {
			t.Fatal(err)
		}
		if err := c.Solve(rhs, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("numeric factorize+solve allocates %g objects per run, want 0", allocs)
	}
}

func TestBandMatrixCopyLowerBand(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d, _ := randBandSPD(rng, 12, 3)
	b := NewBandMatrix(12, 3)
	// Poison the packed storage so stale entries would be caught.
	for i := range b.data {
		b.data[i] = math.NaN()
	}
	if err := b.CopyLowerBand(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		lo := i - 3
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			if b.At(i, j) != d.At(i, j) {
				t.Fatalf("(%d,%d): packed %g, dense %g", i, j, b.At(i, j), d.At(i, j))
			}
		}
	}
	got := b.ToDense()
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if got.At(i, j) != d.At(i, j) {
				t.Fatalf("ToDense(%d,%d): %g, want %g", i, j, got.At(i, j), d.At(i, j))
			}
		}
	}
}

func TestKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 3, 4, 7, 16, 33} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		var want float64
		for i := range x {
			want += x[i] * y[i]
		}
		if got := DotProd(x, y); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("DotProd n=%d: %g, want %g", n, got, want)
		}

		alpha := 0.37
		wantY := append([]float64(nil), y...)
		for i := range wantY {
			wantY[i] += alpha * x[i]
		}
		gotY := append([]float64(nil), y...)
		Axpy(alpha, x, gotY)
		for i := range wantY {
			if math.Abs(gotY[i]-wantY[i]) > 1e-12 {
				t.Fatalf("Axpy n=%d i=%d: %g, want %g", n, i, gotY[i], wantY[i])
			}
		}

		dst := make([]float64, n)
		ScaledAdd(dst, y, alpha, x)
		for i := range dst {
			if math.Abs(dst[i]-wantY[i]) > 1e-12 {
				t.Fatalf("ScaledAdd n=%d i=%d: %g, want %g", n, i, dst[i], wantY[i])
			}
		}
		// Aliased forms.
		alias := append([]float64(nil), y...)
		ScaledAdd(alias, alias, alpha, x)
		for i := range alias {
			if math.Abs(alias[i]-wantY[i]) > 1e-12 {
				t.Fatalf("aliased ScaledAdd n=%d i=%d: %g, want %g", n, i, alias[i], wantY[i])
			}
		}
	}
}

// BenchmarkKernels covers the fused kernels with allocation reporting:
// the hot loops of the solver must not allocate.
func BenchmarkKernels(b *testing.B) {
	const n = 256
	x := make([]float64, n)
	y := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
		y[i] = float64(i%5) - 2
	}
	b.Run("DotProd", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += DotProd(x, y)
		}
		_ = s
	})
	b.Run("Axpy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Axpy(1e-9, x, y)
		}
	})
	b.Run("ScaledAdd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScaledAdd(dst, x, 0.5, y)
		}
	})
}

// BenchmarkBandCholesky measures the numeric refactorization + solve at
// horizon-QP-like shapes, with allocation reporting (must be zero).
func BenchmarkBandCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	for _, sz := range []struct{ n, bw int }{{48, 4}, {96, 8}, {240, 16}} {
		_, bm := randBandSPD(rng, sz.n, sz.bw)
		var c BandCholesky
		c.Symbolic(sz.n, sz.bw)
		rhs := NewVector(sz.n)
		x := NewVector(sz.n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		b.Run(fmt.Sprintf("n%d_bw%d", sz.n, sz.bw), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Factorize(bm); err != nil {
					b.Fatal(err)
				}
				if err := c.Solve(rhs, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

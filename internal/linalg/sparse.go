package linalg

import (
	"fmt"
	"sort"
)

// Operator is the read-only matrix contract the QP solver needs from a
// constraint matrix: shape, element access, products with vectors, and the
// weighted Gram product AᵀDA that dominates KKT assembly. Both the dense
// *Matrix and the CSR *SparseMatrix implement it, so callers pick the
// representation that matches their constraint structure.
type Operator interface {
	Rows() int
	Cols() int
	At(i, j int) float64
	MulVec(x Vector, y Vector) error
	MulVecT(x Vector, y Vector) error
	AtATWeighted(w Vector, dst *Matrix) error
	// AtATWeightedBand accumulates AᵀDA directly into packed band storage,
	// the zero-allocation KKT assembly path of the QP solver. The product
	// must fit the band: dst.Bandwidth() ≥ GramBandwidth (callers size dst
	// from the structure cache, so this holds by construction).
	AtATWeightedBand(w Vector, dst *BandMatrix) error
}

var (
	_ Operator = (*Matrix)(nil)
	_ Operator = (*SparseMatrix)(nil)
)

// SparseMatrix is an immutable compressed-sparse-row (CSR) matrix. Rows
// with few nonzeros — such as the prefix-sum constraint rows of the
// horizon QP, which touch at most e·(t+1) of the e·W columns — make its
// products nnz-proportional instead of dimension-proportional.
type SparseMatrix struct {
	rows, cols int
	rowPtr     []int // len rows+1; row i occupies [rowPtr[i], rowPtr[i+1])
	colIdx     []int
	vals       []float64
	// CSC mirror, built once on Build: transpose products then gather
	// along contiguous column runs (accumulating in a register) instead of
	// scattering read-modify-writes across the output.
	colPtr  []int // len cols+1; column j occupies [colPtr[j], colPtr[j+1])
	rowIdxT []int
	valsT   []float64
	gramBW  int // cached GramBandwidth
}

// SparseBuilder assembles a SparseMatrix row by row. Entries within a row
// may be added in any column order (they are sorted on Build); adding the
// same column twice within a row is an error surfaced by Build.
type SparseBuilder struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
	err        error
}

// NewSparseBuilder starts a builder for a rows×cols matrix. nnzHint
// preallocates entry storage (0 is fine).
func NewSparseBuilder(rows, cols, nnzHint int) *SparseBuilder {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	if nnzHint < 0 {
		nnzHint = 0
	}
	return &SparseBuilder{
		rows:   rows,
		cols:   cols,
		rowPtr: append(make([]int, 0, rows+1), 0),
		colIdx: make([]int, 0, nnzHint),
		vals:   make([]float64, 0, nnzHint),
	}
}

// StartRow finishes the current row and begins the next. Every row must be
// started, in order, before Build; rows may be empty.
func (b *SparseBuilder) StartRow() {
	if len(b.rowPtr) > b.rows {
		b.setErr(fmt.Errorf("row %d of %d: %w", len(b.rowPtr), b.rows, ErrDimensionMismatch))
		return
	}
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// Add appends a nonzero entry to the current row. Zero values are kept
// (callers filter if they care); out-of-range columns fail the Build.
func (b *SparseBuilder) Add(col int, v float64) {
	if len(b.rowPtr) < 2 {
		b.setErr(fmt.Errorf("entry before first StartRow: %w", ErrDimensionMismatch))
		return
	}
	if col < 0 || col >= b.cols {
		b.setErr(fmt.Errorf("column %d of %d: %w", col, b.cols, ErrDimensionMismatch))
		return
	}
	b.colIdx = append(b.colIdx, col)
	b.vals = append(b.vals, v)
	b.rowPtr[len(b.rowPtr)-1] = len(b.colIdx)
}

func (b *SparseBuilder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the matrix: all rows must have been started, entries are
// sorted by column within each row, and duplicate columns are rejected.
func (b *SparseBuilder) Build() (*SparseMatrix, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.rowPtr) != b.rows+1 {
		return nil, fmt.Errorf("built %d of %d rows: %w", len(b.rowPtr)-1, b.rows, ErrDimensionMismatch)
	}
	m := &SparseMatrix{rows: b.rows, cols: b.cols, rowPtr: b.rowPtr, colIdx: b.colIdx, vals: b.vals}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		cols := m.colIdx[lo:hi]
		vals := m.vals[lo:hi]
		if !sort.IntsAreSorted(cols) {
			sort.Sort(&rowSorter{cols: cols, vals: vals})
		}
		for k := 1; k < len(cols); k++ {
			if cols[k] == cols[k-1] {
				return nil, fmt.Errorf("row %d has duplicate column %d: %w", i, cols[k], ErrDimensionMismatch)
			}
		}
		if n := hi - lo; n > 0 {
			if d := cols[n-1] - cols[0]; d > m.gramBW {
				m.gramBW = d
			}
		}
	}
	// CSC mirror via counting sort; rows within a column come out ascending.
	nnz := len(m.vals)
	m.colPtr = make([]int, m.cols+1)
	for _, c := range m.colIdx {
		m.colPtr[c+1]++
	}
	for j := 0; j < m.cols; j++ {
		m.colPtr[j+1] += m.colPtr[j]
	}
	m.rowIdxT = make([]int, nnz)
	m.valsT = make([]float64, nnz)
	next := append([]int(nil), m.colPtr...)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			p := next[m.colIdx[k]]
			m.rowIdxT[p] = i
			m.valsT[p] = m.vals[k]
			next[m.colIdx[k]]++
		}
	}
	return m, nil
}

type rowSorter struct {
	cols []int
	vals []float64
}

func (r *rowSorter) Len() int           { return len(r.cols) }
func (r *rowSorter) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r *rowSorter) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// SparseFromDense converts a dense matrix, dropping exact zeros.
func SparseFromDense(d *Matrix) *SparseMatrix {
	b := NewSparseBuilder(d.Rows(), d.Cols(), 0)
	for i := 0; i < d.Rows(); i++ {
		b.StartRow()
		for j := 0; j < d.Cols(); j++ {
			if v := d.At(i, j); v != 0 {
				b.Add(j, v)
			}
		}
	}
	m, err := b.Build()
	if err != nil {
		// Unreachable: the loop above emits every row in order with
		// strictly increasing columns.
		panic(err)
	}
	return m
}

// ToDense materializes the matrix densely (for tests and debugging).
func (m *SparseMatrix) ToDense() *Matrix {
	d := NewMatrix(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// Rows returns the number of rows.
func (m *SparseMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *SparseMatrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *SparseMatrix) NNZ() int { return len(m.vals) }

// At returns the (i, j) entry by binary search within row i.
func (m *SparseMatrix) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.vals[lo+k]
	}
	return 0
}

// MulVec computes y = M x in O(nnz).
func (m *SparseMatrix) MulVec(x Vector, y Vector) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("sparse mulvec (%dx%d)·%d into %d: %w", m.rows, m.cols, len(x), len(y), ErrDimensionMismatch)
	}
	rowPtr, colIdx, vals := m.rowPtr, m.colIdx, m.vals
	for i := range y {
		lo, hi := rowPtr[i], rowPtr[i+1]
		var s float64
		// Constraint rows in the horizon QP carry one or two nonzeros
		// (bound rows and per-period capacity rows); dispatching on the
		// count replaces the slice setup with direct loads. Accumulation
		// order (ascending k) matches the general loop bit for bit.
		switch hi - lo {
		case 1:
			s += vals[lo] * x[colIdx[lo]]
		case 2:
			s += vals[lo] * x[colIdx[lo]]
			s += vals[lo+1] * x[colIdx[lo+1]]
		default:
			for k := lo; k < hi; k++ {
				s += vals[k] * x[colIdx[k]]
			}
		}
		y[i] = s
	}
	return nil
}

// MulVecT computes y = Mᵀ x in O(nnz) off the CSC mirror.
func (m *SparseMatrix) MulVecT(x Vector, y Vector) error {
	if len(x) != m.rows || len(y) != m.cols {
		return fmt.Errorf("sparse mulvecT (%dx%d)ᵀ·%d into %d: %w", m.rows, m.cols, len(x), len(y), ErrDimensionMismatch)
	}
	colPtr, rowIdxT, valsT := m.colPtr, m.rowIdxT, m.valsT
	for j := range y {
		lo, hi := colPtr[j], colPtr[j+1]
		var s float64
		// Columns of the horizon constraint matrix are short too (each
		// variable appears in a handful of rows); same dispatch, same
		// ascending-k accumulation order as the general loop.
		switch hi - lo {
		case 1:
			s += valsT[lo] * x[rowIdxT[lo]]
		case 2:
			s += valsT[lo] * x[rowIdxT[lo]]
			s += valsT[lo+1] * x[rowIdxT[lo+1]]
		default:
			for k := lo; k < hi; k++ {
				s += valsT[k] * x[rowIdxT[k]]
			}
		}
		y[j] = s
	}
	return nil
}

// AtATWeighted accumulates Gᵀ·diag(w)·G into dst in O(Σᵢ nnzᵢ²) — each
// row contributes only the outer product of its own nonzeros, instead of
// the O(nnz·n) a dense row scan costs. As in the dense method the upper
// triangle is accumulated and mirrored to the lower, but only within the
// Gram band (see GramBandwidth) — all accumulation lands there, so
// entries farther from the diagonal are left untouched and dst must be
// symmetric outside the band for the result to be symmetric.
func (m *SparseMatrix) AtATWeighted(w Vector, dst *Matrix) error {
	if len(w) != m.rows || dst.Rows() != m.cols || dst.Cols() != m.cols {
		return fmt.Errorf("sparse gtwg (%dx%d), w=%d, dst=(%dx%d): %w",
			m.rows, m.cols, len(w), dst.Rows(), dst.Cols(), ErrDimensionMismatch)
	}
	n := m.cols
	for r := 0; r < m.rows; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		cols := m.colIdx[lo:hi]
		vals := m.vals[lo:hi]
		for a, ci := range cols {
			f := wr * vals[a]
			if f == 0 {
				continue
			}
			di := dst.data[ci*n:]
			// Columns are sorted, so b ≥ a stays in the upper triangle.
			for bIdx := a; bIdx < len(cols); bIdx++ {
				di[cols[bIdx]] += f * vals[bIdx]
			}
		}
	}
	bw := m.GramBandwidth()
	for i := 0; i < n; i++ {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		for j := i + 1; j <= hi; j++ {
			dst.data[j*n+i] = dst.data[i*n+j]
		}
	}
	return nil
}

// AtATWeightedBand accumulates Gᵀ·diag(w)·G into the packed band matrix
// dst in O(Σᵢ nnzᵢ²), writing only the lower band (dst is symmetric by
// representation, so no mirroring pass is needed). Every product entry
// lands within GramBandwidth of the diagonal; dst's band must cover it.
func (m *SparseMatrix) AtATWeightedBand(w Vector, dst *BandMatrix) error {
	if len(w) != m.rows || dst.N() != m.cols {
		return fmt.Errorf("sparse gtwg band (%dx%d), w=%d, dst n=%d: %w",
			m.rows, m.cols, len(w), dst.N(), ErrDimensionMismatch)
	}
	bw := dst.Bandwidth()
	if m.gramBW > bw {
		return fmt.Errorf("sparse gtwg band: gram bandwidth %d exceeds dst band %d: %w",
			m.gramBW, bw, ErrDimensionMismatch)
	}
	dd := dst.data
	for r := 0; r < m.rows; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		lo, hi := m.rowPtr[r], m.rowPtr[r+1]
		// Short rows — the dominant case in the horizon QP's constraint
		// blocks — skip the slice setup and loop machinery entirely. The
		// f == 0 guards and the update order match the general path, so the
		// accumulated band is bit-identical.
		if hi-lo == 1 {
			c0, v0 := m.colIdx[lo], m.vals[lo]
			if f := wr * v0; f != 0 {
				dd[c0*bw+bw+c0] += f * v0
			}
			continue
		}
		if hi-lo == 2 {
			c0, v0 := m.colIdx[lo], m.vals[lo]
			c1, v1 := m.colIdx[lo+1], m.vals[lo+1]
			if f := wr * v0; f != 0 {
				dd[c0*bw+bw+c0] += f * v0
			}
			if f := wr * v1; f != 0 {
				base := c1*bw + bw
				dd[base+c0] += f * v0
				dd[base+c1] += f * v1
			}
			continue
		}
		cols := m.colIdx[lo:hi]
		vals := m.vals[lo:hi]
		// Columns are sorted: fix the larger index cj = cols[b] (the band
		// row) and sweep the smaller ones, so each inner loop writes one
		// contiguous run of the packed row — addressed directly into the
		// packed storage (entry (cj, ca) lives at cj·bw + bw + ca).
		for b, cj := range cols {
			f := wr * vals[b]
			if f == 0 {
				continue
			}
			base := cj*bw + bw
			for a := 0; a <= b; a++ {
				dd[base+cols[a]] += f * vals[a]
			}
		}
	}
	return nil
}

// RowWindow densifies row i over its column window into buf: start is the
// row's first nonzero column and vals covers columns [start, start+len(vals))
// with explicit zeros at the gaps. An empty row returns ok with an empty
// window; a row whose span exceeds len(buf) returns !ok. This is the shape
// BandCholesky's rank-1 updates consume — a contiguous window no wider than
// the band — which is why the QP session's update tier reads rows this way.
func (m *SparseMatrix) RowWindow(i int, buf []float64) (start int, vals []float64, ok bool) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	if lo == hi {
		return 0, buf[:0], true
	}
	cols := m.colIdx[lo:hi]
	first := cols[0]
	span := cols[len(cols)-1] - first + 1
	if span > len(buf) {
		return 0, nil, false
	}
	vals = buf[:span]
	for k := range vals {
		vals[k] = 0
	}
	rv := m.vals[lo:hi]
	for k, c := range cols {
		vals[c-first] = rv[k]
	}
	return first, vals, true
}

// GramBandwidth returns the half-bandwidth of the weighted Gram product
// AᵀDA for any diagonal D: the widest column spread of any row (columns
// i and j only meet in the Gram matrix when some row holds both). Rows
// confined to narrow column blocks — the state-space horizon QP — yield
// a banded Gram matrix, which the QP solver factorizes in O(n·bw²).
func (m *SparseMatrix) GramBandwidth() int { return m.gramBW }

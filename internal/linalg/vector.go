// Package linalg provides the dense linear-algebra kernels used by the
// DSPP reproduction: vectors, column-major-free dense matrices, Cholesky
// and LU factorizations, and triangular solves.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement: it implements exactly what the interior-point
// QP solver (package qp) and the AR predictor (package predict) need, with
// clear error reporting instead of panics on dimension mismatches in the
// exported API.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector backed by a []float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorOf returns a vector holding a copy of the given values.
func VectorOf(vals ...float64) Vector {
	v := make(Vector, len(vals))
	copy(v, vals)
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Len returns the number of entries.
func (v Vector) Len() int { return len(v) }

// Fill sets every entry of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every entry of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) error {
	if len(v) != len(src) {
		return fmt.Errorf("copy %d from %d: %w", len(v), len(src), ErrDimensionMismatch)
	}
	copy(v, src)
	return nil
}

// Add stores a+b into v. All lengths must match.
func (v Vector) Add(a, b Vector) error {
	if len(a) != len(b) || len(v) != len(a) {
		return fmt.Errorf("add %d+%d into %d: %w", len(a), len(b), len(v), ErrDimensionMismatch)
	}
	for i := range v {
		v[i] = a[i] + b[i]
	}
	return nil
}

// Sub stores a-b into v. All lengths must match.
func (v Vector) Sub(a, b Vector) error {
	if len(a) != len(b) || len(v) != len(a) {
		return fmt.Errorf("sub %d-%d into %d: %w", len(a), len(b), len(v), ErrDimensionMismatch)
	}
	for i := range v {
		v[i] = a[i] - b[i]
	}
	return nil
}

// AXPY computes v += alpha*x in place.
func (v Vector) AXPY(alpha float64, x Vector) error {
	if len(v) != len(x) {
		return fmt.Errorf("axpy %d into %d: %w", len(x), len(v), ErrDimensionMismatch)
	}
	for i := range v {
		v[i] += alpha * x[i]
	}
	return nil
}

// Scale multiplies every entry of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dot %d·%d: %w", len(a), len(b), ErrDimensionMismatch)
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func (v Vector) Norm2() float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Min returns the smallest entry of v. It returns +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest entry of v. It returns -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// HasNaN reports whether any entry is NaN or infinite.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

package profiling

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"dspp/internal/telemetry"
)

// Serve starts the shared ops endpoint on addr: the telemetry registry in
// Prometheus text format on /metrics, the per-period cost-attribution
// ring as JSON on /statusz, the expvar JSON dump (including the registry
// snapshot as dspp_metrics) on /debug/vars, and the full net/http/pprof
// suite under /debug/pprof/ — one mux, one flag, for every CLI. addr may
// use port 0 to pick a free port; the actual listen address is returned.
// The server runs until stop is called.
func Serve(addr string, h *telemetry.Hub) (listenAddr string, stop func() error, err error) {
	reg := h.Registry()
	telemetry.PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/statusz", telemetry.StatuszHandler(h))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}, nil
}

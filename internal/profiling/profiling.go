// Package profiling wires the standard runtime/pprof file outputs behind
// the -cpuprofile/-memprofile flags shared by the command-line tools.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile. The returned
// stop function must be called exactly once (typically deferred from
// main) — it stops the CPU profile and writes the heap snapshot.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

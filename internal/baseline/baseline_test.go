package baseline

import (
	"errors"
	"math"
	"testing"

	"dspp/internal/core"
	"dspp/internal/qp"
)

func twoDCInstance(t *testing.T, caps []float64) *core.Instance {
	t.Helper()
	inst, err := core.NewInstance(core.Config{
		SLA:             [][]float64{{0.01, 0.02}, {0.02, 0.01}},
		ReconfigWeights: []float64{1e-3, 1e-3},
		Capacities:      caps,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func forecast(w int, vals []float64) [][]float64 {
	out := make([][]float64, w)
	for i := range out {
		out[i] = append([]float64(nil), vals...)
	}
	return out
}

func TestGreedyNearestRoutesToLowestA(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	g, err := NewGreedyNearest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "greedy-nearest" {
		t.Errorf("Name = %q", g.Name())
	}
	applied, state, err := g.Step(forecast(1, []float64{1000, 2000}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Location 0 → DC0 (a=0.01): 10 servers; location 1 → DC1: 20.
	if math.Abs(state[0][0]-10) > 1e-9 || math.Abs(state[1][1]-20) > 1e-9 {
		t.Errorf("state = %v", state)
	}
	if state[0][1] != 0 || state[1][0] != 0 {
		t.Errorf("leakage to distant DCs: %v", state)
	}
	if math.Abs(applied[0][0]-10) > 1e-9 {
		t.Errorf("applied = %v", applied)
	}
	// Internal state advanced.
	if g.State()[0][0] != state[0][0] {
		t.Error("State() mismatch")
	}
}

func TestGreedyNearestSpillsOnCapacity(t *testing.T) {
	inst := twoDCInstance(t, []float64{5, math.Inf(1)})
	g, err := NewGreedyNearest(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Location 0 needs 10 servers at DC0 but only 5 fit; the rest go to
	// DC1 at a=0.02.
	_, state, err := g.Step(forecast(1, []float64{1000, 0}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0][0]-5) > 1e-9 {
		t.Errorf("DC0 = %g, want 5", state[0][0])
	}
	// Remaining 500 req/s at a=0.02 → 10 servers.
	if math.Abs(state[1][0]-10) > 1e-9 {
		t.Errorf("DC1 = %g, want 10", state[1][0])
	}
	slack, err := inst.DemandSlack(state, []float64{1000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if slack[0] < -1e-9 {
		t.Errorf("demand unmet: slack %g", slack[0])
	}
}

func TestGreedyNearestErrors(t *testing.T) {
	if _, err := NewGreedyNearest(nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inst err = %v", err)
	}
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	g, _ := NewGreedyNearest(inst)
	if _, _, err := g.Step(nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty forecast err = %v", err)
	}
	if _, _, err := g.Step(forecast(1, []float64{1}), forecast(1, []float64{1, 1})); !errors.Is(err, ErrBadConfig) {
		t.Errorf("width err = %v", err)
	}
	// Total capacity too small for the demand: infeasible.
	tiny := twoDCInstance(t, []float64{1, 1})
	g2, _ := NewGreedyNearest(tiny)
	if _, _, err := g2.Step(forecast(1, []float64{10000, 10000}), forecast(1, []float64{1, 1})); !errors.Is(err, core.ErrInfeasible) {
		t.Errorf("infeasible err = %v", err)
	}
}

func TestStaticAveragePlacesOnceAndHolds(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	demand := [][]float64{{1000, 0}, {3000, 0}, {2000, 0}}
	prices := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	s, err := NewStaticAverage(inst, demand, prices, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "static-average" {
		t.Errorf("Name = %q", s.Name())
	}
	applied1, state1, err := s.Step(forecast(1, []float64{1000, 0}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Average demand 2000 → 20 servers at DC0.
	if math.Abs(state1[0][0]-20) > 0.1 {
		t.Errorf("static placement = %g, want ~20", state1[0][0])
	}
	if applied1[0][0] <= 0 {
		t.Errorf("first step applied = %v", applied1)
	}
	applied2, state2, err := s.Step(forecast(1, []float64{9999, 0}), forecast(1, []float64{5, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if applied2[0][0] != 0 {
		t.Errorf("static policy reconfigured: %v", applied2)
	}
	if state2[0][0] != state1[0][0] {
		t.Error("static policy drifted")
	}
}

func TestStaticAverageErrors(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	if _, err := NewStaticAverage(nil, nil, nil, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inst err = %v", err)
	}
	if _, err := NewStaticAverage(inst, nil, nil, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty traces err = %v", err)
	}
	if _, err := NewStaticAverage(inst, [][]float64{{1}}, [][]float64{{1, 1}}, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("width err = %v", err)
	}
	if _, err := NewStaticAverage(inst, [][]float64{{1, 1}}, [][]float64{{1}}, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("price width err = %v", err)
	}
}

func TestMyopicMatchesHorizonOneMPC(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	m, err := NewMyopic(inst, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "myopic" {
		t.Errorf("Name = %q", m.Name())
	}
	ctrl, err := core.NewController(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	demand := forecast(3, []float64{500, 800})
	prices := forecast(3, []float64{0.2, 0.9})
	_, got, err := m.Step(demand, prices)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctrl.Step(demand[:1], prices[:1])
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 2; l++ {
		for v := 0; v < 2; v++ {
			if math.Abs(got[l][v]-want.NewState[l][v]) > 1e-6 {
				t.Fatalf("myopic != W=1 MPC at (%d,%d): %g vs %g", l, v, got[l][v], want.NewState[l][v])
			}
		}
	}
	if m.State()[0][0] != got[0][0] {
		t.Error("State() mismatch")
	}
}

func TestLazyThresholdHoldsThenReplans(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	p, err := NewLazyThreshold(inst, 1.2, 2.0, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "lazy-threshold" {
		t.Errorf("Name = %q", p.Name())
	}
	// First step: state zero, demand positive → replan.
	_, s1, err := p.Step(forecast(1, []float64{1000, 0}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Total() <= 0 {
		t.Fatal("no initial placement")
	}
	// Small demand wobble within headroom: hold.
	applied, s2, err := p.Step(forecast(1, []float64{1050, 0}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if applied.Total() != 0 {
		t.Errorf("reconfigured inside deadband: %v", applied)
	}
	if s2.Total() != s1.Total() {
		t.Error("state changed while holding")
	}
	// Big spike: must replan.
	applied, s3, err := p.Step(forecast(1, []float64{5000, 0}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if applied.Total() == 0 {
		t.Error("did not react to spike")
	}
	slack, err := inst.DemandSlack(s3, []float64{5000, 0})
	if err != nil {
		t.Fatal(err)
	}
	if slack[0] < -1e-6 {
		t.Errorf("spike unmet: slack %g", slack[0])
	}
	// Demand collapse: headroom above upper bound → scale down.
	applied, _, err = p.Step(forecast(1, []float64{500, 0}), forecast(1, []float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if applied.Total() == 0 {
		t.Error("did not scale down after collapse")
	}
}

func TestLazyThresholdValidation(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	if _, err := NewLazyThreshold(nil, 1.2, 2, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inst err = %v", err)
	}
	if _, err := NewLazyThreshold(inst, 0.5, 2, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("target<1 err = %v", err)
	}
	if _, err := NewLazyThreshold(inst, 1.5, 1.5, qp.DefaultOptions()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("upper<=target err = %v", err)
	}
	p, _ := NewLazyThreshold(inst, 1.2, 2, qp.DefaultOptions())
	if _, _, err := p.Step(nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty forecast err = %v", err)
	}
}

// Package baseline provides the comparison placement policies used by the
// ablation benchmarks: a static placement computed once for the average
// load, a latency-greedy price-blind reactive policy, a myopic cost
// minimizer without lookahead, and a lazy hysteresis policy. The paper
// evaluates only its MPC controller; these baselines quantify the value of
// its two ingredients (price awareness and lookahead) as called out in
// DESIGN.md's ablation table.
//
// All policies implement the sim.Policy contract
// (Name/State/Step) structurally, so the simulation engine can drive an
// MPC controller and a baseline through the same loop.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"dspp/internal/core"
	"dspp/internal/qp"
)

// ErrBadConfig flags invalid policy construction parameters.
var ErrBadConfig = errors.New("baseline: invalid configuration")

// GreedyNearest routes each location's demand to its lowest-a (best
// latency headroom) feasible data center and allocates exactly a·D
// servers there each period, ignoring prices and reconfiguration cost.
type GreedyNearest struct {
	inst  *core.Instance
	state core.State
}

// NewGreedyNearest builds the policy.
func NewGreedyNearest(inst *core.Instance) (*GreedyNearest, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	return &GreedyNearest{inst: inst, state: inst.NewState()}, nil
}

// Name implements sim.Policy.
func (g *GreedyNearest) Name() string { return "greedy-nearest" }

// State implements sim.Policy.
func (g *GreedyNearest) State() core.State { return g.state.Clone() }

// Step implements sim.Policy: it reacts to the first forecast period only.
func (g *GreedyNearest) Step(demand, prices [][]float64) (core.State, core.State, error) {
	if len(demand) == 0 {
		return nil, nil, fmt.Errorf("empty forecast: %w", ErrBadConfig)
	}
	next := g.inst.NewState()
	l := g.inst.NumDataCenters()
	v := g.inst.NumLocations()
	if len(demand[0]) != v {
		return nil, nil, fmt.Errorf("forecast width %d, want %d: %w", len(demand[0]), v, ErrBadConfig)
	}
	// Remaining capacity per DC guards the greedy fill.
	remaining := make([]float64, l)
	for li := 0; li < l; li++ {
		c, err := g.inst.Capacity(li)
		if err != nil {
			return nil, nil, err
		}
		remaining[li] = c
	}
	for vi := 0; vi < v; vi++ {
		d := demand[0][vi]
		if d == 0 {
			continue
		}
		// Visit DCs in increasing a (best SLA headroom first).
		for d > 1e-12 {
			best, bestA := -1, math.Inf(1)
			for li := 0; li < l; li++ {
				if !g.inst.Feasible(li, vi) || remaining[li] <= 1e-12 {
					continue
				}
				a, err := g.inst.SLACoefficient(li, vi)
				if err != nil {
					return nil, nil, err
				}
				if a < bestA && next[li][vi] == 0 {
					best, bestA = li, a
				}
			}
			if best < 0 {
				return nil, nil, fmt.Errorf("location %d demand %g unplaceable: %w", vi, d, core.ErrInfeasible)
			}
			// Serve as much as the remaining capacity allows.
			servable := remaining[best] / bestA
			take := d
			if take > servable {
				take = servable
			}
			next[best][vi] = bestA * take
			remaining[best] -= next[best][vi]
			d -= take
		}
	}
	applied := diffState(next, g.state)
	g.state = next
	return applied, next.Clone(), nil
}

// StaticAverage computes one placement for the average forecast demand at
// average prices and holds it for the whole run (the classic static
// placement the related work optimizes; no dynamics at all).
type StaticAverage struct {
	inst    *core.Instance
	target  core.State
	state   core.State
	placed  bool
	qpOpts  qp.Options
	periods int
}

// NewStaticAverage builds the policy from the full demand and price
// traces (the static planner is clairvoyant about averages, a generous
// baseline).
func NewStaticAverage(inst *core.Instance, demand, prices [][]float64, opts qp.Options) (*StaticAverage, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if len(demand) == 0 || len(prices) == 0 {
		return nil, fmt.Errorf("empty traces: %w", ErrBadConfig)
	}
	v := inst.NumLocations()
	l := inst.NumDataCenters()
	avgD := make([]float64, v)
	for _, row := range demand {
		if len(row) != v {
			return nil, fmt.Errorf("demand width %d, want %d: %w", len(row), v, ErrBadConfig)
		}
		for i, d := range row {
			avgD[i] += d
		}
	}
	for i := range avgD {
		avgD[i] /= float64(len(demand))
	}
	avgP := make([]float64, l)
	for _, row := range prices {
		if len(row) != l {
			return nil, fmt.Errorf("price width %d, want %d: %w", len(row), l, ErrBadConfig)
		}
		for i, p := range row {
			avgP[i] += p
		}
	}
	for i := range avgP {
		avgP[i] /= float64(len(prices))
	}
	plan, err := inst.SolveHorizon(core.HorizonInput{
		X0:     inst.NewState(),
		Demand: [][]float64{avgD},
		Prices: [][]float64{avgP},
	}, opts)
	if err != nil {
		return nil, fmt.Errorf("static plan: %w", err)
	}
	return &StaticAverage{
		inst:   inst,
		target: plan.X[0],
		state:  inst.NewState(),
		qpOpts: opts,
	}, nil
}

// Name implements sim.Policy.
func (s *StaticAverage) Name() string { return "static-average" }

// State implements sim.Policy.
func (s *StaticAverage) State() core.State { return s.state.Clone() }

// Step implements sim.Policy: jump to the static placement once, then
// never reconfigure.
func (s *StaticAverage) Step(demand, prices [][]float64) (core.State, core.State, error) {
	if s.placed {
		return s.inst.NewState(), s.state.Clone(), nil
	}
	applied := diffState(s.target, s.state)
	s.state = s.target.Clone()
	s.placed = true
	return applied, s.state.Clone(), nil
}

// Myopic solves a single-period DSPP each step (MPC with W = 1): price
// aware but with no lookahead. It isolates the value of the prediction
// horizon.
type Myopic struct {
	ctrl *core.Controller
}

// NewMyopic builds the policy.
func NewMyopic(inst *core.Instance, opts qp.Options) (*Myopic, error) {
	ctrl, err := core.NewController(inst, 1, core.WithQPOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Myopic{ctrl: ctrl}, nil
}

// Name implements sim.Policy.
func (m *Myopic) Name() string { return "myopic" }

// State implements sim.Policy.
func (m *Myopic) State() core.State { return m.ctrl.State() }

// Step implements sim.Policy.
func (m *Myopic) Step(demand, prices [][]float64) (core.State, core.State, error) {
	res, err := m.ctrl.Step(demand[:1], prices[:1])
	if err != nil {
		return nil, nil, err
	}
	return res.Applied, res.NewState, nil
}

// LazyThreshold holds the current allocation while it still covers the
// forecast demand with headroom in [1, Upper]; otherwise it re-plans to
// Target× the required minimum via a one-period solve. It models the
// hysteresis autoscalers common in practice.
type LazyThreshold struct {
	inst   *core.Instance
	state  core.State
	upper  float64
	target float64
	qpOpts qp.Options
}

// NewLazyThreshold builds the policy; upper > target ≥ 1.
func NewLazyThreshold(inst *core.Instance, target, upper float64, opts qp.Options) (*LazyThreshold, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if target < 1 || upper <= target {
		return nil, fmt.Errorf("target %g, upper %g: %w", target, upper, ErrBadConfig)
	}
	return &LazyThreshold{
		inst:   inst,
		state:  inst.NewState(),
		upper:  upper,
		target: target,
		qpOpts: opts,
	}, nil
}

// Name implements sim.Policy.
func (p *LazyThreshold) Name() string { return "lazy-threshold" }

// State implements sim.Policy.
func (p *LazyThreshold) State() core.State { return p.state.Clone() }

// Step implements sim.Policy.
func (p *LazyThreshold) Step(demand, prices [][]float64) (core.State, core.State, error) {
	if len(demand) == 0 || len(prices) == 0 {
		return nil, nil, fmt.Errorf("empty forecast: %w", ErrBadConfig)
	}
	next := demand[0]
	slack, err := p.inst.DemandSlack(p.state, next)
	if err != nil {
		return nil, nil, err
	}
	ok := true
	for v, s := range slack {
		d := next[v]
		if s < 0 {
			ok = false
			break
		}
		// Too much headroom also triggers a re-plan (cost leak).
		if d > 0 && s > (p.upper-1)*d {
			ok = false
			break
		}
	}
	if ok {
		return p.inst.NewState(), p.state.Clone(), nil
	}
	// Re-plan: scale demand by the target headroom and solve one period.
	scaled := make([]float64, len(next))
	for v, d := range next {
		scaled[v] = d * p.target
	}
	plan, err := p.inst.SolveHorizon(core.HorizonInput{
		X0:     p.state,
		Demand: [][]float64{scaled},
		Prices: prices[:1],
	}, p.qpOpts)
	if err != nil {
		return nil, nil, err
	}
	applied := plan.U[0]
	p.state = plan.X[0].Clone()
	return applied, p.state.Clone(), nil
}

// diffState returns next − prev as a control state.
func diffState(next, prev core.State) core.State {
	out := make(core.State, len(next))
	for l := range next {
		out[l] = make([]float64, len(next[l]))
		for v := range next[l] {
			out[l][v] = next[l][v] - prev[l][v]
		}
	}
	return out
}

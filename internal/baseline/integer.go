package baseline

import (
	"fmt"

	"dspp/internal/core"
	"dspp/internal/qp"
)

// IntegerMPC wraps the continuous MPC controller with the paper's §VIII
// integrality concern handled by post-processing: every period the
// continuous plan's first state is rounded up per pair (with capacity
// repair), and the integer state is fed back into the next solve. The
// paper argues the relative gap is small for services needing tens to
// hundreds of servers; the ablation bench measures it.
type IntegerMPC struct {
	ctrl *core.Controller
	inst *core.Instance
	// lastOverflow records per-DC capacity overflow the rounding repair
	// could not absorb in the latest step (zero in healthy operation).
	lastOverflow []float64
}

// NewIntegerMPC builds the policy with prediction horizon W.
func NewIntegerMPC(inst *core.Instance, horizon int, opts qp.Options) (*IntegerMPC, error) {
	ctrl, err := core.NewController(inst, horizon, core.WithQPOptions(opts))
	if err != nil {
		return nil, err
	}
	return &IntegerMPC{ctrl: ctrl, inst: inst}, nil
}

// Name implements sim.Policy.
func (p *IntegerMPC) Name() string { return fmt.Sprintf("integer-mpc-w%d", p.ctrl.Horizon()) }

// State implements sim.Policy.
func (p *IntegerMPC) State() core.State { return p.ctrl.State() }

// LastOverflow returns the per-DC capacity overflow of the latest step
// (nil before the first step). Nonzero entries mean the integer repair
// had to exceed a capacity bound to preserve the SLA.
func (p *IntegerMPC) LastOverflow() []float64 {
	if p.lastOverflow == nil {
		return nil
	}
	return append([]float64(nil), p.lastOverflow...)
}

// Step implements sim.Policy: continuous solve, round up, repair, feed
// back the integral state.
func (p *IntegerMPC) Step(demand, prices [][]float64) (core.State, core.State, error) {
	before := p.ctrl.State()
	res, err := p.ctrl.Step(demand, prices)
	if err != nil {
		return nil, nil, err
	}
	rounded, err := p.inst.RoundUp(res.NewState, demand[0])
	if err != nil {
		return nil, nil, err
	}
	p.lastOverflow = rounded.Overflow
	if err := p.ctrl.SetState(rounded.X); err != nil {
		return nil, nil, err
	}
	applied := diffState(rounded.X, before)
	return applied, rounded.X.Clone(), nil
}

package baseline

import (
	"math"
	"testing"

	"dspp/internal/qp"
)

func TestIntegerMPCProducesIntegerStates(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	p, err := NewIntegerMPC(inst, 2, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "integer-mpc-w2" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.LastOverflow() != nil {
		t.Error("overflow before first step")
	}
	demands := [][]float64{{1234, 777}, {2222, 777}, {555, 777}}
	for _, d := range demands {
		_, state, err := p.Step(forecast(2, d), forecast(2, []float64{0.3, 0.5}))
		if err != nil {
			t.Fatal(err)
		}
		for l := range state {
			for v := range state[l] {
				if frac := math.Abs(state[l][v] - math.Round(state[l][v])); frac > 1e-9 {
					t.Fatalf("non-integer allocation %g", state[l][v])
				}
			}
		}
		// Demand still met after rounding (round-up never loses capacity).
		slack, err := inst.DemandSlack(state, d)
		if err != nil {
			t.Fatal(err)
		}
		for v, s := range slack {
			if s < -1e-6 {
				t.Errorf("location %d slack %g after rounding", v, s)
			}
		}
		for _, o := range p.LastOverflow() {
			if o != 0 {
				t.Errorf("unexpected overflow %g with infinite capacity", o)
			}
		}
	}
	if p.State()[0][0] != math.Round(p.State()[0][0]) {
		t.Error("internal state not integral")
	}
}

func TestIntegerMPCIntegralityGapSmall(t *testing.T) {
	// Paper §IV argument: with tens of servers the relative cost gap of
	// rounding is small. Compare total server-hours over a short run.
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	intPolicy, err := NewIntegerMPC(inst, 2, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var intTotal, contTotal float64
	cont, err := NewMyopic(inst, qp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		d := []float64{3000 + 500*float64(k%3), 2000}
		_, si, err := intPolicy.Step(forecast(2, d), forecast(2, []float64{0.3, 0.5}))
		if err != nil {
			t.Fatal(err)
		}
		_, sc, err := cont.Step(forecast(1, d), forecast(1, []float64{0.3, 0.5}))
		if err != nil {
			t.Fatal(err)
		}
		intTotal += si.Total()
		contTotal += sc.Total()
	}
	if intTotal < contTotal {
		t.Errorf("integer total %g below continuous %g (rounding up cannot shrink)", intTotal, contTotal)
	}
	gap := (intTotal - contTotal) / contTotal
	if gap > 0.10 {
		t.Errorf("integrality gap %g > 10%% at tens-of-servers scale", gap)
	}
}

package baseline

import (
	"fmt"
	"math"

	"dspp/internal/core"
	"dspp/internal/linalg"
	"dspp/internal/lqr"
)

// SoftTracking is a soft-constraint MPC controller built on the exact
// Riccati solver instead of the interior-point QP: demand constraints are
// replaced by quadratic tracking of the target allocation (each location's
// forecast demand assigned to its cheapest feasible DC, converted to
// servers via a^lv), and capacity/nonnegativity are repaired by clamping
// after the unconstrained solve.
//
// It is dramatically cheaper per step than the hard-constraint QP —
// one Riccati sweep versus tens of interior-point iterations — at the
// price of SLA guarantees: tracking can undershoot during ramps. The
// ablation bench quantifies that trade.
type SoftTracking struct {
	inst  *core.Instance
	state core.State
	// trackWeight is the quadratic penalty on missing the target level
	// (per pair), relative to the reconfiguration weights.
	trackWeight float64
	horizon     int
	// pairIndex maps (l, v) to the dense variable index.
	pairL, pairV []int
}

// NewSoftTracking builds the policy. trackWeight > 0 balances tracking
// accuracy against reconfiguration smoothness; horizon ≥ 1.
func NewSoftTracking(inst *core.Instance, trackWeight float64, horizon int) (*SoftTracking, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if trackWeight <= 0 || math.IsNaN(trackWeight) || math.IsInf(trackWeight, 0) {
		return nil, fmt.Errorf("track weight %g: %w", trackWeight, ErrBadConfig)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadConfig)
	}
	st := &SoftTracking{
		inst:        inst,
		state:       inst.NewState(),
		trackWeight: trackWeight,
		horizon:     horizon,
	}
	for l := 0; l < inst.NumDataCenters(); l++ {
		for v := 0; v < inst.NumLocations(); v++ {
			if inst.Feasible(l, v) {
				st.pairL = append(st.pairL, l)
				st.pairV = append(st.pairV, v)
			}
		}
	}
	return st, nil
}

// Name implements sim.Policy.
func (s *SoftTracking) Name() string { return "soft-lqr" }

// State implements sim.Policy.
func (s *SoftTracking) State() core.State { return s.state.Clone() }

// Step implements sim.Policy.
func (s *SoftTracking) Step(demand, prices [][]float64) (core.State, core.State, error) {
	w := s.horizon
	if len(demand) < w || len(prices) < w {
		return nil, nil, fmt.Errorf("forecast %d/%d periods, horizon %d: %w",
			len(demand), len(prices), w, ErrBadConfig)
	}
	n := len(s.pairL)
	// Targets: assign each location's forecast demand to the cheapest
	// effective DC (argmin p_l·a_lv) per step; target servers = a·D.
	targets := make([]linalg.Vector, w)
	for t := 0; t < w; t++ {
		tv := linalg.NewVector(n)
		for v := 0; v < s.inst.NumLocations(); v++ {
			d := demand[t][v]
			if d <= 0 {
				continue
			}
			bestPair, bestCost := -1, math.Inf(1)
			for pi := range s.pairL {
				if s.pairV[pi] != v {
					continue
				}
				l := s.pairL[pi]
				a, err := s.inst.SLACoefficient(l, v)
				if err != nil {
					return nil, nil, err
				}
				if c := prices[t][l] * a; c < bestCost {
					bestPair, bestCost = pi, c
				}
			}
			if bestPair < 0 {
				return nil, nil, fmt.Errorf("location %d unservable: %w", v, core.ErrInfeasible)
			}
			a, err := s.inst.SLACoefficient(s.pairL[bestPair], v)
			if err != nil {
				return nil, nil, err
			}
			tv[bestPair] = a * d
		}
		targets[t] = tv
	}

	qDiag := linalg.NewVector(n)
	rDiag := linalg.NewVector(n)
	x0 := linalg.NewVector(n)
	for pi := range s.pairL {
		qDiag[pi] = s.trackWeight
		wgt, err := s.inst.ReconfigWeight(s.pairL[pi])
		if err != nil {
			return nil, nil, err
		}
		rDiag[pi] = wgt
		x0[pi] = s.state[s.pairL[pi]][s.pairV[pi]]
	}
	sol, err := lqr.Solve(&lqr.Problem{
		Q:       linalg.Diag(qDiag),
		R:       linalg.Diag(rDiag),
		Targets: targets,
		X0:      x0,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("riccati: %w", err)
	}

	// Apply the first control with nonnegativity + capacity repair.
	next := s.inst.NewState()
	for pi := range s.pairL {
		x := x0[pi] + sol.U[0][pi]
		if x < 0 {
			x = 0
		}
		next[s.pairL[pi]][s.pairV[pi]] = x
	}
	for l := 0; l < s.inst.NumDataCenters(); l++ {
		capL, err := s.inst.Capacity(l)
		if err != nil {
			return nil, nil, err
		}
		if math.IsInf(capL, 1) {
			continue
		}
		var total float64
		for v := 0; v < s.inst.NumLocations(); v++ {
			total += next[l][v]
		}
		if total > capL {
			scale := capL / total
			for v := 0; v < s.inst.NumLocations(); v++ {
				next[l][v] *= scale
			}
		}
	}
	applied := diffState(next, s.state)
	s.state = next
	return applied, next.Clone(), nil
}

package baseline

import (
	"errors"
	"math"
	"testing"

	"dspp/internal/core"
)

func TestNewSoftTrackingValidation(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	if _, err := NewSoftTracking(nil, 1, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil inst err = %v", err)
	}
	if _, err := NewSoftTracking(inst, 0, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero weight err = %v", err)
	}
	if _, err := NewSoftTracking(inst, 1, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero horizon err = %v", err)
	}
}

func TestSoftTrackingTracksDemand(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	p, err := NewSoftTracking(inst, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "soft-lqr" {
		t.Errorf("Name = %q", p.Name())
	}
	// Constant demand: after a few steps the allocation approaches the
	// required level at the cheapest DC per location.
	var state core.State
	for k := 0; k < 8; k++ {
		_, s, err := p.Step(forecast(3, []float64{1000, 2000}), forecast(3, []float64{0.5, 1.0}))
		if err != nil {
			t.Fatal(err)
		}
		state = s
	}
	// DC0 is cheaper and has a=0.01 for location 0 → target 10 servers.
	if math.Abs(state[0][0]-10) > 1 {
		t.Errorf("DC0 loc0 = %g, want ~10", state[0][0])
	}
	// Location 1: cheapest effective is DC0 at price 0.5·a=0.02 → 0.01
	// vs DC1 at 1.0·0.01 = 0.01 — tie broken by first found (DC0,a=0.02):
	// effective cost equal; either placement is fine but demand must be
	// nearly covered somewhere.
	slack, err := inst.DemandSlack(state, []float64{1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range slack {
		if s < -0.08*2000 { // soft controller tolerates small undershoot
			t.Errorf("location %d badly undercovered: slack %g", v, s)
		}
	}
	if p.State()[0][0] != state[0][0] {
		t.Error("State() mismatch")
	}
}

func TestSoftTrackingRespectsCapacityByClamping(t *testing.T) {
	inst := twoDCInstance(t, []float64{5, math.Inf(1)})
	p, err := NewSoftTracking(inst, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		_, s, err := p.Step(forecast(2, []float64{5000, 0}), forecast(2, []float64{0.1, 1.0}))
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for v := range s[0] {
			total += s[0][v]
		}
		if total > 5+1e-9 {
			t.Fatalf("step %d: DC0 load %g exceeds capacity 5", k, total)
		}
	}
}

func TestSoftTrackingForecastTooShort(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	p, err := NewSoftTracking(inst, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Step(forecast(2, []float64{1, 1}), forecast(4, []float64{1, 1})); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short forecast err = %v", err)
	}
}

func TestSoftTrackingNonnegative(t *testing.T) {
	inst := twoDCInstance(t, []float64{math.Inf(1), math.Inf(1)})
	p, err := NewSoftTracking(inst, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp up then crash to zero; states must remain nonnegative.
	levels := []float64{5000, 5000, 0, 0, 0}
	for _, d := range levels {
		_, s, err := p.Step(forecast(2, []float64{d, d}), forecast(2, []float64{0.5, 0.5}))
		if err != nil {
			t.Fatal(err)
		}
		for l := range s {
			for v := range s[l] {
				if s[l][v] < 0 {
					t.Fatalf("negative allocation %g", s[l][v])
				}
			}
		}
	}
}

// Package pricing models the per-data-center server prices that drive the
// cost term of DSPP. The paper (§VII, Fig. 3) uses regional wholesale
// electricity prices (RTO markets) for 4 US regions over a day, with VM
// power draw of 30/70/140 W for small/medium/large instances, and sets the
// server price at each DC to the electricity cost of one VM.
//
// We reproduce Fig. 3 with parametric diurnal curves matching the figure's
// qualitative shape: California highest with a late-afternoon peak, Texas
// cheapest, Georgia and Illinois intermediate. A mean-reverting stochastic
// variant provides the volatile prices needed by Fig. 9.
package pricing

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadParameter flags invalid model parameters.
var ErrBadParameter = errors.New("pricing: invalid parameter")

// VMClass enumerates the paper's three VM sizes.
type VMClass int

// VM classes with the paper's power draws.
const (
	SmallVM VMClass = iota + 1
	MediumVM
	LargeVM
)

// Watts returns the electrical power draw of the VM class (paper §VII).
func (c VMClass) Watts() float64 {
	switch c {
	case SmallVM:
		return 30
	case MediumVM:
		return 70
	case LargeVM:
		return 140
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (c VMClass) String() string {
	switch c {
	case SmallVM:
		return "small"
	case MediumVM:
		return "medium"
	case LargeVM:
		return "large"
	default:
		return fmt.Sprintf("VMClass(%d)", int(c))
	}
}

// Model produces a per-server price for a control period.
type Model interface {
	// Price returns the $/server/period price at period k.
	Price(k int) float64
}

// Constant is a fixed price model.
type Constant struct{ Level float64 }

// Price implements Model.
func (c Constant) Price(int) float64 { return c.Level }

// RegionProfile is a parametric diurnal electricity price curve in $/MWh:
//
//	price(h) = Base + Swing·max(0, sin(π·(h−Rise)/(Set−Rise)))^Sharpness
//
// yielding a flat overnight price Base and a peak of Base+Swing between
// Rise and Set hours.
type RegionProfile struct {
	Name      string
	Base      float64 // overnight floor, $/MWh
	Swing     float64 // peak minus floor, $/MWh
	Rise, Set float64 // hours (0–24) delimiting the daytime bump
	Sharpness float64 // ≥1 narrows the peak
}

// PriceMWh evaluates the curve at hour h (fractional hours accepted; h is
// wrapped into [0, 24)).
func (r RegionProfile) PriceMWh(h float64) float64 {
	h = math.Mod(math.Mod(h, 24)+24, 24)
	if r.Set <= r.Rise || h < r.Rise || h > r.Set {
		return r.Base
	}
	s := math.Sin(math.Pi * (h - r.Rise) / (r.Set - r.Rise))
	if s < 0 {
		s = 0
	}
	sharp := r.Sharpness
	if sharp < 1 {
		sharp = 1
	}
	return r.Base + r.Swing*math.Pow(s, sharp)
}

// PaperRegions returns the four regional profiles of Fig. 3, keyed to the
// paper's DC sites. The shapes follow the figure: California around
// $60–110/MWh with a 5pm peak, Texas cheapest ($35–55), Georgia moderate,
// Illinois moderate with a flatter curve.
func PaperRegions() []RegionProfile {
	return []RegionProfile{
		{Name: "CA", Base: 62, Swing: 48, Rise: 7, Set: 22, Sharpness: 2.0},
		{Name: "TX", Base: 36, Swing: 20, Rise: 9, Set: 21, Sharpness: 2.5},
		{Name: "GA", Base: 44, Swing: 26, Rise: 8, Set: 21, Sharpness: 2.0},
		{Name: "IL", Base: 48, Swing: 22, Rise: 7, Set: 20, Sharpness: 1.5},
	}
}

// RegionByName returns the paper region profile with the given name.
func RegionByName(name string) (RegionProfile, bool) {
	for _, r := range PaperRegions() {
		if r.Name == name {
			return r, true
		}
	}
	return RegionProfile{}, false
}

// ServerPrice converts a $/MWh electricity price into a $/server/period
// price for a VM class, with a PUE (power usage effectiveness) overhead
// factor and the period length in hours.
func ServerPrice(priceMWh float64, class VMClass, pue, periodHours float64) (float64, error) {
	if priceMWh < 0 || pue < 1 || periodHours <= 0 {
		return 0, fmt.Errorf("price=%g pue=%g hours=%g: %w", priceMWh, pue, periodHours, ErrBadParameter)
	}
	w := class.Watts()
	if w == 0 {
		return 0, fmt.Errorf("unknown VM class %d: %w", int(class), ErrBadParameter)
	}
	kwh := w / 1000 * pue * periodHours
	return priceMWh / 1000 * kwh, nil
}

// DiurnalServer is a Model that prices one server per hourly period from a
// regional curve.
type DiurnalServer struct {
	Region      RegionProfile
	Class       VMClass
	PUE         float64 // default 1.3 when zero
	PeriodHours float64 // default 1 when zero
}

// Price implements Model. Invalid configurations yield price 0 — callers
// validate with Validate() at construction time.
func (d DiurnalServer) Price(k int) float64 {
	pue := d.PUE
	if pue == 0 {
		pue = 1.3
	}
	hours := d.PeriodHours
	if hours == 0 {
		hours = 1
	}
	h := math.Mod(float64(k)*hours, 24)
	p, err := ServerPrice(d.Region.PriceMWh(h), d.Class, pue, hours)
	if err != nil {
		return 0
	}
	return p
}

// Validate checks the configuration of a DiurnalServer model.
func (d DiurnalServer) Validate() error {
	pue := d.PUE
	if pue == 0 {
		pue = 1.3
	}
	hours := d.PeriodHours
	if hours == 0 {
		hours = 1
	}
	_, err := ServerPrice(d.Region.PriceMWh(0), d.Class, pue, hours)
	return err
}

// Volatile wraps a base model with mean-reverting multiplicative noise,
// used for the hard-to-predict prices of Fig. 9.
type Volatile struct {
	base       Model
	volatility float64
	reversion  float64
	factor     float64
	rng        *rand.Rand
	lastK      int
	started    bool
}

// NewVolatile creates the stochastic wrapper. volatility is the
// per-period relative standard deviation of the noise factor; reversion in
// (0,1] pulls the factor back toward 1.
func NewVolatile(base Model, volatility, reversion float64, rng *rand.Rand) (*Volatile, error) {
	if base == nil {
		return nil, fmt.Errorf("nil base: %w", ErrBadParameter)
	}
	if volatility < 0 || reversion <= 0 || reversion > 1 {
		return nil, fmt.Errorf("vol=%g rev=%g: %w", volatility, reversion, ErrBadParameter)
	}
	if rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadParameter)
	}
	return &Volatile{base: base, volatility: volatility, reversion: reversion, factor: 1, rng: rng}, nil
}

// Price implements Model; repeated calls with the same k are stable.
func (v *Volatile) Price(k int) float64 {
	if !v.started {
		v.started = true
		v.lastK = k
	}
	for v.lastK < k {
		v.factor *= 1 + v.volatility*v.rng.NormFloat64()
		v.factor += v.reversion * (1 - v.factor)
		if v.factor < 0.05 {
			v.factor = 0.05
		}
		v.lastK++
	}
	return v.base.Price(k) * v.factor
}

// Trace is a precomputed price series usable as a Model; out-of-range
// periods clamp to the nearest endpoint.
type Trace []float64

// Price implements Model.
func (t Trace) Price(k int) float64 {
	if len(t) == 0 {
		return 0
	}
	if k < 0 {
		k = 0
	}
	if k >= len(t) {
		k = len(t) - 1
	}
	return t[k]
}

// Materialize evaluates a model over [0, periods) into a Trace.
func Materialize(m Model, periods int) (Trace, error) {
	if m == nil || periods < 0 {
		return nil, fmt.Errorf("model=%v periods=%d: %w", m, periods, ErrBadParameter)
	}
	out := make(Trace, periods)
	for k := 0; k < periods; k++ {
		out[k] = m.Price(k)
	}
	return out, nil
}

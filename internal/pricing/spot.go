package pricing

import (
	"fmt"
	"math"
	"math/rand"
)

// SpotMarket models an EC2-spot-style auction price (the paper cites
// Amazon's spot instances [5] as the mechanism that brings dynamic
// pricing to public clouds): a mean-reverting base level around a
// fraction of the on-demand price, with occasional demand-spike jumps
// that can shoot past on-demand. Prices are capped at the on-demand
// level times CapFactor (spot markets clear below a published ceiling).
type SpotMarket struct {
	onDemand  Model
	discount  float64 // long-run spot level as a fraction of on-demand
	vol       float64
	reversion float64
	jumpProb  float64
	jumpScale float64
	capFactor float64
	factor    float64
	rng       *rand.Rand
	lastK     int
	started   bool
}

// SpotConfig parameterizes NewSpotMarket. Zero values take defaults:
// Discount 0.35, Volatility 0.08, Reversion 0.2, JumpProb 0.04,
// JumpScale 2.5, CapFactor 1.2.
type SpotConfig struct {
	Discount   float64
	Volatility float64
	Reversion  float64
	JumpProb   float64
	JumpScale  float64
	CapFactor  float64
}

func (c SpotConfig) withDefaults() SpotConfig {
	if c.Discount == 0 {
		c.Discount = 0.35
	}
	if c.Volatility == 0 {
		c.Volatility = 0.08
	}
	if c.Reversion == 0 {
		c.Reversion = 0.2
	}
	if c.JumpProb == 0 {
		c.JumpProb = 0.04
	}
	if c.JumpScale == 0 {
		c.JumpScale = 2.5
	}
	if c.CapFactor == 0 {
		c.CapFactor = 1.2
	}
	return c
}

func (c SpotConfig) validate() error {
	if c.Discount <= 0 || c.Discount > 1 {
		return fmt.Errorf("discount %g: %w", c.Discount, ErrBadParameter)
	}
	if c.Volatility < 0 || c.Reversion <= 0 || c.Reversion > 1 {
		return fmt.Errorf("vol %g, reversion %g: %w", c.Volatility, c.Reversion, ErrBadParameter)
	}
	if c.JumpProb < 0 || c.JumpProb > 1 || c.JumpScale < 1 {
		return fmt.Errorf("jump prob %g, scale %g: %w", c.JumpProb, c.JumpScale, ErrBadParameter)
	}
	if c.CapFactor < 1 {
		return fmt.Errorf("cap factor %g: %w", c.CapFactor, ErrBadParameter)
	}
	return nil
}

// NewSpotMarket wraps an on-demand price model with a spot process.
func NewSpotMarket(onDemand Model, cfg SpotConfig, rng *rand.Rand) (*SpotMarket, error) {
	if onDemand == nil {
		return nil, fmt.Errorf("nil on-demand model: %w", ErrBadParameter)
	}
	if rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadParameter)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &SpotMarket{
		onDemand:  onDemand,
		discount:  cfg.Discount,
		vol:       cfg.Volatility,
		reversion: cfg.Reversion,
		jumpProb:  cfg.JumpProb,
		jumpScale: cfg.JumpScale,
		capFactor: cfg.CapFactor,
		factor:    cfg.Discount,
		rng:       rng,
	}, nil
}

// Price implements Model: the current spot price. Repeated calls with the
// same period are stable; the process advances one step per new period.
func (s *SpotMarket) Price(k int) float64 {
	if !s.started {
		s.started = true
		s.lastK = k
	}
	for s.lastK < k {
		// Mean-reverting multiplicative walk around the discount level.
		s.factor *= 1 + s.vol*s.rng.NormFloat64()
		s.factor += s.reversion * (s.discount - s.factor)
		// Occasional capacity-crunch jump.
		if s.rng.Float64() < s.jumpProb {
			s.factor *= 1 + (s.jumpScale-1)*s.rng.Float64()
		}
		if s.factor < 0.01 {
			s.factor = 0.01
		}
		if s.factor > s.capFactor {
			s.factor = s.capFactor
		}
		s.lastK++
	}
	return s.onDemand.Price(k) * s.factor
}

// OnDemand returns the wrapped on-demand price at period k.
func (s *SpotMarket) OnDemand(k int) float64 { return s.onDemand.Price(k) }

// BidPolicy prices a server under a spot bid strategy: pay the spot price
// while it clears below the bid, fall back to on-demand when it doesn't
// (modelling the eviction-and-replace cost as simply paying on-demand for
// that period). Bid is expressed as a fraction of the on-demand price.
type BidPolicy struct {
	// Market is the spot process.
	Market *SpotMarket
	// BidFraction is the bid as a fraction of on-demand (e.g. 0.5).
	BidFraction float64
}

// Price implements Model.
func (b BidPolicy) Price(k int) float64 {
	spot := b.Market.Price(k)
	od := b.Market.OnDemand(k)
	if spot <= b.BidFraction*od {
		return spot
	}
	return od
}

// Validate checks the policy configuration.
func (b BidPolicy) Validate() error {
	if b.Market == nil {
		return fmt.Errorf("nil market: %w", ErrBadParameter)
	}
	if b.BidFraction <= 0 || math.IsNaN(b.BidFraction) || math.IsInf(b.BidFraction, 0) {
		return fmt.Errorf("bid fraction %g: %w", b.BidFraction, ErrBadParameter)
	}
	return nil
}

package pricing

import (
	"errors"
	"math/rand"
	"testing"
)

func TestNewSpotMarketValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSpotMarket(nil, SpotConfig{}, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil model err = %v", err)
	}
	if _, err := NewSpotMarket(Constant{1}, SpotConfig{}, nil); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil rng err = %v", err)
	}
	bad := []SpotConfig{
		{Discount: 2},
		{Volatility: -1},
		{Reversion: 2},
		{JumpProb: 2},
		{JumpScale: 0.5},
		{CapFactor: 0.5},
	}
	for i, cfg := range bad {
		if _, err := NewSpotMarket(Constant{1}, cfg, rng); !errors.Is(err, ErrBadParameter) {
			t.Errorf("case %d err = %v", i, err)
		}
	}
}

func TestSpotMarketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewSpotMarket(Constant{Level: 0.10}, SpotConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	first := m.Price(0)
	if m.Price(0) != first {
		t.Error("same-period price unstable")
	}
	belowOD := 0
	for k := 0; k < 2000; k++ {
		p := m.Price(k)
		if p <= 0 {
			t.Fatalf("non-positive spot price %g at %d", p, k)
		}
		if p > 0.10*1.2+1e-12 {
			t.Fatalf("price %g above the cap at %d", p, k)
		}
		if p < 0.10 {
			belowOD++
		}
	}
	// Spot should clear below on-demand the vast majority of the time.
	if frac := float64(belowOD) / 2000; frac < 0.85 {
		t.Errorf("only %g of periods below on-demand", frac)
	}
	if m.OnDemand(17) != 0.10 {
		t.Errorf("OnDemand = %g", m.OnDemand(17))
	}
}

func TestSpotMarketLongRunDiscount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := NewSpotMarket(Constant{Level: 1}, SpotConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 5000
	for k := 0; k < n; k++ {
		sum += m.Price(k)
	}
	avg := sum / float64(n)
	// Long-run average sits near the discount level (0.35), inflated a
	// little by jumps.
	if avg < 0.25 || avg > 0.60 {
		t.Errorf("long-run spot average %g, want near 0.35", avg)
	}
}

func TestSpotMarketJumps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewSpotMarket(Constant{Level: 1}, SpotConfig{JumpProb: 0.2, JumpScale: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	spikes := 0
	for k := 0; k < 1000; k++ {
		if m.Price(k) > 0.8 {
			spikes++
		}
	}
	if spikes == 0 {
		t.Error("no price spikes with aggressive jump settings")
	}
}

func TestBidPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewSpotMarket(Constant{Level: 1}, SpotConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := BidPolicy{Market: m, BidFraction: 0.5}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	var spotWins, fallbacks int
	var total float64
	for k := 0; k < 3000; k++ {
		p := b.Price(k)
		total += p
		if p == 1 {
			fallbacks++
		} else {
			if p > 0.5+1e-12 {
				t.Fatalf("paid %g above the bid without falling back", p)
			}
			spotWins++
		}
	}
	if spotWins == 0 || fallbacks == 0 {
		t.Errorf("degenerate policy: %d spot, %d fallback", spotWins, fallbacks)
	}
	// The blended price must undercut always-on-demand.
	if avg := total / 3000; avg >= 1 {
		t.Errorf("bid policy average %g not below on-demand", avg)
	}
	bad := BidPolicy{Market: nil, BidFraction: 0.5}
	if err := bad.Validate(); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil market err = %v", err)
	}
	bad = BidPolicy{Market: m, BidFraction: 0}
	if err := bad.Validate(); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero bid err = %v", err)
	}
}

// The spot model composes with the controller stack: feeding BidPolicy
// prices into Materialize produces a usable trace.
func TestSpotMaterializeIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ca, ok := RegionByName("CA")
	if !ok {
		t.Fatal("CA missing")
	}
	od := DiurnalServer{Region: ca, Class: MediumVM}
	m, err := NewSpotMarket(od, SpotConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Materialize(BidPolicy{Market: m, BidFraction: 0.6}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 48 {
		t.Fatalf("trace length %d", len(trace))
	}
	for k, p := range trace {
		if p <= 0 || p > od.Price(k)*1.2+1e-12 {
			t.Errorf("period %d: price %g out of bounds", k, p)
		}
	}
}

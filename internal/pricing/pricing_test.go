package pricing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVMClassWatts(t *testing.T) {
	cases := []struct {
		class VMClass
		watts float64
		name  string
	}{
		{SmallVM, 30, "small"},
		{MediumVM, 70, "medium"},
		{LargeVM, 140, "large"},
	}
	for _, c := range cases {
		if c.class.Watts() != c.watts {
			t.Errorf("%v watts = %g, want %g", c.class, c.class.Watts(), c.watts)
		}
		if c.class.String() != c.name {
			t.Errorf("String = %q, want %q", c.class.String(), c.name)
		}
	}
	if VMClass(0).Watts() != 0 {
		t.Error("unknown class should have zero watts")
	}
	if VMClass(99).String() != "VMClass(99)" {
		t.Errorf("unknown String = %q", VMClass(99).String())
	}
}

func TestPaperRegionsShape(t *testing.T) {
	regions := PaperRegions()
	if len(regions) != 4 {
		t.Fatalf("regions = %d, want 4", len(regions))
	}
	ca, ok := RegionByName("CA")
	if !ok {
		t.Fatal("CA missing")
	}
	tx, ok := RegionByName("TX")
	if !ok {
		t.Fatal("TX missing")
	}
	if _, ok := RegionByName("ZZ"); ok {
		t.Error("found nonexistent region")
	}
	// Fig. 3 shape checks:
	// (a) California is more expensive than Texas at every hour.
	for h := 0.0; h < 24; h++ {
		if ca.PriceMWh(h) <= tx.PriceMWh(h) {
			t.Errorf("hour %g: CA %g <= TX %g", h, ca.PriceMWh(h), tx.PriceMWh(h))
		}
	}
	// (b) The CA–TX spread peaks in the afternoon (around 5pm in Fig. 3).
	spread := func(h float64) float64 { return ca.PriceMWh(h) - tx.PriceMWh(h) }
	peakHour, peakSpread := 0.0, 0.0
	for h := 0.0; h < 24; h += 0.5 {
		if s := spread(h); s > peakSpread {
			peakHour, peakSpread = h, s
		}
	}
	if peakHour < 12 || peakHour > 20 {
		t.Errorf("CA-TX spread peaks at hour %g, want afternoon", peakHour)
	}
	// (c) All prices within the figure's rough $30-120/MWh band.
	for _, r := range regions {
		for h := 0.0; h < 24; h += 0.25 {
			p := r.PriceMWh(h)
			if p < 30 || p > 120 {
				t.Errorf("%s at %g: %g outside Fig.3 band", r.Name, h, p)
			}
		}
	}
}

func TestRegionProfileWrapsHours(t *testing.T) {
	ca, _ := RegionByName("CA")
	if ca.PriceMWh(25) != ca.PriceMWh(1) {
		t.Error("hour 25 != hour 1")
	}
	if ca.PriceMWh(-1) != ca.PriceMWh(23) {
		t.Error("hour -1 != hour 23")
	}
}

func TestRegionProfileDegenerateWindow(t *testing.T) {
	flat := RegionProfile{Name: "flat", Base: 40, Swing: 100, Rise: 10, Set: 10}
	for h := 0.0; h < 24; h++ {
		if flat.PriceMWh(h) != 40 {
			t.Errorf("degenerate window not flat at %g: %g", h, flat.PriceMWh(h))
		}
	}
}

func TestServerPrice(t *testing.T) {
	// 70 W medium VM at $100/MWh, PUE 1.0, 1 hour:
	// 0.07 kW · 1 h = 0.07 kWh → 0.07 · $0.1/kWh = $0.007.
	p, err := ServerPrice(100, MediumVM, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.007) > 1e-12 {
		t.Errorf("price = %g, want 0.007", p)
	}
	// PUE scales linearly.
	p2, err := ServerPrice(100, MediumVM, 2.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-2*p) > 1e-12 {
		t.Errorf("PUE=2 price %g, want %g", p2, 2*p)
	}
}

func TestServerPriceErrors(t *testing.T) {
	if _, err := ServerPrice(-1, SmallVM, 1, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative price err = %v", err)
	}
	if _, err := ServerPrice(10, SmallVM, 0.5, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("pue<1 err = %v", err)
	}
	if _, err := ServerPrice(10, SmallVM, 1, 0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero hours err = %v", err)
	}
	if _, err := ServerPrice(10, VMClass(0), 1, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("bad class err = %v", err)
	}
}

func TestDiurnalServerModel(t *testing.T) {
	ca, _ := RegionByName("CA")
	m := DiurnalServer{Region: ca, Class: MediumVM}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Price follows the regional curve: 5pm above 3am.
	if m.Price(17) <= m.Price(3) {
		t.Errorf("Price(17)=%g should exceed Price(3)=%g", m.Price(17), m.Price(3))
	}
	// Day periodicity.
	if m.Price(3) != m.Price(27) {
		t.Error("not periodic")
	}
	bad := DiurnalServer{Region: ca, Class: VMClass(0)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted bad class")
	}
	if bad.Price(0) != 0 {
		t.Error("invalid model should price at 0")
	}
}

func TestConstantModel(t *testing.T) {
	c := Constant{Level: 0.5}
	if c.Price(0) != 0.5 || c.Price(99) != 0.5 {
		t.Error("constant model broken")
	}
}

func TestVolatileValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewVolatile(nil, 0.1, 0.5, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil base err = %v", err)
	}
	if _, err := NewVolatile(Constant{1}, -0.1, 0.5, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative vol err = %v", err)
	}
	if _, err := NewVolatile(Constant{1}, 0.1, 0, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero reversion err = %v", err)
	}
	if _, err := NewVolatile(Constant{1}, 0.1, 0.5, nil); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil rng err = %v", err)
	}
}

func TestVolatileStableAndPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v, err := NewVolatile(Constant{Level: 1}, 0.3, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p0 := v.Price(0)
	if v.Price(0) != p0 {
		t.Error("Price(0) unstable")
	}
	moved := false
	prev := p0
	for k := 1; k < 200; k++ {
		p := v.Price(k)
		if p <= 0 {
			t.Fatalf("non-positive price at %d: %g", k, p)
		}
		if p != prev {
			moved = true
		}
		prev = p
	}
	if !moved {
		t.Error("volatile prices never moved")
	}
}

func TestPriceTraceAndMaterialize(t *testing.T) {
	tr := Trace{1, 2, 3}
	if tr.Price(-1) != 1 || tr.Price(2) != 3 || tr.Price(10) != 3 {
		t.Error("trace clamping broken")
	}
	var empty Trace
	if empty.Price(0) != 0 {
		t.Error("empty trace should price 0")
	}
	got, err := Materialize(Constant{Level: 4}, 3)
	if err != nil || len(got) != 3 || got[2] != 4 {
		t.Errorf("Materialize = %v, %v", got, err)
	}
	if _, err := Materialize(nil, 3); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil model err = %v", err)
	}
}

// Property: regional prices are always at least the base and at most
// base+swing.
func TestQuickRegionBounds(t *testing.T) {
	regions := PaperRegions()
	f := func(rawH float64, idx uint8) bool {
		r := regions[int(idx)%len(regions)]
		h := math.Mod(math.Abs(rawH), 48)
		if math.IsNaN(h) {
			h = 0
		}
		p := r.PriceMWh(h)
		return p >= r.Base-1e-9 && p <= r.Base+r.Swing+1e-9
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ServerPrice is linear in the electricity price.
func TestQuickServerPriceLinear(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(raw)
		if math.IsNaN(p) || math.IsInf(p, 0) || p > 1e6 {
			p = 50
		}
		a, err1 := ServerPrice(p, LargeVM, 1.2, 1)
		b, err2 := ServerPrice(2*p, LargeVM, 1.2, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(b-2*a) < 1e-9*(1+b)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package predict

import (
	"fmt"
)

// HoltWinters is additive triple exponential smoothing: level + trend +
// additive seasonality of period Season. It is the natural upgrade over
// SeasonalNaive for the paper's diurnal traces — it adapts the level and
// trend online while keeping the daily shape, and degrades gracefully to
// Holt's linear method when Season ≤ 1.
type HoltWinters struct {
	// Alpha, Beta, Gamma are the level/trend/season smoothing factors in
	// [0, 1]. Zero values use the conservative defaults 0.3/0.05/0.3.
	Alpha, Beta, Gamma float64
	// Season is the seasonal period (e.g. 24 for hourly daily data);
	// values ≤ 1 disable the seasonal component.
	Season int
}

func (h HoltWinters) params() (alpha, beta, gamma float64) {
	alpha, beta, gamma = h.Alpha, h.Beta, h.Gamma
	if alpha == 0 {
		alpha = 0.3
	}
	if beta == 0 {
		beta = 0.05
	}
	if gamma == 0 {
		gamma = 0.3
	}
	return alpha, beta, gamma
}

// Forecast implements Predictor. It needs at least two full seasons of
// history (or 4 observations in the non-seasonal case). Negative
// forecasts are clamped to zero.
func (h HoltWinters) Forecast(history []float64, horizon int) ([]float64, error) {
	if horizon < 0 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadParameter)
	}
	alpha, beta, gamma := h.params()
	if alpha < 0 || alpha > 1 || beta < 0 || beta > 1 || gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("smoothing factors (%g,%g,%g) outside [0,1]: %w",
			alpha, beta, gamma, ErrBadParameter)
	}
	m := h.Season
	if m <= 1 {
		return h.forecastHolt(history, horizon, alpha, beta)
	}
	if len(history) < 2*m {
		return nil, fmt.Errorf("history %d < 2 seasons (%d): %w", len(history), 2*m, ErrInsufficientHistory)
	}

	// Initialization: level = mean of season 1; trend = average
	// season-over-season change; seasonal indices = first-season
	// deviations from its mean.
	var mean1, mean2 float64
	for i := 0; i < m; i++ {
		mean1 += history[i]
		mean2 += history[m+i]
	}
	mean1 /= float64(m)
	mean2 /= float64(m)
	level := mean1
	trend := (mean2 - mean1) / float64(m)
	season := make([]float64, m)
	for i := 0; i < m; i++ {
		season[i] = history[i] - mean1
	}

	// Run the smoothing recursions over the remaining history.
	for t := m; t < len(history); t++ {
		si := t % m
		prevLevel := level
		level = alpha*(history[t]-season[si]) + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
		season[si] = gamma*(history[t]-level) + (1-gamma)*season[si]
	}

	out := make([]float64, horizon)
	for k := 1; k <= horizon; k++ {
		si := (len(history) + k - 1) % m
		v := level + float64(k)*trend + season[si]
		if v < 0 {
			v = 0
		}
		out[k-1] = v
	}
	return out, nil
}

// forecastHolt is the non-seasonal double-exponential path.
func (h HoltWinters) forecastHolt(history []float64, horizon int, alpha, beta float64) ([]float64, error) {
	if len(history) < 4 {
		return nil, fmt.Errorf("history %d < 4: %w", len(history), ErrInsufficientHistory)
	}
	level := history[0]
	trend := history[1] - history[0]
	for t := 1; t < len(history); t++ {
		prevLevel := level
		level = alpha*history[t] + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
	}
	out := make([]float64, horizon)
	for k := 1; k <= horizon; k++ {
		v := level + float64(k)*trend
		if v < 0 {
			v = 0
		}
		out[k-1] = v
	}
	return out, nil
}

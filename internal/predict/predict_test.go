package predict

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectOracle(t *testing.T) {
	series := []float64{10, 20, 30, 40, 50}
	p := Perfect{Series: series}
	fc, err := p.Forecast(series[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 30 || fc[1] != 40 {
		t.Errorf("forecast = %v, want [30 40]", fc)
	}
	// Clamps at the end of the series.
	fc, err = p.Forecast(series[:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 50 || fc[1] != 50 || fc[2] != 50 {
		t.Errorf("clamped forecast = %v", fc)
	}
	if _, err := p.Forecast(series, -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative horizon err = %v", err)
	}
	empty := Perfect{}
	if _, err := empty.Forecast(series, 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("empty oracle err = %v", err)
	}
}

func TestPersistence(t *testing.T) {
	fc, err := Persistence{}.Forecast([]float64{1, 2, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if v != 7 {
			t.Fatalf("forecast = %v, want all 7", fc)
		}
	}
	if _, err := (Persistence{}).Forecast(nil, 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("empty history err = %v", err)
	}
	if _, err := (Persistence{}).Forecast([]float64{1}, -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative horizon err = %v", err)
	}
}

func TestSeasonalNaive(t *testing.T) {
	// Two full days of a period-4 series.
	history := []float64{1, 2, 3, 4, 1, 2, 3, 4}
	s := SeasonalNaive{Season: 4}
	fc, err := s.Forecast(history, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 1, 2}
	for i := range want {
		if fc[i] != want[i] {
			t.Fatalf("forecast = %v, want %v", fc, want)
		}
	}
	if _, err := (SeasonalNaive{Season: 0}).Forecast(history, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("season 0 err = %v", err)
	}
	if _, err := s.Forecast(history[:2], 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("short history err = %v", err)
	}
	if _, err := s.Forecast(history, -2); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative horizon err = %v", err)
	}
}

func TestMovingAverage(t *testing.T) {
	fc, err := (MovingAverage{Window: 2}).Forecast([]float64{1, 3, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 4 || fc[1] != 4 {
		t.Errorf("forecast = %v, want [4 4]", fc)
	}
	// Window longer than history uses all of it.
	fc, err = (MovingAverage{Window: 10}).Forecast([]float64{2, 4}, 1)
	if err != nil || fc[0] != 3 {
		t.Errorf("forecast = %v, %v", fc, err)
	}
	if _, err := (MovingAverage{Window: 0}).Forecast([]float64{1}, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("window 0 err = %v", err)
	}
	if _, err := (MovingAverage{Window: 2}).Forecast(nil, 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := (MovingAverage{Window: 2}).Forecast([]float64{1}, -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative horizon err = %v", err)
	}
}

func TestARRecoversKnownProcess(t *testing.T) {
	// x_t = 5 + 0.6·x_{t−1} (stationary mean 12.5), no noise.
	series := make([]float64, 100)
	series[0] = 1
	for t2 := 1; t2 < len(series); t2++ {
		series[t2] = 5 + 0.6*series[t2-1]
	}
	coef, err := (AR{P: 1}).Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-5) > 0.05 || math.Abs(coef[1]-0.6) > 0.01 {
		t.Errorf("coef = %v, want [5 0.6]", coef)
	}
	fc, err := (AR{P: 1}).Forecast(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := series[len(series)-1]
	for i := 0; i < 3; i++ {
		want = 5 + 0.6*want
		if math.Abs(fc[i]-want) > 0.1 {
			t.Errorf("step %d forecast %g, want %g", i, fc[i], want)
		}
	}
}

func TestARNoisyProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	series := make([]float64, 400)
	series[0] = 10
	for i := 1; i < len(series); i++ {
		series[i] = 4 + 0.7*series[i-1] + rng.NormFloat64()
	}
	coef, err := (AR{P: 1}).Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[1]-0.7) > 0.1 {
		t.Errorf("slope = %g, want ~0.7", coef[1])
	}
}

func TestARErrors(t *testing.T) {
	if _, err := (AR{P: 0}).Forecast([]float64{1, 2, 3}, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("order 0 err = %v", err)
	}
	if _, err := (AR{P: 3}).Forecast([]float64{1, 2, 3}, 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("short history err = %v", err)
	}
	long := make([]float64, 50)
	if _, err := (AR{P: 2}).Forecast(long, -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative horizon err = %v", err)
	}
}

func TestARClampNegative(t *testing.T) {
	// A steeply decreasing series extrapolates negative; forecasts clamp.
	series := []float64{100, 80, 60, 40, 20, 10, 4, 2}
	fc, err := (AR{P: 1}).Forecast(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fc {
		if v < 0 {
			t.Errorf("step %d forecast %g < 0", i, v)
		}
	}
}

func TestARConstantSeries(t *testing.T) {
	series := make([]float64, 30)
	for i := range series {
		series[i] = 42
	}
	fc, err := (AR{P: 2}).Forecast(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if math.Abs(v-42) > 0.5 {
			t.Errorf("constant series forecast %v", fc)
			break
		}
	}
}

func TestMSEComparesPredictors(t *testing.T) {
	// Diurnal-ish seasonal series: seasonal naive must beat persistence.
	series := make([]float64, 24*8)
	for i := range series {
		h := i % 24
		if h >= 8 && h < 17 {
			series[i] = 100
		} else {
			series[i] = 10
		}
	}
	mseSeason, err := MSE(SeasonalNaive{Season: 24}, series, 48)
	if err != nil {
		t.Fatal(err)
	}
	msePersist, err := MSE(Persistence{}, series, 48)
	if err != nil {
		t.Fatal(err)
	}
	if mseSeason >= msePersist {
		t.Errorf("seasonal MSE %g should beat persistence %g", mseSeason, msePersist)
	}
	if mseSeason > 1e-9 {
		t.Errorf("seasonal naive on exactly periodic series MSE = %g, want 0", mseSeason)
	}
}

func TestMSEErrors(t *testing.T) {
	if _, err := MSE(nil, []float64{1, 2}, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil predictor err = %v", err)
	}
	if _, err := MSE(Persistence{}, []float64{1, 2}, 0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("warmup 0 err = %v", err)
	}
	if _, err := MSE(Persistence{}, []float64{1, 2}, 5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("warmup >= len err = %v", err)
	}
}

// Property: Persistence forecasts are constant and equal to the last value.
func TestQuickPersistenceConstant(t *testing.T) {
	f := func(raw []float64, h uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = 0
			}
		}
		horizon := int(h%20) + 1
		fc, err := Persistence{}.Forecast(raw, horizon)
		if err != nil {
			return false
		}
		last := raw[len(raw)-1]
		for _, v := range fc {
			if v != last {
				return false
			}
		}
		return len(fc) == horizon
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: AR forecasts of nonnegative series are nonnegative (clamping).
func TestQuickARNonnegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		series := make([]float64, n)
		for i := range series {
			series[i] = math.Abs(rng.NormFloat64()) * 50
		}
		fc, err := (AR{P: 2}).Forecast(series, 5)
		if err != nil {
			return false
		}
		for _, v := range fc {
			if v < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestARRejectsNaNHistory(t *testing.T) {
	series := make([]float64, 20)
	series[7] = math.NaN()
	if _, err := (AR{P: 2}).Fit(series); !errors.Is(err, ErrBadParameter) {
		t.Errorf("NaN history err = %v", err)
	}
	series[7] = math.Inf(1)
	if _, err := (AR{P: 2}).Forecast(series, 2); !errors.Is(err, ErrBadParameter) {
		t.Errorf("Inf history err = %v", err)
	}
}

func TestARWindowValidation(t *testing.T) {
	series := make([]float64, 30)
	if _, err := (AR{P: 2, Window: 3}).Fit(series); !errors.Is(err, ErrBadParameter) {
		t.Errorf("tiny window err = %v", err)
	}
	// A valid rolling window uses only the suffix: fitting on a series
	// whose early half is garbage must ignore it.
	for i := range series {
		if i < 15 {
			series[i] = 1e6
		} else {
			series[i] = 10
		}
	}
	coef, err := (AR{P: 1, Window: 10}).Fit(series)
	if err != nil {
		t.Fatal(err)
	}
	// Constant 10 suffix: intercept + slope·10 ≈ 10.
	if pred := coef[0] + coef[1]*10; math.Abs(pred-10) > 1 {
		t.Errorf("windowed fit predicts %g, want ~10", pred)
	}
}

// Package predict implements the analysis-and-prediction module of the
// paper's architecture (Fig. 2): given the history of a scalar series
// (demand of one location, or price of one DC), forecast the next W
// values. The paper uses autoregressive (AR) models [24] and notes the
// framework is generic in the predictor; we provide Perfect (oracle),
// Persistence, SeasonalNaive, MovingAverage, an OLS-fit AR(p) and
// additive Holt-Winters smoothing.
package predict

import (
	"errors"
	"fmt"
	"math"

	"dspp/internal/linalg"
)

// Sentinel errors.
var (
	// ErrBadParameter flags invalid predictor parameters.
	ErrBadParameter = errors.New("predict: invalid parameter")
	// ErrInsufficientHistory means the history is too short to fit or
	// forecast.
	ErrInsufficientHistory = errors.New("predict: insufficient history")
)

// Predictor forecasts future values of a series given its past.
type Predictor interface {
	// Forecast returns the predicted values for the next horizon periods
	// after the end of history. history[len-1] is the most recent value.
	Forecast(history []float64, horizon int) ([]float64, error)
}

// Perfect is an oracle that knows the true future series; it indexes the
// trace by absolute period, so it must be constructed with the series and
// the alignment rule that history ends at period len(history)-1.
type Perfect struct {
	// Series is the full true series indexed by absolute period.
	Series []float64
}

// Forecast implements Predictor: returns the true future values, clamping
// at the last known value past the end of the series.
func (p Perfect) Forecast(history []float64, horizon int) ([]float64, error) {
	if horizon < 0 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadParameter)
	}
	if len(p.Series) == 0 {
		return nil, fmt.Errorf("empty oracle series: %w", ErrInsufficientHistory)
	}
	out := make([]float64, horizon)
	base := len(history)
	for i := 0; i < horizon; i++ {
		idx := base + i
		if idx >= len(p.Series) {
			idx = len(p.Series) - 1
		}
		out[i] = p.Series[idx]
	}
	return out, nil
}

// Persistence predicts that the last observed value repeats.
type Persistence struct{}

// Forecast implements Predictor.
func (Persistence) Forecast(history []float64, horizon int) ([]float64, error) {
	if horizon < 0 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadParameter)
	}
	if len(history) == 0 {
		return nil, ErrInsufficientHistory
	}
	last := history[len(history)-1]
	out := make([]float64, horizon)
	for i := range out {
		out[i] = last
	}
	return out, nil
}

// SeasonalNaive repeats the value observed one season (e.g. 24 periods)
// ago, the natural predictor for the paper's diurnal traces.
type SeasonalNaive struct {
	// Season is the period length (must be ≥ 1).
	Season int
}

// Forecast implements Predictor.
func (s SeasonalNaive) Forecast(history []float64, horizon int) ([]float64, error) {
	if s.Season < 1 {
		return nil, fmt.Errorf("season %d: %w", s.Season, ErrBadParameter)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadParameter)
	}
	if len(history) < s.Season {
		return nil, fmt.Errorf("history %d < season %d: %w", len(history), s.Season, ErrInsufficientHistory)
	}
	out := make([]float64, horizon)
	for i := range out {
		// Index of the same phase in the most recent full season.
		idx := len(history) - s.Season + (i % s.Season)
		out[i] = history[idx]
	}
	return out, nil
}

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	// Window is the averaging window (must be ≥ 1).
	Window int
}

// Forecast implements Predictor.
func (m MovingAverage) Forecast(history []float64, horizon int) ([]float64, error) {
	if m.Window < 1 {
		return nil, fmt.Errorf("window %d: %w", m.Window, ErrBadParameter)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadParameter)
	}
	if len(history) == 0 {
		return nil, ErrInsufficientHistory
	}
	w := m.Window
	if w > len(history) {
		w = len(history)
	}
	var sum float64
	for _, x := range history[len(history)-w:] {
		sum += x
	}
	avg := sum / float64(w)
	out := make([]float64, horizon)
	for i := range out {
		out[i] = avg
	}
	return out, nil
}

// AR is an autoregressive model of order P with intercept, refit by
// ordinary least squares on every Forecast call (the history is the
// training set, as in the paper's online setting).
type AR struct {
	// P is the model order (≥ 1).
	P int
	// Ridge is an optional Tikhonov regularizer for the OLS fit; 0 uses a
	// small default that keeps near-constant series well conditioned.
	Ridge float64
	// Window, when positive, fits on only the most recent Window
	// observations (a rolling window) instead of the full history. Short
	// windows make the fit adaptive but noisy — multi-step forecasts can
	// extrapolate phantom trends, which is exactly the failure mode the
	// paper observes for long prediction horizons on volatile series.
	Window int
}

// Forecast implements Predictor: fits x_t = b₀ + Σ bᵢ·x_{t−i} by OLS and
// iterates the recursion horizon steps ahead. Negative forecasts are
// clamped to zero (demand and prices are nonnegative).
func (a AR) Forecast(history []float64, horizon int) ([]float64, error) {
	if a.P < 1 {
		return nil, fmt.Errorf("order %d: %w", a.P, ErrBadParameter)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadParameter)
	}
	coef, err := a.Fit(history)
	if err != nil {
		return nil, err
	}
	// Iterate the recursion. Forecasts are clamped to [0, 10·max(history)]:
	// an unstable fit (roots outside the unit circle) otherwise explodes
	// exponentially with the horizon, and no deployed forecaster would
	// emit demand orders of magnitude beyond anything ever observed.
	var histMax float64
	for _, x := range history {
		if x > histMax {
			histMax = x
		}
	}
	upper := 10 * histMax
	buf := append([]float64(nil), history...)
	out := make([]float64, horizon)
	for i := 0; i < horizon; i++ {
		pred := coef[0]
		for j := 1; j <= a.P; j++ {
			pred += coef[j] * buf[len(buf)-j]
		}
		if pred < 0 {
			pred = 0
		}
		if upper > 0 && pred > upper {
			pred = upper
		}
		out[i] = pred
		buf = append(buf, pred)
	}
	return out, nil
}

// Fit estimates the AR coefficients [intercept, b₁, …, b_P] by OLS.
// It needs at least 2·P+2 observations for a meaningful fit.
func (a AR) Fit(history []float64) ([]float64, error) {
	if a.P < 1 {
		return nil, fmt.Errorf("order %d: %w", a.P, ErrBadParameter)
	}
	minObs := 2*a.P + 2
	if a.Window > 0 && a.Window < minObs {
		return nil, fmt.Errorf("window %d < %d: %w", a.Window, minObs, ErrBadParameter)
	}
	if len(history) < minObs {
		return nil, fmt.Errorf("history %d < %d: %w", len(history), minObs, ErrInsufficientHistory)
	}
	if a.Window > 0 && len(history) > a.Window {
		history = history[len(history)-a.Window:]
	}
	for i, x := range history {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("history[%d] = %g: %w", i, x, ErrBadParameter)
		}
	}
	rows := len(history) - a.P
	x := linalg.NewMatrix(rows, a.P+1)
	y := linalg.NewVector(rows)
	for t := 0; t < rows; t++ {
		x.Set(t, 0, 1)
		for j := 1; j <= a.P; j++ {
			x.Set(t, j, history[t+a.P-j])
		}
		y[t] = history[t+a.P]
	}
	ridge := a.Ridge
	if ridge == 0 {
		ridge = 1e-8
	}
	coef, err := linalg.LeastSquares(x, y, ridge)
	if err != nil {
		return nil, fmt.Errorf("ar fit: %w", err)
	}
	return coef, nil
}

// MSE returns the mean squared one-step error of a predictor evaluated by
// walking forward through the series with an expanding window starting at
// warmup observations.
func MSE(p Predictor, series []float64, warmup int) (float64, error) {
	if p == nil {
		return 0, fmt.Errorf("nil predictor: %w", ErrBadParameter)
	}
	if warmup < 1 || warmup >= len(series) {
		return 0, fmt.Errorf("warmup %d of %d: %w", warmup, len(series), ErrBadParameter)
	}
	var sum float64
	var n int
	for t := warmup; t < len(series); t++ {
		fc, err := p.Forecast(series[:t], 1)
		if err != nil {
			return 0, err
		}
		d := fc[0] - series[t]
		sum += d * d
		n++
	}
	return sum / float64(n), nil
}

package predict

import (
	"errors"
	"math"
	"testing"
)

// seasonalSeries builds base + slope·t + seasonal pattern.
func seasonalSeries(n, season int, base, slope float64, pattern []float64) []float64 {
	out := make([]float64, n)
	for t := range out {
		out[t] = base + slope*float64(t) + pattern[t%season]
	}
	return out
}

func TestHoltWintersRecoversExactSeasonal(t *testing.T) {
	pattern := []float64{10, -5, 0, -5}
	series := seasonalSeries(48, 4, 100, 0, pattern)
	fc, err := (HoltWinters{Season: 4, Alpha: 0.3, Beta: 0.05, Gamma: 0.3}).Forecast(series, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range fc {
		want := 100 + pattern[(48+k)%4]
		if math.Abs(v-want) > 1.5 {
			t.Errorf("step %d: forecast %g, want %g", k, v, want)
		}
	}
}

func TestHoltWintersTracksTrend(t *testing.T) {
	pattern := []float64{5, 0, -5, 0}
	series := seasonalSeries(80, 4, 50, 2, pattern) // strong upward trend
	fc, err := (HoltWinters{Season: 4}).Forecast(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range fc {
		want := 50 + 2*float64(80+k) + pattern[(80+k)%4]
		if math.Abs(v-want)/want > 0.05 {
			t.Errorf("step %d: forecast %g, want %g", k, v, want)
		}
	}
}

func TestHoltWintersBeatsSeasonalNaiveWithTrend(t *testing.T) {
	pattern := []float64{20, 0, -20, 0, 10, -10}
	series := seasonalSeries(120, 6, 100, 1.5, pattern)
	mseHW, err := MSE(HoltWinters{Season: 6}, series, 24)
	if err != nil {
		t.Fatal(err)
	}
	mseSN, err := MSE(SeasonalNaive{Season: 6}, series, 24)
	if err != nil {
		t.Fatal(err)
	}
	if mseHW >= mseSN {
		t.Errorf("HW MSE %g should beat seasonal naive %g on trending data", mseHW, mseSN)
	}
}

func TestHoltWintersNonSeasonal(t *testing.T) {
	// Pure linear series: Holt's method extrapolates the line.
	series := make([]float64, 30)
	for i := range series {
		series[i] = 10 + 3*float64(i)
	}
	fc, err := (HoltWinters{Season: 0}).Forecast(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range fc {
		want := 10 + 3*float64(30+k)
		if math.Abs(v-want) > 1 {
			t.Errorf("step %d: %g, want %g", k, v, want)
		}
	}
}

func TestHoltWintersClampsNegative(t *testing.T) {
	series := []float64{100, 80, 60, 40, 20, 10, 5, 2}
	fc, err := (HoltWinters{}).Forecast(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range fc {
		if v < 0 {
			t.Errorf("step %d negative forecast %g", k, v)
		}
	}
}

func TestHoltWintersErrors(t *testing.T) {
	if _, err := (HoltWinters{Season: 4}).Forecast(make([]float64, 7), 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("short seasonal history err = %v", err)
	}
	if _, err := (HoltWinters{}).Forecast([]float64{1, 2}, 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("short holt history err = %v", err)
	}
	if _, err := (HoltWinters{}).Forecast(make([]float64, 10), -1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative horizon err = %v", err)
	}
	if _, err := (HoltWinters{Alpha: 2}).Forecast(make([]float64, 10), 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("alpha>1 err = %v", err)
	}
}

func TestHoltWintersOnDiurnalBeatsPersistence(t *testing.T) {
	// The paper's on-off profile with mild noise-free repetition.
	series := make([]float64, 24*6)
	for i := range series {
		h := i % 24
		if h >= 8 && h < 17 {
			series[i] = 1000
		} else {
			series[i] = 100
		}
	}
	mseHW, err := MSE(HoltWinters{Season: 24}, series, 72)
	if err != nil {
		t.Fatal(err)
	}
	msePersist, err := MSE(Persistence{}, series, 72)
	if err != nil {
		t.Fatal(err)
	}
	if mseHW >= msePersist {
		t.Errorf("HW MSE %g should beat persistence %g on diurnal data", mseHW, msePersist)
	}
}

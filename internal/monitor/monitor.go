// Package monitor implements the streaming statistics used by the
// paper's monitoring module (Fig. 2): it watches realized demand, prices
// and forecast errors online, without retaining samples. It provides
// Welford mean/variance, exponentially weighted moving averages, and the
// P² streaming quantile estimator — enough for the analysis-and-
// prediction module to judge forecast quality and for operators to track
// SLA headroom in production.
package monitor

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadParameter flags invalid estimator parameters.
var ErrBadParameter = errors.New("monitor: invalid parameter")

// Welford tracks count, mean and variance in one pass (numerically stable
// Welford recurrence). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add consumes one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with < 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// WelfordState is the serializable form of a Welford accumulator — the
// exact (count, mean, M2) triple, so a Restore continues the recurrence
// bit-for-bit. Long-running processes (the dsppd daemon) persist it in
// their checkpoints.
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Snapshot captures the accumulator's state.
func (w *Welford) Snapshot() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// Restore overwrites the accumulator with a previously captured state.
func (w *Welford) Restore(s WelfordState) {
	w.n, w.mean, w.m2 = s.N, s.Mean, s.M2
}

// EWMA is an exponentially weighted moving average with decay factor
// alpha in (0, 1]: larger alpha reacts faster.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA validates alpha and returns an estimator.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("alpha %g: %w", alpha, ErrBadParameter)
	}
	return &EWMA{alpha: alpha}, nil
}

// Add consumes one observation.
func (e *EWMA) Add(x float64) {
	if !e.started {
		e.value = x
		e.started = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// P2Quantile estimates a single quantile online with the Jain/Chlamtac P²
// algorithm: five markers, O(1) memory, no sample retention.
type P2Quantile struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
	initial []float64
}

// NewP2Quantile builds an estimator for quantile q in (0, 1).
func NewP2Quantile(q float64) (*P2Quantile, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("quantile %g: %w", q, ErrBadParameter)
	}
	p := &P2Quantile{q: q, initial: make([]float64, 0, 5)}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Add consumes one observation.
func (p *P2Quantile) Add(x float64) {
	p.n++
	if len(p.initial) < 5 {
		// Insert in sorted order: the bootstrap prefix doubles as the
		// exact order statistics Value() reads before the P² markers
		// exist, so keeping it sorted here makes small-sample reads
		// allocation-free.
		i := sort.SearchFloat64s(p.initial, x)
		p.initial = append(p.initial, 0)
		copy(p.initial[i+1:], p.initial[i:])
		p.initial[i] = x
		if len(p.initial) == 5 {
			for i := range p.heights {
				p.heights[i] = p.initial[i]
				p.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Locate the cell containing x and update extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < p.heights[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}
	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := sign(d)
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// Value returns the current quantile estimate. The P² markers need 5
// observations to exist; with fewer the estimator still returns a
// defined partial estimate — the exact nearest-rank quantile of the
// samples seen so far (⌈q·n⌉-th order statistic), 0 with no samples.
// The small-sample path reads the sorted bootstrap prefix directly, so
// it neither allocates nor perturbs later streaming estimates.
func (p *P2Quantile) Value() float64 {
	if len(p.initial) < 5 {
		if len(p.initial) == 0 {
			return 0
		}
		idx := int(math.Ceil(p.q*float64(len(p.initial)))) - 1
		if idx < 0 {
			idx = 0
		}
		return p.initial[idx]
	}
	return p.heights[2]
}

// Count returns the number of observations.
func (p *P2Quantile) Count() int { return p.n }

func (p *P2Quantile) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

func sign(x float64) float64 {
	if x >= 0 {
		return 1
	}
	return -1
}

// ForecastTracker scores a predictor online: feed (forecast, realized)
// pairs and read bias, RMSE and the error's p95 — what the analysis
// module needs to pick horizons (the paper's Figs. 9/10 observation that
// horizon value depends on forecast accuracy).
type ForecastTracker struct {
	err   Welford
	abs   Welford
	p95   *P2Quantile
	under int
}

// NewForecastTracker builds a tracker.
func NewForecastTracker() (*ForecastTracker, error) {
	p95, err := NewP2Quantile(0.95)
	if err != nil {
		return nil, err
	}
	return &ForecastTracker{p95: p95}, nil
}

// Observe records one (forecast, realized) pair.
func (f *ForecastTracker) Observe(forecast, realized float64) {
	e := forecast - realized
	f.err.Add(e)
	f.abs.Add(math.Abs(e))
	f.p95.Add(math.Abs(e))
	if e < 0 {
		f.under++
	}
}

// Bias returns the mean signed error (negative = systematic
// underprediction, the dangerous direction for SLA work).
func (f *ForecastTracker) Bias() float64 { return f.err.Mean() }

// MAE returns the mean absolute error.
func (f *ForecastTracker) MAE() float64 { return f.abs.Mean() }

// RMSE returns the root mean squared error.
func (f *ForecastTracker) RMSE() float64 {
	n := f.err.Count()
	if n == 0 {
		return 0
	}
	// E[e²] = Var·(n−1)/n + mean².
	return math.Sqrt(f.err.m2/float64(n) + f.err.mean*f.err.mean)
}

// P95AbsError returns the streaming 95th percentile of |error|.
func (f *ForecastTracker) P95AbsError() float64 { return f.p95.Value() }

// UnderpredictionRate returns the fraction of observations where the
// forecast fell short of reality.
func (f *ForecastTracker) UnderpredictionRate() float64 {
	if f.err.Count() == 0 {
		return 0
	}
	return float64(f.under) / float64(f.err.Count())
}

// Count returns the number of observed pairs.
func (f *ForecastTracker) Count() int { return f.err.Count() }
